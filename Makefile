# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all check build vet test race cover bench chaos partition-soak fuzz experiments scale diffcheck diffcheck-race clean

all: build vet test

# Everything CI cares about: compile, vet, full tests, race on the
# concurrent packages, the seeded chaos soaks (single-instance and
# partitioned), and a race-enabled differential sweep over the trimmed
# config grid.
check: build vet test race chaos partition-soak diffcheck-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Seeded end-to-end fault drill: chaos soak + failover-latency measurement
# (see DESIGN.md §6 and the failover section of EXPERIMENTS.md).
chaos:
	$(GO) test -race -v -run 'TestChaosSoak|TestFailoverLatency' ./internal/chaos/

# Race-enabled randomized soak of the partitioned execution subsystem:
# chaotic attach/detach/feedback over the Sharded pool, checked against
# the script oracle (see DESIGN.md §8).
partition-soak:
	$(GO) test -race -v -run TestPartitionedChaosSoak ./internal/partition/

# Short fuzz sessions over the wire codec and reconstitution.
fuzz:
	$(GO) test ./internal/temporal/ -fuzz FuzzUnmarshalElement -fuzztime 30s
	$(GO) test ./internal/temporal/ -fuzz FuzzReconstitute -fuzztime 30s

# Differential correctness sweep: every algorithm × executor × pipeline
# against the brute-force oracle (see DESIGN.md §7). Any divergence is a bug;
# failures print a minimized ready-to-paste regression test.
diffcheck:
	$(GO) run ./cmd/lmcheck -seeds 500

# Short race-enabled sweep over the trimmed grid, part of `make check`.
diffcheck-race:
	$(GO) run -race ./cmd/lmcheck -seeds 25 -quick

# Regenerate every paper figure/table at paper scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/lmbench

# Keyed scale-out curve: throughput vs partition count, uniform and
# hot-key-skewed (see EXPERIMENTS.md "Scaling" and BENCH_PR4.json).
scale:
	$(GO) run ./cmd/lmbench -exp scale -events 100000 -payload 64

clean:
	$(GO) clean ./...
