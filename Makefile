# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all check build vet test race cover bench chaos partition-soak rebalance-soak crash-soak spill-soak fanout-soak fuzz experiments scale bench-compare diffcheck diffcheck-race clean

all: build vet test

# Everything CI cares about: compile, vet, full tests, race on the
# concurrent packages, the seeded chaos soaks (single-instance and
# partitioned), the adaptive-repartitioning soak, the crash/recover soak,
# the budget-constrained out-of-core spill soak, the broadcast fan-out
# soak, and a race-enabled differential sweep over the trimmed config grid.
check: build vet test race cover chaos partition-soak rebalance-soak crash-soak spill-soak fanout-soak diffcheck-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Coverage with enforced floors on the merge kernel, the telemetry layer,
# the wire codec (cursor log included), and the server (event-loop delivery
# plane included): the packages where a silent coverage regression would
# hurt the most.
COVER_FLOOR_CORE   ?= 85
COVER_FLOOR_OBS    ?= 85
COVER_FLOOR_WIRE   ?= 80
COVER_FLOOR_SERVER ?= 80
cover:
	$(GO) test -cover ./...
	@$(GO) test -coverprofile=/tmp/lmerge-core.cover ./internal/core/ > /dev/null
	@$(GO) test -coverprofile=/tmp/lmerge-obs.cover ./internal/obs/ > /dev/null
	@$(GO) test -coverprofile=/tmp/lmerge-wire.cover ./internal/wire/ > /dev/null
	@$(GO) test -coverprofile=/tmp/lmerge-server.cover ./internal/server/ > /dev/null
	@$(GO) tool cover -func=/tmp/lmerge-core.cover | awk -v floor=$(COVER_FLOOR_CORE) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { printf "FAIL: internal/core coverage %s%% below floor %d%%\n", $$3, floor; exit 1 } \
		else printf "internal/core coverage %s%% (floor %d%%)\n", $$3, floor }'
	@$(GO) tool cover -func=/tmp/lmerge-obs.cover | awk -v floor=$(COVER_FLOOR_OBS) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { printf "FAIL: internal/obs coverage %s%% below floor %d%%\n", $$3, floor; exit 1 } \
		else printf "internal/obs coverage %s%% (floor %d%%)\n", $$3, floor }'
	@$(GO) tool cover -func=/tmp/lmerge-wire.cover | awk -v floor=$(COVER_FLOOR_WIRE) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { printf "FAIL: internal/wire coverage %s%% below floor %d%%\n", $$3, floor; exit 1 } \
		else printf "internal/wire coverage %s%% (floor %d%%)\n", $$3, floor }'
	@$(GO) tool cover -func=/tmp/lmerge-server.cover | awk -v floor=$(COVER_FLOOR_SERVER) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { printf "FAIL: internal/server coverage %s%% below floor %d%%\n", $$3, floor; exit 1 } \
		else printf "internal/server coverage %s%% (floor %d%%)\n", $$3, floor }'

bench:
	$(GO) test -bench=. -benchmem ./...

# Seeded end-to-end fault drill: chaos soak + failover-latency measurement
# (see DESIGN.md §6 and the failover section of EXPERIMENTS.md).
chaos:
	$(GO) test -race -v -run 'TestChaosSoak|TestFailoverLatency' ./internal/chaos/

# Race-enabled randomized soak of the partitioned execution subsystem:
# chaotic attach/detach/feedback over the Sharded pool, checked against
# the script oracle (see DESIGN.md §8).
partition-soak:
	$(GO) test -race -v -run TestPartitionedChaosSoak ./internal/partition/

# Race-enabled soak of the live key-range migration machinery: concurrent
# publishers vs forced slot migrations, plus the adaptive hot-slot
# controller at an aggressive cadence (see DESIGN.md §11).
rebalance-soak:
	$(GO) test -race -v -run 'TestShardedMigrateMidStream|TestRebalanceSoak' ./internal/partition/

# Race-enabled seeded crash/recover loop: kill -9 images (torn WAL tails,
# corrupted checkpoints) across backend shapes, each recovery checked
# against the no-crash oracle, plus the kill -9 e2e against a real child
# process (see DESIGN.md §12).
crash-soak:
	$(GO) test -race -v -run 'TestCrashSoak|TestCrashRestart' ./internal/server/
	$(GO) test -race -v -run TestKill9 ./cmd/lmserved/

# Race-enabled soak of the out-of-core tier: accumulating long-lived state
# against a 32 KiB resident budget, with the background run compactor racing
# the merge path (see DESIGN.md §13).
spill-soak:
	$(GO) test -race -v -run 'TestSpillSoak|TestSpillEquivalence' ./internal/spill/

# Race-enabled broadcast fan-out fault drill: 200 chaos-faulted binary+text
# subscribers plus an idle pause/resume cohort and an attach/abandon churn
# storm on one server, exact-TDB equivalence across both protocols (see
# DESIGN.md §14-15).
fanout-soak:
	$(GO) test -race -v -run TestFanoutSoak ./internal/chaos/

# Short fuzz sessions over the wire codec, reconstitution, the server
# handshake/frame parser, the v2 binary frame decoder, the credit/cursor
# control plane, and the WAL record and spill-run decoders.
fuzz:
	$(GO) test ./internal/temporal/ -fuzz FuzzUnmarshalElement -fuzztime 30s
	$(GO) test ./internal/temporal/ -fuzz FuzzReconstitute -fuzztime 30s
	$(GO) test ./internal/server/ -run FuzzParseFrame -fuzz FuzzParseFrame -fuzztime 30s
	$(GO) test ./internal/wire/ -run FuzzBinaryFrame -fuzz FuzzBinaryFrame -fuzztime 30s
	$(GO) test ./internal/wire/ -run FuzzCreditLedger -fuzz FuzzCreditLedger -fuzztime 30s
	$(GO) test ./internal/durable/ -run FuzzWALDecode -fuzz FuzzWALDecode -fuzztime 30s
	$(GO) test ./internal/durable/ -run FuzzRunDecode -fuzz FuzzRunDecode -fuzztime 30s

# Differential correctness sweep: every algorithm × executor × pipeline
# against the brute-force oracle (see DESIGN.md §7). Any divergence is a bug;
# failures print a minimized ready-to-paste regression test.
diffcheck:
	$(GO) run ./cmd/lmcheck -seeds 500

# Short race-enabled sweep over the trimmed grid, part of `make check`.
diffcheck-race:
	$(GO) run -race ./cmd/lmcheck -seeds 25 -quick

# Regenerate every paper figure/table at paper scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/lmbench

# Keyed scale-out curve: throughput vs partition count, uniform and
# hot-key-skewed (see EXPERIMENTS.md "Scaling" and BENCH_PR4.json).
scale:
	$(GO) run ./cmd/lmbench -exp scale -events 100000 -payload 64

# Gate the partitioned path's per-element cost against the recorded PR-4
# baseline (>10% ns/element growth on any multi-partition point fails), and
# the broadcast fan-out curve against the recorded PR-9 run: encode-once
# invariants (encode work or allocation varying with subscriber count), the
# at-rest invariants new in PR 10 (server goroutines flat vs N, <=2KiB
# resident per idle subscriber), and the cross-file alloc comparison. The
# alloc tolerance is 25% for the PR9->PR10 transition: the pooled gather
# buffers moved ~100B/el of allocation inside the measured window that the
# per-subscriber writers previously allocated at attach time (see
# BENCH_PR10.json).
bench-compare:
	$(GO) run ./cmd/lmbenchcmp -old BENCH_PR4.json -new BENCH_PR6.json
	$(GO) run ./cmd/lmbenchcmp -fanout -tolerance 0.25 -old BENCH_PR9.json -new BENCH_PR10.json

clean:
	$(GO) clean ./...
