# Standard developer entry points; everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test race cover bench fuzz experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz sessions over the wire codec and reconstitution.
fuzz:
	$(GO) test ./internal/temporal/ -fuzz FuzzUnmarshalElement -fuzztime 30s
	$(GO) test ./internal/temporal/ -fuzz FuzzReconstitute -fuzztime 30s

# Regenerate every paper figure/table at paper scale (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/lmbench

clean:
	$(GO) clean ./...
