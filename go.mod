module lmerge

go 1.24
