// Package lmerge is the public API of this repository: a Go implementation
// of Physically Independent Stream Merging (Chandramouli, Maier, Goldstein,
// ICDE 2012) — the Logical Merge (LMerge) operator family together with the
// temporal stream model and mini-DSMS substrate it runs on.
//
// A logical stream is a temporal database (TDB): a multiset of events, each
// a payload valid over [Vs, Ve). A physical stream is a sequence of insert,
// adjust, and stable elements reconstituting to a TDB. LMerge consumes
// several physically divergent but mutually consistent presentations of one
// logical stream — replicas that differ in order, timing, revisions, and
// gaps — and emits a single stream compatible with all of them.
//
// Quick start:
//
//	out := temporal.NewTDB()
//	m := lmerge.NewR3(func(e lmerge.Element) { _ = out.Apply(e) })
//	m.Attach(0)
//	m.Attach(1)
//	m.Process(0, lmerge.Insert(lmerge.P(1), 10, 20))
//	m.Process(1, lmerge.Insert(lmerge.P(1), 10, 25)) // divergent copy
//	m.Process(0, lmerge.Stable(lmerge.Infinity))
//
// Pick the cheapest algorithm for the streams you have with the property
// framework (Choose / NewMergerFor), wrap mergers in an Operator for dynamic
// attach/detach and fast-forward feedback, and see examples/ for complete
// programs: quickstart, high availability, dynamic plan switching with
// feedback, and the data-center monitoring scenario.
package lmerge

import (
	"lmerge/internal/core"
	"lmerge/internal/obs"
	"lmerge/internal/partition"
	"lmerge/internal/props"
	"lmerge/internal/temporal"
)

// Stream model (package internal/temporal).
type (
	// Time is an application timestamp in ticks; Infinity marks open ends.
	Time = temporal.Time
	// Payload is the event tuple: an integer field plus a string field.
	Payload = temporal.Payload
	// Event is a TDB event: a payload valid over [Vs, Ve).
	Event = temporal.Event
	// Element is one physical-stream element (insert, adjust, or stable).
	Element = temporal.Element
	// Stream is a finite physical-stream prefix.
	Stream = temporal.Stream
	// TDB is a temporal-database instance: the logical view of a stream.
	TDB = temporal.TDB
	// FreezeStatus classifies events against a stable point (UF/HF/FF).
	FreezeStatus = temporal.FreezeStatus
)

// Time constants.
const (
	// Infinity is the open event end time.
	Infinity = temporal.Infinity
	// MinTime precedes every element.
	MinTime = temporal.MinTime
)

// Element kinds.
const (
	KindInsert = temporal.KindInsert
	KindAdjust = temporal.KindAdjust
	KindStable = temporal.KindStable
)

// Element constructors and model helpers.
var (
	// Insert builds an insert element adding event ⟨p, [vs, ve)⟩.
	Insert = temporal.Insert
	// Adjust builds an adjust element retargeting ⟨p, vs, vold⟩ to end at ve.
	Adjust = temporal.Adjust
	// Stable builds a stable (progress) element for time t.
	Stable = temporal.Stable
	// P builds a payload with only the integer field set.
	P = temporal.P
	// NewTDB returns an empty temporal database.
	NewTDB = temporal.NewTDB
	// Reconstitute folds a stream prefix into a TDB (the paper's tdb(S, i)).
	Reconstitute = temporal.Reconstitute
	// MustTDB reconstitutes a known-valid prefix, panicking on error.
	MustTDB = temporal.MustReconstitute
	// Equivalent reports whether two prefixes describe the same TDB.
	Equivalent = temporal.Equivalent
	// CheckCompatR3 is the executable Sec. III-D compatibility oracle.
	CheckCompatR3 = temporal.CheckCompatR3
)

// The LMerge operator family (package internal/core).
type (
	// Merger is a Logical Merge algorithm (one of the R0–R4 cases).
	Merger = core.Merger
	// Case names a point in the paper's restriction spectrum.
	Case = core.Case
	// Emit receives merged output elements.
	Emit = core.Emit
	// StreamID identifies one merge input.
	StreamID = core.StreamID
	// Stats carries a merger's traffic counters.
	Stats = core.Stats
	// R3Options selects the output policies of the R3 merger.
	R3Options = core.R3Options
	// InsertPolicy controls when a key first reaches the output.
	InsertPolicy = core.InsertPolicy
	// AdjustPolicy controls revision propagation (lazy or eager).
	AdjustPolicy = core.AdjustPolicy
	// FollowPolicy optionally ties the output to the leading input.
	FollowPolicy = core.FollowPolicy
	// Operator wraps a Merger with dynamic attach/detach and feedback.
	Operator = core.Operator
	// OperatorOption configures an Operator.
	OperatorOption = core.OperatorOption
	// Feedback is the fast-forward signal sent to lagging inputs.
	Feedback = core.Feedback
)

// Restriction cases (Sec. III-C).
const (
	CaseR0 = core.CaseR0
	CaseR1 = core.CaseR1
	CaseR2 = core.CaseR2
	CaseR3 = core.CaseR3
	CaseR4 = core.CaseR4
)

// Output policies (Sec. V-A).
const (
	InsertFirstWins   = core.InsertFirstWins
	InsertQuorum      = core.InsertQuorum
	InsertHalfFrozen  = core.InsertHalfFrozen
	InsertFullyFrozen = core.InsertFullyFrozen
	AdjustLazy        = core.AdjustLazy
	AdjustEager       = core.AdjustEager
	FollowNone        = core.FollowNone
	FollowLeader      = core.FollowLeader
)

// Merger constructors.
var (
	// New builds the merger for a restriction case.
	New = core.New
	// NewR0 merges strictly-ordered, insert-only streams in O(1) state.
	NewR0 = core.NewR0
	// NewR1 additionally handles duplicate timestamps in deterministic order.
	NewR1 = core.NewR1
	// NewR2 handles nondeterministic same-timestamp order under a key.
	NewR2 = core.NewR2
	// NewR2Dup additionally tolerates duplicate (Vs, Payload) events.
	NewR2Dup = core.NewR2Dup
	// NewR3 is the general keyed merger over the in2t index (LMR3+).
	NewR3 = core.NewR3
	// NewR3Naive is the LMR3- baseline with unshared per-input indexes.
	NewR3Naive = core.NewR3Naive
	// NewR4 is the fully general multiset merger over the in3t index.
	NewR4 = core.NewR4
	// NewOperator wraps a merger for dynamic inputs and feedback.
	NewOperator = core.NewOperator
	// WithFeedback enables fast-forward signals to lagging inputs.
	WithFeedback = core.WithFeedback
)

// Keyed scale-out (package internal/partition): partition the merge by
// payload key across independent instances, broadcast stables so idle
// partitions keep progressing, and reunify output stables at the minimum
// partition frontier. The result is itself a Merger, so it drops in anywhere
// a single-instance merger does.
type (
	// PartitionOption configures a partitioned merger.
	PartitionOption = partition.Option
	// PartitionKeyFunc maps a payload to its routing hash.
	PartitionKeyFunc = partition.KeyFunc
)

var (
	// NewPartitioned builds a keyed-partitioned merger: parts instances of
	// the case's algorithm behind hash routing and frontier reunification.
	NewPartitioned = partition.New
	// WithPartitionKey overrides the payload→hash routing function.
	WithPartitionKey = partition.WithKeyFunc
)

// Observability (package internal/obs): zero-overhead-when-off telemetry for
// mergers, operators, and partitioned pools. Attach an Observer to any merger
// that implements Observable (all of them do) and read back live counters,
// output-freshness quantiles, input-leadership history, and a bounded event
// trace. A Registry names nodes and shares one trace; obs.Handler (used by
// lmserved) serves a registry over HTTP.
type (
	// Observer is a per-node telemetry sink; nil is a valid no-op observer.
	Observer = obs.Node
	// ObserverRegistry names observers and shares one event trace.
	ObserverRegistry = obs.Registry
	// Telemetry is a point-in-time copy of one observer's measurements.
	Telemetry = obs.Snapshot
	// TraceEvent is one entry in an observer's bounded event trace.
	TraceEvent = obs.Event
	// Observable is implemented by every merger in this package: Observe
	// attaches (or, with nil, detaches) a telemetry node.
	Observable = core.Observable
)

var (
	// NewObserver builds a standalone telemetry node.
	NewObserver = obs.NewNode
	// NewObserverRegistry builds a registry with a shared trace.
	NewObserverRegistry = obs.NewRegistry
	// WithObserver attaches a telemetry node to an Operator's merger.
	WithObserver = core.WithObserver
	// MetricsHandler serves a registry's snapshots and trace over HTTP
	// (/metrics and /debug/trace, as used by lmserved).
	MetricsHandler = obs.Handler
)

// Stream property framework (package internal/props).
type (
	// Properties is the guarantee set a stream publishes or derives.
	Properties = props.Properties
	// Ordering describes insert ordering by Vs.
	Ordering = props.Ordering
	// Plan is a query-plan node for static property derivation.
	Plan = props.Plan
	// Monitor measures a stream's properties incrementally at runtime.
	Monitor = props.Monitor
)

// Orderings.
const (
	Unordered          = props.Unordered
	NonDecreasing      = props.NonDecreasing
	StrictlyIncreasing = props.StrictlyIncreasing
)

// Property helpers.
var (
	// Choose picks the cheapest merge case the properties allow.
	Choose = props.Choose
	// NewMergerFor builds the merger Choose selects.
	NewMergerFor = props.NewMerger
	// MeetAll combines the guarantees of several merge inputs.
	MeetAll = props.MeetAll
	// Measure derives the strongest guarantees one stream prefix exhibits.
	Measure = props.Measure
	// MeasureAll measures several presentations together, including the
	// cross-stream deterministic-tie-order check.
	MeasureAll = props.MeasureAll
	// NewMonitor starts an online property measurement.
	NewMonitor = props.NewMonitor
)
