package lmerge

import "testing"

// TestFacadeQuickstart exercises the package-documentation example through
// the public facade.
func TestFacadeQuickstart(t *testing.T) {
	out := NewTDB()
	m := NewR3(func(e Element) {
		if err := out.Apply(e); err != nil {
			t.Fatalf("apply: %v", err)
		}
	})
	m.Attach(0)
	m.Attach(1)
	mustOK(t, m.Process(0, Insert(P(1), 10, 20)))
	mustOK(t, m.Process(1, Insert(P(1), 10, 25))) // divergent copy
	mustOK(t, m.Process(0, Stable(Infinity)))
	if out.Stable() != Infinity {
		t.Fatal("output did not complete")
	}
	if out.Len() != 1 {
		t.Fatalf("output has %d events", out.Len())
	}
	// Stream 0 vouched for everything: its lifetime wins.
	if out.Count(Event{Payload: P(1), Vs: 10, Ve: 20}) != 1 {
		t.Fatalf("unexpected output %v", out)
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestFacadePropertyDispatch routes through the property framework.
func TestFacadePropertyDispatch(t *testing.T) {
	p := MeetAll(
		Properties{Order: StrictlyIncreasing, InsertOnly: true, KeyVsPayload: true, DeterministicTies: true},
		Properties{Order: NonDecreasing, InsertOnly: true, KeyVsPayload: true, DeterministicTies: true},
	)
	if got := Choose(p); got != CaseR1 {
		t.Fatalf("Choose = %v, want R1", got)
	}
	if NewMergerFor(p, nil).Case() != CaseR1 {
		t.Fatal("NewMergerFor dispatched wrong case")
	}
	if New(CaseR4, nil).Case() != CaseR4 {
		t.Fatal("New dispatched wrong case")
	}
}

// TestFacadeOperatorFeedback exercises attach/detach and feedback through
// the facade types.
func TestFacadeOperatorFeedback(t *testing.T) {
	var got []Feedback
	op := NewOperator(NewR3(nil), WithFeedback(func(f Feedback) { got = append(got, f) }, 0))
	a := op.Attach(MinTime)
	b := op.Attach(MinTime)
	mustOK(t, op.Process(a, Insert(P(7), 1, 5)))
	mustOK(t, op.Process(a, Stable(10)))
	if len(got) != 1 || got[0].Stream != b {
		t.Fatalf("feedback = %v", got)
	}
	op.Detach(b)
	if op.ActiveInputs() != 1 {
		t.Fatal("detach failed")
	}
}

// TestFacadeEquivalence uses the model helpers.
func TestFacadeEquivalence(t *testing.T) {
	a := Stream{Insert(P(1), 1, 5), Stable(Infinity)}
	b := Stream{Insert(P(1), 1, 9), Adjust(P(1), 1, 9, 5), Stable(Infinity)}
	if !Equivalent(a, b) {
		t.Fatal("streams should be equivalent")
	}
	tdb, err := Reconstitute(b)
	if err != nil || tdb.Len() != 1 {
		t.Fatalf("reconstitute: %v %v", tdb, err)
	}
	if err := CheckCompatR3(tdb, []*TDB{tdb}); err != nil {
		t.Fatalf("self-compatibility: %v", err)
	}
}

// TestFacadeObserver attaches telemetry through the public facade: every
// merger is Observable, the snapshot reconciles with Stats, and the operator
// option wires the same node.
func TestFacadeObserver(t *testing.T) {
	reg := NewObserverRegistry()
	tel := reg.Node("merge")
	var m Merger = NewR3(func(Element) {})
	m.(Observable).Observe(tel)
	m.Attach(0)
	m.Attach(1)
	mustOK(t, m.Process(0, Insert(P(1), 10, 20)))
	mustOK(t, m.Process(1, Insert(P(1), 10, 25)))
	mustOK(t, m.Process(0, Stable(30)))
	mustOK(t, m.Process(0, Stable(Infinity)))
	snap := tel.Snapshot()
	st := m.Stats()
	if snap.InInserts != st.InInserts || snap.OutStables != st.OutStables {
		t.Fatalf("telemetry %+v diverges from stats %+v", snap, st)
	}
	if snap.Leadership.Leader != 0 {
		t.Fatalf("leader = %d, want stream 0", snap.Leadership.Leader)
	}
	if snap.Freshness.Samples == 0 {
		t.Fatal("no freshness samples recorded")
	}

	var ops []Telemetry
	op := NewOperator(NewR3(nil), WithObserver(reg.Node("op")))
	a := op.Attach(MinTime)
	mustOK(t, op.Process(a, Insert(P(2), 1, 5)))
	mustOK(t, op.Process(a, Stable(Infinity)))
	ops = reg.Snapshot()
	if len(ops) != 2 {
		t.Fatalf("registry has %d nodes, want 2", len(ops))
	}
	if reg.Trace().Len() == 0 {
		t.Fatal("shared trace recorded nothing")
	}
}

// TestFacadePartitioned exercises the keyed scale-out wrapper through the
// public facade: the partitioned merger is a drop-in Merger.
func TestFacadePartitioned(t *testing.T) {
	out := NewTDB()
	m := NewPartitioned(CaseR3, 3, func(e Element) {
		if err := out.Apply(e); err != nil {
			t.Fatalf("apply: %v", err)
		}
	})
	m.Attach(0)
	m.Attach(1)
	// Keys 1 and 2 hash to (generally) different partitions; the reunified
	// output must still cover both and complete.
	mustOK(t, m.Process(0, Insert(P(1), 10, 20)))
	mustOK(t, m.Process(1, Insert(P(1), 10, 25))) // divergent copy
	mustOK(t, m.Process(0, Insert(P(2), 12, 30)))
	mustOK(t, m.Process(1, Insert(P(2), 12, 30)))
	mustOK(t, m.Process(0, Stable(Infinity)))
	mustOK(t, m.Process(1, Stable(Infinity)))
	if out.Stable() != Infinity {
		t.Fatal("partitioned output did not complete")
	}
	if out.Len() != 2 {
		t.Fatalf("partitioned output has %d events, want 2", out.Len())
	}
	if m.MaxStable() != Infinity {
		t.Fatalf("MaxStable = %v, want ∞", m.MaxStable())
	}

	// A custom routing key funnels everything to one partition and must not
	// change the merged result.
	single := NewTDB()
	m2 := NewPartitioned(CaseR3, 3, func(e Element) {
		if err := single.Apply(e); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}, WithPartitionKey(PartitionKeyFunc(func(Payload) uint64 { return 0 })))
	m2.Attach(0)
	mustOK(t, m2.Process(0, Insert(P(1), 10, 20)))
	mustOK(t, m2.Process(0, Insert(P(2), 12, 30)))
	mustOK(t, m2.Process(0, Stable(Infinity)))
	if single.Len() != 2 || single.Stable() != Infinity {
		t.Fatalf("single-partition routing output %v", single)
	}
}
