// Command lmgen generates synthetic physical streams (the paper's test
// workload, Sec. VI-B) as JSON lines on stdout. Several invocations with
// the same -script-seed but different -render-seed values produce physically
// divergent, mutually consistent presentations of the same logical stream —
// exactly what cmd/lmcat merges.
//
// Usage:
//
//	lmgen -events 1000 -render-seed 1 > a.jsonl
//	lmgen -events 1000 -render-seed 2 -disorder 0.4 > b.jsonl
//	lmcat a.jsonl b.jsonl > merged.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

func main() {
	events := flag.Int("events", 1000, "number of event histories")
	scriptSeed := flag.Int64("script-seed", 1, "logical script seed (share across renderings)")
	renderSeed := flag.Int64("render-seed", 1, "physical rendering seed (vary across renderings)")
	disorder := flag.Float64("disorder", 0.2, "fraction of out-of-order elements")
	stableFreq := flag.Float64("stablefreq", 0.01, "stable element probability per element")
	revisions := flag.Float64("revisions", 0.4, "probability an event revises its end time")
	removeProb := flag.Float64("removals", 0.15, "probability a revised event is cancelled")
	payload := flag.Int("payload", 100, "payload string bytes")
	split := flag.Bool("split", false, "render inserts as insert(∞) plus adjust")
	ordered := flag.Bool("ordered", false, "emit the strictly-ordered insert-only rendering (R0 case)")
	dups := flag.Float64("dups", 0, "probability of duplicate (Vs,Payload) histories (R4 case)")
	flag.Parse()

	cfg := gen.Config{
		Events:       *events,
		Seed:         *scriptSeed,
		PayloadBytes: *payload,
		Revisions:    *revisions,
		RemoveProb:   *removeProb,
		DupProb:      *dups,
		UniqueVs:     *ordered,
	}
	if *ordered {
		cfg.Revisions, cfg.RemoveProb, cfg.DupProb = 0, 0, 0
	}
	sc := gen.NewScript(cfg)
	var s temporal.Stream
	if *ordered {
		s = sc.RenderOrdered(gen.OrderedStrict, gen.RenderOptions{Seed: *renderSeed, StableFreq: *stableFreq})
	} else {
		s = sc.Render(gen.RenderOptions{
			Seed:         *renderSeed,
			Disorder:     *disorder,
			StableFreq:   *stableFreq,
			SplitInserts: *split,
		})
	}
	if err := temporal.WriteStream(os.Stdout, s); err != nil {
		fmt.Fprintf(os.Stderr, "lmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lmgen: %d elements (%d inserts, %d adjusts, %d stables)\n",
		len(s), s.Inserts(), s.Adjusts(), s.Stables())
}
