// Command lmcat performs a Logical Merge over stream files: each argument
// is one physical stream, delivered round-robin into the selected LMerge
// algorithm; the merged stream is written to stdout and statistics to
// stderr.
//
// Inputs may be JSON lines (cmd/lmgen) or the v2 binary stream-file format
// (internal/wire: preamble + CRC-framed elements, as captured from a binary
// subscriber feed) — the format is sniffed per file. -binary selects the
// binary format for the merged output.
//
// Usage:
//
//	lmcat a.jsonl b.jsonl c.jsonl > merged.jsonl
//	lmcat -case R4 -verify a.jsonl b.lmw
//	lmcat -binary a.jsonl b.jsonl > merged.lmw
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lmerge/internal/core"
	"lmerge/internal/props"
	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

func main() {
	caseName := flag.String("case", "auto", "merge algorithm: auto, R0, R1, R2, R3, R3-, R4 (auto measures the inputs and picks the cheapest safe case)")
	verify := flag.Bool("verify", false, "reconstitute the output and every input; check logical equivalence")
	quiet := flag.Bool("q", false, "suppress the merged stream on stdout (stats only)")
	binary := flag.Bool("binary", false, "write the merged output in the v2 binary stream-file format instead of JSON lines")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: lmcat [-case R3] [-verify] stream.jsonl...")
		os.Exit(2)
	}

	streams := make([]temporal.Stream, flag.NArg())
	for i, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		streams[i], err = readAnyStream(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}

	if strings.EqualFold(*caseName, "auto") {
		p := props.MeasureAll(streams...)
		chosen := props.Choose(p)
		fmt.Fprintf(os.Stderr, "lmcat: measured %v -> %v\n", p, chosen)
		*caseName = chosen.String()
	}

	var out temporal.Stream
	outTDB := temporal.NewTDB()
	emit := func(e temporal.Element) {
		out = append(out, e)
		if err := outTDB.Apply(e); err != nil {
			fatal(fmt.Errorf("merged output invalid: %w", err))
		}
	}
	m, err := makeMerger(*caseName, emit)
	if err != nil {
		fatal(err)
	}
	for i := range streams {
		m.Attach(i)
	}
	pos := make([]int, len(streams))
	for {
		advanced := false
		for s := range streams {
			if pos[s] < len(streams[s]) {
				if err := m.Process(s, streams[s][pos[s]]); err != nil {
					fatal(err)
				}
				pos[s]++
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}

	if !*quiet {
		write := temporal.WriteStream
		if *binary {
			write = wire.WriteStream
		}
		if err := write(os.Stdout, out); err != nil {
			fatal(err)
		}
	}
	st := m.Stats()
	fmt.Fprintf(os.Stderr, "lmcat: %s merged %d inputs: in=%d (i=%d a=%d s=%d) out=%d (i=%d a=%d s=%d) dropped=%d warnings=%d\n",
		m.Case(), len(streams),
		st.InElements(), st.InInserts, st.InAdjusts, st.InStables,
		st.OutElements(), st.OutInserts, st.OutAdjusts, st.OutStables,
		st.Dropped, st.ConsistencyWarnings)

	if *verify {
		for i, s := range streams {
			in, err := temporal.Reconstitute(s)
			if err != nil {
				fatal(fmt.Errorf("input %d invalid: %w", i, err))
			}
			if !in.Equal(outTDB) {
				fatal(fmt.Errorf("input %d TDB differs from merged output TDB", i))
			}
		}
		fmt.Fprintf(os.Stderr, "lmcat: verified — output ≡ all %d inputs (%d events)\n", len(streams), outTDB.Len())
	}
}

// readAnyStream sniffs the file format — the v2 binary stream container
// opens with the 'L' 'M' magic, which can never begin a JSON line — and
// decodes accordingly.
func readAnyStream(r io.Reader) (temporal.Stream, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	if wire.SniffStream(br) {
		return wire.ReadStream(br)
	}
	return temporal.ReadStream(br)
}

func makeMerger(name string, emit core.Emit) (core.Merger, error) {
	switch strings.ToUpper(name) {
	case "R0":
		return core.NewR0(emit), nil
	case "R1":
		return core.NewR1(emit), nil
	case "R2":
		return core.NewR2(emit), nil
	case "R3", "R3+":
		return core.NewR3(emit), nil
	case "R3-":
		return core.NewR3Naive(emit), nil
	case "R4":
		return core.NewR4(emit), nil
	}
	return nil, fmt.Errorf("unknown case %q", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lmcat: %v\n", err)
	os.Exit(1)
}
