// Command lmbenchcmp compares two recorded benchmark result files
// (BENCH_*.json) on the keyed scale-out experiment and fails when the newer
// run regresses per-element cost in the partitioned path.
//
// Usage:
//
//	lmbenchcmp -old BENCH_PR4.json -new BENCH_PR6.json [-tolerance 0.10]
//	lmbenchcmp -fanout -new BENCH_PR9.json
//
// In the default mode both files must carry a "throughput_vs_partitions"
// section whose workload curves ("uniform", "skewed_keyskew2") map partition
// counts to {"tput": N} in input elements per wall-clock second. Throughputs
// are converted to nanoseconds per element and every common (curve,
// partitions) point is compared; a multi-partition point whose ns/element
// grew by more than the tolerance fails the run (exit 1). Single-partition
// points are reported but advisory — the partitioned path is what the gate
// protects.
//
// With -fanout the gate runs on the "fanout" section instead (broadcast
// fan-out curves: per-element encode metrics keyed by subscriber count). The
// new file is gated on the encode-once invariants themselves — frames and
// bytes encoded per element must not vary with the subscriber count, and
// allocation per element must stay far from linear in it; when the old file
// also carries the section, per-subscriber-count allocation points are
// compared across files under the tolerance as well.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
)

type point struct {
	Tput float64 `json:"tput"`
}

type benchFile struct {
	TVP map[string]json.RawMessage `json:"throughput_vs_partitions"`
}

// curves are the throughput_vs_partitions keys that hold partition→tput
// maps; everything else in the section (workload, units, notes, ...) is
// descriptive.
var curves = []string{"uniform", "skewed_keyskew2"}

func loadCurves(path string) (map[string]map[int]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if bf.TVP == nil {
		return nil, fmt.Errorf("%s: no throughput_vs_partitions section", path)
	}
	out := make(map[string]map[int]float64)
	for _, c := range curves {
		msg, ok := bf.TVP[c]
		if !ok {
			continue
		}
		var pts map[string]point
		if err := json.Unmarshal(msg, &pts); err != nil {
			return nil, fmt.Errorf("%s: curve %q: %v", path, c, err)
		}
		m := make(map[int]float64, len(pts))
		for k, p := range pts {
			parts, err := strconv.Atoi(k)
			if err != nil || p.Tput <= 0 {
				return nil, fmt.Errorf("%s: curve %q: bad point %q", path, c, k)
			}
			m[parts] = p.Tput
		}
		out[c] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no recognised curves in throughput_vs_partitions", path)
	}
	return out, nil
}

// fanoutFile is the machine-readable "fanout" section: per-element encode
// metrics keyed by subscriber count (as recorded by lmbench -exp fanout).
type fanoutFile struct {
	Fanout struct {
		FramesPerEl  map[string]float64 `json:"frames_per_element"`
		EncBytesPer  map[string]float64 `json:"encode_bytes_per_element"`
		AllocBytesPE map[string]float64 `json:"alloc_bytes_per_element"`
	} `json:"fanout"`
}

func loadFanout(path string) (map[int][3]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ff fanoutFile
	if err := json.Unmarshal(raw, &ff); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(ff.Fanout.FramesPerEl) == 0 {
		return nil, fmt.Errorf("%s: no fanout section", path)
	}
	out := make(map[int][3]float64)
	for k, frames := range ff.Fanout.FramesPerEl {
		subs, err := strconv.Atoi(k)
		if err != nil || subs <= 0 {
			return nil, fmt.Errorf("%s: fanout: bad subscriber count %q", path, k)
		}
		out[subs] = [3]float64{frames, ff.Fanout.EncBytesPer[k], ff.Fanout.AllocBytesPE[k]}
	}
	return out, nil
}

// fanoutAllocSlack bounds alloc-bytes-per-element growth across the fan-out
// curve as a fraction of linear: growing the subscriber count R-fold may
// grow allocation per element by at most slack*R. Any O(subscribers)
// per-element allocation fails by a wide margin; the constant-cost design
// passes with room for scheduler noise at extreme widths.
const fanoutAllocSlack = 0.05

// gateFanout enforces the encode-once invariants on the new file's fan-out
// curve and, when the old file carries the section too, compares per-point
// allocation across files. Returns the number of failed gates.
func gateFanout(oldPath, newPath string, tol float64) int {
	newF, err := loadFanout(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}
	var subs []int
	for n := range newF {
		subs = append(subs, n)
	}
	sort.Ints(subs)
	lo, hi := subs[0], subs[len(subs)-1]
	failed := 0
	fmt.Printf("%-10s %10s %10s %12s\n", "subs", "frames/el", "enc B/el", "alloc B/el")
	for _, n := range subs {
		p := newF[n]
		fmt.Printf("%-10d %10.2f %10.1f %12.0f\n", n, p[0], p[1], p[2])
	}
	// Encode-once invariants: frames and bytes encoded per element must not
	// vary with the subscriber count at all (1% float slop).
	for i, name := range []string{"frames/el", "enc B/el"} {
		if ratio := newF[hi][i] / newF[lo][i]; ratio > 1.01 || ratio < 0.99 {
			fmt.Printf("FAIL: %s varies with subscriber count (%d subs: %.2f, %d subs: %.2f) — encode work is not subscriber-independent\n",
				name, lo, newF[lo][i], hi, newF[hi][i])
			failed++
		}
	}
	// Allocation independence: far-from-linear growth across the curve.
	allocRatio := newF[hi][2] / newF[lo][2]
	linear := float64(hi) / float64(lo)
	if allocRatio > fanoutAllocSlack*linear {
		fmt.Printf("FAIL: alloc B/el grew %.1fx over a %.0fx subscriber range (limit %.1fx)\n",
			allocRatio, linear, fanoutAllocSlack*linear)
		failed++
	} else {
		fmt.Printf("alloc B/el grew %.1fx over a %.0fx subscriber range (limit %.1fx) — subscriber-independent\n",
			allocRatio, linear, fanoutAllocSlack*linear)
	}
	// Cross-file: per-point allocation regression under the tolerance.
	if oldF, err := loadFanout(oldPath); err == nil {
		for _, n := range subs {
			op, ok := oldF[n]
			if !ok {
				continue
			}
			delta := newF[n][2]/op[2] - 1
			if delta > tol {
				fmt.Printf("FAIL: alloc B/el at %d subs regressed %+.1f%% vs %s (> %.0f%%)\n",
					n, delta*100, oldPath, tol*100)
				failed++
			}
		}
	}
	return failed
}

func main() {
	oldPath := flag.String("old", "BENCH_PR4.json", "baseline benchmark results file")
	newPath := flag.String("new", "BENCH_PR6.json", "candidate benchmark results file")
	tol := flag.Float64("tolerance", 0.10, "maximum allowed ns/element growth on multi-partition points")
	fanout := flag.Bool("fanout", false, "gate the broadcast fan-out curve (\"fanout\" section) instead of the scale-out curves")
	flag.Parse()

	if *fanout {
		if failed := gateFanout(*oldPath, *newPath, *tol); failed > 0 {
			fmt.Fprintf(os.Stderr, "lmbenchcmp: %d fan-out gate(s) failed (%s)\n", failed, *newPath)
			os.Exit(1)
		}
		fmt.Printf("fan-out encode work is subscriber-independent (%s)\n", *newPath)
		return
	}

	oldC, err := loadCurves(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}
	newC, err := loadCurves(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("%-18s %10s %12s %12s %9s  %s\n", "curve", "partitions", "old ns/el", "new ns/el", "delta", "gate")
	failed := 0
	compared := 0
	for _, c := range curves {
		om, nm := oldC[c], newC[c]
		if om == nil || nm == nil {
			continue
		}
		var parts []int
		for p := range om {
			if _, ok := nm[p]; ok {
				parts = append(parts, p)
			}
		}
		sort.Ints(parts)
		for _, p := range parts {
			oldNs := 1e9 / om[p]
			newNs := 1e9 / nm[p]
			delta := newNs/oldNs - 1
			gate := "ok"
			switch {
			case p == 1:
				gate = "advisory"
				if delta > *tol {
					gate = "advisory (regressed)"
				}
			case delta > *tol:
				gate = fmt.Sprintf("FAIL (> %.0f%%)", *tol*100)
				failed++
			}
			compared++
			fmt.Printf("%-18s %10d %12.1f %12.1f %+8.1f%%  %s\n", c, p, oldNs, newNs, delta*100, gate)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "lmbenchcmp: no comparable points between the two files")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %d partitioned point(s) regressed ns/element beyond %.0f%% (%s -> %s)\n",
			failed, *tol*100, *oldPath, *newPath)
		os.Exit(1)
	}
	fmt.Printf("no partitioned ns/element regression beyond %.0f%% (%s -> %s)\n", *tol*100, *oldPath, *newPath)
}
