// Command lmbenchcmp compares two recorded benchmark result files
// (BENCH_*.json) on the keyed scale-out experiment and fails when the newer
// run regresses per-element cost in the partitioned path.
//
// Usage:
//
//	lmbenchcmp -old BENCH_PR4.json -new BENCH_PR6.json [-tolerance 0.10]
//	lmbenchcmp -fanout -new BENCH_PR9.json
//
// In the default mode both files must carry a "throughput_vs_partitions"
// section whose workload curves ("uniform", "skewed_keyskew2") map partition
// counts to {"tput": N} in input elements per wall-clock second. Throughputs
// are converted to nanoseconds per element and every common (curve,
// partitions) point is compared; a multi-partition point whose ns/element
// grew by more than the tolerance fails the run (exit 1). Single-partition
// points are reported but advisory — the partitioned path is what the gate
// protects.
//
// With -fanout the gate runs on the "fanout" section instead (broadcast
// fan-out curves: per-element encode metrics keyed by subscriber count). The
// new file is gated on the encode-once invariants themselves — frames and
// bytes encoded per element must not vary with the subscriber count, and
// allocation per element must stay far from linear in it; when the old file
// also carries the section, per-subscriber-count allocation points are
// compared across files under the tolerance as well.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
)

type point struct {
	Tput float64 `json:"tput"`
}

type benchFile struct {
	TVP map[string]json.RawMessage `json:"throughput_vs_partitions"`
}

// curves are the throughput_vs_partitions keys that hold partition→tput
// maps; everything else in the section (workload, units, notes, ...) is
// descriptive.
var curves = []string{"uniform", "skewed_keyskew2"}

func loadCurves(path string) (map[string]map[int]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if bf.TVP == nil {
		return nil, fmt.Errorf("%s: no throughput_vs_partitions section", path)
	}
	out := make(map[string]map[int]float64)
	for _, c := range curves {
		msg, ok := bf.TVP[c]
		if !ok {
			continue
		}
		var pts map[string]point
		if err := json.Unmarshal(msg, &pts); err != nil {
			return nil, fmt.Errorf("%s: curve %q: %v", path, c, err)
		}
		m := make(map[int]float64, len(pts))
		for k, p := range pts {
			parts, err := strconv.Atoi(k)
			if err != nil || p.Tput <= 0 {
				return nil, fmt.Errorf("%s: curve %q: bad point %q", path, c, k)
			}
			m[parts] = p.Tput
		}
		out[c] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no recognised curves in throughput_vs_partitions", path)
	}
	return out, nil
}

// fanoutFile is the machine-readable "fanout" section: per-element encode
// metrics keyed by subscriber count (as recorded by lmbench -exp fanout).
// The at-rest maps (server_goroutines, idle_resident_bytes_per_subscriber)
// arrived with the cursor-plane delivery rework; older recordings lack them
// and their gates are skipped gracefully.
type fanoutFile struct {
	Fanout struct {
		FramesPerEl  map[string]float64 `json:"frames_per_element"`
		EncBytesPer  map[string]float64 `json:"encode_bytes_per_element"`
		AllocBytesPE map[string]float64 `json:"alloc_bytes_per_element"`
		Goroutines   map[string]float64 `json:"server_goroutines"`
		IdleResident map[string]float64 `json:"idle_resident_bytes_per_subscriber"`
	} `json:"fanout"`
}

// fanoutPoint is one subscriber-count row of the fan-out curve. The at-rest
// fields are optional (hasGor/hasRes) so older files stay loadable.
type fanoutPoint struct {
	frames, encBytes, allocBytes float64
	goroutines, resident         float64
	hasGor, hasRes               bool
}

func loadFanout(path string) (map[int]fanoutPoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ff fanoutFile
	if err := json.Unmarshal(raw, &ff); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(ff.Fanout.FramesPerEl) == 0 {
		return nil, fmt.Errorf("%s: no fanout section", path)
	}
	out := make(map[int]fanoutPoint)
	for k, frames := range ff.Fanout.FramesPerEl {
		subs, err := strconv.Atoi(k)
		if err != nil || subs <= 0 {
			return nil, fmt.Errorf("%s: fanout: bad subscriber count %q", path, k)
		}
		p := fanoutPoint{frames: frames, encBytes: ff.Fanout.EncBytesPer[k], allocBytes: ff.Fanout.AllocBytesPE[k]}
		p.goroutines, p.hasGor = ff.Fanout.Goroutines[k]
		p.resident, p.hasRes = ff.Fanout.IdleResident[k]
		out[subs] = p
	}
	return out, nil
}

// fanoutAllocSlack bounds alloc-bytes-per-element growth across the fan-out
// curve as a fraction of linear: growing the subscriber count R-fold may
// grow allocation per element by at most slack*R. Any O(subscribers)
// per-element allocation fails by a wide margin; the constant-cost design
// passes with room for scheduler noise at extreme widths.
const fanoutAllocSlack = 0.05

// fanoutGoroutineSlack is the absolute growth allowed in the server's at-rest
// goroutine count between the smallest wide point (>=100 subs) and the widest
// one. The worker pool is fixed-size, so anything beyond scheduler jitter
// means delivery grew a per-subscriber goroutine back.
const fanoutGoroutineSlack = 2

// fanoutIdleResidentCap bounds the post-GC resident bytes one idle subscriber
// may pin at wide fan-out (>=1000 subs): a csub, a cursor, and registration
// bookkeeping — not a write buffer, not a goroutine stack.
const fanoutIdleResidentCap = 2048

// gateFanout enforces the encode-once and at-rest invariants on the new
// file's fan-out curve and, when the old file carries the section too,
// compares per-point allocation across files. Returns the number of failed
// gates.
func gateFanout(oldPath, newPath string, tol float64) int {
	newF, err := loadFanout(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}
	var subs []int
	for n := range newF {
		subs = append(subs, n)
	}
	sort.Ints(subs)
	lo, hi := subs[0], subs[len(subs)-1]
	failed := 0
	fmt.Printf("%-10s %10s %10s %12s %9s %11s\n", "subs", "frames/el", "enc B/el", "alloc B/el", "srv gor", "idle B/sub")
	for _, n := range subs {
		p := newF[n]
		gor, res := "-", "-"
		if p.hasGor {
			gor = fmt.Sprintf("%.0f", p.goroutines)
		}
		if p.hasRes {
			res = fmt.Sprintf("%.0f", p.resident)
		}
		fmt.Printf("%-10d %10.2f %10.1f %12.0f %9s %11s\n", n, p.frames, p.encBytes, p.allocBytes, gor, res)
	}
	// Encode-once invariants: frames and bytes encoded per element must not
	// vary with the subscriber count at all (1% float slop).
	for _, g := range []struct {
		name   string
		lo, hi float64
	}{
		{"frames/el", newF[lo].frames, newF[hi].frames},
		{"enc B/el", newF[lo].encBytes, newF[hi].encBytes},
	} {
		if ratio := g.hi / g.lo; ratio > 1.01 || ratio < 0.99 {
			fmt.Printf("FAIL: %s varies with subscriber count (%d subs: %.2f, %d subs: %.2f) — encode work is not subscriber-independent\n",
				g.name, lo, g.lo, hi, g.hi)
			failed++
		}
	}
	// Allocation independence: far-from-linear growth across the curve.
	allocRatio := newF[hi].allocBytes / newF[lo].allocBytes
	linear := float64(hi) / float64(lo)
	if allocRatio > fanoutAllocSlack*linear {
		fmt.Printf("FAIL: alloc B/el grew %.1fx over a %.0fx subscriber range (limit %.1fx)\n",
			allocRatio, linear, fanoutAllocSlack*linear)
		failed++
	} else {
		fmt.Printf("alloc B/el grew %.1fx over a %.0fx subscriber range (limit %.1fx) — subscriber-independent\n",
			allocRatio, linear, fanoutAllocSlack*linear)
	}
	// At-rest goroutine flatness: between the narrowest wide point (>=100
	// subs, past pool startup) and the widest, the server may grow by at most
	// the jitter slack. Skipped when the recording predates the gauges.
	gorBase := 0
	for _, n := range subs {
		if n >= 100 && newF[n].hasGor {
			gorBase = n
			break
		}
	}
	if gorBase != 0 && newF[hi].hasGor && hi > gorBase {
		b, w := newF[gorBase].goroutines, newF[hi].goroutines
		if w > b+fanoutGoroutineSlack {
			fmt.Printf("FAIL: server goroutines grew %.0f → %.0f from %d to %d subs — delivery is not O(worker pool)\n",
				b, w, gorBase, hi)
			failed++
		} else {
			fmt.Printf("server goroutines flat %.0f → %.0f from %d to %d subs — O(worker pool)\n", b, w, gorBase, hi)
		}
	} else {
		fmt.Println("server_goroutines not recorded at wide fan-out; at-rest goroutine gate skipped")
	}
	// Idle resident footprint: at wide fan-out each attached-but-idle
	// subscriber pins at most the cap.
	resGated := false
	for _, n := range subs {
		p := newF[n]
		if n < 1000 || !p.hasRes {
			continue
		}
		resGated = true
		if p.resident > fanoutIdleResidentCap {
			fmt.Printf("FAIL: %.0f resident bytes per idle subscriber at %d subs (cap %d)\n", p.resident, n, fanoutIdleResidentCap)
			failed++
		} else {
			fmt.Printf("%.0f resident bytes per idle subscriber at %d subs (cap %d)\n", p.resident, n, fanoutIdleResidentCap)
		}
	}
	if !resGated {
		fmt.Println("idle_resident_bytes_per_subscriber not recorded at wide fan-out; resident gate skipped")
	}
	// Cross-file: per-point allocation regression under the tolerance.
	if oldF, err := loadFanout(oldPath); err == nil {
		for _, n := range subs {
			op, ok := oldF[n]
			if !ok {
				continue
			}
			delta := newF[n].allocBytes/op.allocBytes - 1
			if delta > tol {
				fmt.Printf("FAIL: alloc B/el at %d subs regressed %+.1f%% vs %s (> %.0f%%)\n",
					n, delta*100, oldPath, tol*100)
				failed++
			}
		}
	}
	return failed
}

func main() {
	oldPath := flag.String("old", "BENCH_PR4.json", "baseline benchmark results file")
	newPath := flag.String("new", "BENCH_PR6.json", "candidate benchmark results file")
	tol := flag.Float64("tolerance", 0.10, "maximum allowed ns/element growth on multi-partition points")
	fanout := flag.Bool("fanout", false, "gate the broadcast fan-out curve (\"fanout\" section) instead of the scale-out curves")
	flag.Parse()

	if *fanout {
		if failed := gateFanout(*oldPath, *newPath, *tol); failed > 0 {
			fmt.Fprintf(os.Stderr, "lmbenchcmp: %d fan-out gate(s) failed (%s)\n", failed, *newPath)
			os.Exit(1)
		}
		fmt.Printf("fan-out encode work is subscriber-independent (%s)\n", *newPath)
		return
	}

	oldC, err := loadCurves(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}
	newC, err := loadCurves(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("%-18s %10s %12s %12s %9s  %s\n", "curve", "partitions", "old ns/el", "new ns/el", "delta", "gate")
	failed := 0
	compared := 0
	for _, c := range curves {
		om, nm := oldC[c], newC[c]
		if om == nil || nm == nil {
			continue
		}
		var parts []int
		for p := range om {
			if _, ok := nm[p]; ok {
				parts = append(parts, p)
			}
		}
		sort.Ints(parts)
		for _, p := range parts {
			oldNs := 1e9 / om[p]
			newNs := 1e9 / nm[p]
			delta := newNs/oldNs - 1
			gate := "ok"
			switch {
			case p == 1:
				gate = "advisory"
				if delta > *tol {
					gate = "advisory (regressed)"
				}
			case delta > *tol:
				gate = fmt.Sprintf("FAIL (> %.0f%%)", *tol*100)
				failed++
			}
			compared++
			fmt.Printf("%-18s %10d %12.1f %12.1f %+8.1f%%  %s\n", c, p, oldNs, newNs, delta*100, gate)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "lmbenchcmp: no comparable points between the two files")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %d partitioned point(s) regressed ns/element beyond %.0f%% (%s -> %s)\n",
			failed, *tol*100, *oldPath, *newPath)
		os.Exit(1)
	}
	fmt.Printf("no partitioned ns/element regression beyond %.0f%% (%s -> %s)\n", *tol*100, *oldPath, *newPath)
}
