// Command lmbenchcmp compares two recorded benchmark result files
// (BENCH_*.json) on the keyed scale-out experiment and fails when the newer
// run regresses per-element cost in the partitioned path.
//
// Usage:
//
//	lmbenchcmp -old BENCH_PR4.json -new BENCH_PR6.json [-tolerance 0.10]
//
// Both files must carry a "throughput_vs_partitions" section whose workload
// curves ("uniform", "skewed_keyskew2") map partition counts to {"tput": N}
// in input elements per wall-clock second. Throughputs are converted to
// nanoseconds per element and every common (curve, partitions) point is
// compared; a multi-partition point whose ns/element grew by more than the
// tolerance fails the run (exit 1). Single-partition points are reported but
// advisory — the partitioned path is what the gate protects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
)

type point struct {
	Tput float64 `json:"tput"`
}

type benchFile struct {
	TVP map[string]json.RawMessage `json:"throughput_vs_partitions"`
}

// curves are the throughput_vs_partitions keys that hold partition→tput
// maps; everything else in the section (workload, units, notes, ...) is
// descriptive.
var curves = []string{"uniform", "skewed_keyskew2"}

func loadCurves(path string) (map[string]map[int]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if bf.TVP == nil {
		return nil, fmt.Errorf("%s: no throughput_vs_partitions section", path)
	}
	out := make(map[string]map[int]float64)
	for _, c := range curves {
		msg, ok := bf.TVP[c]
		if !ok {
			continue
		}
		var pts map[string]point
		if err := json.Unmarshal(msg, &pts); err != nil {
			return nil, fmt.Errorf("%s: curve %q: %v", path, c, err)
		}
		m := make(map[int]float64, len(pts))
		for k, p := range pts {
			parts, err := strconv.Atoi(k)
			if err != nil || p.Tput <= 0 {
				return nil, fmt.Errorf("%s: curve %q: bad point %q", path, c, k)
			}
			m[parts] = p.Tput
		}
		out[c] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no recognised curves in throughput_vs_partitions", path)
	}
	return out, nil
}

func main() {
	oldPath := flag.String("old", "BENCH_PR4.json", "baseline benchmark results file")
	newPath := flag.String("new", "BENCH_PR6.json", "candidate benchmark results file")
	tol := flag.Float64("tolerance", 0.10, "maximum allowed ns/element growth on multi-partition points")
	flag.Parse()

	oldC, err := loadCurves(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}
	newC, err := loadCurves(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("%-18s %10s %12s %12s %9s  %s\n", "curve", "partitions", "old ns/el", "new ns/el", "delta", "gate")
	failed := 0
	compared := 0
	for _, c := range curves {
		om, nm := oldC[c], newC[c]
		if om == nil || nm == nil {
			continue
		}
		var parts []int
		for p := range om {
			if _, ok := nm[p]; ok {
				parts = append(parts, p)
			}
		}
		sort.Ints(parts)
		for _, p := range parts {
			oldNs := 1e9 / om[p]
			newNs := 1e9 / nm[p]
			delta := newNs/oldNs - 1
			gate := "ok"
			switch {
			case p == 1:
				gate = "advisory"
				if delta > *tol {
					gate = "advisory (regressed)"
				}
			case delta > *tol:
				gate = fmt.Sprintf("FAIL (> %.0f%%)", *tol*100)
				failed++
			}
			compared++
			fmt.Printf("%-18s %10d %12.1f %12.1f %+8.1f%%  %s\n", c, p, oldNs, newNs, delta*100, gate)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "lmbenchcmp: no comparable points between the two files")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lmbenchcmp: %d partitioned point(s) regressed ns/element beyond %.0f%% (%s -> %s)\n",
			failed, *tol*100, *oldPath, *newPath)
		os.Exit(1)
	}
	fmt.Printf("no partitioned ns/element regression beyond %.0f%% (%s -> %s)\n", *tol*100, *oldPath, *newPath)
}
