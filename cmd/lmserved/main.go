// Command lmserved runs Logical Merge as a network service and provides the
// matching publisher/subscriber client modes — the deployment shape of the
// paper's high-availability application (replicas on different machines
// feeding one LMerge at the consumer).
//
// Usage:
//
//	lmserved serve -addr 127.0.0.1:7171 -case R3 [-partitions 4]
//	lmgen -events 1000 -render-seed 1 | lmserved pub -addr 127.0.0.1:7171
//	lmgen -events 1000 -render-seed 2 | lmserved pub -addr 127.0.0.1:7171 -wire
//	lmserved sub -addr 127.0.0.1:7171 > merged.jsonl
//	lmserved sub -addr 127.0.0.1:7171 -wire > merged.jsonl
//
// The server negotiates both protocols on one listener: v1 JSON lines and
// the v2 binary wire protocol (internal/wire). -wire selects v2 for the
// pub/sub client modes — framed CRC-checked elements, encode-once broadcast
// blocks on the server, credit-based backpressure instead of
// disconnect-on-overflow.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/metrics"
	"lmerge/internal/partition"
	"lmerge/internal/server"
	"lmerge/internal/temporal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "pub":
		publish(os.Args[2:])
	case "sub":
		subscribe(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lmserved serve|pub|sub [flags]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7171", "listen address")
	caseName := fs.String("case", "R3", "merge algorithm: R0, R1, R2, R3, R4")
	parts := fs.Int("partitions", 1, "keyed scale-out: merge partitions sharding ingestion by payload hash (1 = single merger)")
	rebalance := fs.Bool("rebalance", false, "adaptive hot-key repartitioning: live-migrate routing slots between partition workers under skew (needs -partitions > 1)")
	httpAddr := fs.String("http", "", "serve /metrics and /debug/trace on this address (e.g. 127.0.0.1:7172; empty disables)")
	statsEvery := fs.Duration("stats-every", 0, "log a telemetry line for each merge node at this period (0 disables)")
	dataDir := fs.String("data-dir", "", "durable merge state: WAL + checkpoints under this directory; restart jumpstarts from the latest checkpoint and replays the WAL tail (empty disables)")
	ckptEvery := fs.Duration("checkpoint-every", 0, "checkpoint period when -data-dir is set (0 = server default)")
	fsync := fs.Bool("fsync", false, "fsync every WAL append (survives power loss, not just process death)")
	memBudget := fs.Int("mem-budget", 0, "bound resident merge state to this many bytes: frozen agreed state spills to sorted on-disk runs (under -data-dir/spill when set) and replays on demand (0 disables)")
	creditDeadline := fs.Duration("credit-deadline", 0, "evict a binary (v2) subscriber that stays credit-stalled this long; 0 = server default")
	fanoutWorkers := fs.Int("fanout-workers", 0, "delivery worker pool size for binary (v2) subscribers: N subscribers share this many writer goroutines instead of one each; 0 = max(2, GOMAXPROCS)")
	fs.Parse(args)

	c, err := parseCase(*caseName)
	if err != nil {
		fatal(err)
	}
	opts := server.Options{Case: c, FeedbackLag: -1, Partitions: *parts,
		DataDir: *dataDir, CheckpointEvery: *ckptEvery, Fsync: *fsync,
		MemBudget: *memBudget, CreditDeadline: *creditDeadline,
		FanoutWorkers: *fanoutWorkers}
	if *rebalance {
		if *parts <= 1 {
			fatal(fmt.Errorf("-rebalance needs -partitions > 1"))
		}
		opts.Rebalance = &partition.RebalanceConfig{}
	}
	s, err := server.NewWithOptions(*addr, opts)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		d := s.Durability()
		if d.Recoveries > 0 {
			fmt.Fprintf(os.Stderr, "lmserved: recovered from %s — replayed %d WAL records (%d torn bytes discarded) in %.1fms, stable=%d\n",
				*dataDir, d.ReplayedRecords, d.TornBytes, float64(d.RecoveryLastNS)/1e6, int64(s.MaxStable()))
		} else {
			fmt.Fprintf(os.Stderr, "lmserved: durable state in %s (fsync=%v)\n", *dataDir, *fsync)
		}
	}
	if *memBudget > 0 {
		fmt.Fprintf(os.Stderr, "lmserved: resident merge state bounded to %d bytes (out-of-core spill)\n", *memBudget)
	}
	if *parts > 1 {
		mode := ""
		if *rebalance {
			mode = ", adaptive rebalancing"
		}
		fmt.Fprintf(os.Stderr, "lmserved: merging (%s, %d partitions%s) on %s — ctrl-c to stop\n", c, *parts, mode, s.Addr())
	} else {
		fmt.Fprintf(os.Stderr, "lmserved: merging (%s) on %s — ctrl-c to stop\n", c, s.Addr())
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		go http.Serve(ln, s.MetricsHandler())
		fmt.Fprintf(os.Stderr, "lmserved: metrics on http://%s/metrics, trace on /debug/trace\n", ln.Addr())
	}
	stopLog := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopLog:
					return
				case <-tick.C:
					for _, snap := range s.Telemetry() {
						fmt.Fprintf(os.Stderr, "lmserved: %s\n", snap)
					}
				}
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stopLog)
	st := s.Stats()
	ps := s.PartitionStats()
	snaps := s.Telemetry()
	spSnap := s.SpillStats()
	ws := s.WireStats()
	s.Close()
	fmt.Fprintf(os.Stderr, "lmserved: done — in=%d out=%d dropped=%d warnings=%d\n",
		st.InElements(), st.OutElements(), st.Dropped, st.ConsistencyWarnings)
	if ws.FramesEncoded > 0 || ws.LinesEncoded > 0 {
		fmt.Fprintf(os.Stderr, "lmserved: wire — frames=%d (%dB encoded once) shared=%dB/%d frames history=%dB credit granted=%dB stalls=%d evictions=%d\n",
			ws.FramesEncoded, ws.FrameBytes, ws.SharedBytes, ws.SharedFrames,
			ws.HistoryBytes, ws.CreditGranted, ws.CreditStalls, ws.Evictions)
	}
	if *memBudget > 0 {
		fmt.Fprintf(os.Stderr, "lmserved: spill — runs=%d merged=%d spilled=%dB unspills=%d replay p95=%.0fns\n",
			spSnap.RunsWritten, spSnap.RunsMerged, spSnap.SpilledBytes, spSnap.Unspills, spSnap.ReplayP95NS)
	}
	for _, snap := range snaps {
		if snap.Name == "merge" {
			fmt.Fprintf(os.Stderr, "lmserved: freshness lag p50=%.0f p95=%.0f max=%d — leader stream %d (%d switches)\n",
				snap.Freshness.P50, snap.Freshness.P95, snap.Freshness.Max,
				snap.Leadership.Leader, snap.Leadership.Switches)
		}
	}
	if len(ps) > 0 {
		load := make([]float64, len(ps))
		for i, p := range ps {
			load[i] = float64(p.Processed)
			fmt.Fprintf(os.Stderr, "lmserved: partition %d — processed=%d queue=%d stable=%d lag=%d\n",
				i, p.Processed, p.QueueDepth, int64(p.Stable), int64(p.Lag))
		}
		fmt.Fprintf(os.Stderr, "lmserved: partition load %v imbalance=%.2f\n",
			metrics.Summarize(load), metrics.Imbalance(load))
	}
}

func publish(args []string) {
	fs := flag.NewFlagSet("pub", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7171", "server address")
	join := fs.Int64("join", int64(temporal.MinTime), "join guarantee timestamp (default: complete stream)")
	useWire := fs.Bool("wire", false, "publish over the v2 binary wire protocol (CRC-framed elements) instead of JSON lines")
	fs.Parse(args)

	var in *os.File
	switch fs.NArg() {
	case 0:
		in = os.Stdin
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	default:
		fatal(fmt.Errorf("pub takes at most one input file"))
	}
	connect := server.Connect
	if *useWire {
		connect = server.ConnectBinary
	}
	p, err := connect(*addr, temporal.Time(*join))
	if err != nil {
		fatal(err)
	}
	defer p.Close()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		e, err := temporal.UnmarshalElement(sc.Bytes())
		if err != nil {
			fatal(err)
		}
		if err := p.Send(e); err != nil {
			fatal(err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if err := p.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "lmserved: published %d elements as stream %d\n", n, p.ID())
}

func subscribe(args []string) {
	fs := flag.NewFlagSet("sub", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7171", "server address")
	until := fs.Bool("until-complete", true, "exit once the merged stream reaches stable(∞)")
	useWire := fs.Bool("wire", false, "subscribe over the v2 binary wire protocol (credit-based flow control) instead of JSON lines")
	fs.Parse(args)

	subscribe := server.Subscribe
	if *useWire {
		subscribe = server.SubscribeBinary
	}
	sub, err := subscribe(*addr)
	if err != nil {
		fatal(err)
	}
	defer sub.Close()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for {
		e, ok := sub.Next()
		if !ok {
			return
		}
		line, err := temporal.MarshalElement(e)
		if err != nil {
			fatal(err)
		}
		w.Write(line)
		w.WriteByte('\n')
		if *until && e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
			return
		}
	}
}

func parseCase(name string) (core.Case, error) {
	switch strings.ToUpper(name) {
	case "R0":
		return core.CaseR0, nil
	case "R1":
		return core.CaseR1, nil
	case "R2":
		return core.CaseR2, nil
	case "R3", "R3+":
		return core.CaseR3, nil
	case "R4":
		return core.CaseR4, nil
	}
	return 0, fmt.Errorf("unknown case %q", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lmserved: %v\n", err)
	os.Exit(1)
}
