package main

// End-to-end crash/recovery: a real lmserved child process is SIGKILLed
// mid-stream — no signal handler, no deferred flush, whatever the WAL and
// checkpoint files hold at that instant is the crash image — then restarted
// from the same -data-dir on the same address. A resilient subscriber reading
// across the kill and a resilient publisher redelivering must converge to a
// TDB exactly equal to the no-crash oracle.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"lmerge/internal/chaos"
	"lmerge/internal/gen"
	"lmerge/internal/server"
	"lmerge/internal/temporal"
)

// lmservedBin is the freshly built server binary, compiled once in TestMain.
var lmservedBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "lmserved-e2e-")
	if err != nil {
		panic(err)
	}
	lmservedBin = filepath.Join(dir, "lmserved")
	build := exec.Command("go", "build", "-o", lmservedBin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		panic("building lmserved for e2e tests: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestKill9RecoverySingle(t *testing.T) {
	runKill9Recovery(t, "-fsync")
}

func TestKill9RecoveryPartitioned(t *testing.T) {
	runKill9Recovery(t, "-partitions", "3", "-rebalance")
}

func runKill9Recovery(t *testing.T, extra ...string) {
	dataDir := t.TempDir()
	addr, err := chaos.FreePort()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"serve",
		"-addr", addr, "-case", "R3",
		"-data-dir", dataDir, "-checkpoint-every", "25ms"}, extra...)

	p, err := chaos.StartProc(lmservedBin, args...)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Kill9()
	if err := chaos.WaitTCP(addr, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	sc := gen.NewScript(gen.Config{
		Events: 200, Seed: 900, EventDuration: 60, MaxGap: 8,
		Revisions: 0.4, RemoveProb: 0.2, PayloadBytes: 12,
	})
	stream := sc.Render(gen.RenderOptions{Seed: 901, Disorder: 0.2, StableFreq: 0.05})

	rs := server.NewResilientSubscriber(addr, server.ResilientOptions{
		Seed: 9, MaxAttempts: 400,
		Backoff: server.Backoff{Initial: time.Millisecond, Max: 20 * time.Millisecond},
	})
	defer rs.Close()

	// Deliver a prefix, then read the merge until its stable point comes back
	// through the subscriber: write-ahead of delivery guarantees everything
	// read here is already in the WAL, so the kill cannot lose it.
	pub, err := server.Connect(addr, temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(stream) / 2
	if err := pub.SendStream(stream[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	target := temporal.MinTime
	for _, e := range stream[:cut] {
		if e.Kind == temporal.KindStable {
			target = temporal.MaxT(target, e.T())
		}
	}
	var merged temporal.Stream
	preStable := temporal.MinTime
	for preStable < target {
		e, ok := rs.Next()
		if !ok {
			t.Fatal("subscriber gave up pre-crash")
		}
		merged = append(merged, e)
		if e.Kind == temporal.KindStable {
			preStable = temporal.MaxT(preStable, e.T())
		}
	}

	// Crash. SIGKILL mid-stream — the WAL's final record may be torn; the
	// restart must checksum-truncate and jumpstart from what survived.
	if err := p.Kill9(); err != nil {
		t.Fatal(err)
	}
	pub.Close()

	p2, err := chaos.StartProc(lmservedBin, args...)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Kill9()
	if err := chaos.WaitTCP(addr, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	rp := server.NewResilientPublisher(addr, server.ResilientOptions{Seed: 10})
	if _, err := rp.Deliver(stream); err != nil {
		t.Fatal(err)
	}

	for {
		e, ok := rs.Next()
		if !ok {
			t.Fatal("subscriber gave up post-restart")
		}
		merged = append(merged, e)
		if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
			break
		}
	}
	if rs.Reconnects() == 0 {
		t.Fatal("subscriber never reconnected; the kill was not exercised")
	}
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("spliced stream invalid: %v", err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("TDB across kill -9 diverged from no-crash oracle")
	}
	if err := p2.Stop(2 * time.Second); err != nil && err.Error() != "signal: killed" {
		t.Logf("server shutdown: %v", err)
	}
}
