// Command lmcheck runs the differential correctness harness: it sweeps seeded
// divergent presentations through every LMerge configuration axis (algorithm,
// execution mode, downstream pipeline, delivery order) and reports any
// configuration whose output is not equivalent to the brute-force reference
// oracle. Under the paper's compatibility theorems any divergence is a bug.
//
// Usage:
//
//	lmcheck                     # 500 seeds through the full grid
//	lmcheck -seeds 50 -quick    # trimmed grid, e.g. under -race
//	lmcheck -seed 123 -v        # re-check one seed, print every divergence
//	lmcheck -corpus dir         # also write minimized fuzz seeds for failures
//
// On divergence, each failing seed is shrunk by the delta-debugging minimizer
// and a ready-to-paste Go regression test is printed. Exit status is 1 when
// any divergence was found.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lmerge/internal/diffcheck"
)

func main() {
	seeds := flag.Int("seeds", 500, "number of seeds to sweep")
	seed := flag.Int64("seed", 0, "check exactly this one seed (overrides -seeds/-start)")
	start := flag.Int64("start", 1, "first seed")
	streams := flag.Int("streams", 3, "divergent presentations per merge")
	events := flag.Int("events", 60, "event histories per script")
	quick := flag.Bool("quick", false, "trimmed grid: one representative config per axis value")
	parallel := flag.Int("parallel", 0, "seeds checked concurrently (0 = min(GOMAXPROCS, 8))")
	maxReport := flag.Int("maxreport", 20, "max divergences collected in the report")
	noMinimize := flag.Bool("nominimize", false, "skip minimization of failing seeds")
	corpus := flag.String("corpus", "", "directory to write fuzz seed files for minimized failures")
	verbose := flag.Bool("v", false, "print every collected divergence, not just the first per seed")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "lmcheck: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	opt := diffcheck.Options{
		Seeds:     *seeds,
		StartSeed: *start,
		Streams:   *streams,
		Events:    *events,
		Quick:     *quick,
		Parallel:  *parallel,
		MaxReport: *maxReport,
	}
	if *seed != 0 {
		opt.Seeds = 1
		opt.StartSeed = *seed
	}

	t0 := time.Now()
	rep := diffcheck.Run(opt)
	elapsed := time.Since(t0).Round(time.Millisecond)
	fmt.Printf("lmcheck: %d seeds, %d configuration runs in %v\n", rep.SeedsRun, rep.Runs, elapsed)
	if len(rep.Divergences) == 0 {
		fmt.Println("lmcheck: no divergences")
		return
	}

	fmt.Printf("lmcheck: %d seeds failed, %d divergences collected\n", rep.FailedSeeds, len(rep.Divergences))
	seen := map[int64]bool{}
	n := 0
	for _, d := range rep.Divergences {
		if *verbose || !seen[d.Seed] {
			fmt.Printf("  %v\n", d)
		}
		if seen[d.Seed] {
			continue
		}
		seen[d.Seed] = true
		if *noMinimize {
			continue
		}
		fmt.Printf("lmcheck: minimizing seed %d ...\n", d.Seed)
		m := diffcheck.Minimize(d, opt)
		fmt.Printf("lmcheck: minimized to %d elements across %d streams (%d histories)\n",
			m.Elements, len(m.Streams), m.Histories)
		n++
		fmt.Println(m.GoTest(fmt.Sprintf("Lmcheck%d", n)))
		if *corpus != "" {
			if err := writeCorpus(*corpus, n, m); err != nil {
				fmt.Fprintf(os.Stderr, "lmcheck: %v\n", err)
			}
		}
	}
	os.Exit(1)
}

// writeCorpus writes one go-fuzz seed file per minimized stream, in the
// format `go test fuzz v1` expects under testdata/fuzz/<FuzzName>/.
func writeCorpus(dir string, n int, m *diffcheck.Minimized) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, entry := range m.FuzzCorpus() {
		name := filepath.Join(dir, fmt.Sprintf("lmcheck-%d-stream-%d", n, i))
		if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
			return err
		}
		fmt.Printf("lmcheck: wrote %s\n", name)
	}
	return nil
}
