// Command lmbench regenerates the paper's evaluation tables and figures
// (Section VI) and prints them as aligned text tables, with time series
// rendered as sparklines.
//
// Usage:
//
//	lmbench                          # run everything at paper scale
//	lmbench -exp fig7,fig10          # selected experiments
//	lmbench -events 20000 -payload 64
//
// Absolute numbers depend on the machine; the shapes (who wins, scaling
// trends, crossovers) are what reproduce the paper. See EXPERIMENTS.md for
// the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"lmerge/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig2..fig10, tableiv) or 'all'")
	events := flag.Int("events", bench.Paper.Events, "event histories per workload")
	payload := flag.Int("payload", bench.Paper.PayloadBytes, "payload string bytes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "output format: table or csv")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the experiments) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lmbench: start CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lmbench: write heap profile: %v\n", err)
			}
		}()
	}

	registry := bench.Experiments()
	if *list {
		ids := make([]string, 0, len(registry))
		for id := range registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	scale := bench.Scale{Events: *events, PayloadBytes: *payload}
	var ids []string
	if *exp == "all" {
		ids = []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tableiv", "scale", "ablation-policies", "ablation-feedback", "ablation-jumpstart", "spill", "fanout"}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "lmbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table := run(scale)
		if *format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", table.ID, table.Title, table.CSV())
			continue
		}
		fmt.Println(table)
		fmt.Printf("  (%s in %.1fs, %d events, %dB payloads)\n\n", id, time.Since(start).Seconds(), scale.Events, scale.PayloadBytes)
	}
}
