package diffcheck

import (
	"bytes"
	"fmt"
	"strings"

	"lmerge/internal/temporal"
)

// goName renders the algorithm's Go identifier for generated tests.
func (a Algo) goName() string {
	switch a {
	case AlgoR0:
		return "AlgoR0"
	case AlgoR1:
		return "AlgoR1"
	case AlgoR2:
		return "AlgoR2"
	case AlgoR2Dup:
		return "AlgoR2Dup"
	case AlgoR3:
		return "AlgoR3"
	case AlgoR3Eager:
		return "AlgoR3Eager"
	case AlgoR3HalfFrozen:
		return "AlgoR3HalfFrozen"
	case AlgoR3FullyFrozen:
		return "AlgoR3FullyFrozen"
	case AlgoR3Quorum2:
		return "AlgoR3Quorum2"
	case AlgoR3Leader:
		return "AlgoR3Leader"
	case AlgoR3Naive:
		return "AlgoR3Naive"
	case AlgoR4:
		return "AlgoR4"
	}
	return fmt.Sprintf("Algo(%d)", uint8(a))
}

// goName renders the exec mode's Go identifier.
func (x Exec) goName() string {
	switch x {
	case ExecDirect:
		return "ExecDirect"
	case ExecSync:
		return "ExecSync"
	case ExecRuntime:
		return "ExecRuntime"
	case ExecRuntimeUnbatched:
		return "ExecRuntimeUnbatched"
	case ExecPartitioned:
		return "ExecPartitioned"
	case ExecPartitionedRT:
		return "ExecPartitionedRT"
	case ExecPartitionedRebal:
		return "ExecPartitionedRebal"
	case ExecCrashRecover:
		return "ExecCrashRecover"
	case ExecSpill:
		return "ExecSpill"
	case ExecSpillCrash:
		return "ExecSpillCrash"
	}
	return fmt.Sprintf("Exec(%d)", uint8(x))
}

// goName renders the pipeline's Go identifier.
func (p Pipeline) goName() string {
	switch p {
	case PipeNone:
		return "PipeNone"
	case PipeUnion:
		return "PipeUnion"
	case PipeCount:
		return "PipeCount"
	case PipeCountAggressive:
		return "PipeCountAggressive"
	case PipeTopK:
		return "PipeTopK"
	}
	return fmt.Sprintf("Pipeline(%d)", uint8(p))
}

// goTime renders a time literal, spelling out the sentinels.
func goTime(t temporal.Time) string {
	switch t {
	case temporal.Infinity:
		return "temporal.Infinity"
	case temporal.MinTime:
		return "temporal.MinTime"
	}
	return fmt.Sprintf("%d", int64(t))
}

// goPayload renders a payload literal.
func goPayload(p temporal.Payload) string {
	if p.Data == "" {
		return fmt.Sprintf("temporal.P(%d)", p.ID)
	}
	return fmt.Sprintf("temporal.Payload{ID: %d, Data: %q}", p.ID, p.Data)
}

// goElement renders one element constructor call.
func goElement(e temporal.Element) string {
	switch e.Kind {
	case temporal.KindInsert:
		return fmt.Sprintf("temporal.Insert(%s, %s, %s)", goPayload(e.Payload), goTime(e.Vs), goTime(e.Ve))
	case temporal.KindAdjust:
		return fmt.Sprintf("temporal.Adjust(%s, %s, %s, %s)", goPayload(e.Payload), goTime(e.Vs), goTime(e.VOld), goTime(e.Ve))
	default:
		return fmt.Sprintf("temporal.Stable(%s)", goTime(e.T()))
	}
}

// GoTest renders a ready-to-paste regression test for the minimized failure,
// in package diffcheck style: the literal streams, the failing configuration,
// and a Replay assertion. name must be a valid Go identifier suffix.
func (m *Minimized) GoTest(name string) string {
	var b strings.Builder
	d := m.Divergence
	fmt.Fprintf(&b, "// TestRegress%s pins a divergence found by the differential harness\n", name)
	fmt.Fprintf(&b, "// (seed %d, class %v, config %v):\n", d.Seed, d.Class, d.Config)
	fmt.Fprintf(&b, "//\n//\t%s\n", d.Detail)
	fmt.Fprintf(&b, "func TestRegress%s(t *testing.T) {\n", name)
	b.WriteString("\tstreams := []temporal.Stream{\n")
	for _, s := range m.Streams {
		b.WriteString("\t\t{\n")
		for _, e := range s {
			fmt.Fprintf(&b, "\t\t\t%s,\n", goElement(e))
		}
		b.WriteString("\t\t},\n")
	}
	b.WriteString("\t}\n")
	fmt.Fprintf(&b, "\tcfg := Config{Algo: %s, Exec: %s, Pipeline: %s, Order: %q}\n",
		d.Config.Algo.goName(), d.Config.Exec.goName(), d.Config.Pipeline.goName(), d.Config.Order)
	fmt.Fprintf(&b, "\tfor _, d := range Replay(cfg, %d, streams) {\n", d.Seed)
	b.WriteString("\t\tt.Errorf(\"%v\", d)\n")
	b.WriteString("\t}\n}\n")
	return b.String()
}

// FuzzCorpus renders each minimized stream as a "go test fuzz v1" corpus
// file body for internal/temporal's FuzzReconstitute, seeding the fuzzer with
// stream shapes that once exposed real divergences. The encoding is the wire
// format FuzzReconstitute decodes (temporal.WriteStream / ReadStream).
func (m *Minimized) FuzzCorpus() []string {
	var out []string
	for _, s := range m.Streams {
		var buf bytes.Buffer
		if err := temporal.WriteStream(&buf, s); err != nil {
			continue
		}
		out = append(out, fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", buf.Bytes()))
	}
	return out
}
