package diffcheck

import (
	"strings"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// Replay runs one configuration over explicit presentations and returns any
// divergences. The reference is rebuilt from streams[0] by brute force, so a
// replay is fully self-contained: minimized regression tests embed literal
// streams and call Replay. seed only drives the "random" delivery order.
//
// Raw merges (PipeNone/PipeUnion) are compared against the oracle directly.
// Aggregate pipelines are compared against the same pipeline driven by the
// canonical presentation of the oracle TDB (perfectly ordered inserts and one
// closing stable) through the deterministic sync executor — the simplest
// input any merge algorithm handles trivially.
func Replay(cfg Config, seed int64, streams []temporal.Stream) []Divergence {
	return replay(cfg, seed, streams, Options{})
}

// replay is Replay with an Options carrier, so the minimizer can thread the
// Mutate test hook through to the merger under test.
func replay(cfg Config, seed int64, streams []temporal.Stream, opt Options) []Divergence {
	w := &workload{class: classCount, seed: seed, streams: streams}
	oracle, err := OracleOf(streams[0])
	if err != nil {
		return []Divergence{{Seed: seed, Class: classCount, Config: cfg, Against: "oracle",
			Detail: "presentation 0 is not a valid stream: " + err.Error()}}
	}
	res := runConfig(cfg, w, opt)
	divs := res.divs
	if res.err != nil {
		return append(divs, Divergence{Seed: seed, Class: classCount, Config: cfg,
			Against: "self", Detail: res.err.Error()})
	}
	if res.warnings != 0 {
		divs = append(divs, Divergence{Seed: seed, Class: classCount, Config: cfg, Against: "self",
			Detail: "consistency warnings on mutually consistent inputs"})
	}
	refEvents := oracle.Events()
	refFrozen := oracle.Frozen
	against := "oracle"
	if !cfg.oracleComparable() {
		refCfg := Config{Algo: AlgoR4, Exec: ExecSync, Pipeline: cfg.Pipeline, Order: "roundrobin"}
		refW := &workload{class: classCount, seed: seed, streams: []temporal.Stream{canonicalStream(oracle)}}
		refRes := runConfig(refCfg, refW, Options{})
		ref, refDivs := foldAndCheck(refRes.out, nil, "", refCfg, refW)
		if refRes.err != nil || len(refDivs) > 0 || ref == nil {
			return append(divs, Divergence{Seed: seed, Class: classCount, Config: refCfg, Against: "self",
				Detail: "pipeline reference run failed on the canonical presentation"})
		}
		refEvents = tdbEvents(ref)
		refFrozen = func(t temporal.Time) []temporal.Event { return tdbFrozen(ref, t) }
		against = refCfg.String() + " over canonical input"
	}
	final, foldDivs := foldAndCheck(res.out, refFrozen, against, cfg, w)
	divs = append(divs, foldDivs...)
	if final == nil {
		return divs
	}
	if !final.Stable().IsInf() {
		divs = append(divs, Divergence{Seed: seed, Class: classCount, Config: cfg, Against: "self",
			Detail: "output stable point stalled at " + final.Stable().String()})
	}
	if got := tdbEvents(final); !eventsEqual(got, refEvents) {
		divs = append(divs, Divergence{Seed: seed, Class: classCount, Config: cfg, Against: against,
			Detail: "final TDB diverges: got " + describeEvents(got) + " want " + describeEvents(refEvents)})
	}
	return divs
}

// canonicalStream renders the oracle TDB as its simplest valid presentation:
// inserts in (Vs, Payload, Ve) order followed by stable(∞).
func canonicalStream(o *Oracle) temporal.Stream {
	evs := o.Events()
	out := make(temporal.Stream, 0, len(evs)+1)
	for _, ev := range evs {
		out = append(out, temporal.Insert(ev.Payload, ev.Vs, ev.Ve))
	}
	return append(out, temporal.Stable(temporal.Infinity))
}

// Minimized is a shrunk failing workload: the smallest explicit streams the
// minimizer could reach that still make div.Config diverge.
type Minimized struct {
	Divergence Divergence          // the divergence observed on the minimized streams
	Streams    []temporal.Stream   // the minimized presentations (Replay input)
	Plan       []gen.RenderOptions // the simplified rendering plan that produced them
	Histories  int                 // surviving script histories
	Elements   int                 // total elements across minimized streams
}

// Minimize shrinks the workload behind a grid divergence (found by Run or
// CheckSeed): delta debugging over the script's event histories first, then
// presentation perturbations (dropping whole streams, zeroing disorder,
// undoing insert splitting, thinning stable elements). Every step re-renders
// and re-runs the failing configuration; a step is kept only while the
// divergence persists, so the result is guaranteed to still fail.
func Minimize(div Divergence, opt Options) *Minimized {
	opt = opt.withDefaults()
	attempts := 1
	if div.Config.Exec == ExecRuntime || div.Config.Exec == ExecRuntimeUnbatched {
		// The concurrent runtime's interleaving is scheduling-dependent; give
		// flaky divergences a few chances before declaring a candidate healthy.
		attempts = 3
	}
	sc := gen.NewScript(scriptConfig(div.Class, div.Seed, opt.Events))
	plan := renderPlan(div.Class, div.Seed, opt.Streams)
	render := func(hs []gen.History, p []gen.RenderOptions) []temporal.Stream {
		trial := &gen.Script{Cfg: sc.Cfg, Histories: hs}
		return renderStreams(trial, div.Class, p)
	}

	// Shrinking steps must preserve the original failure mode, not merely keep
	// the run red: a careless step (say, thinning away the closing stable) can
	// trade the bug under investigation for a trivial, unrelated divergence
	// that would survive the eventual fix and poison the generated regression
	// test. A candidate counts as failing only if it reproduces the original
	// divergence kind and introduces no kinds absent from the full workload.
	want := detailKind(div.Detail)
	allowed := map[string]bool{want: true}
	for _, d := range replay(div.Config, div.Seed, render(sc.Histories, plan), opt) {
		allowed[detailKind(d.Detail)] = true
	}
	failsOn := func(streams []temporal.Stream) bool {
		if len(streams) == 0 {
			return false
		}
		for i := 0; i < attempts; i++ {
			divs := replay(div.Config, div.Seed, streams, opt)
			hit := false
			for _, d := range divs {
				k := detailKind(d.Detail)
				if !allowed[k] {
					hit = false
					break
				}
				if k == want {
					hit = true
				}
			}
			if hit {
				return true
			}
		}
		return false
	}

	// Phase 1: ddmin over script histories.
	hs := ddmin(sc.Histories, func(cand []gen.History) bool {
		return failsOn(render(cand, plan))
	})

	// Phase 2: presentation perturbations on the rendering plan.
	// 2a: drop whole streams.
	for i := len(plan) - 1; i >= 0 && len(plan) > 1; i-- {
		cand := append(append([]gen.RenderOptions(nil), plan[:i]...), plan[i+1:]...)
		if failsOn(render(hs, cand)) {
			plan = cand
		}
	}
	// 2b: simplify each surviving stream's options.
	for i := range plan {
		for _, simplify := range []func(*gen.RenderOptions){
			func(o *gen.RenderOptions) { o.Disorder = 0 },
			func(o *gen.RenderOptions) { o.SplitInserts = false },
			func(o *gen.RenderOptions) { o.StableFreq = -1 }, // forced stables only
		} {
			cand := append([]gen.RenderOptions(nil), plan...)
			simplify(&cand[i])
			if failsOn(render(hs, cand)) {
				plan = cand
			}
		}
	}
	// One more history pass: the simpler presentations may need fewer events.
	hs = ddmin(hs, func(cand []gen.History) bool {
		return failsOn(render(cand, plan))
	})

	streams := render(hs, plan)
	// Phase 3: thin stable elements directly in the final streams. Dropping a
	// stable never changes a stream's TDB or breaks mutual consistency, so
	// this is safe element-level surgery.
	for i := range streams {
		kept := ddmin(stableIndexes(streams[i]), func(cand []int) bool {
			trial := append([]temporal.Stream(nil), streams...)
			trial[i] = withOnlyStables(streams[i], cand)
			return failsOn(trial)
		})
		streams[i] = withOnlyStables(streams[i], kept)
	}

	if !failsOn(streams) {
		// Flaky to the end: fall back to the unminimized workload.
		streams = render(sc.Histories, renderPlan(div.Class, div.Seed, opt.Streams))
		hs = sc.Histories
	}
	m := &Minimized{Streams: streams, Plan: plan, Histories: len(hs)}
	for _, s := range streams {
		m.Elements += len(s)
	}
	if divs := replay(div.Config, div.Seed, streams, opt); len(divs) > 0 {
		m.Divergence = divs[0]
		m.Divergence.Class = div.Class
	} else {
		m.Divergence = div
	}
	return m
}

// detailKind maps a divergence detail to a coarse failure mode, so the
// minimizer can tell "the same bug, at a different timestamp" apart from "a
// different problem entirely".
func detailKind(detail string) string {
	for _, k := range []string{
		"snapshot",
		"frozen surface",
		"final TDB",
		"stable point stalled",
		"consistency warnings",
		"not a valid stream",
		"invalid",
		"not mutually consistent",
	} {
		if strings.Contains(detail, k) {
			return k
		}
	}
	return "other"
}

// ddmin is the classic delta-debugging reduction: it returns a subsequence of
// items, 1-minimal up to chunk granularity, on which fails still holds. If
// fails rejects the full input, items is returned unchanged.
func ddmin[T any](items []T, fails func([]T) bool) []T {
	if len(items) == 0 || !fails(items) {
		return items
	}
	n := 2
	for len(items) >= 2 {
		chunk := (len(items) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(items); lo += chunk {
			hi := min(lo+chunk, len(items))
			// Try the complement of [lo, hi).
			cand := make([]T, 0, len(items)-(hi-lo))
			cand = append(cand, items[:lo]...)
			cand = append(cand, items[hi:]...)
			if len(cand) > 0 && fails(cand) {
				items = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(items) {
				break
			}
			n = min(2*n, len(items))
		}
	}
	return items
}

// stableIndexes returns the positions of stable elements in s.
func stableIndexes(s temporal.Stream) []int {
	var idx []int
	for i, e := range s {
		if e.Kind == temporal.KindStable {
			idx = append(idx, i)
		}
	}
	return idx
}

// withOnlyStables copies s, keeping only the stable elements at positions in
// keep (ascending) and every non-stable element.
func withOnlyStables(s temporal.Stream, keep []int) temporal.Stream {
	out := make(temporal.Stream, 0, len(s))
	k := 0
	for i, e := range s {
		if e.Kind == temporal.KindStable {
			if k < len(keep) && keep[k] == i {
				out = append(out, e)
				k++
			}
			continue
		}
		out = append(out, e)
	}
	return out
}
