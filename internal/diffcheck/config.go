package diffcheck

import (
	"fmt"

	"lmerge/internal/core"
	"lmerge/internal/partition"
	"lmerge/internal/spill"
	"lmerge/internal/temporal"
)

// diffPartitions is the partition count of the partitioned executor axes —
// small enough to keep the grid cheap, large enough that routing, stable
// broadcast, and frontier reunification all carry real traffic.
const diffPartitions = 3

// Algo names one merge algorithm + policy point on the differential grid.
type Algo uint8

// The algorithm axis: the five restriction cases, the naive baseline, the R2
// multiset relaxation, and the R3 output-policy variants of Sec. V-A.
const (
	AlgoR0 Algo = iota
	AlgoR1
	AlgoR2
	AlgoR2Dup
	AlgoR3
	AlgoR3Eager
	AlgoR3HalfFrozen
	AlgoR3FullyFrozen
	AlgoR3Quorum2
	AlgoR3Leader
	AlgoR3Naive
	AlgoR4
	algoCount // sentinel
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoR0:
		return "R0"
	case AlgoR1:
		return "R1"
	case AlgoR2:
		return "R2"
	case AlgoR2Dup:
		return "R2dup"
	case AlgoR3:
		return "R3"
	case AlgoR3Eager:
		return "R3/eager"
	case AlgoR3HalfFrozen:
		return "R3/half-frozen"
	case AlgoR3FullyFrozen:
		return "R3/fully-frozen"
	case AlgoR3Quorum2:
		return "R3/quorum2"
	case AlgoR3Leader:
		return "R3/leader"
	case AlgoR3Naive:
		return "R3naive"
	case AlgoR4:
		return "R4"
	}
	return fmt.Sprintf("Algo(%d)", uint8(a))
}

// NewMerger constructs the algorithm's merger with output callback emit.
func (a Algo) NewMerger(emit core.Emit) core.Merger {
	switch a {
	case AlgoR0:
		return core.NewR0(emit)
	case AlgoR1:
		return core.NewR1(emit)
	case AlgoR2:
		return core.NewR2(emit)
	case AlgoR2Dup:
		return core.NewR2Dup(emit)
	case AlgoR3:
		return core.NewR3(emit)
	case AlgoR3Eager:
		return core.NewR3(emit, core.R3Options{Adjust: core.AdjustEager})
	case AlgoR3HalfFrozen:
		return core.NewR3(emit, core.R3Options{Insert: core.InsertHalfFrozen})
	case AlgoR3FullyFrozen:
		return core.NewR3(emit, core.R3Options{Insert: core.InsertFullyFrozen})
	case AlgoR3Quorum2:
		return core.NewR3(emit, core.R3Options{Insert: core.InsertQuorum, Quorum: 2})
	case AlgoR3Leader:
		return core.NewR3(emit, core.R3Options{Follow: core.FollowLeader})
	case AlgoR3Naive:
		return core.NewR3Naive(emit)
	case AlgoR4:
		return core.NewR4(emit)
	}
	panic(fmt.Sprintf("diffcheck: unknown algorithm %d", uint8(a)))
}

// NewPartitionedMerger constructs the algorithm behind the keyed scale-out
// wrapper: parts independent instances fed by payload-hash routing with
// stables broadcast, reunified at the minimum partition frontier. The wrapper
// satisfies core.Merger, so the differential harness drives it exactly like
// the single-instance mergers.
func (a Algo) NewPartitionedMerger(parts int, emit core.Emit) core.Merger {
	return partition.NewWith(parts, func(e core.Emit) core.Merger { return a.NewMerger(e) }, emit)
}

// handoffCapable reports whether the algorithm's merger supports live state
// handoff (core.Handoff) — the eligibility gate for the migration-forcing
// ExecPartitionedRebal axis.
func (a Algo) handoffCapable() bool {
	h, ok := a.NewMerger(func(temporal.Element) {}).(core.Handoff)
	return ok && h.HandoffCapable()
}

// snapshotCapable reports whether the algorithm's merger can checkpoint
// (core.Snapshotter) — the eligibility gate for the crash-recovery axis,
// matching the server's -data-dir gate.
func (a Algo) snapshotCapable() bool {
	_, ok := a.NewMerger(func(temporal.Element) {}).(core.Snapshotter)
	return ok
}

// spillCapable reports whether the algorithm's merger supports frozen-state
// extraction (core.FrozenExtractor) — the eligibility gate for the
// out-of-core spill axes, matching the server's -mem-budget gate.
func (a Algo) spillCapable() bool {
	return spill.Capable(a.NewMerger(func(temporal.Element) {}))
}

// Exec selects the execution substrate a configuration runs on.
type Exec uint8

const (
	// ExecDirect drives the core merger with direct Process calls in a
	// deterministic interleaving — no engine involved.
	ExecDirect Exec = iota
	// ExecSync drives an engine graph through the synchronous depth-first
	// executor (deterministic).
	ExecSync
	// ExecRuntime drives the same graph through the concurrent runtime with
	// the default dispatch batch size (one goroutine per stream, one per
	// node, nondeterministic interleaving).
	ExecRuntime
	// ExecRuntimeUnbatched is ExecRuntime with batch size 1 (the pre-batching
	// element-at-a-time channel protocol).
	ExecRuntimeUnbatched
	// ExecPartitioned drives the keyed-partitioned merger (diffPartitions
	// sub-mergers behind hash routing and frontier reunification) with direct
	// Process calls in a deterministic interleaving — the scale-out subsystem
	// in its synchronous core.Merger form, subject to the same oracle and
	// snapshot checks as ExecDirect.
	ExecPartitioned
	// ExecPartitionedRT drives the partitioned engine topology (per-stream
	// splitters → per-partition lmerge nodes → reunify) through the
	// concurrent runtime, one worker goroutine per node.
	ExecPartitionedRT
	// ExecPartitionedRebal is ExecPartitioned with deterministic key-range
	// migrations forced between deliveries: every few elements a routing slot
	// is transplanted to another partition through the live handoff protocol
	// (core.Handoff), so the oracle, snapshot, and frozen-surface checks all
	// run against a merger whose key→partition assignment churns mid-stream.
	ExecPartitionedRebal
	// ExecCrashRecover crashes the merger mid-sweep and rebuilds it through
	// the durability tier's own machinery: emissions are framed as WAL RecEmit
	// records (with a seed-derived torn tail that checksum truncation must
	// absorb), the snapshot is round-tripped through the checkpoint codec, and
	// the fresh merger is jumpstarted from snapshot + WAL tail before the full
	// streams are redelivered — the in-process twin of the server's kill -9
	// recovery, subject to the same oracle and frozen-surface checks.
	ExecCrashRecover
	// ExecSpill is ExecDirect with the merger wrapped in the out-of-core
	// spill layer (internal/spill) under a pathological 1-byte budget and
	// per-element probing, so every frozen-eligible node is forced through a
	// spill/consult/unspill round trip and the background run merger churns
	// constantly — the oracle, snapshot, and frozen-surface checks then cover
	// state that lives in runs rather than the resident index.
	ExecSpill
	// ExecSpillCrash is ExecCrashRecover with BOTH phases' mergers
	// spill-wrapped: the checkpoint snapshot must replay spilled runs, and the
	// jumpstarted merger re-spills under the same starvation budget while
	// absorbing redelivery.
	ExecSpillCrash
	execCount // sentinel
)

// partitioned reports whether the exec mode runs the keyed scale-out path.
func (x Exec) partitioned() bool {
	return x == ExecPartitioned || x == ExecPartitionedRT || x == ExecPartitionedRebal
}

// String names the execution mode.
func (x Exec) String() string {
	switch x {
	case ExecDirect:
		return "direct"
	case ExecSync:
		return "sync"
	case ExecRuntime:
		return "runtime"
	case ExecRuntimeUnbatched:
		return "runtime/unbatched"
	case ExecPartitioned:
		return fmt.Sprintf("partitioned-%d", diffPartitions)
	case ExecPartitionedRT:
		return fmt.Sprintf("partitioned-%d/rt", diffPartitions)
	case ExecPartitionedRebal:
		return fmt.Sprintf("partitioned-%d/rebal", diffPartitions)
	case ExecCrashRecover:
		return "crash-recover"
	case ExecSpill:
		return "spill"
	case ExecSpillCrash:
		return "spill-crash"
	}
	return fmt.Sprintf("Exec(%d)", uint8(x))
}

// Pipeline selects the downstream operator plan appended to the merge.
type Pipeline uint8

const (
	// PipeNone compares the raw merge output against the oracle.
	PipeNone Pipeline = iota
	// PipeUnion splits every presentation into two halves re-interleaved by a
	// per-input Union ahead of the merge (union→lmerge), exercising the
	// union's min-stable logic inside the differential loop. Output is still
	// oracle-comparable.
	PipeUnion
	// PipeCount appends a conservative tumbling-window count downstream of
	// the merge (lmerge→count); outputs are compared pairwise across
	// configurations.
	PipeCount
	// PipeCountAggressive appends the speculative count, whose corrections
	// exercise removal/re-insert handling downstream of every algorithm.
	PipeCountAggressive
	// PipeTopK appends the Top-K ranked aggregate (lmerge→topk).
	PipeTopK
	pipelineCount // sentinel
)

// String names the pipeline.
func (p Pipeline) String() string {
	switch p {
	case PipeNone:
		return "none"
	case PipeUnion:
		return "union"
	case PipeCount:
		return "count"
	case PipeCountAggressive:
		return "count/aggr"
	case PipeTopK:
		return "topk"
	}
	return fmt.Sprintf("Pipeline(%d)", uint8(p))
}

// Config is one cell of the differential grid.
type Config struct {
	Algo     Algo
	Exec     Exec
	Pipeline Pipeline
	// Order is the deterministic delivery interleaving for ExecDirect,
	// ExecPartitioned, ExecPartitionedRebal, and ExecSync: "roundrobin",
	// "sequential", or "random" (seed-driven).
	// Ignored by the concurrent runtimes, whose interleaving is scheduling.
	Order string
}

// String renders the cell compactly for reports.
func (c Config) String() string {
	s := fmt.Sprintf("%v/%v", c.Algo, c.Exec)
	if c.Pipeline != PipeNone {
		s += "/" + c.Pipeline.String()
	}
	if c.Order != "" && (c.Exec == ExecDirect || c.Exec == ExecSync ||
		c.Exec == ExecPartitioned || c.Exec == ExecPartitionedRebal ||
		c.Exec == ExecCrashRecover || c.Exec == ExecSpill ||
		c.Exec == ExecSpillCrash) {
		s += "/" + c.Order
	}
	return s
}

// oracleComparable reports whether the configuration's output stream should
// reconstitute to the oracle TDB itself (true for raw merges and the
// union-fronted merge; aggregate pipelines are compared pairwise instead).
func (c Config) oracleComparable() bool {
	return c.Pipeline == PipeNone || c.Pipeline == PipeUnion
}
