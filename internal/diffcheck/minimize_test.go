package diffcheck

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"lmerge/internal/temporal"
)

// TestDdmin checks the delta-debugging core: reduction to a 1-minimal subset,
// and the no-op cases.
func TestDdmin(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	fails := func(cand []int) bool {
		has3, has7 := false, false
		for _, v := range cand {
			has3 = has3 || v == 3
			has7 = has7 || v == 7
		}
		return has3 && has7
	}
	got := ddmin(items, fails)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("ddmin = %v, want [3 7]", got)
	}

	if got := ddmin(items, func([]int) bool { return false }); len(got) != len(items) {
		t.Errorf("ddmin on a healthy input shrank it to %v", got)
	}
	if got := ddmin(nil, func([]int) bool { return true }); len(got) != 0 {
		t.Errorf("ddmin(nil) = %v", got)
	}
}

// TestStableSurgery checks the element-level stable-thinning helpers preserve
// every non-stable element and exactly the kept stables.
func TestStableSurgery(t *testing.T) {
	p := temporal.P(9)
	s := temporal.Stream{
		temporal.Insert(p, 0, 10),
		temporal.Stable(5),
		temporal.Insert(p, 6, 20),
		temporal.Stable(8),
		temporal.Stable(9),
	}
	idx := stableIndexes(s)
	if len(idx) != 3 || idx[0] != 1 || idx[1] != 3 || idx[2] != 4 {
		t.Fatalf("stableIndexes = %v", idx)
	}
	thin := withOnlyStables(s, []int{3})
	if len(thin) != 3 || thin[0].Kind != temporal.KindInsert ||
		thin[1].Kind != temporal.KindInsert || thin[2].T() != 8 {
		t.Errorf("withOnlyStables = %v", thin)
	}
}

// TestDetailKind checks failure-mode classification keys on the invariant
// violated, not the timestamps in the message.
func TestDetailKind(t *testing.T) {
	a := detailKind("snapshot at stable(164) diverges from live output state: got {} want {x}")
	b := detailKind("snapshot at stable(8) diverges from live output state: got {} want {y}")
	if a != b {
		t.Errorf("same failure mode classified differently: %q vs %q", a, b)
	}
	if detailKind("output stable point stalled at 164") == a {
		t.Error("stalled stable classified as a snapshot failure")
	}
}

// TestMinimizePlantedBug runs the whole pipeline end to end on the planted
// adjust-dropping bug: find a divergence, shrink it, and check the minimized
// streams still reproduce it while being materially smaller.
func TestMinimizePlantedBug(t *testing.T) {
	opt := Options{Mutate: mutateR3}
	divs := CheckSeed(1, opt)
	var target *Divergence
	for i := range divs {
		if divs[i].Config.Algo == AlgoR3 && divs[i].Config.Exec == ExecDirect {
			target = &divs[i]
			break
		}
	}
	if target == nil {
		t.Fatalf("no deterministic divergence among %d", len(divs))
	}

	m := Minimize(*target, opt)
	full := buildWorkload(target.Class, target.Seed, 3, 60)
	fullElements := 0
	for _, s := range full.streams {
		fullElements += len(s)
	}
	if m.Elements >= fullElements {
		t.Errorf("minimizer did not shrink: %d elements vs %d in the full workload",
			m.Elements, fullElements)
	}
	if got := replay(target.Config, target.Seed, m.Streams, opt); len(got) == 0 {
		t.Error("minimized streams no longer reproduce the divergence")
	}
	if kind := detailKind(m.Divergence.Detail); kind != detailKind(target.Detail) {
		t.Errorf("minimization changed the failure mode: %q -> %q",
			detailKind(target.Detail), kind)
	}

	// The healthy merger must pass the minimized streams: the generated
	// regression test asserts zero divergences after the bug is fixed.
	if got := Replay(target.Config, target.Seed, m.Streams); len(got) != 0 {
		t.Errorf("minimized streams fail without the planted bug: %v", got)
	}

	src := m.GoTest("PlantedAdjustDrop")
	for _, want := range []string{
		"func TestRegressPlantedAdjustDrop(t *testing.T)",
		"temporal.Insert(",
		"Replay(cfg, 1, streams)",
		"AlgoR3",
		"ExecDirect",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("GoTest output missing %q:\n%s", want, src)
		}
	}
}

// TestFuzzCorpusRoundTrip checks corpus entries are valid go-fuzz seed files
// whose embedded bytes decode back to the minimized streams.
func TestFuzzCorpusRoundTrip(t *testing.T) {
	streams := []temporal.Stream{{
		temporal.Insert(temporal.Payload{ID: 3, Data: "ab"}, 1, temporal.Infinity),
		temporal.Adjust(temporal.Payload{ID: 3, Data: "ab"}, 1, temporal.Infinity, 9),
		temporal.Stable(temporal.Infinity),
	}}
	m := &Minimized{Streams: streams}
	corpus := m.FuzzCorpus()
	if len(corpus) != 1 {
		t.Fatalf("%d corpus entries, want 1", len(corpus))
	}
	entry := corpus[0]
	if !strings.HasPrefix(entry, "go test fuzz v1\n[]byte(") {
		t.Fatalf("bad corpus header: %q", entry)
	}
	quoted := strings.TrimSuffix(strings.TrimPrefix(entry, "go test fuzz v1\n[]byte("), ")\n")
	raw, err := strconv.Unquote(quoted)
	if err != nil {
		t.Fatalf("corpus payload is not a Go quoted string: %v", err)
	}
	back, err := temporal.ReadStream(bytes.NewReader([]byte(raw)))
	if err != nil {
		t.Fatalf("corpus payload does not decode as a stream: %v", err)
	}
	if len(back) != len(streams[0]) {
		t.Fatalf("round trip lost elements: %d -> %d", len(streams[0]), len(back))
	}
	for i := range back {
		if back[i] != streams[0][i] {
			t.Errorf("element %d changed in round trip: %v -> %v", i, streams[0][i], back[i])
		}
	}
}
