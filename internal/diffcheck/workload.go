package diffcheck

import (
	"fmt"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// Class names one workload shape on the differential grid. Each class is the
// richest stream family every algorithm in its column can legally consume, so
// divergence within a class is always a bug, never a restriction mismatch.
type Class uint8

const (
	// ClassStrict: strictly increasing Vs, insert-only — the R0 contract.
	// Presentations differ only in stable placement. All algorithms eligible.
	ClassStrict Class = iota
	// ClassDet: non-decreasing Vs with tie groups delivered in deterministic
	// (payload) order — the R1 contract. R1..R4 eligible.
	ClassDet
	// ClassTies: non-decreasing Vs with tie groups shuffled differently per
	// presentation — the R2 contract. R2..R4 eligible.
	ClassTies
	// ClassGeneral: disorder, revisions, removals, split inserts — the R3
	// contract ((Vs, Payload) still a key). R3 variants, R3Naive, R4 eligible.
	ClassGeneral
	// ClassMultiset: ClassGeneral plus duplicate (Vs, Payload) keys — the R4
	// contract. R4 only.
	ClassMultiset
	classCount // sentinel
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassStrict:
		return "strict"
	case ClassDet:
		return "det"
	case ClassTies:
		return "ties"
	case ClassGeneral:
		return "general"
	case ClassMultiset:
		return "multiset"
	case classCount:
		return "replay" // explicit-stream replays carry no workload class
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// algos returns the algorithms legally consuming this class's streams.
func (c Class) algos() []Algo {
	switch c {
	case ClassStrict:
		return []Algo{AlgoR0, AlgoR1, AlgoR2, AlgoR2Dup, AlgoR3, AlgoR3Eager,
			AlgoR3HalfFrozen, AlgoR3FullyFrozen, AlgoR3Quorum2, AlgoR3Leader,
			AlgoR3Naive, AlgoR4}
	case ClassDet:
		return []Algo{AlgoR1, AlgoR2, AlgoR2Dup, AlgoR3, AlgoR3Naive, AlgoR4}
	case ClassTies:
		return []Algo{AlgoR2, AlgoR2Dup, AlgoR3, AlgoR3Leader, AlgoR3Naive, AlgoR4}
	case ClassGeneral:
		return []Algo{AlgoR3, AlgoR3Eager, AlgoR3HalfFrozen, AlgoR3FullyFrozen,
			AlgoR3Quorum2, AlgoR3Leader, AlgoR3Naive, AlgoR4}
	case ClassMultiset:
		return []Algo{AlgoR4}
	}
	return nil
}

// workload is one seeded script plus its physically divergent presentations.
type workload struct {
	class   Class
	seed    int64
	script  *gen.Script
	streams []temporal.Stream
}

// buildWorkload draws the class's script and renders nStreams mutually
// consistent presentations of it. Every knob is derived from the seed, so a
// workload is fully reproducible from (class, seed, nStreams, events).
func buildWorkload(class Class, seed int64, nStreams, events int) *workload {
	sc := gen.NewScript(scriptConfig(class, seed, events))
	w := &workload{class: class, seed: seed, script: sc}
	w.streams = renderStreams(sc, class, renderPlan(class, seed, nStreams))
	return w
}

// scriptConfig returns the generator configuration buildWorkload uses, so the
// minimizer can rebuild the exact script behind a failing seed.
func scriptConfig(class Class, seed int64, events int) gen.Config {
	w := gen.Config{
		Events:        events,
		Seed:          seed*int64(classCount) + int64(class),
		EventDuration: 60,
		MaxGap:        9,
		PayloadBytes:  6,
	}
	switch class {
	case ClassStrict:
		w.UniqueVs = true
	case ClassDet, ClassTies:
		w.GroupSize = 3
	case ClassGeneral:
		w.Revisions = 0.5
		w.RemoveProb = 0.25
	case ClassMultiset:
		w.Revisions = 0.5
		w.RemoveProb = 0.25
		w.DupProb = 0.3
	}
	return w
}

// renderPlan derives each presentation's rendering options from the seed.
// StableEvery guarantees mid-stream stable points so intermediate-surface
// checks always have cut points to compare at. The plan is exposed separately
// from the rendering so the minimizer can perturb it (zero the disorder, undo
// insert splitting) while hunting for a simpler failing presentation.
func renderPlan(class Class, seed int64, nStreams int) []gen.RenderOptions {
	plan := make([]gen.RenderOptions, nStreams)
	for i := range plan {
		plan[i] = gen.RenderOptions{
			Seed:        seed*101 + int64(i) + 1,
			StableFreq:  0.06,
			StableEvery: 7 + i, // divergent stable cadence per presentation
		}
		if class == ClassGeneral || class == ClassMultiset {
			plan[i].Disorder = []float64{0.3, 0.1, 0.5}[i%3]
			plan[i].SplitInserts = i%2 == 1
		}
	}
	return plan
}

// renderStreams renders one divergent presentation of sc per plan entry.
func renderStreams(sc *gen.Script, class Class, plan []gen.RenderOptions) []temporal.Stream {
	streams := make([]temporal.Stream, len(plan))
	for i, o := range plan {
		switch class {
		case ClassStrict:
			streams[i] = sc.RenderOrdered(gen.OrderedStrict, o)
		case ClassDet:
			streams[i] = sc.RenderOrdered(gen.OrderedDeterministic, o)
		case ClassTies:
			streams[i] = sc.RenderOrdered(gen.OrderedShuffledTies, o)
		default: // ClassGeneral, ClassMultiset
			streams[i] = sc.Render(o)
		}
	}
	return streams
}
