// Package diffcheck is the differential correctness harness: it replays
// seeded divergent presentations of one logical script through every LMerge
// configuration axis — algorithm (R0–R4, the naive baseline, and the policy
// variants), execution mode (direct merger calls, the synchronous engine
// executor, the concurrent runtime batched and unbatched), and downstream
// operator pipelines — and asserts that every configuration reconstitutes to
// the same temporal database as a brute-force reference oracle, at every
// output stable point and at end-of-stream.
//
// The paper's Sec. III–V invariant makes the harness sound: every LMerge
// output is compatible with the canonical logical script, so ANY pairwise
// divergence between two configurations, or between a configuration and the
// oracle, is by definition a bug. Failures are shrunk by a seeded
// delta-debugging minimizer (see minimize.go) into a ready-to-paste Go
// regression test.
package diffcheck

import (
	"fmt"
	"sort"

	"lmerge/internal/temporal"
)

// Oracle is the deliberately naive reference semantics: it replays an element
// sequence into a final TDB by brute force. It shares no code with
// internal/core — no indexes, no freelists, no per-stream bookkeeping, just a
// flat event slice scanned linearly — so a bug in the optimised mergers
// cannot hide inside the oracle too.
type Oracle struct {
	events []temporal.Event // multiset, unordered; linear scans only
	stable temporal.Time
	primed bool
}

// NewOracle returns an empty oracle TDB.
func NewOracle() *Oracle {
	return &Oracle{stable: temporal.MinTime, primed: true}
}

func (o *Oracle) ensure() {
	if !o.primed {
		o.stable = temporal.MinTime
		o.primed = true
	}
}

// Stable returns the largest stable timestamp applied.
func (o *Oracle) Stable() temporal.Time { o.ensure(); return o.stable }

// Len returns the event count, counting multiplicity.
func (o *Oracle) Len() int { return len(o.events) }

// Apply folds one element into the oracle state, enforcing the same element
// semantics as temporal.TDB.Apply (Example 5 of the paper) with straight-line
// code: inserts append, adjusts linearly search and retarget (or delete),
// stables advance the stability point.
func (o *Oracle) Apply(e temporal.Element) error {
	o.ensure()
	switch e.Kind {
	case temporal.KindInsert:
		if e.Ve < e.Vs {
			return fmt.Errorf("oracle: insert %v has negative lifetime", e)
		}
		if e.Vs < o.stable {
			return fmt.Errorf("oracle: insert %v starts before stable point %v", e, o.stable)
		}
		if e.Ve == e.Vs {
			return nil // empty validity interval: contributes no event
		}
		o.events = append(o.events, temporal.Event{Payload: e.Payload, Vs: e.Vs, Ve: e.Ve})
		return nil
	case temporal.KindAdjust:
		if e.Ve < e.Vs {
			return fmt.Errorf("oracle: adjust %v has negative lifetime", e)
		}
		if e.VOld < o.stable || e.Ve < o.stable {
			return fmt.Errorf("oracle: adjust %v references time before stable point %v", e, o.stable)
		}
		for i := range o.events {
			ev := o.events[i]
			if ev.Payload == e.Payload && ev.Vs == e.Vs && ev.Ve == e.VOld {
				if e.IsRemoval() {
					o.events[i] = o.events[len(o.events)-1]
					o.events = o.events[:len(o.events)-1]
				} else {
					o.events[i].Ve = e.Ve
				}
				return nil
			}
		}
		return fmt.Errorf("oracle: adjust %v matches no event", e)
	case temporal.KindStable:
		if t := e.T(); t > o.stable {
			o.stable = t
		}
		return nil
	}
	return fmt.Errorf("oracle: unknown element kind %v", e.Kind)
}

// Replay folds a whole prefix, returning the position of the first invalid
// element.
func (o *Oracle) Replay(s temporal.Stream) error {
	for i, e := range s {
		if err := o.Apply(e); err != nil {
			return fmt.Errorf("element %d: %w", i, err)
		}
	}
	return nil
}

// OracleOf replays a known-valid presentation into a fresh oracle.
func OracleOf(s temporal.Stream) (*Oracle, error) {
	o := NewOracle()
	if err := o.Replay(s); err != nil {
		return nil, err
	}
	return o, nil
}

// Events returns the multiset in canonical (Vs, Payload, Ve) order.
func (o *Oracle) Events() []temporal.Event {
	out := append([]temporal.Event(nil), o.events...)
	sortEvents(out)
	return out
}

// Frozen returns the canonically ordered sub-multiset of events fully frozen
// at stable point t (Ve < t): the part of the TDB no later element may touch.
func (o *Oracle) Frozen(t temporal.Time) []temporal.Event {
	var out []temporal.Event
	for _, ev := range o.events {
		if ev.Ve < t {
			out = append(out, ev)
		}
	}
	sortEvents(out)
	return out
}

// Live returns the canonically ordered sub-multiset of events still alive at
// stable point t (Ve >= t): what a snapshot taken at t must reconstitute.
func (o *Oracle) Live(t temporal.Time) []temporal.Event {
	var out []temporal.Event
	for _, ev := range o.events {
		if ev.Ve >= t {
			out = append(out, ev)
		}
	}
	sortEvents(out)
	return out
}

// sortEvents orders events by (Vs, Payload, Ve) so multisets compare as
// slices.
func sortEvents(evs []temporal.Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if c := a.Key().Compare(b.Key()); c != 0 {
			return c < 0
		}
		return a.Ve < b.Ve
	})
}

// eventsEqual compares two canonically ordered multisets.
func eventsEqual(a, b []temporal.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tdbEvents expands a TDB into the canonical ordered multiset.
func tdbEvents(t *temporal.TDB) []temporal.Event {
	var out []temporal.Event
	for _, ev := range t.Events() {
		for i := 0; i < t.Count(ev); i++ {
			out = append(out, ev)
		}
	}
	sortEvents(out)
	return out
}

// tdbFrozen expands the Ve < t sub-multiset of a TDB.
func tdbFrozen(t *temporal.TDB, at temporal.Time) []temporal.Event {
	var out []temporal.Event
	for _, ev := range t.Events() {
		if ev.Ve < at {
			for i := 0; i < t.Count(ev); i++ {
				out = append(out, ev)
			}
		}
	}
	sortEvents(out)
	return out
}

// tdbLive expands the Ve >= t sub-multiset of a TDB.
func tdbLive(t *temporal.TDB, at temporal.Time) []temporal.Event {
	var out []temporal.Event
	for _, ev := range t.Events() {
		if ev.Ve >= at {
			for i := 0; i < t.Count(ev); i++ {
				out = append(out, ev)
			}
		}
	}
	sortEvents(out)
	return out
}

// describeEvents renders a short diff-friendly form of a multiset for
// divergence reports.
func describeEvents(evs []temporal.Event) string {
	if len(evs) == 0 {
		return "{}"
	}
	s := "{"
	for i, ev := range evs {
		if i > 0 {
			s += ", "
		}
		s += ev.String()
		if i == 7 && len(evs) > 8 {
			return s + fmt.Sprintf(", … %d more}", len(evs)-8)
		}
	}
	return s + "}"
}
