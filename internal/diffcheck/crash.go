package diffcheck

import (
	"fmt"

	"lmerge/internal/core"
	"lmerge/internal/durable"
	"lmerge/internal/spill"
	"lmerge/internal/temporal"
)

// runCrashRecover is the differential twin of the server's kill -9 recovery
// (internal/server/durability.go): it runs the merger to a mid-sweep crash
// point while maintaining the durable picture a crash would leave — the last
// checkpoint (snapshot round-tripped through the stream codec, backlog
// position, stable point) and a WAL of every emission framed as RecEmit — then
// throws the merger away and rebuilds a fresh one from that picture alone:
//
//  1. checksum-truncate the WAL (a seed-derived tear mutilates the tail; the
//     lost suffix is recovered by redelivery, exactly as a real torn record
//     would be),
//  2. restored backlog = checkpoint backlog ++ EmitTail of the WAL,
//  3. jumpstart: feed a ghost seed stream — the fold of the restored backlog
//     (live events as inserts plus the fold's stable; the same reconciled
//     Snapshot form the server's recovery seeds) — with emissions suppressed
//     (the backlog already holds them),
//  4. detach the ghost (withdrawal churn) and redeliver every input stream in
//     full, duplicates absorbed.
//
// The output offered to the oracle/frozen-surface checks is restored backlog
// ++ live post-recovery emissions: byte-for-byte what a subscriber reading
// FROM 0 across the crash would see.
func runCrashRecover(cfg Config, w *workload, opt Options) result {
	var res result

	// Phase 1: run to the crash point, maintaining checkpoint + WAL. The
	// spill-crash axis wraps both phases' mergers in the starved spill layer,
	// so the checkpoint snapshot must replay spilled runs and the jumpstarted
	// merger re-spills while absorbing redelivery.
	var out temporal.Stream
	m1 := cfg.Algo.NewMerger(func(e temporal.Element) { out = append(out, e) })
	if cfg.Exec == ExecSpillCrash {
		sp, err := spill.Wrap(m1, spillStarved())
		if err != nil {
			res.err = fmt.Errorf("spill wrap: %v; grid gate failed", err)
			return res
		}
		defer sp.Close()
		m1 = sp
	}
	if opt.Mutate != nil {
		m1 = opt.Mutate(cfg, m1)
	}
	sn1, ok := m1.(core.Snapshotter)
	if !ok {
		res.err = fmt.Errorf("merger is not a core.Snapshotter; grid gate failed")
		return res
	}
	for i := range w.streams {
		m1.Attach(i)
	}
	order := deliveryOrder(cfg.Order, streamLens(w.streams), w.seed)
	crashAt := len(order) / 2
	ckptCut := crashAt / 2 // stop checkpointing here, so a WAL tail accrues
	pos := make([]int, len(w.streams))
	var wal []byte
	walLen := uint64(0)
	var ckptSnap []byte // snapshot through the checkpoint stream codec
	var ckptBacklog temporal.Stream
	ckptStable := temporal.MinTime
	haveCkpt := false
	prevStable := temporal.MinTime
	for step, s := range order[:crashAt] {
		e := w.streams[s][pos[s]]
		pos[s]++
		if err := m1.Process(s, e); err != nil {
			res.err = fmt.Errorf("pre-crash process %v from stream %d: %v", e, s, err)
			return res
		}
		// Write-ahead: frame every new emission before "delivering" it.
		for int(walLen) < len(out) {
			wal = durable.AppendRecord(wal, durable.Record{
				Kind: durable.RecEmit, Seq: walLen, Els: out[walLen : walLen+1]})
			walLen++
		}
		if step < ckptCut && m1.MaxStable() > prevStable {
			prevStable = m1.MaxStable()
			ckptSnap = core.AppendStream(nil, sn1.Snapshot())
			ckptBacklog = append(temporal.Stream(nil), out...)
			ckptStable = prevStable
			haveCkpt = true
		}
	}

	// Crash. Tear the WAL tail (seed-derived, possibly zero bytes) and let
	// checksum truncation decide what survived.
	tear := int(uint64(w.seed*7+int64(crashAt)) % 6)
	if tear > len(wal) {
		tear = len(wal)
	}
	recs, _ := durable.DecodeAll(wal[:len(wal)-tear])
	restored := append(temporal.Stream(nil), ckptBacklog...)
	restored = append(restored, durable.EmitTail(recs, uint64(len(ckptBacklog)))...)

	// Phase 2: rebuild. Emissions during the ghost seed are suppressed — the
	// restored backlog already represents them.
	var out2 temporal.Stream
	suppress := true
	m2 := cfg.Algo.NewMerger(func(e temporal.Element) {
		if !suppress {
			out2 = append(out2, e)
		}
	})
	if cfg.Exec == ExecSpillCrash {
		sp, err := spill.Wrap(m2, spillStarved())
		if err != nil {
			res.err = fmt.Errorf("spill wrap (recovery): %v", err)
			return res
		}
		defer sp.Close()
		m2 = sp
	}
	if opt.Mutate != nil {
		m2 = opt.Mutate(cfg, m2)
	}
	// One ghost replica carries the whole seed — mirroring the server, which
	// feeds the recovered snapshot + tail through a single ghost attach. (Two
	// ghosts would double-withdraw co-owned events at detach; confirmation
	// policies that would need a second replica are excluded from this axis.)
	seedID := len(w.streams)
	m2.Attach(seedID)
	feed := func(e temporal.Element) bool {
		if err := m2.Process(seedID, e); err != nil {
			res.err = fmt.Errorf("seed replay rejected %v: %v", e, err)
			return false
		}
		return true
	}
	if haveCkpt {
		// The snapshot is not the seed (the fold below covers it), but its
		// codec round-trip must reproduce a valid stream whose TDB matches
		// the checkpoint backlog's live region — the on-disk checkpoint
		// invariant, checked here under crash conditions.
		snap, err := core.DecodeStream(ckptSnap)
		if err != nil {
			res.err = fmt.Errorf("checkpoint snapshot codec round-trip: %v", err)
			return res
		}
		snapTDB, err := temporal.Reconstitute(snap)
		if err != nil {
			res.err = fmt.Errorf("checkpoint snapshot invalid after codec round-trip: %v", err)
			return res
		}
		ckptTDB, err := temporal.Reconstitute(ckptBacklog)
		if err != nil {
			res.err = fmt.Errorf("checkpoint backlog invalid: %v", err)
			return res
		}
		if got, want := tdbEvents(snapTDB), tdbLive(ckptTDB, ckptStable); !eventsEqual(got, want) {
			res.divs = append(res.divs, Divergence{Seed: w.seed, Class: w.class, Config: cfg,
				Against: "self", Detail: fmt.Sprintf(
					"checkpoint snapshot diverges from backlog live region at stable(%v): got %s want %s",
					ckptStable, describeEvents(got), describeEvents(want))})
		}
	}
	// Seed the fresh merger with the FOLD of the restored backlog — one
	// insert per still-live event at its current interval, closed by the
	// fold's stable point (the paper's checkpoint form). Raw-replaying the
	// backlog would be unsound: under the lazy adjust policy a re-consumed
	// output stream leaves the merger's output state unreconciled until the
	// next stable — and the record carrying that stable may be exactly what
	// the crash tore off, leaving later withdrawals citing stale intervals.
	fold, err := temporal.Reconstitute(restored)
	if err != nil {
		res.err = fmt.Errorf("restored backlog invalid: %v", err)
		return res
	}
	st := fold.Stable()
	for _, ev := range tdbLive(fold, st) {
		if !feed(temporal.Insert(ev.Payload, ev.Vs, ev.Ve)) {
			return res
		}
	}
	if st != temporal.MinTime && !feed(temporal.Stable(st)) {
		return res
	}
	suppress = false
	m2.Detach(seedID)

	// Redeliver every stream in full from the top — resilient-publisher
	// semantics; the merger absorbs the already-merged prefix as duplicates.
	for i := range w.streams {
		m2.Attach(i)
	}
	pos2 := make([]int, len(w.streams))
	for _, s := range deliveryOrder(cfg.Order, streamLens(w.streams), w.seed) {
		e := w.streams[s][pos2[s]]
		pos2[s]++
		if err := m2.Process(s, e); err != nil {
			res.err = fmt.Errorf("post-crash process %v from stream %d: %v", e, s, err)
			return res
		}
	}
	res.out = append(restored, out2...)
	res.warnings = m1.Stats().ConsistencyWarnings + m2.Stats().ConsistencyWarnings
	return res
}
