package diffcheck

import (
	"testing"

	"lmerge/internal/core"
	"lmerge/internal/temporal"
)

// TestOracleMatchesTDB cross-validates the two independent element-semantics
// implementations — the brute-force oracle and temporal.TDB — over every
// generated presentation of every workload class. Any disagreement means one
// of the harness's own yardsticks is wrong.
func TestOracleMatchesTDB(t *testing.T) {
	for class := ClassStrict; class < classCount; class++ {
		for seed := int64(1); seed <= 5; seed++ {
			w := buildWorkload(class, seed, 3, 40)
			for i, s := range w.streams {
				o := NewOracle()
				tdb := temporal.NewTDB()
				for j, e := range s {
					oErr := o.Apply(e)
					tErr := tdb.Apply(e)
					if (oErr == nil) != (tErr == nil) {
						t.Fatalf("class=%v seed=%d stream=%d element %d %v: oracle err=%v, TDB err=%v",
							class, seed, i, j, e, oErr, tErr)
					}
					if oErr != nil {
						t.Fatalf("class=%v seed=%d stream=%d: generated presentation invalid at %d: %v",
							class, seed, i, j, oErr)
					}
				}
				if got, want := tdbEvents(tdb), o.Events(); !eventsEqual(got, want) {
					t.Errorf("class=%v seed=%d stream=%d: TDB %s != oracle %s",
						class, seed, i, describeEvents(got), describeEvents(want))
				}
				if tdb.Stable() != o.Stable() {
					t.Errorf("class=%v seed=%d stream=%d: TDB stable %v != oracle stable %v",
						class, seed, i, tdb.Stable(), o.Stable())
				}
			}
		}
	}
}

// TestOracleRejectsInvalid exercises the oracle's validity checks: the same
// element-level rules temporal.TDB enforces.
func TestOracleRejectsInvalid(t *testing.T) {
	p := temporal.P(1)
	cases := []struct {
		name string
		pre  temporal.Stream
		bad  temporal.Element
	}{
		{"negative lifetime insert", nil, temporal.Insert(p, 10, 5)},
		{"insert before stable", temporal.Stream{temporal.Stable(20)}, temporal.Insert(p, 10, 30)},
		{"adjust negative lifetime", temporal.Stream{temporal.Insert(p, 10, 30)}, temporal.Adjust(p, 10, 30, 5)},
		{"adjust VOld below stable", temporal.Stream{temporal.Insert(p, 10, 30), temporal.Stable(40)}, temporal.Adjust(p, 10, 30, 50)},
		{"adjust matches nothing", temporal.Stream{temporal.Insert(p, 10, 30)}, temporal.Adjust(p, 10, 25, 35)},
	}
	for _, tc := range cases {
		o := NewOracle()
		if err := o.Replay(tc.pre); err != nil {
			t.Fatalf("%s: prefix rejected: %v", tc.name, err)
		}
		if err := o.Apply(tc.bad); err == nil {
			t.Errorf("%s: oracle accepted %v", tc.name, tc.bad)
		}
	}
}

// TestOraclePartition checks Frozen/Live split the multiset exactly and that
// an empty-interval insert contributes nothing.
func TestOraclePartition(t *testing.T) {
	o := NewOracle()
	s := temporal.Stream{
		temporal.Insert(temporal.P(1), 0, 10),
		temporal.Insert(temporal.P(2), 5, 50),
		temporal.Insert(temporal.P(3), 7, 7), // empty interval: no event
		temporal.Insert(temporal.P(2), 5, 50),
		temporal.Stable(20),
	}
	if err := o.Replay(s); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 3 {
		t.Fatalf("Len=%d, want 3 (duplicate counted, empty interval skipped)", o.Len())
	}
	frozen, live := o.Frozen(20), o.Live(20)
	if len(frozen) != 1 || frozen[0].Payload != temporal.P(1) {
		t.Errorf("Frozen(20)=%s, want just payload 1", describeEvents(frozen))
	}
	if len(live) != 2 {
		t.Errorf("Live(20)=%s, want payload 2 twice", describeEvents(live))
	}
	if got := len(o.Frozen(temporal.Infinity)); got != 3 {
		t.Errorf("Frozen(∞) has %d events, want all 3", got)
	}
}

// TestRunCleanSweep runs a small quick-grid sweep and expects zero
// divergences: the merge algorithms agree with the oracle on every class.
func TestRunCleanSweep(t *testing.T) {
	opt := Options{Seeds: 3, Quick: true}
	if testing.Short() {
		opt.Seeds = 1
	}
	rep := Run(opt)
	if len(rep.Divergences) != 0 {
		for _, d := range rep.Divergences {
			t.Errorf("%v", d)
		}
	}
	if rep.SeedsRun != opt.Seeds {
		t.Errorf("SeedsRun=%d, want %d", rep.SeedsRun, opt.Seeds)
	}
	if rep.Runs == 0 {
		t.Error("no configurations were run")
	}
}

// TestFullGridSeed runs one seed through the full (non-quick) grid, covering
// every algorithm × executor × pipeline cell including the concurrent runtime.
func TestFullGridSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow")
	}
	for _, d := range CheckSeed(7, Options{}) {
		t.Errorf("%v", d)
	}
}

// brokenR3 wraps a merger and silently drops every 5th adjust — a planted
// bug used to prove the harness actually detects output corruption.
type brokenR3 struct {
	core.Merger
	n int
}

func (b *brokenR3) Process(s core.StreamID, e temporal.Element) error {
	if e.Kind == temporal.KindAdjust {
		b.n++
		if b.n%5 == 0 {
			return nil
		}
	}
	return b.Merger.Process(s, e)
}

// mutateR3 is the Options.Mutate hook planting brokenR3 under AlgoR3 only.
func mutateR3(cfg Config, m core.Merger) core.Merger {
	if cfg.Algo == AlgoR3 {
		return &brokenR3{Merger: m}
	}
	return m
}

// TestPlantedBugDetected proves sensitivity: a merger that drops adjusts must
// produce divergences, and only in the sabotaged configurations.
func TestPlantedBugDetected(t *testing.T) {
	divs := CheckSeed(1, Options{Mutate: mutateR3})
	if len(divs) == 0 {
		t.Fatal("harness missed the planted bug")
	}
	for _, d := range divs {
		if d.Config.Algo != AlgoR3 {
			t.Errorf("divergence leaked outside the sabotaged algorithm: %v", d)
		}
	}
}

// TestDeliveryOrders checks every delivery order is a complete interleaving:
// each stream's elements all appear, in per-stream order.
func TestDeliveryOrders(t *testing.T) {
	lens := []int{5, 3, 8}
	for _, name := range []string{"roundrobin", "sequential", "random"} {
		order := deliveryOrder(name, lens, 42)
		counts := make([]int, len(lens))
		total := 0
		for _, s := range order {
			counts[s]++
			total++
		}
		for i, n := range counts {
			if n != lens[i] {
				t.Errorf("%s: stream %d delivered %d elements, want %d", name, i, n, lens[i])
			}
		}
		if total != 16 {
			t.Errorf("%s: %d total deliveries, want 16", name, total)
		}
	}
}

// TestGridEligibility checks workload classes only pair with algorithms whose
// input restrictions they satisfy — a mismatch would report spurious
// "divergences" that are really contract violations.
func TestGridEligibility(t *testing.T) {
	for class := ClassStrict; class < classCount; class++ {
		for _, cfg := range grid(class, false) {
			ok := false
			for _, a := range class.algos() {
				if a == cfg.Algo {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("class %v grid contains ineligible algorithm %v", class, cfg.Algo)
			}
		}
	}
	if got := len(ClassMultiset.algos()); got != 1 {
		t.Errorf("multiset class admits %d algorithms, want R4 only", got)
	}
}
