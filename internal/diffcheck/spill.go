package diffcheck

import (
	"fmt"

	"lmerge/internal/core"
	"lmerge/internal/spill"
	"lmerge/internal/temporal"
)

// spillStarved is the pathological spill configuration the differential axes
// run under: a 1-byte budget probed at every element forces every
// frozen-eligible node out of core immediately, and arity 2 keeps the
// background compactor merging constantly. Runs stay in memory (Dir empty)
// but still round-trip through the durable run codec, so framing bugs
// surface here too.
func spillStarved() spill.Config {
	return spill.Config{Budget: 1, ProbeEvery: 1, Arity: 2}
}

// runSpill is runDirect with the merger spill-wrapped under the starvation
// config: the same deterministic interleaving, oracle comparison, and
// per-stable snapshot checks, but with most agreed state living in runs —
// Snapshot must replay them, stables must re-admit them ahead of
// absent-treatment sweeps, and re-presented keys must be absorbed or
// re-admitted by the fingerprint consult path.
func runSpill(cfg Config, w *workload, opt Options) result {
	var out temporal.Stream
	var res result
	sp, err := spill.Wrap(
		cfg.Algo.NewMerger(func(e temporal.Element) { out = append(out, e) }),
		spillStarved())
	if err != nil {
		res.err = fmt.Errorf("spill wrap: %v; grid gate failed", err)
		return res
	}
	defer sp.Close()
	var m core.Merger = sp
	if opt.Mutate != nil {
		m = opt.Mutate(cfg, m)
	}
	for i := range w.streams {
		m.Attach(i)
	}
	prefix := temporal.NewTDB()
	applied := 0
	prevStable := temporal.MinTime
	sn, canSnap := m.(core.Snapshotter)
	pos := make([]int, len(w.streams))
	for _, s := range deliveryOrder(cfg.Order, streamLens(w.streams), w.seed) {
		e := w.streams[s][pos[s]]
		pos[s]++
		if err := m.Process(s, e); err != nil {
			res.err = fmt.Errorf("process %v from stream %d: %v", e, s, err)
			return res
		}
		for ; applied < len(out); applied++ {
			_ = prefix.Apply(out[applied])
		}
		if canSnap && m.MaxStable() > prevStable {
			prevStable = m.MaxStable()
			res.divs = append(res.divs, checkSnapshot(cfg, w, sn, prefix, prevStable)...)
		}
	}
	res.out = out
	res.warnings = m.Stats().ConsistencyWarnings
	return res
}
