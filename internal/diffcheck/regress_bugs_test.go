package diffcheck

// Regression tests produced by the seeded minimizer (Minimize(...).GoTest)
// for divergences the differential harness surfaced — and this PR fixed — in
// internal/core. Each test embeds the minimized presentations literally, so
// it stays meaningful even if the generator or seeds change.

import (
	"testing"

	"lmerge/internal/temporal"
)

// TestRegressFullyFrozenSnapshotHoldback pins a divergence found by the
// differential harness (seed 1, class strict, config
// R3/fully-frozen/direct/sequential):
//
//	snapshot at stable(164) diverges from live output state:
//	got {} want {⟨99:4s57DG, [159, 171)⟩, ⟨198:v1qTVF, [160, 175)⟩}
//
// Under the fully-frozen insert policy the input stable point runs ahead of
// the held-back output stable point; the sweep used the input point to retire
// nodes, deleting events still live on the output, so checkpoints lost them.
func TestRegressFullyFrozenSnapshotHoldback(t *testing.T) {
	streams := []temporal.Stream{
		{
			temporal.Insert(temporal.Payload{ID: 99, Data: "4s57DG"}, 159, 171),
			temporal.Insert(temporal.Payload{ID: 198, Data: "v1qTVF"}, 160, 175),
			temporal.Insert(temporal.Payload{ID: 211, Data: "TxyIJw"}, 164, 209),
			temporal.Insert(temporal.Payload{ID: 218, Data: "gooX11"}, 172, 283),
			temporal.Insert(temporal.Payload{ID: 269, Data: "ic6v2U"}, 174, 245),
			temporal.Insert(temporal.Payload{ID: 292, Data: "F21sc0"}, 180, 265),
			temporal.Insert(temporal.Payload{ID: 114, Data: "U2VJLW"}, 185, 276),
			temporal.Stable(188),
			temporal.Insert(temporal.Payload{ID: 75, Data: "N6JMZY"}, 188, 303),
			temporal.Stable(temporal.Infinity),
		},
	}
	cfg := Config{Algo: AlgoR3FullyFrozen, Exec: ExecDirect, Pipeline: PipeNone, Order: "sequential"}
	for _, d := range Replay(cfg, 1, streams) {
		t.Errorf("%v", d)
	}
}

// TestRegressR4SnapshotFrozenOccurrence pins a divergence found by the
// differential harness (seed 1, class multiset, config R4/direct/random):
//
//	snapshot at stable(249) diverges from live output state:
//	got {⟨91:hP5TNJ, [232, 243)⟩, ⟨91:hP5TNJ, [232, 249)⟩}
//	want {⟨91:hP5TNJ, [232, 249)⟩}
//
// A live multiset node's Ve tier retains occurrences that froze at an earlier
// stable sweep (the node survives because a sibling occurrence is live); R4's
// snapshot emitted those frozen occurrences as if they were live state.
func TestRegressR4SnapshotFrozenOccurrence(t *testing.T) {
	streams := []temporal.Stream{
		{
			temporal.Insert(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, 243),
			temporal.Insert(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, 249),
			temporal.Adjust(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, 249, 273),
			temporal.Stable(temporal.Infinity),
		},
		{
			temporal.Insert(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, temporal.Infinity),
			temporal.Insert(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, temporal.Infinity),
			temporal.Adjust(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, temporal.Infinity, 249),
			temporal.Adjust(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, temporal.Infinity, 243),
			temporal.Adjust(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, 249, 273),
			temporal.Stable(temporal.Infinity),
		},
		{
			temporal.Insert(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, 249),
			temporal.Insert(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, 243),
			temporal.Stable(249),
			temporal.Adjust(temporal.Payload{ID: 91, Data: "hP5TNJ"}, 232, 249, 273),
		},
	}
	cfg := Config{Algo: AlgoR4, Exec: ExecDirect, Pipeline: PipeNone, Order: "random"}
	for _, d := range Replay(cfg, 1, streams) {
		t.Errorf("%v", d)
	}
}
