package diffcheck

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"lmerge/internal/core"
	"lmerge/internal/engine"
	"lmerge/internal/operators"
	"lmerge/internal/partition"
	"lmerge/internal/temporal"
)

// Downstream pipeline shape: tumbling-window width and Top-K rank depth,
// sized so a default workload spans a few dozen windows.
const (
	pipeWidth = 40
	pipeK     = 3
)

// Divergence is one confirmed disagreement: a configuration whose output is
// not equivalent to the reference (the oracle, another configuration, or its
// own invariants). Under the paper's Sec. III–V compatibility theorems every
// divergence is a bug in the implementation, never a legal behaviour
// difference.
type Divergence struct {
	Seed   int64
	Class  Class
	Config Config
	// Against names the reference side: "oracle", "self", or a peer config.
	Against string
	Detail  string
}

// String renders the divergence report line.
func (d Divergence) String() string {
	return fmt.Sprintf("seed=%d class=%v config=%v vs %s: %s",
		d.Seed, d.Class, d.Config, d.Against, d.Detail)
}

// Options parameterises a differential run.
type Options struct {
	// Seeds is the number of seeds to sweep (default 50).
	Seeds int
	// StartSeed is the first seed (default 1).
	StartSeed int64
	// Streams is the number of divergent presentations per merge (default 3).
	Streams int
	// Events is the number of event histories per script (default 60).
	Events int
	// Quick trims the grid to one representative config per axis value, for
	// race-enabled short runs.
	Quick bool
	// MaxReport caps collected divergences (default 20); failing seeds are
	// still counted past the cap.
	MaxReport int
	// Parallel is the number of seeds checked concurrently (default
	// min(GOMAXPROCS, 8)). The report is deterministic regardless: results
	// are folded in seed order.
	Parallel int
	// Mutate, when set, wraps every direct-execution merger (ExecDirect and
	// ExecPartitioned) — the test hook that lets the harness verify it can
	// catch (and minimize) a planted bug.
	Mutate func(Config, core.Merger) core.Merger
}

func (o Options) withDefaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 50
	}
	if o.StartSeed == 0 {
		o.StartSeed = 1
	}
	if o.Streams == 0 {
		o.Streams = 3
	}
	if o.Events == 0 {
		o.Events = 60
	}
	if o.MaxReport == 0 {
		o.MaxReport = 20
	}
	if o.Parallel == 0 {
		o.Parallel = min(runtime.GOMAXPROCS(0), 8)
	}
	return o
}

// Report summarises a differential sweep.
type Report struct {
	SeedsRun    int
	FailedSeeds int
	Runs        int // total configuration runs executed
	Divergences []Divergence
}

// Run sweeps seeds [StartSeed, StartSeed+Seeds) through the full grid,
// checking Parallel seeds concurrently.
func Run(opt Options) *Report {
	opt = opt.withDefaults()
	type seedResult struct {
		divs []Divergence
		runs int
	}
	results := make([]seedResult, opt.Seeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(opt.Parallel, 1))
	for i := 0; i < opt.Seeds; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			divs, runs := checkSeed(opt.StartSeed+int64(i), opt)
			results[i] = seedResult{divs, runs}
		}(i)
	}
	wg.Wait()
	rep := &Report{}
	for _, r := range results {
		rep.SeedsRun++
		rep.Runs += r.runs
		if len(r.divs) > 0 {
			rep.FailedSeeds++
			for _, d := range r.divs {
				if len(rep.Divergences) < opt.MaxReport {
					rep.Divergences = append(rep.Divergences, d)
				}
			}
		}
	}
	return rep
}

// CheckSeed runs one seed through the grid and returns its divergences.
func CheckSeed(seed int64, opt Options) []Divergence {
	divs, _ := checkSeed(seed, opt.withDefaults())
	return divs
}

func checkSeed(seed int64, opt Options) ([]Divergence, int) {
	var divs []Divergence
	runs := 0
	for class := Class(0); class < classCount; class++ {
		w := buildWorkload(class, seed, opt.Streams, opt.Events)
		oracle, err := OracleOf(w.streams[0])
		if err != nil {
			divs = append(divs, Divergence{Seed: seed, Class: class, Against: "oracle",
				Detail: fmt.Sprintf("presentation 0 is not a valid stream: %v", err)})
			continue
		}
		// Cross-validate the generator itself: every presentation and the
		// script's ground-truth TDB must agree with the oracle.
		want := oracle.Events()
		if !eventsEqual(want, tdbEvents(w.script.TDB())) {
			divs = append(divs, Divergence{Seed: seed, Class: class, Against: "oracle",
				Detail: "script ground-truth TDB disagrees with oracle replay of presentation 0"})
			continue
		}
		for i := 1; i < len(w.streams); i++ {
			o2, err := OracleOf(w.streams[i])
			if err != nil || !eventsEqual(want, o2.Events()) {
				divs = append(divs, Divergence{Seed: seed, Class: class, Against: "oracle",
					Detail: fmt.Sprintf("presentation %d not mutually consistent with presentation 0 (err=%v)", i, err)})
			}
		}
		d, r := checkWorkload(w, oracle, opt)
		divs = append(divs, d...)
		runs += r
	}
	return divs, runs
}

// checkWorkload runs every eligible configuration over one workload and
// compares outputs against the oracle and pairwise.
func checkWorkload(w *workload, oracle *Oracle, opt Options) ([]Divergence, int) {
	var divs []Divergence
	cfgs := grid(w.class, opt.Quick)
	// Aggregate pipelines are compared pairwise within their group; the
	// first successful run's final TDB becomes the group reference.
	groupRef := make(map[Pipeline]*temporal.TDB)
	groupRefCfg := make(map[Pipeline]Config)
	for _, cfg := range cfgs {
		res := runConfig(cfg, w, opt)
		divs = append(divs, res.divs...)
		if res.err != nil {
			divs = append(divs, Divergence{Seed: w.seed, Class: w.class, Config: cfg,
				Against: "self", Detail: res.err.Error()})
			continue
		}
		if res.warnings != 0 {
			divs = append(divs, Divergence{Seed: w.seed, Class: w.class, Config: cfg,
				Against: "self", Detail: fmt.Sprintf("%d consistency warnings on mutually consistent inputs", res.warnings)})
		}
		var refEvents []temporal.Event
		var refFrozen func(temporal.Time) []temporal.Event
		against := "oracle"
		if cfg.oracleComparable() {
			refEvents = oracle.Events()
			refFrozen = oracle.Frozen
		} else if ref, ok := groupRef[cfg.Pipeline]; ok {
			refEvents = tdbEvents(ref)
			refFrozen = func(t temporal.Time) []temporal.Event { return tdbFrozen(ref, t) }
			against = groupRefCfg[cfg.Pipeline].String()
		}
		final, foldDivs := foldAndCheck(res.out, refFrozen, against, cfg, w)
		divs = append(divs, foldDivs...)
		if final == nil {
			continue
		}
		if !final.Stable().IsInf() {
			divs = append(divs, Divergence{Seed: w.seed, Class: w.class, Config: cfg, Against: "self",
				Detail: fmt.Sprintf("output stable point stalled at %v; all inputs delivered stable(∞)", final.Stable())})
		}
		if refEvents != nil {
			if got := tdbEvents(final); !eventsEqual(got, refEvents) {
				divs = append(divs, Divergence{Seed: w.seed, Class: w.class, Config: cfg, Against: against,
					Detail: fmt.Sprintf("final TDB diverges: got %s want %s", describeEvents(got), describeEvents(refEvents))})
			}
		} else if !cfg.oracleComparable() {
			groupRef[cfg.Pipeline] = final
			groupRefCfg[cfg.Pipeline] = cfg
		}
	}
	return divs, len(cfgs)
}

// grid enumerates the configuration cells eligible for a class.
func grid(class Class, quick bool) []Config {
	var cfgs []Config
	orders := []string{"roundrobin", "sequential", "random"}
	algos := class.algos()
	if quick {
		// One representative per axis value: the class's most general
		// algorithm everywhere, full exec coverage, one aggregate pipeline.
		a := algos[len(algos)-1]
		for x := Exec(0); x < execCount; x++ {
			if x == ExecPartitionedRebal && !a.handoffCapable() {
				continue
			}
			if x == ExecCrashRecover && !a.snapshotCapable() {
				continue
			}
			if (x == ExecSpill || x == ExecSpillCrash) && !a.spillCapable() {
				continue
			}
			if x == ExecSpillCrash && (!a.snapshotCapable() ||
				a == AlgoR3HalfFrozen || a == AlgoR3FullyFrozen || a == AlgoR3Quorum2) {
				continue
			}
			cfgs = append(cfgs, Config{Algo: a, Exec: x, Order: orders[int(x)%len(orders)]})
		}
		cfgs = append(cfgs,
			Config{Algo: a, Exec: ExecSync, Pipeline: PipeUnion, Order: "roundrobin"},
			Config{Algo: a, Exec: ExecRuntime, Pipeline: PipeCountAggressive, Order: "roundrobin"},
		)
		return cfgs
	}
	for _, a := range algos {
		for x := Exec(0); x < execCount; x++ {
			// The fully-frozen insert policy holds its output stable back to
			// the earliest unemitted event — a data-dependent holdback that
			// makes per-partition stables diverge, so no single global stable
			// point can caption the union snapshot. It is the one documented
			// partitioned exclusion (see internal/partition).
			if a == AlgoR3FullyFrozen && x.partitioned() {
				continue
			}
			// The migration axis needs live handoff support; algorithms
			// without it would silently degenerate to plain ExecPartitioned.
			if x == ExecPartitionedRebal && !a.handoffCapable() {
				continue
			}
			// The crash axis needs a checkpointable merger, like -data-dir.
			// Deferred-emission insert policies (frozen, quorum) are
			// additionally excluded, echoing the fully-frozen partitioned
			// exclusion: they hold inserts back behind a freshness/confirmation
			// threshold, so emitted-ness is extra state the backlog + snapshot
			// pair cannot restore — a jumpstarted merger either re-emits what
			// the backlog already shows or orphans later adjusts. The durable
			// server has the same boundary: -data-dir hosts only the default
			// immediate-emission mergers core.New constructs.
			if x == ExecCrashRecover && (!a.snapshotCapable() ||
				a == AlgoR3HalfFrozen || a == AlgoR3FullyFrozen || a == AlgoR3Quorum2) {
				continue
			}
			// The spill axes need frozen-state extraction (core.FrozenExtractor,
			// via the spill wrapper's Capable gate — the server's -mem-budget
			// boundary). The crash variant additionally inherits every
			// ExecCrashRecover exclusion: a spilled run replays through the same
			// snapshot + jumpstart path a checkpoint does.
			if (x == ExecSpill || x == ExecSpillCrash) && !a.spillCapable() {
				continue
			}
			if x == ExecSpillCrash && (!a.snapshotCapable() ||
				a == AlgoR3HalfFrozen || a == AlgoR3FullyFrozen || a == AlgoR3Quorum2) {
				continue
			}
			// Rotate the deterministic delivery order so every (algo, order)
			// pair appears across the grid without cubing its size.
			cfgs = append(cfgs, Config{Algo: a, Exec: x, Order: orders[(int(a)+int(x))%len(orders)]})
		}
	}
	// Pipelines ride on the representative algorithms of the class.
	pipeAlgos := intersectAlgos(algos, []Algo{AlgoR1, AlgoR2, AlgoR3, AlgoR3Naive, AlgoR4})
	for _, p := range []Pipeline{PipeUnion, PipeCount, PipeCountAggressive, PipeTopK} {
		for _, a := range pipeAlgos {
			for _, x := range []Exec{ExecSync, ExecRuntime, ExecPartitionedRT} {
				cfgs = append(cfgs, Config{Algo: a, Exec: x, Pipeline: p, Order: "roundrobin"})
			}
		}
	}
	return cfgs
}

func intersectAlgos(have, want []Algo) []Algo {
	var out []Algo
	for _, a := range want {
		for _, h := range have {
			if a == h {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// result is one configuration run's raw outcome.
type result struct {
	out      temporal.Stream
	err      error
	warnings int64
	divs     []Divergence // divergences detected during the run (snapshots)
}

// runConfig executes one grid cell over the workload's streams.
func runConfig(cfg Config, w *workload, opt Options) result {
	switch cfg.Exec {
	case ExecDirect, ExecPartitioned, ExecPartitionedRebal:
		return runDirect(cfg, w, opt)
	case ExecCrashRecover, ExecSpillCrash:
		return runCrashRecover(cfg, w, opt)
	case ExecSpill:
		return runSpill(cfg, w, opt)
	default:
		return runEngine(cfg, w, opt)
	}
}

// runDirect drives the bare merger — or, for the partitioned execs, the keyed
// partition wrapper — with Process calls in a deterministic interleaving,
// checkpointing via Snapshot at every output stable advance.
// ExecPartitionedRebal additionally forces a slot migration every few
// deliveries, so the same oracle/snapshot checks cover the live key-range
// handoff protocol.
func runDirect(cfg Config, w *workload, opt Options) result {
	var out temporal.Stream
	emit := func(e temporal.Element) { out = append(out, e) }
	var m core.Merger
	if cfg.Exec == ExecPartitioned || cfg.Exec == ExecPartitionedRebal {
		m = cfg.Algo.NewPartitionedMerger(diffPartitions, emit)
	} else {
		m = cfg.Algo.NewMerger(emit)
	}
	var reb partition.Rebalancer
	var res result
	if cfg.Exec == ExecPartitionedRebal {
		var ok bool
		if reb, ok = m.(partition.Rebalancer); !ok {
			res.err = fmt.Errorf("partitioned merger does not implement partition.Rebalancer")
			return res
		}
	}
	if opt.Mutate != nil {
		m = opt.Mutate(cfg, m)
	}
	for i := range w.streams {
		m.Attach(i)
	}
	prefix := temporal.NewTDB() // output prefix TDB, for snapshot equivalence
	applied := 0
	prevStable := temporal.MinTime
	sn, canSnap := m.(core.Snapshotter)
	pos := make([]int, len(w.streams))
	step := 0
	for _, s := range deliveryOrder(cfg.Order, streamLens(w.streams), w.seed) {
		e := w.streams[s][pos[s]]
		pos[s]++
		if err := m.Process(s, e); err != nil {
			res.err = fmt.Errorf("process %v from stream %d: %v", e, s, err)
			return res
		}
		step++
		if reb != nil && step%4 == 0 {
			// Deterministic slot sweep: (seed, step)-derived so every seed
			// exercises a different migration schedule.
			slot := int(uint64(w.seed*13+int64(step)*7) % partition.Slots)
			to := int(uint64(w.seed+int64(step/4)) % diffPartitions)
			reb.MigrateSlot(slot, to)
			if got := reb.SlotOwner(slot); got != to {
				res.err = fmt.Errorf("step %d: SlotOwner(%d) = %d after migrate to %d", step, slot, got, to)
				return res
			}
		}
		for ; applied < len(out); applied++ {
			// Invalid emissions are reported by foldAndCheck; keep folding so
			// snapshot comparisons see the merger's best-effort state.
			_ = prefix.Apply(out[applied])
		}
		if canSnap && m.MaxStable() > prevStable {
			prevStable = m.MaxStable()
			res.divs = append(res.divs, checkSnapshot(cfg, w, sn, prefix, prevStable)...)
		}
	}
	res.out = out
	res.warnings = m.Stats().ConsistencyWarnings
	return res
}

// checkSnapshot verifies the checkpoint invariant at one stable point: the
// snapshot must be a valid stream that reconstitutes exactly to the output's
// live region (every event still contributing at the stable point).
func checkSnapshot(cfg Config, w *workload, sn core.Snapshotter, prefix *temporal.TDB, st temporal.Time) []Divergence {
	snap := sn.Snapshot()
	tdb, err := temporal.Reconstitute(snap)
	if err != nil {
		return []Divergence{{Seed: w.seed, Class: w.class, Config: cfg, Against: "self",
			Detail: fmt.Sprintf("snapshot at stable(%v) is not a valid stream: %v", st, err)}}
	}
	if tdb.Stable() != st {
		return []Divergence{{Seed: w.seed, Class: w.class, Config: cfg, Against: "self",
			Detail: fmt.Sprintf("snapshot stable point %v != output stable point %v", tdb.Stable(), st)}}
	}
	got := tdbEvents(tdb)
	want := tdbLive(prefix, st)
	if !eventsEqual(got, want) {
		return []Divergence{{Seed: w.seed, Class: w.class, Config: cfg, Against: "self",
			Detail: fmt.Sprintf("snapshot at stable(%v) diverges from live output state: got %s want %s",
				st, describeEvents(got), describeEvents(want))}}
	}
	return nil
}

// sinkOp collects everything the pipeline tail emits.
type sinkOp struct {
	els temporal.Stream
}

func (s *sinkOp) Name() string                                     { return "sink" }
func (s *sinkOp) Process(_ int, e temporal.Element, _ *engine.Out) { s.els = append(s.els, e) }
func (s *sinkOp) OnFeedback(temporal.Time) bool                    { return true }

// buildGraph assembles sources → [union] → lmerge → [aggregate] → sink.
func buildGraph(cfg Config, n int) (g *engine.Graph, lm *operators.LMerge, lmNode *engine.Node, unions []*engine.Node, sink *sinkOp) {
	g = engine.NewGraph()
	lm = operators.NewLMerge(n, -1, func(emit core.Emit) core.Merger { return cfg.Algo.NewMerger(emit) })
	lmNode = g.Add(lm)
	if cfg.Pipeline == PipeUnion {
		for i := 0; i < n; i++ {
			u := g.Add(operators.NewUnion(2))
			g.Connect(u, lmNode)
			unions = append(unions, u)
		}
	}
	sink = attachTail(g, cfg, lmNode)
	return g, lm, lmNode, unions, sink
}

// buildPartGraph assembles the partitioned variant of buildGraph: sources →
// [union] → per-stream splitter → per-partition lmerge → reunify →
// [aggregate] → sink. Injection targets are the splitter nodes (port 0).
func buildPartGraph(cfg Config, n int) (g *engine.Graph, topo *partition.Topology, unions []*engine.Node, sink *sinkOp) {
	g = engine.NewGraph()
	topo = partition.Build(g, n, diffPartitions, -1,
		func(emit core.Emit) core.Merger { return cfg.Algo.NewMerger(emit) })
	if cfg.Pipeline == PipeUnion {
		for i := 0; i < n; i++ {
			u := g.Add(operators.NewUnion(2))
			g.Connect(u, topo.Inputs[i])
			unions = append(unions, u)
		}
	}
	sink = attachTail(g, cfg, topo.Output)
	return g, topo, unions, sink
}

// attachTail appends cfg's aggregate stage (if any) and the collecting sink
// behind tail, returning the sink.
func attachTail(g *engine.Graph, cfg Config, tail *engine.Node) *sinkOp {
	switch cfg.Pipeline {
	case PipeCount:
		next := g.Add(operators.NewCount(pipeWidth, false))
		g.Connect(tail, next)
		tail = next
	case PipeCountAggressive:
		next := g.Add(operators.NewCount(pipeWidth, true))
		g.Connect(tail, next)
		tail = next
	case PipeTopK:
		next := g.Add(operators.NewTopK(pipeWidth, pipeK))
		g.Connect(tail, next)
		tail = next
	}
	sink := &sinkOp{}
	g.Connect(tail, g.Add(sink))
	return sink
}

// runEngine drives the graph through the synchronous executor or the
// concurrent runtime (batched, element-at-a-time, or partitioned).
func runEngine(cfg Config, w *workload, opt Options) result {
	n := len(w.streams)
	var (
		g      *engine.Graph
		unions []*engine.Node
		sink   *sinkOp
		inj    func(s int) (*engine.Node, int) // injection target when unions == nil
		warnfn func() int64
	)
	if cfg.Exec == ExecPartitionedRT {
		var topo *partition.Topology
		g, topo, unions, sink = buildPartGraph(cfg, n)
		inj = func(s int) (*engine.Node, int) { return topo.Inputs[s], 0 }
		warnfn = func() int64 {
			var total int64
			for _, lm := range topo.Mergers {
				total += lm.Operator().Merger().Stats().ConsistencyWarnings
			}
			return total
		}
	} else {
		var lm *operators.LMerge
		var lmNode *engine.Node
		g, lm, lmNode, unions, sink = buildGraph(cfg, n)
		inj = func(s int) (*engine.Node, int) { return lmNode, s }
		warnfn = func() int64 { return lm.Operator().Merger().Stats().ConsistencyWarnings }
	}
	var res result
	if cfg.Exec == ExecSync {
		pos := make([]int, n)
		split := make([]int, n)
		for _, s := range deliveryOrder(cfg.Order, streamLens(w.streams), w.seed) {
			e := w.streams[s][pos[s]]
			pos[s]++
			if unions != nil {
				if e.Kind == temporal.KindStable {
					unions[s].InjectPort(0, e)
					unions[s].InjectPort(1, e)
				} else {
					unions[s].InjectPort(split[s]%2, e)
					split[s]++
				}
			} else {
				node, p := inj(s)
				node.InjectPort(p, e)
			}
		}
	} else {
		bs := 0 // default
		if cfg.Exec == ExecRuntimeUnbatched {
			bs = 1
		}
		r := engine.NewRuntime(g, engine.WithBatchSize(bs))
		r.Start()
		var wg sync.WaitGroup
		for i := range w.streams {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if unions != nil {
					k := 0
					for _, e := range w.streams[i] {
						if e.Kind == temporal.KindStable {
							r.InjectPort(unions[i], 0, e)
							r.InjectPort(unions[i], 1, e)
						} else {
							r.InjectPort(unions[i], k%2, e)
							k++
						}
					}
				} else {
					node, p := inj(i)
					r.InjectBatchPort(node, p, w.streams[i])
				}
			}(i)
		}
		wg.Wait()
		if err := r.Close(); err != nil {
			res.err = err
			return res
		}
	}
	res.out = sink.els
	res.warnings = warnfn()
	return res
}

// foldAndCheck folds an output stream into its final TDB, verifying element
// validity and — at every output stable point — that the fully frozen region
// matches the reference (frozen events can never change again, so any
// difference there is already irrecoverable). refFrozen may be nil when no
// reference exists yet (the run then only self-checks validity).
func foldAndCheck(out temporal.Stream, refFrozen func(temporal.Time) []temporal.Event,
	against string, cfg Config, w *workload) (*temporal.TDB, []Divergence) {
	final := temporal.NewTDB()
	last := temporal.MinTime
	for i, e := range out {
		if err := final.Apply(e); err != nil {
			return nil, []Divergence{{Seed: w.seed, Class: w.class, Config: cfg, Against: "self",
				Detail: fmt.Sprintf("output element %d invalid on its own stream: %v", i, err)}}
		}
		if e.Kind == temporal.KindStable && e.T() > last && refFrozen != nil {
			last = e.T()
			got := tdbFrozen(final, last)
			want := refFrozen(last)
			if !eventsEqual(got, want) {
				return final, []Divergence{{Seed: w.seed, Class: w.class, Config: cfg, Against: against,
					Detail: fmt.Sprintf("frozen surface at stable(%v) diverges: got %s want %s",
						last, describeEvents(got), describeEvents(want))}}
			}
		}
	}
	return final, nil
}

// streamLens returns each stream's element count.
func streamLens(streams []temporal.Stream) []int {
	lens := make([]int, len(streams))
	for i, s := range streams {
		lens[i] = len(s)
	}
	return lens
}

// deliveryOrder enumerates a deterministic interleaving: each entry names the
// stream whose next undelivered element is processed.
func deliveryOrder(name string, lens []int, seed int64) []int {
	n := len(lens)
	total := 0
	for _, l := range lens {
		total += l
	}
	order := make([]int, 0, total)
	switch name {
	case "sequential":
		for s := 0; s < n; s++ {
			for i := 0; i < lens[s]; i++ {
				order = append(order, s)
			}
		}
	case "random":
		rng := rand.New(rand.NewSource(seed * 31))
		left := append([]int(nil), lens...)
		for remaining := total; remaining > 0; {
			s := rng.Intn(n)
			if left[s] > 0 {
				order = append(order, s)
				left[s]--
				remaining--
			}
		}
	default: // roundrobin
		left := append([]int(nil), lens...)
		for remaining := total; remaining > 0; {
			for s := 0; s < n; s++ {
				if left[s] > 0 {
					order = append(order, s)
					left[s]--
					remaining--
				}
			}
		}
	}
	return order
}

// sortDivergences orders reports for stable output: by class, then config.
func sortDivergences(divs []Divergence) {
	sort.SliceStable(divs, func(i, j int) bool {
		if divs[i].Seed != divs[j].Seed {
			return divs[i].Seed < divs[j].Seed
		}
		if divs[i].Class != divs[j].Class {
			return divs[i].Class < divs[j].Class
		}
		return divs[i].Config.String() < divs[j].Config.String()
	})
}
