package chaos_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lmerge/internal/chaos"
	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/server"
	"lmerge/internal/temporal"
)

// TestFanoutSoak is the broadcast fault drill for the v2 wire path: hundreds
// of binary and text subscribers — every connection chaos-faulted — attach to
// one server while chaos-perturbed replicas publish a single logical script
// over both protocols. Connections crash, truncate, and garble (binary
// garbling is caught by the frame CRC, text by the JSON parser); subscribers
// resume positionally across reconnects and evictions. Alongside the faulted
// crowd, an idle cohort stops reading mid-stream (long enough to stall its
// cursor server-side, well inside CreditDeadline) and then resumes, and a
// churn storm attaches and abandons short-lived subscribers throughout.
// Every surviving subscriber, on either protocol, must reconstitute the
// exact script TDB — the encode-once blocks shared across all cursors are
// not allowed to tear, skip, or duplicate for anyone.
func TestFanoutSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fan-out soak skipped in -short mode")
	}
	s, err := server.NewWithOptions("127.0.0.1:0", server.Options{
		Case:        core.CaseR3,
		FeedbackLag: 0,
		// ReadTimeout backstops handshakes mauled in flight: a garbled v2
		// preamble routes the connection to the text path, where the server
		// would otherwise wait forever for a newline that is never coming.
		ReadTimeout:    500 * time.Millisecond,
		CreditDeadline: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sc := soakScript(11)
	want := sc.TDB()

	inj := chaos.New(chaos.Config{
		Seed:         9090,
		DupProb:      0.05,
		ShuffleProb:  0.3,
		CrashProb:    0.05,
		TruncateProb: 0.02,
		CorruptProb:  0.03,
	})

	// Subscribers attach before any input so they ride the live broadcast;
	// reconnects after faults exercise the history catch-up path too.
	const binSubs, textSubs = 130, 70
	const total = binSubs + textSubs
	subForks := make([]*chaos.Injector, total)
	for i := range subForks {
		subForks[i] = inj.Fork(int64(1000 + i))
	}
	type subResult struct {
		stream     temporal.Stream
		reconnects int
		ok         bool
	}
	results := make([]subResult, total)
	var swg sync.WaitGroup
	for i := 0; i < total; i++ {
		swg.Add(1)
		go func(i int) {
			defer swg.Done()
			bin := i < binSubs
			opts := server.ResilientOptions{
				Dial:        subForks[i].Dialer(),
				Seed:        int64(2000 + i),
				MaxAttempts: 200,
				Backoff:     server.Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond},
				Binary:      bin,
			}
			if bin {
				opts.Dial = subForks[i].DialerBinary()
				// A small window forces frequent CREDIT grants — each one a
				// fresh chance for the injector to crash or garble the
				// connection mid-subscription.
				opts.CreditWindow = 8 * 1024
			}
			rs := server.NewResilientSubscriber(s.Addr(), opts)
			defer rs.Close()
			for {
				e, ok := rs.Next()
				if !ok {
					return
				}
				results[i].stream = append(results[i].stream, e)
				if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
					results[i].reconnects = rs.Reconnects()
					results[i].ok = true
					return
				}
			}
		}(i)
	}

	// Idle cohort: clean-connection subscribers that go quiet mid-stream. A
	// window far smaller than the script guarantees the pause leaves the
	// server stalled on their cursors (not merely buffering client-side); the
	// pause is well inside CreditDeadline, so the delivery plane must park
	// them — never evict — and hand back the exact suffix on resume with
	// zero reconnects.
	const idleSubs = 12
	idleResults := make([]subResult, idleSubs)
	var iwg sync.WaitGroup
	for i := 0; i < idleSubs; i++ {
		iwg.Add(1)
		go func(i int) {
			defer iwg.Done()
			rs := server.NewResilientSubscriber(s.Addr(), server.ResilientOptions{
				Seed:         int64(3000 + i),
				MaxAttempts:  50,
				Backoff:      server.Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond},
				Binary:       true,
				CreditWindow: 2 * 1024,
			})
			defer rs.Close()
			paused := false
			for {
				e, ok := rs.Next()
				if !ok {
					return
				}
				idleResults[i].stream = append(idleResults[i].stream, e)
				if !paused && len(idleResults[i].stream) == 3+i%5 {
					paused = true
					time.Sleep(600 * time.Millisecond)
				}
				if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
					idleResults[i].reconnects = rs.Reconnects()
					idleResults[i].ok = true
					return
				}
			}
		}(i)
	}

	// Churn storm: short-lived subscribers attach, read a random handful of
	// elements, and vanish without detaching cleanly — continuously, for the
	// whole broadcast. Cursor attach/detach under live appends must not
	// perturb anyone else's stream (the exact-TDB asserts below) and must
	// not leak registrations.
	churnDone := make(chan struct{})
	var churnCycles int64
	var cwg sync.WaitGroup
	for g := 0; g < 3; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + g)))
			for {
				select {
				case <-churnDone:
					return
				default:
				}
				sub, err := server.SubscribeBinary(s.Addr())
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				n := 1 + rng.Intn(40)
				for j := 0; j < n; j++ {
					if _, ok := sub.Next(); !ok {
						break
					}
				}
				sub.Close()
				atomic.AddInt64(&churnCycles, 1)
			}
		}(g)
	}

	// Replicas: two publish over the binary protocol, one over text, all
	// chaos-faulted and all presenting perturbed renderings of one script.
	const publishers = 3
	pubForks := make([]*chaos.Injector, publishers)
	for i := range pubForks {
		pubForks[i] = inj.Fork(int64(i))
	}
	reports := make([]server.DeliveryReport, publishers)
	errs := make([]error, publishers)
	var pwg sync.WaitGroup
	for i := 0; i < publishers; i++ {
		pwg.Add(1)
		go func(i int) {
			defer pwg.Done()
			fork := pubForks[i]
			stream := fork.Perturb(sc.Render(gen.RenderOptions{
				Seed: int64(100 + i), Disorder: 0.3, StableFreq: 0.05,
			}))
			dial := fork.Dialer()
			if i < 2 {
				dial = fork.DialerBinary() // binary-mode garbling for binary replicas
			}
			rp := server.NewResilientPublisher(s.Addr(), server.ResilientOptions{
				Dial:        dial,
				Seed:        int64(200 + i),
				MaxAttempts: 100,
				Backoff:     server.Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond},
				Binary:      i < 2,
			})
			reports[i], errs[i] = rp.Deliver(stream)
		}(i)
	}

	// Publishers first: subscribers can only observe stable(∞) after every
	// publisher's delivery completes, so a publisher failure must surface as
	// its error, not as a subscriber timeout.
	pwg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("publisher %d failed: %v (report %+v)", i, err, reports[i])
		}
	}
	close(churnDone)
	cwg.Wait()
	subsDone := make(chan struct{})
	go func() { swg.Wait(); iwg.Wait(); close(subsDone) }()
	select {
	case <-subsDone:
	case <-time.After(120 * time.Second):
		t.Fatal("timed out waiting for fan-out subscribers to complete")
	}
	reconnects := 0
	for i := range results {
		r := &results[i]
		if !r.ok {
			t.Fatalf("subscriber %d gave up before stable(inf)", i)
		}
		got, err := temporal.Reconstitute(r.stream)
		if err != nil {
			t.Fatalf("subscriber %d merged stream invalid: %v", i, err)
		}
		if !got.Equal(want) {
			proto := "binary"
			if i >= binSubs {
				proto = "text"
			}
			t.Fatalf("%s subscriber %d TDB diverged from the script under chaos", proto, i)
		}
		reconnects += r.reconnects
	}
	for i := range idleResults {
		r := &idleResults[i]
		if !r.ok {
			t.Fatalf("idle subscriber %d gave up before stable(inf)", i)
		}
		if r.reconnects != 0 {
			t.Fatalf("idle subscriber %d reconnected %d times — an in-deadline pause must be parked, not evicted", i, r.reconnects)
		}
		got, err := temporal.Reconstitute(r.stream)
		if err != nil {
			t.Fatalf("idle subscriber %d merged stream invalid: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("idle subscriber %d TDB diverged after its pause", i)
		}
	}
	if st := s.Stats(); st.ConsistencyWarnings != 0 {
		t.Fatalf("fan-out soak raised %d consistency warnings", st.ConsistencyWarnings)
	}

	// Vacuousness guards: the drill must actually have hurt.
	var ist chaos.Stats
	for _, f := range append(append([]*chaos.Injector{}, subForks...), pubForks...) {
		st := f.Stats()
		ist.Crashes += st.Crashes
		ist.Truncates += st.Truncates
		ist.Corrupts += st.Corrupts
		ist.BytesMauled += st.BytesMauled
	}
	if ist.Crashes == 0 || ist.Corrupts == 0 {
		t.Fatalf("connection faults barely fired — soak is vacuous (stats %+v)", ist)
	}
	if reconnects == 0 {
		t.Fatal("no subscriber ever resumed across a fault; the positional-resume path went untested")
	}
	if cycles := atomic.LoadInt64(&churnCycles); cycles < 3 {
		t.Fatalf("churn storm completed only %d attach/abandon cycles — the storm never ran", cycles)
	}
	ws := s.WireStats()
	if ws.FramesEncoded == 0 {
		t.Fatal("no frames were block-encoded; binary fan-out never engaged")
	}
	if ws.SharedFrames <= ws.FramesEncoded {
		t.Fatalf("shared_frames %d <= frames_encoded %d — broadcast never actually shared encodes", ws.SharedFrames, ws.FramesEncoded)
	}
	t.Logf("fanout soak: %d subscribers (%d binary / %d text / %d idle), %d churn cycles, %d resumes, faults=%+v, wire=%+v",
		total+idleSubs, binSubs, textSubs, idleSubs, atomic.LoadInt64(&churnCycles), reconnects, ist, ws)
}
