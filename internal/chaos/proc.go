package chaos

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// Proc is a real child process under chaos control — the durability tier's
// crash surface. Unlike the connection faults above, which model network
// failure, killing a process with SIGKILL gives it no chance to flush, close,
// or checkpoint: whatever the WAL and checkpoint files hold at that instant
// is what recovery gets, torn final record included.
type Proc struct {
	cmd  *exec.Cmd
	done chan error
}

// StartProc launches name with args, wiring stderr through (the server logs
// its recovery line there) and discarding stdout.
func StartProc(name string, args ...string) (*Proc, error) {
	cmd := exec.Command(name, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &Proc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	return p, nil
}

// Kill9 delivers SIGKILL — the uncatchable crash — and reaps the child. The
// process gets no signal handler, no deferred close, no final fsync.
func (p *Proc) Kill9() error {
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	<-p.done // reap; the error is the expected "signal: killed"
	return nil
}

// Stop delivers SIGINT (the clean-shutdown path) and waits up to timeout
// before escalating to SIGKILL.
func (p *Proc) Stop(timeout time.Duration) error {
	_ = p.cmd.Process.Signal(os.Interrupt)
	select {
	case err := <-p.done:
		return err
	case <-time.After(timeout):
		return p.Kill9()
	}
}

// Alive reports whether the child has not yet been reaped.
func (p *Proc) Alive() bool {
	select {
	case err := <-p.done:
		p.done <- err
		return false
	default:
		return true
	}
}

// WaitTCP polls addr until a TCP connection succeeds or the deadline passes —
// the readiness probe for a freshly started (or restarted) server child.
func WaitTCP(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %s not accepting connections after %v: %w", addr, timeout, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FreePort reserves an ephemeral TCP port and releases it, returning the
// address for a child process to bind. The small window between release and
// rebind is racy in principle; in the single-machine test harness it is
// reliable, and the same address must survive a kill/restart cycle anyway.
func FreePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
