// Package chaos is a deterministic, seeded fault injector for the
// fault-tolerance layer (paper Sec. II-1: the high-availability application
// must keep the merged output flowing while replicas crash, lag, restart,
// and re-deliver). It perturbs streams and network connections with the
// physical divergence real engines exhibit — duplication, reordering beyond
// the declared disorder bound, stragglers, crashes mid-frame, and corrupt
// frames — while every decision is drawn from one seeded generator, so any
// failing scenario replays exactly from its seed.
//
// Two fault surfaces are covered:
//
//   - Stream faults (Perturb): a semantics-preserving re-presentation of a
//     physical stream. Elements are duplicated and reordered across keys
//     within stable-bounded windows; per-key element order and stable
//     boundaries are preserved, so the result is a valid physical stream
//     reconstituting to the same TDB — physically divergent, logically
//     equivalent (the paper's core premise).
//
//   - Connection faults (WrapConn/Dialer): a net.Conn wrapper that crashes
//     the connection, truncates a write mid-frame, corrupts a frame into
//     unparseable bytes, or delays writes (stragglers). These model the
//     failures the server's supervision and the clients' reconnect loops
//     must absorb.
package chaos

import (
	"math/rand"
	"sync"
	"time"

	"lmerge/internal/temporal"
)

// Config parameterises an Injector. All probabilities are in [0, 1]; zero
// disables the corresponding fault.
type Config struct {
	// Seed drives every random decision; the same seed replays the same
	// fault schedule.
	Seed int64

	// DupProb is the per-element probability of re-delivering the element
	// immediately after itself (the re-attach duplication hazard of
	// Sec. I-B-4, compressed in time).
	DupProb float64
	// ShuffleProb is the per-window probability of reordering a
	// stable-bounded window across keys (disorder beyond whatever bound the
	// renderer declared).
	ShuffleProb float64

	// CrashProb is the per-write probability of killing the connection
	// before any bytes leave.
	CrashProb float64
	// TruncateProb is the per-write probability of writing a prefix of the
	// frame and then killing the connection (a crash mid-frame).
	TruncateProb float64
	// CorruptProb is the per-write probability of replacing the frame's
	// bytes with unparseable garbage (newlines preserved, so the receiver
	// sees a garbage line, not a concatenation of frames).
	CorruptProb float64
	// DelayProb/MaxDelay inject a straggler stall before a write.
	DelayProb float64
	MaxDelay  time.Duration
}

// Stats counts the faults an injector has actually fired.
type Stats struct {
	Dups, Shuffles            int64
	Crashes, Truncates        int64
	Corrupts, Delays          int64
	BytesWritten, BytesMauled int64
}

// Injector draws faults from one seeded source. Safe for concurrent use;
// note that concurrency makes the interleaving of draws scheduling-dependent,
// so for strict reproducibility give each concurrent client its own Fork.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New builds an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Fork derives an independent injector with the same fault configuration and
// a seed mixed from the parent's seed and i. Give one fork to each concurrent
// publisher so their fault schedules are individually reproducible.
func (in *Injector) Fork(i int64) *Injector {
	cfg := in.cfg
	cfg.Seed = in.cfg.Seed*1_000_003 + i
	return New(cfg)
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// chance draws one biased coin under the injector's lock.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	ok := in.rng.Float64() < p
	in.mu.Unlock()
	return ok
}

// Perturb returns a physically divergent re-presentation of s: elements may
// be duplicated and windows between stable elements reordered across keys.
// Per-key element order (an adjust chain must follow its insert) and stable
// positions are preserved, so the output is a valid physical stream for the
// same logical TDB. s is not modified.
func (in *Injector) Perturb(s temporal.Stream) temporal.Stream {
	out := make(temporal.Stream, 0, len(s)+len(s)/8)
	win := make(temporal.Stream, 0, 64)
	for _, e := range s {
		if e.Kind == temporal.KindStable {
			out = in.flushWindow(out, win)
			win = win[:0]
			out = append(out, e)
			continue
		}
		win = append(win, e)
		if in.chance(in.cfg.DupProb) {
			win = append(win, e)
			in.mu.Lock()
			in.stats.Dups++
			in.mu.Unlock()
		}
	}
	return in.flushWindow(out, win)
}

// flushWindow appends one stable-bounded window to out, shuffling it across
// keys with probability ShuffleProb.
func (in *Injector) flushWindow(out, win temporal.Stream) temporal.Stream {
	if len(win) > 1 && in.chance(in.cfg.ShuffleProb) {
		in.mu.Lock()
		win = shuffleKeepKeyOrder(in.rng, win)
		in.stats.Shuffles++
		in.mu.Unlock()
	}
	return append(out, win...)
}

// shuffleKeepKeyOrder reorders win arbitrarily across keys while keeping each
// key's elements in their original relative order: a random permutation
// assigns target positions, then each key's elements refill that key's
// positions in ascending order. Returns a new slice.
func shuffleKeepKeyOrder(rng *rand.Rand, win temporal.Stream) temporal.Stream {
	n := len(win)
	perm := rng.Perm(n)
	// Group the permuted positions by key, in each key's original element
	// order; sort each group so earlier elements land earlier.
	targets := make(map[temporal.VsPayload][]int, n)
	for i, e := range win {
		targets[e.Key()] = append(targets[e.Key()], perm[i])
	}
	for _, ts := range targets {
		// Insertion sort: groups are small (revision chains per key).
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
	}
	res := make(temporal.Stream, n)
	used := make(map[temporal.VsPayload]int, len(targets))
	for _, e := range win {
		k := e.Key()
		res[targets[k][used[k]]] = e
		used[k]++
	}
	return res
}

// CrashPoints returns k sorted element indices in [0, total) at which a
// publisher's connection should be killed — a deterministic crash schedule
// for driving restart scenarios.
func (in *Injector) CrashPoints(total, k int) []int {
	if total <= 0 || k <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pts := make([]int, 0, k)
	for _, p := range in.rng.Perm(total)[:min(k, total)] {
		pts = append(pts, p)
	}
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts
}
