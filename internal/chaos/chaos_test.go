package chaos

import (
	"bytes"
	"net"
	"reflect"
	"testing"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

func chaosScript(seed int64) *gen.Script {
	return gen.NewScript(gen.Config{
		Events: 300, Seed: seed, EventDuration: 60, MaxGap: 8,
		Revisions: 0.5, RemoveProb: 0.2, PayloadBytes: 10,
	})
}

func TestPerturbDeterministic(t *testing.T) {
	sc := chaosScript(1)
	s := sc.Render(gen.RenderOptions{Seed: 11, Disorder: 0.2, StableFreq: 0.05})
	cfg := Config{Seed: 42, DupProb: 0.1, ShuffleProb: 0.5}
	a := New(cfg).Perturb(s)
	b := New(cfg).Perturb(s)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different perturbations")
	}
	cfg.Seed = 43
	c := New(cfg).Perturb(s)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical perturbations (suspicious)")
	}
	if st := New(cfg).Fork(1).Stats(); st != (Stats{}) {
		t.Fatal("fresh fork has non-zero stats")
	}
}

func TestPerturbPreservesStructure(t *testing.T) {
	sc := chaosScript(2)
	s := sc.Render(gen.RenderOptions{Seed: 21, Disorder: 0.3, StableFreq: 0.05})
	in := New(Config{Seed: 7, DupProb: 0.15, ShuffleProb: 1})
	p := in.Perturb(s)
	if st := in.Stats(); st.Dups == 0 || st.Shuffles == 0 {
		t.Fatalf("faults did not fire: %+v", st)
	}
	if len(p) <= len(s) {
		t.Fatalf("duplication did not grow the stream: %d <= %d", len(p), len(s))
	}
	// Stable elements keep their relative sequence (windows never cross).
	var sa, sb []temporal.Time
	for _, e := range s {
		if e.Kind == temporal.KindStable {
			sa = append(sa, e.T())
		}
	}
	for _, e := range p {
		if e.Kind == temporal.KindStable {
			sb = append(sb, e.T())
		}
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("stable sequence changed under perturbation")
	}
	// Per-key element order is preserved (dropping duplicate repeats).
	orig := map[temporal.VsPayload][]temporal.Element{}
	for _, e := range s {
		if e.Kind != temporal.KindStable {
			orig[e.Key()] = append(orig[e.Key()], e)
		}
	}
	got := map[temporal.VsPayload][]temporal.Element{}
	for _, e := range p {
		if e.Kind == temporal.KindStable {
			continue
		}
		k := e.Key()
		if n := len(got[k]); n > 0 && got[k][n-1] == e {
			continue // immediate duplicate re-delivery
		}
		got[k] = append(got[k], e)
	}
	for k, want := range orig {
		if !reflect.DeepEqual(got[k], want) {
			t.Fatalf("per-key order broken for %v:\n got %v\nwant %v", k, got[k], want)
		}
	}
}

// TestPerturbPreservesMerge is the semantic contract: a perturbed stream is
// still a valid physical presentation of the same logical TDB, so merging it
// (alone, and alongside the pristine rendering) reconstitutes the script.
func TestPerturbPreservesMerge(t *testing.T) {
	sc := chaosScript(3)
	want := sc.TDB()
	clean := sc.Render(gen.RenderOptions{Seed: 31, Disorder: 0.3, StableFreq: 0.05})
	dirty := New(Config{Seed: 99, DupProb: 0.2, ShuffleProb: 0.8}).Perturb(
		sc.Render(gen.RenderOptions{Seed: 32, Disorder: 0.4, StableFreq: 0.03}))

	var out temporal.Stream
	m := core.New(core.CaseR3, func(e temporal.Element) { out = append(out, e) })
	op := core.NewOperator(m)
	a := op.Attach(temporal.MinTime)
	b := op.Attach(temporal.MinTime)
	streams := []temporal.Stream{dirty, clean}
	ids := []core.StreamID{a, b}
	pos := []int{0, 0}
	for pos[0] < len(streams[0]) || pos[1] < len(streams[1]) {
		for i := range streams {
			if pos[i] < len(streams[i]) {
				if err := op.Process(ids[i], streams[i][pos[i]]); err != nil {
					t.Fatal(err)
				}
				pos[i]++
			}
		}
	}
	got, err := temporal.Reconstitute(out)
	if err != nil {
		t.Fatalf("merged output invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("merged TDB diverged under perturbation")
	}
	if w := m.Stats().ConsistencyWarnings; w != 0 {
		t.Fatalf("perturbation triggered %d consistency warnings", w)
	}
}

func TestCrashPoints(t *testing.T) {
	in := New(Config{Seed: 5})
	pts := in.CrashPoints(100, 3)
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("points not strictly sorted: %v", pts)
		}
	}
	if !reflect.DeepEqual(pts, New(Config{Seed: 5}).CrashPoints(100, 3)) {
		t.Fatal("crash schedule not reproducible")
	}
	if New(Config{Seed: 5}).CrashPoints(0, 3) != nil {
		t.Fatal("empty range should have no crash points")
	}
}

// pipeRead drains one side of a pipe into a buffer.
func pipeRead(t *testing.T, c net.Conn, buf *bytes.Buffer, done chan<- struct{}) {
	t.Helper()
	go func() {
		defer close(done)
		b := make([]byte, 4096)
		for {
			n, err := c.Read(b)
			buf.Write(b[:n])
			if err != nil {
				return
			}
		}
	}()
}

func TestConnFaults(t *testing.T) {
	frame := []byte("{\"k\":\"s\",\"ve\":10}\n")

	t.Run("corrupt", func(t *testing.T) {
		a, b := net.Pipe()
		var buf bytes.Buffer
		done := make(chan struct{})
		pipeRead(t, b, &buf, done)
		in := New(Config{Seed: 1, CorruptProb: 1})
		c := in.WrapConn(a)
		if _, err := c.Write(frame); err != nil {
			t.Fatalf("corrupt write should report success: %v", err)
		}
		c.Close()
		<-done
		got := buf.Bytes()
		if !bytes.HasSuffix(got, []byte("\n")) {
			t.Fatal("corruption lost the newline")
		}
		if bytes.Contains(got, []byte("\"k\"")) {
			t.Fatalf("frame not corrupted: %q", got)
		}
		if st := in.Stats(); st.Corrupts != 1 || st.BytesMauled == 0 {
			t.Fatalf("stats wrong: %+v", st)
		}
	})

	t.Run("crash", func(t *testing.T) {
		a, b := net.Pipe()
		var buf bytes.Buffer
		done := make(chan struct{})
		pipeRead(t, b, &buf, done)
		in := New(Config{Seed: 1, CrashProb: 1})
		c := in.WrapConn(a)
		if _, err := c.Write(frame); err == nil {
			t.Fatal("crash write should fail")
		}
		if _, err := c.Write(frame); err == nil {
			t.Fatal("writes after crash should fail")
		}
		<-done
		if buf.Len() != 0 {
			t.Fatalf("crash leaked %d bytes", buf.Len())
		}
		if st := in.Stats(); st.Crashes != 1 {
			t.Fatalf("stats wrong: %+v", st)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		a, b := net.Pipe()
		var buf bytes.Buffer
		done := make(chan struct{})
		pipeRead(t, b, &buf, done)
		in := New(Config{Seed: 1, TruncateProb: 1})
		c := in.WrapConn(a)
		n, err := c.Write(frame)
		if err == nil {
			t.Fatal("truncated write should fail")
		}
		<-done
		if buf.Len() != n || n == 0 || n >= len(frame) {
			t.Fatalf("truncation wrote %d bytes, reader saw %d (frame %d)", n, buf.Len(), len(frame))
		}
		if st := in.Stats(); st.Truncates != 1 {
			t.Fatalf("stats wrong: %+v", st)
		}
	})
}
