package chaos_test

import (
	"sync"
	"testing"
	"time"

	"lmerge/internal/chaos"
	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/server"
	"lmerge/internal/temporal"
)

func soakScript(seed int64) *gen.Script {
	return gen.NewScript(gen.Config{
		Events: 400, Seed: seed, EventDuration: 60, MaxGap: 8,
		Revisions: 0.4, RemoveProb: 0.2, PayloadBytes: 12,
	})
}

// drain consumes the merged stream until stable(∞) or the deadline.
func drain(t *testing.T, sub *server.Subscriber, timeout time.Duration) temporal.Stream {
	t.Helper()
	var out temporal.Stream
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			e, ok := sub.Next()
			if !ok {
				return
			}
			out = append(out, e)
			if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("timed out waiting for merged stream completion")
	}
	return out
}

// TestChaosSoak is the end-to-end fault drill: several replicas deliver
// physically divergent, chaos-perturbed presentations of one logical script
// over connections that crash, truncate, and corrupt frames under a seeded
// injector, while a straggler replica trails far enough behind to trip the
// supervisor. The merged output must still be logically equivalent to the
// script — no duplicates, no losses, no consistency warnings — with every
// killed publisher re-attaching and catching up via fast-forward feedback.
func TestChaosSoak(t *testing.T) {
	s, err := server.NewWithOptions("127.0.0.1:0", server.Options{
		Case:           core.CaseR3,
		FeedbackLag:    0,
		StragglerLag:   200,
		StragglerGrace: 25 * time.Millisecond,
		SuperviseEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sc := soakScript(7)
	want := sc.TDB()
	sub, err := server.Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	inj := chaos.New(chaos.Config{
		Seed:    4242,
		DupProb: 0.05,
		// ShuffleProb reorders within stable-bounded windows during Perturb.
		ShuffleProb:  0.3,
		CrashProb:    0.08,
		TruncateProb: 0.04,
		CorruptProb:  0.04,
	})

	const publishers = 3
	var wg sync.WaitGroup
	reports := make([]server.DeliveryReport, publishers+1)
	errs := make([]error, publishers+1)
	forks := make([]*chaos.Injector, publishers)
	for i := range forks {
		forks[i] = inj.Fork(int64(i))
	}
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fork := forks[i]
			stream := fork.Perturb(sc.Render(gen.RenderOptions{
				Seed: int64(100 + i), Disorder: 0.3, StableFreq: 0.05,
			}))
			rp := server.NewResilientPublisher(s.Addr(), server.ResilientOptions{
				Dial:        fork.Dialer(),
				Seed:        int64(200 + i),
				MaxAttempts: 100,
				Backoff:     server.Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond},
				// Pace healthy replicas so the merge is in flight long enough
				// for the supervisor to observe the straggler lagging it.
				Throttle: func(temporal.Element) { time.Sleep(100 * time.Microsecond) },
			})
			reports[i], errs[i] = rp.Deliver(stream)
		}(i)
	}
	// The straggler: fault-free transport but pathologically slow delivery.
	// The supervisor must force-detach it rather than let its state and
	// feedback drag behind the quorum; after the detach it reconnects,
	// fast-forwards past everything already merged, and still completes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stream := sc.Render(gen.RenderOptions{Seed: 300, Disorder: 0.2, StableFreq: 0.05})
		rp := server.NewResilientPublisher(s.Addr(), server.ResilientOptions{
			Seed:        301,
			MaxAttempts: 100,
			Backoff:     server.Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond},
			Throttle:    func(temporal.Element) { time.Sleep(2 * time.Millisecond) },
		})
		reports[publishers], errs[publishers] = rp.Deliver(stream)
	}()

	merged := drain(t, sub, 60*time.Second)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("publisher %d failed: %v (report %+v)", i, err, reports[i])
		}
	}
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("merged TDB diverged from the script under chaos")
	}
	if st := s.Stats(); st.ConsistencyWarnings != 0 {
		t.Fatalf("chaos run raised %d consistency warnings", st.ConsistencyWarnings)
	}

	var ist chaos.Stats
	for _, f := range forks {
		st := f.Stats()
		ist.Dups += st.Dups
		ist.Shuffles += st.Shuffles
		ist.Crashes += st.Crashes
		ist.Truncates += st.Truncates
		ist.Corrupts += st.Corrupts
		ist.Delays += st.Delays
		ist.BytesWritten += st.BytesWritten
		ist.BytesMauled += st.BytesMauled
	}
	if ist.Crashes+ist.Truncates+ist.Corrupts == 0 {
		t.Fatalf("no connection faults fired — soak is vacuous (stats %+v)", ist)
	}
	if ist.Dups == 0 || ist.Shuffles == 0 {
		t.Fatalf("no stream perturbations fired — soak is vacuous (stats %+v)", ist)
	}
	totalConnects, totalSkipped := 0, int64(0)
	for _, r := range reports[:publishers] {
		totalConnects += r.Connects
		totalSkipped += r.Skipped
	}
	if totalConnects <= publishers {
		t.Errorf("no publisher ever re-attached (connects=%d); faults fired but never mid-stream", totalConnects)
	}
	if totalSkipped == 0 {
		t.Error("re-attaching publishers never skipped dead work; fast-forward catch-up untested")
	}
	if s.StragglersDetached() == 0 {
		t.Error("the straggler was never force-detached")
	}
	if reports[publishers].Detaches == 0 {
		t.Errorf("straggler never observed its DETACH notice (report %+v)", reports[publishers])
	}
	t.Logf("soak: faults=%+v", ist)
	for i, r := range reports {
		t.Logf("publisher %d: %+v", i, r)
	}
}

// TestFailoverLatency measures the recovery path costs that EXPERIMENTS.md
// records: how quickly an abrupt publisher death is detached, how quickly a
// silent (half-open) death is caught by the read deadline, and how much dead
// work a re-attaching replica skips via the fast-forward rule during
// catch-up.
func TestFailoverLatency(t *testing.T) {
	s, err := server.NewWithOptions("127.0.0.1:0", server.Options{
		Case: core.CaseR3, FeedbackLag: 0, ReadTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sc := soakScript(8)
	stream := sc.Render(gen.RenderOptions{Seed: 80, Disorder: 0.2, StableFreq: 0.05})

	waitPubs := func(want int) time.Duration {
		start := time.Now()
		deadline := start.Add(5 * time.Second)
		for s.Publishers() != want {
			if time.Now().After(deadline) {
				t.Fatalf("publishers = %d, want %d", s.Publishers(), want)
			}
			time.Sleep(100 * time.Microsecond)
		}
		return time.Since(start)
	}

	// Phase 1: abrupt death (connection reset) one third into the stream.
	p1, err := server.Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	waitPubs(1)
	cut := len(stream) / 3
	for _, e := range stream[:cut] {
		if err := p1.Send(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let the server absorb the prefix so the handshake stable point seen by
	// the restarted replica is meaningful.
	absorb := time.Now().Add(5 * time.Second)
	for s.MaxStable() == temporal.MinTime {
		if time.Now().After(absorb) {
			t.Fatal("server never advanced its stable point on the prefix")
		}
		time.Sleep(100 * time.Microsecond)
	}
	stableAtKill := s.MaxStable()
	p1.Close()
	abruptDetach := waitPubs(0)

	// Phase 2: silent death — a publisher that stops sending without FIN is
	// caught by the read deadline.
	p2, err := server.Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitPubs(1)
	// No explicit kill: p2 simply never sends. ReadTimeout trips.
	silentDetach := waitPubs(0)

	// Phase 3: restart — the replica re-runs from scratch and catches up,
	// skipping everything the handshake stable point already covers.
	rp := server.NewResilientPublisher(s.Addr(), server.ResilientOptions{Seed: 81})
	restartStart := time.Now()
	report, err := rp.Deliver(stream)
	catchUp := time.Since(restartStart)
	if err != nil {
		t.Fatalf("re-attach delivery failed: %v", err)
	}
	if report.Skipped == 0 && stableAtKill != temporal.MinTime {
		t.Errorf("re-attached replica skipped nothing (report %+v, stable at kill %d)",
			report, int64(stableAtKill))
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.MaxStable() != temporal.Infinity {
		if time.Now().After(deadline) {
			t.Fatal("merge did not complete after failover")
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.ConsistencyWarnings != 0 {
		t.Fatalf("failover raised %d consistency warnings", st.ConsistencyWarnings)
	}
	t.Logf("abrupt-death detach latency: %v", abruptDetach)
	t.Logf("silent-death detach latency: %v (read deadline 50ms)", silentDetach)
	t.Logf("re-attach catch-up: %v, sent=%d skipped=%d (stable at kill %d)",
		catchUp, report.Sent, report.Skipped, int64(stableAtKill))
}
