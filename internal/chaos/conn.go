package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjected marks a connection failure introduced by the injector. Clients
// treat it like any transport error: reconnect with backoff.
var ErrInjected = errors.New("chaos: injected connection fault")

// Conn wraps a net.Conn with write-path fault injection. Read passes
// through untouched (the peer's faults arrive as whatever the wire carries).
// After a crash or truncation fault the underlying connection is closed and
// every subsequent operation fails.
type Conn struct {
	net.Conn
	in   *Injector
	dead atomic.Bool
}

// WrapConn wraps c with the injector's write faults.
func (in *Injector) WrapConn(c net.Conn) *Conn { return &Conn{Conn: c, in: in} }

// Dialer returns a dial function (matching server.DialFunc) whose
// connections carry the injector's faults.
func (in *Injector) Dialer() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return in.WrapConn(c), nil
	}
}

// Kill force-closes the connection, simulating an abrupt process death.
func (c *Conn) Kill() {
	c.dead.Store(true)
	c.Conn.Close()
}

// Write applies at most one fault per call: crash (nothing leaves),
// truncation (a prefix leaves, then the connection dies), corruption (a
// garbled frame leaves and the call reports success — detection is the
// receiver's job), or delay (a straggler stall before an intact write).
func (c *Conn) Write(b []byte) (int, error) {
	if c.dead.Load() {
		return 0, fmt.Errorf("%w: connection already crashed", ErrInjected)
	}
	in := c.in
	in.mu.Lock()
	cfg, rng := in.cfg, in.rng
	var delay time.Duration
	kind := faultNone
	switch f := rng.Float64(); {
	case f < cfg.CrashProb:
		kind = faultCrash
		in.stats.Crashes++
	case f < cfg.CrashProb+cfg.TruncateProb:
		kind = faultTruncate
		in.stats.Truncates++
	case f < cfg.CrashProb+cfg.TruncateProb+cfg.CorruptProb:
		kind = faultCorrupt
		in.stats.Corrupts++
		in.stats.BytesMauled += int64(len(b))
	case f < cfg.CrashProb+cfg.TruncateProb+cfg.CorruptProb+cfg.DelayProb:
		kind = faultDelay
		in.stats.Delays++
		if cfg.MaxDelay > 0 {
			delay = time.Duration(rng.Int63n(int64(cfg.MaxDelay)))
		}
	}
	in.stats.BytesWritten += int64(len(b))
	in.mu.Unlock()

	switch kind {
	case faultCrash:
		c.Kill()
		return 0, fmt.Errorf("%w: crash before write", ErrInjected)
	case faultTruncate:
		n := len(b) / 2
		if n > 0 {
			c.Conn.Write(b[:n])
		}
		c.Kill()
		return n, fmt.Errorf("%w: truncated write (%d of %d bytes)", ErrInjected, n, len(b))
	case faultCorrupt:
		// The frame still "succeeds" from the sender's point of view; the
		// receiver must detect the garbage and drop the connection.
		return c.Conn.Write(corrupt(b))
	case faultDelay:
		time.Sleep(delay)
	}
	return c.Conn.Write(b)
}

type faultKind uint8

const (
	faultNone faultKind = iota
	faultCrash
	faultTruncate
	faultCorrupt
	faultDelay
)

// corrupt garbles every byte except newlines, preserving the line structure
// of the protocol so the receiver sees garbage lines rather than merged
// frames. '#' can never begin valid JSON, so detection is guaranteed.
func corrupt(b []byte) []byte {
	g := make([]byte, len(b))
	for i, x := range b {
		if x == '\n' {
			g[i] = '\n'
		} else {
			g[i] = '#'
		}
	}
	return g
}
