package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjected marks a connection failure introduced by the injector. Clients
// treat it like any transport error: reconnect with backoff.
var ErrInjected = errors.New("chaos: injected connection fault")

// Conn wraps a net.Conn with write-path fault injection. Read passes
// through untouched (the peer's faults arrive as whatever the wire carries).
// After a crash or truncation fault the underlying connection is closed and
// every subsequent operation fails.
type Conn struct {
	net.Conn
	in   *Injector
	bin  bool
	dead atomic.Bool
}

// WrapConn wraps c with the injector's write faults, corrupting in the
// text-protocol mode (newline-preserving '#' garble).
func (in *Injector) WrapConn(c net.Conn) *Conn { return &Conn{Conn: c, in: in} }

// WrapConnBinary wraps c with the injector's write faults, corrupting in the
// binary-protocol mode: seeded random bit damage instead of the '#' fill, so
// frame CRCs are exercised by arbitrary garble, not one fixed pattern.
func (in *Injector) WrapConnBinary(c net.Conn) *Conn { return &Conn{Conn: c, in: in, bin: true} }

// Dialer returns a dial function (matching server.DialFunc) whose
// connections carry the injector's faults.
func (in *Injector) Dialer() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return in.WrapConn(c), nil
	}
}

// DialerBinary is Dialer with binary-mode corruption (see WrapConnBinary).
func (in *Injector) DialerBinary() func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return in.WrapConnBinary(c), nil
	}
}

// Kill force-closes the connection, simulating an abrupt process death.
func (c *Conn) Kill() {
	c.dead.Store(true)
	c.Conn.Close()
}

// Write applies at most one fault per call: crash (nothing leaves),
// truncation (a prefix leaves, then the connection dies), corruption (a
// garbled frame leaves and the call reports success — detection is the
// receiver's job), or delay (a straggler stall before an intact write).
func (c *Conn) Write(b []byte) (int, error) {
	if c.dead.Load() {
		return 0, fmt.Errorf("%w: connection already crashed", ErrInjected)
	}
	in := c.in
	in.mu.Lock()
	cfg, rng := in.cfg, in.rng
	var delay time.Duration
	var garbled []byte
	kind := faultNone
	switch f := rng.Float64(); {
	case f < cfg.CrashProb:
		kind = faultCrash
		in.stats.Crashes++
	case f < cfg.CrashProb+cfg.TruncateProb:
		kind = faultTruncate
		in.stats.Truncates++
	case f < cfg.CrashProb+cfg.TruncateProb+cfg.CorruptProb:
		kind = faultCorrupt
		in.stats.Corrupts++
		in.stats.BytesMauled += int64(len(b))
		if c.bin {
			// Built under the lock: the injector's rng is not concurrency-safe.
			garbled = corruptBinary(b, rng)
		}
	case f < cfg.CrashProb+cfg.TruncateProb+cfg.CorruptProb+cfg.DelayProb:
		kind = faultDelay
		in.stats.Delays++
		if cfg.MaxDelay > 0 {
			delay = time.Duration(rng.Int63n(int64(cfg.MaxDelay)))
		}
	}
	in.stats.BytesWritten += int64(len(b))
	in.mu.Unlock()

	switch kind {
	case faultCrash:
		c.Kill()
		return 0, fmt.Errorf("%w: crash before write", ErrInjected)
	case faultTruncate:
		n := len(b) / 2
		if n > 0 {
			c.Conn.Write(b[:n])
		}
		c.Kill()
		return n, fmt.Errorf("%w: truncated write (%d of %d bytes)", ErrInjected, n, len(b))
	case faultCorrupt:
		// The frame still "succeeds" from the sender's point of view; the
		// receiver must detect the garbage and drop the connection.
		if garbled == nil {
			garbled = corrupt(b)
		}
		return c.Conn.Write(garbled)
	case faultDelay:
		time.Sleep(delay)
	}
	return c.Conn.Write(b)
}

type faultKind uint8

const (
	faultNone faultKind = iota
	faultCrash
	faultTruncate
	faultCorrupt
	faultDelay
)

// corrupt garbles every byte except newlines, preserving the line structure
// of the protocol so the receiver sees garbage lines rather than merged
// frames. '#' can never begin valid JSON, so detection is guaranteed. Text
// mode must keep this fixed pattern: random bit damage could yield a
// different-but-valid JSON line and silently diverge the merged TDB.
func corrupt(b []byte) []byte {
	g := make([]byte, len(b))
	for i, x := range b {
		if x == '\n' {
			g[i] = '\n'
		} else {
			g[i] = '#'
		}
	}
	return g
}

// corruptBinary XORs every byte with a nonzero random value: each byte is
// guaranteed to change, and the damage pattern varies per fault so the frame
// CRC check faces arbitrary garble rather than one fixed fill. The receiver
// detects it via checksum/length validation (internal/wire), never by
// accident of framing.
func corruptBinary(b []byte, rng *rand.Rand) []byte {
	g := make([]byte, len(b))
	for i, x := range b {
		g[i] = x ^ byte(1+rng.Intn(255))
	}
	return g
}
