package engine

import (
	"sync"
	"sync/atomic"

	"lmerge/internal/temporal"
)

// Runtime executes a graph concurrently: one goroutine per node, channels
// between nodes — the natural Go realisation of a push-based DSMS operator
// graph. Elements flow through buffered channels; feedback bypasses the
// channels entirely (it is an atomic watermark bump walked upstream), so the
// upstream flow can never deadlock against the downstream flow. The graph
// must be acyclic, which also makes the downstream flow deadlock-free.
type Runtime struct {
	g         *Graph
	wg        sync.WaitGroup
	producers []atomic.Int32
	started   bool
}

// inboxDepth is the per-node channel buffer: deep enough to decouple
// producer/consumer bursts, shallow enough to keep memory bounded.
const inboxDepth = 1024

// NewRuntime prepares a concurrent runtime for g.
func NewRuntime(g *Graph) *Runtime {
	return &Runtime{g: g}
}

// Start launches one goroutine per node. Feed source nodes with Inject and
// finish with Close.
func (r *Runtime) Start() {
	if r.started {
		return
	}
	r.started = true
	r.producers = make([]atomic.Int32, len(r.g.nodes))
	for _, n := range r.g.nodes {
		n.inbox = make(chan message, inboxDepth)
		// Producers: upstream operator goroutines, or the external driver
		// for source nodes.
		c := len(n.upstream)
		if c == 0 {
			c = 1
		}
		r.producers[n.idx].Store(int32(c))
	}
	for _, n := range r.g.nodes {
		r.wg.Add(1)
		go func(n *Node) {
			defer r.wg.Done()
			out := Out{node: n, mode: dispatchConcurrent}
			for m := range n.inbox {
				n.op.Process(m.port, m.el, &out)
			}
			for _, d := range n.downstream {
				r.release(d.to)
			}
		}(n)
	}
}

// release drops one producer reference of node n, closing its inbox when the
// last producer finishes.
func (r *Runtime) release(n *Node) {
	if r.producers[n.idx].Add(-1) == 0 {
		close(n.inbox)
	}
}

// Inject feeds an element into a source node's inbox (port 0). It must not
// be called after Close.
func (r *Runtime) Inject(n *Node, e temporal.Element) {
	n.inbox <- message{port: 0, el: e}
}

// Close signals end-of-stream at every source node and waits for the whole
// graph to drain.
func (r *Runtime) Close() {
	for _, n := range r.g.nodes {
		if len(n.upstream) == 0 {
			r.release(n)
		}
	}
	r.wg.Wait()
}
