package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lmerge/internal/temporal"
)

// Runtime executes a graph concurrently: one goroutine per node, channels
// between nodes — the natural Go realisation of a push-based DSMS operator
// graph. Elements flow through buffered channels in batches (see Out);
// feedback bypasses the channels entirely (it is an atomic watermark bump
// walked upstream), so the upstream flow can never deadlock against the
// downstream flow. The graph must be acyclic, which also makes the
// downstream flow deadlock-free.
//
// The runtime survives faulty operators: a panic inside Process is recovered
// on the node's goroutine and surfaced as an error (Err, and the return
// value of Close) instead of killing the process. The failed node stops
// processing but keeps draining its inbox and releases its downstream
// consumers, so the rest of the graph drains deterministically and Close
// always returns.
type Runtime struct {
	g         *Graph
	wg        sync.WaitGroup
	producers []atomic.Int32
	batch     int
	started   bool
	closing   atomic.Bool // set by Close before inboxes start closing

	errMu sync.Mutex
	err   error // first node failure (panic recovered in Process)
}

// Lifecycle misuse errors. They are returned (and recorded, see Err) instead
// of letting the misuse surface as a panic on a closed or nil channel.
var (
	// ErrAlreadyStarted reports a second Start on the same Runtime.
	ErrAlreadyStarted = errors.New("engine: runtime already started")
	// ErrNotStarted reports an injection before Start.
	ErrNotStarted = errors.New("engine: inject before Start")
	// ErrClosed reports an injection after Close began.
	ErrClosed = errors.New("engine: inject after Close")
)

// DefaultBatchSize is the dispatch batch size used unless WithBatchSize
// overrides it: large enough to amortise channel synchronisation to a small
// fraction of an element's processing cost, small enough that a batch stays
// within a few cache lines of element headers.
const DefaultBatchSize = 64

// inboxDepth is the per-node channel buffer in batches: deep enough to
// decouple producer/consumer bursts, shallow enough to keep memory bounded
// (worst case inboxDepth × batch element headers per edge).
const inboxDepth = 256

// RuntimeOption configures a Runtime.
type RuntimeOption func(*Runtime)

// WithBatchSize sets the dispatch batch size. n <= 1 sends every element as
// its own batch (the pre-batching protocol, kept for latency-sensitive or
// comparison runs); n == 0 keeps the default.
func WithBatchSize(n int) RuntimeOption {
	return func(r *Runtime) {
		if n > 0 {
			r.batch = n
		}
	}
}

// NewRuntime prepares a concurrent runtime for g.
func NewRuntime(g *Graph, opts ...RuntimeOption) *Runtime {
	r := &Runtime{g: g, batch: DefaultBatchSize}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// batchPool recycles message batches between consumers (which drain them)
// and producers (which fill them), keeping steady-state dispatch
// allocation-free. Stored as *[]message so Put does not allocate a header.
var batchPool = sync.Pool{
	New: func() any {
		s := make([]message, 0, DefaultBatchSize)
		return &s
	},
}

func getBatch() []message {
	return (*batchPool.Get().(*[]message))[:0]
}

func putBatch(b []message) {
	batchPool.Put(&b)
}

// Start launches one goroutine per node. Feed source nodes with Inject or
// InjectBatch and finish with Close. A second Start is rejected with
// ErrAlreadyStarted (the running graph is untouched).
func (r *Runtime) Start() error {
	if r.started {
		return ErrAlreadyStarted
	}
	r.started = true
	r.producers = make([]atomic.Int32, len(r.g.nodes))
	for _, n := range r.g.nodes {
		n.inbox = make(chan []message, inboxDepth)
		// Producers: upstream operator goroutines, or the external driver
		// for source nodes.
		c := len(n.upstream)
		if c == 0 {
			c = 1
		}
		r.producers[n.idx].Store(int32(c))
	}
	for _, n := range r.g.nodes {
		r.wg.Add(1)
		go func(n *Node) {
			defer r.wg.Done()
			out := Out{node: n, mode: dispatchConcurrent, batch: r.batch}
			out.bufs = make([][]message, len(n.downstream))
			for i := range out.bufs {
				out.bufs[i] = getBatch()
			}
			failed := false
			for batch := range n.inbox {
				// Inbox backlog in batches, sampled per dispatch: the same
				// pending-work gauge the partition workers export, so a
				// backed-up node is visible on /metrics before it stalls
				// its producers.
				n.tel.SetQueueDepth(len(n.inbox))
				if !failed {
					failed = r.processBatch(n, batch, &out) != nil
				}
				putBatch(batch)
				// Flush before blocking on the next receive: emissions must
				// not be held hostage to future input. A failed node still
				// flushes what it emitted before the panic, then only drains.
				out.flushAll()
			}
			out.flushAll()
			for _, d := range n.downstream {
				r.release(d.to)
			}
		}(n)
	}
	return nil
}

// checkInject validates that the runtime can accept external input right now.
// Both misuse modes are recorded so they surface through Err/Close even when
// the caller discards the return value.
func (r *Runtime) checkInject() error {
	if !r.started {
		r.recordErr(ErrNotStarted)
		return ErrNotStarted
	}
	if r.closing.Load() {
		r.recordErr(ErrClosed)
		return ErrClosed
	}
	return nil
}

// processBatch drives one inbox batch through the node's operator,
// converting a Process panic into a recorded error. The rest of the
// panicking batch is dropped; the node then drains without processing.
func (r *Runtime) processBatch(n *Node, batch []message, out *Out) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: node %q panicked: %v", n.Name(), p)
			r.recordErr(err)
			// Aux carries the size of the batch the panic abandoned, so the
			// trace shows how much input the failed node discarded.
			n.tel.Fault(int64(len(batch)))
		}
	}()
	for _, m := range batch {
		n.tel.EdgeIn()
		n.op.Process(m.port, m.el, out)
	}
	return nil
}

func (r *Runtime) recordErr(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
}

// Err returns the first node failure recovered by the runtime (nil while
// healthy). It may be called at any time.
func (r *Runtime) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// release drops one producer reference of node n, closing its inbox when the
// last producer finishes.
func (r *Runtime) release(n *Node) {
	if r.producers[n.idx].Add(-1) == 0 {
		close(n.inbox)
	}
}

// Inject feeds one element into a source node's inbox (port 0) as a
// single-element batch. Injecting before Start or after Close returns (and
// records, see Err) a lifecycle error instead of panicking; the element is
// dropped. Bulk drivers should prefer InjectBatch, which amortises channel
// synchronisation.
func (r *Runtime) Inject(n *Node, e temporal.Element) error {
	return r.InjectPort(n, 0, e)
}

// InjectBatch feeds a run of elements into a source node's inbox (port 0),
// chunked at the runtime's batch size. The whole slice is handed off before
// returning — nothing is held back awaiting further input.
func (r *Runtime) InjectBatch(n *Node, els []temporal.Element) error {
	return r.InjectBatchPort(n, 0, els)
}

// InjectPort feeds one element into a source node's inbox tagged for the
// given input port, letting an external driver feed a multi-port node (e.g. a
// union) directly. Per-port element order is preserved when each port is fed
// from a single goroutine; distinct goroutines may feed distinct ports of the
// same node concurrently.
func (r *Runtime) InjectPort(n *Node, port int, e temporal.Element) error {
	if err := r.checkInject(); err != nil {
		return err
	}
	b := getBatch()
	b = append(b, message{port: port, el: e})
	n.inbox <- b
	return nil
}

// InjectBatchPort is InjectBatch for a specific input port.
func (r *Runtime) InjectBatchPort(n *Node, port int, els []temporal.Element) error {
	if err := r.checkInject(); err != nil {
		return err
	}
	chunk := r.batch
	if chunk < 1 {
		chunk = 1
	}
	for len(els) > 0 {
		k := min(len(els), chunk)
		b := getBatch()
		for _, e := range els[:k] {
			b = append(b, message{port: port, el: e})
		}
		n.inbox <- b
		els = els[k:]
	}
	return nil
}

// Close signals end-of-stream at every source node and waits for the whole
// graph to drain: every injected element has either been fully processed or
// discarded by a failed node by the time Close returns. The drain is
// deterministic — node goroutines exit only after their inboxes are closed
// and empty. Close returns the first node failure, if any (see Err).
// Closing an unstarted runtime, or closing twice, is a no-op beyond
// returning Err.
func (r *Runtime) Close() error {
	if !r.started || r.closing.Swap(true) {
		return r.Err()
	}
	for _, n := range r.g.nodes {
		if len(n.upstream) == 0 {
			r.release(n)
		}
	}
	r.wg.Wait()
	return r.Err()
}
