package engine

import (
	"strings"
	"testing"

	"lmerge/internal/temporal"
)

// bomb forwards elements until it sees the trigger payload, then panics.
type bomb struct {
	trigger int64
}

func (b *bomb) Name() string { return "bomb" }
func (b *bomb) Process(_ int, e temporal.Element, out *Out) {
	if e.Kind == temporal.KindInsert && e.Payload.ID == b.trigger {
		panic("simulated operator fault")
	}
	out.Emit(e)
}
func (b *bomb) OnFeedback(temporal.Time) bool { return false }

func TestRuntimeRecoversOperatorPanic(t *testing.T) {
	// src fans out to a faulty branch (bomb → sink) and a healthy branch
	// (side). The bomb's panic must surface as an error from Close, not kill
	// the process, and must not stop the healthy branch from draining fully.
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	boom := g.Add(&bomb{trigger: 50})
	sink := &collector{}
	side := &collector{}
	g.Connect(src, boom)
	g.Connect(boom, g.Add(sink))
	g.Connect(src, g.Add(side))

	// Batch size 1 makes the faulty branch deterministic: every element
	// before the trigger is flushed downstream before the panic fires.
	rt := NewRuntime(g, WithBatchSize(1))
	rt.Start()
	const total = 100
	for i := int64(0); i < total; i++ {
		rt.Inject(src, temporal.Insert(temporal.P(i), temporal.Time(i), temporal.Infinity))
	}
	if rt.Err() != nil && !strings.Contains(rt.Err().Error(), "bomb") {
		t.Fatalf("unexpected early error: %v", rt.Err())
	}
	err := rt.Close()
	if err == nil {
		t.Fatal("Close returned nil after an operator panic")
	}
	if !strings.Contains(err.Error(), `node "bomb" panicked`) ||
		!strings.Contains(err.Error(), "simulated operator fault") {
		t.Fatalf("error does not identify the failed node: %v", err)
	}
	if rt.Err() == nil {
		t.Fatal("Err() lost the recorded failure")
	}
	if len(side.els) != total {
		t.Fatalf("healthy branch drained %d of %d elements", len(side.els), total)
	}
	if len(sink.els) != 50 {
		t.Fatalf("faulty branch forwarded %d elements, want the 50 pre-panic ones", len(sink.els))
	}
}

func TestRuntimeCloseNilWhenHealthy(t *testing.T) {
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	sink := &collector{}
	g.Connect(src, g.Add(sink))
	rt := NewRuntime(g)
	rt.Start()
	rt.Inject(src, temporal.Stable(temporal.Infinity))
	if err := rt.Close(); err != nil {
		t.Fatalf("healthy graph reported %v", err)
	}
	if len(sink.els) != 1 {
		t.Fatal("element lost")
	}
}
