package engine

import (
	"testing"
	"time"

	"lmerge/internal/temporal"
)

// runBatched drives els through a fresh src→mid→sink pipeline under a
// Runtime configured with the given batch size, returning the sink's output.
func runBatched(t *testing.T, els []temporal.Element, batch int, inject func(*Runtime, *Node)) []temporal.Element {
	t.Helper()
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	mid := g.Add(&passthrough{name: "mid"})
	sink := &collector{}
	g.Connect(src, mid)
	g.Connect(mid, g.Add(sink))
	rt := NewRuntime(g, WithBatchSize(batch))
	rt.Start()
	inject(rt, src)
	rt.Close()
	return sink.els
}

// TestBatchedDispatchMatchesSync checks that batched dispatch is purely a
// transport optimisation: for every batch size (including 1, the
// per-element protocol) and for both Inject and InjectBatch, the output is
// element-for-element identical to the synchronous executor's.
func TestBatchedDispatchMatchesSync(t *testing.T) {
	var els []temporal.Element
	for i := int64(0); i < 500; i++ {
		els = append(els, temporal.Insert(temporal.P(i), temporal.Time(i), temporal.Time(i+10)))
		if i%50 == 49 {
			els = append(els, temporal.Stable(temporal.Time(i-5)))
		}
	}
	els = append(els, temporal.Stable(temporal.Infinity))

	// Sync reference.
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	mid := g.Add(&passthrough{name: "mid"})
	sink := &collector{}
	g.Connect(src, mid)
	g.Connect(mid, g.Add(sink))
	for _, e := range els {
		src.Inject(e)
	}
	want := sink.els

	perElement := func(rt *Runtime, n *Node) {
		for _, e := range els {
			rt.Inject(n, e)
		}
	}
	bulk := func(rt *Runtime, n *Node) { rt.InjectBatch(n, els) }

	for _, batch := range []int{1, 2, 64, 1024} {
		for name, inject := range map[string]func(*Runtime, *Node){"Inject": perElement, "InjectBatch": bulk} {
			got := runBatched(t, els, batch, inject)
			if len(got) != len(want) {
				t.Fatalf("batch=%d %s: got %d elements, want %d", batch, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("batch=%d %s: element %d = %v, want %v", batch, name, i, got[i], want[i])
				}
			}
		}
	}
}

// chanCollector hands every element it receives to a channel, so a test can
// observe delivery while the runtime is still running.
type chanCollector struct {
	ch chan temporal.Element
}

func (c *chanCollector) Name() string { return "chan-collector" }
func (c *chanCollector) Process(_ int, e temporal.Element, _ *Out) {
	c.ch <- e
}
func (c *chanCollector) OnFeedback(temporal.Time) bool { return false }

// TestStableFlushesBatch verifies the liveness rule: a stable element (the
// stream's punctuation) must not sit in a half-full dispatch buffer while
// the producing goroutine blocks for more input. With a huge batch size and
// the runtime still open, the stable — and the insert queued before it —
// must reach the sink anyway.
func TestStableFlushesBatch(t *testing.T) {
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	sink := &chanCollector{ch: make(chan temporal.Element, 8)}
	g.Connect(src, g.Add(sink))
	rt := NewRuntime(g, WithBatchSize(1<<20))
	rt.Start()
	defer rt.Close()
	rt.Inject(src, temporal.Insert(temporal.P(1), 1, 10))
	rt.Inject(src, temporal.Stable(5))
	timeout := time.After(5 * time.Second)
	var got []temporal.Element
	for len(got) < 2 {
		select {
		case e := <-sink.ch:
			got = append(got, e)
		case <-timeout:
			t.Fatalf("stable held back in dispatch buffer; sink got only %v", got)
		}
	}
	if got[1].Kind != temporal.KindStable {
		t.Fatalf("sink got %v, want insert then stable", got)
	}
}
