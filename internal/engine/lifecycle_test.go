package engine

import (
	"errors"
	"testing"

	"lmerge/internal/temporal"
)

// lifecycleGraph builds a trivial src -> sink graph for runtime lifecycle
// tests (the sink is concurrent-safe because only the src goroutine feeds it).
func lifecycleGraph() (*Graph, *Node) {
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	g.Connect(src, g.Add(&collector{}))
	return g, src
}

func TestRuntimeDoubleStart(t *testing.T) {
	g, _ := lifecycleGraph()
	r := NewRuntime(g)
	if err := r.Start(); err != nil {
		t.Fatalf("first Start: %v", err)
	}
	if err := r.Start(); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("second Start = %v, want ErrAlreadyStarted", err)
	}
	// The first Start's graph must remain functional and drain cleanly.
	if err := r.Close(); err != nil {
		t.Fatalf("Close after rejected restart: %v", err)
	}
}

func TestRuntimeInjectBeforeStart(t *testing.T) {
	g, src := lifecycleGraph()
	r := NewRuntime(g)
	if err := r.Inject(src, temporal.Stable(1)); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Inject before Start = %v, want ErrNotStarted", err)
	}
}

func TestRuntimeInjectAfterClose(t *testing.T) {
	g, src := lifecycleGraph()
	r := NewRuntime(g)
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.Inject(src, temporal.Stable(1)); err != nil {
		t.Fatalf("Inject while running: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Inject(src, temporal.Stable(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Inject after Close = %v, want ErrClosed", err)
	}
	if err := r.InjectBatch(src, []temporal.Element{temporal.Stable(3)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("InjectBatch after Close = %v, want ErrClosed", err)
	}
	// The misuse is also recorded so drivers that drop the return value
	// still see it at the next Close / Err.
	if err := r.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Err after misuse = %v, want ErrClosed", err)
	}
	if err := r.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want recorded ErrClosed", err)
	}
}

func TestRuntimeCloseBeforeStart(t *testing.T) {
	g, _ := lifecycleGraph()
	r := NewRuntime(g)
	if err := r.Close(); err != nil {
		t.Fatalf("Close before Start = %v, want nil no-op", err)
	}
}
