package engine

import (
	"sync/atomic"
	"testing"

	"lmerge/internal/temporal"
)

// passthrough forwards everything and records feedback.
type passthrough struct {
	name string
	fb   atomic.Int64
	stop bool // stop feedback propagation here
}

func (p *passthrough) Name() string { return p.name }
func (p *passthrough) Process(_ int, e temporal.Element, out *Out) {
	out.Emit(e)
}
func (p *passthrough) OnFeedback(t temporal.Time) bool {
	p.fb.Store(int64(t))
	return !p.stop
}

// collector gathers received elements.
type collector struct {
	els []temporal.Element
}

func (c *collector) Name() string { return "collector" }
func (c *collector) Process(_ int, e temporal.Element, _ *Out) {
	c.els = append(c.els, e)
}
func (c *collector) OnFeedback(temporal.Time) bool { return false }

func TestSyncPipeline(t *testing.T) {
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	mid := g.Add(&passthrough{name: "mid"})
	sink := &collector{}
	sn := g.Add(sink)
	g.Connect(src, mid)
	g.Connect(mid, sn)

	els := []temporal.Element{
		temporal.Insert(temporal.P(1), 1, 5),
		temporal.Stable(3),
	}
	for _, e := range els {
		src.Inject(e)
	}
	if len(sink.els) != 2 || sink.els[0] != els[0] || sink.els[1] != els[1] {
		t.Fatalf("sink got %v", sink.els)
	}
}

func TestSyncFanOut(t *testing.T) {
	g := NewGraph()
	src := g.Add(&passthrough{name: "src"})
	a, b := &collector{}, &collector{}
	g.Connect(src, g.Add(a))
	g.Connect(src, g.Add(b))
	src.Inject(temporal.Stable(7))
	if len(a.els) != 1 || len(b.els) != 1 {
		t.Fatalf("fan-out failed: %d/%d", len(a.els), len(b.els))
	}
}

func TestFeedbackWalk(t *testing.T) {
	g := NewGraph()
	srcOp := &passthrough{name: "src"}
	midOp := &passthrough{name: "mid"}
	src := g.Add(srcOp)
	mid := g.Add(midOp)
	sink := g.Add(&collector{})
	g.Connect(src, mid)
	port := g.Connect(mid, sink)

	out := Out{node: sink}
	out.Feedback(port, 42)
	if midOp.fb.Load() != 42 || srcOp.fb.Load() != 42 {
		t.Fatalf("feedback did not propagate: mid=%d src=%d", midOp.fb.Load(), srcOp.fb.Load())
	}
	if mid.FFPoint() != 42 || src.FFPoint() != 42 {
		t.Fatal("node watermarks not updated")
	}
	// Coalescing: an older signal is a no-op.
	out.Feedback(port, 10)
	if mid.FFPoint() != 42 {
		t.Fatal("stale feedback regressed the watermark")
	}
	// Out-of-range ports are ignored.
	out.Feedback(99, 50)
	out.FeedbackAll(60)
	if mid.FFPoint() != 60 {
		t.Fatal("FeedbackAll failed")
	}
}

func TestFeedbackStopsAtOptOut(t *testing.T) {
	g := NewGraph()
	srcOp := &passthrough{name: "src"}
	blockOp := &passthrough{name: "block", stop: true}
	src := g.Add(srcOp)
	block := g.Add(blockOp)
	g.Connect(src, block)
	block.SendFeedback(9)
	if blockOp.fb.Load() != 9 {
		t.Fatal("blocking operator should still see the signal")
	}
	if srcOp.fb.Load() != 0 {
		t.Fatal("signal should not pass a stopping operator")
	}
}

func TestConcurrentRuntimeMatchesSync(t *testing.T) {
	build := func() (*Graph, *Node, *collector) {
		g := NewGraph()
		src := g.Add(&passthrough{name: "src"})
		mid := g.Add(&passthrough{name: "mid"})
		sink := &collector{}
		g.Connect(src, mid)
		g.Connect(mid, g.Add(sink))
		return g, src, sink
	}
	var els []temporal.Element
	for i := int64(0); i < 500; i++ {
		els = append(els, temporal.Insert(temporal.P(i), temporal.Time(i), temporal.Time(i+10)))
	}
	els = append(els, temporal.Stable(temporal.Infinity))

	_, srcS, sinkS := build()
	for _, e := range els {
		srcS.Inject(e)
	}

	gC, srcC, sinkC := build()
	rt := NewRuntime(gC)
	rt.Start()
	for _, e := range els {
		rt.Inject(srcC, e)
	}
	rt.Close()

	if len(sinkS.els) != len(sinkC.els) {
		t.Fatalf("sync %d elements, concurrent %d", len(sinkS.els), len(sinkC.els))
	}
	for i := range sinkS.els {
		if sinkS.els[i] != sinkC.els[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

func TestConcurrentMultiInput(t *testing.T) {
	// Two sources into one two-port collector; per-port FIFO must hold.
	g := NewGraph()
	s0 := g.Add(&passthrough{name: "s0"})
	s1 := g.Add(&passthrough{name: "s1"})
	sink := &portCollector{}
	sn := g.Add(sink)
	g.Connect(s0, sn)
	g.Connect(s1, sn)
	rt := NewRuntime(g)
	rt.Start()
	for i := int64(0); i < 200; i++ {
		rt.Inject(s0, temporal.Insert(temporal.P(i), temporal.Time(i), temporal.Infinity))
		rt.Inject(s1, temporal.Insert(temporal.P(1000+i), temporal.Time(i), temporal.Infinity))
	}
	rt.Close()
	if len(sink.byPort[0]) != 200 || len(sink.byPort[1]) != 200 {
		t.Fatalf("port counts %d/%d", len(sink.byPort[0]), len(sink.byPort[1]))
	}
	for i := 1; i < 200; i++ {
		if sink.byPort[0][i].Payload.ID < sink.byPort[0][i-1].Payload.ID {
			t.Fatal("per-port FIFO violated")
		}
	}
}

type portCollector struct {
	byPort [2][]temporal.Element
}

func (p *portCollector) Name() string { return "ports" }
func (p *portCollector) Process(port int, e temporal.Element, _ *Out) {
	if port >= 0 && port < 2 {
		p.byPort[port] = append(p.byPort[port], e)
	}
}
func (p *portCollector) OnFeedback(temporal.Time) bool { return false }

func TestGraphString(t *testing.T) {
	g := NewGraph()
	a := g.Add(&passthrough{name: "a"})
	b := g.Add(&passthrough{name: "b"})
	g.Connect(a, b)
	if s := g.String(); s == "" {
		t.Fatal("empty graph description")
	}
	if len(g.Nodes()) != 2 || g.Nodes()[0].Name() != "a" {
		t.Fatal("Nodes accessor wrong")
	}
	if g.Nodes()[0].Operator() == nil {
		t.Fatal("Operator accessor wrong")
	}
}
