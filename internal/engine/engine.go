// Package engine is the StreamInsight-like mini-DSMS substrate the LMerge
// evaluation runs on. It executes directed acyclic graphs of stream
// operators over the insert/adjust/stable element algebra, with elements
// flowing downstream and fast-forward feedback signals (paper Sec. V-D)
// flowing upstream.
//
// Two execution modes are provided: a synchronous, fully deterministic
// executor (Inject drives elements depth-first through the graph, used by
// tests and the repeatable experiments) and a concurrent runtime with one
// goroutine per operator connected by channels (Run; used by the
// throughput-oriented experiments and examples).
package engine

import (
	"fmt"
	"sync/atomic"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// Operator is one stream operator. Process consumes an element arriving on
// an input port and emits any number of elements via out. Process is driven
// by a single goroutine at a time. OnFeedback, however, runs on the
// downstream consumer's goroutine and may race with Process: implementations
// must restrict it to race-free work — record the watermark in an atomic and
// defer state purging to the next Process call (see operators.CountAgg for
// the canonical pattern).
type Operator interface {
	// Name identifies the operator in diagnostics.
	Name() string
	// Process handles one element from input port port.
	Process(port int, e temporal.Element, out *Out)
	// OnFeedback receives a fast-forward signal from downstream: elements
	// before t are no longer of interest. It reports whether the signal
	// should continue to this operator's own inputs; the decision must be a
	// pure function of the operator's kind (it may be evaluated
	// concurrently with Process).
	OnFeedback(t temporal.Time) (propagate bool)
}

// Sized is implemented by operators that can report their state footprint.
type Sized interface {
	SizeBytes() int
}

// Graph is a DAG of operator nodes.
type Graph struct {
	nodes []*Node
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Node is one operator instance in a graph.
type Node struct {
	op         Operator
	idx        int
	downstream []edge
	upstream   []*Node
	inbox      chan []message // used by the concurrent runtime (batched)
	ffPoint    atomic.Int64   // latest feedback time delivered to this node
	// tel is the node's optional telemetry (see Graph.Instrument). Nil-safe:
	// the uninstrumented executor pays one branch per touch point.
	tel *obs.Node
	// syncOut is the reusable emission context for the synchronous executor.
	// A sync Out is stateless (no batch buffers), and the sync executor is
	// single-threaded per subgraph (Process itself is not goroutine-safe), so
	// one context per node suffices — without it, every delivery would heap-
	// allocate an Out because it escapes through the Operator interface.
	syncOut Out
}

type edge struct {
	to   *Node
	port int
}

type message struct {
	port int
	el   temporal.Element
}

// Add places an operator in the graph.
func (g *Graph) Add(op Operator) *Node {
	n := &Node{op: op, idx: len(g.nodes)}
	n.ffPoint.Store(int64(temporal.MinTime))
	g.nodes = append(g.nodes, n)
	return n
}

// Connect wires from's output to a new input port of to and returns the
// port number.
func (g *Graph) Connect(from, to *Node) int {
	port := len(to.upstream)
	to.upstream = append(to.upstream, from)
	from.downstream = append(from.downstream, edge{to: to, port: port})
	return port
}

// Nodes returns the graph's nodes in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Instrument registers one telemetry node per graph node in reg (named
// "opname#idx") and forwards it to operators that implement Observe (e.g.
// LMerge routes it into its core merger, so merge-level counters, freshness,
// and leadership land on the same telemetry node as the engine's edge
// counters). Call before Start/Inject; instrumenting mid-flight races with
// delivery.
func (g *Graph) Instrument(reg *obs.Registry) {
	for _, n := range g.nodes {
		n.tel = reg.Node(fmt.Sprintf("%s#%d", n.Name(), n.idx))
		if ob, ok := n.op.(interface{ Observe(*obs.Node) }); ok {
			ob.Observe(n.tel)
		}
	}
}

// Operator returns the node's operator.
func (n *Node) Operator() Operator { return n.op }

// Upstream returns the node's input producers in port order.
func (n *Node) Upstream() []*Node { return n.upstream }

// Name returns the node's operator name.
func (n *Node) Name() string { return n.op.Name() }

// FFPoint returns the latest fast-forward time this node has received.
func (n *Node) FFPoint() temporal.Time { return temporal.Time(n.ffPoint.Load()) }

// Telemetry returns the node's telemetry (nil before Graph.Instrument).
func (n *Node) Telemetry() *obs.Node { return n.tel }

// Out is the emission context handed to Operator.Process. It routes emitted
// elements to the node's downstream ports and feedback to its upstream.
//
// In the concurrent runtime, emissions are not sent one channel operation at
// a time: Out accumulates a pending batch per downstream edge and flushes it
// when it reaches the runtime's batch size, when a stable element is emitted
// (stables are punctuation — holding one back would stall downstream
// progress and feedback, Sec. III), and when the node finishes draining an
// incoming batch. The synchronous executor is untouched by batching: it
// delivers depth-first, element by element, fully deterministically.
type Out struct {
	node *Node
	mode dispatchMode
	// batch is the concurrent dispatch batch size (<=1 sends per element).
	batch int
	// bufs holds the pending outgoing batch per downstream edge
	// (concurrent mode only).
	bufs [][]message
	// trace, when non-nil, receives every element this node emits (used by
	// sinks and tests).
	trace func(temporal.Element)
}

type dispatchMode uint8

const (
	dispatchSync dispatchMode = iota
	dispatchConcurrent
)

// Emit forwards an element to every downstream consumer.
func (o *Out) Emit(e temporal.Element) {
	o.node.tel.EdgeOut()
	if o.trace != nil {
		o.trace(e)
	}
	switch o.mode {
	case dispatchSync:
		for _, d := range o.node.downstream {
			d.to.deliverSync(d.port, e, o.mode)
		}
	case dispatchConcurrent:
		for i, d := range o.node.downstream {
			o.bufs[i] = append(o.bufs[i], message{port: d.port, el: e})
			if len(o.bufs[i]) >= o.batch || e.Kind == temporal.KindStable {
				o.flushEdge(i)
			}
		}
	}
}

// EmitTo forwards an element to exactly one downstream consumer, addressed
// by downstream-edge index (the order Connect was called on this node). It is
// the routed-dispatch primitive partitioned execution builds on: a splitter
// node keeps per-partition edges and steers each element to the edge its key
// hashes to, while Emit remains the broadcast path (stable elements must be
// broadcast — a routed stable would stall every other partition's progress).
func (o *Out) EmitTo(i int, e temporal.Element) {
	if i < 0 || i >= len(o.node.downstream) {
		return
	}
	o.node.tel.EdgeOut()
	if o.trace != nil {
		o.trace(e)
	}
	switch o.mode {
	case dispatchSync:
		d := o.node.downstream[i]
		d.to.deliverSync(d.port, e, o.mode)
	case dispatchConcurrent:
		o.bufs[i] = append(o.bufs[i], message{port: o.node.downstream[i].port, el: e})
		if len(o.bufs[i]) >= o.batch || e.Kind == temporal.KindStable {
			o.flushEdge(i)
		}
	}
}

// flushEdge sends edge i's pending batch downstream.
func (o *Out) flushEdge(i int) {
	if len(o.bufs[i]) == 0 {
		return
	}
	o.node.downstream[i].to.inbox <- o.bufs[i]
	o.bufs[i] = getBatch()
}

// flushAll drains every pending outgoing batch. The runtime calls it after a
// node finishes an incoming batch, so no emission is held back while the
// node blocks on its next receive.
func (o *Out) flushAll() {
	for i := range o.bufs {
		o.flushEdge(i)
	}
}

// Feedback sends a fast-forward signal to the upstream producer feeding
// input port port. The signal is applied synchronously on the caller's
// goroutine and propagates while operators approve.
func (o *Out) Feedback(port int, t temporal.Time) {
	if port < 0 || port >= len(o.node.upstream) {
		return
	}
	o.node.upstream[port].feedback(t)
}

// FeedbackAll signals every upstream producer.
func (o *Out) FeedbackAll(t temporal.Time) {
	for _, up := range o.node.upstream {
		up.feedback(t)
	}
}

func (n *Node) feedback(t temporal.Time) {
	// Coalesce: only ever move the fast-forward point forward.
	for {
		cur := n.ffPoint.Load()
		if int64(t) <= cur {
			return
		}
		if n.ffPoint.CompareAndSwap(cur, int64(t)) {
			break
		}
	}
	// Stream -1 marks a signal received by this node, distinguishing it in
	// counters and trace from signals an LMerge operator emits to a numbered
	// input stream.
	n.tel.FF(-1, t)
	if n.op.OnFeedback(t) {
		for _, up := range n.upstream {
			up.feedback(t)
		}
	}
}

func (n *Node) deliverSync(port int, e temporal.Element, mode dispatchMode) {
	n.tel.EdgeIn()
	if n.syncOut.node == nil {
		n.syncOut = Out{node: n, mode: mode}
	}
	n.op.Process(port, e, &n.syncOut)
}

// Inject synchronously drives one element into the node (as input port 0)
// and recursively through everything downstream. This is the deterministic
// execution mode.
func (n *Node) Inject(e temporal.Element) {
	n.deliverSync(0, e, dispatchSync)
}

// InjectPort is Inject for a specific input port.
func (n *Node) InjectPort(port int, e temporal.Element) {
	n.deliverSync(port, e, dispatchSync)
}

// SendFeedback lets an external consumer (e.g. a driver reading the final
// sink) initiate a fast-forward signal at this node.
func (n *Node) SendFeedback(t temporal.Time) { n.feedback(t) }

// String summarises the graph topology.
func (g *Graph) String() string {
	s := ""
	for _, n := range g.nodes {
		s += fmt.Sprintf("[%d]%s ->", n.idx, n.Name())
		for _, d := range n.downstream {
			s += fmt.Sprintf(" [%d]%s:%d", d.to.idx, d.to.Name(), d.port)
		}
		s += "\n"
	}
	return s
}
