package engine

import (
	"testing"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// passOp forwards every data element downstream: the minimal data-plane
// operator, so the measurement isolates the dispatch path itself.
type passOp struct{ n int }

func (p *passOp) Name() string { return "pass" }
func (p *passOp) Process(port int, e temporal.Element, out *Out) {
	p.n++
	out.Emit(e)
}
func (p *passOp) OnFeedback(temporal.Time) bool { return true }

// runtimeBatchAllocs measures allocations per processBatch call on the
// concurrent worker body (the exact code the runtime goroutines run),
// with the flush threshold kept above the batch size so emissions stay in
// the pending buffer — channel traffic would measure the scheduler, not
// the dispatch path.
func runtimeBatchAllocs(t *testing.T, instrument bool) float64 {
	t.Helper()
	g := NewGraph()
	src := g.Add(&passOp{})
	g.Connect(src, g.Add(&passOp{}))
	if instrument {
		g.Instrument(obs.NewRegistry())
	}
	r := NewRuntime(g)
	batch := []message{
		{port: 0, el: temporal.Insert(temporal.P(1), 10, 20)},
		{port: 0, el: temporal.Insert(temporal.P(2), 11, 21)},
		{port: 0, el: temporal.Insert(temporal.P(3), 12, 22)},
	}
	out := Out{node: src, mode: dispatchConcurrent, batch: len(batch) + 1}
	out.bufs = make([][]message, len(src.downstream))
	for i := range out.bufs {
		out.bufs[i] = make([]message, 0, len(batch))
	}
	return testing.AllocsPerRun(200, func() {
		if err := r.processBatch(src, batch, &out); err != nil {
			t.Fatal(err)
		}
		for i := range out.bufs {
			out.bufs[i] = out.bufs[i][:0]
		}
	})
}

// TestRuntimeBatchAllocsObserved is the runtime-path twin of the core
// alloc guards (TestProcessAllocs/TestProcessAllocsObserved): the concurrent
// worker body must stay allocation-free per batch, and instrumenting the
// graph must not add a single allocation to it.
func TestRuntimeBatchAllocsObserved(t *testing.T) {
	if bare := runtimeBatchAllocs(t, false); bare != 0 {
		t.Errorf("uninstrumented runtime batch path allocates %.2f/op", bare)
	}
	if observed := runtimeBatchAllocs(t, true); observed != 0 {
		t.Errorf("instrumented runtime batch path allocates %.2f/op", observed)
	}
}
