package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"lmerge/internal/core"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// Checkpoint is one durable cut of the merge service's state, taken while
// ingestion is quiesced so every section describes the same instant:
//
//   - Stable: the merged output's stable point at the cut (recovery must not
//     let the frontier regress below it).
//   - Backlog: the full merged-output history. Subscribers resume
//     positionally (HELLO SUB FROM <n>) against backlog indexes, so the
//     history must survive a restart for those positions to stay meaningful.
//   - Snapshots: each merger's Snapshot() stream — one entry for the single
//     backend, one per partition for the sharded backend. The snapshot is the
//     compressed equivalent of the backlog's net effect; recovery feeds it
//     (plus the WAL's emission tail) as the seed stream of the paper's
//     jumpstart.
//   - RouteEpoch/RouteOwner: the sharded routing table version at the cut,
//     reinstalled before replay so every key lands back on the partition
//     whose snapshot carries its state.
type Checkpoint struct {
	Gen        uint64
	Stable     temporal.Time
	Backlog    temporal.Stream
	Snapshots  []temporal.Stream
	RouteEpoch int64
	RouteOwner []int32 // nil for the single backend
}

// Checkpoint file layout: magic, version, then a CRC-framed body. The body is
// varint-structured like WAL payloads. The file is written to a .tmp sibling,
// fsynced, and renamed into place, so a crash mid-write leaves either the old
// generation set or the new — never a half checkpoint under the real name.
var ckptMagic = [4]byte{'l', 'm', 'c', 'k'}

const ckptVersion = 1

func encodeCheckpoint(c *Checkpoint) []byte {
	buf := append([]byte(nil), ckptMagic[:]...)
	buf = binary.AppendUvarint(buf, ckptVersion)
	body := binary.AppendUvarint(nil, c.Gen)
	body = binary.AppendVarint(body, int64(c.Stable))
	body = binary.AppendVarint(body, c.RouteEpoch)
	body = binary.AppendUvarint(body, uint64(len(c.RouteOwner)))
	for _, o := range c.RouteOwner {
		body = binary.AppendVarint(body, int64(o))
	}
	enc := func(s temporal.Stream) {
		run := core.AppendStream(nil, s)
		body = binary.AppendUvarint(body, uint64(len(run)))
		body = append(body, run...)
	}
	body = binary.AppendUvarint(body, uint64(len(c.Snapshots)))
	for _, s := range c.Snapshots {
		enc(s)
	}
	enc(c.Backlog)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

// DecodeCheckpoint parses a checkpoint image, validating magic, version, and
// body checksum.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	fail := func(what string) (*Checkpoint, error) {
		return nil, fmt.Errorf("%w: checkpoint %s", ErrRecordCorrupt, what)
	}
	if len(data) < len(ckptMagic) || string(data[:4]) != string(ckptMagic[:]) {
		return fail("magic")
	}
	off := len(ckptMagic)
	ver, n := binary.Uvarint(data[off:])
	if n <= 0 || ver != ckptVersion {
		return fail("version")
	}
	off += n
	blen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return fail("body length")
	}
	off += n
	if off+4 > len(data) {
		return fail("checksum frame")
	}
	crc := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if uint64(len(data)-off) < blen {
		return fail("body truncated")
	}
	body := data[off : off+int(blen)]
	if crc32.ChecksumIEEE(body) != crc {
		return fail("checksum")
	}
	c := &Checkpoint{}
	p := 0
	uv := func(what string) (uint64, bool) {
		v, n := binary.Uvarint(body[p:])
		if n <= 0 {
			return 0, false
		}
		p += n
		return v, true
	}
	sv := func(what string) (int64, bool) {
		v, n := binary.Varint(body[p:])
		if n <= 0 {
			return 0, false
		}
		p += n
		return v, true
	}
	var ok bool
	if c.Gen, ok = uv("gen"); !ok {
		return fail("gen")
	}
	st, ok := sv("stable")
	if !ok {
		return fail("stable")
	}
	c.Stable = temporal.Time(st)
	if c.RouteEpoch, ok = sv("route epoch"); !ok {
		return fail("route epoch")
	}
	nOwner, ok := uv("route owners")
	if !ok || nOwner > 1<<16 {
		return fail("route owners")
	}
	if nOwner > 0 {
		c.RouteOwner = make([]int32, nOwner)
		for i := range c.RouteOwner {
			o, ok := sv("route owner")
			if !ok {
				return fail("route owner")
			}
			c.RouteOwner[i] = int32(o)
		}
	}
	dec := func(what string) (temporal.Stream, bool) {
		rlen, ok := uv(what)
		if !ok || rlen > uint64(len(body)-p) {
			return nil, false
		}
		s, err := core.DecodeStream(body[p : p+int(rlen)])
		if err != nil {
			return nil, false
		}
		p += int(rlen)
		return s, true
	}
	nSnap, ok := uv("snapshot count")
	if !ok || nSnap > 1<<16 {
		return fail("snapshot count")
	}
	c.Snapshots = make([]temporal.Stream, nSnap)
	for i := range c.Snapshots {
		if c.Snapshots[i], ok = dec("snapshot"); !ok {
			return fail("snapshot")
		}
	}
	if c.Backlog, ok = dec("backlog"); !ok {
		return fail("backlog")
	}
	if p != len(body) {
		return fail("trailer")
	}
	return c, nil
}

// WriteCheckpoint durably writes c as dir's generation-c.Gen checkpoint:
// encode, write to a temp sibling, fsync, rename. The rename is the commit
// point — recovery never sees a partial checkpoint under the real name.
func WriteCheckpoint(dir string, c *Checkpoint, tel *obs.Durability) error {
	data := encodeCheckpoint(c)
	final := CheckpointPath(dir, c.Gen)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	tel.Checkpointed(int64(len(data)))
	return nil
}

// RecoveryState is everything Load gathers from a data directory: the newest
// valid checkpoint (nil when the directory holds none), the decoded WAL
// records of every generation the checkpoint does not cover (ascending,
// concatenated), how many torn tail bytes checksum truncation discarded, and
// the next free generation number.
type RecoveryState struct {
	Checkpoint *Checkpoint
	Records    []Record
	TornBytes  int
	NextGen    uint64
}

// Load scans dir and assembles the recovery state. Corrupt or partial
// checkpoints are skipped (newest valid wins; a .tmp never qualifies); WAL
// generations at or above the chosen checkpoint's generation are decoded with
// checksum truncation. A directory with no usable state yields a zero-value
// RecoveryState with NextGen past anything present.
func Load(dir string) (*RecoveryState, error) {
	wals, ckpts, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	st := &RecoveryState{NextGen: 1}
	bump := func(g uint64) {
		if g >= st.NextGen {
			st.NextGen = g + 1
		}
	}
	for _, g := range wals {
		bump(g)
	}
	for _, g := range ckpts {
		bump(g)
	}
	// Newest valid checkpoint wins; invalid ones (partial write that still
	// got renamed, disk corruption) fall back to the previous generation,
	// whose WAL generations are retained exactly for this case.
	for i := len(ckpts) - 1; i >= 0; i-- {
		data, err := os.ReadFile(CheckpointPath(dir, ckpts[i]))
		if err != nil {
			continue
		}
		c, err := DecodeCheckpoint(data)
		if err != nil {
			continue
		}
		st.Checkpoint = c
		break
	}
	var from uint64
	if st.Checkpoint != nil {
		from = st.Checkpoint.Gen
	}
	for _, g := range wals {
		if g < from {
			continue
		}
		recs, torn, err := ReadLog(WALPath(dir, g))
		if err != nil {
			return nil, err
		}
		st.Records = append(st.Records, recs...)
		st.TornBytes += torn
	}
	return st, nil
}

// Prune deletes checkpoints older than the newest `keep` generations and WAL
// generations older than the oldest retained checkpoint. Keeping more than
// one checkpoint generation is what lets Load fall back when the newest file
// turns out invalid — and Prune honours that fallback: the cut never moves
// past the newest LOADABLE checkpoint, so even when every retained-by-count
// generation is corrupt, the generation Load would actually recover from
// (and its WAL tail) survives. In-flight commits are safe by construction:
// WriteCheckpoint publishes via a .tmp sibling that scanDir does not list,
// and a generation still mid-write is newer than any cut.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	wals, ckpts, err := scanDir(dir)
	if err != nil {
		return err
	}
	if len(ckpts) <= keep {
		return nil
	}
	cut := ckpts[len(ckpts)-keep]
	if cut > 0 {
		// Walk newest-first for the generation Load's fallback would choose;
		// decoding is cheap relative to losing the only valid checkpoint.
		loadable := uint64(0)
		found := false
		for i := len(ckpts) - 1; i >= 0; i-- {
			data, err := os.ReadFile(CheckpointPath(dir, ckpts[i]))
			if err != nil {
				continue
			}
			if _, err := DecodeCheckpoint(data); err != nil {
				continue
			}
			loadable, found = ckpts[i], true
			break
		}
		if !found {
			return nil // nothing loadable at all: delete nothing
		}
		if loadable < cut {
			cut = loadable
		}
	}
	var firstErr error
	rm := func(path string) {
		if err := os.Remove(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, g := range ckpts {
		if g < cut {
			rm(CheckpointPath(dir, g))
		}
	}
	for _, g := range wals {
		if g < cut {
			rm(WALPath(dir, g))
		}
	}
	return firstErr
}

// EmitTail extracts the merged-output continuation from a record sequence:
// every RecEmit element whose backlog index is at or past from, in log order.
// Records the checkpoint already covers (Seq+len <= from) are skipped;
// partial overlaps contribute only their uncovered suffix.
func EmitTail(recs []Record, from uint64) temporal.Stream {
	var out temporal.Stream
	next := from
	for _, r := range recs {
		if r.Kind != RecEmit {
			continue
		}
		end := r.Seq + uint64(len(r.Els))
		if end <= next {
			continue
		}
		start := 0
		if r.Seq < next {
			start = int(next - r.Seq)
		}
		out = append(out, r.Els[start:]...)
		next = end
	}
	return out
}

// RemoveAll wipes a data directory's durability files (tests and tooling).
func RemoveAll(dir string) error {
	wals, ckpts, err := scanDir(dir)
	if err != nil {
		return err
	}
	for _, g := range wals {
		os.Remove(WALPath(dir, g))
	}
	for _, g := range ckpts {
		os.Remove(CheckpointPath(dir, g))
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.lmck.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
	return nil
}
