package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lmerge/internal/temporal"
)

// TestEmitTailBoundaries pins EmitTail's record-boundary semantics: a `from`
// landing exactly on a record's first index takes the whole record (no
// duplicate, no gap), a `from` landing exactly past a record's last index
// skips it entirely, and everything in between splices mid-record.
func TestEmitTailBoundaries(t *testing.T) {
	el := func(id int64) temporal.Element {
		return temporal.Insert(temporal.Payload{ID: id}, 0, 1)
	}
	recs := []Record{
		{Kind: RecEmit, Seq: 10, Els: temporal.Stream{el(10), el(11), el(12)}},
		{Kind: RecBatch, ID: 7, Els: temporal.Stream{el(99)}}, // non-emit: invisible
		{Kind: RecEmit, Seq: 13, Els: temporal.Stream{el(13)}},
	}
	cases := []struct {
		name string
		from uint64
		want []int64
	}{
		{"before first record", 0, []int64{10, 11, 12, 13}},
		{"exactly first index", 10, []int64{10, 11, 12, 13}},
		{"mid-record", 11, []int64{11, 12, 13}},
		{"exactly record end", 13, []int64{13}},
		{"exactly log end", 14, nil},
		{"past log end", 99, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EmitTail(recs, tc.from)
			if len(got) != len(tc.want) {
				t.Fatalf("from %d: tail length = %d, want %d", tc.from, len(got), len(tc.want))
			}
			for i, want := range tc.want {
				if got[i].Payload.ID != want {
					t.Errorf("from %d: tail[%d].ID = %d, want %d", tc.from, i, got[i].Payload.ID, want)
				}
			}
		})
	}
	if tail := EmitTail(nil, 0); len(tail) != 0 {
		t.Errorf("empty log: tail = %d, want 0", len(tail))
	}
}

// TestEmitTailAfterChecksumTruncation crosses EmitTail with the torn-tail
// path: when the final emit record is torn, checksum truncation drops it, and
// a checkpoint that already covers the surviving prefix yields an empty tail
// — recovery must not invent emissions the log no longer proves.
func TestEmitTailAfterChecksumTruncation(t *testing.T) {
	dir := t.TempDir()
	el := func(id int64) temporal.Element {
		return temporal.Insert(temporal.Payload{ID: id}, 0, 1)
	}
	log, err := CreateLog(dir, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(Record{Kind: RecEmit, Seq: 0, Els: temporal.Stream{el(0), el(1)}})
	log.Append(Record{Kind: RecEmit, Seq: 2, Els: temporal.Stream{el(2), el(3)}})
	log.Close()
	path := WALPath(dir, 1)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-3], 0o644) // tear the final record
	recs, torn, err := ReadLog(path)
	if err != nil || torn == 0 {
		t.Fatalf("ReadLog: torn=%d err=%v", torn, err)
	}
	// The checkpoint covered indexes [0,2): the torn record held [2,4), so
	// after truncation there is nothing left to splice.
	if tail := EmitTail(recs, 2); len(tail) != 0 {
		t.Errorf("tail after truncation = %d elements, want 0", len(tail))
	}
	// A checkpoint covering less still gets the surviving prefix's suffix.
	if tail := EmitTail(recs, 1); len(tail) != 1 || tail[0].Payload.ID != 1 {
		t.Errorf("partial tail = %v, want [1]", tail)
	}
}

// writeGen writes a valid checkpoint and an (empty) WAL for gen.
func writeGen(t *testing.T, dir string, gen uint64) {
	t.Helper()
	c := sampleCheckpoint()
	c.Gen = gen
	if err := WriteCheckpoint(dir, c, nil); err != nil {
		t.Fatal(err)
	}
	log, err := CreateLog(dir, gen, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
}

// corruptCheckpoint replaces gen's checkpoint file with garbage that scanDir
// still lists but DecodeCheckpoint rejects — a partial write that got renamed,
// or bit rot.
func corruptCheckpoint(t *testing.T, dir string, gen uint64) {
	t.Helper()
	if err := os.WriteFile(CheckpointPath(dir, gen), []byte("lmck####garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPruneCorruptNewestKeepsLoadable is the retention edge that used to lose
// data: with the newest checkpoints corrupt, a keep-by-count prune would
// delete the older generation Load actually falls back to. The cut must clamp
// to the newest loadable generation, keeping it and its WAL tail.
func TestPruneCorruptNewestKeepsLoadable(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 4; gen++ {
		writeGen(t, dir, gen)
	}
	corruptCheckpoint(t, dir, 3)
	corruptCheckpoint(t, dir, 4)
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	wals, ckpts, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Gen 2 is the newest loadable: it and everything newer survive; only
	// gen 1 (strictly older than the loadable fallback) is pruned.
	if !reflect.DeepEqual(ckpts, []uint64{2, 3, 4}) {
		t.Errorf("checkpoints after prune: %v, want [2 3 4]", ckpts)
	}
	if !reflect.DeepEqual(wals, []uint64{2, 3, 4}) {
		t.Errorf("wals after prune: %v, want [2 3 4]", wals)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint == nil || st.Checkpoint.Gen != 2 {
		t.Fatalf("recovery after prune lost its fallback: %+v", st.Checkpoint)
	}
}

// TestPruneNothingLoadableDeletesNothing: when every checkpoint is corrupt,
// pruning must be a no-op — deleting any of them cannot help and discarding
// WAL generations would destroy the only recoverable history.
func TestPruneNothingLoadableDeletesNothing(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 3; gen++ {
		writeGen(t, dir, gen)
		corruptCheckpoint(t, dir, gen)
	}
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	wals, ckpts, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ckpts, []uint64{1, 2, 3}) {
		t.Errorf("checkpoints after prune: %v, want all retained", ckpts)
	}
	if !reflect.DeepEqual(wals, []uint64{1, 2, 3}) {
		t.Errorf("wals after prune: %v, want all retained", wals)
	}
}

// TestPruneHealthyNewestStillPrunes guards against the clamp overcorrecting:
// with every checkpoint valid, retention is exactly keep-by-count.
func TestPruneHealthyNewestStillPrunes(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 4; gen++ {
		writeGen(t, dir, gen)
	}
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	wals, ckpts, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ckpts, []uint64{4}) {
		t.Errorf("checkpoints after prune: %v, want [4]", ckpts)
	}
	if !reflect.DeepEqual(wals, []uint64{4}) {
		t.Errorf("wals after prune: %v, want [4]", wals)
	}
}

// TestPruneIgnoresInFlightCommit races Prune against a checkpoint commit:
// a generation still mid-write lives under a .tmp sibling, which Prune must
// neither count as a retained generation nor delete. After the commit's
// rename, the generation loads normally.
func TestPruneIgnoresInFlightCommit(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 2; gen++ {
		writeGen(t, dir, gen)
	}
	// Simulate WriteCheckpoint mid-commit: the encoded image sits under the
	// .tmp name, the rename has not happened yet.
	inflight := sampleCheckpoint()
	inflight.Gen = 3
	tmp := CheckpointPath(dir, 3) + ".tmp"
	if err := os.WriteFile(tmp, encodeCheckpoint(inflight), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("in-flight checkpoint deleted by prune: %v", err)
	}
	_, ckpts, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The tmp is invisible: retention counted only the committed gens.
	if !reflect.DeepEqual(ckpts, []uint64{2}) {
		t.Errorf("checkpoints after prune: %v, want [2]", ckpts)
	}
	// The commit completes; the generation must load as the newest.
	if err := os.Rename(tmp, CheckpointPath(dir, 3)); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint == nil || st.Checkpoint.Gen != 3 {
		t.Fatalf("committed in-flight generation did not load: %+v", st.Checkpoint)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-000003.lmck")); err != nil {
		t.Fatal(err)
	}
}
