package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lmerge/internal/core"
	"lmerge/internal/temporal"
)

func sampleRunMeta() RunMeta {
	return RunMeta{Clock: 40, Members: []int{1, 3, 7}, Frames: 2, MinVs: 5, MaxVs: 30}
}

func samplePayload() []byte {
	return core.AppendStream(nil, temporal.Stream{
		temporal.Insert(temporal.Payload{ID: 1, Data: "a"}, 5, 20),
		temporal.Insert(temporal.Payload{ID: 2, Data: "bb"}, 30, temporal.Infinity),
	})
}

func TestRunRoundTrip(t *testing.T) {
	want := sampleRunMeta()
	payload := samplePayload()
	got, p, err := DecodeRun(EncodeRun(want, payload))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("meta: got %+v want %+v", got, want)
	}
	s, err := core.DecodeStream(p)
	if err != nil || len(s) != 2 {
		t.Errorf("payload: %d elements err=%v", len(s), err)
	}
}

func TestRunDecodeCorruption(t *testing.T) {
	data := EncodeRun(sampleRunMeta(), samplePayload())
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := DecodeRun(data[:cut]); !errors.Is(err, ErrRecordCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrRecordCorrupt", cut, err)
		}
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= '#'
		if _, _, err := DecodeRun(mut); !errors.Is(err, ErrRecordCorrupt) {
			t.Fatalf("corrupt byte %d: err = %v, want ErrRecordCorrupt", off, err)
		}
	}
}

func TestRunFileWriteRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run-00000001.lmrun")
	want := sampleRunMeta()
	if err := WriteRunFile(path, want, samplePayload()); err != nil {
		t.Fatal(err)
	}
	got, p, err := ReadRunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) || len(p) == 0 {
		t.Errorf("read back: %+v payload=%d", got, len(p))
	}
	// No .tmp residue after commit.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("tmp file left behind: %v", err)
	}
	if _, _, err := ReadRunFile(filepath.Join(dir, "missing.lmrun")); err == nil {
		t.Error("missing file: want error")
	}
}
