package durable

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode fuzzes the WAL record decoder with arbitrary byte images:
// framing (length prefix, CRC), payload structure, and the checksum
// truncation scan. Invariants:
//
//   - DecodeAll never panics and never claims more valid bytes than it was
//     given.
//   - The valid prefix re-decodes to the same records (decode is a function
//     of the bytes, not of scan state).
//   - Every decoded record re-encodes to a frame the decoder accepts
//     (canonical round-trip), and re-encoding the whole valid prefix
//     reproduces it byte-for-byte.
//   - Bytes past the valid prefix are torn/corrupt: decoding from there
//     fails, which is exactly what checksum truncation discards.
func FuzzWALDecode(f *testing.F) {
	// Seeds: a healthy multi-record image, a torn tail, and '#'-corrupted
	// variants styled after the chaos connection corpus.
	healthy := encodeAll(sampleRecords())
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])
	for _, off := range []int{0, 4, 8, len(healthy) / 2, len(healthy) - 1} {
		mut := append([]byte(nil), healthy...)
		mut[off] ^= '#'
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length claim
	f.Add(bytes.Repeat([]byte{'#'}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := DecodeAll(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of range [0,%d]", valid, len(data))
		}
		again, validAgain := DecodeAll(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("re-decode of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), validAgain, len(recs), valid)
		}
		var re []byte
		for i, r := range recs {
			if !recordsEqual(again[i], r) {
				t.Fatalf("record %d differs on re-decode: %+v vs %+v", i, again[i], r)
			}
			re = AppendRecord(re, r)
			if _, _, err := DecodeRecord(re[len(re)-recLen(r):]); err != nil {
				t.Fatalf("re-encoded record %d rejected: %v", i, err)
			}
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encode of valid prefix differs: %x vs %x", re, data[:valid])
		}
		if valid < len(data) {
			if _, _, err := DecodeRecord(data[valid:]); err == nil {
				t.Fatalf("bytes past valid prefix decoded cleanly")
			}
		}
	})
}

// recLen is the framed length of one record (test helper).
func recLen(r Record) int {
	return len(AppendRecord(nil, r))
}

// FuzzRunDecode fuzzes the spill-run decoder with arbitrary byte images.
// Invariants:
//
//   - DecodeRun never panics.
//   - Every failure is ErrRecordCorrupt (callers gate GC/replay on that).
//   - A successful decode re-encodes to an image that decodes to the same
//     header and payload (the codec is self-consistent even when the fuzzed
//     input used non-minimal varints).
func FuzzRunDecode(f *testing.F) {
	healthy := EncodeRun(sampleRunMeta(), samplePayload())
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3]) // torn tail
	for _, off := range []int{0, 4, 8, len(healthy) / 2, len(healthy) - 1} {
		mut := append([]byte(nil), healthy...)
		mut[off] ^= '#'
		f.Add(mut)
	}
	f.Add(EncodeRun(RunMeta{}, nil)) // empty run
	f.Add([]byte{})
	f.Add([]byte("lmrn"))
	f.Add(bytes.Repeat([]byte{'#'}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, payload, err := DecodeRun(data)
		if err != nil {
			if !errors.Is(err, ErrRecordCorrupt) {
				t.Fatalf("decode error not ErrRecordCorrupt: %v", err)
			}
			return
		}
		re := EncodeRun(m, payload)
		m2, p2, err := DecodeRun(re)
		if err != nil {
			t.Fatalf("re-encoded run rejected: %v", err)
		}
		if m2.Clock != m.Clock || m2.MinVs != m.MinVs || m2.MaxVs != m.MaxVs || m2.Frames != m.Frames {
			t.Fatalf("header differs on round-trip: %+v vs %+v", m2, m)
		}
		if len(m2.Members) != len(m.Members) {
			t.Fatalf("member count differs: %d vs %d", len(m2.Members), len(m.Members))
		}
		for i := range m.Members {
			if m2.Members[i] != m.Members[i] {
				t.Fatalf("member %d differs: %d vs %d", i, m2.Members[i], m.Members[i])
			}
		}
		if !bytes.Equal(p2, payload) {
			t.Fatalf("payload differs on round-trip")
		}
	})
}
