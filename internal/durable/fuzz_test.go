package durable

import (
	"bytes"
	"testing"
)

// FuzzWALDecode fuzzes the WAL record decoder with arbitrary byte images:
// framing (length prefix, CRC), payload structure, and the checksum
// truncation scan. Invariants:
//
//   - DecodeAll never panics and never claims more valid bytes than it was
//     given.
//   - The valid prefix re-decodes to the same records (decode is a function
//     of the bytes, not of scan state).
//   - Every decoded record re-encodes to a frame the decoder accepts
//     (canonical round-trip), and re-encoding the whole valid prefix
//     reproduces it byte-for-byte.
//   - Bytes past the valid prefix are torn/corrupt: decoding from there
//     fails, which is exactly what checksum truncation discards.
func FuzzWALDecode(f *testing.F) {
	// Seeds: a healthy multi-record image, a torn tail, and '#'-corrupted
	// variants styled after the chaos connection corpus.
	healthy := encodeAll(sampleRecords())
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])
	for _, off := range []int{0, 4, 8, len(healthy) / 2, len(healthy) - 1} {
		mut := append([]byte(nil), healthy...)
		mut[off] ^= '#'
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length claim
	f.Add(bytes.Repeat([]byte{'#'}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := DecodeAll(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of range [0,%d]", valid, len(data))
		}
		again, validAgain := DecodeAll(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("re-decode of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), validAgain, len(recs), valid)
		}
		var re []byte
		for i, r := range recs {
			if !recordsEqual(again[i], r) {
				t.Fatalf("record %d differs on re-decode: %+v vs %+v", i, again[i], r)
			}
			re = AppendRecord(re, r)
			if _, _, err := DecodeRecord(re[len(re)-recLen(r):]); err != nil {
				t.Fatalf("re-encoded record %d rejected: %v", i, err)
			}
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encode of valid prefix differs: %x vs %x", re, data[:valid])
		}
		if valid < len(data) {
			if _, _, err := DecodeRecord(data[valid:]); err == nil {
				t.Fatalf("bytes past valid prefix decoded cleanly")
			}
		}
	})
}

// recLen is the framed length of one record (test helper).
func recLen(r Record) int {
	return len(AppendRecord(nil, r))
}
