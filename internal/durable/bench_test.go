package durable

import (
	"testing"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// benchElement is a representative merged-output emission: a 12-byte payload
// insert, the dominant record shape on the hot WAL path.
var benchElement = temporal.Insert(temporal.Payload{ID: 7, Data: "bench-payload"}, 100, 160)

func benchAppend(b *testing.B, fsync bool) {
	dir := b.TempDir()
	log, err := CreateLog(dir, 1, fsync, &obs.Durability{})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	els := [1]temporal.Element{benchElement}
	r := Record{Kind: RecEmit, Els: els[:]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq = uint64(i)
		if err := log.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend is the per-emission durability overhead with the OS page
// cache absorbing writes (the default -data-dir mode).
func BenchmarkWALAppend(b *testing.B) { benchAppend(b, false) }

// BenchmarkWALAppendFsync is the per-emission overhead with -fsync: one
// fdatasync-equivalent per record, the power-loss-safe mode.
func BenchmarkWALAppendFsync(b *testing.B) { benchAppend(b, true) }

// BenchmarkCheckpointWrite measures one full checkpoint commit (encode,
// write, fsync, atomic rename) at a moderate state size: 1000 backlog
// elements and a 500-event snapshot.
func BenchmarkCheckpointWrite(b *testing.B) {
	dir := b.TempDir()
	c := &Checkpoint{Stable: 100}
	var snap temporal.Stream
	for i := 0; i < 500; i++ {
		snap = append(snap, temporal.Insert(temporal.Payload{ID: int64(i), Data: "snapshot-event"}, temporal.Time(100+i), temporal.Time(200+i)))
	}
	c.Snapshots = []temporal.Stream{snap}
	for i := 0; i < 1000; i++ {
		c.Backlog = append(c.Backlog, temporal.Insert(temporal.Payload{ID: int64(i), Data: "backlog-event"}, temporal.Time(i), temporal.Time(i+60)))
	}
	tel := &obs.Durability{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Gen = uint64(i + 1)
		if err := WriteCheckpoint(dir, c, tel); err != nil {
			b.Fatal(err)
		}
	}
}
