// Package durable is the persistence tier of the merge service: a
// write-ahead log of publisher traffic and merged-output emissions, plus
// periodic checkpoints of the merger's Snapshot() stream, from which a
// restarted lmserved jumpstarts (the paper's checkpoint/catch-up machinery of
// Sec. II-4/5, made crash-durable).
//
// Layout of a data directory:
//
//	wal-<gen>.lmwal    append-only record log for generation <gen>
//	ckpt-<gen>.lmck    checkpoint opening generation <gen> (atomic rename)
//
// A checkpoint with generation g captures everything up to an exact cut (the
// server quiesces ingestion around it), so recovery is: load the newest valid
// checkpoint, then replay every WAL generation >= its own, tolerating a torn
// final record by checksum truncation. Each WAL generation is self-contained:
// it re-logs an attach record for every publisher live at rotation, so replay
// never needs an older generation for attach context. Replaying a generation
// that a checkpoint already covers is safe — the merge absorbs re-delivered
// elements as duplicates (the paper's re-attach semantics), which is the same
// idempotency the resilient clients lean on.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"lmerge/internal/core"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// RecordKind discriminates WAL records.
type RecordKind uint8

const (
	// RecAttach registers a publisher stream: ID and its join guarantee.
	// Rotation re-logs one for every live publisher, so each generation
	// replays standalone.
	RecAttach RecordKind = iota + 1
	// RecBatch is one publisher batch, logged before the merge processes it
	// (and before the end-of-stream ACK can be sent).
	RecBatch
	// RecDetach is a clean publisher detach.
	RecDetach
	// RecEmit is a run of merged-output emissions, logged before they are
	// delivered to any subscriber; Seq is the backlog index of the first
	// element, so recovery can splice the tail onto a checkpointed backlog
	// without double-counting.
	RecEmit
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case RecAttach:
		return "attach"
	case RecBatch:
		return "batch"
	case RecDetach:
		return "detach"
	case RecEmit:
		return "emit"
	}
	return fmt.Sprintf("record(%d)", uint8(k))
}

// Record is one decoded WAL record.
type Record struct {
	Kind     RecordKind
	ID       int64         // RecAttach/RecBatch/RecDetach: stream id
	JoinTime temporal.Time // RecAttach: join guarantee
	Seq      uint64        // RecEmit: backlog index of Els[0]
	Els      temporal.Stream
}

// Record framing on disk:
//
//	length   uint32 LE — byte length of payload
//	crc      uint32 LE — IEEE CRC-32 of payload
//	payload  encoded record body (kind uvarint, header varints, element run)
//
// A record whose length field runs past the end of the file, or whose CRC
// does not match, marks the torn tail: everything before it is the valid
// prefix, everything from it on is discarded (checksum truncation).
const recordHeader = 8

// maxRecordLen caps a record's claimed payload length. A torn length field
// can claim up to 4 GiB; refusing anything implausibly large keeps the
// truncation scan from attempting giant allocations on garbage.
const maxRecordLen = 1 << 30

// ErrRecordTruncated reports a record cut short by a crash (torn tail).
var ErrRecordTruncated = errors.New("durable: truncated record")

// ErrRecordCorrupt reports a record whose checksum or structure is invalid.
var ErrRecordCorrupt = errors.New("durable: corrupt record")

// AppendRecord appends the framed encoding of r to buf.
func AppendRecord(buf []byte, r Record) []byte {
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholders
	buf = binary.AppendUvarint(buf, uint64(r.Kind))
	switch r.Kind {
	case RecAttach:
		buf = binary.AppendVarint(buf, r.ID)
		buf = binary.AppendVarint(buf, int64(r.JoinTime))
	case RecBatch:
		buf = binary.AppendVarint(buf, r.ID)
		buf = core.AppendStream(buf, r.Els)
	case RecDetach:
		buf = binary.AppendVarint(buf, r.ID)
	case RecEmit:
		buf = binary.AppendUvarint(buf, r.Seq)
		buf = core.AppendStream(buf, r.Els)
	}
	payload := buf[base+recordHeader:]
	binary.LittleEndian.PutUint32(buf[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[base+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// DecodeRecord decodes one framed record from the head of data, returning the
// record and the total bytes consumed (header + payload). It returns
// ErrRecordTruncated when data ends before the record does and
// ErrRecordCorrupt when the checksum or the payload structure is invalid —
// the two conditions checksum truncation treats identically.
func DecodeRecord(data []byte) (Record, int, error) {
	var r Record
	if len(data) < recordHeader {
		return r, 0, ErrRecordTruncated
	}
	n := binary.LittleEndian.Uint32(data)
	if n > maxRecordLen {
		return r, 0, fmt.Errorf("%w: record length %d", ErrRecordCorrupt, n)
	}
	if uint32(len(data)-recordHeader) < n {
		return r, 0, ErrRecordTruncated
	}
	payload := data[recordHeader : recordHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:]) {
		return r, 0, fmt.Errorf("%w: checksum mismatch", ErrRecordCorrupt)
	}
	if err := decodePayload(payload, &r); err != nil {
		return r, 0, err
	}
	return r, recordHeader + int(n), nil
}

func decodePayload(payload []byte, r *Record) error {
	k, off := binary.Uvarint(payload)
	if off <= 0 {
		return fmt.Errorf("%w: bad kind varint", ErrRecordCorrupt)
	}
	r.Kind = RecordKind(k)
	fail := func(what string) error {
		return fmt.Errorf("%w: bad %s", ErrRecordCorrupt, what)
	}
	readVarint := func(what string) (int64, error) {
		v, n := binary.Varint(payload[off:])
		if n <= 0 {
			return 0, fail(what)
		}
		off += n
		return v, nil
	}
	var err error
	switch r.Kind {
	case RecAttach:
		if r.ID, err = readVarint("attach id"); err != nil {
			return err
		}
		jt, err := readVarint("attach join time")
		if err != nil {
			return err
		}
		r.JoinTime = temporal.Time(jt)
		if off != len(payload) {
			return fail("attach trailer")
		}
	case RecDetach:
		if r.ID, err = readVarint("detach id"); err != nil {
			return err
		}
		if off != len(payload) {
			return fail("detach trailer")
		}
	case RecBatch:
		if r.ID, err = readVarint("batch id"); err != nil {
			return err
		}
		if r.Els, err = core.DecodeStream(payload[off:]); err != nil {
			return fmt.Errorf("%w: batch elements: %v", ErrRecordCorrupt, err)
		}
	case RecEmit:
		seq, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return fail("emit seq")
		}
		off += n
		r.Seq = seq
		if r.Els, err = core.DecodeStream(payload[off:]); err != nil {
			return fmt.Errorf("%w: emit elements: %v", ErrRecordCorrupt, err)
		}
	default:
		return fmt.Errorf("%w: record kind %d", ErrRecordCorrupt, k)
	}
	return nil
}

// DecodeAll decodes a WAL image front to back, stopping at the first torn or
// corrupt record (checksum truncation). It returns the valid record prefix
// and the number of bytes it covers; the remainder of data is the discarded
// tail. It never returns an error — a WAL that decodes to zero records is
// simply empty.
func DecodeAll(data []byte) (recs []Record, valid int) {
	for valid < len(data) {
		r, n, err := DecodeRecord(data[valid:])
		if err != nil {
			return recs, valid
		}
		recs = append(recs, r)
		valid += n
	}
	return recs, valid
}

// Log is one open WAL generation: an append-only file of framed records.
// Appends are serialised internally, so publisher handlers and the merge
// emission path can log concurrently.
type Log struct {
	mu    sync.Mutex
	f     *os.File
	buf   []byte // reusable encode scratch
	fsync bool
	path  string
	tel   *obs.Durability
}

// CreateLog creates (truncating) the WAL file for generation gen in dir.
// When fsync is set, every append is followed by an fsync before returning —
// the power-failure-durable mode; without it appends are plain writes, which
// still survive a process kill (the page cache is not lost with the process).
func CreateLog(dir string, gen uint64, fsync bool, tel *obs.Durability) (*Log, error) {
	path := WALPath(dir, gen)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, fsync: fsync, path: path, tel: tel}, nil
}

// Path returns the log file's path.
func (l *Log) Path() string { return l.path }

// Append frames, writes, and (in fsync mode) syncs one record.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = AppendRecord(l.buf[:0], r)
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.tel.WALAppended(int64(len(l.buf)))
	if l.fsync {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.tel.Fsynced()
	}
	return nil
}

// Close syncs (always — a closing log should be complete on disk) and closes
// the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ReadLog reads and decodes a WAL file with checksum truncation. A missing
// file is an empty log. torn reports how many tail bytes were discarded.
func ReadLog(path string) (recs []Record, torn int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	recs, valid := DecodeAll(data)
	return recs, len(data) - valid, nil
}

// WALPath returns dir's WAL file path for generation gen.
func WALPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.lmwal", gen))
}

// CheckpointPath returns dir's checkpoint file path for generation gen.
func CheckpointPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%06d.lmck", gen))
}

// scanDir lists the generations present in dir, sorted ascending.
func scanDir(dir string) (wals, ckpts []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	parse := func(name, prefix, suffix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			return 0, false
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		return g, err == nil
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if g, ok := parse(ent.Name(), "wal-", ".lmwal"); ok {
			wals = append(wals, g)
		} else if g, ok := parse(ent.Name(), "ckpt-", ".lmck"); ok {
			ckpts = append(ckpts, g)
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return wals, ckpts, nil
}
