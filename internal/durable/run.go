package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"lmerge/internal/temporal"
)

// Run files are the on-disk unit of the out-of-core spill layer
// (internal/spill): one sorted batch of frozen merge state, carrying the
// same serialized stream form the checkpoints already write (one insert per
// spilled occurrence, encoded with core.AppendStream) under the same
// magic + version + CRC-framed-body discipline as checkpoint images.
//
// Unlike checkpoints, runs are crash-DISPOSABLE: every spilled frame is
// still captured by Snapshot (the spill layer replays runs into snapshots),
// so checkpoints subsume run content and recovery starts from an empty
// spill directory. Run files are therefore written without fsync; the CRC
// frame exists to catch torn or corrupted files within a process lifetime,
// not to survive one.
//
// Layout:
//
//	magic   "lmrn"
//	version uvarint
//	bodyLen uvarint
//	crc32   uint32 LE (IEEE, over body)
//	body:
//	  clock    varint   donor output stable point at spill time
//	  minVs    varint   smallest frame start in the payload
//	  maxVs    varint   largest frame start in the payload
//	  frames   uvarint  key-group count
//	  members  uvarint count, then varint per sorted member stream id
//	  payload  uvarint length, then core.AppendStream bytes
var runMagic = [4]byte{'l', 'm', 'r', 'n'}

const runVersion = 1

// RunMeta is the header of one spill run.
type RunMeta struct {
	// Clock is the donor merger's output stable point at spill time.
	Clock temporal.Time
	// Members is the sorted attached-stream set vouching for every frame.
	Members []int
	// Frames is the number of (Vs, Payload) key groups in the payload.
	Frames int
	// MinVs and MaxVs bound the frame start times, so readers can skip
	// whole runs when probing for a key.
	MinVs, MaxVs temporal.Time
}

// EncodeRun serialises a run header plus its opaque stream payload.
func EncodeRun(m RunMeta, payload []byte) []byte {
	buf := append([]byte(nil), runMagic[:]...)
	buf = binary.AppendUvarint(buf, runVersion)
	body := binary.AppendVarint(nil, int64(m.Clock))
	body = binary.AppendVarint(body, int64(m.MinVs))
	body = binary.AppendVarint(body, int64(m.MaxVs))
	body = binary.AppendUvarint(body, uint64(m.Frames))
	body = binary.AppendUvarint(body, uint64(len(m.Members)))
	for _, s := range m.Members {
		body = binary.AppendVarint(body, int64(s))
	}
	body = binary.AppendUvarint(body, uint64(len(payload)))
	body = append(body, payload...)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

// maxRunMembers bounds the decoded member count: spill member sets are
// attached-stream sets, always tiny, so anything huge is corruption and
// must not turn into a giant allocation.
const maxRunMembers = 1 << 16

// DecodeRun parses a run image, validating magic, version, and body
// checksum. The payload is returned as an aliased sub-slice of data; the
// caller decodes it with core.DecodeStream.
func DecodeRun(data []byte) (RunMeta, []byte, error) {
	var m RunMeta
	fail := func(what string) (RunMeta, []byte, error) {
		return RunMeta{}, nil, fmt.Errorf("%w: run %s", ErrRecordCorrupt, what)
	}
	if len(data) < len(runMagic) || string(data[:4]) != string(runMagic[:]) {
		return fail("magic")
	}
	off := len(runMagic)
	ver, n := binary.Uvarint(data[off:])
	if n <= 0 || ver != runVersion {
		return fail("version")
	}
	off += n
	blen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return fail("body length")
	}
	off += n
	if off+4 > len(data) {
		return fail("checksum frame")
	}
	crc := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if uint64(len(data)-off) < blen {
		return fail("body truncated")
	}
	body := data[off : off+int(blen)]
	if crc32.ChecksumIEEE(body) != crc {
		return fail("checksum")
	}
	p := 0
	sv := func() (int64, bool) {
		v, n := binary.Varint(body[p:])
		if n <= 0 {
			return 0, false
		}
		p += n
		return v, true
	}
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(body[p:])
		if n <= 0 {
			return 0, false
		}
		p += n
		return v, true
	}
	clock, ok1 := sv()
	minVs, ok2 := sv()
	maxVs, ok3 := sv()
	frames, ok4 := uv()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fail("header")
	}
	nm, ok := uv()
	if !ok || nm > maxRunMembers {
		return fail("member count")
	}
	m.Clock, m.MinVs, m.MaxVs = temporal.Time(clock), temporal.Time(minVs), temporal.Time(maxVs)
	m.Frames = int(frames)
	m.Members = make([]int, 0, nm)
	for i := uint64(0); i < nm; i++ {
		s, ok := sv()
		if !ok {
			return fail("member")
		}
		m.Members = append(m.Members, int(s))
	}
	plen, ok := uv()
	if !ok || uint64(len(body)-p) != plen {
		return fail("payload length")
	}
	return m, body[p:], nil
}

// WriteRunFile writes an encoded run to path via a .tmp sibling and rename,
// so a reader never sees a half-written run under the real name. No fsync:
// runs are crash-disposable (see package comment above).
func WriteRunFile(path string, m RunMeta, payload []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, EncodeRun(m, payload), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadRunFile reads and decodes the run at path.
func ReadRunFile(path string) (RunMeta, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RunMeta{}, nil, err
	}
	return DecodeRun(data)
}
