package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: RecAttach, ID: 3, JoinTime: temporal.MinTime},
		{Kind: RecBatch, ID: 3, Els: temporal.Stream{
			temporal.Insert(temporal.Payload{ID: 1, Data: "a"}, 0, 10),
			temporal.Adjust(temporal.Payload{ID: 1, Data: "a"}, 0, 10, 7),
			temporal.Stable(5),
		}},
		{Kind: RecEmit, Seq: 42, Els: temporal.Stream{
			temporal.Insert(temporal.Payload{ID: 2, Data: ""}, 1, temporal.Infinity),
		}},
		{Kind: RecDetach, ID: 3},
		{Kind: RecBatch, ID: 9, Els: nil}, // empty batch stays decodable
	}
}

func encodeAll(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

func recordsEqual(a, b Record) bool {
	if a.Kind != b.Kind || a.ID != b.ID || a.JoinTime != b.JoinTime || a.Seq != b.Seq {
		return false
	}
	if len(a.Els) != len(b.Els) {
		return false
	}
	for i := range a.Els {
		if a.Els[i] != b.Els[i] {
			return false
		}
	}
	return true
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecords()
	data := encodeAll(want)
	got, valid := DecodeAll(data)
	if valid != len(data) {
		t.Fatalf("valid = %d, want %d (no torn tail)", valid, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestChecksumTruncationTornTail(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(recs)
	// Every proper prefix cut inside the last record must decode to exactly
	// the earlier records, discarding the torn tail.
	prefix := encodeAll(recs[:len(recs)-1])
	for cut := len(prefix) + 1; cut < len(data); cut++ {
		got, valid := DecodeAll(data[:cut])
		if len(got) != len(recs)-1 {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), len(recs)-1)
		}
		if valid != len(prefix) {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, len(prefix))
		}
	}
}

func TestChecksumTruncationCorruptTail(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(recs)
	prefix := len(encodeAll(recs[:len(recs)-1]))
	// Flip one byte inside the final record (chaos '#'-style corruption):
	// everything before it must survive, the tail must be discarded.
	for off := prefix; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= '#'
		got, valid := DecodeAll(mut)
		if len(got) != len(recs)-1 || valid != prefix {
			t.Fatalf("corrupt byte %d: decoded %d records valid %d, want %d/%d",
				off, len(got), valid, len(recs)-1, prefix)
		}
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	if _, _, err := DecodeRecord(nil); err != ErrRecordTruncated {
		t.Errorf("empty: err = %v, want ErrRecordTruncated", err)
	}
	// Implausible length field (torn length bytes) is corrupt, not a huge
	// allocation attempt.
	big := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, err := DecodeRecord(big); err == nil {
		t.Error("oversized length: want error")
	}
}

func TestLogAppendReadBack(t *testing.T) {
	dir := t.TempDir()
	tel := &obs.Durability{}
	log, err := CreateLog(dir, 1, false, tel)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := ReadLog(WALPath(dir, 1))
	if err != nil || torn != 0 {
		t.Fatalf("ReadLog: torn=%d err=%v", torn, err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	snap := tel.Snapshot()
	if snap.WALRecords != int64(len(want)) || snap.WALBytes == 0 {
		t.Errorf("telemetry: %+v", snap)
	}
	// Missing file reads as an empty log.
	if recs, torn, err := ReadLog(WALPath(dir, 99)); err != nil || len(recs) != 0 || torn != 0 {
		t.Errorf("missing log: recs=%d torn=%d err=%v", len(recs), torn, err)
	}
}

func TestLogFsyncMode(t *testing.T) {
	dir := t.TempDir()
	tel := &obs.Durability{}
	log, err := CreateLog(dir, 1, true, tel)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()
	if got := tel.Snapshot().Fsyncs; got != int64(len(sampleRecords())) {
		t.Errorf("fsyncs = %d, want %d", got, len(sampleRecords()))
	}
}

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Gen:    7,
		Stable: 123,
		Backlog: temporal.Stream{
			temporal.Insert(temporal.Payload{ID: 4, Data: "x"}, 0, temporal.Infinity),
			temporal.Stable(123),
		},
		Snapshots: []temporal.Stream{
			{temporal.Insert(temporal.Payload{ID: 4, Data: "x"}, 0, temporal.Infinity), temporal.Stable(123)},
			nil, // an idle partition snapshots empty
		},
		RouteEpoch: 9,
		RouteOwner: []int32{0, 1, 0, 1},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleCheckpoint()
	if err := WriteCheckpoint(dir, want, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(CheckpointPath(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != want.Gen || got.Stable != want.Stable || got.RouteEpoch != want.RouteEpoch {
		t.Errorf("header: got %+v", got)
	}
	if !reflect.DeepEqual(got.RouteOwner, want.RouteOwner) {
		t.Errorf("route owner: got %v want %v", got.RouteOwner, want.RouteOwner)
	}
	if len(got.Snapshots) != 2 || len(got.Snapshots[0]) != 2 || len(got.Snapshots[1]) != 0 {
		t.Errorf("snapshots: got %v", got.Snapshots)
	}
	if len(got.Backlog) != len(want.Backlog) {
		t.Errorf("backlog: got %v", got.Backlog)
	}
	// No .tmp residue after a successful commit.
	if _, err := os.Stat(CheckpointPath(dir, 7) + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("tmp file left behind: %v", err)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, sampleCheckpoint(), nil); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(CheckpointPath(dir, 7))
	for _, cut := range []int{0, 3, len(data) / 2, len(data) - 1} {
		if _, err := DecodeCheckpoint(data[:cut]); err == nil {
			t.Errorf("truncated at %d: want error", cut)
		}
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] ^= '#'
	if _, err := DecodeCheckpoint(mut); err == nil {
		t.Error("corrupt body: want error")
	}
}

func TestLoadFallsBackPastInvalidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	good := sampleCheckpoint()
	good.Gen = 2
	if err := WriteCheckpoint(dir, good, nil); err != nil {
		t.Fatal(err)
	}
	// A newer checkpoint that is garbage on disk (partial write that still
	// got renamed): Load must fall back to generation 2.
	if err := os.WriteFile(CheckpointPath(dir, 3), []byte("lmck####garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// WAL generations 2 and 3 both replay (>= chosen checkpoint's gen).
	for _, gen := range []uint64{1, 2, 3} {
		log, err := CreateLog(dir, gen, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		log.Append(Record{Kind: RecAttach, ID: int64(gen), JoinTime: 0})
		log.Close()
	}
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint == nil || st.Checkpoint.Gen != 2 {
		t.Fatalf("checkpoint: %+v", st.Checkpoint)
	}
	if len(st.Records) != 2 {
		t.Fatalf("records: %d, want 2 (gens 2,3)", len(st.Records))
	}
	if st.NextGen != 4 {
		t.Errorf("NextGen = %d, want 4", st.NextGen)
	}
	// A .tmp checkpoint never qualifies as state.
	os.WriteFile(filepath.Join(dir, "ckpt-000009.lmck.tmp"), []byte("half"), 0o644)
	st2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Checkpoint.Gen != 2 || st2.NextGen != 4 {
		t.Errorf("tmp influenced load: ckpt=%d next=%d", st2.Checkpoint.Gen, st2.NextGen)
	}
}

func TestLoadEmptyDir(t *testing.T) {
	st, err := Load(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint != nil || len(st.Records) != 0 || st.NextGen != 1 {
		t.Errorf("empty dir: %+v", st)
	}
}

func TestLoadCountsTornBytes(t *testing.T) {
	dir := t.TempDir()
	log, _ := CreateLog(dir, 1, false, nil)
	for _, r := range sampleRecords() {
		log.Append(r)
	}
	log.Close()
	path := WALPath(dir, 1)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-3], 0o644) // tear the final record
	st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornBytes == 0 {
		t.Error("torn bytes not counted")
	}
	if len(st.Records) != len(sampleRecords())-1 {
		t.Errorf("records = %d, want %d", len(st.Records), len(sampleRecords())-1)
	}
}

func TestPruneRetention(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 4; gen++ {
		c := sampleCheckpoint()
		c.Gen = gen
		if err := WriteCheckpoint(dir, c, nil); err != nil {
			t.Fatal(err)
		}
		log, _ := CreateLog(dir, gen, false, nil)
		log.Close()
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	wals, ckpts, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ckpts, []uint64{3, 4}) {
		t.Errorf("checkpoints after prune: %v", ckpts)
	}
	// WAL generations >= oldest retained checkpoint survive.
	if !reflect.DeepEqual(wals, []uint64{3, 4}) {
		t.Errorf("wals after prune: %v", wals)
	}
}

func TestEmitTailSplicing(t *testing.T) {
	el := func(id int64) temporal.Element {
		return temporal.Insert(temporal.Payload{ID: id}, 0, 1)
	}
	recs := []Record{
		{Kind: RecEmit, Seq: 0, Els: temporal.Stream{el(0), el(1)}},
		{Kind: RecAttach, ID: 1},
		{Kind: RecEmit, Seq: 2, Els: temporal.Stream{el(2), el(3), el(4)}},
		{Kind: RecEmit, Seq: 5, Els: temporal.Stream{el(5)}},
	}
	// From 3: skip record one entirely, take the uncovered suffix of the
	// overlap record, then everything after.
	got := EmitTail(recs, 3)
	if len(got) != 3 {
		t.Fatalf("tail length = %d, want 3", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].Payload.ID != want {
			t.Errorf("tail[%d].ID = %d, want %d", i, got[i].Payload.ID, want)
		}
	}
	if tail := EmitTail(recs, 0); len(tail) != 6 {
		t.Errorf("full tail = %d, want 6", len(tail))
	}
	if tail := EmitTail(recs, 99); len(tail) != 0 {
		t.Errorf("past-end tail = %d, want 0", len(tail))
	}
}
