package server

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

func testSpans(t *testing.T, n int) ([]wire.Span, *wire.BlockLog) {
	t.Helper()
	l := wire.NewBlockLog(nil)
	spans := make([]wire.Span, n)
	for i := range spans {
		spans[i] = l.Append(temporal.Insert(temporal.Payload{ID: int64(i), Data: "payload"}, temporal.Time(i), temporal.Time(i+5)))
	}
	return spans, l
}

// TestBlockQueueCreditSplitsAtFrames: pop returns only whole frames covered
// by the granted credit, the credit gauge never goes negative, and every
// queued byte is eventually delivered in order.
func TestBlockQueueCreditSplitsAtFrames(t *testing.T) {
	spans, l := testSpans(t, 20)
	defer l.Close()
	frameLen := spans[0].Len() // identical payloads → identical frame sizes
	q := newBlockQueue(0, nil)
	for _, sp := range spans {
		if !q.push(sp) {
			t.Fatal("push on open queue failed")
		}
	}
	total := 0
	for _, sp := range spans {
		total += sp.Len()
	}
	if q.pending() != total {
		t.Fatalf("pending = %d, want %d", q.pending(), total)
	}

	var delivered []byte
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			buf, wref, fin, frames, st := q.pop(time.Minute)
			if st != popData {
				return
			}
			if len(buf)%frameLen != 0 || frames != len(buf)/frameLen {
				mu.Lock()
				delivered = nil // poison: torn frame
				mu.Unlock()
				wref.Release()
				if fin != nil {
					fin.Release()
				}
				return
			}
			mu.Lock()
			delivered = append(delivered, buf...)
			mu.Unlock()
			wref.Release()
			if fin != nil {
				fin.Release()
			}
		}
	}()

	// Grant credit in odd chunks smaller and larger than a frame; the writer
	// must still deliver only whole frames and never drive credit negative.
	granted := 0
	rng := rand.New(rand.NewSource(1))
	for granted < total {
		n := 1 + rng.Intn(2*frameLen)
		if granted+n > total {
			n = total - granted
		}
		q.grant(int64(n))
		granted += n
		if c := q.creditNow(); c < 0 {
			t.Fatalf("credit went negative: %d", c)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := len(delivered)
		mu.Unlock()
		if got == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d bytes", got, total)
		}
		time.Sleep(time.Millisecond)
	}
	q.close()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if delivered == nil {
		t.Fatal("writer observed a torn frame")
	}
	// Byte-exact, in-order delivery of every span.
	off := 0
	for i, sp := range spans {
		if string(delivered[off:off+sp.Len()]) != string(sp.Bytes()) {
			t.Fatalf("span %d bytes diverged", i)
		}
		off += sp.Len()
	}
	if c := q.creditNow(); c != 0 {
		t.Fatalf("credit left over: %d", c)
	}
}

// TestBlockQueueCoalesce: contiguous spans of one block coalesce into one
// entry holding one reference; a gap (sealed block) starts a new entry.
func TestBlockQueueCoalesce(t *testing.T) {
	spans, l := testSpans(t, 8)
	defer l.Close()
	blk := spans[0].Blk
	before := blk.Refs()
	q := newBlockQueue(1<<20, nil)
	for _, sp := range spans {
		q.push(sp)
	}
	if got := blk.Refs(); got != before+1 {
		t.Fatalf("coalesced pushes took %d references, want 1", got-before)
	}
	total := 0
	for _, sp := range spans {
		total += sp.Len()
	}
	buf, wref, fin, frames, st := q.pop(time.Minute)
	if st != popData || len(buf) != total || frames != len(spans) {
		t.Fatalf("coalesced pop: %d bytes %d frames st=%v", len(buf), frames, st)
	}
	wref.Release()
	if fin == nil {
		t.Fatal("fully consumed entry did not hand back its reference")
	}
	fin.Release()
	if got := blk.Refs(); got != before {
		t.Fatalf("refs = %d after drain, want %d", got, before)
	}
	q.close()
}

// TestBlockQueueEviction: a credit-stalled queue evicts after the deadline,
// telemetry records the stall and nothing leaks.
func TestBlockQueueEviction(t *testing.T) {
	spans, l := testSpans(t, 1)
	defer l.Close()
	tel := &obs.Wire{}
	q := newBlockQueue(1, tel) // 1 byte: can never cover a frame
	blk := spans[0].Blk
	before := blk.Refs()
	q.push(spans[0])
	start := time.Now()
	_, _, _, _, st := q.pop(30 * time.Millisecond)
	if st != popEvicted {
		t.Fatalf("pop = %v, want popEvicted", st)
	}
	if since := time.Since(start); since < 25*time.Millisecond {
		t.Fatalf("evicted after %v, before the deadline", since)
	}
	if snap := tel.Snapshot(); snap.CreditStalls != 1 {
		t.Fatalf("credit stalls = %d, want 1", snap.CreditStalls)
	}
	if got := blk.Refs(); got != before {
		t.Fatalf("eviction leaked a reference: %d != %d", got, before)
	}
	// Queue is dead: pushes rejected, pop reports the eviction again.
	if q.push(spans[0]) {
		t.Fatal("push on evicted queue accepted")
	}
	if _, _, _, _, st := q.pop(time.Minute); st != popEvicted {
		t.Fatalf("second pop = %v", st)
	}
}

// TestBlockQueueReleaseOnceUnderRaces hammers one queue from a pusher, a
// granter, and a popper while closing it mid-flight, using unpooled blocks so
// reference counts stay observable. Every block must end at exactly zero
// references (the Release-twice panic guards the other direction) and credit
// must never go negative.
func TestBlockQueueReleaseOnceUnderRaces(t *testing.T) {
	for round := 0; round < 50; round++ {
		frame := wire.AppendData(nil, temporal.Insert(temporal.P(1), 0, 5))
		const perBlock = 4
		var blocks []*wire.Block
		var spans []wire.Span
		for b := 0; b < 8; b++ {
			var run []byte
			for f := 0; f < perBlock; f++ {
				run = append(run, frame...)
			}
			blk := wire.NewBlockFromBytes(run)
			blocks = append(blocks, blk)
			for f := 0; f < perBlock; f++ {
				spans = append(spans, wire.Span{Blk: blk, Start: f * len(frame), End: (f + 1) * len(frame), Elems: 1})
			}
		}
		q := newBlockQueue(0, nil)
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { // pusher
			defer wg.Done()
			for _, sp := range spans {
				if !q.push(sp) {
					return
				}
			}
		}()
		go func() { // granter, then closer
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(round)))
			budget := len(frame) * len(spans)
			for g := 0; g < budget/2; {
				n := 1 + rng.Intn(len(frame))
				q.grant(int64(n))
				g += n
			}
			// Close races the pusher and the popper mid-stream.
			q.close()
		}()
		go func() { // popper
			defer wg.Done()
			for {
				_, wref, fin, _, st := q.pop(time.Minute)
				if st != popData {
					return
				}
				if c := q.creditNow(); c < 0 {
					panic("credit negative")
				}
				wref.Release()
				if fin != nil {
					fin.Release()
				}
			}
		}()
		wg.Wait()
		// The creator's reference is still ours; after dropping it every block
		// must sit at exactly zero (queue entries and writer refs all released
		// exactly once — an over-release would have panicked already).
		for i, blk := range blocks {
			blk.Release()
			if got := blk.Refs(); got != 0 {
				t.Fatalf("round %d block %d: %d references leaked", round, i, got)
			}
		}
		if c := q.creditNow(); c < 0 {
			t.Fatalf("round %d: credit negative: %d", round, c)
		}
	}
}
