package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/partition"
	"lmerge/internal/temporal"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New("127.0.0.1:0", core.CaseR3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func serverScript(seed int64) *gen.Script {
	return gen.NewScript(gen.Config{
		Events: 200, Seed: seed, EventDuration: 60, MaxGap: 8,
		Revisions: 0.4, RemoveProb: 0.2, PayloadBytes: 12,
	})
}

// collect drains a subscriber until the merged stream reaches stable(∞) or
// the timeout hits.
func collect(t *testing.T, sub *Subscriber) temporal.Stream {
	t.Helper()
	var out temporal.Stream
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			e, ok := sub.Next()
			if !ok {
				return
			}
			out = append(out, e)
			if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for merged stream completion")
	}
	return out
}

func TestServerMergesTwoPublishers(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(1)
	want := sc.TDB()

	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Connect(s.Addr(), temporal.MinTime)
			if err != nil {
				t.Error(err)
				return
			}
			defer p.Close()
			stream := sc.Render(gen.RenderOptions{Seed: int64(10 + i), Disorder: 0.3, StableFreq: 0.05})
			if err := p.SendStream(stream); err != nil {
				t.Error(err)
			}
		}(i)
	}
	merged := collect(t, sub)
	wg.Wait()

	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("merged TDB differs:\n got %v\nwant %v", got, want)
	}
	if st := s.Stats(); st.ConsistencyWarnings != 0 {
		t.Fatalf("consistency warnings: %d", st.ConsistencyWarnings)
	}
}

func TestServerPublisherFailover(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(2)
	want := sc.TDB()

	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	full := sc.Render(gen.RenderOptions{Seed: 21, Disorder: 0.2, StableFreq: 0.05})
	partial := sc.Render(gen.RenderOptions{Seed: 22, Disorder: 0.2, StableFreq: 0.05})

	// Publisher A dies a third of the way through.
	pa, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range partial[:len(partial)/3] {
		if err := pa.Send(e); err != nil {
			t.Fatal(err)
		}
	}
	pa.Close() // abrupt failure: server detaches the stream

	// Publisher B carries the query to completion.
	pb, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	if err := pb.SendStream(full); err != nil {
		t.Fatal(err)
	}

	merged := collect(t, sub)
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("merged TDB differs after failover")
	}
}

func TestServerLateSubscriberGetsHistory(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(3)

	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	stream := sc.Render(gen.RenderOptions{Seed: 31, Disorder: 0.2, StableFreq: 0.05})
	if err := p.SendStream(stream); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has absorbed everything.
	deadline := time.Now().Add(5 * time.Second)
	for s.MaxStable() != temporal.Infinity {
		if time.Now().After(deadline) {
			t.Fatal("server did not reach stable(∞)")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A subscriber connecting after the fact still sees the whole merge.
	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	merged := collect(t, sub)
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("late subscriber saw a different TDB")
	}
}

func TestServerRejectsBadHello(t *testing.T) {
	if _, err := parseHello("HELLO NOPE"); err == nil {
		t.Error("unknown role accepted")
	}
	if _, err := parseHello("GARBAGE"); err == nil {
		t.Error("garbage hello accepted")
	}
	if _, err := parseHello("HELLO PUB abc"); err == nil {
		t.Error("bad join time accepted")
	}
	if h, err := parseHello("HELLO PUB 42"); err != nil || h.role != "PUB" || h.joinTime != 42 {
		t.Errorf("parseHello = %+v %v", h, err)
	}
	if h, err := parseHello("HELLO SUB"); err != nil || h.role != "SUB" {
		t.Errorf("parseHello SUB failed: %v", err)
	}
}

func TestServerPublisherCount(t *testing.T) {
	s := newTestServer(t)
	p1, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Publishers() != 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Publishers(); got != 2 {
		t.Fatalf("publishers = %d, want 2", got)
	}
	p1.Close()
	for s.Publishers() != 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Publishers(); got != 1 {
		t.Fatalf("publishers after close = %d, want 1", got)
	}
	p2.Close()
}

func TestServerNetworkFeedback(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{Case: core.CaseR3, FeedbackLag: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fast, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	// The fast replica races ahead and advances the merged stable point;
	// the slow replica must receive the fast-forward watermark.
	if err := fast.SendStream(temporal.Stream{
		temporal.Insert(temporal.P(1), 1, 10),
		temporal.Stable(500),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for slow.FastForward() != 500 {
		if time.Now().After(deadline) {
			t.Fatalf("slow publisher never received feedback (ff=%v)", slow.FastForward())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The slow replica can now skip dead work.
	if !slow.ShouldSkip(temporal.Insert(temporal.P(2), 10, 400)) {
		t.Error("element ending before the watermark should be skippable")
	}
	if slow.ShouldSkip(temporal.Insert(temporal.P(2), 10, 600)) {
		t.Error("element reaching past the watermark must not be skipped")
	}
	if slow.ShouldSkip(temporal.Stable(10)) {
		t.Error("stables are never skipped")
	}
	if !slow.ShouldSkip(temporal.Adjust(temporal.P(2), 10, 300, 200)) {
		t.Error("stale adjust should be skippable")
	}
	if fast.FastForward() != 500 && fast.FastForward() != temporal.MinTime {
		t.Errorf("fast publisher ff = %v", fast.FastForward())
	}
}

func TestServerWireErrors(t *testing.T) {
	s := newTestServer(t)
	// Garbage hello over the wire is refused.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GARBAGE\n")
	line, _ := bufio.NewReader(conn).ReadString('\n')
	if !strings.HasPrefix(line, "ERR") {
		t.Errorf("expected ERR, got %q", line)
	}
	conn.Close()

	// A publisher sending a non-JSON line gets an error and is detached.
	conn2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn2)
	fmt.Fprintf(conn2, "HELLO PUB %d\n", int64(temporal.MinTime))
	if ok, _ := r.ReadString('\n'); !strings.HasPrefix(ok, "OK") {
		t.Fatalf("handshake failed: %q", ok)
	}
	fmt.Fprintf(conn2, "not-json\n")
	line2, _ := r.ReadString('\n')
	if !strings.HasPrefix(line2, "ERR") {
		t.Errorf("expected ERR for bad element, got %q", line2)
	}
	conn2.Close()

	// Connecting to a dead address fails cleanly.
	if _, err := Connect("127.0.0.1:1", temporal.MinTime); err == nil {
		t.Error("connect to dead address should fail")
	}
	if _, err := Subscribe("127.0.0.1:1"); err == nil {
		t.Error("subscribe to dead address should fail")
	}
}

func TestServerClosedRefusesClients(t *testing.T) {
	s, err := New("127.0.0.1:0", core.CaseR3)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	s.Close()
	if _, err := Connect(addr, temporal.MinTime); err == nil {
		t.Error("publisher should fail against a closed server")
	}
	// Closing twice is safe.
	s.Close()
}

func TestSubscriberRejectedHandshake(t *testing.T) {
	// A raw listener that refuses everything.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fmt.Fprintf(c, "ERR nope\n")
			c.Close()
		}
	}()
	if _, err := Subscribe(ln.Addr().String()); err == nil {
		t.Error("subscriber should reject a refused handshake")
	}
	if _, err := Connect(ln.Addr().String(), temporal.MinTime); err == nil {
		t.Error("publisher should reject a refused handshake")
	}
}

func TestServerPartitionedBackend(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case: core.CaseR3, FeedbackLag: -1, Partitions: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Partitions(); got != 3 {
		t.Fatalf("Partitions() = %d, want 3", got)
	}
	sc := serverScript(7)
	want := sc.TDB()

	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Connect(s.Addr(), temporal.MinTime)
			if err != nil {
				t.Error(err)
				return
			}
			defer p.Close()
			stream := sc.Render(gen.RenderOptions{Seed: int64(30 + i), Disorder: 0.3, StableFreq: 0.05})
			if err := p.SendStream(stream); err != nil {
				t.Error(err)
			}
		}(i)
	}
	merged := collect(t, sub)
	wg.Wait()

	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("partitioned merged TDB differs:\n got %v\nwant %v", got, want)
	}
	if s.MaxStable() != temporal.Infinity {
		t.Fatalf("merged stable = %v, want ∞", s.MaxStable())
	}
	ps := s.PartitionStats()
	if len(ps) != 3 {
		t.Fatalf("PartitionStats len = %d, want 3", len(ps))
	}
	var processed int64
	for _, p := range ps {
		processed += p.Processed
		if p.Stable != temporal.Infinity {
			t.Fatalf("partition stable = %v, want ∞", p.Stable)
		}
	}
	if processed == 0 {
		t.Fatal("no elements reached the partition workers")
	}
	if st := s.Stats(); st.ConsistencyWarnings != 0 || st.InInserts == 0 {
		t.Fatalf("implausible partitioned stats: %+v", st)
	}
}

// TestServerRebalancingBackend runs the partitioned backend with the adaptive
// repartitioning controller on (Options.Rebalance) under a hot-key workload:
// the merged output must still reconstitute to the script TDB regardless of
// whether (and how often) the controller moved slots mid-stream.
func TestServerRebalancingBackend(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case: core.CaseR3, FeedbackLag: -1, Partitions: 3,
		Rebalance: &partition.RebalanceConfig{
			Interval:  time.Millisecond,
			Threshold: 1.05,
			MinSample: 64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc := gen.NewScript(gen.Config{
		Events: 400, Seed: 19, EventDuration: 60, MaxGap: 8,
		Revisions: 0.4, RemoveProb: 0.2, PayloadBytes: 12, KeySkew: 2,
	})
	want := sc.TDB()

	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Connect(s.Addr(), temporal.MinTime)
			if err != nil {
				t.Error(err)
				return
			}
			defer p.Close()
			stream := sc.Render(gen.RenderOptions{Seed: int64(90 + i), Disorder: 0.3, StableFreq: 0.05})
			if err := p.SendStream(stream); err != nil {
				t.Error(err)
			}
		}(i)
	}
	merged := collect(t, sub)
	wg.Wait()

	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("rebalanced merged TDB differs:\n got %v\nwant %v", got, want)
	}
	if s.MaxStable() != temporal.Infinity {
		t.Fatalf("merged stable = %v, want ∞", s.MaxStable())
	}
}

func TestServerPartitionedFeedbackAndFailover(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case: core.CaseR3, FeedbackLag: 0, Partitions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc := serverScript(8)
	want := sc.TDB()

	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Publisher 0 dies halfway; publishers 1..2 deliver in full. The merge
	// must still complete to the script TDB on the survivors.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Connect(s.Addr(), temporal.MinTime)
			if err != nil {
				t.Error(err)
				return
			}
			defer p.Close()
			stream := sc.Render(gen.RenderOptions{Seed: int64(40 + i), Disorder: 0.3, StableFreq: 0.05})
			if i == 0 {
				stream = stream[:len(stream)/2]
			}
			if err := p.SendStream(stream); err != nil && i != 0 {
				t.Error(err)
			}
		}(i)
	}
	merged := collect(t, sub)
	wg.Wait()

	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("partitioned failover TDB differs:\n got %v\nwant %v", got, want)
	}
}
