package server

import (
	"sync"

	"lmerge/internal/temporal"
)

// subQueue is a per-subscriber bounded element queue between the merge path
// (which must never block) and the subscriber's writer goroutine (which may
// be arbitrarily slow). push is non-blocking: when the queue is full the
// subscriber is marked overflowed and closed — the disconnect-on-overflow
// policy — while other subscribers are untouched. pop hands the whole
// pending batch to the writer in one swap, recycling the writer's previous
// buffer to keep the steady state allocation-free.
type subQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []temporal.Element
	max  int
	// closed stops the queue (server shutdown, subscriber gone, overflow);
	// overflowed records that the close was the overflow policy.
	closed     bool
	overflowed bool
}

func newSubQueue(max int) *subQueue {
	q := &subQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends one element; it reports false when the queue is closed or
// just overflowed (the caller should drop the subscriber).
func (q *subQueue) push(e temporal.Element) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	if len(q.buf) >= q.max {
		q.overflowed = true
		q.closed = true
		q.cond.Broadcast()
		return false
	}
	q.buf = append(q.buf, e)
	q.cond.Signal()
	return true
}

// pop blocks until elements are pending or the queue closes, then returns
// the whole pending batch. reuse becomes the queue's next write buffer. ok
// is false once the queue is closed and drained.
func (q *subQueue) pop(reuse []temporal.Element) ([]temporal.Element, bool) {
	q.mu.Lock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	batch := q.buf
	q.buf = reuse[:0]
	q.mu.Unlock()
	if len(batch) == 0 {
		return nil, false
	}
	return batch, true
}

// close wakes the writer and stops accepting elements.
func (q *subQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
