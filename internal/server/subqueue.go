package server

import "sync"

// subQueue is a per-subscriber bounded queue between the merge path (which
// must never block) and a text subscriber's writer goroutine (which may be
// arbitrarily slow). Entries are marshalled lines, encoded once per emitted
// element in broadcast and shared read-only across every text subscriber's
// queue — the v1 cousin of the binary path's shared blocks, fixing the old
// per-subscriber re-marshal. push is non-blocking: when the queue is full the
// subscriber is marked overflowed and closed — the disconnect-on-overflow
// policy — while other subscribers are untouched. pop hands the whole
// pending batch to the writer in one swap, recycling the writer's previous
// buffer to keep the steady state allocation-free.
type subQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  [][]byte
	max  int
	// closed stops the queue (server shutdown, subscriber gone, overflow);
	// overflowed records that the close was the overflow policy.
	closed     bool
	overflowed bool
}

func newSubQueue(max int) *subQueue {
	q := &subQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends one shared line (not copied — the caller must never mutate
// it); it reports false when the queue is closed or just overflowed (the
// caller should drop the subscriber).
func (q *subQueue) push(line []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	if len(q.buf) >= q.max {
		q.overflowed = true
		q.closed = true
		q.cond.Broadcast()
		return false
	}
	q.buf = append(q.buf, line)
	q.cond.Signal()
	return true
}

// pop blocks until lines are pending or the queue closes, then returns the
// whole pending batch. reuse becomes the queue's next write buffer. ok is
// false once the queue is closed and drained.
func (q *subQueue) pop(reuse [][]byte) ([][]byte, bool) {
	q.mu.Lock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	batch := q.buf
	q.buf = reuse[:0]
	q.mu.Unlock()
	if len(batch) == 0 {
		return nil, false
	}
	return batch, true
}

// close wakes the writer and stops accepting elements.
func (q *subQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
