package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// runPublishers pushes n differently-rendered copies of sc through the
// server concurrently and waits for the merged stream to complete.
func runPublishers(t *testing.T, s *Server, sc *gen.Script, n int) temporal.Stream {
	t.Helper()
	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Connect(s.Addr(), temporal.MinTime)
			if err != nil {
				t.Error(err)
				return
			}
			defer p.Close()
			stream := sc.Render(gen.RenderOptions{Seed: int64(10 + i), Disorder: 0.3, StableFreq: 0.05})
			if err := p.SendStream(stream); err != nil {
				t.Error(err)
			}
		}(i)
	}
	merged := collect(t, sub)
	wg.Wait()
	// Publisher detach happens on the handler goroutine after the client
	// closes; wait for the server to quiesce so counters are final.
	deadline := time.Now().Add(5 * time.Second)
	for s.Publishers() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("publishers never detached: %d", s.Publishers())
		}
		time.Sleep(time.Millisecond)
	}
	return merged
}

// fetchMetrics GETs the handler's path and decodes the JSON body into out.
func fetchMetrics(t *testing.T, s *Server, path string, out any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
	}
}

// TestMetricsEndpointEndToEnd drives a two-publisher merge over TCP and
// verifies the /metrics payload: per-node counters that reconcile with the
// server's own Stats, non-negative freshness quantiles, leadership stats
// naming a real publisher, and the service gauges.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(31)
	merged := runPublishers(t, s, sc, 2)
	if _, err := temporal.Reconstitute(merged); err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}

	var page obs.MetricsPage
	fetchMetrics(t, s, "/metrics", &page)

	var merge *obs.Snapshot
	for i := range page.Nodes {
		if page.Nodes[i].Name == "merge" {
			merge = &page.Nodes[i]
		}
	}
	if merge == nil {
		t.Fatalf("no 'merge' node in metrics: %+v", page.Nodes)
	}
	st := s.Stats()
	if merge.InInserts != st.InInserts || merge.InAdjusts != st.InAdjusts || merge.InStables != st.InStables {
		t.Errorf("merge input counters diverge from Stats: %+v vs %+v", merge, st)
	}
	if merge.OutInserts != st.OutInserts || merge.OutStables != st.OutStables {
		t.Errorf("merge output counters diverge from Stats: %+v vs %+v", merge, st)
	}
	if merge.Freshness.Samples == 0 {
		t.Error("no freshness samples after a full merge")
	}
	if merge.Freshness.Min < 0 || merge.Freshness.P95 < merge.Freshness.P50 {
		t.Errorf("freshness quantiles malformed: %+v", merge.Freshness)
	}
	if merge.Leadership.Leader < 0 {
		t.Errorf("no leader after merge completion: %+v", merge.Leadership)
	}
	if merge.Leadership.Advances != st.OutStables {
		t.Errorf("leadership advances %d != output stables %d", merge.Leadership.Advances, st.OutStables)
	}
	var contrib int64
	for _, c := range merge.Leadership.Contribution {
		contrib += c
	}
	if contrib != merge.Leadership.Advances {
		t.Errorf("contributions %d do not sum to advances %d", contrib, merge.Leadership.Advances)
	}
	if merge.OutFrontier != int64(temporal.Infinity) {
		t.Errorf("output frontier %d, want stable(inf)", merge.OutFrontier)
	}

	if page.Service["publishers"].(float64) != 0 {
		t.Errorf("publishers still attached: %v", page.Service["publishers"])
	}
	if page.Service["max_stable"].(float64) != float64(temporal.Infinity) {
		t.Errorf("service max_stable: %v", page.Service["max_stable"])
	}
	if page.Service["merge_state_bytes"] == nil {
		t.Error("missing merge_state_bytes gauge")
	}

	// The trace endpoint serves the attach/detach history of the run. The
	// wire encodes the kind as its string form (KindS).
	var events []obs.Event
	fetchMetrics(t, s, "/debug/trace", &events)
	var attaches int
	for _, e := range events {
		if e.KindS == obs.EventAttach.String() {
			attaches++
		}
	}
	if attaches != 2 {
		t.Errorf("trace attach events: got %d want 2", attaches)
	}
	// And the text dump renders lines.
	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=text", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "attach") {
		t.Errorf("text trace dump missing attach lines:\n%s", rec.Body.String())
	}
}

// TestMetricsEndpointPartitioned repeats the end-to-end check on the sharded
// backend: the reunify node plus one telemetry node per partition worker,
// partition stats in the service gauges, and partition-leadership on the
// reunify node.
func TestMetricsEndpointPartitioned(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{Case: core.CaseR3, FeedbackLag: -1, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc := serverScript(32)
	merged := runPublishers(t, s, sc, 2)
	if _, err := temporal.Reconstitute(merged); err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}

	var page obs.MetricsPage
	fetchMetrics(t, s, "/metrics", &page)
	byName := map[string]obs.Snapshot{}
	for _, n := range page.Nodes {
		byName[n.Name] = n
	}
	merge, ok := byName["merge"]
	if !ok {
		t.Fatalf("no reunify node in metrics: %+v", page.Nodes)
	}
	var workerIn int64
	for p := 0; p < 4; p++ {
		w, ok := byName["merge/part"+string(rune('0'+p))]
		if !ok {
			t.Fatalf("missing worker node merge/part%d", p)
		}
		workerIn += w.InInserts + w.InAdjusts
	}
	// Routing conservation: every insert/adjust the pool accepted reached
	// exactly one worker.
	if got := merge.InInserts + merge.InAdjusts; workerIn != got {
		t.Errorf("workers saw %d inserts/adjusts, pool routed %d", workerIn, got)
	}
	// Freshness sampling excludes end-of-stream transitions (an input
	// frontier at ∞ makes the lag unbounded), and on a fast localhost run
	// the whole input can complete before the async workers emit reunified
	// stables — so samples may legitimately be zero here. What must never
	// appear is an ∞-scale sample leaking into the quantiles.
	if merge.Freshness.Max >= int64(temporal.Infinity)/2 {
		t.Errorf("end-of-stream lag leaked into freshness: %+v", merge.Freshness)
	}
	// Reunify leadership is the binding partition index.
	if l := merge.Leadership.Leader; l < 0 || l >= 4 {
		t.Errorf("binding partition out of range: %d", l)
	}
	if page.Service["partitions"].(float64) != 4 {
		t.Errorf("service partitions: %v", page.Service["partitions"])
	}
	if page.Service["partition_stats"] == nil {
		t.Error("missing partition_stats in service gauges")
	}
}
