package server

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/durable"
	"lmerge/internal/obs"
	"lmerge/internal/partition"
	"lmerge/internal/temporal"
)

// durability is the server's persistence state (nil when Options.DataDir is
// empty; every hook is nil-safe).
//
// Locking: cpMu is the checkpoint barrier. Its read side spans each mutation
// couple — WAL append + the backend call it covers (attach, detach, batch) —
// so the write side (the checkpoint cut) observes either both halves or
// neither. Merged-output emissions need no read lock: the single backend
// emits synchronously inside ProcessBatch (already under the read side), and
// the sharded pool's worker emissions are silenced by Quiesce before the cut
// captures anything. mu guards the live Log pointer across rotations; it is
// never held across a backend call.
type durability struct {
	dir   string
	fsync bool
	every time.Duration
	keep  int

	cpMu sync.RWMutex

	mu     sync.Mutex
	log    *durable.Log
	gen    uint64
	emitEl [1]temporal.Element // reusable RecEmit scratch (under mu)

	// suppress silences broadcast during recovery seeding: the seed stream's
	// re-merge re-emits what the restored backlog already holds.
	suppress atomic.Bool

	tel *obs.Durability
}

// durKeepCheckpoints is how many checkpoint generations are retained — more
// than one, so recovery can fall back when the newest file is invalid
// (partial write that still got renamed, disk corruption).
const durKeepCheckpoints = 2

// defaultCheckpointEvery is the background checkpoint period when DataDir is
// set and CheckpointEvery is zero.
const defaultCheckpointEvery = 2 * time.Second

// shared takes the checkpoint barrier's read side; the returned func releases
// it. Nil-safe: without durability it returns a no-op so the hot paths carry
// no conditional forest.
func (d *durability) shared() func() {
	if d == nil {
		return func() {}
	}
	d.cpMu.RLock()
	return d.cpMu.RUnlock
}

// append logs one record to the current WAL generation.
func (d *durability) append(r durable.Record) error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return nil
	}
	return d.log.Append(r)
}

// appendEmit logs one merged-output element at backlog index seq, reusing the
// scratch element slot so the per-emission path does not allocate.
func (d *durability) appendEmit(seq int, e temporal.Element) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return
	}
	d.emitEl[0] = e
	d.log.Append(durable.Record{Kind: durable.RecEmit, Seq: uint64(seq), Els: d.emitEl[:]})
}

// suppressed reports whether recovery seeding is silencing emissions.
func (d *durability) suppressed() bool { return d != nil && d.suppress.Load() }

// snapshotCapable reports whether the merge case can checkpoint (implements
// core.Snapshotter) — the gate on -data-dir.
func snapshotCapable(c core.Case) bool {
	m := core.New(c, func(temporal.Element) {})
	_, ok := m.(core.Snapshotter)
	return ok
}

// initDurability opens the data directory, performs crash recovery when it
// holds state, and leaves a fresh WAL generation accepting appends. Called
// from NewWithOptions before the listener starts accepting, so recovery runs
// single-threaded with no publishers or subscribers attached.
func (s *Server) initDurability() error {
	opts := s.opts
	if !snapshotCapable(opts.Case) {
		return fmt.Errorf("server: -data-dir requires a snapshot-capable merge case, not %v", opts.Case)
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return err
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	d := &durability{
		dir:   opts.DataDir,
		fsync: opts.Fsync,
		every: every,
		keep:  durKeepCheckpoints,
		tel:   &obs.Durability{},
	}
	s.dur = d

	start := time.Now()
	st, err := durable.Load(d.dir)
	if err != nil {
		return err
	}
	log, err := durable.CreateLog(d.dir, st.NextGen, d.fsync, d.tel)
	if err != nil {
		return err
	}
	d.log, d.gen = log, st.NextGen

	if st.Checkpoint == nil && len(st.Records) == 0 {
		return nil // fresh directory, nothing to recover
	}
	if err := s.recover(st); err != nil {
		return err
	}
	// Post-recovery checkpoint: the recovered state becomes the new baseline,
	// so the generations recovery read from can be pruned and a second crash
	// replays from here instead of repeating the whole recovery.
	if err := s.checkpoint(); err != nil {
		return err
	}
	d.tel.RecoveryDone(int64(len(st.Records)), int64(st.TornBytes), time.Since(start).Nanoseconds())
	s.reg.Trace().Record(obs.Event{
		Kind: obs.EventRecovery, Node: "server", Stream: -1,
		T: s.be.MaxStable(), Aux: int64(len(st.Records)),
	})
	return nil
}

// recover jumpstarts the backend from the loaded durable state (the paper's
// checkpoint/jumpstart of Sec. II-4, made crash-durable):
//
//  1. Restore the merged-output backlog: the checkpoint's backlog plus every
//     WAL emission record past it (write-ahead of delivery means this is a
//     superset of anything a subscriber saw, so positional FROM resume stays
//     exact).
//  2. Seed a ghost stream with the FOLD of the restored backlog — one insert
//     per still-live event at its current interval, closed by the fold's
//     stable point (the paper's Snapshot form) — with broadcast suppressed,
//     since its re-merge re-emits what the restored backlog already holds.
//     Replaying the raw backlog (or the checkpoint snapshot plus the raw
//     tail) instead would be unsound: under the lazy adjust policy a
//     re-consumed output stream leaves the merger's output state
//     unreconciled until the next stable, and the record carrying that
//     stable may be exactly what the crash tore off — later withdrawals
//     would then cite stale intervals. The diffcheck crash-recover axis
//     caught this; the fold is reconciled by construction.
//  3. Replay the WAL's input records (attach/batch/detach) as ghost streams
//     with emissions live: batches the pre-crash merger already processed are
//     absorbed as duplicates (re-attach semantics), while batches it logged
//     but never finished emitting produce their output now.
//  4. Detach every ghost. Withdrawals for events no surviving stream vouches
//     for flow to the backlog as ordinary adjusts; reconnecting resilient
//     publishers redeliver (fast-forwarding past the recovered stable), and
//     the TDB converges to the no-crash oracle.
func (s *Server) recover(st *durable.RecoveryState) error {
	d := s.dur
	ckpt := st.Checkpoint

	var ckptLen int
	if ckpt != nil {
		s.backlog = append(s.backlog, ckpt.Backlog...)
		ckptLen = len(ckpt.Backlog)
	}
	s.backlog = append(s.backlog, durable.EmitTail(st.Records, uint64(ckptLen))...)

	if sh, ok := s.be.(*partition.Sharded); ok && ckpt != nil && len(ckpt.RouteOwner) > 0 {
		sh.InstallRoute(ckpt.RouteEpoch, ckpt.RouteOwner)
	}

	// Seed stream: the fold of the restored backlog. The backlog is a valid
	// output stream (checksum truncation only ever drops a suffix), so its
	// fold is the exact merged TDB at the crash point; the live region plus
	// the fold's stable is a reconciled snapshot no matter which adjusts or
	// stables the tear removed. The on-disk checkpoint snapshots are not
	// replayed directly — see the note above — but remain the format's
	// self-description and are exercised by the diffcheck crash axis.
	fold, err := temporal.Reconstitute(s.backlog)
	if err != nil {
		return fmt.Errorf("server: restored backlog invalid: %w", err)
	}
	stable := fold.Stable()
	var seed temporal.Stream
	for _, ev := range fold.Events() {
		if ev.Ve < stable {
			continue
		}
		for i := 0; i < fold.Count(ev); i++ {
			seed = append(seed, temporal.Insert(ev.Payload, ev.Vs, ev.Ve))
		}
	}
	if stable != temporal.MinTime {
		seed = append(seed, temporal.Stable(stable))
	}

	d.suppress.Store(true)
	seedID := s.be.Attach(temporal.MinTime)
	if len(seed) > 0 {
		if err := s.be.ProcessBatch(seedID, seed); err != nil {
			return fmt.Errorf("server: recovery seed: %w", err)
		}
	}
	s.quiesceBackend()
	d.suppress.Store(false)

	// Input replay. Ghost streams get fresh backend ids; the WAL's original
	// ids only key the mapping. A batch whose attach record was lost to a torn
	// tail is attached on demand with an open join guarantee.
	ghosts := make(map[int64]core.StreamID)
	for _, r := range st.Records {
		switch r.Kind {
		case durable.RecAttach:
			if _, ok := ghosts[r.ID]; !ok {
				ghosts[r.ID] = s.be.Attach(r.JoinTime)
			}
		case durable.RecBatch:
			id, ok := ghosts[r.ID]
			if !ok {
				id = s.be.Attach(temporal.MinTime)
				ghosts[r.ID] = id
			}
			if err := s.be.ProcessBatch(id, r.Els); err != nil {
				return fmt.Errorf("server: recovery replay: %w", err)
			}
		case durable.RecDetach:
			if id, ok := ghosts[r.ID]; ok {
				s.be.Detach(id)
				delete(ghosts, r.ID)
			}
		}
	}
	for _, id := range ghosts {
		s.be.Detach(id)
	}
	s.be.Detach(seedID)
	s.quiesceBackend()
	return nil
}

// quiesceBackend blocks until every enqueued element has been merged and its
// emission flushed. The single backend is synchronous, so only the sharded
// pool needs the drain.
func (s *Server) quiesceBackend() {
	if sh, ok := s.be.(*partition.Sharded); ok {
		sh.Quiesce()
	}
}

// checkpoint takes one exact-cut checkpoint: stop the world (the barrier's
// write side excludes every WAL-append/backend couple), drain the sharded
// pool, capture backlog + snapshots + routing, commit the checkpoint file by
// atomic rename, rotate the WAL onto the checkpoint's generation (re-logging
// an attach for every live publisher, so the new generation replays
// standalone), and prune generations the retained checkpoints cover.
func (s *Server) checkpoint() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	s.quiesceBackend()

	snaps, ok := s.backendSnapshots()
	if !ok {
		return fmt.Errorf("server: merge case cannot snapshot")
	}
	c := &durable.Checkpoint{
		Gen:    d.gen + 1,
		Stable: s.be.MaxStable(),
	}
	c.Snapshots = snaps
	s.outMu.Lock()
	c.Backlog = append(temporal.Stream(nil), s.backlog...)
	s.outMu.Unlock()
	if sh, okSh := s.be.(*partition.Sharded); okSh {
		c.RouteEpoch, c.RouteOwner = sh.RouteState()
	}
	if err := durable.WriteCheckpoint(d.dir, c, d.tel); err != nil {
		return err
	}

	log, err := durable.CreateLog(d.dir, c.Gen, d.fsync, d.tel)
	if err != nil {
		return err
	}
	d.mu.Lock()
	old := d.log
	d.log, d.gen = log, c.Gen
	d.mu.Unlock()
	if old != nil {
		old.Close()
	}

	type pubJoin struct {
		id core.StreamID
		jt temporal.Time
	}
	var live []pubJoin
	s.mu.Lock()
	for id, ps := range s.pubs {
		live = append(live, pubJoin{id: id, jt: ps.joinTime})
	}
	s.mu.Unlock()
	for _, p := range live {
		if err := d.append(durable.Record{Kind: durable.RecAttach, ID: int64(p.id), JoinTime: p.jt}); err != nil {
			return err
		}
	}
	if err := durable.Prune(d.dir, d.keep); err != nil {
		return err
	}
	s.reg.Trace().Record(obs.Event{
		Kind: obs.EventCheckpoint, Node: "server", Stream: -1,
		T: c.Stable, Aux: int64(c.Gen),
	})
	return nil
}

// checkpointLoop runs the periodic background checkpoint until Close.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.dur.every)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			s.checkpoint()
		}
	}
}

// backendSnapshots collects the merger snapshot streams (one for the single
// backend, one per partition for the sharded pool).
func (s *Server) backendSnapshots() ([]temporal.Stream, bool) {
	switch be := s.be.(type) {
	case *partition.Sharded:
		// The -data-dir gate (snapshotCapable) already vetted the algorithm,
		// and an idle partition legitimately snapshots to an empty stream.
		return be.PartitionSnapshots(), true
	case *singleBackend:
		snap, ok := be.Snapshot()
		if !ok {
			return nil, false
		}
		return []temporal.Stream{snap}, true
	}
	return nil, false
}

// Durability returns the persistence counters (zero-valued when -data-dir is
// off).
func (s *Server) Durability() obs.DurabilitySnapshot {
	if s.dur == nil {
		return obs.DurabilitySnapshot{}
	}
	return s.dur.tel.Snapshot()
}

// Checkpoint forces one synchronous checkpoint (tests and tooling; the
// background loop normally drives this).
func (s *Server) Checkpoint() error { return s.checkpoint() }
