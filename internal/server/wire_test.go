package server

import (
	"bufio"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

// publishScript renders the script under the given render seed and publishes
// it through a fresh (text or binary) publisher.
func publishScript(t *testing.T, addr string, sc *gen.Script, seed int64, bin bool) {
	t.Helper()
	connect := Connect
	if bin {
		connect = ConnectBinary
	}
	p, err := connect(addr, temporal.MinTime)
	if err != nil {
		t.Error(err)
		return
	}
	defer p.Close()
	stream := sc.Render(gen.RenderOptions{Seed: seed, Disorder: 0.3, StableFreq: 0.05})
	if err := p.SendStream(stream); err != nil {
		t.Error(err)
	}
}

func assertTDB(t *testing.T, merged temporal.Stream, want *temporal.TDB, who string) {
	t.Helper()
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("%s: merged stream invalid: %v", who, err)
	}
	if !got.Equal(want) {
		t.Fatalf("%s: merged TDB differs:\n got %v\nwant %v", who, got, want)
	}
}

// TestBinaryEndToEnd: a binary publisher and a text publisher feed one merge;
// a binary subscriber and a text subscriber on the same listener observe the
// identical merged TDB — the two protocols are views of one stream.
func TestBinaryEndToEnd(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(31)
	want := sc.TDB()

	bsub, err := SubscribeBinary(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bsub.Close()
	tsub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tsub.Close()

	var wg sync.WaitGroup
	for i, bin := range []bool{true, false} {
		wg.Add(1)
		go func(i int, bin bool) {
			defer wg.Done()
			publishScript(t, s.Addr(), sc, int64(40+i), bin)
		}(i, bin)
	}
	var bstream, tstream temporal.Stream
	var cwg sync.WaitGroup
	cwg.Add(2)
	go func() { defer cwg.Done(); bstream = collect(t, bsub) }()
	go func() { defer cwg.Done(); tstream = collect(t, tsub) }()
	cwg.Wait()
	wg.Wait()

	assertTDB(t, bstream, want, "binary subscriber")
	assertTDB(t, tstream, want, "text subscriber")
	// Same merged stream, element for element, not merely TDB-equivalent.
	if len(bstream) != len(tstream) {
		t.Fatalf("binary saw %d elements, text saw %d", len(bstream), len(tstream))
	}
	for i := range bstream {
		if bstream[i] != tstream[i] {
			t.Fatalf("element %d diverges across protocols: %+v != %+v", i, bstream[i], tstream[i])
		}
	}
	if st := s.Stats(); st.ConsistencyWarnings != 0 {
		t.Fatalf("consistency warnings: %d", st.ConsistencyWarnings)
	}
}

// TestBinaryEndToEndPartitioned runs the same cross-protocol equivalence on
// the sharded backend: fan-out happens after reunification, so the wire layer
// must be byte-for-byte oblivious to the backend.
func TestBinaryEndToEndPartitioned(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{Case: core.CaseR3, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc := serverScript(32)
	want := sc.TDB()

	bsub, err := SubscribeBinary(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bsub.Close()
	tsub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tsub.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			publishScript(t, s.Addr(), sc, int64(50+i), i%2 == 0)
		}(i)
	}
	var bstream, tstream temporal.Stream
	var cwg sync.WaitGroup
	cwg.Add(2)
	go func() { defer cwg.Done(); bstream = collect(t, bsub) }()
	go func() { defer cwg.Done(); tstream = collect(t, tsub) }()
	cwg.Wait()
	wg.Wait()

	assertTDB(t, bstream, want, "binary subscriber")
	assertTDB(t, tstream, want, "text subscriber")
}

// TestBinarySubscriberResume: a binary subscriber that drops mid-stream and
// reconnects with FROM <n> (pipelined in the hello) sees exactly the suffix,
// and the stitched stream reconstitutes to the full TDB.
func TestBinarySubscriberResume(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(33)
	want := sc.TDB()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		publishScript(t, s.Addr(), sc, 60, true)
	}()
	wg.Wait() // entire stream merged; everything below is history catch-up

	sub, err := SubscribeBinary(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var prefix temporal.Stream
	for len(prefix) < 25 {
		e, ok := sub.Next()
		if !ok {
			t.Fatal("subscriber closed during prefix")
		}
		prefix = append(prefix, e)
	}
	sub.Close() // abandon mid-stream

	resumed, err := subscribeVia(nil, s.Addr(), len(prefix), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	suffix := collect(t, resumed)
	assertTDB(t, append(append(temporal.Stream{}, prefix...), suffix...), want, "resumed subscriber")
}

// TestBinaryCreditEviction: a subscriber that never grants credit stalls its
// own writer and is evicted at the deadline; a healthy subscriber on the same
// broadcast is untouched and observes the complete TDB.
func TestBinaryCreditEviction(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{Case: core.CaseR3, CreditDeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc := serverScript(34)
	want := sc.TDB()

	// The stalled subscriber: handshake with a 1-byte credit window — never
	// enough for a frame — and never send a grant.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := wire.AppendHelloSub(wire.AppendPreamble(nil), 0, 1)
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	fr := wire.NewReader(bufio.NewReader(conn))
	if typ, _, err := fr.Next(); err != nil || typ != wire.FrOK {
		t.Fatalf("stalled subscriber handshake: typ=0x%02x err=%v", typ, err)
	}

	healthy, err := SubscribeBinary(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	publishScript(t, s.Addr(), sc, 70, true)
	assertTDB(t, collect(t, healthy), want, "healthy subscriber")

	// The stalled peer pends frames it can never cover; the deadline evicts it
	// without touching the healthy one (which already finished above).
	deadline := time.Now().Add(5 * time.Second)
	for {
		ws := s.WireStats()
		if ws.Evictions >= 1 && ws.CreditStalls >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no eviction: stats %+v", ws)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The server hung up on the stalled subscriber.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, _, err := fr.Next(); err != nil {
			break // EOF / reset: connection torn down by the eviction
		}
	}
}

// TestBinaryVersionNegotiation: an unknown protocol version is answered with
// an ERR frame and the connection dropped, while v1 text and v2 binary
// clients keep working on the same listener.
func TestBinaryVersionNegotiation(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{wire.Magic0, wire.Magic1, wire.Version + 1}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(conn)
	if err != nil || len(reply) == 0 {
		t.Fatalf("no reply to bad version: %d bytes, %v", len(reply), err)
	}
	typ, body, _, derr := wire.DecodeFrame(reply)
	if derr != nil || typ != wire.FrErr {
		t.Fatalf("want ERR frame, got typ=0x%02x body=%q err=%v", typ, body, derr)
	}

	// The listener still negotiates both live protocols.
	tsub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatalf("text handshake after version error: %v", err)
	}
	tsub.Close()
	bsub, err := SubscribeBinary(s.Addr())
	if err != nil {
		t.Fatalf("binary handshake after version error: %v", err)
	}
	bsub.Close()
}

// TestBinaryEncodeOnceFanOut: with K subscribers attached before any input,
// each merged element is encoded exactly once (frames_encoded == stream
// length) while the shared-bytes counters show K deliveries of those same
// frames — the O(1)-encode fan-out claim, in counter form.
func TestBinaryEncodeOnceFanOut(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(35)
	want := sc.TDB()

	const K = 5
	subs := make([]*Subscriber, K)
	for i := range subs {
		sub, err := SubscribeBinary(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs[i] = sub
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		publishScript(t, s.Addr(), sc, 80, true)
	}()
	streams := make([]temporal.Stream, K)
	var cwg sync.WaitGroup
	for i := range subs {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			streams[i] = collect(t, subs[i])
		}(i)
	}
	cwg.Wait()
	wg.Wait()

	n := int64(len(streams[0]))
	for i, st := range streams {
		assertTDB(t, st, want, "fan-out subscriber")
		if int64(len(st)) != n {
			t.Fatalf("subscriber %d saw %d elements, subscriber 0 saw %d", i, len(st), n)
		}
	}
	ws := s.WireStats()
	if ws.FramesEncoded != n {
		t.Fatalf("frames_encoded = %d for %d merged elements and %d subscribers — not encode-once", ws.FramesEncoded, n, K)
	}
	if ws.SharedFrames != K*n {
		t.Fatalf("shared_frames = %d, want %d (%d subscribers x %d frames)", ws.SharedFrames, K*n, K, n)
	}
	if ws.SharedBytes < ws.FrameBytes*K {
		t.Fatalf("shared_bytes = %d < %d x %d", ws.SharedBytes, K, ws.FrameBytes)
	}
}
