package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

// DialFunc opens a transport connection to the server. Tests and the chaos
// harness substitute fault-injecting dialers.
type DialFunc func(addr string) (net.Conn, error)

func defaultDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Publisher is a client-side publisher connection. It listens for the
// server's fast-forward signals ("FF <t>" lines, Sec. V-D over the wire) in
// the background; FastForward and ShouldSkip let the replica avoid producing
// elements the merge no longer needs. The fast-forward watermark is seeded
// from the handshake's stable point, so a reconnecting replica immediately
// skips everything the merged output already covers.
type Publisher struct {
	conn         net.Conn
	w            *bufio.Writer
	bin          bool
	scratch      []byte // frame build buffer (binary Send)
	id           int
	joinStable   temporal.Time
	writeTimeout time.Duration
	ff           atomic.Int64
	detached     atomic.Bool
	acked        chan struct{}
	ackOnce      sync.Once
	sigDone      chan struct{} // closed when the signal reader exits (conn ended)
}

// Connect dials the server as a publisher with the given join guarantee
// (use temporal.MinTime for a from-the-start replica).
func Connect(addr string, joinTime temporal.Time) (*Publisher, error) {
	return connectVia(defaultDial, addr, joinTime, 0, false)
}

// ConnectBinary dials the server as a publisher speaking the v2 binary wire
// protocol (internal/wire): framed CRC-checked elements instead of JSON
// lines, control signals as frames.
func ConnectBinary(addr string, joinTime temporal.Time) (*Publisher, error) {
	return connectVia(defaultDial, addr, joinTime, 0, true)
}

func connectVia(dial DialFunc, addr string, joinTime temporal.Time, writeTimeout time.Duration, bin bool) (*Publisher, error) {
	if dial == nil {
		dial = defaultDial
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	p := &Publisher{
		conn: conn, w: bufio.NewWriter(conn), bin: bin,
		joinStable: temporal.MinTime, writeTimeout: writeTimeout,
		acked: make(chan struct{}), sigDone: make(chan struct{}),
	}
	p.ff.Store(int64(temporal.MinTime))
	p.armWriteDeadline()
	if bin {
		return p.handshakeBinary(joinTime)
	}
	fmt.Fprintf(p.w, "HELLO PUB %d\n", int64(joinTime))
	if err := p.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	r := bufio.NewReader(conn)
	if d := writeTimeout; d > 0 {
		conn.SetReadDeadline(time.Now().Add(10 * d))
	}
	line, err := r.ReadString('\n')
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "OK" {
		conn.Close()
		return nil, fmt.Errorf("server refused publisher: %s", strings.TrimSpace(line))
	}
	if p.id, err = strconv.Atoi(fields[1]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server refused publisher: %s", strings.TrimSpace(line))
	}
	if len(fields) >= 3 {
		if st, err := strconv.ParseInt(fields[2], 10, 64); err == nil {
			p.joinStable = temporal.Time(st)
			p.ff.Store(st)
		}
	}
	go p.readSignals(r)
	return p, nil
}

// handshakeBinary sends the v2 preamble and HELLO_PUB frame, and parses the
// OK reply (assigned stream id + the merged stable point that seeds the
// fast-forward watermark).
func (p *Publisher) handshakeBinary(joinTime temporal.Time) (*Publisher, error) {
	buf := wire.AppendPreamble(nil)
	buf = wire.AppendHelloPub(buf, joinTime)
	p.w.Write(buf)
	if err := p.w.Flush(); err != nil {
		p.conn.Close()
		return nil, err
	}
	fr := wire.NewReader(bufio.NewReader(p.conn))
	if d := p.writeTimeout; d > 0 {
		p.conn.SetReadDeadline(time.Now().Add(10 * d))
	}
	typ, body, err := fr.Next()
	p.conn.SetReadDeadline(time.Time{})
	if err != nil {
		p.conn.Close()
		return nil, err
	}
	if typ != wire.FrOK {
		p.conn.Close()
		if typ == wire.FrErr {
			return nil, fmt.Errorf("server refused publisher: %s", body)
		}
		return nil, fmt.Errorf("server refused publisher: frame 0x%02x", typ)
	}
	id, stable, perr := wire.ParseOK(body)
	if perr != nil {
		p.conn.Close()
		return nil, perr
	}
	p.id = int(id)
	p.joinStable = stable
	p.ff.Store(int64(stable))
	go p.readSignalsBinary(fr)
	return p, nil
}

// readSignals consumes server lines after the handshake: fast-forward
// watermarks (monotonically coalesced), DETACH notices (the supervisor's
// straggler policy), and errors (which end the stream).
func (p *Publisher) readSignals(r *bufio.Reader) {
	defer close(p.sigDone)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		if strings.HasPrefix(line, "DETACH") {
			p.detached.Store(true)
			continue
		}
		if strings.HasPrefix(line, "ACK") {
			p.ackOnce.Do(func() { close(p.acked) })
			continue
		}
		var t int64
		if _, err := fmt.Sscanf(line, "FF %d", &t); err == nil {
			p.coalesceFF(t)
		}
	}
}

// readSignalsBinary is the frame counterpart of readSignals.
func (p *Publisher) readSignalsBinary(fr *wire.Reader) {
	defer close(p.sigDone)
	for {
		typ, body, err := fr.Next()
		if err != nil {
			return
		}
		switch typ {
		case wire.FrDetach:
			p.detached.Store(true)
		case wire.FrAck:
			p.ackOnce.Do(func() { close(p.acked) })
		case wire.FrFF:
			if t, perr := wire.ParseFF(body); perr == nil {
				p.coalesceFF(int64(t))
			}
		}
	}
}

// coalesceFF advances the fast-forward watermark monotonically.
func (p *Publisher) coalesceFF(t int64) {
	for {
		cur := p.ff.Load()
		if t <= cur || p.ff.CompareAndSwap(cur, t) {
			return
		}
	}
}

// FastForward returns the latest fast-forward point the server signalled
// (temporal.MinTime if none), never earlier than the handshake stable point.
func (p *Publisher) FastForward() temporal.Time { return temporal.Time(p.ff.Load()) }

// JoinStable returns the merged output's stable point at the moment this
// publisher attached (temporal.MinTime against pre-watermark servers).
func (p *Publisher) JoinStable() temporal.Time { return p.joinStable }

// Detached reports whether the server force-detached this publisher (e.g.
// the straggler policy).
func (p *Publisher) Detached() bool { return p.detached.Load() }

// Acked returns a channel closed once the server acknowledges that this
// stream's stable(∞) has been merged (end-of-stream confirmation).
func (p *Publisher) Acked() <-chan struct{} { return p.acked }

// ShouldSkip reports whether e is entirely before the fast-forward point —
// the merged output no longer needs it, so the replica can drop the element
// (and the work of producing it) outright.
func (p *Publisher) ShouldSkip(e temporal.Element) bool {
	ff := p.FastForward()
	if ff == temporal.MinTime {
		return false
	}
	switch e.Kind {
	case temporal.KindInsert:
		return e.Ve <= ff
	case temporal.KindAdjust:
		return temporal.MaxT(e.Ve, e.VOld) <= ff
	}
	return false
}

// ID returns the stream id the server assigned.
func (p *Publisher) ID() int { return p.id }

func (p *Publisher) armWriteDeadline() {
	if p.writeTimeout > 0 {
		p.conn.SetWriteDeadline(time.Now().Add(p.writeTimeout))
	}
}

// Send publishes one element.
func (p *Publisher) Send(e temporal.Element) error {
	p.armWriteDeadline()
	if p.bin {
		p.scratch = wire.AppendData(p.scratch[:0], e)
		_, err := p.w.Write(p.scratch)
		return err
	}
	line, err := temporal.MarshalElement(e)
	if err != nil {
		return err
	}
	if _, err := p.w.Write(line); err != nil {
		return err
	}
	return p.w.WriteByte('\n')
}

// SendStream publishes a whole prefix and flushes.
func (p *Publisher) SendStream(s temporal.Stream) error {
	for _, e := range s {
		if err := p.Send(e); err != nil {
			return err
		}
	}
	return p.Flush()
}

// Flush pushes buffered elements to the wire.
func (p *Publisher) Flush() error {
	p.armWriteDeadline()
	return p.w.Flush()
}

// Close flushes and disconnects (the server detaches the stream).
func (p *Publisher) Close() error {
	p.w.Flush()
	return p.conn.Close()
}

// Backoff shapes the reconnect schedule of the resilient clients:
// exponential growth from Initial by Multiplier up to Max, with ±Jitter
// fraction of randomisation so a fleet of replicas does not reconnect in
// lockstep after a shared outage.
type Backoff struct {
	Initial    time.Duration
	Max        time.Duration
	Multiplier float64
	Jitter     float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 5 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter <= 0 {
		b.Jitter = 0.2
	}
	return b
}

// delay returns the wait before attempt n (n >= 1).
func (b Backoff) delay(n int, rng *rand.Rand) time.Duration {
	d := float64(b.Initial)
	for i := 1; i < n && d < float64(b.Max); i++ {
		d *= b.Multiplier
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	d *= 1 + b.Jitter*(2*rng.Float64()-1)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// ResilientOptions configures the reconnecting clients.
type ResilientOptions struct {
	// Backoff is the reconnect schedule (zero value → defaults).
	Backoff Backoff
	// MaxAttempts bounds consecutive failed connection attempts before the
	// client gives up (default 10).
	MaxAttempts int
	// WriteTimeout bounds each flush to the server (default 5s); a wedged
	// connection surfaces as an error and triggers a reconnect instead of
	// blocking the replica forever.
	WriteTimeout time.Duration
	// FlushEvery is how many sent elements may buffer between flushes
	// (default 64); stables always flush.
	FlushEvery int
	// Dial substitutes the transport (fault injection, tests). Nil → TCP.
	Dial DialFunc
	// Seed drives the backoff jitter; fixed seeds make schedules
	// reproducible.
	Seed int64
	// Throttle, when non-nil, runs before each element actually sent —
	// tests use it to model slow replicas (stragglers).
	Throttle func(e temporal.Element)
	// Binary selects the v2 binary wire protocol (internal/wire) instead of
	// the v1 text protocol for this client.
	Binary bool
	// CreditWindow is a binary subscriber's flow-control window in bytes
	// (default DefaultCreditWindow). Ignored by publishers and text clients.
	CreditWindow int64
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	o.Backoff = o.Backoff.withDefaults()
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 10
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 64
	}
	if o.Dial == nil {
		o.Dial = defaultDial
	}
	if o.CreditWindow <= 0 {
		o.CreditWindow = DefaultCreditWindow
	}
	return o
}

// DeliveryReport summarises one resilient delivery.
type DeliveryReport struct {
	// Connects counts successful attachments (reconnects = Connects - 1).
	Connects int
	// FailedDials counts connection attempts that never reached a handshake.
	FailedDials int
	// Detaches counts times the server force-detached us mid-delivery.
	Detaches int
	// Sent and Skipped count elements written versus pruned by the
	// fast-forward watermark during catch-up.
	Sent, Skipped int64
}

// ResilientPublisher delivers a replica's whole physical stream to the
// server, surviving connection faults: on any transport error it reconnects
// with exponential backoff plus jitter and replays the stream from the
// start, but skips — client-side, via the handshake stable point and
// fast-forward signals — every element the merged output no longer needs.
// Re-delivered elements the output does still track are absorbed by the
// merge as duplicates (the paper's re-attach semantics, Sec. V-B), so the
// merged TDB is unaffected by arbitrary crash/retry interleavings.
type ResilientPublisher struct {
	addr string
	opts ResilientOptions
	rng  *rand.Rand

	mu     sync.Mutex
	report DeliveryReport
}

// NewResilientPublisher prepares a resilient publisher for addr.
func NewResilientPublisher(addr string, opts ResilientOptions) *ResilientPublisher {
	return &ResilientPublisher{
		addr: addr,
		opts: opts.withDefaults(),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// Report returns a snapshot of the delivery counters (safe mid-Deliver).
func (rp *ResilientPublisher) Report() DeliveryReport {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.report
}

func (rp *ResilientPublisher) count(f func(*DeliveryReport)) {
	rp.mu.Lock()
	f(&rp.report)
	rp.mu.Unlock()
}

// Deliver publishes stream to completion, reconnecting across faults. When
// the stream ends with stable(∞), success additionally requires the server's
// end-of-stream ACK: a tail lost in transit (a fault that garbles or drops
// the final frames without a transport error at the sender) is detected by
// the missing acknowledgment and repaired by another catch-up pass. It
// returns the final report and the terminal error, if the server stayed
// unreachable — or the delivery unacknowledged — past MaxAttempts
// consecutive attempts.
func (rp *ResilientPublisher) Deliver(stream temporal.Stream) (DeliveryReport, error) {
	wantAck := len(stream) > 0 &&
		stream[len(stream)-1].Kind == temporal.KindStable &&
		stream[len(stream)-1].T() == temporal.Infinity
	failed := 0
	var lastErr error
	for {
		p, err := connectVia(rp.opts.Dial, rp.addr, temporal.MinTime, rp.opts.WriteTimeout, rp.opts.Binary)
		if err != nil {
			failed++
			lastErr = err
			rp.count(func(r *DeliveryReport) { r.FailedDials++ })
			if failed >= rp.opts.MaxAttempts {
				return rp.Report(), fmt.Errorf("server: giving up after %d attempts: %w", failed, lastErr)
			}
			time.Sleep(rp.opts.Backoff.delay(failed, rp.rng))
			continue
		}
		rp.count(func(r *DeliveryReport) { r.Connects++ })
		sentBefore := rp.Report().Sent
		err = rp.sendAll(p, stream)
		if rp.Report().Sent > sentBefore {
			// The attempt moved the stream forward; only consecutive
			// zero-progress attempts count against MaxAttempts.
			failed = 0
		}
		if err == nil && wantAck {
			select {
			case <-p.Acked():
			case <-p.sigDone:
				// Connection ended; the ACK may still have raced in just
				// before EOF.
				select {
				case <-p.Acked():
				default:
					err = fmt.Errorf("server: connection ended before delivery was acknowledged")
				}
			case <-time.After(rp.opts.WriteTimeout):
				err = fmt.Errorf("server: delivery unacknowledged after %v", rp.opts.WriteTimeout)
			}
		}
		if p.Detached() {
			rp.count(func(r *DeliveryReport) { r.Detaches++ })
		}
		p.Close()
		if err == nil {
			return rp.Report(), nil
		}
		failed++
		lastErr = err
		if failed >= rp.opts.MaxAttempts {
			return rp.Report(), fmt.Errorf("server: giving up after %d attempts: %w", failed, lastErr)
		}
		// Mid-stream failure: back off briefly, then re-attach and catch up.
		time.Sleep(rp.opts.Backoff.delay(failed, rp.rng))
	}
}

func (rp *ResilientPublisher) sendAll(p *Publisher, stream temporal.Stream) error {
	unflushed := 0
	for _, e := range stream {
		if rp.skippable(p, e) {
			rp.count(func(r *DeliveryReport) { r.Skipped++ })
			continue
		}
		if rp.opts.Throttle != nil {
			rp.opts.Throttle(e)
		}
		if err := p.Send(e); err != nil {
			return err
		}
		rp.count(func(r *DeliveryReport) { r.Sent++ })
		unflushed++
		if e.Kind == temporal.KindStable || unflushed >= rp.opts.FlushEvery {
			if err := p.Flush(); err != nil {
				return err
			}
			unflushed = 0
		}
	}
	return p.Flush()
}

// skippable applies the fast-forward rule during catch-up: inserts and
// adjusts wholly before the watermark are dead work; stables at or below it
// are redundant (the final stable(∞) is always delivered).
func (rp *ResilientPublisher) skippable(p *Publisher, e temporal.Element) bool {
	if e.Kind == temporal.KindStable {
		t := e.T()
		return !t.IsInf() && t <= p.FastForward()
	}
	return p.ShouldSkip(e)
}

// DefaultCreditWindow is the binary subscriber's default flow-control window:
// the byte credit granted to the server at the handshake and replenished as
// frames are consumed.
const DefaultCreditWindow = 256 * 1024

// handshakeTimeout bounds a subscriber's wait for the server's handshake
// reply. The subscription never legitimately idles there — the reply is
// written immediately on registration — so a longer silence means the
// connection (or its handshake bytes) died in flight.
const handshakeTimeout = 10 * time.Second

// Subscriber is a client-side subscription to the merged stream, over either
// protocol: sc is the v1 line scanner, fr the v2 frame reader.
type Subscriber struct {
	conn net.Conn
	sc   *bufio.Scanner
	fr   *wire.Reader
	// Credit accounting (binary): sinceGrant counts consumed frame bytes; at
	// half the window a CREDIT frame replenishes the server, so delivery never
	// pauses while this consumer keeps up.
	window     int64
	sinceGrant int64
	gbuf       []byte
}

// Subscribe dials the server as a consumer of the merged stream.
func Subscribe(addr string) (*Subscriber, error) {
	return subscribeVia(defaultDial, addr, 0, false, 0)
}

// SubscribeBinary dials the server as a consumer speaking the v2 binary wire
// protocol, with the default credit window.
func SubscribeBinary(addr string) (*Subscriber, error) {
	return subscribeVia(defaultDial, addr, 0, true, DefaultCreditWindow)
}

// subscribeVia subscribes, resuming after the first `from` elements of the
// merged history. Binary subscriptions pipeline position and the initial
// credit grant into the single HELLO_SUB frame (one round trip).
func subscribeVia(dial DialFunc, addr string, from int, bin bool, window int64) (*Subscriber, error) {
	if dial == nil {
		dial = defaultDial
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	if bin {
		if window <= 0 {
			window = DefaultCreditWindow
		}
		buf := wire.AppendPreamble(nil)
		buf = wire.AppendHelloSub(buf, from, window)
		if _, err := conn.Write(buf); err != nil {
			conn.Close()
			return nil, err
		}
		fr := wire.NewReader(bufio.NewReaderSize(conn, 64*1024))
		// Bound the wait for the OK reply: a handshake mauled in flight (the
		// chaos injector garbles the preamble, misrouting the connection) can
		// leave a server without ReadTimeout holding the socket open forever;
		// the deadline turns that into a reconnect instead of a hang.
		conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		typ, body, err := fr.Next()
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			conn.Close()
			return nil, err
		}
		if typ != wire.FrOK {
			conn.Close()
			if typ == wire.FrErr {
				return nil, fmt.Errorf("server refused subscription: %s", body)
			}
			return nil, fmt.Errorf("server refused subscription")
		}
		return &Subscriber{conn: conn, fr: fr, window: window}, nil
	}
	if from > 0 {
		_, err = fmt.Fprintf(conn, "HELLO SUB FROM %d\n", from)
	} else {
		_, err = fmt.Fprintf(conn, "HELLO SUB\n")
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "OK") {
		conn.Close()
		return nil, fmt.Errorf("server refused subscription")
	}
	return &Subscriber{conn: conn, sc: sc}, nil
}

// Next returns the next merged element; ok is false when the connection
// ends.
func (s *Subscriber) Next() (temporal.Element, bool) {
	if s.fr != nil {
		return s.nextBinary()
	}
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := temporal.UnmarshalElement(line)
		if err != nil {
			return temporal.Element{}, false
		}
		return e, true
	}
	return temporal.Element{}, false
}

func (s *Subscriber) nextBinary() (temporal.Element, bool) {
	for {
		typ, body, err := s.fr.Next()
		if err != nil {
			return temporal.Element{}, false
		}
		s.sinceGrant += wire.FrameHeader + 1 + int64(len(body))
		if s.sinceGrant >= s.window/2 {
			// Replenish before delivering: the grant rides ahead of however
			// long the caller sits on this element.
			s.gbuf = wire.AppendCredit(s.gbuf[:0], s.sinceGrant)
			s.conn.Write(s.gbuf) // a dead conn surfaces on the next read
			s.sinceGrant = 0
		}
		switch typ {
		case wire.FrData:
			e, derr := wire.DecodeData(body)
			if derr != nil {
				return temporal.Element{}, false
			}
			return e, true
		case wire.FrErr:
			return temporal.Element{}, false
		}
	}
}

// Close disconnects.
func (s *Subscriber) Close() error { return s.conn.Close() }

// ResilientSubscriber consumes the merged stream across reconnects: when the
// connection drops (server restart, overflow disconnect, transport fault) it
// redials with backoff and resumes positionally — HELLO SUB FROM <n> — after
// the n elements it has already delivered, so the caller sees each merged
// element exactly once, in order.
type ResilientSubscriber struct {
	addr string
	opts ResilientOptions
	rng  *rand.Rand

	sub        *Subscriber
	received   int
	reconnects int
}

// NewResilientSubscriber prepares a resilient subscriber for addr. The first
// Next call connects.
func NewResilientSubscriber(addr string, opts ResilientOptions) *ResilientSubscriber {
	return &ResilientSubscriber{
		addr: addr,
		opts: opts.withDefaults(),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// Received returns how many merged elements have been delivered so far.
func (rs *ResilientSubscriber) Received() int { return rs.received }

// Reconnects returns how many times the subscription re-established itself.
func (rs *ResilientSubscriber) Reconnects() int { return rs.reconnects }

// Next returns the next merged element; ok is false only once the server has
// stayed unreachable past MaxAttempts consecutive attempts.
func (rs *ResilientSubscriber) Next() (temporal.Element, bool) {
	failed := 0
	for {
		if rs.sub == nil {
			sub, err := subscribeVia(rs.opts.Dial, rs.addr, rs.received, rs.opts.Binary, rs.opts.CreditWindow)
			if err != nil {
				failed++
				if failed >= rs.opts.MaxAttempts {
					return temporal.Element{}, false
				}
				time.Sleep(rs.opts.Backoff.delay(failed, rs.rng))
				continue
			}
			if rs.received > 0 || rs.reconnects > 0 {
				rs.reconnects++
			}
			rs.sub = sub
		}
		if e, ok := rs.sub.Next(); ok {
			failed = 0
			rs.received++
			return e, true
		}
		rs.sub.Close()
		rs.sub = nil
		failed++
		if failed >= rs.opts.MaxAttempts {
			return temporal.Element{}, false
		}
		time.Sleep(rs.opts.Backoff.delay(failed, rs.rng))
	}
}

// Close disconnects; Next may be called again and will reconnect.
func (rs *ResilientSubscriber) Close() error {
	if rs.sub != nil {
		err := rs.sub.Close()
		rs.sub = nil
		return err
	}
	return nil
}
