package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"

	"lmerge/internal/temporal"
)

// Publisher is a client-side publisher connection. It listens for the
// server's fast-forward signals ("FF <t>" lines, Sec. V-D over the wire) in
// the background; FastForward and ShouldSkip let the replica avoid producing
// elements the merge no longer needs.
type Publisher struct {
	conn net.Conn
	w    *bufio.Writer
	id   int
	ff   atomic.Int64
}

// Connect dials the server as a publisher with the given join guarantee
// (use temporal.MinTime for a from-the-start replica).
func Connect(addr string, joinTime temporal.Time) (*Publisher, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Publisher{conn: conn, w: bufio.NewWriter(conn)}
	p.ff.Store(int64(temporal.MinTime))
	fmt.Fprintf(p.w, "HELLO PUB %d\n", int64(joinTime))
	if err := p.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := fmt.Sscanf(line, "OK %d", &p.id); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server refused publisher: %s", strings.TrimSpace(line))
	}
	go p.readSignals(r)
	return p, nil
}

// readSignals consumes server lines after the handshake: fast-forward
// watermarks (monotonically coalesced) and errors (which end the stream).
func (p *Publisher) readSignals(r *bufio.Reader) {
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		var t int64
		if _, err := fmt.Sscanf(line, "FF %d", &t); err == nil {
			for {
				cur := p.ff.Load()
				if t <= cur || p.ff.CompareAndSwap(cur, t) {
					break
				}
			}
		}
	}
}

// FastForward returns the latest fast-forward point the server signalled
// (temporal.MinTime if none).
func (p *Publisher) FastForward() temporal.Time { return temporal.Time(p.ff.Load()) }

// ShouldSkip reports whether e is entirely before the fast-forward point —
// the merged output no longer needs it, so the replica can drop the element
// (and the work of producing it) outright.
func (p *Publisher) ShouldSkip(e temporal.Element) bool {
	ff := p.FastForward()
	if ff == temporal.MinTime {
		return false
	}
	switch e.Kind {
	case temporal.KindInsert:
		return e.Ve <= ff
	case temporal.KindAdjust:
		return temporal.MaxT(e.Ve, e.VOld) <= ff
	}
	return false
}

// ID returns the stream id the server assigned.
func (p *Publisher) ID() int { return p.id }

// Send publishes one element.
func (p *Publisher) Send(e temporal.Element) error {
	line, err := temporal.MarshalElement(e)
	if err != nil {
		return err
	}
	if _, err := p.w.Write(line); err != nil {
		return err
	}
	return p.w.WriteByte('\n')
}

// SendStream publishes a whole prefix and flushes.
func (p *Publisher) SendStream(s temporal.Stream) error {
	for _, e := range s {
		if err := p.Send(e); err != nil {
			return err
		}
	}
	return p.Flush()
}

// Flush pushes buffered elements to the wire.
func (p *Publisher) Flush() error { return p.w.Flush() }

// Close flushes and disconnects (the server detaches the stream).
func (p *Publisher) Close() error {
	p.w.Flush()
	return p.conn.Close()
}

// Subscriber is a client-side subscription to the merged stream.
type Subscriber struct {
	conn net.Conn
	sc   *bufio.Scanner
}

// Subscribe dials the server as a consumer of the merged stream.
func Subscribe(addr string) (*Subscriber, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "HELLO SUB\n"); err != nil {
		conn.Close()
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "OK") {
		conn.Close()
		return nil, fmt.Errorf("server refused subscription")
	}
	return &Subscriber{conn: conn, sc: sc}, nil
}

// Next returns the next merged element; ok is false when the connection
// ends.
func (s *Subscriber) Next() (temporal.Element, bool) {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := temporal.UnmarshalElement(line)
		if err != nil {
			return temporal.Element{}, false
		}
		return e, true
	}
	return temporal.Element{}, false
}

// Close disconnects.
func (s *Subscriber) Close() error { return s.conn.Close() }
