package server

import (
	"bufio"
	"io"
	"net"
	"time"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

// Server side of the binary wire protocol v2 (internal/wire, DESIGN.md §14).
// The listener stays protocol-agnostic: handle() peeks the first byte and
// routes 'H' (text "HELLO") to the v1 path and the v2 magic here. Publishers
// look like the text path with frames instead of lines; subscribers are
// where v2 earns its keep — encode-once broadcast blocks shared by
// reference, credit-based backpressure, and pipelined handshake resume.

// serveBinary negotiates the preamble (already sniffed by handle) and
// dispatches on the hello frame. r is positioned at the preamble.
func (s *Server) serveBinary(conn net.Conn, r *bufio.Reader) {
	var pre [wire.PreambleLen]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return
	}
	if err := wire.CheckPreamble(pre[:]); err != nil {
		conn.Write(wire.AppendErr(nil, err.Error()))
		return
	}
	fr := wire.NewReader(r)
	typ, body, err := fr.Next()
	if err != nil {
		return
	}
	switch typ {
	case wire.FrHelloPub:
		joinTime, perr := wire.ParseHelloPub(body)
		if perr != nil {
			conn.Write(wire.AppendErr(nil, perr.Error()))
			return
		}
		s.serveBinaryPublisher(conn, fr, joinTime)
	case wire.FrHelloSub:
		from, credit, perr := wire.ParseHelloSub(body)
		if perr != nil {
			conn.Write(wire.AppendErr(nil, perr.Error()))
			return
		}
		conn.SetReadDeadline(time.Time{}) // credit grants have no cadence
		s.serveBinarySubscriber(conn, fr, from, credit)
	default:
		conn.Write(wire.AppendErr(nil, "expected HELLO frame"))
	}
}

// serveBinaryPublisher mirrors the text publisher loop over frames: DATA
// frames accumulate into batches flushed at the same boundaries (size,
// stable punctuation, drained input); FF/DETACH/ACK control flows back as
// frames through the same pubState the supervisor uses.
func (s *Server) serveBinaryPublisher(conn net.Conn, fr *wire.Reader, joinTime temporal.Time) {
	h, stable, ok := s.attachPublisher(conn, joinTime, true)
	if !ok {
		return
	}
	defer h.finish()
	h.ps.sendOK(int64(h.id), stable)
	for {
		if d := s.opts.ReadTimeout; d > 0 {
			conn.SetReadDeadline(time.Now().Add(d))
		}
		typ, body, err := fr.Next()
		if err != nil {
			// Transport end or a frame that failed its checksum: the
			// connection is poisoned either way. The deferred finish merges
			// whatever was cleanly parsed; the resilient client reconnects
			// and fast-forwards past it.
			return
		}
		switch typ {
		case wire.FrData:
			e, derr := wire.DecodeData(body)
			if derr != nil {
				h.flush()
				h.ps.sendErr(derr)
				return
			}
			if perr := h.add(e, fr.Buffered() > 0); perr != nil {
				h.ps.sendErr(perr)
				return
			}
		default:
			// Unknown frame types are ignored for forward compatibility.
		}
	}
}

// binSub is one registered binary subscriber: its credit queue plus the
// connection (so shutdown can unblock a writer mid-write).
type binSub struct {
	q    *blockQueue
	conn net.Conn
}

// serveBinarySubscriber is the v2 fan-out path. The pipelined handshake
// carried position and initial credit; the reply, history catch-up, and live
// stream flow back without further round trips. Live delivery pops spans of
// shared blocks (encoded once in broadcast) under the client's byte credit;
// an exhausted credit pauses this writer — other subscribers are untouched —
// until the grant arrives or the eviction deadline fires.
func (s *Server) serveBinarySubscriber(conn net.Conn, fr *wire.Reader, from int, credit int64) {
	q := newBlockQueue(credit, s.wireTel)
	s.outMu.Lock()
	if s.subsClosed {
		s.outMu.Unlock()
		return
	}
	id := s.nextSub
	s.nextSub++
	if from > len(s.backlog) {
		from = len(s.backlog)
	}
	// Element structs share payloads, so this snapshot is cheap; everything
	// emitted after registration reaches the queue as shared spans, so
	// history + queue is exactly the merged stream from `from` on.
	history := append(temporal.Stream(nil), s.backlog[from:]...)
	s.binSubs[id] = &binSub{q: q, conn: conn}
	s.outMu.Unlock()

	evicted := false
	defer func() {
		s.outMu.Lock()
		if sub, ok := s.binSubs[id]; ok {
			sub.q.close()
			delete(s.binSubs, id)
		}
		s.outMu.Unlock()
		if evicted {
			s.wireTel.Evicted()
			s.reg.Trace().Record(obs.Event{Kind: obs.EventSubscriberDrop, Node: "server", Stream: id, Aux: 1})
		}
	}()

	// Credit reader: the only frames a subscriber sends after the handshake
	// are CREDIT grants. A read error (client gone) closes the queue, which
	// wakes the writer.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			typ, body, err := fr.Next()
			if err != nil {
				q.close()
				return
			}
			if typ == wire.FrCredit {
				if n, perr := wire.ParseCredit(body); perr == nil {
					q.grant(n)
				}
			}
		}
	}()
	defer func() {
		conn.Close()
		<-readerDone
	}()

	// writeStall bounds every socket write: a peer that stops reading while
	// credit remains outstanding is caught by the same deadline that backstops
	// credit stalls. The deadline is re-armed lazily — only once the armed one
	// has burned through half its window — because arming is not free (a
	// timer per SetWriteDeadline on some transports, a syscall-path touch on
	// others) and the hot path writes one small chunk per merged element. A
	// write can therefore see as little as writeStall/2 of headroom, which
	// still bounds the stall.
	writeStall := s.opts.CreditDeadline
	var armed time.Time
	arm := func() {
		if now := time.Now(); now.Sub(armed) > writeStall/2 {
			armed = now
			conn.SetWriteDeadline(now.Add(writeStall))
		}
	}
	w := bufio.NewWriterSize(conn, wire.BlockCap)
	writeAll := func(p []byte) bool {
		arm()
		_, err := w.Write(p)
		return err == nil
	}
	flush := func() bool {
		arm()
		return w.Flush() == nil
	}

	// The OK reply must flush now — the first data pop may be far away.
	if !writeAll(wire.AppendOK(nil, 0, s.be.MaxStable())) || !flush() {
		return
	}
	if len(history) > 0 {
		// Catch-up is per-subscriber (cold path): encode the snapshot as one
		// private block and queue it ahead of every live span, so the credit
		// machinery covers history and live traffic uniformly.
		var hbuf []byte
		for _, e := range history {
			hbuf = wire.AppendData(hbuf, e)
		}
		s.wireTel.History(len(hbuf))
		blk := wire.NewBlockFromBytes(hbuf)
		q.pushHead(wire.Span{Blk: blk, Start: 0, End: len(hbuf), Elems: len(history)})
		blk.Release() // the queue entry's reference keeps it alive
	}
	for {
		buf, wref, done, frames, st := q.pop(s.opts.CreditDeadline)
		switch st {
		case popData:
			ok := writeAll(buf)
			wref.Release()
			if done != nil {
				done.Release()
			}
			if !ok {
				return
			}
			s.wireTel.Shared(len(buf), frames)
			// Flush before any wait, not just on an empty queue: when the
			// remaining credit is short of the next frame, these buffered
			// bytes are exactly what the client needs to see before it can
			// grant more.
			if !q.sendable() && !flush() {
				return
			}
		case popEvicted:
			evicted = true
			return
		default: // popClosed
			flush()
			return
		}
	}
}
