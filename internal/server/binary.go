package server

import (
	"bufio"
	"io"
	"net"
	"time"

	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

// Server side of the binary wire protocol v2 (internal/wire, DESIGN.md §14).
// The listener stays protocol-agnostic: handle() peeks the first byte and
// routes 'H' (text "HELLO") to the v1 path and the v2 magic here. Publishers
// look like the text path with frames instead of lines; subscribers are
// where v2 earns its keep — encode-once broadcast blocks shared by
// reference, credit-based backpressure, and pipelined handshake resume.

// serveBinary negotiates the preamble (already sniffed by handle) and
// dispatches on the hello frame. r is positioned at the preamble. The
// subscriber branch transfers connection ownership to the fan-out loop;
// every other path closes the connection here.
func (s *Server) serveBinary(conn net.Conn, r *bufio.Reader) {
	owned := true
	defer func() {
		if owned {
			conn.Close()
		}
	}()
	var pre [wire.PreambleLen]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return
	}
	if err := wire.CheckPreamble(pre[:]); err != nil {
		conn.Write(wire.AppendErr(nil, err.Error()))
		return
	}
	fr := wire.NewReader(r)
	typ, body, err := fr.Next()
	if err != nil {
		return
	}
	switch typ {
	case wire.FrHelloPub:
		joinTime, perr := wire.ParseHelloPub(body)
		if perr != nil {
			conn.Write(wire.AppendErr(nil, perr.Error()))
			return
		}
		s.serveBinaryPublisher(conn, fr, joinTime)
	case wire.FrHelloSub:
		from, credit, perr := wire.ParseHelloSub(body)
		if perr != nil {
			conn.Write(wire.AppendErr(nil, perr.Error()))
			return
		}
		conn.SetReadDeadline(time.Time{}) // credit grants have no cadence
		owned = false
		s.serveBinarySubscriber(conn, r, from, credit)
	default:
		conn.Write(wire.AppendErr(nil, "expected HELLO frame"))
	}
}

// serveBinaryPublisher mirrors the text publisher loop over frames: DATA
// frames accumulate into batches flushed at the same boundaries (size,
// stable punctuation, drained input); FF/DETACH/ACK control flows back as
// frames through the same pubState the supervisor uses.
func (s *Server) serveBinaryPublisher(conn net.Conn, fr *wire.Reader, joinTime temporal.Time) {
	h, stable, ok := s.attachPublisher(conn, joinTime, true)
	if !ok {
		return
	}
	defer h.finish()
	h.ps.sendOK(int64(h.id), stable)
	for {
		if d := s.opts.ReadTimeout; d > 0 {
			conn.SetReadDeadline(time.Now().Add(d))
		}
		typ, body, err := fr.Next()
		if err != nil {
			// Transport end or a frame that failed its checksum: the
			// connection is poisoned either way. The deferred finish merges
			// whatever was cleanly parsed; the resilient client reconnects
			// and fast-forwards past it.
			return
		}
		switch typ {
		case wire.FrData:
			e, derr := wire.DecodeData(body)
			if derr != nil {
				h.flush()
				h.ps.sendErr(derr)
				return
			}
			if perr := h.add(e, fr.Buffered() > 0); perr != nil {
				h.ps.sendErr(perr)
				return
			}
		default:
			// Unknown frame types are ignored for forward compatibility.
		}
	}
}

// serveBinarySubscriber is the v2 fan-out path. The pipelined handshake
// carried position and initial credit; the reply and history catch-up are
// written here, then the connection is handed to the event-loop delivery
// plane (fanloop.go) and this handler returns — a registered subscriber
// costs a cursor and a csub record, not a goroutine. Live delivery cuts
// frames from the shared broadcast log under the client's byte credit; an
// exhausted credit stalls only that subscriber until a grant arrives or the
// eviction deadline fires.
func (s *Server) serveBinarySubscriber(conn net.Conn, r *bufio.Reader, from int, credit int64) {
	c := &csub{conn: conn, credit: min64(credit, maxCredit)}
	s.outMu.Lock()
	if s.subsClosed {
		s.outMu.Unlock()
		conn.Close()
		return
	}
	c.id = s.nextSub
	s.nextSub++
	if from > len(s.backlog) {
		from = len(s.backlog)
	}
	// Elements share payloads, so this slice of the append-only backlog is
	// stable; everything emitted after the cursor attaches lands in the
	// shared log behind it, so history + cursor is exactly the merged stream
	// from `from` on.
	history := s.backlog[from:]
	c.cur = s.blog.Attach()
	if !s.fl.register(c) {
		s.blog.Detach(c.cur)
		s.outMu.Unlock()
		conn.Close()
		return
	}
	s.outMu.Unlock()

	// The OK reply goes out now — the handler still owns the connection until
	// activate, and the first delivery round may be far away.
	conn.SetWriteDeadline(time.Now().Add(s.opts.CreditDeadline))
	if _, err := conn.Write(wire.AppendOK(nil, 0, s.be.MaxStable())); err != nil {
		s.fl.drop(c)
		return
	}
	conn.SetWriteDeadline(time.Time{})
	if len(history) > 0 {
		// Catch-up is per-subscriber (cold path): encode the snapshot once
		// into a private buffer served ahead of the shared log under the same
		// credit, freed when drained.
		var hbuf []byte
		for _, e := range history {
			hbuf = wire.AppendData(hbuf, e)
		}
		s.wireTel.History(len(hbuf))
		c.hist = hbuf
	}
	// Whatever the handshake buffer read past the HELLO frame (a pipelined
	// CREDIT, typically) moves to a small private slice so the on-demand
	// credit reader can resume from it — and the 64 KiB handshake buffer
	// becomes garbage the moment this handler returns.
	if n := r.Buffered(); n > 0 {
		if b, err := r.Peek(n); err == nil {
			c.leftover = append([]byte(nil), b...)
			r.Discard(n)
		}
	}
	s.fl.activate(c)
}
