package server

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

// White-box battery for the event-loop delivery plane (fanloop.go,
// DESIGN.md §15): the server-side halves of the cursor-plane invariants —
// subscribers cost no goroutine at rest, eviction fires at the deadline and
// never before, the credit ledger never goes negative under live grant
// traffic, retention is bounded by eviction, and concurrent attach/detach
// churn still delivers every subscriber the exact merged suffix it asked
// for.

// settleGoroutines waits for the goroutine count to stop moving (handler
// goroutines returning, workers parking) and returns it.
func settleGoroutines(t *testing.T) int {
	t.Helper()
	last, stable := runtime.NumGoroutine(), 0
	for i := 0; i < 400; i++ {
		time.Sleep(5 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last {
			stable++
			if stable >= 3 {
				return n
			}
		} else {
			stable = 0
		}
		last = n
	}
	return last
}

// rawBinarySub dials a v2 subscriber handshake with an explicit credit and
// returns the connection positioned after the server's OK frame.
func rawBinarySub(t *testing.T, addr string, from int, credit int64) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = wire.AppendPreamble(buf)
	buf = wire.AppendHelloSub(buf, from, credit)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	var hdr [wire.FrameHeader]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("reading OK header: %v", err)
	}
	fl, ok := wire.FrameSize(hdr[:])
	if !ok {
		t.Fatalf("implausible OK frame header % x", hdr)
	}
	rest := make([]byte, fl-wire.FrameHeader)
	if _, err := io.ReadFull(conn, rest); err != nil {
		t.Fatalf("reading OK body: %v", err)
	}
	conn.SetReadDeadline(time.Time{})
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestFanLoopIdleSubscribersCostNoGoroutines: attaching many idle binary
// subscribers grows the server by the worker pool once, then not at all —
// the O(worker pool) half of the acceptance criteria, asserted in-process.
func TestFanLoopIdleSubscribersCostNoGoroutines(t *testing.T) {
	s := newTestServer(t)
	// First subscriber starts the worker pool + sweeper.
	rawBinarySub(t, s.Addr(), 0, 1<<20)
	base := settleGoroutines(t)
	const extra = 64
	for i := 0; i < extra; i++ {
		rawBinarySub(t, s.Addr(), 0, 1<<20)
	}
	if got := s.Subscribers(); got != extra+1 {
		t.Fatalf("registered %d subscribers, want %d", got, extra+1)
	}
	after := settleGoroutines(t)
	if after > base+2 {
		t.Fatalf("%d idle subscribers grew goroutines %d → %d; delivery must be O(worker pool)", extra, base, after)
	}
	ws := s.WireStats()
	if ws.FanoutWorkers != int64(s.opts.FanoutWorkers) {
		t.Fatalf("worker gauge %d, want %d", ws.FanoutWorkers, s.opts.FanoutWorkers)
	}
	if ws.BinSubscribers != extra+1 {
		t.Fatalf("subscriber gauge %d, want %d", ws.BinSubscribers, extra+1)
	}
}

// TestFanLoopEvictionDeadline: a credit-starved subscriber is evicted by the
// sweeper — never before the deadline, and reasonably soon after it — while
// a healthy subscriber on the same server is untouched.
func TestFanLoopEvictionDeadline(t *testing.T) {
	const deadline = 150 * time.Millisecond
	s, err := NewWithOptions("127.0.0.1:0", Options{Case: core.CaseR3, FeedbackLag: -1, CreditDeadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	starved := rawBinarySub(t, s.Addr(), 0, 1) // 1 byte of credit: stalls on the first frame
	healthy, err := SubscribeBinary(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	sc := serverScript(77)
	t0 := time.Now()
	go publishScript(t, s.Addr(), sc, 600, true)
	merged := collect(t, healthy)
	assertTDB(t, merged, sc.TDB(), "healthy subscriber")

	// The starved connection must be closed by the eviction backstop.
	starved.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := starved.Read(buf); err != nil {
			break
		}
	}
	elapsed := time.Since(t0)
	if elapsed < deadline {
		t.Fatalf("starved subscriber dropped after %v — before the %v deadline", elapsed, deadline)
	}
	ws := s.WireStats()
	if ws.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ws.Evictions)
	}
	if ws.CreditStalls < 1 {
		t.Fatalf("credit stalls = %d, want >= 1", ws.CreditStalls)
	}
	if ws.BinSubscribers != 1 { // the healthy one remains
		t.Fatalf("subscriber gauge %d after eviction, want 1", ws.BinSubscribers)
	}
}

// TestFanLoopCreditNeverNegative: a tiny credit window forces constant
// stall/grant cycling; a sampler races the workers asserting the ledger
// invariant while delivery still ends exact.
func TestFanLoopCreditNeverNegative(t *testing.T) {
	s := newTestServer(t)
	sub, err := subscribeVia(defaultDial, s.Addr(), 0, true, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.fl.mu.Lock()
			for _, c := range s.fl.subs {
				if c.credit < 0 {
					s.fl.mu.Unlock()
					t.Errorf("subscriber %d credit went negative: %d", c.id, c.credit)
					return
				}
			}
			s.fl.mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	sc := serverScript(78)
	go publishScript(t, s.Addr(), sc, 601, true)
	merged := collect(t, sub)
	close(stop)
	sampler.Wait()
	assertTDB(t, merged, sc.TDB(), "tiny-window subscriber")
	if ws := s.WireStats(); ws.CreditGranted < ws.SharedBytes {
		t.Fatalf("delivered %d shared bytes against only %d granted", ws.SharedBytes, ws.CreditGranted)
	}
}

// TestFanLoopRetentionBoundedByEviction: a stalled laggard pins the
// broadcast log's window; its eviction releases everything, so retention is
// bounded by CreditDeadline, not by the laggard's lifetime.
func TestFanLoopRetentionBoundedByEviction(t *testing.T) {
	const deadline = 200 * time.Millisecond
	s, err := NewWithOptions("127.0.0.1:0", Options{Case: core.CaseR3, FeedbackLag: -1, CreditDeadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	starved := rawBinarySub(t, s.Addr(), 0, 1)

	sc := serverScript(79)
	publishScript(t, s.Addr(), sc, 602, true)

	// Publishing returns once the stream is sent; emission is asynchronous,
	// so wait for the log to see frames before asserting retention.
	pinnedBy := time.Now().Add(5 * time.Second)
	for s.WireStats().RetainedBytes == 0 {
		if time.Now().After(pinnedBy) {
			t.Fatal("laggard attached but nothing retained — cursors are not pinning the log")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Wait out the eviction, then the window must collapse to at most the
	// open block.
	buf := make([]byte, 4096)
	starved.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		if _, err := starved.Read(buf); err != nil {
			break
		}
	}
	deadlineAt := time.Now().Add(5 * time.Second)
	for {
		if b := s.blog.RetainedBytes(); b <= wire.BlockCap {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatalf("retained %d bytes long after the laggard's eviction", s.blog.RetainedBytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFanLoopChurnExactSuffixes: subscribers attach at random positions
// mid-stream while others detach; every survivor receives exactly the
// merged suffix it asked for — no skip, no double-read — element for
// element against a reference subscriber.
func TestFanLoopChurnExactSuffixes(t *testing.T) {
	s := newTestServer(t)
	ref, err := SubscribeBinary(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	sc := serverScript(80)
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				publishScript(t, s.Addr(), sc, int64(620+i), true)
			}(i)
		}
		wg.Wait()
	}()

	rng := rand.New(rand.NewSource(81))
	type result struct {
		from   int
		stream temporal.Stream
		err    error
	}
	results := make(chan result, 16)
	var churn sync.WaitGroup
	for i := 0; i < 16; i++ {
		churn.Add(1)
		go func(i int, from int, abandon bool) {
			defer churn.Done()
			sub, err := subscribeVia(defaultDial, s.Addr(), from, true, 4096)
			if err != nil {
				results <- result{err: fmt.Errorf("sub %d: %w", i, err)}
				return
			}
			defer sub.Close()
			if abandon {
				// Churn: read a few elements, then vanish mid-stream.
				for j := 0; j < 5; j++ {
					if _, ok := sub.Next(); !ok {
						break
					}
				}
				results <- result{from: -1}
				return
			}
			var got temporal.Stream
			for {
				e, ok := sub.Next()
				if !ok {
					results <- result{err: fmt.Errorf("sub %d: stream ended early", i)}
					return
				}
				got = append(got, e)
				if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
					results <- result{from: from, stream: got}
					return
				}
			}
		}(i, rng.Intn(40), i%3 == 0)
		time.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
	}

	full := collect(t, ref)
	churn.Wait()
	<-pubDone
	assertTDB(t, full, sc.TDB(), "reference subscriber")

	for i := 0; i < 16; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.from < 0 {
			continue // abandoned mid-stream by design
		}
		want := full[r.from:]
		if len(r.stream) != len(want) {
			t.Fatalf("from=%d: got %d elements, want %d", r.from, len(r.stream), len(want))
		}
		for j := range want {
			if r.stream[j] != want[j] {
				t.Fatalf("from=%d: element %d diverges: %+v != %+v", r.from, j, r.stream[j], want[j])
			}
		}
	}

	// Every abandoned and finished subscriber eventually unregisters and the
	// retention window drains behind the survivors.
	deadlineAt := time.Now().Add(10 * time.Second)
	for s.fl.subscribers() > 1 { // the reference may still be attached
		if time.Now().After(deadlineAt) {
			t.Fatalf("%d subscribers still registered after churn", s.fl.subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
