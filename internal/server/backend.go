package server

import (
	"sync"
	"sync/atomic"

	"lmerge/internal/core"
	"lmerge/internal/obs"
	"lmerge/internal/partition"
	"lmerge/internal/temporal"
)

// backend is the merge engine behind the server: the classic single operator
// or the keyed scale-out pool (Options.Partitions). Implementations are
// internally synchronised — the server never holds its own locks across a
// backend call, so a backend may block (worker queues) or call back into the
// server (broadcast, fast-forward) without lock-ordering hazards.
type backend interface {
	Attach(joinTime temporal.Time) core.StreamID
	Detach(id core.StreamID)
	ProcessBatch(id core.StreamID, els []temporal.Element) error
	// MaxStable is safe from any goroutine without waiting on merge work
	// (both implementations keep it in an atomic), so the straggler
	// supervisor can read it while holding server state locks.
	MaxStable() temporal.Time
	Stats() core.Stats
	// PartitionStats returns per-partition load gauges; nil for the single
	// backend.
	PartitionStats() []partition.PartitionStat
	// SizeBytes estimates the merge state footprint. It walks the merge
	// index (and, partitioned, round-trips the worker queues), so callers
	// keep it on cold paths: stats queries and periodic logs.
	SizeBytes() int
	Close() error
}

// singleBackend adapts one core.Operator to the backend interface, supplying
// the serialisation the server lock used to provide and tracking the stable
// point atomically so supervision never orders against the merge path.
type singleBackend struct {
	mu        sync.Mutex
	op        *core.Operator
	maxStable atomic.Int64
}

func newSingleBackend(c core.Case, emit core.Emit, fb core.FeedbackFunc, lag temporal.Time, tel *obs.Node, wrap func(part int, m core.Merger) core.Merger) *singleBackend {
	b := &singleBackend{}
	b.maxStable.Store(int64(temporal.MinTime))
	wrapped := func(e temporal.Element) {
		if e.Kind == temporal.KindStable {
			b.maxStable.Store(int64(e.T()))
		}
		emit(e)
	}
	var opOpts []core.OperatorOption
	if fb != nil {
		opOpts = append(opOpts, core.WithFeedback(fb, lag))
	}
	if tel != nil {
		opOpts = append(opOpts, core.WithObserver(tel))
	}
	m := core.New(c, wrapped)
	if wrap != nil {
		m = wrap(0, m)
	}
	b.op = core.NewOperator(m, opOpts...)
	return b
}

func (b *singleBackend) Attach(joinTime temporal.Time) core.StreamID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.op.Attach(joinTime)
}

func (b *singleBackend) Detach(id core.StreamID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.op.Detach(id)
}

func (b *singleBackend) ProcessBatch(id core.StreamID, els []temporal.Element) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.op.ProcessBatch(id, els)
}

func (b *singleBackend) MaxStable() temporal.Time {
	return temporal.Time(b.maxStable.Load())
}

func (b *singleBackend) Stats() core.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return *b.op.Merger().Stats()
}

func (b *singleBackend) PartitionStats() []partition.PartitionStat { return nil }

// Snapshot returns the merger's checkpoint stream (durability tier), or
// ok=false when the algorithm cannot snapshot. The backend lock makes the cut
// exact: no ProcessBatch is mid-flight while it runs.
func (b *singleBackend) Snapshot() (temporal.Stream, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	sn, ok := b.op.Merger().(core.Snapshotter)
	if !ok {
		return nil, false
	}
	return sn.Snapshot(), true
}

func (b *singleBackend) SizeBytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.op.Merger().SizeBytes()
}

func (b *singleBackend) Close() error { return nil }
