package server

import (
	"sync"
	"time"

	"lmerge/internal/obs"
	"lmerge/internal/wire"
)

// maxCredit caps a subscriber's accumulated credit so a misbehaving client
// spamming grants cannot overflow the accounting.
const maxCredit = int64(1) << 40

// blockQueue is a per-binary-subscriber queue of spans into shared encoded
// blocks (DESIGN.md §14): the merge's emit path pushes the span each element
// was encoded into exactly once, and the subscriber's writer goroutine pops
// byte chunks to copy to the socket. Unlike the text path's subQueue it
// never drops on overflow — queue entries are references into blocks that
// are alive anyway, so a slow consumer costs O(blocks outstanding) entries,
// not element copies. Backpressure is credit-based instead: pop sends only
// bytes covered by the client's granted credit, pausing (not disconnecting)
// when credit runs out, with the eviction deadline as the slow-consumer
// backstop.
//
// Reference discipline: push/pushHead retain the span's block once per queue
// entry; that reference is released exactly once — by pop's caller when the
// entry is fully written, or by close/evict for entries still pending.
// pop additionally retains the block around the socket write so a concurrent
// close can never recycle bytes mid-write.
type blockQueue struct {
	mu      sync.Mutex
	spans   []wire.Span
	head    int // spans[head:] are pending
	cursor  int // bytes of spans[head] already consumed (relative to Start)
	credit  int64
	closed  bool
	evicted bool
	// stallStart is when the writer first found credit short of the next
	// frame; cleared on progress. The eviction deadline counts from it.
	stallStart time.Time
	sig        chan struct{} // 1-buffered wakeup for the single writer
	tel        *obs.Wire
}

func newBlockQueue(initialCredit int64, tel *obs.Wire) *blockQueue {
	q := &blockQueue{sig: make(chan struct{}, 1), tel: tel}
	if initialCredit > 0 {
		q.credit = min64(initialCredit, maxCredit)
		tel.CreditGranted(q.credit)
	}
	return q
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (q *blockQueue) signal() {
	select {
	case q.sig <- struct{}{}:
	default:
	}
}

// push appends one span, coalescing with the previous entry when contiguous
// in the same block (a lagging subscriber holds ~one entry per block). It
// reports false when the queue is closed — the caller unregisters the
// subscriber.
func (q *blockQueue) push(sp wire.Span) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if n := len(q.spans); n > q.head {
		if last := &q.spans[n-1]; last.Blk == sp.Blk && last.End == sp.Start {
			last.End = sp.End
			last.Elems += sp.Elems
			q.signal()
			q.mu.Unlock()
			return true
		}
	}
	sp.Blk.Retain()
	q.spans = append(q.spans, sp)
	q.signal()
	q.mu.Unlock()
	return true
}

// pushHead inserts a span before every pending entry: the subscriber's
// history catch-up block, queued by the writer itself before it consumes
// anything (live spans pushed during the catch-up encode keep their order
// behind it).
func (q *blockQueue) pushHead(sp wire.Span) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	sp.Blk.Retain()
	q.spans = append(q.spans, wire.Span{})
	copy(q.spans[q.head+1:], q.spans[q.head:])
	q.spans[q.head] = sp
	q.signal()
	q.mu.Unlock()
	return true
}

// grant adds client-granted credit. Grants are non-negative by protocol
// construction and the total is capped, so credit stays in [0, maxCredit].
func (q *blockQueue) grant(n int64) {
	if n <= 0 {
		return
	}
	q.mu.Lock()
	q.credit = min64(q.credit+n, maxCredit)
	q.tel.CreditGranted(n)
	q.signal()
	q.mu.Unlock()
}

// creditNow reports the remaining credit (tests assert it never goes
// negative).
func (q *blockQueue) creditNow() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.credit
}

// sendable reports whether the writer could pop another chunk right now:
// data is pending and the granted credit covers its next frame. The
// subscriber writer must flush its buffered socket writes whenever this is
// false — pop is about to block on a push or a credit grant, and bytes
// sitting in the bufio writer would deadlock the credit loop (the client
// cannot grant credit for frames it never received).
func (q *blockQueue) sendable() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.head == len(q.spans) {
		return false
	}
	sp := &q.spans[q.head]
	fl, ok := wire.FrameSize(sp.Blk.Data()[sp.Start+q.cursor : sp.End])
	return ok && int64(fl) <= q.credit
}

// pending reports queued-but-unsent bytes (tests).
func (q *blockQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := -q.cursor
	for _, sp := range q.spans[q.head:] {
		n += sp.Len()
	}
	return n
}

// close stops the queue and releases every pending entry's block reference.
func (q *blockQueue) close() {
	q.mu.Lock()
	q.shutdownLocked(false)
	q.mu.Unlock()
}

// shutdownLocked is the single close path (normal close or eviction), so
// pending references are released exactly once no matter how close, evict,
// and push race.
func (q *blockQueue) shutdownLocked(evict bool) {
	if q.closed {
		return
	}
	q.closed = true
	q.evicted = evict
	for i := q.head; i < len(q.spans); i++ {
		q.spans[i].Blk.Release()
	}
	q.spans = nil
	q.head, q.cursor = 0, 0
	q.signal()
}

// popStatus reports why pop returned.
type popStatus int

const (
	popData    popStatus = iota // buf holds frames to write
	popClosed                   // queue closed (server shutdown / subscriber gone)
	popEvicted                  // credit stalled past the eviction deadline
)

// pop blocks until frames are sendable under the granted credit, then
// returns a chunk of complete frames from one shared block. wref is the
// writer's reference for the duration of the socket write; done, when
// non-nil, is the queue entry's own reference (the entry was fully
// consumed). The caller must Release both (wref always, done when non-nil)
// after writing. When credit cannot cover the next frame, pop stalls; a
// stall lasting evictAfter evicts the subscriber.
func (q *blockQueue) pop(evictAfter time.Duration) (buf []byte, wref, done *wire.Block, frames int, st popStatus) {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	q.mu.Lock()
	for {
		if q.closed {
			ev := q.evicted
			q.mu.Unlock()
			if ev {
				return nil, nil, nil, 0, popEvicted
			}
			return nil, nil, nil, 0, popClosed
		}
		if q.head == len(q.spans) {
			// Nothing pending: wait for a push or close, no deadline (an idle
			// subscriber is not a slow one).
			q.mu.Unlock()
			<-q.sig
			q.mu.Lock()
			continue
		}
		sp := &q.spans[q.head]
		data := sp.Blk.Data()[sp.Start+q.cursor : sp.End]
		take, nf := 0, 0
		for take < len(data) {
			fl, ok := wire.FrameSize(data[take:])
			if !ok || take+fl > len(data) {
				// Spans hold whole frames by construction; a mismatch here
				// would be memory corruption, not wire damage. Stop rather
				// than send a torn frame.
				break
			}
			if int64(take+fl) > q.credit {
				break
			}
			take += fl
			nf++
		}
		if take > 0 {
			q.credit -= int64(take)
			q.stallStart = time.Time{}
			blk := sp.Blk
			blk.Retain() // writer's reference across the socket write
			q.cursor += take
			var doneBlk *wire.Block
			if sp.Start+q.cursor == sp.End {
				doneBlk = blk // hand the entry's reference to the caller
				q.head++
				q.cursor = 0
				if q.head == len(q.spans) {
					q.spans = q.spans[:0]
					q.head = 0
				}
			}
			q.mu.Unlock()
			return data[:take], blk, doneBlk, nf, popData
		}
		// Data pending but credit short of the next frame: credit-stall.
		if q.stallStart.IsZero() {
			q.stallStart = time.Now()
			q.tel.CreditStalled()
		}
		wait := evictAfter - time.Since(q.stallStart)
		if wait <= 0 {
			q.shutdownLocked(true)
			q.mu.Unlock()
			return nil, nil, nil, 0, popEvicted
		}
		q.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(wait)
		} else {
			timer.Reset(wait)
		}
		select {
		case <-q.sig:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		}
		q.mu.Lock()
	}
}
