package server

import (
	"encoding/json"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"lmerge/internal/gen"
	"lmerge/internal/partition"
	"lmerge/internal/temporal"
)

// TestCrashSoak is the race-enabled seeded crash/recover loop of the CI gate
// (`make crash-soak`): many kill -9 cycles, each with a seed-varied workload,
// crash point, backend shape (single / partitioned+rebalancing), fsync mode,
// and crash-image mutilation (torn WAL tail, corrupted newest checkpoint).
// Every cycle must recover a frontier no older than anything a subscriber
// saw and converge, after full redelivery, to the no-crash oracle. The loop
// closes by checking that the recovery-duration quantiles surface on
// /metrics — the observable the recovery-time writeup in EXPERIMENTS.md
// reads.
func TestCrashSoak(t *testing.T) {
	iters := 10
	if testing.Short() {
		iters = 3
	}
	var recoveryNS []float64
	var lastMetrics []byte
	for i := 0; i < iters; i++ {
		seed := int64(1000 + i*17)
		opts := func(o *Options) {
			o.CheckpointEvery = 15 * time.Millisecond
			o.Fsync = i%3 == 0
			if i%2 == 1 {
				o.Partitions = 3
				o.Rebalance = &partition.RebalanceConfig{}
			}
		}

		sc := gen.NewScript(gen.Config{
			Events: 160, Seed: seed, EventDuration: 60, MaxGap: 8,
			Revisions: 0.4, RemoveProb: 0.2, PayloadBytes: 12,
		})
		stream := sc.Render(gen.RenderOptions{Seed: seed + 1, Disorder: 0.15 + 0.05*float64(i%4), StableFreq: 0.06})

		dir := t.TempDir()
		s := newDurableServer(t, dir, opts)
		p, err := Connect(s.Addr(), temporal.MinTime)
		if err != nil {
			t.Fatal(err)
		}
		// Seed-varied crash point, pushed forward until the prefix carries a
		// stable (otherwise the frontier check is vacuous).
		cut := len(stream) * (30 + (i*13)%45) / 100
		target := temporal.MinTime
		for {
			target = temporal.MinTime
			for _, e := range stream[:cut] {
				if e.Kind == temporal.KindStable {
					target = temporal.MaxT(target, e.T())
				}
			}
			if target != temporal.MinTime || cut >= len(stream) {
				break
			}
			cut++
		}
		if err := p.SendStream(stream[:cut]); err != nil {
			t.Fatal(err)
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		waitStable(t, s, target)
		preStable := s.MaxStable()

		// Crash: raw-byte image, seed-derived mutilation.
		img := copyDataDir(t, dir)
		if tear := (i * 3) % 7; tear > 0 {
			tearNewestWAL(t, img, tear)
		}
		if i%4 == 2 {
			corruptNewestCheckpoint(t, img)
		}
		p.Close()
		s.Close()

		s2 := newDurableServer(t, img, opts)
		if got := s2.MaxStable(); got < preStable {
			t.Fatalf("iter %d: recovered frontier %d regressed past pre-crash stable %d",
				i, int64(got), int64(preStable))
		}
		d := s2.Durability()
		if d.Recoveries != 1 || d.RecoveryLastNS <= 0 {
			t.Fatalf("iter %d: recovery not counted: %+v", i, d)
		}
		recoveryNS = append(recoveryNS, float64(d.RecoveryLastNS))

		p2, err := Connect(s2.Addr(), temporal.MinTime)
		if err != nil {
			t.Fatal(err)
		}
		if err := p2.SendStream(stream); err != nil {
			t.Fatal(err)
		}
		waitStable(t, s2, temporal.Infinity)
		p2.Close()

		sub, err := Subscribe(s2.Addr())
		if err != nil {
			t.Fatal(err)
		}
		merged := collect(t, sub)
		sub.Close()
		got, err := temporal.Reconstitute(merged)
		if err != nil {
			t.Fatalf("iter %d: recovered output invalid: %v", i, err)
		}
		if !got.Equal(sc.TDB()) {
			t.Fatalf("iter %d: TDB diverged from no-crash oracle", i)
		}

		rec := httptest.NewRecorder()
		s2.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		lastMetrics = rec.Body.Bytes()
		s2.Close()
	}

	// Recovery-duration quantiles: visible in-process and on /metrics.
	sort.Float64s(recoveryNS)
	p50 := recoveryNS[len(recoveryNS)/2]
	t.Logf("crash-soak: %d recoveries, p50=%.2fms max=%.2fms",
		len(recoveryNS), p50/1e6, recoveryNS[len(recoveryNS)-1]/1e6)
	var metrics struct {
		Service struct {
			Durability *struct {
				Recoveries    int64   `json:"recoveries"`
				RecoveryP50NS float64 `json:"recovery_p50_ns"`
			} `json:"durability"`
		} `json:"service"`
	}
	if err := json.Unmarshal(lastMetrics, &metrics); err != nil {
		t.Fatalf("bad /metrics payload: %v", err)
	}
	dm := metrics.Service.Durability
	if dm == nil || dm.Recoveries != 1 || dm.RecoveryP50NS <= 0 {
		t.Fatalf("/metrics durability block missing recovery quantiles: %s", lastMetrics)
	}
}
