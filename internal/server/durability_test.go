package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/partition"
	"lmerge/internal/temporal"
)

// copyDataDir snapshots a live data directory's bytes into a fresh directory
// — the filesystem image a kill -9 would leave (possibly mid-record: the
// recovery path's checksum truncation owns that).
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func newDurableServer(t *testing.T, dir string, extra func(*Options)) *Server {
	t.Helper()
	opts := Options{Case: core.CaseR3, FeedbackLag: -1, DataDir: dir, CheckpointEvery: 50 * time.Millisecond}
	if extra != nil {
		extra(&opts)
	}
	s, err := NewWithOptions("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDataDirRequiresSnapshotCase(t *testing.T) {
	_, err := NewWithOptions("127.0.0.1:0", Options{Case: core.CaseR1, DataDir: t.TempDir()})
	if err == nil {
		t.Fatal("R1 (no Snapshotter) accepted -data-dir")
	}
}

func TestCleanRestartFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sc := serverScript(400)
	s := newDurableServer(t, dir, nil)
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SendStream(sc.Render(gen.RenderOptions{Seed: 401, Disorder: 0.2, StableFreq: 0.05})); err != nil {
		t.Fatal(err)
	}
	p.Close()
	waitStable(t, s, temporal.Infinity)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A clean shutdown restarts from the final checkpoint alone.
	s2 := newDurableServer(t, dir, nil)
	if got := s2.MaxStable(); got != temporal.Infinity {
		t.Fatalf("recovered stable = %d, want ∞", int64(got))
	}
	if rec := s2.Durability().Recoveries; rec != 1 {
		t.Fatalf("recoveries = %d, want 1", rec)
	}
	sub, err := Subscribe(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	merged := collect(t, sub)
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("recovered backlog invalid: %v", err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("recovered TDB diverged from oracle")
	}
}

func waitStable(t *testing.T, s *Server, want temporal.Time) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.MaxStable() < want {
		if time.Now().After(deadline) {
			t.Fatalf("stable stuck at %d, want %d", int64(s.MaxStable()), int64(want))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// crashRestartCase drives the in-process kill -9 equivalent: deliver a prefix
// mid-stream, snapshot the data directory's raw bytes (the crash image),
// optionally mutilate it, restart from the image, and verify (a) the output
// frontier did not regress past what any subscriber saw, (b) positional FROM
// resume is exact, and (c) full redelivery converges the TDB to the no-crash
// oracle.
func crashRestartCase(t *testing.T, opts func(*Options), corrupt func(t *testing.T, dir string)) {
	dir := t.TempDir()
	sc := serverScript(500)
	stream := sc.Render(gen.RenderOptions{Seed: 501, Disorder: 0.2, StableFreq: 0.05})
	s := newDurableServer(t, dir, opts)

	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver only a prefix — the crash happens mid-stream, before stable(∞).
	cut := len(stream) / 2
	if err := p.SendStream(stream[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// The prefix's own largest stable must surface in the merged output; once
	// it does, read the subscriber up to it. Everything the subscriber holds
	// is, by write-ahead, already in the WAL.
	target := temporal.MinTime
	for _, e := range stream[:cut] {
		if e.Kind == temporal.KindStable {
			target = temporal.MaxT(target, e.T())
		}
	}
	if target == temporal.MinTime {
		t.Fatal("prefix carries no stable; test is vacuous")
	}
	waitStable(t, s, target)
	var prefix temporal.Stream
	seenStable := temporal.MinTime
	for {
		e, ok := sub.Next()
		if !ok {
			t.Fatal("subscriber dropped before the crash point")
		}
		prefix = append(prefix, e)
		if e.Kind == temporal.KindStable {
			seenStable = temporal.MaxT(seenStable, e.T())
			if seenStable >= target {
				break
			}
		}
	}
	sub.Close()

	// The crash image: raw bytes of the data dir at this instant.
	img := copyDataDir(t, dir)
	p.Close()
	s.Close()
	if corrupt != nil {
		corrupt(t, img)
	}

	s2 := newDurableServer(t, img, opts)
	// Satellite: the recovered frontier must not regress past anything a
	// subscriber observed before the crash.
	if got := s2.MaxStable(); got < seenStable {
		t.Fatalf("frontier regressed: recovered %d < delivered stable %d", int64(got), int64(seenStable))
	}
	// Positional resume: FROM len(prefix) must splice exactly.
	resumed, err := subscribeVia(nil, s2.Addr(), len(prefix), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()

	// Redeliver the full stream (resilient-publisher semantics: replay from
	// the top, duplicates absorbed) and finish it.
	p2, err := Connect(s2.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.SendStream(stream); err != nil {
		t.Fatal(err)
	}
	waitStable(t, s2, temporal.Infinity)

	rest := collect(t, resumed)
	combined := append(append(temporal.Stream{}, prefix...), rest...)
	got, err := temporal.Reconstitute(combined)
	if err != nil {
		t.Fatalf("prefix+resume stream invalid: %v", err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("post-recovery TDB diverged from no-crash oracle")
	}
}

func TestCrashRestartMidStream(t *testing.T) {
	crashRestartCase(t, nil, nil)
}

func TestCrashRestartMidStreamPartitioned(t *testing.T) {
	crashRestartCase(t, func(o *Options) {
		o.Partitions = 3
		o.Rebalance = &partition.RebalanceConfig{}
	}, nil)
}

func TestCrashRestartTornFinalRecord(t *testing.T) {
	crashRestartCase(t, nil, func(t *testing.T, dir string) {
		tearNewestWAL(t, dir, 3)
	})
}

func TestCrashRestartPartialCheckpoint(t *testing.T) {
	crashRestartCase(t, nil, func(t *testing.T, dir string) {
		corruptNewestCheckpoint(t, dir)
	})
}

// tearNewestWAL chops n bytes off the newest WAL generation — the torn final
// record a crash mid-write leaves.
func tearNewestWAL(t *testing.T, dir string, n int) {
	t.Helper()
	paths, _ := filepath.Glob(filepath.Join(dir, "wal-*.lmwal"))
	if len(paths) == 0 {
		t.Fatal("no WAL to tear")
	}
	path := paths[len(paths)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < n {
		n = len(data)
	}
	if err := os.WriteFile(path, data[:len(data)-n], 0o644); err != nil {
		t.Fatal(err)
	}
}

// corruptNewestCheckpoint flips bytes in the newest checkpoint so recovery
// must fall back to the previous generation (or to WAL-only replay).
func corruptNewestCheckpoint(t *testing.T, dir string) {
	t.Helper()
	paths, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.lmck"))
	if len(paths) == 0 {
		return // crash image predates the first checkpoint: WAL-only replay
	}
	path := paths[len(paths)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data); i += 7 {
		data[i] ^= '#'
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointPrunesGenerations verifies the retention policy end to end:
// after several checkpoints, old generations are gone but at least two
// checkpoint generations remain for corruption fallback.
func TestCheckpointPrunesGenerations(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, nil)
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sc := serverScript(600)
	if err := p.SendStream(sc.Render(gen.RenderOptions{Seed: 601, Disorder: 0.1, StableFreq: 0.05})); err != nil {
		t.Fatal(err)
	}
	waitStable(t, s, temporal.Infinity)
	for i := 0; i < 4; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.lmck"))
	if len(cks) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(cks))
	}
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.lmwal"))
	if len(wals) > 3 {
		t.Fatalf("retained %d WAL generations, want <= 3", len(wals))
	}
	if s.Durability().Checkpoints < 4 {
		t.Fatalf("checkpoint counter = %d, want >= 4", s.Durability().Checkpoints)
	}
}
