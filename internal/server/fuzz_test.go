package server

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lmerge/internal/temporal"
)

// corruptLine mirrors the chaos harness's corruption shape: a window of the
// line is overwritten with '#' bytes, preserving line framing.
func corruptLine(line string, at, n int) string {
	b := []byte(line)
	for i := at; i < at+n && i < len(b); i++ {
		b[i] = '#'
	}
	return string(b)
}

// FuzzParseFrame feeds arbitrary bytes through the server's wire-protocol
// frame parser: readLine framing followed by the handshake grammar. Invariants:
// never panic, never accept a malformed hello, and every accepted hello
// re-renders to a canonical line that parses back to the same value.
func FuzzParseFrame(f *testing.F) {
	valid := []string{
		"HELLO PUB 42",
		"HELLO PUB -9223372036854775808",
		"HELLO PUB",
		"HELLO SUB",
		"HELLO SUB FROM 0",
		"HELLO SUB FROM 917",
	}
	for _, line := range valid {
		f.Add([]byte(line + "\n"))
		// Chaos-style corruption of valid handshakes.
		f.Add([]byte(corruptLine(line, 2, 3) + "\n"))
		f.Add([]byte(corruptLine(line, 6, 8) + "\n"))
	}
	f.Add([]byte("HELLO SUB FROM -3\n"))
	f.Add([]byte("HELLO PUB 1e5\n"))
	f.Add([]byte("hello sub\n"))
	f.Add([]byte("\r\n"))
	f.Add([]byte(strings.Repeat("HELLO PUB ", 50) + "\n")) // > readLine buffer
	f.Fuzz(func(t *testing.T, data []byte) {
		// A tiny bufio buffer forces the ErrBufferFull reassembly path.
		r := bufio.NewReaderSize(bytes.NewReader(data), 16)
		line, _ := readLine(r)
		if bytes.IndexByte(line, '\n') >= 0 || bytes.HasSuffix(line, []byte("\r")) {
			t.Fatalf("readLine leaked framing bytes: %q", line)
		}
		h, err := parseHello(string(line))
		if err != nil {
			return
		}
		switch h.role {
		case "PUB":
			if h.resumeFrom != 0 {
				t.Fatalf("publisher hello carries resume position: %+v", h)
			}
		case "SUB":
			if h.resumeFrom < 0 {
				t.Fatalf("negative resume position accepted: %+v", h)
			}
			if h.joinTime != 0 && h.joinTime != temporal.MinTime {
				t.Fatalf("subscriber hello carries join time: %+v", h)
			}
		default:
			t.Fatalf("parseHello accepted unknown role: %+v", h)
		}
		// Canonical re-render must round-trip to the same hello.
		var canon string
		if h.role == "PUB" {
			canon = fmt.Sprintf("HELLO PUB %d", int64(h.joinTime))
		} else {
			canon = fmt.Sprintf("HELLO SUB FROM %d", h.resumeFrom)
		}
		h2, err := parseHello(canon)
		if err != nil {
			t.Fatalf("canonical hello %q rejected: %v", canon, err)
		}
		if h.role != h2.role || h2.resumeFrom != h.resumeFrom {
			t.Fatalf("round trip changed hello: %+v -> %+v", h, h2)
		}
		if h.role == "PUB" && h2.joinTime != h.joinTime {
			t.Fatalf("round trip changed join time: %+v -> %+v", h, h2)
		}
	})
}
