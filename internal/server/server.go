// Package server exposes a Logical Merge over TCP: replica query instances
// connect as publishers and push their physical streams as JSON lines;
// consumers connect as subscribers and receive the single merged stream.
// This is the deployment shape of the paper's high-availability application
// (Sec. II-1): n replicas on different machines feeding one LMerge at the
// consumer side, with publishers free to connect, disconnect, and reconnect
// mid-run.
//
// Wire protocol (line-oriented):
//
//	client → server, first line:   HELLO PUB <joinTime>   or   HELLO SUB [FROM <n>]
//	server → client, reply:        OK <streamID> <stable> or   OK SUB
//	publisher lines:               one element per line (temporal wire JSON)
//	server → publisher:            FF <t> fast-forward signals, DETACH <why>,
//	                               ACK once the stream's stable(∞) is merged
//	subscriber lines:              merged elements, one per line
//
// A publisher's disconnect detaches its stream; the merge keeps flowing
// while at least one publisher remains. The <stable> field of the publisher
// handshake is the merged output's current stable point: a reconnecting
// replica may skip every element whose relevance ends at or before it (the
// fast-forward rule of Sec. V-D), which is how re-attach catch-up stays
// cheap. "HELLO SUB FROM <n>" resumes a subscription positionally after the
// first n elements of the merged history.
//
// Fault handling (see DESIGN.md §6): the server supervises publishers with
// per-connection read deadlines and per-publisher progress watermarks; a
// publisher whose watermark trails the merged stable point by more than the
// straggler threshold is force-detached (a "DETACH straggler" line, then the
// connection closes) so state and feedback never accumulate behind a dead or
// lagging replica. Subscribers are fed through per-subscriber buffered
// queues: a slow consumer is disconnected when its queue overflows and can
// resume with FROM, while delivery to everyone else is never stalled.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/durable"
	"lmerge/internal/obs"
	"lmerge/internal/partition"
	"lmerge/internal/spill"
	"lmerge/internal/temporal"
	"lmerge/internal/wire"
)

// Server is a network-facing LMerge.
type Server struct {
	ln   net.Listener
	opts Options
	be   backend // internally synchronised; called outside the server locks

	// reg is the server's telemetry registry (always created): the merge
	// backend reports into the node named "merge" (plus "merge/partN" worker
	// nodes when partitioned), and server-level faults — straggler detaches,
	// subscriber queue overflows — land in the shared event trace. Surfaced
	// over HTTP by MetricsHandler.
	reg *obs.Registry
	tel *obs.Node // the "merge" node (shared with the backend)

	// mu guards publisher state and the closed flag.
	mu       sync.Mutex
	pubs     map[core.StreamID]*pubState // liveness + feedback routing
	pubCount int
	closed   bool
	detached int64 // stragglers force-detached by the supervisor

	// outMu guards the merged-output side: the backlog and subscriber
	// queues. The backend's emit path takes it (from merge processing or,
	// partitioned, from worker goroutines), so it is never held across a
	// backend call.
	outMu      sync.Mutex
	backlog    temporal.Stream   // full merged history, replayed to late subscribers
	subs       map[int]*subQueue // v1 text subscribers (shared marshalled lines)
	nextSub    int
	subsClosed bool
	// blog is the encode-once broadcast log of the binary fan-out path: each
	// emitted element is framed exactly once (under outMu) and every binary
	// subscriber reads it through its own cursor; fl is the event-loop worker
	// pool that drains those cursors (fanloop.go, DESIGN.md §15).
	blog    *wire.BlockLog
	fl      *fanLoop
	wireTel *obs.Wire

	// dur is the persistence tier (nil without Options.DataDir): WAL hooks on
	// the ingestion and emission paths, the checkpoint barrier, and recovery
	// state. See durability.go.
	dur *durability

	// spillers are the out-of-core wrappers around the backend's mergers
	// (empty without Options.MemBudget); spillTel is their shared telemetry
	// and spillTmp a temporary run directory to remove at Close (empty when
	// runs live under DataDir).
	spillers []*spill.Merger
	spillTel *obs.Spill
	spillTmp string

	done chan struct{}
	wg   sync.WaitGroup
}

// pubState is the server-side view of one attached publisher. bin selects
// how control signals reach it: v1 text lines or v2 frames.
type pubState struct {
	conn net.Conn
	bin  bool
	// wmu serialises control writes (FF signals from the merge path, DETACH
	// from the supervisor) so concurrent writers cannot interleave partial
	// lines or frames on the wire. fbuf is the frame scratch it guards.
	wmu  sync.Mutex
	fbuf []byte
	// watermark is the largest stable timestamp this publisher has delivered
	// (its own progress, updated under Server.mu).
	watermark  temporal.Time
	attachedAt time.Time
	// joinTime is the stream's join guarantee, re-logged at WAL rotation so
	// every generation replays standalone.
	joinTime temporal.Time
}

// ctrlWriteTimeout bounds control-line writes (FF, DETACH) so a publisher
// with a full socket buffer can never stall the merge or the supervisor.
const ctrlWriteTimeout = time.Second

// sizeSweepTTL is how long a sharded SizeBytes sweep is served from cache
// (see partition.ShardSizeCache): the stats tick and the /metrics handler
// each poll independently, and an exact sweep costs one control-lane round
// trip per worker.
const sizeSweepTTL = 250 * time.Millisecond

// writeCtrl writes one control line with a bounded deadline.
func (ps *pubState) writeCtrl(format string, args ...any) {
	ps.wmu.Lock()
	defer ps.wmu.Unlock()
	ps.conn.SetWriteDeadline(time.Now().Add(ctrlWriteTimeout))
	fmt.Fprintf(ps.conn, format, args...)
	ps.conn.SetWriteDeadline(time.Time{})
}

// writeFrame builds one control frame in the guarded scratch and writes it
// with a bounded deadline (the v2 counterpart of writeCtrl).
func (ps *pubState) writeFrame(mk func([]byte) []byte) {
	ps.wmu.Lock()
	defer ps.wmu.Unlock()
	ps.fbuf = mk(ps.fbuf[:0])
	ps.conn.SetWriteDeadline(time.Now().Add(ctrlWriteTimeout))
	ps.conn.Write(ps.fbuf)
	ps.conn.SetWriteDeadline(time.Time{})
}

// The send* methods dispatch each control signal to the publisher's protocol,
// so the merge path and the supervisor stay protocol-blind.

func (ps *pubState) sendOK(id int64, stable temporal.Time) {
	if ps.bin {
		ps.writeFrame(func(b []byte) []byte { return wire.AppendOK(b, id, stable) })
		return
	}
	ps.writeCtrl("OK %d %d\n", id, int64(stable))
}

func (ps *pubState) sendFF(t temporal.Time) {
	if ps.bin {
		ps.writeFrame(func(b []byte) []byte { return wire.AppendFF(b, t) })
		return
	}
	ps.writeCtrl("FF %d\n", int64(t))
}

func (ps *pubState) sendDetach(reason string) {
	if ps.bin {
		ps.writeFrame(func(b []byte) []byte { return wire.AppendDetach(b, reason) })
		return
	}
	ps.writeCtrl("DETACH %s\n", reason)
}

func (ps *pubState) sendAck() {
	if ps.bin {
		ps.writeFrame(wire.AppendAck)
		return
	}
	ps.writeCtrl("ACK\n")
}

func (ps *pubState) sendErr(err error) {
	if ps.bin {
		msg := err.Error()
		ps.writeFrame(func(b []byte) []byte { return wire.AppendErr(b, msg) })
		return
	}
	ps.writeCtrl("ERR %v\n", err)
}

// Options configures a server.
type Options struct {
	// Case selects the merge algorithm (default R3).
	Case core.Case
	// FeedbackLag, when >= 0, enables fast-forward feedback to lagging
	// publishers (Sec. V-D over the wire): a publisher whose own progress
	// trails the merged output by more than this many ticks receives an
	// "FF <t>" line and may skip elements that end by t. Negative disables.
	FeedbackLag temporal.Time

	// StragglerLag, when > 0, enables the straggler policy: a publisher
	// whose progress watermark trails the merged output's stable point by
	// more than this many ticks is force-detached so the merge degrades
	// gracefully instead of dragging dead state (and, under the deferred
	// insert policies, a stalled stable point) behind it. The last remaining
	// publisher is never detached.
	StragglerLag temporal.Time
	// StragglerGrace is how long a freshly attached publisher is exempt from
	// the straggler policy — room for a re-attaching replica to catch up
	// (default 500ms).
	StragglerGrace time.Duration
	// SuperviseEvery is the supervision sweep period (default 25ms).
	SuperviseEvery time.Duration
	// ReadTimeout, when > 0, bounds each read from a publisher connection. A
	// publisher that goes silent past the deadline — the half-open TCP
	// signature of a crashed host — is detached. Zero disables.
	ReadTimeout time.Duration
	// SubscriberBuffer is the per-subscriber queue capacity in elements; a
	// text subscriber whose queue overflows is disconnected (it can resume
	// with HELLO SUB FROM <n>). Default 32768. Binary (v2) subscribers are
	// not subject to it: their backpressure is credit-based (see
	// CreditDeadline).
	SubscriberBuffer int
	// CreditDeadline bounds how long a binary subscriber may stay
	// credit-stalled (its granted byte credit short of the next frame) before
	// the slow-consumer backstop evicts it; it also bounds each socket write
	// to a binary subscriber. An exhausted credit pauses that subscriber's
	// writer — nobody else is perturbed — and only the deadline disconnects.
	// Default 15s.
	CreditDeadline time.Duration
	// FanoutWorkers sizes the binary delivery worker pool: the fixed set of
	// goroutines multiplexing every binary subscriber's socket writes
	// (fanloop.go). Started lazily on the first binary subscriber. Default
	// max(2, GOMAXPROCS).
	FanoutWorkers int
	// Partitions, when > 1, selects the keyed scale-out backend: a
	// partition.Sharded pool of that many merger instances, each on its own
	// worker goroutine, fed by payload-hash routing with stables broadcast
	// and outputs reunified at the minimum partition frontier (DESIGN.md
	// §8). 0 or 1 selects the classic single-merger backend.
	Partitions int
	// Rebalance, when non-nil and Partitions > 1, turns on adaptive hot-key
	// repartitioning: the pool samples per-slot routed load and live-migrates
	// routing slots between partition workers when one runs hot (DESIGN.md
	// §11). Zero-valued fields take the partition.RebalanceConfig defaults.
	Rebalance *partition.RebalanceConfig

	// MemBudget, when > 0, bounds the merge state resident in memory (in
	// SizeBytes units, split evenly across partitions): each merger is
	// wrapped in the out-of-core spill layer (internal/spill, DESIGN.md §13),
	// which extracts frozen agreed state into sorted on-disk runs whenever a
	// probe sees the resident footprint above the budget, compacts runs in
	// the background, and replays them on demand (key re-presentation,
	// foreign stables, snapshots). Runs live under DataDir/spill when DataDir
	// is set, else a temporary directory removed at Close. Requires a
	// spill-capable merge case (R3/R4 families, immediate-emission policies).
	MemBudget int

	// DataDir, when non-empty, makes the merge state durable (DESIGN.md §12):
	// publisher batches and merged-output emissions are written to a
	// checksummed WAL before they are acknowledged or delivered, periodic
	// checkpoints serialize the merger's Snapshot() stream (per partition,
	// plus the routing table, when sharded) with atomic rename, and startup
	// recovers from the newest valid checkpoint plus the WAL tail. Requires a
	// snapshot-capable merge case (R3/R4 families).
	DataDir string
	// CheckpointEvery is the background checkpoint period under DataDir
	// (default 2s).
	CheckpointEvery time.Duration
	// Fsync makes every WAL append fsync before returning — durable against
	// power failure, not just process death — at a substantial per-element
	// cost (measured in EXPERIMENTS.md).
	Fsync bool
}

func (o Options) withDefaults() Options {
	if o.StragglerGrace <= 0 {
		o.StragglerGrace = 500 * time.Millisecond
	}
	if o.SuperviseEvery <= 0 {
		o.SuperviseEvery = 25 * time.Millisecond
	}
	if o.SubscriberBuffer <= 0 {
		o.SubscriberBuffer = 32768
	}
	if o.CreditDeadline <= 0 {
		o.CreditDeadline = 15 * time.Second
	}
	if o.FanoutWorkers <= 0 {
		o.FanoutWorkers = runtime.GOMAXPROCS(0)
		if o.FanoutWorkers < 2 {
			o.FanoutWorkers = 2
		}
	}
	return o
}

// New builds a server merging with the given algorithm case, listening on
// addr (e.g. "127.0.0.1:0"). Feedback and the straggler policy are disabled;
// use NewWithOptions to enable them.
func New(addr string, c core.Case) (*Server, error) {
	return NewWithOptions(addr, Options{Case: c, FeedbackLag: -1})
}

// NewWithOptions builds a server with explicit options.
func NewWithOptions(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:      ln,
		opts:    opts.withDefaults(),
		subs:    make(map[int]*subQueue),
		pubs:    make(map[core.StreamID]*pubState),
		done:    make(chan struct{}),
		reg:     obs.NewRegistry(),
		wireTel: &obs.Wire{},
	}
	s.tel = s.reg.Node("merge")
	s.blog = wire.NewBlockLog(s.wireTel)
	s.fl = newFanLoop(s)
	var fb core.FeedbackFunc
	lag := temporal.Time(-1)
	if opts.FeedbackLag >= 0 {
		fb = s.signalFastForward
		lag = opts.FeedbackLag
	}
	// The -mem-budget path: every backend merger is wrapped in the spill
	// layer, the budget split evenly across partitions. Runs live under
	// DataDir/spill (crash-disposable — recovery wipes and restarts from
	// checkpoints, which subsume run content) or a temp dir removed at Close.
	var mkWrap func(part int, m core.Merger) core.Merger
	var wrapErr error
	if opts.MemBudget > 0 {
		spillDir := ""
		if opts.DataDir != "" {
			spillDir = filepath.Join(opts.DataDir, "spill")
		} else {
			d, derr := os.MkdirTemp("", "lmerge-spill-")
			if derr != nil {
				ln.Close()
				return nil, fmt.Errorf("mem-budget run dir: %w", derr)
			}
			spillDir = d
			s.spillTmp = d
		}
		s.spillTel = &obs.Spill{}
		parts := opts.Partitions
		if parts < 1 {
			parts = 1
		}
		per := opts.MemBudget / parts
		if per < 1 {
			per = 1
		}
		mkWrap = func(part int, m core.Merger) core.Merger {
			sp, err := spill.Wrap(m, spill.Config{
				Budget: per,
				Dir:    filepath.Join(spillDir, fmt.Sprintf("part%d", part)),
				Tel:    s.spillTel,
			})
			if err != nil {
				if wrapErr == nil {
					wrapErr = err
				}
				return m
			}
			s.spillers = append(s.spillers, sp)
			return sp
		}
	}
	if opts.Partitions > 1 {
		shOpts := []partition.ShardedOption{
			partition.ShardObserve(s.reg, "merge"),
			// Both the stats tick and /metrics poll SizeBytes; each exact
			// sweep round-trips every worker's control lane, so cap the sweeps
			// instead of paying one per caller.
			partition.ShardSizeCache(sizeSweepTTL),
		}
		if fb != nil {
			shOpts = append(shOpts, partition.ShardFeedback(fb, lag))
		}
		if opts.Rebalance != nil {
			shOpts = append(shOpts, partition.ShardRebalance(*opts.Rebalance))
		}
		if mkWrap != nil {
			shOpts = append(shOpts, partition.ShardWrap(mkWrap))
		}
		s.be = partition.NewSharded(opts.Partitions, func(emit core.Emit) core.Merger {
			return core.New(opts.Case, emit)
		}, s.broadcast, shOpts...)
	} else {
		s.be = newSingleBackend(opts.Case, s.broadcast, fb, lag, s.tel, mkWrap)
	}
	if wrapErr != nil {
		ln.Close()
		s.be.Close()
		s.closeSpill()
		return nil, fmt.Errorf("mem-budget: %w", wrapErr)
	}
	if opts.DataDir != "" {
		// Recovery runs here, before the listener accepts: single-threaded,
		// no publishers or subscribers attached yet.
		if err := s.initDurability(); err != nil {
			ln.Close()
			s.be.Close()
			s.closeSpill()
			return nil, err
		}
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.opts.StragglerLag > 0 {
		s.wg.Add(1)
		go s.supervise()
	}
	return s, nil
}

// signalFastForward runs inside the backend's merge path (single-backend
// processing, or a partitioned worker goroutine); it takes s.mu only for the
// publisher lookup. The write is bounded by ctrlWriteTimeout, so a blocked
// publisher socket cannot stall the merge.
func (s *Server) signalFastForward(f core.Feedback) {
	s.mu.Lock()
	ps, ok := s.pubs[f.Stream]
	s.mu.Unlock()
	if !ok {
		return
	}
	// Best effort; a slow or dead publisher is detached by its own handler.
	ps.sendFF(f.T)
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes subscriber queues, waits for handler
// goroutines to finish, and shuts the merge backend down.
func (s *Server) Close() error {
	err := s.ln.Close()
	first := false
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		first = true
		close(s.done)
		// Wake publisher handlers blocked in a read.
		for _, ps := range s.pubs {
			ps.conn.Close()
		}
	}
	s.mu.Unlock()
	s.outMu.Lock()
	s.subsClosed = true
	for id, q := range s.subs {
		q.close()
		delete(s.subs, id)
	}
	s.outMu.Unlock()
	// Shut the binary delivery plane down: closes every subscriber
	// connection (unblocking workers mid-write and credit readers mid-read)
	// and detaches their cursors; the workers themselves are joined by
	// wg.Wait below.
	s.fl.close()
	s.wg.Wait()
	// Handlers have flushed and detached; a final checkpoint captures the
	// settled state so a clean shutdown restarts from a checkpoint alone.
	if s.dur != nil && first {
		if cerr := s.checkpoint(); err == nil {
			err = cerr
		}
	}
	// The backend can now drain and stop; with the workers gone the spill
	// wrappers' compactors can be stopped and the run storage released (runs
	// are crash-disposable — the final checkpoint above subsumes them).
	if berr := s.be.Close(); err == nil {
		err = berr
	}
	// No emitters or cursors remain (fl.close detached every subscriber):
	// sealing the open block drains the retention window to zero.
	s.blog.Close()
	s.closeSpill()
	if s.dur != nil {
		s.dur.mu.Lock()
		if s.dur.log != nil {
			s.dur.log.Close()
			s.dur.log = nil
		}
		s.dur.mu.Unlock()
	}
	return err
}

// closeSpill stops the spill wrappers (idempotent) and removes a temporary
// run directory.
func (s *Server) closeSpill() {
	for _, sp := range s.spillers {
		sp.Close()
	}
	if s.spillTmp != "" {
		os.RemoveAll(s.spillTmp)
		s.spillTmp = ""
	}
}

// SpillStats returns the out-of-core tier's counters: runs written/merged,
// bytes spilled, unspill traffic, replay-latency quantiles, and the
// resident-bytes gauge. Zero-valued without Options.MemBudget.
func (s *Server) SpillStats() obs.SpillSnapshot { return s.spillTel.Snapshot() }

// Stats returns the merge counters.
func (s *Server) Stats() core.Stats { return s.be.Stats() }

// MaxStable returns the merged output's stable point.
func (s *Server) MaxStable() temporal.Time { return s.be.MaxStable() }

// Partitions returns the number of merge partitions (1 for the single
// backend).
func (s *Server) Partitions() int {
	if sh, ok := s.be.(*partition.Sharded); ok {
		return sh.Partitions()
	}
	return 1
}

// PartitionStats returns per-partition load gauges (queue depth, elements
// processed, stable frontier, frontier lag behind the leading partition), or
// nil when the server runs the single-merger backend.
func (s *Server) PartitionStats() []partition.PartitionStat {
	return s.be.PartitionStats()
}

// Publishers returns the number of attached publishers.
func (s *Server) Publishers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pubCount
}

// StragglersDetached returns how many publishers the supervisor has
// force-detached for lagging behind the merged stable point.
func (s *Server) StragglersDetached() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detached
}

// Subscribers returns the number of connected subscribers (text + binary).
func (s *Server) Subscribers() int {
	s.outMu.Lock()
	n := len(s.subs)
	s.outMu.Unlock()
	return n + s.fl.subscribers()
}

// WireStats returns the binary fan-out counters: encode-once work (frames,
// blocks), write-many delivery (shared bytes/frames, per-subscriber history),
// shared text lines, and the credit-backpressure events (grants, stalls,
// deadline evictions).
func (s *Server) WireStats() obs.WireSnapshot { return s.wireTel.Snapshot() }

// Observability returns the server's telemetry registry: the "merge" node
// carries the merge counters, freshness quantiles, and input-leadership
// stats (plus "merge/partN" nodes when partitioned), and the shared trace
// records attach/detach, leadership switches, straggler detaches, and
// subscriber drops.
func (s *Server) Observability() *obs.Registry { return s.reg }

// Telemetry returns a point-in-time snapshot of every telemetry node,
// refreshing the merge node's state-size gauge first (an index walk — cold
// path only).
func (s *Server) Telemetry() []obs.Snapshot {
	s.tel.SetStateBytes(s.be.SizeBytes())
	return s.reg.Snapshot()
}

// MetricsHandler returns an HTTP handler serving "/metrics" (JSON: service
// gauges plus one entry per telemetry node with counters, freshness
// quantiles, and leadership stats) and "/debug/trace" (the bounded event
// trace; "?format=text" for the line-oriented dump).
func (s *Server) MetricsHandler() http.Handler {
	return obs.Handler(s.reg, func() map[string]any {
		sb := s.be.SizeBytes()
		s.tel.SetStateBytes(sb)
		svc := map[string]any{
			"publishers":           s.Publishers(),
			"subscribers":          s.Subscribers(),
			"max_stable":           int64(s.be.MaxStable()),
			"stragglers_detached":  s.StragglersDetached(),
			"partitions":           s.Partitions(),
			"merge_state_bytes":    sb,
			"subscriber_backlog":   s.backlogLen(),
			"straggler_supervised": s.opts.StragglerLag > 0,
			// Binary fan-out: encode-once/write-many counters plus the
			// credit-backpressure events (DESIGN.md §14).
			"wire": s.wireTel.Snapshot(),
		}
		if ps := s.be.PartitionStats(); ps != nil {
			svc["partition_stats"] = ps
		}
		if s.dur != nil {
			// WAL/checkpoint counters and recovery-duration quantiles.
			svc["durability"] = s.dur.tel.Snapshot()
		}
		if s.spillTel != nil {
			// Out-of-core tier: runs written/merged, spilled bytes, replay
			// latency quantiles, resident gauge (see Options.MemBudget).
			svc["spill"] = s.spillTel.Snapshot()
			svc["mem_budget"] = s.opts.MemBudget
		}
		return svc
	})
}

func (s *Server) backlogLen() int {
	s.outMu.Lock()
	defer s.outMu.Unlock()
	return len(s.backlog)
}

// supervise periodically detaches stragglers: publishers whose progress
// watermark trails the merged output stable point by more than StragglerLag.
func (s *Server) supervise() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opts.SuperviseEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			s.sweepStragglers()
		}
	}
}

func (s *Server) sweepStragglers() {
	type victim struct {
		id core.StreamID
		ps *pubState
		wm temporal.Time
	}
	var victims []victim
	stable := s.be.MaxStable() // atomic: safe to read before taking s.mu
	s.mu.Lock()
	if !s.closed && s.pubCount > 1 && stable != temporal.MinTime && !stable.IsInf() {
		spare := s.pubCount - 1 // never detach the last publisher
		for id, ps := range s.pubs {
			if len(victims) >= spare {
				break
			}
			if time.Since(ps.attachedAt) < s.opts.StragglerGrace {
				continue
			}
			if lagsBehind(ps.watermark, stable, s.opts.StragglerLag) {
				victims = append(victims, victim{id: id, ps: ps, wm: ps.watermark})
			}
		}
		s.detached += int64(len(victims))
	}
	s.mu.Unlock()
	for _, v := range victims {
		// Notify, then close: the handler's read fails and its cleanup path
		// performs the actual Detach.
		s.reg.Trace().Record(obs.Event{
			Kind: obs.EventStraggler, Node: "server", Stream: v.id,
			T: v.wm, Aux: int64(stable),
		})
		v.ps.sendDetach("straggler")
		v.ps.conn.Close()
	}
}

// lagsBehind reports whether watermark wm trails stable by more than lag,
// using unsigned subtraction so wm = MinTime cannot overflow.
func lagsBehind(wm, stable, lag temporal.Time) bool {
	if wm >= stable {
		return false
	}
	return uint64(int64(stable))-uint64(int64(wm)) > uint64(int64(lag))
}

// broadcast is the backend's emit callback. It runs inside the backend's own
// emission serialisation (the single backend's lock, or the sharded pool's
// emit mutex) and takes outMu for the subscriber state. Delivery is
// encode-once, write-many in both protocols: the element is marshalled at
// most once as a text line shared across every text subscriber queue, and
// framed at most once into the shared block log with the span fanned out to
// every binary subscriber queue — per-subscriber cost is a queue entry, not
// an encode. Each subscriber drains through its own queue, so one slow or
// blocked consumer can neither stall the merge nor delay delivery to the
// others; a text subscriber is dropped on queue overflow (it may resume
// positionally with FROM), a binary one pauses on credit and is evicted only
// by the deadline backstop.
func (s *Server) broadcast(e temporal.Element) {
	// Recovery seeding re-merges what the restored backlog already holds;
	// those re-emissions are silenced wholesale (durability.go).
	if s.dur.suppressed() {
		return
	}
	var dropped []int
	s.outMu.Lock()
	// Write-ahead of delivery: the emission is WAL-logged before any
	// subscriber queue sees it, so a restart's restored backlog is always a
	// superset of what was delivered and positional FROM resume stays exact.
	s.dur.appendEmit(len(s.backlog), e)
	s.backlog = append(s.backlog, e)
	if len(s.subs) > 0 {
		if line, err := temporal.MarshalElement(e); err == nil {
			s.wireTel.LineEncoded(len(line))
			for id, q := range s.subs {
				if !q.push(line) {
					delete(s.subs, id)
					dropped = append(dropped, id)
				}
			}
		}
	}
	// Binary fan-out is O(1) in subscriber count: encode once into the
	// shared log, then one wake splices every parked cursor into the worker
	// pool's ready list. (hasSubs is serialised with registration by outMu.)
	wakeBin := s.fl.hasSubs()
	if wakeBin {
		s.blog.Append(e)
	}
	s.outMu.Unlock()
	if wakeBin {
		s.fl.wake()
	}
	for _, id := range dropped {
		s.reg.Trace().Record(obs.Event{Kind: obs.EventSubscriberDrop, Node: "server", Stream: id})
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ServeConn runs the server's connection handler on an already-established
// connection (either protocol), exactly as if it had arrived through the
// listener. In-process harnesses use it to drive subscriber counts past the
// OS file-descriptor ceiling (lmbench's fan-out experiment wires thousands
// of net.Pipe-style connections straight in).
func (s *Server) ServeConn(conn net.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return errors.New("server closed")
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.handle(conn)
	}()
	return nil
}

func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64*1024)
	if d := s.opts.ReadTimeout; d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
	// Protocol sniff: a v2 connection opens with the 'L' 'M' magic, which can
	// never begin a v1 handshake ("HELLO ..."). One listener, two protocols.
	// The binary path owns the connection from here (a v2 subscriber's
	// connection outlives this handler — the fan-out loop closes it).
	if b, perr := r.Peek(1); perr == nil && b[0] == wire.Magic0 {
		s.serveBinary(conn, r)
		return
	}
	defer conn.Close()
	line, err := readLine(r)
	if err != nil && len(line) == 0 {
		return
	}
	h, perr := parseHello(string(line))
	if perr != nil {
		fmt.Fprintf(conn, "ERR %v\n", perr)
		return
	}
	switch h.role {
	case "PUB":
		s.servePublisher(conn, r, h.joinTime)
	case "SUB":
		conn.SetReadDeadline(time.Time{}) // subscribers are write-driven
		s.serveSubscriber(conn, h.resumeFrom)
	}
}

// readLine reads one newline-terminated line, tolerating lines longer than
// the reader's buffer. The returned slice is valid only until the next read.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		long := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			long = append(long, line...)
		}
		line = long
	}
	return bytes.TrimRight(line, "\r\n"), err
}

// hello is a parsed handshake line.
type hello struct {
	role       string
	joinTime   temporal.Time // PUB: the stream's join guarantee
	resumeFrom int           // SUB: replay the merged history after this many elements
}

func parseHello(line string) (hello, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "HELLO" {
		return hello{}, errors.New("expected HELLO PUB <joinTime> or HELLO SUB [FROM <n>]")
	}
	switch fields[1] {
	case "SUB":
		h := hello{role: "SUB"}
		if len(fields) == 2 {
			return h, nil
		}
		if len(fields) != 4 || fields[2] != "FROM" {
			return hello{}, errors.New("expected HELLO SUB [FROM <n>]")
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n < 0 {
			return hello{}, fmt.Errorf("bad resume position %q", fields[3])
		}
		h.resumeFrom = n
		return h, nil
	case "PUB":
		jt := temporal.MinTime
		if len(fields) >= 3 {
			v, perr := strconv.ParseInt(fields[2], 10, 64)
			if perr != nil {
				return hello{}, fmt.Errorf("bad join time %q", fields[2])
			}
			jt = temporal.Time(v)
		}
		return hello{role: "PUB", joinTime: jt}, nil
	}
	return hello{}, fmt.Errorf("unknown role %q", fields[1])
}

// pubBatchSize is how many parsed elements a publisher handler accumulates
// before pushing them through the merge under one lock acquisition. The
// batch is also flushed at stable elements (punctuation must propagate — it
// drives subscriber progress and feedback) and whenever the connection has
// no more buffered input, so a trickling publisher sees per-element latency.
const pubBatchSize = 64

// pubHandler is the protocol-independent core of a publisher connection:
// the attach/merge/detach sequence shared by the v1 text loop and the v2
// frame loop, which differ only in how they read elements off the wire.
type pubHandler struct {
	s       *Server
	ps      *pubState
	id      core.StreamID
	pending temporal.Stream
}

// attachPublisher runs the shared attach sequence: backend attach, WAL
// record, and registration. Attach runs outside s.mu — the backend
// serialises internally and (sharded) may block on worker queues. The
// checkpoint barrier's read side spans attach + WAL record + registration,
// so a checkpoint cut sees either all of them or none. ok is false when the
// server is closed.
func (s *Server) attachPublisher(conn net.Conn, joinTime temporal.Time, bin bool) (h *pubHandler, stable temporal.Time, ok bool) {
	ps := &pubState{conn: conn, bin: bin, watermark: temporal.MinTime, attachedAt: time.Now(), joinTime: joinTime}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, 0, false
	}
	s.mu.Unlock()
	unlock := s.dur.shared()
	id := s.be.Attach(joinTime)
	s.dur.append(durable.Record{Kind: durable.RecAttach, ID: int64(id), JoinTime: joinTime})
	stable = s.be.MaxStable()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.dur.append(durable.Record{Kind: durable.RecDetach, ID: int64(id)})
		s.be.Detach(id)
		unlock()
		return nil, 0, false
	}
	s.pubs[id] = ps
	s.pubCount++
	// A fresh attach is, by definition, caught up with everything the output
	// already covers (it will fast-forward past it); its progress watermark
	// starts at the current stable point so the supervisor only measures lag
	// the publisher actually accrues from here on.
	ps.watermark = stable
	s.mu.Unlock()
	unlock()
	return &pubHandler{s: s, ps: ps, id: id, pending: make(temporal.Stream, 0, pubBatchSize)}, stable, true
}

// flush pushes the pending batch through the merge. Log before merge, merge
// before ack: once the publisher hears ACK, the batch survives a crash. The
// barrier's read side keeps the couple atomic against a checkpoint cut.
func (h *pubHandler) flush() error {
	if len(h.pending) == 0 {
		return nil
	}
	wm := temporal.MinTime
	for _, e := range h.pending {
		if e.Kind == temporal.KindStable {
			wm = temporal.MaxT(wm, e.T())
		}
	}
	unlock := h.s.dur.shared()
	h.s.dur.append(durable.Record{Kind: durable.RecBatch, ID: int64(h.id), Els: h.pending})
	err := h.s.be.ProcessBatch(h.id, h.pending)
	unlock()
	h.s.mu.Lock()
	h.ps.watermark = temporal.MaxT(h.ps.watermark, wm)
	h.s.mu.Unlock()
	h.pending = h.pending[:0]
	if err == nil && wm == temporal.Infinity {
		// The stream's own stable(∞) is merged: acknowledge end-of-stream
		// so the publisher can distinguish a completed delivery from one
		// whose tail was silently lost in transit.
		h.ps.sendAck()
	}
	return err
}

// add appends one parsed element, flushing at the batching boundaries: batch
// size, stable punctuation (it drives subscriber progress and feedback), or
// a drained connection (more == false), so a trickling publisher sees
// per-element latency.
func (h *pubHandler) add(e temporal.Element, more bool) error {
	h.pending = append(h.pending, e)
	if len(h.pending) >= pubBatchSize || e.Kind == temporal.KindStable || !more {
		return h.flush()
	}
	return nil
}

// finish merges anything parsed before the disconnect (it is part of the
// stream) and detaches the publisher's state.
func (h *pubHandler) finish() {
	h.flush()
	unlock := h.s.dur.shared()
	h.s.dur.append(durable.Record{Kind: durable.RecDetach, ID: int64(h.id)})
	h.s.be.Detach(h.id)
	unlock()
	h.s.mu.Lock()
	delete(h.s.pubs, h.id)
	h.s.pubCount--
	h.s.mu.Unlock()
}

func (s *Server) servePublisher(conn net.Conn, r *bufio.Reader, joinTime temporal.Time) {
	h, stable, ok := s.attachPublisher(conn, joinTime, false)
	if !ok {
		return
	}
	defer h.finish()
	// The handshake reply carries the merged stable point: a reconnecting
	// replica seeds its fast-forward watermark from it and skips everything
	// the output no longer needs (cheap catch-up, Sec. V-D).
	h.ps.sendOK(int64(h.id), stable)
	for {
		if d := s.opts.ReadTimeout; d > 0 {
			conn.SetReadDeadline(time.Now().Add(d))
		}
		line, rerr := readLine(r)
		if len(line) > 0 {
			e, err := temporal.UnmarshalElement(line)
			if err != nil {
				h.flush()
				h.ps.sendErr(err)
				return
			}
			if perr := h.add(e, r.Buffered() > 0); perr != nil {
				h.ps.sendErr(perr)
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

func (s *Server) serveSubscriber(conn net.Conn, resumeFrom int) {
	// Register and replay the merged history (past the resume position, for
	// a reconnecting subscriber that already holds a prefix).
	q := newSubQueue(s.opts.SubscriberBuffer)
	s.outMu.Lock()
	if s.subsClosed {
		s.outMu.Unlock()
		return
	}
	id := s.nextSub
	s.nextSub++
	if resumeFrom > len(s.backlog) {
		resumeFrom = len(s.backlog)
	}
	history := append(temporal.Stream(nil), s.backlog[resumeFrom:]...)
	s.subs[id] = q
	s.outMu.Unlock()

	defer func() {
		s.outMu.Lock()
		if qq, ok := s.subs[id]; ok {
			qq.close()
			delete(s.subs, id)
		}
		s.outMu.Unlock()
	}()

	w := bufio.NewWriter(conn)
	fmt.Fprintf(w, "OK SUB\n")
	writeLine := func(line []byte) bool {
		if _, err := w.Write(line); err != nil {
			return false
		}
		return w.WriteByte('\n') == nil
	}
	// History catch-up is per-subscriber (cold path): marshal the snapshot
	// here. Live lines arrive pre-marshalled, encoded once in broadcast and
	// shared read-only across every text subscriber queue.
	for _, e := range history {
		line, err := temporal.MarshalElement(e)
		if err != nil || !writeLine(line) {
			return
		}
	}
	if err := w.Flush(); err != nil {
		return
	}
	var scratch [][]byte
	for {
		batch, ok := q.pop(scratch)
		if !ok {
			break
		}
		for _, line := range batch {
			if !writeLine(line) {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
		scratch = batch[:0]
	}
	w.Flush()
}
