// Package server exposes a Logical Merge over TCP: replica query instances
// connect as publishers and push their physical streams as JSON lines;
// consumers connect as subscribers and receive the single merged stream.
// This is the deployment shape of the paper's high-availability application
// (Sec. II-1): n replicas on different machines feeding one LMerge at the
// consumer side, with publishers free to connect, disconnect, and reconnect
// mid-run.
//
// Wire protocol (line-oriented):
//
//	client → server, first line:   HELLO PUB <joinTime>   or   HELLO SUB
//	server → client, reply:        OK <streamID>          or   OK SUB
//	publisher lines:               one element per line (temporal wire JSON)
//	subscriber lines:              merged elements, one per line
//
// A publisher's disconnect detaches its stream; the merge keeps flowing
// while at least one publisher remains.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"lmerge/internal/core"
	"lmerge/internal/temporal"
)

// Server is a network-facing LMerge.
type Server struct {
	ln net.Listener

	mu       sync.Mutex
	op       *core.Operator
	backlog  temporal.Stream // full merged history, replayed to late subscribers
	subs     map[int]chan temporal.Element
	pubConns map[core.StreamID]net.Conn // for fast-forward signalling
	nextSub  int
	pubCount int
	closed   bool
	wg       sync.WaitGroup
}

// Options configures a server.
type Options struct {
	// Case selects the merge algorithm (default R3).
	Case core.Case
	// FeedbackLag, when >= 0, enables fast-forward feedback to lagging
	// publishers (Sec. V-D over the wire): a publisher whose own progress
	// trails the merged output by more than this many ticks receives an
	// "FF <t>" line and may skip elements that end by t. Negative disables.
	FeedbackLag temporal.Time
}

// New builds a server merging with the given algorithm case, listening on
// addr (e.g. "127.0.0.1:0"). Feedback is disabled; use NewWithOptions to
// enable it.
func New(addr string, c core.Case) (*Server, error) {
	return NewWithOptions(addr, Options{Case: c, FeedbackLag: -1})
}

// NewWithOptions builds a server with explicit options.
func NewWithOptions(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:       ln,
		subs:     make(map[int]chan temporal.Element),
		pubConns: make(map[core.StreamID]net.Conn),
	}
	var opOpts []core.OperatorOption
	if opts.FeedbackLag >= 0 {
		opOpts = append(opOpts, core.WithFeedback(s.signalFastForward, opts.FeedbackLag))
	}
	s.op = core.NewOperator(core.New(opts.Case, s.broadcast), opOpts...)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// signalFastForward runs under s.mu (merge processing holds the lock).
func (s *Server) signalFastForward(f core.Feedback) {
	conn, ok := s.pubConns[f.Stream]
	if !ok {
		return
	}
	// Best effort; a slow or dead publisher is detached by its own handler.
	fmt.Fprintf(conn, "FF %d\n", int64(f.T))
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes subscriber channels, and waits for handler
// goroutines to finish.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for id, ch := range s.subs {
			close(ch)
			delete(s.subs, id)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Stats returns the merge counters (snapshot under the lock).
func (s *Server) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *s.op.Merger().Stats()
}

// MaxStable returns the merged output's stable point.
func (s *Server) MaxStable() temporal.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.op.MaxStable()
}

// Publishers returns the number of attached publishers.
func (s *Server) Publishers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pubCount
}

// broadcast runs under s.mu (merge processing holds the lock).
func (s *Server) broadcast(e temporal.Element) {
	s.backlog = append(s.backlog, e)
	for id, ch := range s.subs {
		select {
		case ch <- e:
		default:
			// Slow subscriber: drop it rather than stall the merge.
			close(ch)
			delete(s.subs, id)
		}
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64*1024)
	hello, err := readLine(r)
	if err != nil && len(hello) == 0 {
		return
	}
	role, arg, perr := parseHello(string(hello))
	if perr != nil {
		fmt.Fprintf(conn, "ERR %v\n", perr)
		return
	}
	switch role {
	case "PUB":
		s.servePublisher(conn, r, arg)
	case "SUB":
		s.serveSubscriber(conn)
	}
}

// readLine reads one newline-terminated line, tolerating lines longer than
// the reader's buffer. The returned slice is valid only until the next read.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		long := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			long = append(long, line...)
		}
		line = long
	}
	return bytes.TrimRight(line, "\r\n"), err
}

func parseHello(line string) (role string, joinTime temporal.Time, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "HELLO" {
		return "", 0, errors.New("expected HELLO PUB <joinTime> or HELLO SUB")
	}
	switch fields[1] {
	case "SUB":
		return "SUB", 0, nil
	case "PUB":
		jt := temporal.MinTime
		if len(fields) >= 3 {
			v, perr := strconv.ParseInt(fields[2], 10, 64)
			if perr != nil {
				return "", 0, fmt.Errorf("bad join time %q", fields[2])
			}
			jt = temporal.Time(v)
		}
		return "PUB", jt, nil
	}
	return "", 0, fmt.Errorf("unknown role %q", fields[1])
}

// pubBatchSize is how many parsed elements a publisher handler accumulates
// before pushing them through the merge under one lock acquisition. The
// batch is also flushed at stable elements (punctuation must propagate — it
// drives subscriber progress and feedback) and whenever the connection has
// no more buffered input, so a trickling publisher sees per-element latency.
const pubBatchSize = 64

func (s *Server) servePublisher(conn net.Conn, r *bufio.Reader, joinTime temporal.Time) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	id := s.op.Attach(joinTime)
	s.pubConns[id] = conn
	s.pubCount++
	s.mu.Unlock()
	fmt.Fprintf(conn, "OK %d\n", id)

	pending := make(temporal.Stream, 0, pubBatchSize)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		s.mu.Lock()
		err := s.op.ProcessBatch(id, pending)
		s.mu.Unlock()
		pending = pending[:0]
		return err
	}
	defer func() {
		// Anything parsed before the disconnect is part of the stream and
		// must be merged before the detach releases the publisher's state.
		flush()
		s.mu.Lock()
		s.op.Detach(id)
		delete(s.pubConns, id)
		s.pubCount--
		s.mu.Unlock()
	}()
	for {
		line, rerr := readLine(r)
		if len(line) > 0 {
			e, err := temporal.UnmarshalElement(line)
			if err != nil {
				flush()
				fmt.Fprintf(conn, "ERR %v\n", err)
				return
			}
			pending = append(pending, e)
			if len(pending) >= pubBatchSize || e.Kind == temporal.KindStable || r.Buffered() == 0 {
				if perr := flush(); perr != nil {
					fmt.Fprintf(conn, "ERR %v\n", perr)
					return
				}
			}
		}
		if rerr != nil {
			return
		}
	}
}

func (s *Server) serveSubscriber(conn net.Conn) {
	// Register and replay the merged history so far.
	ch := make(chan temporal.Element, 4096)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	id := s.nextSub
	s.nextSub++
	history := append(temporal.Stream(nil), s.backlog...)
	s.subs[id] = ch
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		if c, ok := s.subs[id]; ok {
			close(c)
			delete(s.subs, id)
		}
		s.mu.Unlock()
	}()

	w := bufio.NewWriter(conn)
	fmt.Fprintf(w, "OK SUB\n")
	write := func(e temporal.Element) bool {
		line, err := temporal.MarshalElement(e)
		if err != nil {
			return false
		}
		if _, err := w.Write(line); err != nil {
			return false
		}
		if err := w.WriteByte('\n'); err != nil {
			return false
		}
		return true
	}
	for _, e := range history {
		if !write(e) {
			return
		}
	}
	if err := w.Flush(); err != nil {
		return
	}
	for e := range ch {
		if !write(e) {
			return
		}
		// Flush when the channel drains, batching bursts.
		if len(ch) == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
	w.Flush()
}
