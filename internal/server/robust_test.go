package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"lmerge/internal/chaos"
	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// --- parseHello and frame-decode error paths -------------------------------

func TestParseHelloVariants(t *testing.T) {
	bad := []string{
		"", "HELLO", "HELLO NOPE", "HELLO PUB abc", "HELLO PUB 1e5",
		"HELLO SUB FROM", "HELLO SUB FROM x", "HELLO SUB FROM -3",
		"HELLO SUB 5", "HELLO SUB FROM 1 2", "PUB HELLO", "hello sub",
	}
	for _, line := range bad {
		if _, err := parseHello(line); err == nil {
			t.Errorf("parseHello(%q) accepted", line)
		}
	}
	good := []struct {
		line string
		want hello
	}{
		{"HELLO SUB", hello{role: "SUB"}},
		{"HELLO SUB FROM 0", hello{role: "SUB"}},
		{"HELLO SUB FROM 917", hello{role: "SUB", resumeFrom: 917}},
		{"HELLO PUB", hello{role: "PUB", joinTime: temporal.MinTime}},
		{"HELLO PUB 42", hello{role: "PUB", joinTime: 42}},
		{"HELLO PUB -9223372036854775808", hello{role: "PUB", joinTime: temporal.MinTime}},
	}
	for _, g := range good {
		h, err := parseHello(g.line)
		if err != nil || h != g.want {
			t.Errorf("parseHello(%q) = %+v, %v; want %+v", g.line, h, err, g.want)
		}
	}
}

// pubHandshake opens a raw publisher connection and consumes the OK line.
func pubHandshake(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "HELLO PUB %d\n", int64(temporal.MinTime))
	r := bufio.NewReader(conn)
	ok, _ := r.ReadString('\n')
	if !strings.HasPrefix(ok, "OK") {
		t.Fatalf("handshake failed: %q", ok)
	}
	return conn, r
}

func waitPublishers(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Publishers() != want {
		if time.Now().After(deadline) {
			t.Fatalf("publishers = %d, want %d", s.Publishers(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerCorruptFrameClosesOnlyThatPublisher(t *testing.T) {
	s := newTestServer(t)
	// A healthy publisher is attached alongside the faulty one.
	healthy, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	conn, r := pubHandshake(t, s.Addr())
	defer conn.Close()
	waitPublishers(t, s, 2)
	fmt.Fprintf(conn, "%s\n", strings.Repeat("#", 40)) // chaos-style garbage
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("expected ERR for corrupt frame, got %q", line)
	}
	waitPublishers(t, s, 1)

	// The healthy publisher still completes the merge.
	sc := serverScript(70)
	if err := healthy.SendStream(sc.Render(gen.RenderOptions{Seed: 71, StableFreq: 0.05})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.MaxStable() != temporal.Infinity {
		if time.Now().After(deadline) {
			t.Fatal("merge did not complete after corrupt-frame disconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerTruncatedFrameDetachesCleanly(t *testing.T) {
	s := newTestServer(t)
	conn, _ := pubHandshake(t, s.Addr())
	waitPublishers(t, s, 1)
	// A valid element, then a frame cut off mid-JSON with no newline, then
	// an abrupt close — the crash-mid-write signature.
	fmt.Fprintf(conn, "{\"k\":\"i\",\"id\":1,\"data\":\"x\",\"vs\":1,\"ve\":5}\n")
	fmt.Fprintf(conn, "{\"k\":\"i\",\"id\":2,\"da")
	conn.Close()
	waitPublishers(t, s, 0)
	// The pre-crash element was merged; the torn frame was discarded.
	if st := s.Stats(); st.InInserts != 1 {
		t.Fatalf("inserts merged = %d, want 1 (torn frame must not merge)", st.InInserts)
	}
}

func TestServerOversizedGarbageLine(t *testing.T) {
	s := newTestServer(t)
	conn, r := pubHandshake(t, s.Addr())
	defer conn.Close()
	// Larger than the 64KB reader buffer: exercises the long-line path.
	fmt.Fprintf(conn, "%s\n", strings.Repeat("x", 200*1024))
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "ERR") {
		t.Fatalf("expected ERR for oversized garbage, got %q", line)
	}
	waitPublishers(t, s, 0)
	// The server survives and accepts new clients.
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
}

func TestServerHalfHello(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "HEL") // no newline, then die
	conn.Close()
	// Server must not wedge: a real client still connects.
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
}

// --- supervision -----------------------------------------------------------

func TestReadTimeoutDetachesDeadPublisher(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case: core.CaseR3, FeedbackLag: -1, ReadTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, _ := pubHandshake(t, s.Addr())
	defer conn.Close()
	waitPublishers(t, s, 1)
	// Silence: the half-open signature of a crashed host. No FIN is sent,
	// yet the read deadline detaches the publisher.
	waitPublishers(t, s, 0)
}

func TestStragglerDetached(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case:           core.CaseR3,
		FeedbackLag:    -1,
		StragglerLag:   50,
		StragglerGrace: 20 * time.Millisecond,
		SuperviseEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The straggler delivers a touch of data and then stalls forever.
	straggler, r := pubHandshake(t, s.Addr())
	defer straggler.Close()
	fmt.Fprintf(straggler, "{\"k\":\"i\",\"id\":1,\"data\":\"s\",\"vs\":1,\"ve\":4}\n")

	// A healthy publisher advances the merged stable point far past the lag.
	healthy, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	waitPublishers(t, s, 2)
	if err := healthy.SendStream(temporal.Stream{
		temporal.Insert(temporal.P(2), 1, 10),
		temporal.Stable(500),
	}); err != nil {
		t.Fatal(err)
	}

	// The supervisor must notice the watermark gap and force-detach.
	deadline := time.Now().Add(5 * time.Second)
	for s.StragglersDetached() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggler was never detached")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitPublishers(t, s, 1)
	// The straggler is told why before the connection drops.
	straggler.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "DETACH") {
		t.Fatalf("expected DETACH notice, got %q", line)
	}
	// Output stable time kept flowing: it sits past the healthy stream's
	// stable, unaffected by the straggler.
	if st := s.MaxStable(); st != 500 {
		t.Fatalf("stable = %v, want 500", st)
	}
}

func TestStragglerPolicySparesLastPublisher(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case:           core.CaseR3,
		FeedbackLag:    -1,
		StragglerLag:   10,
		StragglerGrace: 10 * time.Millisecond,
		SuperviseEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// One publisher raises the stable point and then stalls: it lags its own
	// output, but as the last publisher it must never be detached.
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SendStream(temporal.Stream{
		temporal.Insert(temporal.P(1), 1, 10),
		temporal.Stable(100),
	}); err != nil {
		t.Fatal(err)
	}
	waitPublishers(t, s, 1)
	time.Sleep(100 * time.Millisecond)
	if s.Publishers() != 1 || s.StragglersDetached() != 0 {
		t.Fatalf("last publisher was detached (pubs=%d, detached=%d)",
			s.Publishers(), s.StragglersDetached())
	}
}

func TestLagsBehind(t *testing.T) {
	if !lagsBehind(temporal.MinTime, 100, 50) {
		t.Error("MinTime watermark must lag (overflow guard)")
	}
	if lagsBehind(90, 100, 50) {
		t.Error("within lag must not trigger")
	}
	if !lagsBehind(40, 100, 50) {
		t.Error("beyond lag must trigger")
	}
	if lagsBehind(100, 100, 0) {
		t.Error("caught-up watermark must not trigger")
	}
}

// --- subscriber isolation and resume ---------------------------------------

func TestSlowSubscriberDoesNotStallOthers(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case: core.CaseR3, FeedbackLag: -1, SubscriberBuffer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The slow subscriber connects and never reads.
	slow, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fmt.Fprintf(slow, "HELLO SUB\n")

	// The healthy subscriber is resilient: the tiny shared queue size may
	// drop it too under bursts, but it resumes positionally; the stalled
	// peer must never keep it from obtaining the complete merge.
	fast := NewResilientSubscriber(s.Addr(), ResilientOptions{Seed: 82})
	defer fast.Close()

	sc := serverScript(80)
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SendStream(sc.Render(gen.RenderOptions{Seed: 81, Disorder: 0.2, StableFreq: 0.05})); err != nil {
		t.Fatal(err)
	}

	var merged temporal.Stream
	for {
		e, ok := fast.Next()
		if !ok {
			t.Fatal("healthy subscriber gave up behind a stalled peer")
		}
		merged = append(merged, e)
		if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
			break
		}
	}
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("fast subscriber output diverged behind a slow peer")
	}
}

func TestSubscriberPositionalResume(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(90)
	p, err := Connect(s.Addr(), temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SendStream(sc.Render(gen.RenderOptions{Seed: 91, Disorder: 0.2, StableFreq: 0.05})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.MaxStable() != temporal.Infinity {
		if time.Now().After(deadline) {
			t.Fatal("merge did not complete")
		}
		time.Sleep(2 * time.Millisecond)
	}

	full, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	whole := collect(t, full)

	// Take a prefix, drop the connection, resume positionally, compare.
	first, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	k := len(whole) / 3
	var prefix temporal.Stream
	for len(prefix) < k {
		e, ok := first.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		prefix = append(prefix, e)
	}
	first.Close()

	second, err := subscribeVia(nil, s.Addr(), k, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	rest := collect(t, second)
	combined := append(prefix, rest...)
	if len(combined) != len(whole) {
		t.Fatalf("resume lost/duplicated elements: %d vs %d", len(combined), len(whole))
	}
	for i := range whole {
		if combined[i] != whole[i] {
			t.Fatalf("element %d differs after resume: %v vs %v", i, combined[i], whole[i])
		}
	}
}

func TestResilientSubscriberSurvivesOverflowDisconnect(t *testing.T) {
	s, err := NewWithOptions("127.0.0.1:0", Options{
		Case: core.CaseR3, FeedbackLag: -1, SubscriberBuffer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sc := serverScript(95)
	rs := NewResilientSubscriber(s.Addr(), ResilientOptions{Seed: 1})
	defer rs.Close()

	go func() {
		p, err := Connect(s.Addr(), temporal.MinTime)
		if err != nil {
			return
		}
		defer p.Close()
		p.SendStream(sc.Render(gen.RenderOptions{Seed: 96, Disorder: 0.2, StableFreq: 0.05}))
	}()

	// Read slowly enough to overflow the tiny queue at least once; the
	// subscriber must transparently reconnect and still deliver everything
	// exactly once, in order.
	var merged temporal.Stream
	for {
		e, ok := rs.Next()
		if !ok {
			t.Fatal("resilient subscriber gave up")
		}
		merged = append(merged, e)
		if len(merged)%64 == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
			break
		}
	}
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("resumed stream invalid: %v", err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("resumed subscriber output diverged")
	}
	if rs.Reconnects() == 0 {
		t.Fatal("queue never overflowed; test is vacuous (shrink SubscriberBuffer)")
	}
}

// --- resilient publisher ---------------------------------------------------

func TestResilientPublisherSurvivesInjectedFaults(t *testing.T) {
	s := newTestServer(t)
	sc := serverScript(60)
	want := sc.TDB()

	sub, err := Subscribe(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	inj := chaos.New(chaos.Config{Seed: 61, CrashProb: 0.15, CorruptProb: 0.05, TruncateProb: 0.05})
	rp := NewResilientPublisher(s.Addr(), ResilientOptions{
		Dial:        inj.Dialer(),
		Seed:        62,
		MaxAttempts: 50,
		Backoff:     Backoff{Initial: time.Millisecond, Max: 20 * time.Millisecond},
	})
	report, err := rp.Deliver(sc.Render(gen.RenderOptions{Seed: 63, Disorder: 0.2, StableFreq: 0.05}))
	if err != nil {
		t.Fatalf("delivery failed: %v (report %+v)", err, report)
	}
	if report.Connects < 2 {
		t.Fatalf("no reconnect happened (connects=%d); faults never fired", report.Connects)
	}

	merged := collect(t, sub)
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("merged stream invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("merged TDB diverged under connection faults")
	}
	if st := s.Stats(); st.ConsistencyWarnings != 0 {
		t.Fatalf("consistency warnings: %d", st.ConsistencyWarnings)
	}
}

func TestResilientPublisherGivesUpAgainstDeadServer(t *testing.T) {
	rp := NewResilientPublisher("127.0.0.1:1", ResilientOptions{
		MaxAttempts: 3,
		Backoff:     Backoff{Initial: time.Millisecond, Max: 2 * time.Millisecond},
	})
	report, err := rp.Deliver(temporal.Stream{temporal.Stable(temporal.Infinity)})
	if err == nil {
		t.Fatal("delivery against a dead address must fail")
	}
	if report.FailedDials != 3 {
		t.Fatalf("failed dials = %d, want 3", report.FailedDials)
	}
}

// --- durable restart: positional FROM resume across a server restart --------

// TestSubscriberResumeAcrossRestart is the regression test for positional
// FROM resume spanning a crash/restart (DESIGN.md §12). A resilient
// subscriber reads mid-stream, the server is killed (its data directory's raw
// bytes are the crash image) and restarted on the same address, and a
// resilient publisher redelivers. The subscriber must splice transparently —
// no duplicate, no gap — which requires two server-side properties: the
// recovered backlog is a superset of everything delivered pre-crash
// (emissions are WAL-logged before subscriber delivery), and the recovered
// stable frontier does not regress past the checkpoint/WAL stable.
func TestSubscriberResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	sc := serverScript(700)
	stream := sc.Render(gen.RenderOptions{Seed: 701, Disorder: 0.2, StableFreq: 0.05})
	opts := Options{Case: core.CaseR3, FeedbackLag: -1, DataDir: dir, CheckpointEvery: 20 * time.Millisecond}
	s, err := NewWithOptions("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	rs := NewResilientSubscriber(addr, ResilientOptions{
		Seed: 7, MaxAttempts: 200,
		Backoff: Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond},
	})
	defer rs.Close()

	p, err := Connect(addr, temporal.MinTime)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(stream) / 2
	if err := p.SendStream(stream[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	target := temporal.MinTime
	for _, e := range stream[:cut] {
		if e.Kind == temporal.KindStable {
			target = temporal.MaxT(target, e.T())
		}
	}
	waitStable(t, s, target)

	// Read up to the prefix's stable point, then "crash" the server: copy the
	// data dir bytes, tear the WAL tail (the mid-write signature), restart on
	// the same address.
	var merged temporal.Stream
	preStable := temporal.MinTime
	for preStable < target {
		e, ok := rs.Next()
		if !ok {
			t.Fatal("subscriber gave up pre-crash")
		}
		merged = append(merged, e)
		if e.Kind == temporal.KindStable {
			preStable = temporal.MaxT(preStable, e.T())
		}
	}
	img := copyDataDir(t, dir)
	tearNewestWAL(t, img, 2)
	p.Close()
	s.Close()

	opts.DataDir = img
	s2, err := NewWithOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.MaxStable(); got < preStable {
		t.Fatalf("recovered frontier %d regressed past delivered stable %d", int64(got), int64(preStable))
	}

	rp := NewResilientPublisher(addr, ResilientOptions{Seed: 8})
	if _, err := rp.Deliver(stream); err != nil {
		t.Fatal(err)
	}

	for {
		e, ok := rs.Next()
		if !ok {
			t.Fatal("subscriber gave up post-restart")
		}
		merged = append(merged, e)
		if e.Kind == temporal.KindStable && e.T() == temporal.Infinity {
			break
		}
	}
	if rs.Reconnects() == 0 {
		t.Fatal("subscriber never reconnected; restart not exercised")
	}
	got, err := temporal.Reconstitute(merged)
	if err != nil {
		t.Fatalf("spliced stream invalid: %v", err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("TDB across restart diverged from no-crash oracle")
	}
}
