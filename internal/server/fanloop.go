package server

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"sync"
	"time"

	"lmerge/internal/obs"
	"lmerge/internal/wire"
)

// The event-loop delivery plane of the binary fan-out path (DESIGN.md §15).
// PR 9's blockQueue model spent one writer goroutine + one credit-reader
// goroutine + a 32 KiB bufio writer per subscriber and an O(N) span-push in
// broadcast; here a subscriber at rest is a cursor into the shared broadcast
// log (wire.BlockLog) plus the csub record below — a few hundred bytes, no
// stack — and a fixed pool of workers drains whichever subscribers have both
// data (cursor behind the log head) and credit. Broadcast becomes O(1):
// append once, wake the loop.
//
// Subscriber states:
//
//	parked  — drained the log; sitting in the parked list until an append
//	ready   — has data and (presumed) credit; queued for a worker
//	running — owned by exactly one worker, which writes to its socket
//	stalled — data pending but credit short of the next frame; watched by
//	          the sweeper, revived by a CREDIT grant, evicted at deadline
//	closed  — connection done; cursor detached exactly once (finalize)
//
// Wakeup discipline: Append publishes the new head (atomic store under the
// log lock) before wake() takes fl.mu to splice the parked list into the
// ready list; a worker's decision to park happens under fl.mu after reading
// the head through the log lock. Any append therefore either sees the
// subscriber in the parked list or the subscriber's park decision saw the
// appended head — a parked subscriber with unread data cannot exist once
// wake returns.
//
// Lock order: outMu → fl.mu → blog.mu. The fan loop never takes outMu.

// maxCredit caps a subscriber's accumulated credit so a misbehaving client
// spamming grants cannot overflow the accounting.
const maxCredit = int64(1) << 40

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

type csubState int8

const (
	subParked csubState = iota
	subReady
	subRunning
	subStalled
	subClosed
)

// csub is one registered binary subscriber: its cursor into the broadcast
// log, its credit ledger, and its private history catch-up. This struct (plus
// the cursor and leftover slice) is the entire at-rest cost of a subscriber.
type csub struct {
	id   int
	conn net.Conn
	cur  *wire.Cursor

	// hist is the positional-resume catch-up encoding, served under the same
	// credit before any shared-log bytes; freed once drained. histOff is the
	// consumed prefix.
	hist    []byte
	histOff int

	// leftover is whatever the handshake's read buffer held beyond the HELLO
	// frame (a pipelined CREDIT grant, usually) — handed to the on-demand
	// credit reader so the 64 KiB handshake buffer itself can be dropped.
	leftover []byte

	credit int64
	// stallStart is when delivery first found credit short of the next frame;
	// cleared on progress. The eviction deadline counts from it.
	stallStart time.Time
	state      csubState
	evicted    bool
	readerUp   bool
	finalized  bool

	// armed is the lazy write-deadline re-arm mark; touched only by the
	// worker that owns the csub while it is running.
	armed time.Time
}

// fanLoop multiplexes every binary subscriber over a fixed worker pool.
type fanLoop struct {
	s *Server

	mu   sync.Mutex
	cond *sync.Cond // workers wait here for ready subscribers

	// ready is a FIFO of subscribers believed to have data and credit;
	// readyHead is the consumed prefix (reset when drained, so the slice
	// recycles instead of growing). parked holds drained subscribers; wake
	// splices it into ready wholesale — O(1) in the steady state where the
	// ready list is empty between appends.
	ready     []*csub
	readyHead int
	parked    []*csub

	// stalled is the sweeper's watch set: subscribers whose credit is short
	// of their next frame.
	stalled map[*csub]struct{}

	subs      map[int]*csub
	started   bool
	closed    bool
	stopSweep chan struct{}
}

func newFanLoop(s *Server) *fanLoop {
	fl := &fanLoop{
		s:         s,
		stalled:   make(map[*csub]struct{}),
		subs:      make(map[int]*csub),
		stopSweep: make(chan struct{}),
	}
	fl.cond = sync.NewCond(&fl.mu)
	return fl
}

// register adds a subscriber to the loop's registry. Called with the
// server's outMu held (ordering with the backlog snapshot and log attach);
// reports false when the loop is already shut down. The initial
// handshake-granted credit is already on c.
func (fl *fanLoop) register(c *csub) bool {
	fl.mu.Lock()
	if fl.closed {
		fl.mu.Unlock()
		return false
	}
	fl.subs[c.id] = c
	if c.credit > 0 {
		fl.s.wireTel.CreditGranted(c.credit)
	}
	fl.s.wireTel.SubscriberAttached()
	fl.mu.Unlock()
	return true
}

// subscribers reports the registered (not yet finalized) subscriber count.
func (fl *fanLoop) subscribers() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return len(fl.subs)
}

// hasSubs is broadcast's fast-path check; outMu serialises it against
// register, so a false here cannot race a subscriber that attached before
// this broadcast.
func (fl *fanLoop) hasSubs() bool {
	return fl.subscribers() > 0
}

// activate queues a freshly registered subscriber for its first service
// round, starting the worker pool on the first activation ever. The handler
// goroutine returns right after this — from here on the subscriber costs no
// stack.
func (fl *fanLoop) activate(c *csub) {
	fl.mu.Lock()
	if fl.closed || c.state == subClosed {
		fl.finalizeLocked(c)
		fl.mu.Unlock()
		return
	}
	fl.ensureWorkersLocked()
	fl.pushReadyLocked(c)
	fl.mu.Unlock()
}

// drop closes a subscriber from its handler before activation (handshake
// write failed).
func (fl *fanLoop) drop(c *csub) {
	fl.mu.Lock()
	fl.closeSubLocked(c, false)
	fl.mu.Unlock()
}

// ensureWorkersLocked starts the worker pool and the eviction sweeper on the
// first binary subscriber; servers that never see one never pay for them.
func (fl *fanLoop) ensureWorkersLocked() {
	if fl.started {
		return
	}
	fl.started = true
	n := fl.s.opts.FanoutWorkers
	fl.s.wireTel.SetWorkers(int64(n))
	fl.s.wg.Add(n + 1)
	for i := 0; i < n; i++ {
		go fl.worker()
	}
	go fl.sweeper()
}

func (fl *fanLoop) pushReadyLocked(c *csub) {
	c.state = subReady
	fl.ready = append(fl.ready, c)
	fl.s.wireTel.ReadyDepth(1)
	fl.cond.Signal()
}

// wake splices every parked subscriber into the ready list: an append made
// the log head move, so each of them has exactly that data to read. Called
// once per broadcast regardless of subscriber count.
func (fl *fanLoop) wake() {
	fl.mu.Lock()
	moved := len(fl.parked)
	if moved == 0 || fl.closed {
		fl.mu.Unlock()
		return
	}
	if fl.readyHead == len(fl.ready) {
		// Steady state: the ready list drained since the last append; swap the
		// whole cohort over without copying.
		fl.ready, fl.parked = fl.parked, fl.ready[:0]
		fl.readyHead = 0
	} else {
		fl.ready = append(fl.ready, fl.parked...)
		for i := range fl.parked {
			fl.parked[i] = nil
		}
		fl.parked = fl.parked[:0]
	}
	fl.s.wireTel.ReadyDepth(int64(moved))
	if moved == 1 {
		fl.cond.Signal()
	} else {
		fl.cond.Broadcast()
	}
	fl.mu.Unlock()
}

// grant applies a CREDIT replenishment (already coalesced by the reader) and
// revives the subscriber if it was credit-stalled. Grants are non-negative
// by protocol construction and the total is capped, so credit stays in
// [0, maxCredit].
func (fl *fanLoop) grant(c *csub, n int64) {
	if n <= 0 {
		return
	}
	fl.mu.Lock()
	if c.state == subClosed || fl.closed {
		fl.mu.Unlock()
		return
	}
	c.credit = min64(c.credit+n, maxCredit)
	fl.s.wireTel.CreditGranted(n)
	if c.state == subStalled {
		delete(fl.stalled, c)
		fl.pushReadyLocked(c)
	}
	fl.mu.Unlock()
}

// closeSubLocked moves a subscriber to the closed state and finalizes it,
// unless a worker owns it right now — the worker observes subClosed at its
// next plan and finalizes then. Idempotent.
func (fl *fanLoop) closeSubLocked(c *csub, evict bool) {
	if c.state == subClosed {
		return
	}
	prev := c.state
	c.state = subClosed
	c.evicted = evict
	// Unblocks the owning worker mid-write, the credit reader mid-read, and
	// tells the client.
	c.conn.Close()
	if prev == subStalled {
		delete(fl.stalled, c)
	}
	if prev != subRunning {
		fl.finalizeLocked(c)
	}
}

// finalizeLocked detaches the cursor (releasing whatever log tail only this
// subscriber held) and unregisters — exactly once, however close paths race.
func (fl *fanLoop) finalizeLocked(c *csub) {
	if c.finalized {
		return
	}
	c.finalized = true
	c.state = subClosed
	c.hist = nil
	fl.s.blog.Detach(c.cur)
	delete(fl.subs, c.id)
	fl.s.wireTel.SubscriberDetached()
	if c.evicted {
		fl.s.wireTel.Evicted()
		fl.s.reg.Trace().Record(obs.Event{Kind: obs.EventSubscriberDrop, Node: "server", Stream: c.id, Aux: 1})
	}
}

// close shuts the loop down: every connection is closed (unblocking workers
// and readers), non-running subscribers are finalized here, running ones by
// their owning worker's next plan. Idempotent; Server.Close waits for the
// workers via s.wg.
func (fl *fanLoop) close() {
	fl.mu.Lock()
	if fl.closed {
		fl.mu.Unlock()
		return
	}
	fl.closed = true
	for _, c := range fl.subs {
		if c.state != subClosed {
			c.conn.Close()
			if c.state != subRunning {
				if c.state == subStalled {
					delete(fl.stalled, c)
				}
				c.state = subClosed
				fl.finalizeLocked(c)
			}
		}
	}
	close(fl.stopSweep)
	fl.cond.Broadcast()
	fl.mu.Unlock()
}

// fanBufPool holds the workers' gather buffers: delivery copies whole frames
// out of the shared log under the log lock (so no block reference ever spans
// a socket write) and writes one contiguous chunk. Pool-shared across
// workers, not per-subscriber.
var fanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, wire.BlockCap)
		return &b
	},
}

// worker is one delivery loop: pop a ready subscriber, service it until it
// drains, stalls, yields, or dies, repeat.
func (fl *fanLoop) worker() {
	defer fl.s.wg.Done()
	fl.mu.Lock()
	for {
		for !fl.closed && fl.readyHead == len(fl.ready) {
			fl.cond.Wait()
		}
		if fl.closed {
			fl.mu.Unlock()
			return
		}
		c := fl.ready[fl.readyHead]
		fl.ready[fl.readyHead] = nil
		fl.readyHead++
		if fl.readyHead == len(fl.ready) {
			fl.ready = fl.ready[:0]
			fl.readyHead = 0
		}
		fl.s.wireTel.ReadyDepth(-1)
		if c.state == subClosed {
			// Closed while queued; already finalized.
			continue
		}
		c.state = subRunning
		fl.mu.Unlock()
		fl.service(c)
		fl.mu.Lock()
	}
}

// service drives one subscriber: plan a write under fl.mu (history first,
// then shared-log frames, all within the credit ledger), perform the socket
// write unlocked, loop. Exits by parking (drained), stalling (credit short),
// yielding (other subscribers waiting), or finalizing (closed/error).
func (fl *fanLoop) service(c *csub) {
	s := fl.s
	bp := fanBufPool.Get().(*[]byte)
	gather := *bp
	defer fanBufPool.Put(bp)
	rounds := 0
	for {
		fl.mu.Lock()
		if fl.closed || c.state == subClosed {
			fl.finalizeLocked(c)
			fl.mu.Unlock()
			return
		}
		// Fairness: with other subscribers queued, a firehose subscriber
		// yields its worker after each round instead of monopolising it.
		if rounds > 0 && fl.readyHead < len(fl.ready) {
			fl.pushReadyLocked(c)
			fl.mu.Unlock()
			return
		}

		// Plan: cut whole frames under the credit ledger into the gather
		// buffer — private history strictly before shared-log bytes.
		bufN, frames, need := 0, 0, 0
		var direct []byte
		var directBlk *wire.Block
		histActive := c.histOff < len(c.hist)
		if histActive {
			take, nf, nd := wire.FrameCut(c.hist[c.histOff:], c.credit, len(gather))
			copy(gather, c.hist[c.histOff:c.histOff+take])
			c.histOff += take
			bufN = take
			frames = nf
			need = nd
			if c.histOff == len(c.hist) {
				c.hist, c.histOff = nil, 0
				histActive = false
			}
		}
		if !histActive && need == 0 && bufN < len(gather) {
			ln, lf, lneed := s.blog.CopyOut(c.cur, gather[bufN:], c.credit-int64(bufN))
			bufN += ln
			frames += lf
			if bufN == 0 {
				need = lneed
			}
		}
		if bufN == 0 && need > 0 && int64(need) <= c.credit {
			// A frame too large for the gather buffer but covered by credit:
			// write it straight from its dedicated block (or the hist slice),
			// holding a transient block reference across the socket write.
			if histActive {
				direct = c.hist[c.histOff : c.histOff+need]
				c.histOff += need
				if c.histOff == len(c.hist) {
					c.hist, c.histOff = nil, 0
				}
				frames++
			} else if data, blk, ok := s.blog.ReadAt(c.cur); ok && len(data) >= need {
				direct = data[:need]
				directBlk = blk
				s.blog.Advance(c.cur, need)
				frames++
			} else if ok {
				blk.Release()
			}
			need = 0
		}

		if total := bufN + len(direct); total > 0 {
			c.credit -= int64(total)
			c.stallStart = time.Time{}
			fl.mu.Unlock()
			err := fl.writeConn(c, gather[:bufN], direct)
			if directBlk != nil {
				directBlk.Release()
			}
			if err != nil {
				fl.mu.Lock()
				fl.closeSubLocked(c, false)
				fl.finalizeLocked(c)
				fl.mu.Unlock()
				return
			}
			s.wireTel.Shared(total, frames)
			rounds++
			continue
		}

		if need > 0 {
			// Credit short of the next frame: stall. The sweeper evicts if no
			// grant lands before the deadline; the first stall of a subscriber
			// promotes its on-demand credit reader.
			c.state = subStalled
			fl.stalled[c] = struct{}{}
			if c.stallStart.IsZero() {
				c.stallStart = time.Now()
				s.wireTel.CreditStalled()
			}
			fl.promoteReaderLocked(c)
			fl.mu.Unlock()
			return
		}

		// Drained: park until the next append. The park decision and CopyOut's
		// head read both happened under fl.mu, so a concurrent append's wake
		// (which also takes fl.mu) either ran before our CopyOut — which then
		// saw the new head — or will see us in the parked list.
		c.state = subParked
		fl.parked = append(fl.parked, c)
		fl.mu.Unlock()
		return
	}
}

// writeConn writes the planned chunk(s) with the lazily re-armed write
// deadline: a peer that stops reading while credit remains outstanding is
// caught by the same deadline that backstops credit stalls. Re-armed only
// once the previous arm burned half its window, because arming is not free
// and the hot path writes one small chunk per merged element. A wedged
// socket therefore holds this worker for at most ~the credit deadline —
// the documented cost of pooling writers.
func (fl *fanLoop) writeConn(c *csub, a, b []byte) error {
	stall := fl.s.opts.CreditDeadline
	if now := time.Now(); now.Sub(c.armed) > stall/2 {
		c.armed = now
		c.conn.SetWriteDeadline(now.Add(stall))
	}
	if len(a) > 0 {
		if _, err := c.conn.Write(a); err != nil {
			return err
		}
	}
	if len(b) > 0 {
		if _, err := c.conn.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// promoteReaderLocked starts the subscriber's persistent credit reader on
// its first stall. Subscribers that never stall never get one: their grants
// sit in the socket buffer unread, which is fine — the server only needs
// credit it is about to spend. Reading resumes from the handshake leftover so
// no pipelined grant is lost.
func (fl *fanLoop) promoteReaderLocked(c *csub) {
	if c.readerUp {
		return
	}
	c.readerUp = true
	fl.s.wireTel.ReaderStarted()
	fl.s.wg.Add(1)
	go fl.creditReader(c)
}

// creditReader drains a stalled subscriber's inbound frames, coalescing
// CREDIT bursts into one grant (one lock, one wake) — batched replenish
// processing. Exits when the connection dies (subscriber gone or evicted).
func (fl *fanLoop) creditReader(c *csub) {
	defer fl.s.wg.Done()
	defer fl.s.wireTel.ReaderStopped()
	var src io.Reader = c.conn
	if len(c.leftover) > 0 {
		src = io.MultiReader(bytes.NewReader(c.leftover), c.conn)
	}
	fr := wire.NewReader(bufio.NewReaderSize(src, 512))
	for {
		typ, body, err := fr.Next()
		if err != nil {
			fl.mu.Lock()
			fl.closeSubLocked(c, false)
			fl.mu.Unlock()
			return
		}
		if typ != wire.FrCredit {
			continue // forward compatibility
		}
		total, perr := wire.ParseCredit(body)
		if perr != nil {
			continue
		}
		// Coalesce the burst: every CREDIT already buffered folds into one
		// grant instead of one wakeup each.
		for fr.Buffered() > 0 {
			typ2, body2, err2 := fr.Next()
			if err2 != nil {
				break // apply what we have; the next Next() reports the error
			}
			if typ2 == wire.FrCredit {
				if n, perr2 := wire.ParseCredit(body2); perr2 == nil {
					total += n
				}
			}
		}
		fl.grant(c, total)
	}
}

// sweeper is the eviction backstop: a single ticker scanning only the
// stalled set. A subscriber whose stall has lasted the credit deadline is
// evicted — never earlier; the tick grain only delays eviction, it cannot
// hasten it.
func (fl *fanLoop) sweeper() {
	defer fl.s.wg.Done()
	deadline := fl.s.opts.CreditDeadline
	tick := deadline / 8
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-fl.stopSweep:
			return
		case <-t.C:
			now := time.Now()
			fl.mu.Lock()
			var victims []*csub
			for c := range fl.stalled {
				if !c.stallStart.IsZero() && now.Sub(c.stallStart) >= deadline {
					victims = append(victims, c)
				}
			}
			for _, c := range victims {
				fl.closeSubLocked(c, true)
			}
			fl.mu.Unlock()
		}
	}
}
