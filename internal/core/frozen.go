package core

import (
	"sort"

	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// Frozen-slice extraction: the state-donation face behind out-of-core spill
// (internal/spill). Where Handoff moves arbitrary live nodes between
// partition instances of one merge, ExtractFrozen carves out only nodes that
// are provably INERT — the paper's frozen/live split (Sec. III-B) applied
// below the key level: a node whose start time is under the output stable
// point and on which every attached input agrees with the output exactly can
// no longer cause any output activity. Every future touch of such a node is
// a no-op or a drop:
//
//   - an insert/adjust re-presenting the same (key, Ve) from a member stream
//     is absorbed (SetVe / IncrementCount to the value already held);
//   - a stable sweep reconciles it as inVe == outVe, a no-op, and eventually
//     retires it once the agreed Ve freezes;
//   - Snapshot emits it verbatim from its (key, Ve) pairs alone.
//
// So the node's future behaviour is a pure function of (key, Ve multiset,
// member set) — exactly what a FrozenFrame records — and the node itself can
// leave memory. The spill layer re-installs frames (InstallFrozen) before
// any event that would interact with them in a non-trivial way.
//
// Nodes vouched by a strict SUBSET of the attached streams stay resident:
// a straggler that never presented the key would trigger absent-treatment
// withdrawal at its stable sweep, so those nodes are still "live" in the
// only sense that matters for spill.

// FrozenFrame is one extracted (Vs, Payload) key group. For R3 the Ve
// multiset is a single unit entry (the agreed end time); for R4 it is the
// output's full Ve multiset, frozen occurrences included (the resident node
// would retain them too — Snapshot filters per occurrence).
type FrozenFrame struct {
	Vs      temporal.Time
	Payload temporal.Payload
	Ves     []index.VeCount // ascending Ve
}

// MaxVe returns the largest end time in the frame's multiset.
func (f FrozenFrame) MaxVe() temporal.Time { return f.Ves[len(f.Ves)-1].Ve }

// FrozenSlice is a batch of frames extracted under one member set.
type FrozenSlice struct {
	// Clock is the donor's output stable point at extraction time.
	Clock temporal.Time
	// Members is the sorted attached-stream set whose entries unanimously
	// matched the output for every frame in the slice.
	Members []StreamID
	// Frames holds the extracted key groups in ascending (Vs, Payload) order.
	Frames []FrozenFrame
	// Bytes is the resident footprint freed, in SizeBytes units.
	Bytes int
}

// FrozenExtractor is the capability bundle the spill layer requires: frozen
// extraction plus the snapshot and handoff faces it composes with.
type FrozenExtractor interface {
	Merger
	Snapshotter
	Handoff
	// ExtractFrozen removes inert nodes oldest-Vs-first until at least shed
	// bytes of resident footprint are freed (or eligible nodes run out; a
	// non-positive shed extracts everything eligible). ok is false when
	// nothing was eligible.
	ExtractFrozen(shed int) (fs FrozenSlice, ok bool)
	// InstallFrozen re-admits previously extracted frames. Frames whose
	// whole Ve multiset has frozen in the meantime are discarded — the
	// resident node would have been retired by the sweep that froze them.
	InstallFrozen(fs FrozenSlice)
}

// sortedMembers snapshots the attached set in ascending stream order.
func (b *base) sortedMembers() []StreamID {
	ms := make([]StreamID, 0, len(b.attached))
	for s := range b.attached {
		ms = append(ms, s)
	}
	sort.Ints(ms)
	return ms
}

// ExtractFrozen implements FrozenExtractor for R3. A node is inert when its
// start is under the output stable point, its output entry is still live
// (a fully frozen output entry means the node is about to be retired — not
// worth a disk round trip), and every attached stream holds an entry equal
// to the output's. The InsertFullyFrozen policy is excluded for the same
// reason it is not HandoffCapable: its output stable point is data-dependent.
func (m *R3) ExtractFrozen(shed int) (FrozenSlice, bool) {
	if m.opts.Insert == InsertFullyFrozen || len(m.attached) == 0 {
		return FrozenSlice{}, false
	}
	fs := FrozenSlice{Clock: m.maxStable, Members: m.sortedMembers()}
	var victims []temporal.VsPayload
	m.index.Ascend(func(n *index.Node2) bool {
		k := n.Key()
		if k.Vs >= m.maxStable {
			return false // keys are Vs-major: no later node is frozen-started
		}
		outVe, has := n.Ve(index.OutputStream)
		if !has || outVe < m.maxStable {
			return true
		}
		// Entries are always a subset of attached ∪ {output} (Detach deletes
		// its entries), so per-member equality is full unanimity.
		for _, s := range fs.Members {
			if ve, ok := n.Ve(s); !ok || ve != outVe {
				return true
			}
		}
		fs.Frames = append(fs.Frames, FrozenFrame{
			Vs: k.Vs, Payload: k.Payload,
			Ves: []index.VeCount{{Ve: outVe, Count: 1}},
		})
		victims = append(victims, k)
		fs.Bytes += index.Node2Bytes(n)
		return shed <= 0 || fs.Bytes < shed
	})
	for _, k := range victims {
		m.index.DeleteNode(k)
	}
	return fs, len(fs.Frames) > 0
}

// InstallFrozen implements FrozenExtractor for R3.
func (m *R3) InstallFrozen(fs FrozenSlice) {
	for _, fr := range fs.Frames {
		ve := fr.MaxVe()
		if ve < m.maxStable {
			continue // froze while spilled; the resident twin was retired
		}
		el := temporal.Insert(fr.Payload, fr.Vs, ve)
		if _, ok := m.index.SameVsPayload(el); ok {
			continue // key re-entered resident state; spill layer prevents this
		}
		f := m.index.AddNode(el)
		f.SetVe(index.OutputStream, ve)
		for _, s := range fs.Members {
			if m.isAttached(s) {
				f.SetVe(s, ve)
			}
		}
	}
}

// veCountsEqual reports multiset equality of two ascending VeCount runs.
func veCountsEqual(a, b []index.VeCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExtractFrozen implements FrozenExtractor for R4: a node is inert when its
// start is under the output stable point, the output multiset still has a
// live occurrence, and every attached stream's Ve multiset equals the
// output's exactly, (Ve, count) by (Ve, count).
func (m *R4) ExtractFrozen(shed int) (FrozenSlice, bool) {
	if len(m.attached) == 0 {
		return FrozenSlice{}, false
	}
	fs := FrozenSlice{Clock: m.maxStable, Members: m.sortedMembers()}
	var victims []temporal.VsPayload
	m.index.Ascend(func(n *index.Node3) bool {
		k := n.Key()
		if k.Vs >= m.maxStable {
			return false
		}
		out := n.VeCounts(index.OutputStream)
		if len(out) == 0 || out[len(out)-1].Ve < m.maxStable {
			return true
		}
		for _, s := range fs.Members {
			if !veCountsEqual(n.VeCounts(s), out) {
				return true
			}
		}
		fs.Frames = append(fs.Frames, FrozenFrame{Vs: k.Vs, Payload: k.Payload, Ves: out})
		victims = append(victims, k)
		fs.Bytes += index.Node3Bytes(n)
		return shed <= 0 || fs.Bytes < shed
	})
	for _, k := range victims {
		m.index.DeleteNode(k)
	}
	return fs, len(fs.Frames) > 0
}

// InstallFrozen implements FrozenExtractor for R4. The full multiset is
// restored, frozen occurrences included, unless every occurrence froze while
// the frame was spilled (then the resident twin would have been retired).
func (m *R4) InstallFrozen(fs FrozenSlice) {
	for _, fr := range fs.Frames {
		if fr.MaxVe() < m.maxStable {
			continue
		}
		el := temporal.Insert(fr.Payload, fr.Vs, fr.MaxVe())
		if _, ok := m.index.SameVsPayload(el); ok {
			continue
		}
		f := m.index.AddNode(el)
		for _, vc := range fr.Ves {
			for i := 0; i < vc.Count; i++ {
				f.IncrementCount(index.OutputStream, vc.Ve)
				for _, s := range fs.Members {
					if m.isAttached(s) {
						f.IncrementCount(s, vc.Ve)
					}
				}
			}
		}
	}
}
