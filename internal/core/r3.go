package core

import (
	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// R3 is Algorithm R3 (the paper's LMR3+): inputs may present inserts,
// adjusts, and stables in any order, constrained only by their stable
// elements, with (Vs, Payload) a key of the TDB. State lives in the in2t
// two-tier index: a red-black tree keyed (Vs, Payload) whose nodes share one
// payload copy across all inputs and map each stream to its current Ve.
//
// The default policies match the paper's pseudocode: the first insert for a
// key is emitted immediately (location 2), and incoming adjusts are absorbed
// silently, with the output corrected only when a stable element would
// otherwise make the divergence irrecoverable (location 1). This yields
// Theorem 1's bound: no more inserts+adjusts are emitted than inserts
// received.
type R3 struct {
	base
	opts  R3Options
	index *index.In2t
	// leader is the input that most recently advanced the output stable
	// point (meaningful under FollowLeader; -1 before any stable).
	leader StreamID
	// hf and scan are scratch buffers reused across stable sweeps (and hf
	// across detaches), keeping the steady-state sweep allocation-free.
	hf   []*index.Node2
	scan []r3scan
}

// r3scan is one half-frozen node's first-pass result within a stable sweep.
type r3scan struct {
	f      *index.Node2
	inVe   temporal.Time
	pinned bool
}

// NewR3 returns an R3 merger writing its output to emit. At most one
// options struct may be supplied.
func NewR3(emit Emit, opts ...R3Options) *R3 {
	m := &R3{base: newBase(emit), index: index.NewIn2t(), leader: -1}
	if len(opts) > 0 {
		m.opts = opts[0]
	}
	if m.opts.Quorum < 1 {
		m.opts.Quorum = 1
	}
	return m
}

// Case returns CaseR3.
func (m *R3) Case() Case { return CaseR3 }

// Options returns the merger's policy configuration.
func (m *R3) Options() R3Options { return m.opts }

// SizeBytes reports the in2t footprint (payloads shared across inputs).
func (m *R3) SizeBytes() int { return m.index.SizeBytes() }

// Live returns the number of live (Vs, Payload) nodes (the paper's w).
func (m *R3) Live() int { return m.index.Len() }

// Detach unregisters stream s, drops its second-tier entries, and retires
// nodes left with no vouching input: their output events (when present and
// still adjustable) are withdrawn, since no remaining input will vouch for
// them at freeze time, and the nodes are deleted rather than leaked.
func (m *R3) Detach(s StreamID) {
	m.base.Detach(s)
	m.hf = m.hf[:0]
	m.index.Ascend(func(n *index.Node2) bool {
		n.DeleteStream(s)
		if n.Vouchers() == 0 {
			m.hf = append(m.hf, n)
		}
		return true
	})
	for _, f := range m.hf {
		k := f.Key()
		if outVe, has := f.Ve(index.OutputStream); has {
			if k.Vs < m.maxStable {
				// The output event is already half frozen and cannot be
				// withdrawn; the next stable sweep settles and retires it.
				continue
			}
			m.outAdjust(k.Payload, k.Vs, outVe, k.Vs)
		}
		m.index.DeleteNode(k)
	}
}

// Process implements Merger.
func (m *R3) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(s, e)
	switch e.Kind {
	case temporal.KindInsert:
		m.insert(s, e)
		return nil
	case temporal.KindAdjust:
		m.adjust(s, e)
		return nil
	case temporal.KindStable:
		m.stable(s, e.T())
		return nil
	}
	return errUnsupported(CaseR3, e)
}

func (m *R3) insert(s StreamID, e temporal.Element) {
	f, ok := m.index.SameVsPayload(e)
	if !ok {
		if e.Vs < m.maxStable {
			// The node existed and was removed once fully frozen; this is a
			// late duplicate from a slow stream.
			m.drop()
			return
		}
		f = m.index.AddNode(e)
	}
	f.SetVe(s, e.Ve)
	if _, emitted := f.Ve(index.OutputStream); !emitted {
		if m.emitOnInsert(s, f) {
			m.outInsert(e.Payload, e.Vs, e.Ve)
			f.SetVe(index.OutputStream, e.Ve)
		}
	} else if m.reflectEagerly(s) {
		// Another input presents the same event with a different lifetime:
		// under the aggressive policy that revision is propagated at once
		// (Out1 of Table II reflects In2's a(A,6,12) as m(A,6,12)).
		m.eagerAdjust(f, e.Ve)
	}
}

// reflectEagerly reports whether stream s's revisions are mirrored on the
// output immediately.
func (m *R3) reflectEagerly(s StreamID) bool {
	switch m.opts.Follow {
	case FollowLeader:
		return s == m.leader
	default:
		return m.opts.Adjust == AdjustEager
	}
}

// emitOnInsert applies the insert policy at element-arrival time.
func (m *R3) emitOnInsert(s StreamID, f *index.Node2) bool {
	if m.opts.Follow == FollowLeader && m.leader >= 0 && s != m.leader {
		// Only the leading stream's first appearances go out immediately;
		// the rest are deferred to the stable reconciliation.
		return false
	}
	switch m.opts.Insert {
	case InsertFirstWins:
		return true
	case InsertQuorum:
		inputs := f.Streams()
		if _, has := f.Ve(index.OutputStream); has {
			inputs--
		}
		return inputs >= m.opts.Quorum
	default: // InsertHalfFrozen, InsertFullyFrozen: deferred to stable time
		return false
	}
}

func (m *R3) adjust(s StreamID, e temporal.Element) {
	f, ok := m.index.SameVsPayload(e)
	if !ok {
		// Adjust for an event we never tracked: either its node was already
		// fully frozen (slow stream) or the key precedes this merger's
		// attachment; both are absorbed.
		m.drop()
		return
	}
	f.SetVe(s, e.Ve)
	if m.reflectEagerly(s) {
		m.eagerAdjust(f, e.Ve)
	}
}

// eagerAdjust reflects an input adjust at the output immediately when it is
// legal to do so (the new Ve must not precede the output's stable point).
func (m *R3) eagerAdjust(f *index.Node2, ve temporal.Time) {
	outVe, has := f.Ve(index.OutputStream)
	if !has || outVe == ve {
		return
	}
	k := f.Key()
	if ve < m.maxStable || (ve == k.Vs && k.Vs < m.maxStable) {
		return // would be invalid on the output stream; lazy path will handle it
	}
	m.outAdjust(k.Payload, k.Vs, outVe, ve)
	if ve == k.Vs {
		f.DeleteStream(index.OutputStream)
	} else {
		f.SetVe(index.OutputStream, ve)
	}
}

func (m *R3) stable(s StreamID, t temporal.Time) {
	if t <= m.maxStable {
		m.drop()
		return
	}
	m.leader = s // this input now vouches furthest: it leads
	// First pass: reconcile every node becoming half or fully frozen, and
	// find how far the output stable point may advance (InsertFullyFrozen
	// holds it back to the earliest still-unemitted node).
	m.hf = m.index.FindHalfFrozenInto(t, m.hf)
	m.scan = m.scan[:0]
	holdback := t
	for _, f := range m.hf {
		inVe, has := f.Ve(s)
		if !has {
			// Stream s, which is about to vouch for everything before t,
			// never produced this event: treat it as absent (Sec. V-C) —
			// unless the output event is already fully frozen. A frozen event
			// is immutable, so a stream that never presented it (it attached
			// after the freeze and fast-forwarded past it, Sec. V-D) has
			// nothing left to vouch; treating it as agreeing with the settled
			// output retires the node instead of flagging a false withdrawal.
			inVe = f.Key().Vs
			if outVe, emitted := f.Ve(index.OutputStream); emitted && outVe <= m.maxStable {
				inVe = outVe
			}
		}
		pinned := m.reconcile(f, inVe, t)
		m.scan = append(m.scan, r3scan{f, inVe, pinned})
		if m.opts.Insert == InsertFullyFrozen && inVe >= t {
			// Still half frozen per the vouching stream and not yet final:
			// its eventual insert must stay legal, so the output stable
			// point may not pass its start. (Nodes the raiser reports as
			// absent or cancelled — inVe < t without an emission — will
			// never be emitted and impose no constraint.)
			if _, emitted := f.Ve(index.OutputStream); !emitted {
				holdback = temporal.MinT(holdback, f.Key().Vs)
			}
		}
	}
	// Second pass: retire fully frozen nodes — but only those the advanced
	// OUTPUT stable point actually seals (inVe < holdback). Under the
	// fully-frozen holdback the input stable t can run ahead of the output
	// stable point: a node emitted at this sweep may still be live relative
	// to the output (its Ve at or above the held-back stable point), and
	// deleting it would silently drop it from checkpoints (Snapshot) even
	// though a restarted query still needs it. Such nodes survive until a
	// later sweep's output stable passes their end time. Since Vs <= Ve,
	// inVe < holdback also guarantees a lagging stream cannot re-create the
	// node (its Vs is sealed too), so the output never emits an event twice.
	for _, r := range m.scan {
		if r.inVe < t && !r.pinned && r.inVe < holdback {
			m.index.DeleteNode(r.f.Key())
		}
	}
	if holdback > m.maxStable {
		m.maxStable = holdback
		m.outStable(holdback)
	}
}

// reconcile brings the output for node f in line with the stable-raising
// input's value inVe, ahead of the output stable advancing to t. It corrects
// only divergence that is about to become irrecoverable (AdjustLazy) and
// emits deferred first-appearances for the deferred insert policies.
//
// The return value reports a pinned node: the raiser's view could not be
// honoured (it lacks an event that is already half frozen on the output, or
// asks for an end time below the output stable point — only possible with
// faulty inputs). Pinned nodes are kept alive so a later, better-informed
// raiser can still bring the output's lifetime in line.
func (m *R3) reconcile(f *index.Node2, inVe, t temporal.Time) (pinned bool) {
	k := f.Key()
	outVe, has := f.Ve(index.OutputStream)
	if !has {
		if inVe == k.Vs {
			return false // absent on both sides
		}
		if m.opts.Insert == InsertFullyFrozen && inVe >= t && !t.IsInf() {
			// Not final yet; the output stable point is held back instead.
			// (At stable(∞) everything is final, including never-ending
			// events, so they are emitted rather than withheld forever.)
			return false
		}
		// First appearance on the output. Legal: the output stable point has
		// not passed k.Vs (nodes are reconciled no later than the stable
		// element that first exceeds their Vs, and the fully-frozen policy
		// holds the stable point back).
		m.outInsert(k.Payload, k.Vs, inVe)
		f.SetVe(index.OutputStream, inVe)
		return false
	}
	if inVe == outVe {
		return false
	}
	if inVe >= t && outVe >= t {
		return false // both still adjustable later; retain current output (lazy)
	}
	// Divergence would freeze: adjust the output to match the input.
	if inVe < m.maxStable && inVe != k.Vs {
		// Only possible if the inputs were not mutually consistent; an
		// adjust below the output stable point would be invalid, so skip.
		m.warn(inVe)
		return true
	}
	if inVe == k.Vs && k.Vs < m.maxStable {
		// Removal of an already half-frozen output event: likewise only
		// possible with inconsistent inputs (a faulty stream vouching past
		// an event it never carried).
		m.warn(k.Vs)
		return true
	}
	m.outAdjust(k.Payload, k.Vs, outVe, inVe)
	if inVe == k.Vs {
		f.DeleteStream(index.OutputStream)
	} else {
		f.SetVe(index.OutputStream, inVe)
	}
	return false
}
