package core

import (
	"testing"
	"testing/quick"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// TestQuickR3Equivalence drives randomized workload shapes, rendering
// parameters, and delivery patterns through R3, checking final logical
// equivalence and output validity each time.
func TestQuickR3Equivalence(t *testing.T) {
	f := func(seed int64, disorderPct, revPct, streams3, patIdx uint8, split bool) bool {
		n := 2 + int(streams3)%3 // 2..4 inputs
		sc := gen.NewScript(gen.Config{
			Events:        60,
			Seed:          seed,
			EventDuration: 50,
			MaxGap:        9,
			Revisions:     float64(revPct%100) / 100,
			RemoveProb:    0.2,
			PayloadBytes:  6,
		})
		want := sc.TDB()
		streams := make([]temporal.Stream, n)
		lens := make([]int, n)
		for i := range streams {
			streams[i] = sc.Render(gen.RenderOptions{
				Seed:         seed + int64(i) + 1,
				Disorder:     float64(disorderPct%90) / 100,
				StableFreq:   0.08,
				SplitInserts: split && i%2 == 0,
			})
			lens[i] = len(streams[i])
		}
		pat := patterns[int(patIdx)%len(patterns)]
		out := temporal.NewTDB()
		ok := true
		m := NewR3(func(e temporal.Element) {
			if err := out.Apply(e); err != nil {
				ok = false
			}
		})
		for i := range streams {
			m.Attach(i)
		}
		pos := make([]int, n)
		for _, s := range interleavings(pat, n, lens, seed) {
			if m.Process(s, streams[s][pos[s]]) != nil {
				return false
			}
			pos[s]++
		}
		return ok && out.Equal(want) && m.Stats().ConsistencyWarnings == 0 && m.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickR4Multiset does the same for the general merger with duplicate
// keys in the workload.
func TestQuickR4Multiset(t *testing.T) {
	f := func(seed int64, disorderPct, dupPct, patIdx uint8) bool {
		sc := gen.NewScript(gen.Config{
			Events:        50,
			Seed:          seed,
			EventDuration: 40,
			MaxGap:        8,
			Revisions:     0.4,
			RemoveProb:    0.2,
			PayloadBytes:  6,
			DupProb:       float64(dupPct%50) / 100,
		})
		want := sc.TDB()
		n := 3
		streams := make([]temporal.Stream, n)
		lens := make([]int, n)
		for i := range streams {
			streams[i] = sc.Render(gen.RenderOptions{
				Seed:       seed*7 + int64(i),
				Disorder:   float64(disorderPct%90) / 100,
				StableFreq: 0.1,
			})
			lens[i] = len(streams[i])
		}
		pat := patterns[int(patIdx)%len(patterns)]
		out := temporal.NewTDB()
		ok := true
		m := NewR4(func(e temporal.Element) {
			if err := out.Apply(e); err != nil {
				ok = false
			}
		})
		for i := range streams {
			m.Attach(i)
		}
		pos := make([]int, n)
		for _, s := range interleavings(pat, n, lens, seed) {
			if m.Process(s, streams[s][pos[s]]) != nil {
				return false
			}
			pos[s]++
		}
		return ok && out.Equal(want) && m.Stats().ConsistencyWarnings == 0 && m.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSnapshotRoundTrip: at any cut point, the snapshot plus the
// remaining elements of one complete input reproduce the live region.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, cutPct uint8) bool {
		sc := gen.NewScript(gen.Config{
			Events: 50, Seed: seed, EventDuration: 40, MaxGap: 8,
			Revisions: 0.4, RemoveProb: 0.2, PayloadBytes: 6,
		})
		stream := sc.Render(gen.RenderOptions{Seed: seed + 1, Disorder: 0.3, StableFreq: 0.1})
		cut := int(cutPct) % len(stream)
		m := NewR3(nil)
		m.Attach(0)
		for i := 0; i < cut; i++ {
			if m.Process(0, stream[i]) != nil {
				return false
			}
		}
		snap := m.Snapshot()
		snapTDB, err := temporal.Reconstitute(snap)
		if err != nil {
			return false
		}
		// Resume a fresh merger from the snapshot plus the tail.
		out := temporal.NewTDB()
		ok := true
		m2 := NewR3(func(e temporal.Element) {
			if err := out.Apply(e); err != nil {
				ok = false
			}
		})
		m2.Attach(0)
		m2.Attach(1)
		for _, e := range snap {
			if m2.Process(0, e) != nil {
				return false
			}
		}
		for _, e := range stream { // the live source replays from scratch
			if m2.Process(1, e) != nil {
				return false
			}
		}
		if !ok {
			return false
		}
		// Everything live at the snapshot or later must match ground truth.
		cutStable := snapTDB.Stable()
		if cutStable == temporal.MinTime {
			cutStable = 0
		}
		want := liveTDB(sc.TDB(), cutStable)
		got := liveTDB(out, cutStable)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
