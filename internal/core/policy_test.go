package core

import (
	"testing"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// tableIIInputs is the spirit of paper Table II: two presentations of one
// logical event set where stream 2 revises A's lifetime.
func tableIIInputs() (temporal.Stream, temporal.Stream) {
	a, b := temporal.P('A'), temporal.P('B')
	in1 := temporal.Stream{
		temporal.Insert(a, 6, 10),
		temporal.Insert(b, 7, 14),
		temporal.Adjust(a, 6, 10, 15),
		temporal.Stable(16),
	}
	in2 := temporal.Stream{
		temporal.Insert(a, 6, 12),
		temporal.Insert(b, 7, 14),
		temporal.Adjust(a, 6, 12, 15),
		temporal.Stable(16),
	}
	return in1, in2
}

// runPolicy merges the Table II inputs round-robin under the given options.
func runPolicy(t *testing.T, opts R3Options) (temporal.Stream, *temporal.TDB) {
	t.Helper()
	in1, in2 := tableIIInputs()
	rec := newRecorder(t)
	m := NewR3(rec.emit, opts)
	m.Attach(0)
	m.Attach(1)
	for i := 0; i < len(in1) || i < len(in2); i++ {
		if i < len(in1) {
			if err := m.Process(0, in1[i]); err != nil {
				t.Fatal(err)
			}
		}
		if i < len(in2) {
			if err := m.Process(1, in2[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return rec.out, rec.tdb
}

func TestTableIIPolicies(t *testing.T) {
	in1, _ := tableIIInputs()
	want := temporal.MustReconstitute(in1)

	// Out1: aggressive — every change propagated as seen.
	out1, tdb1 := runPolicy(t, R3Options{Insert: InsertFirstWins, Adjust: AdjustEager})
	// Out2: conservative — elements only once final.
	out2, tdb2 := runPolicy(t, R3Options{Insert: InsertFullyFrozen})
	// Out3: in between — first element per key immediately, modifications
	// saved until final (the paper's default).
	out3, tdb3 := runPolicy(t, R3Options{})

	for name, tdb := range map[string]*temporal.TDB{"Out1": tdb1, "Out2": tdb2, "Out3": tdb3} {
		if !tdb.Equal(want) {
			t.Errorf("%s: final TDB differs from inputs", name)
		}
	}

	if len(out1) <= len(out3) {
		t.Errorf("aggressive policy should be chattiest: |Out1|=%d |Out3|=%d", len(out1), len(out3))
	}
	if out2.Adjusts() != 0 {
		t.Errorf("conservative policy should emit no adjusts, emitted %d", out2.Adjusts())
	}
	if len(out2) >= len(out1) {
		t.Errorf("conservative policy should emit fewer elements than aggressive: %d vs %d", len(out2), len(out1))
	}
	// Conservative emits events with their final lifetimes directly.
	for _, e := range out2 {
		if e.Kind == temporal.KindInsert && e.Payload == temporal.P('A') && e.Ve != 15 {
			t.Errorf("conservative policy emitted non-final A lifetime %v", e.Ve)
		}
	}
	// The default policy emits A immediately with the first-seen lifetime,
	// then a single reconciling adjust at the stable point.
	if out3[0] != temporal.Insert(temporal.P('A'), 6, 10) {
		t.Errorf("default policy first element = %v, want insert(A,6,10)", out3[0])
	}
}

func TestPolicyEquivalenceOnGeneratedWorkloads(t *testing.T) {
	sc := r3Script(51)
	want := sc.TDB()
	streams := r3Streams(sc, 3)
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
	optsList := []R3Options{
		{Insert: InsertFirstWins, Adjust: AdjustLazy},
		{Insert: InsertFirstWins, Adjust: AdjustEager},
		{Insert: InsertQuorum, Quorum: 2},
		{Insert: InsertQuorum, Quorum: 3, Adjust: AdjustEager},
		{Insert: InsertHalfFrozen},
		{Insert: InsertFullyFrozen},
	}
	for _, opts := range optsList {
		for _, pat := range patterns {
			rec := newRecorder(t)
			m := NewR3(rec.emit, opts)
			feed(t, m, streams, interleavings(pat, 3, lens, 51), nil)
			if !rec.tdb.Equal(want) {
				t.Fatalf("policy %v/%v pattern %s: output TDB differs", opts.Insert, opts.Adjust, pat)
			}
			if w := m.Stats().ConsistencyWarnings; w != 0 {
				t.Fatalf("policy %v/%v pattern %s: %d warnings", opts.Insert, opts.Adjust, pat, w)
			}
		}
	}
}

// TestPolicyOracle: the deferred-emission policies must also satisfy C1–C3
// at every step.
func TestPolicyOracle(t *testing.T) {
	sc := r3Script(53)
	streams := r3Streams(sc, 2)
	lens := []int{len(streams[0]), len(streams[1])}
	for _, opts := range []R3Options{
		{Insert: InsertHalfFrozen},
		{Insert: InsertFullyFrozen},
		{Insert: InsertQuorum, Quorum: 2},
		{Adjust: AdjustEager},
	} {
		rec := newRecorder(t)
		m := NewR3(rec.emit, opts)
		feed(t, m, streams, interleavings("random", 2, lens, 53), func(_ int, in []*temporal.TDB) {
			if err := temporal.CheckCompatR3(rec.tdb, in); err != nil {
				t.Fatalf("policy %v/%v: %v", opts.Insert, opts.Adjust, err)
			}
		})
	}
}

// TestChattinessOrdering: eager ≥ lazy adjust output on revision-heavy
// workloads; the conservative insert policy emits no spurious inserts.
func TestChattinessOrdering(t *testing.T) {
	cfg := gen.Config{
		Events: 200, Seed: 55, EventDuration: 100, MaxGap: 10,
		Revisions: 0.9, RemoveProb: 0.3, PayloadBytes: 8,
	}
	sc := gen.NewScript(cfg)
	streams := make([]temporal.Stream, 3)
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{Seed: int64(60 + i), Disorder: 0.4, StableFreq: 0.05})
	}
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}

	run := func(opts R3Options) *Stats {
		rec := newRecorder(t)
		m := NewR3(rec.emit, opts)
		feed(t, m, streams, interleavings("roundrobin", 3, lens, 55), nil)
		if !rec.tdb.Equal(sc.TDB()) {
			t.Fatalf("policy %+v: wrong TDB", opts)
		}
		return m.Stats()
	}
	lazy := run(R3Options{})
	eager := run(R3Options{Adjust: AdjustEager})
	conservative := run(R3Options{Insert: InsertFullyFrozen})

	if eager.OutAdjusts < lazy.OutAdjusts {
		t.Errorf("eager adjusts (%d) < lazy adjusts (%d)", eager.OutAdjusts, lazy.OutAdjusts)
	}
	// Conservative never emits an event it must later remove.
	removals := 0
	rec := newRecorder(t)
	m := NewR3(rec.emit, R3Options{Insert: InsertFullyFrozen})
	feed(t, m, streams, interleavings("roundrobin", 3, lens, 55), nil)
	for _, e := range rec.out {
		if e.Kind == temporal.KindAdjust && e.IsRemoval() {
			removals++
		}
	}
	if removals != 0 {
		t.Errorf("conservative policy emitted %d removals", removals)
	}
	if conservative.OutElements() >= lazy.OutElements() {
		t.Errorf("conservative (%d elements) should be less chatty than default (%d)",
			conservative.OutElements(), lazy.OutElements())
	}
}
