package core

import (
	"testing"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

func TestOperatorDetachMidRun(t *testing.T) {
	sc := r3Script(61)
	want := sc.TDB()
	s0 := sc.Render(gen.RenderOptions{Seed: 1, Disorder: 0.3, StableFreq: 0.05})
	s1 := sc.Render(gen.RenderOptions{Seed: 2, Disorder: 0.3, StableFreq: 0.05})

	rec := newRecorder(t)
	op := NewOperator(NewR3(rec.emit))
	id0 := op.Attach(temporal.MinTime)
	id1 := op.Attach(temporal.MinTime)

	// Interleave until stream 1 "fails" a third of the way through, then
	// stream 0 carries the query alone.
	fail := len(s1) / 3
	for i := 0; i < fail; i++ {
		if err := op.Process(id0, s0[i]); err != nil {
			t.Fatal(err)
		}
		if err := op.Process(id1, s1[i]); err != nil {
			t.Fatal(err)
		}
	}
	op.Detach(id1)
	if op.ActiveInputs() != 1 {
		t.Fatalf("ActiveInputs = %d, want 1", op.ActiveInputs())
	}
	// Elements from a detached stream are ignored, not errors.
	if err := op.Process(id1, s1[fail]); err != nil {
		t.Fatalf("detached stream element should be ignored: %v", err)
	}
	for i := fail; i < len(s0); i++ {
		if err := op.Process(id0, s0[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !rec.tdb.Equal(want) {
		t.Fatal("output TDB wrong after mid-run detach")
	}
	if op.MaxStable() != temporal.Infinity {
		t.Fatal("output did not complete after detach")
	}
}

func TestOperatorRestartedReplicaNoDuplicates(t *testing.T) {
	// A replica fails and restarts from scratch, re-delivering its stream
	// from the beginning (the paper's re-attachment duplication hazard).
	sc := r3Script(63)
	want := sc.TDB()
	s0 := sc.Render(gen.RenderOptions{Seed: 1, Disorder: 0.2, StableFreq: 0.05})
	s1 := sc.Render(gen.RenderOptions{Seed: 2, Disorder: 0.2, StableFreq: 0.05})

	rec := newRecorder(t)
	op := NewOperator(NewR3(rec.emit))
	id0 := op.Attach(temporal.MinTime)
	id1 := op.Attach(temporal.MinTime)

	half := len(s1) / 2
	for i := 0; i < half; i++ {
		mustProcess(t, op, id0, s0[i])
		mustProcess(t, op, id1, s1[i])
	}
	// Replica 1 dies and a restarted instance re-attaches; it reprocesses
	// its input from scratch (duplicating prior elements).
	op.Detach(id1)
	id1b := op.Attach(op.MaxStable())
	for i := half; i < len(s0); i++ {
		mustProcess(t, op, id0, s0[i])
	}
	for _, e := range s1 {
		mustProcess(t, op, id1b, e)
	}
	if !rec.tdb.Equal(want) {
		t.Fatal("output TDB wrong after replica restart")
	}
}

func TestOperatorJoinGating(t *testing.T) {
	// A joining stream's stables must be withheld until the output stable
	// point reaches its join time — otherwise its pre-join gap could delete
	// events the established inputs carry.
	a := temporal.P('A')
	rec := newRecorder(t)
	op := NewOperator(NewR3(rec.emit))
	id0 := op.Attach(temporal.MinTime)

	mustProcess(t, op, id0, temporal.Insert(a, 5, 50))

	// A new replica joins, guaranteeing correctness only from t=100 — it
	// missed event A entirely.
	idJ := op.Attach(100)
	if op.Joined(idJ) {
		t.Fatal("joiner should not be a full member immediately")
	}
	// The joiner races ahead: without gating, its stable(60) would remove
	// event A from the output.
	mustProcess(t, op, idJ, temporal.Stable(60))
	if op.MaxStable() != temporal.MinTime {
		t.Fatal("withheld stable advanced the output")
	}
	if rec.tdb.Count(temporal.Ev(a, 5, 50)) != 1 {
		t.Fatal("event A lost")
	}
	// The established stream advances the output past the join point.
	mustProcess(t, op, id0, temporal.Stable(120))
	if op.MaxStable() != 120 {
		t.Fatalf("MaxStable = %v, want 120", op.MaxStable())
	}
	if !op.Joined(idJ) {
		t.Fatal("joiner should be a full member once MaxStable ≥ join time")
	}
	// Now the joiner alone can carry the stream.
	op.Detach(id0)
	mustProcess(t, op, idJ, temporal.Insert(a, 130, 140))
	mustProcess(t, op, idJ, temporal.Stable(temporal.Infinity))
	if rec.tdb.Count(temporal.Ev(a, 130, 140)) != 1 {
		t.Fatal("joiner's event missing")
	}
	if op.MaxStable() != temporal.Infinity {
		t.Fatal("joiner could not advance the output after joining")
	}
}

func TestOperatorFeedback(t *testing.T) {
	var signals []Feedback
	rec := newRecorder(t)
	op := NewOperator(NewR3(rec.emit), WithFeedback(func(f Feedback) { signals = append(signals, f) }, 0))
	fast := op.Attach(temporal.MinTime)
	slow := op.Attach(temporal.MinTime)

	a := temporal.P('A')
	mustProcess(t, op, fast, temporal.Insert(a, 1, 10))
	mustProcess(t, op, slow, temporal.Insert(a, 1, 10))
	mustProcess(t, op, fast, temporal.Stable(20))

	if len(signals) != 1 || signals[0].Stream != slow || signals[0].T != 20 {
		t.Fatalf("signals = %v, want one fast-forward(20) to the slow stream", signals)
	}
	// No repeat signal while the output stable point is unchanged.
	mustProcess(t, op, fast, temporal.Insert(a, 25, 30))
	if len(signals) != 1 {
		t.Fatalf("spurious feedback: %v", signals)
	}
	// The slow stream catching up suppresses further signals to it.
	mustProcess(t, op, slow, temporal.Stable(20))
	mustProcess(t, op, fast, temporal.Stable(22))
	// slow.lastStable = 20 < 22, so it is signalled again (lag 0).
	if len(signals) != 2 || signals[1].T != 22 {
		t.Fatalf("signals = %v", signals)
	}
}

func TestOperatorFeedbackLag(t *testing.T) {
	var signals []Feedback
	rec := newRecorder(t)
	op := NewOperator(NewR3(rec.emit), WithFeedback(func(f Feedback) { signals = append(signals, f) }, 50))
	fast := op.Attach(temporal.MinTime)
	slow := op.Attach(temporal.MinTime)
	_ = slow

	a := temporal.P('A')
	mustProcess(t, op, fast, temporal.Insert(a, 1, 10))
	// A stream that has reported no progress at all is maximally behind, so
	// the first stable advance signals it regardless of lag.
	mustProcess(t, op, fast, temporal.Stable(30))
	if len(signals) != 1 || signals[0].Stream != slow || signals[0].T != 30 {
		t.Fatalf("startup signal missing: %v", signals)
	}
	// Once the slow stream has a baseline within the lag window, it is left
	// alone.
	mustProcess(t, op, slow, temporal.Stable(25))
	mustProcess(t, op, fast, temporal.Insert(a, 60, 70))
	mustProcess(t, op, fast, temporal.Stable(60))
	if len(signals) != 1 {
		t.Fatalf("slow stream within lag 50 of stable 60 should not be signalled: %v", signals)
	}
	// Falling more than 50 behind triggers feedback again.
	mustProcess(t, op, fast, temporal.Stable(90))
	if len(signals) != 2 || signals[1].Stream != slow || signals[1].T != 90 {
		t.Fatalf("signals = %v", signals)
	}
}

func TestOperatorUnknownStream(t *testing.T) {
	op := NewOperator(NewR3(nil))
	if err := op.Process(99, temporal.Stable(1)); err == nil {
		t.Fatal("element from unattached stream should error")
	}
}

func mustProcess(t *testing.T, op *Operator, id StreamID, e temporal.Element) {
	t.Helper()
	if err := op.Process(id, e); err != nil {
		t.Fatalf("process %v: %v", e, err)
	}
}

func TestOperatorHAAllButOneFail(t *testing.T) {
	// n replicas, n-1 fail at staggered points: output must still complete
	// and equal the script TDB (the paper's HA claim, Sec. II-1).
	sc := r3Script(67)
	want := sc.TDB()
	const n = 5
	streams := make([]temporal.Stream, n)
	ids := make([]StreamID, n)
	rec := newRecorder(t)
	op := NewOperator(NewR3(rec.emit))
	maxLen := 0
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{Seed: int64(70 + i), Disorder: 0.3, StableFreq: 0.05})
		ids[i] = op.Attach(temporal.MinTime)
		if len(streams[i]) > maxLen {
			maxLen = len(streams[i])
		}
	}
	for pos := 0; pos < maxLen; pos++ {
		for i := range streams {
			// Replica i>0 fails after i/n of the run.
			if i > 0 && pos >= len(streams[i])*i/n {
				if op.ActiveInputs() > 1 {
					op.Detach(ids[i])
				}
				continue
			}
			if pos < len(streams[i]) {
				mustProcess(t, op, ids[i], streams[i][pos])
			}
		}
	}
	if !rec.tdb.Equal(want) {
		t.Fatal("HA merge lost or duplicated events")
	}
	if op.MaxStable() != temporal.Infinity {
		t.Fatal("HA merge did not complete")
	}
}
