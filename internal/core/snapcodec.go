package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lmerge/internal/temporal"
)

// Binary stream codec: the serialization behind the durability layer
// (internal/durable). A merger's Snapshot() stream — and any other physical
// stream prefix, such as a publisher batch or the merged-output backlog — is
// encoded as a compact, self-delimiting byte run suitable for embedding in a
// checksummed WAL record or checkpoint section.
//
// The format is deliberately simpler than the JSON wire codec
// (temporal/encoding.go): it is never read by humans or non-Go peers, only
// written and re-read by the same binary, so it favours density and decode
// speed. Each element is:
//
//	kind     uvarint (0 insert, 1 adjust, 2 stable)
//	stable:  T        varint
//	insert:  Vs, Ve   varint ×2, then payload
//	adjust:  Vs, VOld, Ve varint ×3, then payload
//	payload: ID varint, len(Data) uvarint, Data bytes
//
// Timestamps use signed varints (MinTime and Infinity are single large
// values, interior times are small in the experiment workloads), so a typical
// element is a handful of bytes instead of the ~70 of its JSON form.

// ErrCodecTruncated reports an element run that ends mid-element: the byte
// slice is shorter than its own structure claims. Callers treating the run as
// a WAL payload distinguish it from ErrCodecCorrupt only for diagnostics —
// both mean "not a valid encoded stream".
var ErrCodecTruncated = errors.New("core: encoded stream truncated")

// ErrCodecCorrupt reports bytes that cannot be a valid encoded stream (bad
// kind tag, negative length, varint overflow).
var ErrCodecCorrupt = errors.New("core: encoded stream corrupt")

// AppendStream appends the binary encoding of s to buf and returns the
// extended slice. The element count is NOT part of the encoding: a decoded
// run ends exactly at the end of the input, which lets record framing (length
// prefix + checksum) own the boundary.
func AppendStream(buf []byte, s temporal.Stream) []byte {
	for _, e := range s {
		buf = AppendElement(buf, e)
	}
	return buf
}

// AppendElement appends one element's binary encoding to buf.
func AppendElement(buf []byte, e temporal.Element) []byte {
	buf = binary.AppendUvarint(buf, uint64(e.Kind))
	switch e.Kind {
	case temporal.KindStable:
		buf = binary.AppendVarint(buf, int64(e.Ve))
	case temporal.KindInsert:
		buf = binary.AppendVarint(buf, int64(e.Vs))
		buf = binary.AppendVarint(buf, int64(e.Ve))
		buf = appendPayload(buf, e.Payload)
	case temporal.KindAdjust:
		buf = binary.AppendVarint(buf, int64(e.Vs))
		buf = binary.AppendVarint(buf, int64(e.VOld))
		buf = binary.AppendVarint(buf, int64(e.Ve))
		buf = appendPayload(buf, e.Payload)
	default:
		// Unknown kinds cannot be represented; encode as a stable(MinTime)
		// no-op so the stream stays decodable. The merge never produces them.
		buf = binary.AppendUvarint(buf, uint64(temporal.KindStable))
		buf = binary.AppendVarint(buf, int64(temporal.MinTime))
	}
	return buf
}

func appendPayload(buf []byte, p temporal.Payload) []byte {
	buf = binary.AppendVarint(buf, p.ID)
	buf = binary.AppendUvarint(buf, uint64(len(p.Data)))
	return append(buf, p.Data...)
}

// DecodeStream decodes a full binary element run, which must end exactly at
// the end of data. It is the inverse of AppendStream.
func DecodeStream(data []byte) (temporal.Stream, error) {
	var out temporal.Stream
	for len(data) > 0 {
		e, n, err := DecodeElement(data)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		data = data[n:]
	}
	return out, nil
}

// DecodeElement decodes one element from the head of data, returning the
// element and the number of bytes consumed.
func DecodeElement(data []byte) (temporal.Element, int, error) {
	var e temporal.Element
	k, off, err := getUvarint(data, 0)
	if err != nil {
		return e, 0, err
	}
	if k > uint64(temporal.KindStable) {
		return e, 0, fmt.Errorf("%w: element kind %d", ErrCodecCorrupt, k)
	}
	e.Kind = temporal.Kind(k)
	var v int64
	switch e.Kind {
	case temporal.KindStable:
		if v, off, err = getVarint(data, off); err != nil {
			return e, 0, err
		}
		e.Ve = temporal.Time(v)
	case temporal.KindInsert:
		if v, off, err = getVarint(data, off); err != nil {
			return e, 0, err
		}
		e.Vs = temporal.Time(v)
		if v, off, err = getVarint(data, off); err != nil {
			return e, 0, err
		}
		e.Ve = temporal.Time(v)
		if e.Payload, off, err = getPayload(data, off); err != nil {
			return e, 0, err
		}
	case temporal.KindAdjust:
		if v, off, err = getVarint(data, off); err != nil {
			return e, 0, err
		}
		e.Vs = temporal.Time(v)
		if v, off, err = getVarint(data, off); err != nil {
			return e, 0, err
		}
		e.VOld = temporal.Time(v)
		if v, off, err = getVarint(data, off); err != nil {
			return e, 0, err
		}
		e.Ve = temporal.Time(v)
		if e.Payload, off, err = getPayload(data, off); err != nil {
			return e, 0, err
		}
	}
	return e, off, nil
}

func getPayload(data []byte, off int) (temporal.Payload, int, error) {
	var p temporal.Payload
	id, off, err := getVarint(data, off)
	if err != nil {
		return p, 0, err
	}
	p.ID = id
	n, off, err := getUvarint(data, off)
	if err != nil {
		return p, 0, err
	}
	if n > uint64(len(data)-off) {
		return p, 0, fmt.Errorf("%w: payload data length %d exceeds %d remaining bytes",
			ErrCodecTruncated, n, len(data)-off)
	}
	p.Data = string(data[off : off+int(n)])
	return p, off + int(n), nil
}

func getVarint(data []byte, off int) (int64, int, error) {
	v, n := binary.Varint(data[off:])
	if n > 0 {
		return v, off + n, nil
	}
	if n == 0 {
		return 0, 0, ErrCodecTruncated
	}
	return 0, 0, fmt.Errorf("%w: varint overflow", ErrCodecCorrupt)
}

func getUvarint(data []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n > 0 {
		return v, off + n, nil
	}
	if n == 0 {
		return 0, 0, ErrCodecTruncated
	}
	return 0, 0, fmt.Errorf("%w: uvarint overflow", ErrCodecCorrupt)
}
