package core

import (
	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// R3Naive is the paper's LMR3- baseline (Section VI-A): a simpler
// implementation of case R3 that keeps a separate (Vs, Payload)-ordered
// index per input stream, each storing full event copies, plus one more
// index for the output. It is easier to write than the in2t design but
// duplicates payloads across inputs — memory grows linearly with the number
// of input streams — and needs multiple tree lookups per element. Figures
// 2, 3, and 7 plot it as the strawman.
type R3Naive struct {
	base
	inputs map[StreamID]*naiveIndex
	output *naiveIndex
	// Scratch buffers reused across stable sweeps, keeping the steady-state
	// sweep allocation-free.
	frozen, orphans []naiveKV
	dead            []temporal.VsPayload
}

// naiveKV is one (key, Ve) snapshot entry of a stable sweep.
type naiveKV struct {
	k  temporal.VsPayload
	ve temporal.Time
}

// naiveIndex is one per-stream event index with duplicated payload storage.
type naiveIndex struct {
	tree  *index.Tree[temporal.VsPayload, temporal.Time]
	bytes int
}

func newNaiveIndex() *naiveIndex {
	return &naiveIndex{tree: index.NewTree[temporal.VsPayload, temporal.Time](temporal.VsPayload.Compare)}
}

func (n *naiveIndex) put(k temporal.VsPayload, ve temporal.Time) {
	if _, had := n.tree.Get(k); !had {
		n.bytes += k.Payload.SizeBytes() + 72 // payload copy + node overhead
	}
	n.tree.Put(k, ve)
}

func (n *naiveIndex) del(k temporal.VsPayload) {
	if n.tree.Delete(k) {
		n.bytes -= k.Payload.SizeBytes() + 72
	}
}

// NewR3Naive returns an LMR3- merger writing its output to emit. Policies
// are fixed to the paper defaults (first-wins inserts, lazy adjusts).
func NewR3Naive(emit Emit) *R3Naive {
	return &R3Naive{
		base:   newBase(emit),
		inputs: make(map[StreamID]*naiveIndex),
		output: newNaiveIndex(),
	}
}

// Case returns CaseR3 (LMR3- implements the same restriction case as R3).
func (m *R3Naive) Case() Case { return CaseR3 }

// SizeBytes reports the summed footprint of all per-input indexes plus the
// output index — the unshared-payload cost the in2t design avoids.
func (m *R3Naive) SizeBytes() int {
	total := m.output.bytes
	for _, in := range m.inputs {
		total += in.bytes
	}
	return total
}

// Live returns the number of keys in the output index.
func (m *R3Naive) Live() int { return m.output.tree.Len() }

// Attach registers input stream s.
func (m *R3Naive) Attach(s StreamID) {
	m.base.Attach(s)
	if _, ok := m.inputs[s]; !ok {
		m.inputs[s] = newNaiveIndex()
	}
}

// Detach unregisters input stream s and frees its whole index.
func (m *R3Naive) Detach(s StreamID) {
	m.base.Detach(s)
	delete(m.inputs, s)
}

func (m *R3Naive) input(s StreamID) *naiveIndex {
	in, ok := m.inputs[s]
	if !ok {
		in = newNaiveIndex()
		m.inputs[s] = in
	}
	return in
}

// Process implements Merger.
func (m *R3Naive) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(s, e)
	switch e.Kind {
	case temporal.KindInsert:
		k := e.Key()
		if e.Vs < m.maxStable {
			if _, tracked := m.output.tree.Get(k); !tracked {
				m.drop()
				return nil
			}
		}
		m.input(s).put(k, e.Ve)
		if _, emitted := m.output.tree.Get(k); !emitted && e.Vs >= m.maxStable {
			m.outInsert(e.Payload, e.Vs, e.Ve)
			m.output.put(k, e.Ve)
		}
		return nil
	case temporal.KindAdjust:
		k := e.Key()
		in := m.input(s)
		if _, had := in.tree.Get(k); !had {
			m.drop()
			return nil
		}
		if e.IsRemoval() {
			in.del(k)
		} else {
			in.put(k, e.Ve)
		}
		return nil
	case temporal.KindStable:
		m.stable(s, e.T())
		return nil
	}
	return errUnsupported(CaseR3, e)
}

func (m *R3Naive) stable(s StreamID, t temporal.Time) {
	in := m.input(s)
	if t <= m.maxStable {
		// A lagging stream's stable still lets us drop its fully frozen
		// entries, bounding the laggard's index.
		m.prune(in, t)
		m.drop()
		return
	}
	// Walk stream s's entries becoming half or fully frozen.
	m.frozen = m.frozen[:0]
	in.tree.Ascend(func(k temporal.VsPayload, ve temporal.Time) bool {
		if k.Vs >= t {
			return false
		}
		m.frozen = append(m.frozen, naiveKV{k, ve})
		return true
	})
	for _, f := range m.frozen {
		outVe, has := m.output.tree.Get(f.k)
		if !has {
			if f.k.Vs < m.maxStable {
				// The key was already frozen and retired from the output by
				// an earlier stable; this is a laggard's leftover entry.
				if f.ve < t {
					in.del(f.k)
				}
				continue
			}
			// Never emitted before: first appearance now.
			m.outInsert(f.k.Payload, f.k.Vs, f.ve)
			m.output.put(f.k, f.ve)
			outVe = f.ve
		}
		if f.ve != outVe && (f.ve < t || outVe < t) {
			if f.ve < m.maxStable {
				m.warn(f.ve)
			} else {
				m.outAdjust(f.k.Payload, f.k.Vs, outVe, f.ve)
				m.output.put(f.k, f.ve)
			}
		}
		if f.ve < t {
			in.del(f.k)
			m.output.del(f.k)
		}
	}
	// Output keys below t that stream s does not vouch for are removed
	// (Sec. V-C missing-element semantics).
	m.orphans = m.orphans[:0]
	m.output.tree.Ascend(func(k temporal.VsPayload, ve temporal.Time) bool {
		if k.Vs >= t {
			return false
		}
		if _, vouched := in.tree.Get(k); !vouched {
			m.orphans = append(m.orphans, naiveKV{k, ve})
		}
		return true
	})
	for _, o := range m.orphans {
		if o.k.Vs < m.maxStable {
			m.warn(o.k.Vs)
			continue
		}
		m.outAdjust(o.k.Payload, o.k.Vs, o.ve, o.k.Vs)
		m.output.del(o.k)
	}
	m.maxStable = t
	m.outStable(t)
}

// prune drops stream entries that are fully frozen at the stream's own
// stable point.
func (m *R3Naive) prune(in *naiveIndex, t temporal.Time) {
	m.dead = m.dead[:0]
	in.tree.Ascend(func(k temporal.VsPayload, ve temporal.Time) bool {
		if k.Vs >= t {
			return false
		}
		if ve < t {
			m.dead = append(m.dead, k)
		}
		return true
	})
	for _, k := range m.dead {
		in.del(k)
	}
}
