package core

import (
	"errors"
	"testing"

	"lmerge/internal/temporal"
)

func codecSample() temporal.Stream {
	return temporal.Stream{
		temporal.Insert(temporal.Payload{ID: 1, Data: "alpha"}, 0, 10),
		temporal.Insert(temporal.Payload{ID: -7, Data: ""}, temporal.MinTime, temporal.Infinity),
		temporal.Adjust(temporal.Payload{ID: 1, Data: "alpha"}, 0, 10, 4),
		temporal.Stable(4),
		temporal.Stable(temporal.Infinity),
	}
}

func TestStreamCodecRoundTrip(t *testing.T) {
	want := codecSample()
	data := AppendStream(nil, want)
	got, err := DecodeStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("element %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if s, err := DecodeStream(nil); err != nil || len(s) != 0 {
		t.Errorf("empty run: %v %v", s, err)
	}
}

func TestStreamCodecTruncation(t *testing.T) {
	data := AppendStream(nil, codecSample())
	// Element boundaries are the only clean cut points; every other prefix
	// must fail with a truncation/corruption error, never panic.
	boundaries := map[int]bool{0: true, len(data): true}
	off := 0
	for off < len(data) {
		_, n, err := DecodeElement(data[off:])
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		off += n
		boundaries[off] = true
	}
	for cut := 0; cut <= len(data); cut++ {
		_, err := DecodeStream(data[:cut])
		if boundaries[cut] {
			if err != nil {
				t.Errorf("cut %d (boundary): unexpected error %v", cut, err)
			}
		} else if err == nil {
			t.Errorf("cut %d: want error", cut)
		}
	}
}

func TestStreamCodecCorruptKind(t *testing.T) {
	data := []byte{9} // kind 9 does not exist
	if _, _, err := DecodeElement(data); !errors.Is(err, ErrCodecCorrupt) {
		t.Errorf("bad kind: err = %v, want ErrCodecCorrupt", err)
	}
	// Payload length running past the buffer is truncation.
	ins := AppendElement(nil, temporal.Insert(temporal.Payload{ID: 1, Data: "abcdef"}, 0, 1))
	if _, _, err := DecodeElement(ins[:len(ins)-3]); !errors.Is(err, ErrCodecTruncated) {
		t.Errorf("short payload: err = %v, want ErrCodecTruncated", err)
	}
}
