package core

import (
	"testing"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// liveTDB restricts a TDB to events that could still matter at stable point
// l: everything whose end reaches l.
func liveTDB(t *temporal.TDB, l temporal.Time) *temporal.TDB {
	out := temporal.NewTDB()
	for _, ev := range t.Events() {
		if ev.Ve >= l {
			for i := 0; i < t.Count(ev); i++ {
				if err := out.Apply(temporal.Insert(ev.Payload, ev.Vs, ev.Ve)); err != nil {
					panic(err)
				}
			}
		}
	}
	return out
}

func TestSnapshotReconstitutesLiveState(t *testing.T) {
	sc := r3Script(81)
	streams := r3Streams(sc, 2)
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	half := len(streams[0]) / 2
	for i := 0; i < half; i++ {
		mustP(t, m, 0, streams[0][i])
		mustP(t, m, 1, streams[1][i])
	}
	snap := m.Snapshot()
	snapTDB, err := temporal.Reconstitute(snap)
	if err != nil {
		t.Fatalf("snapshot is not a valid stream: %v", err)
	}
	// The snapshot must reproduce exactly the live part of the output.
	want := liveTDB(rec.tdb, m.MaxStable())
	// Unfrozen output events are also in the snapshot; liveTDB keeps them
	// too (Ve >= MaxStable for unfrozen and half-frozen events alike).
	if !snapTDB.Equal(want) {
		t.Fatalf("snapshot TDB = %v\nwant live output %v", snapTDB, want)
	}
	if snapTDB.Stable() != m.MaxStable() {
		t.Fatalf("snapshot stable = %v, want %v", snapTDB.Stable(), m.MaxStable())
	}
}

// TestQueryJumpstart reproduces the Sec. II-4 scenario: a new query
// instance is seeded with a checkpoint snapshot plus live streams attached
// at the snapshot's stable point, and converges to the correct result for
// everything the snapshot covers.
func TestQueryJumpstart(t *testing.T) {
	sc := r3Script(83)
	streams := r3Streams(sc, 2)

	// Phase 1: the original query runs halfway, then a checkpoint is taken.
	rec1 := newRecorder(t)
	m1 := NewR3(rec1.emit)
	m1.Attach(0)
	m1.Attach(1)
	half := len(streams[0]) / 2
	for i := 0; i < half; i++ {
		mustP(t, m1, 0, streams[0][i])
		mustP(t, m1, 1, streams[1][i])
	}
	snap := m1.Snapshot()
	snapStable := m1.MaxStable()
	if snapStable == temporal.MinTime {
		t.Skip("no stable point reached before checkpoint; enlarge the script")
	}

	// Phase 2: a fresh instance is seeded with the snapshot, and the live
	// streams re-attach with the snapshot point as their join guarantee
	// (they replay from scratch, as a restarted source would).
	rec2 := newRecorder(t)
	op := NewOperator(NewR3(rec2.emit))
	seed := op.Attach(temporal.MinTime)
	for _, e := range snap {
		if err := op.Process(seed, e); err != nil {
			t.Fatal(err)
		}
	}
	if op.MaxStable() != snapStable {
		t.Fatalf("seeded instance stable = %v, want %v", op.MaxStable(), snapStable)
	}
	live0 := op.Attach(snapStable)
	live1 := op.Attach(snapStable)
	op.Detach(seed) // the checkpoint source is exhausted
	for i := 0; i < len(streams[0]); i++ {
		if err := op.Process(live0, streams[0][i]); err != nil {
			t.Fatal(err)
		}
		if err := op.Process(live1, streams[1][i]); err != nil {
			t.Fatal(err)
		}
	}
	if op.MaxStable() != temporal.Infinity {
		t.Fatal("jumpstarted query did not complete")
	}
	// The jumpstarted instance must agree with the ground truth on every
	// event that was live at (or born after) the checkpoint; the fully
	// frozen history before it was deliberately skipped.
	want := liveTDB(sc.TDB(), snapStable)
	got := liveTDB(rec2.tdb, snapStable)
	if !got.Equal(want) {
		t.Fatalf("jumpstart output differs on the live region:\n got %v\nwant %v", got, want)
	}
}

// TestQueryCutover reproduces Sec. II-5: the consumer switches from one
// running plan to a newly spun-up one (different physical presentation)
// without the application seeing a seam.
func TestQueryCutover(t *testing.T) {
	sc := r3Script(85)
	want := sc.TDB()
	oldPlan := sc.Render(gen.RenderOptions{Seed: 1, Disorder: 0.2, StableFreq: 0.05})
	newPlan := sc.Render(gen.RenderOptions{Seed: 2, Disorder: 0.4, StableFreq: 0.05, SplitInserts: true})

	rec := newRecorder(t)
	op := NewOperator(NewR3(rec.emit))
	oldID := op.Attach(temporal.MinTime)

	third := len(oldPlan) / 3
	for i := 0; i < third; i++ {
		if err := op.Process(oldID, oldPlan[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Spin up the new plan; it reprocesses from scratch while the old plan
	// keeps running, then the old plan is detached (the cutover).
	newID := op.Attach(op.MaxStable())
	pos := 0
	for i := third; i < 2*third; i++ {
		if err := op.Process(oldID, oldPlan[i]); err != nil {
			t.Fatal(err)
		}
		// The new plan spins up at double speed to catch up.
		for k := 0; k < 2 && pos < len(newPlan); k++ {
			if err := op.Process(newID, newPlan[pos]); err != nil {
				t.Fatal(err)
			}
			pos++
		}
	}
	op.Detach(oldID)
	for ; pos < len(newPlan); pos++ {
		if err := op.Process(newID, newPlan[pos]); err != nil {
			t.Fatal(err)
		}
	}
	if !rec.tdb.Equal(want) {
		t.Fatal("cutover output differs from the logical result")
	}
	if op.MaxStable() != temporal.Infinity {
		t.Fatal("cutover output incomplete")
	}
}

func TestSnapshotVariants(t *testing.T) {
	// R4 snapshots carry multiplicities; R3Naive mirrors its output index.
	a := temporal.P('A')
	for _, tc := range []struct {
		name string
		mk   func(Emit) Merger
	}{
		{"R4", func(e Emit) Merger { return NewR4(e) }},
		{"R3Naive", func(e Emit) Merger { return NewR3Naive(e) }},
	} {
		rec := temporal.NewTDB()
		m := tc.mk(func(e temporal.Element) {
			if err := rec.Apply(e); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		})
		m.Attach(0)
		mustP(t, m, 0, temporal.Insert(a, 10, 50))
		if tc.name == "R4" {
			mustP(t, m, 0, temporal.Insert(a, 10, 50)) // true duplicate
		}
		mustP(t, m, 0, temporal.Stable(20))
		snap := m.(Snapshotter).Snapshot()
		got, err := temporal.Reconstitute(snap)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !got.Equal(rec) {
			t.Fatalf("%s: snapshot %v != output %v", tc.name, got, rec)
		}
	}
}
