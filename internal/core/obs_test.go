package core

import (
	"testing"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// driveObserved feeds a divergent two-stream workload through m and returns
// the observer node. Stream 1 trails stream 0 and raises the final stable.
func driveObserved(t *testing.T, m Merger) *obs.Node {
	t.Helper()
	reg := obs.NewRegistry()
	n := reg.Node("merge")
	m.(Observable).Observe(n)
	m.Attach(0)
	m.Attach(1)
	for i := 0; i < 32; i++ {
		v := temporal.Time(1 + i)
		e := temporal.Insert(temporal.P(int64(i)), v, v+10)
		if err := m.Process(0, e); err != nil {
			t.Fatalf("stream 0 rejected %v: %v", e, err)
		}
		if err := m.Process(1, e); err != nil {
			t.Fatalf("stream 1 rejected %v: %v", e, err)
		}
		if i%8 == 7 {
			if err := m.Process(0, temporal.Stable(v)); err != nil {
				t.Fatalf("stable rejected: %v", err)
			}
		}
	}
	if err := m.Process(1, temporal.Stable(50)); err != nil {
		t.Fatalf("final stable rejected: %v", err)
	}
	return n
}

// TestObserverMirrorsStats proves, for every algorithm, that the telemetry
// counters reconcile exactly with the merger's own Stats — the observer is a
// second, concurrently-readable set of books over the same traffic.
func TestObserverMirrorsStats(t *testing.T) {
	discard := func(temporal.Element) {}
	cases := []struct {
		name string
		m    Merger
	}{
		{"R0", NewR0(discard)},
		{"R1", NewR1(discard)},
		{"R2", NewR2(discard)},
		{"R2Dup", NewR2Dup(discard)},
		{"R3", NewR3(discard)},
		{"R3Naive", NewR3Naive(discard)},
		{"R4", NewR4(discard)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := driveObserved(t, c.m)
			st := *c.m.Stats()
			s := n.Snapshot()
			if s.InInserts != st.InInserts || s.InAdjusts != st.InAdjusts || s.InStables != st.InStables {
				t.Errorf("input counters diverge: obs=%+v stats=%+v", s, st)
			}
			if s.OutInserts != st.OutInserts || s.OutAdjusts != st.OutAdjusts || s.OutStables != st.OutStables {
				t.Errorf("output counters diverge: obs=%+v stats=%+v", s, st)
			}
			if s.Dropped != st.Dropped || s.Warnings != st.ConsistencyWarnings {
				t.Errorf("drop/warning counters diverge: obs=%+v stats=%+v", s, st)
			}
			if got := temporal.Time(s.OutFrontier); got != c.m.MaxStable() {
				t.Errorf("output frontier %d != MaxStable %d", got, c.m.MaxStable())
			}
			if s.InFrontier != 50 {
				t.Errorf("input frontier: got %d want 50", s.InFrontier)
			}
			// Stream 1 raised the last output stable: it leads.
			if s.Leadership.Leader != 1 {
				t.Errorf("leader: got %d want 1", s.Leadership.Leader)
			}
			if s.Leadership.Switches < 1 {
				t.Errorf("expected at least one leadership switch, got %d", s.Leadership.Switches)
			}
			if s.Freshness.Samples == 0 {
				t.Error("no freshness samples recorded")
			}
			if s.Freshness.Min < 0 {
				t.Errorf("negative freshness lag: %+v", s.Freshness)
			}
		})
	}
}

// TestObserverWithdrawals proves withdrawal accounting: an event one stream
// inserted but the stable-raising stream never carried is withdrawn (Sec.
// V-C absent treatment) and counted.
func TestObserverWithdrawals(t *testing.T) {
	var out temporal.Stream
	m := NewR3(func(e temporal.Element) { out = append(out, e) })
	n := obs.NewNode("merge")
	m.Observe(n)
	m.Attach(0)
	m.Attach(1)
	if err := m.Process(0, temporal.Insert(temporal.P(7), 5, 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Process(1, temporal.Stable(20)); err != nil {
		t.Fatal(err)
	}
	s := n.Snapshot()
	if s.Withdrawals != 1 {
		t.Fatalf("withdrawals: got %d want 1 (output %v)", s.Withdrawals, out)
	}
	if s.OutAdjusts != 1 {
		t.Fatalf("out adjusts: got %d want 1", s.OutAdjusts)
	}
}

// TestOperatorObserver proves the operator-level contributions: feedback
// signal counts, attach/detach trace events, and the live-state gauge.
func TestOperatorObserver(t *testing.T) {
	reg := obs.NewRegistry()
	n := reg.Node("op")
	var signals []Feedback
	o := NewOperator(NewR3(nil),
		WithFeedback(func(f Feedback) { signals = append(signals, f) }, 0),
		WithObserver(n))
	a := o.Attach(temporal.MinTime)
	b := o.Attach(temporal.MinTime)
	for i := 0; i < 8; i++ {
		v := temporal.Time(1 + i)
		if err := o.Process(a, temporal.Insert(temporal.P(int64(i)), v, v+5)); err != nil {
			t.Fatal(err)
		}
	}
	// Stream a raises a stable; b has made no progress → fast-forward signal.
	if err := o.Process(a, temporal.Stable(4)); err != nil {
		t.Fatal(err)
	}
	if len(signals) == 0 {
		t.Fatal("expected a fast-forward signal to the lagging input")
	}
	s := n.Snapshot()
	if s.FFSignals != int64(len(signals)) {
		t.Fatalf("ff signals: obs=%d actual=%d", s.FFSignals, len(signals))
	}
	if s.LiveNodes == 0 {
		t.Fatal("live-nodes gauge not updated on stable advance")
	}
	o.Detach(b)
	var attaches, detaches, ffs int
	for _, e := range reg.Trace().Events() {
		switch e.Kind {
		case obs.EventAttach:
			attaches++
		case obs.EventDetach:
			detaches++
		case obs.EventFastForward:
			ffs++
		}
	}
	if attaches != 2 || detaches != 1 {
		t.Fatalf("trace events: attaches=%d detaches=%d", attaches, detaches)
	}
	if ffs != len(signals) {
		t.Fatalf("trace ff events: got %d want %d", ffs, len(signals))
	}
}

// TestObservableDetach proves Observe(nil) detaches cleanly mid-run.
func TestObservableDetach(t *testing.T) {
	m := NewR2(nil)
	n := obs.NewNode("merge")
	m.Observe(n)
	m.Attach(0)
	if err := m.Process(0, temporal.Insert(temporal.P(1), 1, 5)); err != nil {
		t.Fatal(err)
	}
	m.Observe(nil)
	if err := m.Process(0, temporal.Insert(temporal.P(2), 2, 6)); err != nil {
		t.Fatal(err)
	}
	if got := n.Snapshot().InInserts; got != 1 {
		t.Fatalf("counters advanced after detach: %d", got)
	}
	if m.Telemetry() != nil {
		t.Fatal("telemetry accessor should be nil after detach")
	}
}
