package core

import (
	"testing"

	"lmerge/internal/temporal"
)

func feedOne(t *testing.T, m Merger, s StreamID, e temporal.Element) {
	t.Helper()
	if err := m.Process(s, e); err != nil {
		t.Fatalf("process %v on stream %d: %v", e, s, err)
	}
}

// TestR4DetachReclaimsState attaches a third input under load, lets it
// contribute events no other input carries, and checks that Detach both
// withdraws those events from the output and deletes their index nodes
// instead of leaking them (they would otherwise survive until — or past —
// the next stable sweep).
func TestR4DetachReclaimsState(t *testing.T) {
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	m.Attach(0)
	m.Attach(1)
	for i := 0; i < 20; i++ {
		e := temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity)
		feedOne(t, m, 0, e)
		feedOne(t, m, 1, e)
	}
	baseline := m.Live()
	m.Attach(2)
	for i := 0; i < 15; i++ {
		feedOne(t, m, 2, temporal.Insert(temporal.P(int64(100+i)), temporal.Time(150+i), temporal.Infinity))
	}
	if m.Live() != baseline+15 {
		t.Fatalf("Live() = %d with joiner attached, want %d", m.Live(), baseline+15)
	}
	m.Detach(2)
	if m.Live() != baseline {
		t.Fatalf("Live() = %d after detach, want baseline %d", m.Live(), baseline)
	}
	feedOne(t, m, 0, temporal.Stable(temporal.Infinity))
	if m.Live() != baseline {
		t.Fatalf("Live() = %d after next stable, want baseline %d", m.Live(), baseline)
	}
	// The joiner's withdrawn events must be gone from the output TDB.
	var want temporal.Stream
	for i := 0; i < 20; i++ {
		want = append(want, temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity))
	}
	if !rec.tdb.Equal(temporal.MustReconstitute(want)) {
		t.Errorf("output TDB after detach = %v, want %v", rec.tdb, temporal.MustReconstitute(want))
	}
	if m.Stats().ConsistencyWarnings != 0 {
		t.Errorf("detach raised %d consistency warnings", m.Stats().ConsistencyWarnings)
	}
}

// TestR4DetachHalfFrozen covers the one case Detach cannot settle on its
// own: a node whose only voucher leaves after the node's start became half
// frozen. The output event can no longer be withdrawn, but the node itself
// must still be retired by the next stable sweep.
func TestR4DetachHalfFrozen(t *testing.T) {
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	m.Attach(0)
	m.Attach(1)
	shared := temporal.Insert(temporal.P(1), 10, temporal.Infinity)
	feedOne(t, m, 0, shared)
	feedOne(t, m, 1, shared)
	// Stream 1 alone carries X, then vouches past it, half-freezing it.
	feedOne(t, m, 1, temporal.Insert(temporal.P(2), 30, temporal.Infinity))
	feedOne(t, m, 1, temporal.Stable(50))
	m.Detach(1)
	if m.Live() != 2 {
		t.Fatalf("Live() = %d right after detach, want 2 (half-frozen node must survive)", m.Live())
	}
	feedOne(t, m, 0, temporal.Stable(100))
	if m.Live() != 1 {
		t.Fatalf("Live() = %d after next stable, want 1", m.Live())
	}
}

// TestR3DetachReclaimsState is the R3 counterpart of
// TestR4DetachReclaimsState.
func TestR3DetachReclaimsState(t *testing.T) {
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	for i := 0; i < 20; i++ {
		e := temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity)
		feedOne(t, m, 0, e)
		feedOne(t, m, 1, e)
	}
	baseline := m.Live()
	m.Attach(2)
	for i := 0; i < 15; i++ {
		feedOne(t, m, 2, temporal.Insert(temporal.P(int64(100+i)), temporal.Time(150+i), temporal.Infinity))
	}
	if m.Live() != baseline+15 {
		t.Fatalf("Live() = %d with joiner attached, want %d", m.Live(), baseline+15)
	}
	m.Detach(2)
	if m.Live() != baseline {
		t.Fatalf("Live() = %d after detach, want baseline %d", m.Live(), baseline)
	}
	feedOne(t, m, 0, temporal.Stable(temporal.Infinity))
	var want temporal.Stream
	for i := 0; i < 20; i++ {
		want = append(want, temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity))
	}
	if !rec.tdb.Equal(temporal.MustReconstitute(want)) {
		t.Errorf("output TDB after detach = %v, want %v", rec.tdb, temporal.MustReconstitute(want))
	}
	if m.Stats().ConsistencyWarnings != 0 {
		t.Errorf("detach raised %d consistency warnings", m.Stats().ConsistencyWarnings)
	}
}

// TestReattachSkipsFrozenBoundary is the crash/re-attach corner that chaos
// testing flushed out: an event frozen with Ve exactly at the stable point
// survives the sweep that froze it (retirement is strict: inVe < t), so it is
// still indexed when its stream detaches. A replacement stream that catches
// up via fast-forward legitimately skips the event (Ve <= ff, Sec. V-D); when
// it later raises a stable, its missing entry must read as agreement with the
// settled output — not as a withdrawal claim for a half-frozen event, which
// would pin the node and flag a false consistency warning on every
// subsequent sweep.
func TestReattachSkipsFrozenBoundary(t *testing.T) {
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	// Stream 0 delivers an event ending exactly at its stable point, then
	// crashes.
	feedOne(t, m, 0, temporal.Insert(temporal.P(1), 5, 10))
	feedOne(t, m, 0, temporal.Stable(10))
	m.Detach(0)
	if m.Live() != 1 {
		t.Fatalf("Live() = %d after boundary detach, want the frozen node kept", m.Live())
	}
	// Stream 1 re-attaches fast-forwarded to 10: it skips the frozen event
	// and presents only later times.
	feedOne(t, m, 1, temporal.Insert(temporal.P(2), 12, 18))
	feedOne(t, m, 1, temporal.Stable(20))
	feedOne(t, m, 1, temporal.Stable(temporal.Infinity))
	if w := m.Stats().ConsistencyWarnings; w != 0 {
		t.Errorf("re-attach raised %d consistency warnings", w)
	}
	if m.Live() != 0 {
		t.Errorf("Live() = %d after final stable, frozen-boundary node leaked", m.Live())
	}
	want := temporal.Stream{
		temporal.Insert(temporal.P(1), 5, 10),
		temporal.Insert(temporal.P(2), 12, 18),
	}
	if !rec.tdb.Equal(temporal.MustReconstitute(want)) {
		t.Errorf("output TDB = %v, want %v", rec.tdb, temporal.MustReconstitute(want))
	}
}
