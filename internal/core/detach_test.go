package core

import (
	"testing"

	"lmerge/internal/temporal"
)

func feedOne(t *testing.T, m Merger, s StreamID, e temporal.Element) {
	t.Helper()
	if err := m.Process(s, e); err != nil {
		t.Fatalf("process %v on stream %d: %v", e, s, err)
	}
}

// TestR4DetachReclaimsState attaches a third input under load, lets it
// contribute events no other input carries, and checks that Detach both
// withdraws those events from the output and deletes their index nodes
// instead of leaking them (they would otherwise survive until — or past —
// the next stable sweep).
func TestR4DetachReclaimsState(t *testing.T) {
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	m.Attach(0)
	m.Attach(1)
	for i := 0; i < 20; i++ {
		e := temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity)
		feedOne(t, m, 0, e)
		feedOne(t, m, 1, e)
	}
	baseline := m.Live()
	m.Attach(2)
	for i := 0; i < 15; i++ {
		feedOne(t, m, 2, temporal.Insert(temporal.P(int64(100+i)), temporal.Time(150+i), temporal.Infinity))
	}
	if m.Live() != baseline+15 {
		t.Fatalf("Live() = %d with joiner attached, want %d", m.Live(), baseline+15)
	}
	m.Detach(2)
	if m.Live() != baseline {
		t.Fatalf("Live() = %d after detach, want baseline %d", m.Live(), baseline)
	}
	feedOne(t, m, 0, temporal.Stable(temporal.Infinity))
	if m.Live() != baseline {
		t.Fatalf("Live() = %d after next stable, want baseline %d", m.Live(), baseline)
	}
	// The joiner's withdrawn events must be gone from the output TDB.
	var want temporal.Stream
	for i := 0; i < 20; i++ {
		want = append(want, temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity))
	}
	if !rec.tdb.Equal(temporal.MustReconstitute(want)) {
		t.Errorf("output TDB after detach = %v, want %v", rec.tdb, temporal.MustReconstitute(want))
	}
	if m.Stats().ConsistencyWarnings != 0 {
		t.Errorf("detach raised %d consistency warnings", m.Stats().ConsistencyWarnings)
	}
}

// TestR4DetachHalfFrozen covers the one case Detach cannot settle on its
// own: a node whose only voucher leaves after the node's start became half
// frozen. The output event can no longer be withdrawn, but the node itself
// must still be retired by the next stable sweep.
func TestR4DetachHalfFrozen(t *testing.T) {
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	m.Attach(0)
	m.Attach(1)
	shared := temporal.Insert(temporal.P(1), 10, temporal.Infinity)
	feedOne(t, m, 0, shared)
	feedOne(t, m, 1, shared)
	// Stream 1 alone carries X, then vouches past it, half-freezing it.
	feedOne(t, m, 1, temporal.Insert(temporal.P(2), 30, temporal.Infinity))
	feedOne(t, m, 1, temporal.Stable(50))
	m.Detach(1)
	if m.Live() != 2 {
		t.Fatalf("Live() = %d right after detach, want 2 (half-frozen node must survive)", m.Live())
	}
	feedOne(t, m, 0, temporal.Stable(100))
	if m.Live() != 1 {
		t.Fatalf("Live() = %d after next stable, want 1", m.Live())
	}
}

// TestR3DetachReclaimsState is the R3 counterpart of
// TestR4DetachReclaimsState.
func TestR3DetachReclaimsState(t *testing.T) {
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	for i := 0; i < 20; i++ {
		e := temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity)
		feedOne(t, m, 0, e)
		feedOne(t, m, 1, e)
	}
	baseline := m.Live()
	m.Attach(2)
	for i := 0; i < 15; i++ {
		feedOne(t, m, 2, temporal.Insert(temporal.P(int64(100+i)), temporal.Time(150+i), temporal.Infinity))
	}
	if m.Live() != baseline+15 {
		t.Fatalf("Live() = %d with joiner attached, want %d", m.Live(), baseline+15)
	}
	m.Detach(2)
	if m.Live() != baseline {
		t.Fatalf("Live() = %d after detach, want baseline %d", m.Live(), baseline)
	}
	feedOne(t, m, 0, temporal.Stable(temporal.Infinity))
	var want temporal.Stream
	for i := 0; i < 20; i++ {
		want = append(want, temporal.Insert(temporal.P(int64(i)), temporal.Time(100+i), temporal.Infinity))
	}
	if !rec.tdb.Equal(temporal.MustReconstitute(want)) {
		t.Errorf("output TDB after detach = %v, want %v", rec.tdb, temporal.MustReconstitute(want))
	}
	if m.Stats().ConsistencyWarnings != 0 {
		t.Errorf("detach raised %d consistency warnings", m.Stats().ConsistencyWarnings)
	}
}
