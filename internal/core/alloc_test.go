package core

import (
	"testing"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// allocRound returns a closure driving one steady-state round through m:
// 64 fresh timestamps, each event presented on both inputs, with a trailing
// stable every 16 elements. Timestamps keep advancing across calls so every
// round does real insert/freeze work rather than replaying dropped
// duplicates.
func allocRound(tb testing.TB, m Merger) (round func(), elements int) {
	m.Attach(0)
	m.Attach(1)
	v := temporal.Time(0)
	round = func() {
		for i := 0; i < 64; i++ {
			v++
			e := temporal.Insert(temporal.P(int64(i&3)), v, v+16)
			if err := m.Process(0, e); err != nil {
				tb.Fatalf("stream 0 rejected %v: %v", e, err)
			}
			if err := m.Process(1, e); err != nil {
				tb.Fatalf("stream 1 rejected %v: %v", e, err)
			}
			if i&15 == 15 {
				if err := m.Process(0, temporal.Stable(v-8)); err != nil {
					tb.Fatalf("stable rejected: %v", err)
				}
			}
		}
	}
	return round, 64*2 + 4
}

// TestProcessAllocs pins the per-element allocation budget of each merge
// algorithm's Process hot path at steady state. R0–R2 keep fixed-size or
// recycled state and must not allocate at all; R3 and R4 pay for index-node
// creation (tree nodes, and for R4 the third-tier VeSets) but nothing
// per-sweep — the budgets below are the measured post-optimisation costs
// with headroom for allocator jitter, and exist to catch regressions such
// as a reintroduced per-stable scratch allocation.
func TestProcessAllocs(t *testing.T) {
	discard := func(temporal.Element) {}
	cases := []struct {
		name   string
		m      Merger
		budget float64 // allocs per element, averaged over a round
	}{
		{"R0", NewR0(discard), 0},
		{"R1", NewR1(discard), 0},
		{"R2", NewR2(discard), 0},
		{"R2Dup", NewR2Dup(discard), 0},
		{"R3", NewR3(discard), 1.3},
		{"R3Naive", NewR3Naive(discard), 2},
		{"R4", NewR4(discard), 1.3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			round, elements := allocRound(t, c.m)
			for i := 0; i < 50; i++ {
				round() // reach steady state: scratch, freelists, map capacity
			}
			perElement := testing.AllocsPerRun(20, round) / float64(elements)
			if perElement > c.budget {
				t.Errorf("%s: %.2f allocs/element at steady state, budget %.2f", c.name, perElement, c.budget)
			}
			t.Logf("%s: %.2f allocs/element (budget %.2f)", c.name, perElement, c.budget)
		})
	}
}

// TestProcessAllocsObserved repeats the steady-state budgets with a telemetry
// node attached: instrumentation must not add a single allocation per element
// to any algorithm's hot path, or observers would be unusable in production.
func TestProcessAllocsObserved(t *testing.T) {
	discard := func(temporal.Element) {}
	cases := []struct {
		name   string
		m      Merger
		budget float64
	}{
		{"R0", NewR0(discard), 0},
		{"R1", NewR1(discard), 0},
		{"R2", NewR2(discard), 0},
		{"R2Dup", NewR2Dup(discard), 0},
		{"R3", NewR3(discard), 1.3},
		{"R3Naive", NewR3Naive(discard), 2},
		{"R4", NewR4(discard), 1.3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			c.m.(Observable).Observe(reg.Node(c.name))
			round, elements := allocRound(t, c.m)
			for i := 0; i < 50; i++ {
				round()
			}
			perElement := testing.AllocsPerRun(20, round) / float64(elements)
			if perElement > c.budget {
				t.Errorf("%s observed: %.2f allocs/element at steady state, budget %.2f", c.name, perElement, c.budget)
			}
			t.Logf("%s observed: %.2f allocs/element (budget %.2f)", c.name, perElement, c.budget)
		})
	}
}
