package core

import (
	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// Handoff is the state-migration face of a merger: the paper's jumpstart /
// cutover machinery (Sec. II-4/5) applied internally, between partition
// instances of one keyed scale-out merge. Where Snapshot serialises live
// state as a stream for an *external* restart, Handoff moves the index nodes
// themselves — every per-stream entry intact — so a recipient instance
// continues exactly where the donor stopped, with no re-emission and no loss
// of vouching information.
//
// Contract (enforced by internal/partition's migration protocol):
//
//   - Key disjointness: the moved keys must be absent from the recipient's
//     index (hash routing guarantees this — all presentations of one key go
//     to one partition at a time).
//   - Clock ordering: the recipient's output stable point must not exceed
//     the donor's at install time. Unemitted donor nodes always satisfy
//     Vs >= donor stable, so under this ordering every deferred emission the
//     recipient later makes stays legal against its own output stream.
//   - Stable idempotence: the recipient may re-sweep stable points the donor
//     already processed over the transplanted nodes; reconciliation is
//     state-based, so a re-sweep is a no-op.
type Handoff interface {
	// HandoffCapable reports whether the merger's policy point supports
	// state handoff. The InsertFullyFrozen policy does not: its output
	// stable point is held back to a data-dependent key, so donor and
	// recipient clocks cannot be ordered by the drain barrier alone.
	HandoffCapable() bool
	// ExtractKeys removes and returns every live node whose payload matches,
	// together with the donor's output stable point at extraction.
	ExtractKeys(match func(temporal.Payload) bool) HandoffState
	// InstallKeys merges a previously extracted state into this merger. The
	// state must come from a merger of the same algorithm and the moved keys
	// must be absent here.
	InstallKeys(st HandoffState)
}

// HandoffState is an opaque bundle of extracted per-key merge state.
type HandoffState struct {
	// Clock is the donor's output stable point at extraction time.
	Clock temporal.Time
	// Keys is the number of live (Vs, Payload) nodes moved.
	Keys int

	r3 []*index.Node2
	r4 []*index.Node3
}

// HandoffCapable implements Handoff for R3: every policy point except the
// fully-frozen insert holdback (whose output stable point is data-dependent).
func (m *R3) HandoffCapable() bool { return m.opts.Insert != InsertFullyFrozen }

// ExtractKeys implements Handoff for R3: matching nodes are unlinked from the
// two-tier index and handed over whole, second-tier entries included.
func (m *R3) ExtractKeys(match func(temporal.Payload) bool) HandoffState {
	st := HandoffState{Clock: m.maxStable}
	m.index.Ascend(func(n *index.Node2) bool {
		if match(n.Event().Payload) {
			st.r3 = append(st.r3, n)
		}
		return true
	})
	for _, n := range st.r3 {
		m.index.DeleteNode(n.Key())
	}
	st.Keys = len(st.r3)
	return st
}

// InstallKeys implements Handoff for R3.
func (m *R3) InstallKeys(st HandoffState) {
	for _, n := range st.r3 {
		m.index.PutNode(n)
	}
}

// HandoffCapable implements Handoff for R4: the multiset merger has no
// holdback policies, so it always qualifies.
func (m *R4) HandoffCapable() bool { return true }

// ExtractKeys implements Handoff for R4: matching nodes are unlinked from the
// three-tier index and handed over whole, per-stream Ve multisets included.
func (m *R4) ExtractKeys(match func(temporal.Payload) bool) HandoffState {
	st := HandoffState{Clock: m.maxStable}
	m.index.Ascend(func(n *index.Node3) bool {
		if match(n.Event().Payload) {
			st.r4 = append(st.r4, n)
		}
		return true
	})
	for _, n := range st.r4 {
		m.index.DeleteNode(n.Key())
	}
	st.Keys = len(st.r4)
	return st
}

// InstallKeys implements Handoff for R4.
func (m *R4) InstallKeys(st HandoffState) {
	for _, n := range st.r4 {
		m.index.PutNode(n)
	}
}
