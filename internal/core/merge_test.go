package core

import (
	"math/rand"
	"testing"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// recorder collects a merger's output, failing the test immediately if the
// merger ever emits an element that is invalid on its own output stream.
type recorder struct {
	t   *testing.T
	out temporal.Stream
	tdb *temporal.TDB
}

func newRecorder(t *testing.T) *recorder {
	return &recorder{t: t, tdb: temporal.NewTDB()}
}

func (r *recorder) emit(e temporal.Element) {
	r.out = append(r.out, e)
	if err := r.tdb.Apply(e); err != nil {
		r.t.Fatalf("merger emitted invalid element #%d: %v", len(r.out), err)
	}
}

// interleavings enumerates delivery orders for a set of streams. Each order
// is a sequence of stream ids; the feeder pops the next undelivered element
// of that stream.
func interleavings(name string, n int, lens []int, seed int64) []int {
	total := 0
	for _, l := range lens {
		total += l
	}
	order := make([]int, 0, total)
	switch name {
	case "roundrobin":
		left := append([]int(nil), lens...)
		for remaining := total; remaining > 0; {
			for s := 0; s < n; s++ {
				if left[s] > 0 {
					order = append(order, s)
					left[s]--
					remaining--
				}
			}
		}
	case "sequential": // stream 0 completes before stream 1 starts, etc.
		for s := 0; s < n; s++ {
			for i := 0; i < lens[s]; i++ {
				order = append(order, s)
			}
		}
	case "skew": // stream 0 runs far ahead of the rest
		left := append([]int(nil), lens...)
		for remaining := total; remaining > 0; {
			for burst := 0; burst < 4 && left[0] > 0; burst++ {
				order = append(order, 0)
				left[0]--
				remaining--
			}
			for s := 1; s < n; s++ {
				if left[s] > 0 {
					order = append(order, s)
					left[s]--
					remaining--
				}
			}
		}
	case "random":
		rng := rand.New(rand.NewSource(seed))
		left := append([]int(nil), lens...)
		for remaining := total; remaining > 0; {
			s := rng.Intn(n)
			if left[s] > 0 {
				order = append(order, s)
				left[s]--
				remaining--
			}
		}
	}
	return order
}

var patterns = []string{"roundrobin", "sequential", "skew", "random"}

// feed delivers the streams to the merger in the given order. If oracle is
// non-nil it runs after every delivered element with the current input TDBs.
func feed(t *testing.T, m Merger, streams []temporal.Stream, order []int,
	oracle func(raiser int, inTDBs []*temporal.TDB)) {
	t.Helper()
	pos := make([]int, len(streams))
	inTDBs := make([]*temporal.TDB, len(streams))
	for i := range streams {
		inTDBs[i] = temporal.NewTDB()
		m.Attach(i)
	}
	for _, s := range order {
		e := streams[s][pos[s]]
		pos[s]++
		if err := inTDBs[s].Apply(e); err != nil {
			t.Fatalf("input stream %d delivered invalid element: %v", s, err)
		}
		if err := m.Process(s, e); err != nil {
			t.Fatalf("merger rejected %v from stream %d: %v", e, s, err)
		}
		if oracle != nil {
			oracle(s, inTDBs)
		}
	}
}

func r3Script(seed int64) *gen.Script {
	return gen.NewScript(gen.Config{
		Events:        120,
		Seed:          seed,
		EventDuration: 80,
		MaxGap:        12,
		Revisions:     0.6,
		RemoveProb:    0.25,
		PayloadBytes:  8,
	})
}

func r3Streams(sc *gen.Script, n int) []temporal.Stream {
	streams := make([]temporal.Stream, n)
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{
			Seed:         int64(100 + i),
			Disorder:     0.3,
			StableFreq:   0.08,
			SplitInserts: i%2 == 1,
		})
	}
	return streams
}

// TestR3Equivalence: merging divergent renderings under every delivery
// pattern yields an output stream equivalent to the script's TDB.
func TestR3Equivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		sc := r3Script(seed)
		want := sc.TDB()
		streams := r3Streams(sc, 3)
		lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
		for _, pat := range patterns {
			rec := newRecorder(t)
			m := NewR3(rec.emit)
			feed(t, m, streams, interleavings(pat, 3, lens, seed), nil)
			if !rec.tdb.Equal(want) {
				t.Fatalf("seed %d pattern %s: output TDB %v != script TDB %v", seed, pat, rec.tdb, want)
			}
			if rec.tdb.Stable() != temporal.Infinity {
				t.Fatalf("seed %d pattern %s: output did not reach stable(∞)", seed, pat)
			}
			if m.Live() != 0 {
				t.Fatalf("seed %d pattern %s: %d nodes leaked after stable(∞)", seed, pat, m.Live())
			}
			if w := m.Stats().ConsistencyWarnings; w != 0 {
				t.Fatalf("seed %d pattern %s: %d consistency warnings on consistent inputs", seed, pat, w)
			}
		}
	}
}

// TestR3CompatibilityOracle validates the output against the paper's C1–C3
// conditions after every single input element.
func TestR3CompatibilityOracle(t *testing.T) {
	sc := r3Script(7)
	streams := r3Streams(sc, 3)
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR3(rec.emit)
		step := 0
		feed(t, m, streams, interleavings(pat, 3, lens, 7), func(raiser int, in []*temporal.TDB) {
			step++
			if err := temporal.CheckCompatR3(rec.tdb, in); err != nil {
				t.Fatalf("pattern %s step %d: %v", pat, step, err)
			}
		})
	}
}

// TestR4Equivalence exercises the general merger on multiset workloads with
// duplicate (Vs, Payload) keys.
func TestR4Equivalence(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		cfg := gen.Config{
			Events:        120,
			Seed:          seed,
			EventDuration: 80,
			MaxGap:        12,
			Revisions:     0.5,
			RemoveProb:    0.2,
			PayloadBytes:  8,
			DupProb:       0.3,
		}
		sc := gen.NewScript(cfg)
		want := sc.TDB()
		streams := make([]temporal.Stream, 3)
		for i := range streams {
			streams[i] = sc.Render(gen.RenderOptions{Seed: int64(200 + i), Disorder: 0.4, StableFreq: 0.08})
		}
		lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
		for _, pat := range patterns {
			rec := newRecorder(t)
			m := NewR4(rec.emit)
			feed(t, m, streams, interleavings(pat, 3, lens, seed), nil)
			if !rec.tdb.Equal(want) {
				t.Fatalf("seed %d pattern %s: output TDB differs\n got %v\nwant %v", seed, pat, rec.tdb, want)
			}
			if m.Live() != 0 {
				t.Fatalf("seed %d pattern %s: %d nodes leaked", seed, pat, m.Live())
			}
			if w := m.Stats().ConsistencyWarnings; w != 0 {
				t.Fatalf("seed %d pattern %s: %d consistency warnings", seed, pat, w)
			}
		}
	}
}

// TestR4StrongOracle validates the R4 conformance condition of Sec. III-D
// each time the output stable point advances.
func TestR4StrongOracle(t *testing.T) {
	cfg := gen.Config{
		Events: 100, Seed: 5, EventDuration: 60, MaxGap: 10,
		Revisions: 0.5, RemoveProb: 0.2, PayloadBytes: 8, DupProb: 0.25,
	}
	sc := gen.NewScript(cfg)
	streams := make([]temporal.Stream, 3)
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{Seed: int64(300 + i), Disorder: 0.3, StableFreq: 0.1})
	}
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR4(rec.emit)
		last := temporal.MinTime
		feed(t, m, streams, interleavings(pat, 3, lens, 5), func(raiser int, in []*temporal.TDB) {
			if ms := m.MaxStable(); ms > last {
				last = ms
				if err := temporal.CheckStrongR4(rec.tdb, in[raiser]); err != nil {
					t.Fatalf("pattern %s at stable %v: %v", pat, ms, err)
				}
			}
		})
	}
}

// TestR4HandlesR3Workloads: the general merger must subsume the key-
// constrained case.
func TestR4HandlesR3Workloads(t *testing.T) {
	sc := r3Script(9)
	streams := r3Streams(sc, 3)
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	feed(t, m, streams, interleavings("random", 3, lens, 9), nil)
	if !rec.tdb.Equal(sc.TDB()) {
		t.Fatal("R4 output differs from script TDB on an R3 workload")
	}
}

// TestR3NaiveEquivalence: the LMR3- baseline must be correct too, just
// costlier.
func TestR3NaiveEquivalence(t *testing.T) {
	sc := r3Script(11)
	want := sc.TDB()
	streams := r3Streams(sc, 3)
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR3Naive(rec.emit)
		feed(t, m, streams, interleavings(pat, 3, lens, 11), nil)
		if !rec.tdb.Equal(want) {
			t.Fatalf("pattern %s: LMR3- output TDB differs", pat)
		}
		if w := m.Stats().ConsistencyWarnings; w != 0 {
			t.Fatalf("pattern %s: %d consistency warnings", pat, w)
		}
	}
}

// TestR3NaiveCompatibilityOracle runs C1–C3 against LMR3- as well.
func TestR3NaiveCompatibilityOracle(t *testing.T) {
	sc := r3Script(13)
	streams := r3Streams(sc, 2)
	lens := []int{len(streams[0]), len(streams[1])}
	rec := newRecorder(t)
	m := NewR3Naive(rec.emit)
	feed(t, m, streams, interleavings("random", 2, lens, 13), func(raiser int, in []*temporal.TDB) {
		if err := temporal.CheckCompatR3(rec.tdb, in); err != nil {
			t.Fatal(err)
		}
	})
}

// orderedStreams renders n presentations for the given ordered kind.
func orderedStreams(t *testing.T, kind gen.OrderedKind, n int, unique bool) (*gen.Script, []temporal.Stream) {
	t.Helper()
	cfg := gen.Config{
		Events: 300, Seed: 21, MaxGap: 10, PayloadBytes: 8,
		UniqueVs: unique,
	}
	if !unique {
		cfg.GroupSize = 3
	}
	sc := gen.NewScript(cfg)
	streams := make([]temporal.Stream, n)
	for i := range streams {
		streams[i] = sc.RenderOrdered(kind, gen.RenderOptions{Seed: int64(400 + i), StableFreq: 0.05})
	}
	return sc, streams
}

func TestR0Merge(t *testing.T) {
	sc, streams := orderedStreams(t, gen.OrderedStrict, 3, true)
	lens := make([]int, 3)
	for i := range streams {
		lens[i] = len(streams[i])
	}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR0(rec.emit)
		feed(t, m, streams, interleavings(pat, 3, lens, 21), nil)
		if !rec.tdb.Equal(sc.TDB()) {
			t.Fatalf("pattern %s: R0 output TDB differs", pat)
		}
		// Strictly increasing output Vs, no duplicates.
		last := temporal.MinTime
		for _, e := range rec.out {
			if e.Kind == temporal.KindInsert {
				if e.Vs <= last {
					t.Fatalf("pattern %s: output Vs not strictly increasing", pat)
				}
				last = e.Vs
			}
		}
	}
}

func TestR1Merge(t *testing.T) {
	sc, streams := orderedStreams(t, gen.OrderedDeterministic, 3, false)
	lens := make([]int, 3)
	for i := range streams {
		lens[i] = len(streams[i])
	}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR1(rec.emit)
		feed(t, m, streams, interleavings(pat, 3, lens, 22), nil)
		if !rec.tdb.Equal(sc.TDB()) {
			t.Fatalf("pattern %s: R1 output TDB differs", pat)
		}
	}
}

func TestR2Merge(t *testing.T) {
	sc, streams := orderedStreams(t, gen.OrderedShuffledTies, 3, false)
	lens := make([]int, 3)
	for i := range streams {
		lens[i] = len(streams[i])
	}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR2(rec.emit)
		feed(t, m, streams, interleavings(pat, 3, lens, 23), nil)
		if !rec.tdb.Equal(sc.TDB()) {
			t.Fatalf("pattern %s: R2 output TDB differs", pat)
		}
	}
}

// TestR1MismergesShuffledTies documents why R2 exists: when same-Vs order
// differs across streams, the counting merger emits the i-th element of
// whichever stream reaches position i first — here duplicating A and losing
// B entirely.
func TestR1MismergesShuffledTies(t *testing.T) {
	a, b := temporal.P('A'), temporal.P('B')
	s1 := temporal.Stream{temporal.Insert(a, 1, 5), temporal.Insert(b, 1, 6)}
	s2 := temporal.Stream{temporal.Insert(b, 1, 6), temporal.Insert(a, 1, 5)}
	out := temporal.NewTDB()
	m := NewR1(func(e temporal.Element) {
		if err := out.Apply(e); err != nil {
			t.Fatalf("apply: %v", err)
		}
	})
	m.Attach(0)
	m.Attach(1)
	// Delivery order s1[0], s2[0], s2[1], s1[1]: s2 reaches position 1 first.
	for _, step := range []struct {
		s StreamID
		e temporal.Element
	}{{0, s1[0]}, {1, s2[0]}, {1, s2[1]}, {0, s1[1]}} {
		if err := m.Process(step.s, step.e); err != nil {
			t.Fatal(err)
		}
	}
	want := temporal.MustReconstitute(s1)
	if out.Equal(want) {
		t.Fatal("R1 unexpectedly merged an R2 workload correctly; the counterexample is gone")
	}
	if out.Count(temporal.Ev(a, 1, 5)) != 2 || out.Count(temporal.Ev(b, 1, 6)) != 0 {
		t.Fatalf("expected duplicated A and missing B, got %v", out)
	}
	// R2 handles the same delivery correctly.
	out2 := temporal.NewTDB()
	m2 := NewR2(func(e temporal.Element) {
		if err := out2.Apply(e); err != nil {
			t.Fatalf("apply: %v", err)
		}
	})
	for _, step := range []struct {
		s StreamID
		e temporal.Element
	}{{0, s1[0]}, {1, s2[0]}, {1, s2[1]}, {0, s1[1]}} {
		if err := m2.Process(step.s, step.e); err != nil {
			t.Fatal(err)
		}
	}
	if !out2.Equal(want) {
		t.Fatalf("R2 should merge the shuffled-ties delivery correctly, got %v", out2)
	}
}

// TestTheorem1NonChattiness: Algorithm R3 outputs no more inserts+adjusts
// than inserts received, and no more stables than stables received.
func TestTheorem1NonChattiness(t *testing.T) {
	for _, seed := range []int64{31, 32, 33, 34} {
		sc := r3Script(seed)
		streams := r3Streams(sc, 4)
		lens := make([]int, len(streams))
		for i := range streams {
			lens[i] = len(streams[i])
		}
		for _, pat := range patterns {
			rec := newRecorder(t)
			m := NewR3(rec.emit)
			feed(t, m, streams, interleavings(pat, len(streams), lens, seed), nil)
			st := m.Stats()
			if st.OutInserts+st.OutAdjusts > st.InInserts {
				t.Fatalf("seed %d pattern %s: %d inserts+adjusts out > %d inserts in",
					seed, pat, st.OutInserts+st.OutAdjusts, st.InInserts)
			}
			if st.OutStables > st.InStables {
				t.Fatalf("seed %d pattern %s: %d stables out > %d stables in",
					seed, pat, st.OutStables, st.InStables)
			}
		}
	}
}

// TestMergeSingleInput: with one input the merge must reproduce the input's
// TDB exactly, for every algorithm.
func TestMergeSingleInput(t *testing.T) {
	sc := r3Script(41)
	s := sc.Render(gen.RenderOptions{Seed: 1, Disorder: 0.2, StableFreq: 0.05})
	for _, c := range []Case{CaseR3, CaseR4} {
		rec := newRecorder(t)
		m := New(c, rec.emit)
		feed(t, m, []temporal.Stream{s}, interleavings("sequential", 1, []int{len(s)}, 0), nil)
		if !rec.tdb.Equal(sc.TDB()) {
			t.Fatalf("%v: single-input merge differs from input TDB", c)
		}
	}
}

// TestManyInputsStillOneOutput: duplicated identical inputs must not inflate
// the output.
func TestManyInputsStillOneOutput(t *testing.T) {
	sc := r3Script(43)
	s := sc.Render(gen.RenderOptions{Seed: 9, Disorder: 0.2})
	streams := make([]temporal.Stream, 8)
	lens := make([]int, 8)
	for i := range streams {
		streams[i] = s.Clone()
		lens[i] = len(s)
	}
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	feed(t, m, streams, interleavings("roundrobin", 8, lens, 43), nil)
	if !rec.tdb.Equal(sc.TDB()) {
		t.Fatal("output TDB differs with 8 identical inputs")
	}
	if int(m.Stats().OutInserts) > sc.Cfg.Events {
		t.Fatalf("emitted %d inserts for %d events", m.Stats().OutInserts, sc.Cfg.Events)
	}
}
