package core

import (
	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// Snapshotter is implemented by mergers that can checkpoint their live
// state as a stream. The snapshot is the "seed" of the paper's query
// jumpstart (Sec. II-4): a stream prefix that reconstitutes to every event
// still contributing to future output — long-lived events a restarted query
// could not recover from the real-time feed — followed by the output's
// stable point.
//
// A snapshot is mutually consistent with the merger's inputs in the
// paper's segment sense (Sec. III-B): it represents the same reference
// stream with the fully frozen history skipped. Feeding a snapshot plus a
// live stream (attached with the snapshot's stable point as its join
// guarantee) into a fresh LMerge seeds the new query instance seamlessly.
type Snapshotter interface {
	Snapshot() temporal.Stream
}

// Snapshot implements Snapshotter: one insert per live output event, in
// (Vs, Payload) order, closed by the output stable point.
func (m *R3) Snapshot() temporal.Stream {
	var out temporal.Stream
	m.index.Ascend(func(n *index.Node2) bool {
		// Skip output events already fully frozen at the output stable point:
		// the index may retain them briefly (holdback policies, detach) for
		// dedup of lagging inputs, but they contribute nothing after the
		// closing stable and would make the snapshot an invalid stream.
		if ve, has := n.Ve(index.OutputStream); has && ve >= m.maxStable {
			k := n.Key()
			out = append(out, temporal.Insert(k.Payload, k.Vs, ve))
		}
		return true
	})
	if m.maxStable != temporal.MinTime {
		out = append(out, temporal.Stable(m.maxStable))
	}
	return out
}

// Snapshot implements Snapshotter for the multiset case: live output events
// are emitted with their multiplicities.
func (m *R4) Snapshot() temporal.Stream {
	var out temporal.Stream
	m.index.Ascend(func(n *index.Node3) bool {
		k := n.Key()
		n.AscendVe(index.OutputStream, func(ve temporal.Time, count int) bool {
			// A live node's Ve multiset can still hold occurrences that froze
			// at an earlier stable sweep (the node survives because a later
			// occurrence of the same key is live). Those are immutable history,
			// not live state: a restarted query must not see them again.
			if ve < m.maxStable {
				return true
			}
			for i := 0; i < count; i++ {
				out = append(out, temporal.Insert(k.Payload, k.Vs, ve))
			}
			return true
		})
		return true
	})
	if m.maxStable != temporal.MinTime {
		out = append(out, temporal.Stable(m.maxStable))
	}
	return out
}

// Snapshot of the naive baseline mirrors its output index.
func (m *R3Naive) Snapshot() temporal.Stream {
	var out temporal.Stream
	m.output.tree.Ascend(func(k temporal.VsPayload, ve temporal.Time) bool {
		out = append(out, temporal.Insert(k.Payload, k.Vs, ve))
		return true
	})
	if m.maxStable != temporal.MinTime {
		out = append(out, temporal.Stable(m.maxStable))
	}
	return out
}
