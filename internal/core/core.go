// Package core implements the Logical Merge (LMerge) operator of
// Chandramouli, Maier, and Goldstein, "Physically Independent Stream
// Merging" (ICDE 2012), Section IV.
//
// LMerge consumes several mutually consistent physical streams — streams
// that reconstitute to (segments of) the same temporal database even though
// they differ in element order, timing, and composition — and emits a single
// stream compatible with all of them.
//
// The package provides one merger per point in the paper's restriction
// spectrum, each exploiting stronger input properties for lower cost:
//
//	R0  strictly increasing Vs, insert/stable only      (Algorithm R0)
//	R1  non-decreasing Vs, deterministic same-Vs order  (Algorithm R1)
//	R2  non-decreasing Vs, any same-Vs order, key(Vs,P) (Algorithm R2)
//	R3  any order, adjusts allowed, key(Vs,P)           (Algorithm R3, in2t)
//	R4  no restrictions (multiset TDB)                  (Algorithm R4, in3t)
//
// plus R3Naive (the LMR3- baseline of Section VI-A, with unshared per-input
// indexes), output-policy variants (Section V-A), dynamic attach/detach
// (Section V-B), and feedback signals for plan fast-forward (Section V-D).
package core

import (
	"fmt"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// StreamID identifies one input stream of an LMerge operator. IDs are small
// non-negative integers assigned by the caller (or by Operator's Attach).
type StreamID = int

// Case names a point in the paper's restriction spectrum R0–R4.
type Case uint8

// The restriction cases of Section III-C.
const (
	CaseR0 Case = iota
	CaseR1
	CaseR2
	CaseR3
	CaseR4
)

// String returns "R0".."R4".
func (c Case) String() string {
	if c > CaseR4 {
		return fmt.Sprintf("Case(%d)", uint8(c))
	}
	return [...]string{"R0", "R1", "R2", "R3", "R4"}[c]
}

// Emit receives each element the merger appends to its output stream.
type Emit func(temporal.Element)

// Merger is a Logical Merge algorithm. Implementations are not safe for
// concurrent use; the engine serialises calls per operator.
type Merger interface {
	// Case returns the restriction case this merger implements.
	Case() Case
	// Process consumes one element from input stream s. It returns an error
	// only for elements that are invalid under the merger's restriction case
	// (e.g. an adjust offered to R0); elements that are merely redundant are
	// absorbed silently.
	Process(s StreamID, e temporal.Element) error
	// Attach registers input stream s. R1 needs it for its per-stream
	// counters; other mergers accept unseen ids lazily but attaching keeps
	// accounting exact.
	Attach(s StreamID)
	// Detach unregisters input stream s; subsequent elements from s are
	// ignored. Index entries owned by s are dropped.
	Detach(s StreamID)
	// MaxStable returns the largest stable timestamp emitted on the output.
	MaxStable() temporal.Time
	// SizeBytes estimates the merger's current memory footprint.
	SizeBytes() int
	// Stats returns the merger's counters. The pointer stays valid for the
	// merger's lifetime.
	Stats() *Stats
}

// New constructs the merger for case c with output callback emit. R3 is
// built with default policies; use NewR3 directly for policy control.
func New(c Case, emit Emit) Merger {
	switch c {
	case CaseR0:
		return NewR0(emit)
	case CaseR1:
		return NewR1(emit)
	case CaseR2:
		return NewR2(emit)
	case CaseR3:
		return NewR3(emit)
	default:
		return NewR4(emit)
	}
}

// Stats counts a merger's input and output traffic. OutAdjusts is the
// paper's "output size" chattiness metric (Section VI-B).
type Stats struct {
	InInserts, InAdjusts, InStables    int64
	OutInserts, OutAdjusts, OutStables int64
	// Dropped counts input elements absorbed without any output effect
	// (duplicates from slower streams, elements past the stable point).
	Dropped int64
	// ConsistencyWarnings counts input anomalies that violate mutual
	// consistency (e.g. an adjust for an event no stream produced); the
	// merger skips them rather than corrupting its output.
	ConsistencyWarnings int64
}

// OutElements returns the total number of output elements.
func (s *Stats) OutElements() int64 { return s.OutInserts + s.OutAdjusts + s.OutStables }

// InElements returns the total number of input elements.
func (s *Stats) InElements() int64 { return s.InInserts + s.InAdjusts + s.InStables }

// Observable is implemented by mergers (and wrappers) that can report their
// traffic into a telemetry node. Every merger in this package implements it;
// attaching an observer adds a handful of atomic operations per element and
// no allocation (see internal/obs and the alloc guards in alloc_test.go).
type Observable interface {
	// Observe routes the implementation's telemetry into n. A nil n detaches
	// the observer. Not safe to call concurrently with Process.
	Observe(n *obs.Node)
}

// base carries the state and output plumbing shared by all mergers.
type base struct {
	emit      Emit
	stats     Stats
	maxStable temporal.Time
	attached  map[StreamID]bool
	// tel is the optional telemetry node (nil-safe: every obs call on a nil
	// node is a no-op, so the uninstrumented hot path pays one branch).
	tel *obs.Node
	// raiser is the input whose element is currently being processed when
	// that element is a stable — the stream that leads if the output stable
	// point advances (-1 before any stable).
	raiser StreamID
}

func newBase(emit Emit) base {
	if emit == nil {
		emit = func(temporal.Element) {}
	}
	return base{emit: emit, maxStable: temporal.MinTime, attached: make(map[StreamID]bool), raiser: -1}
}

func (b *base) Stats() *Stats            { return &b.stats }
func (b *base) MaxStable() temporal.Time { return b.maxStable }

// Observe implements Observable.
func (b *base) Observe(n *obs.Node) { b.tel = n }

// Telemetry returns the attached telemetry node (nil when unobserved).
func (b *base) Telemetry() *obs.Node { return b.tel }

func (b *base) Attach(s StreamID)          { b.attached[s] = true }
func (b *base) Detach(s StreamID)          { delete(b.attached, s) }
func (b *base) isAttached(s StreamID) bool { return b.attached[s] }

// noteAttached lazily registers streams that were never explicitly attached,
// so callers can use fixed ids without ceremony.
func (b *base) noteAttached(s StreamID) { b.attached[s] = true }

func (b *base) outInsert(p temporal.Payload, vs, ve temporal.Time) {
	b.stats.OutInserts++
	b.tel.OutInsert()
	b.emit(temporal.Insert(p, vs, ve))
}

func (b *base) outAdjust(p temporal.Payload, vs, vold, ve temporal.Time) {
	b.stats.OutAdjusts++
	b.tel.OutAdjust(ve == vs)
	b.emit(temporal.Adjust(p, vs, vold, ve))
}

func (b *base) outStable(t temporal.Time) {
	b.stats.OutStables++
	b.tel.OutStable(b.raiser, t)
	b.emit(temporal.Stable(t))
}

// drop counts an input element absorbed without output effect.
func (b *base) drop() {
	b.stats.Dropped++
	b.tel.Dropped()
}

// warn counts a skipped mutual-consistency violation at stream time t.
func (b *base) warn(t temporal.Time) {
	b.stats.ConsistencyWarnings++
	b.tel.Warning(b.raiser, t)
}

func (b *base) countIn(s StreamID, e temporal.Element) {
	switch e.Kind {
	case temporal.KindInsert:
		b.stats.InInserts++
	case temporal.KindAdjust:
		b.stats.InAdjusts++
	case temporal.KindStable:
		b.stats.InStables++
		b.raiser = s
	}
	b.tel.In(s, e.Kind, e.Ve)
}

// errUnsupported reports an element kind a restricted merger cannot accept.
func errUnsupported(c Case, e temporal.Element) error {
	return fmt.Errorf("lmerge %v: unsupported element %v", c, e)
}
