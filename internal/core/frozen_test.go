package core

import (
	"reflect"
	"testing"

	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// feedBoth delivers e on both streams 0 and 1.
func feedBoth(t *testing.T, m Merger, e temporal.Element) {
	t.Helper()
	feedOne(t, m, 0, e)
	feedOne(t, m, 1, e)
}

// TestR3ExtractFrozenEligibility builds an index with one unanimous frozen-
// started node, one unanimous infinite-lifetime node, and one node past the
// stable frontier, then checks exactly the first two are carved out — in
// ascending Vs order, under the right clock and member set — and that their
// resident footprint is actually freed.
func TestR3ExtractFrozenEligibility(t *testing.T) {
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	a := temporal.Insert(temporal.P(1), 10, 100)
	b := temporal.Insert(temporal.P(2), 20, temporal.Infinity)
	c := temporal.Insert(temporal.P(3), 60, temporal.Infinity) // Vs >= stable: hot
	for _, e := range []temporal.Element{a, b, c} {
		feedBoth(t, m, e)
	}
	feedBoth(t, m, temporal.Stable(50))

	before := m.SizeBytes()
	fs, ok := m.ExtractFrozen(0)
	if !ok {
		t.Fatal("nothing extracted from a frozen-heavy index")
	}
	if fs.Clock != 50 {
		t.Errorf("Clock = %v, want 50", fs.Clock)
	}
	if !reflect.DeepEqual(fs.Members, []StreamID{0, 1}) {
		t.Errorf("Members = %v, want [0 1]", fs.Members)
	}
	if len(fs.Frames) != 2 {
		t.Fatalf("extracted %d frames, want 2 (a, b): %+v", len(fs.Frames), fs.Frames)
	}
	if fs.Frames[0].Vs != 10 || fs.Frames[0].MaxVe() != 100 {
		t.Errorf("frame 0 = %+v, want Vs=10 Ve=100", fs.Frames[0])
	}
	if fs.Frames[1].Vs != 20 || !fs.Frames[1].MaxVe().IsInf() {
		t.Errorf("frame 1 = %+v, want Vs=20 Ve=inf", fs.Frames[1])
	}
	if fs.Bytes <= 0 || m.SizeBytes() != before-fs.Bytes {
		t.Errorf("footprint: freed %d, size %d -> %d", fs.Bytes, before, m.SizeBytes())
	}

	// Re-admission restores the snapshot surface exactly.
	m.InstallFrozen(fs)
	ref := NewR3(func(temporal.Element) {})
	ref.Attach(0)
	ref.Attach(1)
	for _, e := range []temporal.Element{a, b, c} {
		feedOne(t, ref, 0, e)
		feedOne(t, ref, 1, e)
	}
	feedOne(t, ref, 0, temporal.Stable(50))
	feedOne(t, ref, 1, temporal.Stable(50))
	if got, want := m.Snapshot(), ref.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot after reinstall:\n got %v\nwant %v", got, want)
	}

	// A shed target stops the scan once enough bytes are freed: asking for a
	// single byte takes only the oldest frame.
	fs2, ok := m.ExtractFrozen(1)
	if !ok || len(fs2.Frames) != 1 || fs2.Frames[0].Vs != 10 {
		t.Fatalf("shed=1: ok=%v frames=%+v, want just Vs=10", ok, fs2.Frames)
	}
	m.InstallFrozen(fs2)
}

// TestR3ExtractFrozenExclusions: extraction requires eligible state, attached
// streams, and a policy whose output clock is data-independent.
func TestR3ExtractFrozenExclusions(t *testing.T) {
	m := NewR3(func(temporal.Element) {})
	if _, ok := m.ExtractFrozen(0); ok {
		t.Error("extracted from a merger with no attached streams")
	}
	m.Attach(0)
	if _, ok := m.ExtractFrozen(0); ok {
		t.Error("extracted from an empty index")
	}
	feedOne(t, m, 0, temporal.Insert(temporal.P(1), 10, 100))
	if _, ok := m.ExtractFrozen(0); ok {
		t.Error("extracted with the stable frontier still at the floor")
	}

	ff := NewR3(func(temporal.Element) {}, R3Options{Insert: InsertFullyFrozen})
	ff.Attach(0)
	if _, ok := ff.ExtractFrozen(0); ok {
		t.Error("InsertFullyFrozen policy must refuse extraction")
	}
	if ff.HandoffCapable() {
		t.Error("InsertFullyFrozen reported handoff-capable")
	}
}

// TestR3ExtractFrozenSkipsNonUnanimous: a key one attached stream has not
// presented stays resident — its absence from that stream still matters to
// the next stable sweep.
func TestR3ExtractFrozenSkipsNonUnanimous(t *testing.T) {
	m := NewR3(func(temporal.Element) {})
	m.Attach(0)
	m.Attach(1)
	feedBoth(t, m, temporal.Insert(temporal.P(1), 10, 100))
	// Stream 0 runs ahead: only it has presented key 2.
	feedOne(t, m, 0, temporal.Insert(temporal.P(2), 12, 100))
	feedOne(t, m, 0, temporal.Stable(50))
	// Output stable still MinTime (stream 1 lags), so nothing is extractable
	// yet; raise stream 1 to advance the output frontier past both keys' Vs.
	feedOne(t, m, 1, temporal.Stable(50))
	fs, ok := m.ExtractFrozen(0)
	if !ok || len(fs.Frames) != 1 || fs.Frames[0].Payload.ID != 1 {
		t.Fatalf("fs=%+v ok=%v, want exactly key 1", fs, ok)
	}
	m.InstallFrozen(fs)
}

// TestR3InstallFrozenDropsDeadFrames: a frame whose whole lifetime froze
// while it was out of core is NOT re-admitted — the resident twin would have
// been retired by the sweep that froze it.
func TestR3InstallFrozenDropsDeadFrames(t *testing.T) {
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	feedBoth(t, m, temporal.Insert(temporal.P(1), 10, 100))
	feedBoth(t, m, temporal.Stable(50))
	fs, ok := m.ExtractFrozen(0)
	if !ok || len(fs.Frames) != 1 {
		t.Fatalf("setup: fs=%+v ok=%v", fs, ok)
	}
	live := m.Live()
	feedBoth(t, m, temporal.Stable(200)) // freezes Ve=100 while spilled
	m.InstallFrozen(fs)
	if m.Live() != live {
		t.Errorf("dead frame re-admitted: Live %d, want %d", m.Live(), live)
	}
	// The output saw the insert exactly once, no withdrawal.
	if got := rec.tdb.Count(temporal.Ev(temporal.P(1), 10, 100)); got != 1 {
		t.Errorf("output count = %d, want 1", got)
	}
}

// TestR4ExtractInstallMultiset exercises the R4 face: multisets with
// duplicate occurrences and split lifetimes must round-trip through
// extraction bit-exactly, and per-stream multiset disagreement must block
// extraction of that key.
func TestR4ExtractInstallMultiset(t *testing.T) {
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	m.Attach(0)
	m.Attach(1)
	dupA := temporal.Insert(temporal.P(1), 10, 100)
	splitB1 := temporal.Insert(temporal.P(2), 12, 80)
	splitB2 := temporal.Insert(temporal.P(2), 12, 120)
	skewC := temporal.Insert(temporal.P(3), 14, 100)
	feedBoth(t, m, dupA)
	feedBoth(t, m, dupA) // duplicate occurrence: count 2
	feedBoth(t, m, splitB1)
	feedBoth(t, m, splitB2)
	feedBoth(t, m, skewC)
	feedOne(t, m, 0, skewC) // stream 0 holds one more occurrence than 1
	feedBoth(t, m, temporal.Stable(50))

	fs, ok := m.ExtractFrozen(0)
	if !ok || len(fs.Frames) != 2 {
		t.Fatalf("fs=%+v ok=%v, want keys 1 and 2 only", fs, ok)
	}
	if want := []index.VeCount{{Ve: 100, Count: 2}}; !reflect.DeepEqual(fs.Frames[0].Ves, want) {
		t.Errorf("dup frame Ves = %+v, want %+v", fs.Frames[0].Ves, want)
	}
	if want := []index.VeCount{{Ve: 80, Count: 1}, {Ve: 120, Count: 1}}; !reflect.DeepEqual(fs.Frames[1].Ves, want) {
		t.Errorf("split frame Ves = %+v, want %+v", fs.Frames[1].Ves, want)
	}

	// Round-trip, then run to completion against an untouched reference.
	m.InstallFrozen(fs)
	refRec := newRecorder(t)
	ref := NewR4(refRec.emit)
	ref.Attach(0)
	ref.Attach(1)
	replay := func(mm Merger) {
		for _, e := range []temporal.Element{dupA, dupA, splitB1, splitB2, skewC} {
			feedOne(t, mm, 0, e)
			feedOne(t, mm, 1, e)
		}
		feedOne(t, mm, 0, skewC)
		feedOne(t, mm, 0, temporal.Stable(50))
		feedOne(t, mm, 1, temporal.Stable(50))
	}
	replay(ref)
	// Balance stream 1's missing occurrence, then close both mergers out.
	finish := func(mm Merger) {
		feedOne(t, mm, 1, skewC)
		feedOne(t, mm, 0, temporal.Stable(temporal.Infinity))
		feedOne(t, mm, 1, temporal.Stable(temporal.Infinity))
	}
	finish(m)
	finish(ref)
	if !reflect.DeepEqual(rec.tdb.Events(), refRec.tdb.Events()) {
		t.Errorf("final TDB diverges after extract/install round-trip:\n got %v\nwant %v",
			rec.tdb.Events(), refRec.tdb.Events())
	}
	for _, ev := range refRec.tdb.Events() {
		if rec.tdb.Count(ev) != refRec.tdb.Count(ev) {
			t.Errorf("event %v count %d, want %d", ev, rec.tdb.Count(ev), refRec.tdb.Count(ev))
		}
	}
}

// TestR4ExtractFrozenEmpty covers the R4 refusal paths.
func TestR4ExtractFrozenEmpty(t *testing.T) {
	m := NewR4(func(temporal.Element) {})
	if _, ok := m.ExtractFrozen(0); ok {
		t.Error("extracted from a merger with no attached streams")
	}
	m.Attach(0)
	if _, ok := m.ExtractFrozen(0); ok {
		t.Error("extracted from an empty index")
	}
}
