package core

import "lmerge/internal/temporal"

// R0 is Algorithm R0: inputs carry only insert and stable elements with
// strictly increasing Vs, so order is deterministic and duplicate-free. The
// merger keeps just the maximum Vs and stable timestamps seen across all
// inputs — O(1) state and O(1) per element.
type R0 struct {
	base
	maxVs temporal.Time
}

// NewR0 returns an R0 merger writing its output to emit.
func NewR0(emit Emit) *R0 {
	return &R0{base: newBase(emit), maxVs: temporal.MinTime}
}

// Case returns CaseR0.
func (m *R0) Case() Case { return CaseR0 }

// SizeBytes reports the constant-size state of R0.
func (m *R0) SizeBytes() int { return 16 }

// Process implements Merger.
func (m *R0) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(s, e)
	switch e.Kind {
	case temporal.KindInsert:
		if e.Vs > m.maxVs {
			m.maxVs = e.Vs
			m.outInsert(e.Payload, e.Vs, e.Ve)
		} else {
			m.drop()
		}
		return nil
	case temporal.KindStable:
		if t := e.T(); t > m.maxStable {
			m.maxStable = t
			m.outStable(t)
		} else {
			m.drop()
		}
		return nil
	default:
		return errUnsupported(CaseR0, e)
	}
}
