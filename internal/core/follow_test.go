package core

import (
	"testing"

	"lmerge/internal/temporal"
)

func TestFollowLeaderMirrorsLeader(t *testing.T) {
	a := temporal.P('A')
	rec := newRecorder(t)
	m := NewR3(rec.emit, R3Options{Follow: FollowLeader})
	m.Attach(0)
	m.Attach(1)
	// Stream 0 becomes the leader by raising the stable point.
	mustP(t, m, 0, temporal.Insert(a, 10, 50))
	mustP(t, m, 0, temporal.Stable(5))

	// A non-leader's new key is tracked but not emitted...
	b := temporal.P('B')
	mustP(t, m, 1, temporal.Insert(b, 20, 60))
	if got := rec.tdb.CountsByKey(temporal.VsPayload{Vs: 20, Payload: b}); len(got) != 0 {
		t.Fatalf("non-leader insert leaked to output: %v", rec.tdb)
	}
	// ...until the leader produces it.
	mustP(t, m, 0, temporal.Insert(b, 20, 60))
	if got := rec.tdb.CountsByKey(temporal.VsPayload{Vs: 20, Payload: b}); len(got) != 1 {
		t.Fatalf("leader insert not emitted: %v", rec.tdb)
	}

	// Leader revisions are mirrored eagerly; non-leader revisions absorbed.
	mustP(t, m, 1, temporal.Adjust(a, 10, 50, 99))
	if rec.tdb.Count(temporal.Ev(a, 10, 50)) != 1 {
		t.Fatal("non-leader adjust should be absorbed")
	}
	mustP(t, m, 0, temporal.Adjust(a, 10, 50, 70))
	if rec.tdb.Count(temporal.Ev(a, 10, 70)) != 1 {
		t.Fatalf("leader adjust not mirrored: %v", rec.tdb)
	}
}

func TestFollowLeaderLeadershipChanges(t *testing.T) {
	a := temporal.P('A')
	rec := newRecorder(t)
	m := NewR3(rec.emit, R3Options{Follow: FollowLeader})
	m.Attach(0)
	m.Attach(1)
	mustP(t, m, 0, temporal.Insert(a, 10, 50))
	mustP(t, m, 1, temporal.Insert(a, 10, 55))
	mustP(t, m, 0, temporal.Stable(5)) // 0 leads
	mustP(t, m, 0, temporal.Adjust(a, 10, 50, 60))
	if rec.tdb.Count(temporal.Ev(a, 10, 60)) != 1 {
		t.Fatalf("leader 0 adjust not mirrored: %v", rec.tdb)
	}
	// Stream 1 overtakes: it becomes the leader and its view is mirrored.
	mustP(t, m, 1, temporal.Stable(8))
	mustP(t, m, 1, temporal.Adjust(a, 10, 55, 80))
	if rec.tdb.Count(temporal.Ev(a, 10, 80)) != 1 {
		t.Fatalf("new leader's adjust not mirrored: %v", rec.tdb)
	}
	// Old leader's adjusts are now absorbed.
	mustP(t, m, 0, temporal.Adjust(a, 10, 60, 65))
	if rec.tdb.Count(temporal.Ev(a, 10, 80)) != 1 {
		t.Fatal("old leader's adjust leaked")
	}
}

func TestFollowLeaderEquivalenceAndOracle(t *testing.T) {
	sc := r3Script(71)
	want := sc.TDB()
	streams := r3Streams(sc, 3)
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR3(rec.emit, R3Options{Follow: FollowLeader})
		feed(t, m, streams, interleavings(pat, 3, lens, 71), func(_ int, in []*temporal.TDB) {
			if err := temporal.CheckCompatR3(rec.tdb, in); err != nil {
				t.Fatalf("pattern %s: %v", pat, err)
			}
		})
		if !rec.tdb.Equal(want) {
			t.Fatalf("pattern %s: follow-leader output TDB differs", pat)
		}
		if w := m.Stats().ConsistencyWarnings; w != 0 {
			t.Fatalf("pattern %s: %d warnings", pat, w)
		}
	}
}

func TestFollowLeaderFlappingIsChattier(t *testing.T) {
	// When leadership alternates, follow-leader re-adjusts the output to
	// each new leader's view — the overhead the paper warns about — while
	// the default lazy policy absorbs the churn.
	sc := r3Script(73)
	streams := r3Streams(sc, 3)
	lens := []int{len(streams[0]), len(streams[1]), len(streams[2])}
	run := func(opts R3Options) int64 {
		rec := newRecorder(t)
		m := NewR3(rec.emit, opts)
		feed(t, m, streams, interleavings("roundrobin", 3, lens, 73), nil)
		if !rec.tdb.Equal(sc.TDB()) {
			t.Fatal("wrong TDB")
		}
		return m.Stats().OutAdjusts
	}
	lazy := run(R3Options{})
	follow := run(R3Options{Follow: FollowLeader})
	if follow < lazy {
		t.Errorf("flapping leadership should not reduce adjusts: follow=%d lazy=%d", follow, lazy)
	}
}

func TestFollowPolicyString(t *testing.T) {
	if FollowNone.String() != "follow-none" || FollowLeader.String() != "follow-leader" {
		t.Error("follow policy strings wrong")
	}
}
