package core

import (
	"testing"

	"lmerge/internal/temporal"
)

// TestConservativeNoDuplicateAfterHoldback is the regression test for a bug
// the randomized soak found: under InsertFullyFrozen the output stable point
// is held back to the earliest pending event, so a fully frozen node whose
// Vs lies at or above the held-back point must not be retired — a lagging
// stream would otherwise re-create it and the event would be emitted twice.
func TestConservativeNoDuplicateAfterHoldback(t *testing.T) {
	early := temporal.P('E') // long-lived: holds the stable point back
	late := temporal.P('L')  // short-lived: freezes (and is emitted) first
	rec := newRecorder(t)
	m := NewR3(rec.emit, R3Options{Insert: InsertFullyFrozen})
	m.Attach(0)
	m.Attach(1)

	mustP(t, m, 0, temporal.Insert(early, 10, 100))
	mustP(t, m, 0, temporal.Insert(late, 20, 30))
	// Stream 0 vouches past the late event's end: it is emitted with its
	// final lifetime, but the output stable point stays at 10 (the early
	// event is still pending).
	mustP(t, m, 0, temporal.Stable(50))
	if got := rec.tdb.Count(temporal.Ev(late, 20, 30)); got != 1 {
		t.Fatalf("late event count = %d, want 1", got)
	}
	if rec.tdb.Stable() != 10 {
		t.Fatalf("output stable = %v, want 10 (held back)", rec.tdb.Stable())
	}
	// The lagging stream now delivers its copy of the late event — the
	// merge must absorb it, not re-create and re-emit it.
	mustP(t, m, 1, temporal.Insert(late, 20, 30))
	mustP(t, m, 1, temporal.Insert(early, 10, 100))
	mustP(t, m, 1, temporal.Stable(temporal.Infinity))
	if got := rec.tdb.Count(temporal.Ev(late, 20, 30)); got != 1 {
		t.Fatalf("late event duplicated: count = %d", got)
	}
	if got := rec.tdb.Count(temporal.Ev(early, 10, 100)); got != 1 {
		t.Fatalf("early event count = %d, want 1", got)
	}
	if rec.tdb.Stable() != temporal.Infinity {
		t.Fatal("merge did not complete")
	}
}

// TestConservativeCancelledEventDoesNotWedgeStable: an event that is
// cancelled before it freezes will never be emitted, so it must not hold the
// conservative policy's output stable point back (it previously wedged the
// stable point — and node cleanup — permanently).
func TestConservativeCancelledEventDoesNotWedgeStable(t *testing.T) {
	gone := temporal.P('G')
	keep := temporal.P('K')
	rec := newRecorder(t)
	m := NewR3(rec.emit, R3Options{Insert: InsertFullyFrozen})
	m.Attach(0)
	mustP(t, m, 0, temporal.Insert(gone, 10, 20))
	mustP(t, m, 0, temporal.Adjust(gone, 10, 20, 10)) // cancelled
	mustP(t, m, 0, temporal.Insert(keep, 15, 25))
	mustP(t, m, 0, temporal.Stable(40))
	// Everything before 40 is settled: keep emitted, gone never emitted,
	// and the stable point must reach 40, not stick at 10.
	if rec.tdb.Count(temporal.Ev(keep, 15, 25)) != 1 || rec.tdb.Len() != 1 {
		t.Fatalf("output = %v", rec.tdb)
	}
	if rec.tdb.Stable() != 40 {
		t.Fatalf("output stable = %v, want 40", rec.tdb.Stable())
	}
	if m.Live() != 0 {
		t.Fatalf("%d nodes leaked past the stable point", m.Live())
	}
}

// TestConservativeEmitsInfiniteEventsAtEnd: a never-ending event is final
// once stable(∞) arrives and must be emitted by the conservative policy.
func TestConservativeEmitsInfiniteEventsAtEnd(t *testing.T) {
	p := temporal.P('I')
	rec := newRecorder(t)
	m := NewR3(rec.emit, R3Options{Insert: InsertFullyFrozen})
	m.Attach(0)
	mustP(t, m, 0, temporal.Insert(p, 10, temporal.Infinity))
	mustP(t, m, 0, temporal.Stable(50))
	if rec.tdb.Len() != 0 {
		t.Fatal("never-ending event emitted before the stream completed")
	}
	if rec.tdb.Stable() != 10 {
		t.Fatalf("stable = %v, want 10 (held back)", rec.tdb.Stable())
	}
	mustP(t, m, 0, temporal.Stable(temporal.Infinity))
	if rec.tdb.Count(temporal.Ev(p, 10, temporal.Infinity)) != 1 {
		t.Fatalf("never-ending event missing at stream end: %v", rec.tdb)
	}
	if rec.tdb.Stable() != temporal.Infinity {
		t.Fatal("merge did not complete")
	}
}
