package core

import "lmerge/internal/temporal"

// R2 is Algorithm R2: insert-only inputs with non-decreasing Vs where
// elements sharing a Vs may arrive in different orders on different inputs,
// and (Vs, Payload) is a key of the TDB (e.g. grouped aggregation over an
// ordered stream). The merger hashes the payloads seen at the current
// maximum Vs; an insert is forwarded the first time its payload appears.
//
// NewR2Dup relaxes the key assumption to multisets (the extension the paper
// notes as "straightforward and omitted"): per payload, the output carries
// as many copies as the richest input has delivered at the current Vs.
type R2 struct {
	base
	maxVs temporal.Time
	// seen[p][stream] counts stream's copies of payload p at maxVs; the
	// OutputStream entry counts copies already forwarded.
	seen       map[temporal.Payload]map[StreamID]int
	bytes      int // payload bytes held in seen
	duplicates bool
}

// NewR2 returns an R2 merger writing its output to emit.
func NewR2(emit Emit) *R2 {
	return &R2{
		base:  newBase(emit),
		maxVs: temporal.MinTime,
		seen:  make(map[temporal.Payload]map[StreamID]int),
	}
}

// NewR2Dup returns an R2 merger that additionally tolerates duplicate
// (Vs, Payload) events, emitting each payload with the maximum multiplicity
// any single input presents at that timestamp.
func NewR2Dup(emit Emit) *R2 {
	m := NewR2(emit)
	m.duplicates = true
	return m
}

// Case returns CaseR2.
func (m *R2) Case() Case { return CaseR2 }

// SizeBytes reports state proportional to the payloads at the current Vs
// (the paper's g·p term).
func (m *R2) SizeBytes() int { return 16 + m.bytes + 16*len(m.seen) }

// Process implements Merger.
func (m *R2) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(e)
	switch e.Kind {
	case temporal.KindInsert:
		if e.Vs < m.maxVs {
			m.stats.Dropped++
			return nil
		}
		if e.Vs > m.maxVs {
			clear(m.seen)
			m.bytes = 0
			m.maxVs = e.Vs
		}
		counts, tracked := m.seen[e.Payload]
		if !tracked {
			counts = make(map[StreamID]int, 4)
			m.seen[e.Payload] = counts
			m.bytes += e.Payload.SizeBytes()
		}
		counts[s]++
		const outKey StreamID = -1
		if m.duplicates {
			// Multiset relaxation: forward while some input's multiplicity
			// exceeds what the output carries.
			if counts[s] > counts[outKey] {
				counts[outKey]++
				m.outInsert(e.Payload, e.Vs, e.Ve)
			} else {
				m.stats.Dropped++
			}
			return nil
		}
		if counts[outKey] == 0 {
			counts[outKey] = 1
			m.outInsert(e.Payload, e.Vs, e.Ve)
		} else {
			m.stats.Dropped++
		}
		return nil
	case temporal.KindStable:
		if t := e.T(); t > m.maxStable {
			m.maxStable = t
			m.outStable(t)
		} else {
			m.stats.Dropped++
		}
		return nil
	default:
		return errUnsupported(CaseR2, e)
	}
}
