package core

import "lmerge/internal/temporal"

// R2 is Algorithm R2: insert-only inputs with non-decreasing Vs where
// elements sharing a Vs may arrive in different orders on different inputs,
// and (Vs, Payload) is a key of the TDB (e.g. grouped aggregation over an
// ordered stream). The merger hashes the payloads seen at the current
// maximum Vs; an insert is forwarded the first time its payload appears.
//
// NewR2Dup relaxes the key assumption to multisets (the extension the paper
// notes as "straightforward and omitted"): per payload, the output carries
// as many copies as the richest input has delivered at the current Vs.
type R2 struct {
	base
	maxVs temporal.Time
	// seen[p] counts copies of payload p at maxVs: index 0 is the output
	// (copies already forwarded), index s+1 is input stream s. The count
	// slices are recycled through free across Vs epochs, so steady-state
	// processing allocates nothing.
	seen       map[temporal.Payload][]int
	free       [][]int
	width      int // count-slice length: max stream id seen + 2
	bytes      int // payload bytes held in seen
	duplicates bool
}

// NewR2 returns an R2 merger writing its output to emit.
func NewR2(emit Emit) *R2 {
	return &R2{
		base:  newBase(emit),
		maxVs: temporal.MinTime,
		seen:  make(map[temporal.Payload][]int),
		width: 2,
	}
}

// grabCounts returns a zeroed count slice of at least n entries, reusing a
// recycled one when available.
func (m *R2) grabCounts(n int) []int {
	if n < m.width {
		n = m.width
	}
	m.width = n
	if k := len(m.free); k > 0 {
		c := m.free[k-1]
		m.free = m.free[:k-1]
		if len(c) >= n {
			clear(c)
			return c
		}
	}
	return make([]int, n)
}

// NewR2Dup returns an R2 merger that additionally tolerates duplicate
// (Vs, Payload) events, emitting each payload with the maximum multiplicity
// any single input presents at that timestamp.
func NewR2Dup(emit Emit) *R2 {
	m := NewR2(emit)
	m.duplicates = true
	return m
}

// Case returns CaseR2.
func (m *R2) Case() Case { return CaseR2 }

// SizeBytes reports state proportional to the payloads at the current Vs
// (the paper's g·p term).
func (m *R2) SizeBytes() int { return 16 + m.bytes + 16*len(m.seen) }

// Process implements Merger.
func (m *R2) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(s, e)
	switch e.Kind {
	case temporal.KindInsert:
		if e.Vs < m.maxVs {
			m.drop()
			return nil
		}
		if e.Vs > m.maxVs {
			for _, c := range m.seen {
				m.free = append(m.free, c)
			}
			clear(m.seen)
			m.bytes = 0
			m.maxVs = e.Vs
		}
		counts, tracked := m.seen[e.Payload]
		if !tracked {
			counts = m.grabCounts(s + 2)
			m.seen[e.Payload] = counts
			m.bytes += e.Payload.SizeBytes()
		} else if len(counts) < s+2 {
			grown := make([]int, max(s+2, m.width))
			copy(grown, counts)
			counts = grown
			m.seen[e.Payload] = counts
			m.width = len(counts)
		}
		counts[s+1]++
		if m.duplicates {
			// Multiset relaxation: forward while some input's multiplicity
			// exceeds what the output carries.
			if counts[s+1] > counts[0] {
				counts[0]++
				m.outInsert(e.Payload, e.Vs, e.Ve)
			} else {
				m.drop()
			}
			return nil
		}
		if counts[0] == 0 {
			counts[0] = 1
			m.outInsert(e.Payload, e.Vs, e.Ve)
		} else {
			m.drop()
		}
		return nil
	case temporal.KindStable:
		if t := e.T(); t > m.maxStable {
			m.maxStable = t
			m.outStable(t)
		} else {
			m.drop()
		}
		return nil
	default:
		return errUnsupported(CaseR2, e)
	}
}
