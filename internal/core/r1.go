package core

import "lmerge/internal/temporal"

// R1 is Algorithm R1: insert-only inputs with non-decreasing Vs where
// elements sharing a Vs arrive in deterministic order on every input (e.g.
// Top-k output in rank order). In addition to the maxima, the merger keeps
// one counter per input: how many elements that input has delivered at the
// current maximum Vs. An insert is forwarded exactly when its input's
// counter catches up with the global maximum.
type R1 struct {
	base
	maxVs       temporal.Time
	sameVsCount map[StreamID]int
}

// NewR1 returns an R1 merger writing its output to emit.
func NewR1(emit Emit) *R1 {
	return &R1{
		base:        newBase(emit),
		maxVs:       temporal.MinTime,
		sameVsCount: make(map[StreamID]int),
	}
}

// Case returns CaseR1.
func (m *R1) Case() Case { return CaseR1 }

// SizeBytes reports state linear in the number of inputs.
func (m *R1) SizeBytes() int { return 16 + 16*len(m.sameVsCount) }

// Attach registers a new input; its counter starts at zero, so it cannot
// cause duplicate output even when it replays the current timestamp.
func (m *R1) Attach(s StreamID) {
	m.base.Attach(s)
	if _, ok := m.sameVsCount[s]; !ok {
		m.sameVsCount[s] = 0
	}
}

// Detach drops the input's counter.
func (m *R1) Detach(s StreamID) {
	m.base.Detach(s)
	delete(m.sameVsCount, s)
}

// Process implements Merger.
func (m *R1) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(s, e)
	switch e.Kind {
	case temporal.KindInsert:
		if e.Vs < m.maxVs {
			m.drop()
			return nil
		}
		if e.Vs > m.maxVs {
			for id := range m.sameVsCount {
				m.sameVsCount[id] = 0
			}
			m.maxVs = e.Vs
		}
		maxCount := 0
		for _, c := range m.sameVsCount {
			if c > maxCount {
				maxCount = c
			}
		}
		if m.sameVsCount[s] == maxCount {
			m.outInsert(e.Payload, e.Vs, e.Ve)
		} else {
			m.drop()
		}
		m.sameVsCount[s]++
		return nil
	case temporal.KindStable:
		if t := e.T(); t > m.maxStable {
			m.maxStable = t
			m.outStable(t)
		} else {
			m.drop()
		}
		return nil
	default:
		return errUnsupported(CaseR1, e)
	}
}
