package core

import (
	"strings"
	"testing"

	"lmerge/internal/temporal"
)

// phy1/phy2 are Table I's two physical presentations.
func tableIStreams() (temporal.Stream, temporal.Stream) {
	a, b := temporal.P('A'), temporal.P('B')
	phy1 := temporal.Stream{
		temporal.Insert(b, 8, temporal.Infinity),
		temporal.Insert(a, 6, 12),
		temporal.Adjust(b, 8, temporal.Infinity, 10),
		temporal.Stable(11),
		temporal.Stable(temporal.Infinity),
	}
	phy2 := temporal.Stream{
		temporal.Insert(a, 6, 7),
		temporal.Insert(b, 8, 15),
		temporal.Adjust(a, 6, 7, 12),
		temporal.Adjust(b, 8, 15, 10),
		temporal.Stable(temporal.Infinity),
	}
	return phy1, phy2
}

// TestTableIMerge merges the introduction's example streams and checks the
// output against the logical TDB of Table I.
func TestTableIMerge(t *testing.T) {
	want := temporal.MustReconstitute(temporal.Stream{
		temporal.Insert(temporal.P('A'), 6, 12),
		temporal.Insert(temporal.P('B'), 8, 10),
	})
	for _, c := range []Case{CaseR3, CaseR4} {
		phy1, phy2 := tableIStreams()
		rec := newRecorder(t)
		m := New(c, rec.emit)
		feed(t, m, []temporal.Stream{phy1, phy2}, interleavings("roundrobin", 2, []int{len(phy1), len(phy2)}, 0), nil)
		if !rec.tdb.Equal(want) {
			t.Errorf("%v: merged TDB = %v, want %v", c, rec.tdb, want)
		}
	}
}

// TestPunctuationHoldExample reproduces the Sec. I-B punctuation hazard: the
// merger has propagated Phy2's a(A,6,7) and a(B,8,15); Phy1's f(11) cannot
// be blindly forwarded because it would freeze A at [6,7) and prevent B's
// later adjustment down to 10. Algorithm R3 reconciles the output against
// Phy1's view (which, by Phy1's own validity, already carries A=[6,12) and
// B=[8,10)) before emitting the stable.
func TestPunctuationHoldExample(t *testing.T) {
	a, b := temporal.P('A'), temporal.P('B')
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	// Phy2 delivers first: output follows it.
	mustP(t, m, 1, temporal.Insert(a, 6, 7))
	mustP(t, m, 1, temporal.Insert(b, 8, 15))
	// Phy1 delivers its prefix up to and including f(11) (Table I order).
	mustP(t, m, 0, temporal.Insert(b, 8, temporal.Infinity))
	mustP(t, m, 0, temporal.Insert(a, 6, 12))
	mustP(t, m, 0, temporal.Adjust(b, 8, temporal.Infinity, 10))
	mustP(t, m, 0, temporal.Stable(11))
	// Before the stable reached the output, A was adjusted to Phy1's
	// lifetime (half frozen at 12, still adjustable) and B to its final 10.
	if got := rec.tdb.CountsByKey(temporal.VsPayload{Vs: 6, Payload: a}); len(got) != 1 || got[12] != 1 {
		t.Fatalf("A not reconciled to Phy1's lifetime before stable: %v", rec.tdb)
	}
	if got := rec.tdb.CountsByKey(temporal.VsPayload{Vs: 8, Payload: b}); len(got) != 1 || got[10] != 1 {
		t.Fatalf("B not adjusted to 10 before stable: %v", rec.tdb)
	}
	if rec.tdb.Stable() != 11 {
		t.Fatalf("output stable = %v, want 11", rec.tdb.Stable())
	}
	// Phy2's late revisions are absorbed without output effect.
	mustP(t, m, 1, temporal.Adjust(a, 6, 7, 12))
	mustP(t, m, 1, temporal.Adjust(b, 8, 15, 10))
	mustP(t, m, 1, temporal.Stable(temporal.Infinity))
	want := temporal.MustReconstitute(temporal.Stream{
		temporal.Insert(a, 6, 12), temporal.Insert(b, 8, 10),
	})
	if !rec.tdb.Equal(want) {
		t.Fatalf("final TDB = %v", rec.tdb)
	}
	if m.Stats().ConsistencyWarnings != 0 {
		t.Fatalf("warnings on the paper's own example: %d", m.Stats().ConsistencyWarnings)
	}
}

func mustP(t *testing.T, m Merger, s StreamID, e temporal.Element) {
	t.Helper()
	if err := m.Process(s, e); err != nil {
		t.Fatalf("process %v: %v", e, err)
	}
}

func TestRestrictedMergersRejectAdjust(t *testing.T) {
	adj := temporal.Adjust(temporal.P(1), 5, 10, 12)
	for _, m := range []Merger{NewR0(nil), NewR1(nil), NewR2(nil)} {
		err := m.Process(0, adj)
		if err == nil {
			t.Errorf("%v: adjust should be rejected", m.Case())
		} else if !strings.Contains(err.Error(), "unsupported") {
			t.Errorf("%v: error %q", m.Case(), err)
		}
	}
}

func TestR0DropsStaleAndDuplicate(t *testing.T) {
	rec := newRecorder(t)
	m := NewR0(rec.emit)
	mustP(t, m, 0, temporal.Insert(temporal.P(1), 5, 10))
	mustP(t, m, 1, temporal.Insert(temporal.P(1), 5, 10)) // duplicate
	mustP(t, m, 1, temporal.Insert(temporal.P(2), 3, 10)) // stale
	mustP(t, m, 0, temporal.Stable(4))
	mustP(t, m, 1, temporal.Stable(4)) // duplicate stable
	if got := m.Stats().Dropped; got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	if m.Stats().OutInserts != 1 || m.Stats().OutStables != 1 {
		t.Errorf("output counts wrong: %+v", m.Stats())
	}
}

func TestStatsAccounting(t *testing.T) {
	phy1, phy2 := tableIStreams()
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	feed(t, m, []temporal.Stream{phy1, phy2}, interleavings("sequential", 2, []int{len(phy1), len(phy2)}, 0), nil)
	st := m.Stats()
	if st.InInserts != 4 || st.InAdjusts != 3 || st.InStables != 3 {
		t.Errorf("input counts wrong: %+v", st)
	}
	if st.InElements() != 10 {
		t.Errorf("InElements = %d", st.InElements())
	}
	if st.OutElements() != int64(len(rec.out)) {
		t.Errorf("OutElements = %d, recorded %d", st.OutElements(), len(rec.out))
	}
}

func TestR3SizeBytesShrinksAfterFreeze(t *testing.T) {
	m := NewR3(nil)
	for i := int64(0); i < 100; i++ {
		mustP(t, m, 0, temporal.Insert(temporal.Payload{ID: i, Data: "xxxxxxxx"}, temporal.Time(i), temporal.Time(i+50)))
	}
	grown := m.SizeBytes()
	if grown == 0 || m.Live() != 100 {
		t.Fatalf("expected live state, size=%d live=%d", grown, m.Live())
	}
	mustP(t, m, 0, temporal.Stable(temporal.Infinity))
	if m.Live() != 0 || m.SizeBytes() != 0 {
		t.Fatalf("state not reclaimed: live=%d size=%d", m.Live(), m.SizeBytes())
	}
}

func TestR4DuplicateEventsMerged(t *testing.T) {
	// Two inputs each carry the same event twice (true duplicates): the
	// output must carry it exactly twice.
	a := temporal.P('A')
	s := temporal.Stream{
		temporal.Insert(a, 5, 10),
		temporal.Insert(a, 5, 10),
		temporal.Stable(temporal.Infinity),
	}
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	feed(t, m, []temporal.Stream{s.Clone(), s.Clone()}, interleavings("roundrobin", 2, []int{3, 3}, 0), nil)
	if got := rec.tdb.Count(temporal.Ev(a, 5, 10)); got != 2 {
		t.Fatalf("duplicate event multiplicity = %d, want 2", got)
	}
}

func TestR4SameKeyDifferentVe(t *testing.T) {
	// Two events share (Vs, Payload) with different end times — illegal for
	// R3's key assumption, bread and butter for R4.
	a := temporal.P('A')
	s1 := temporal.Stream{
		temporal.Insert(a, 5, 10),
		temporal.Insert(a, 5, 20),
		temporal.Stable(temporal.Infinity),
	}
	s2 := temporal.Stream{
		temporal.Insert(a, 5, 20),
		temporal.Insert(a, 5, 10),
		temporal.Stable(temporal.Infinity),
	}
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	feed(t, m, []temporal.Stream{s1, s2}, interleavings("roundrobin", 2, []int{3, 3}, 0), nil)
	if rec.tdb.Count(temporal.Ev(a, 5, 10)) != 1 || rec.tdb.Count(temporal.Ev(a, 5, 20)) != 1 {
		t.Fatalf("multiset merge wrong: %v", rec.tdb)
	}
}

func TestR4EmptyIntervalInsertIgnored(t *testing.T) {
	rec := newRecorder(t)
	m := NewR4(rec.emit)
	mustP(t, m, 0, temporal.Insert(temporal.P(1), 5, 5))
	mustP(t, m, 0, temporal.Stable(temporal.Infinity))
	if rec.tdb.Len() != 0 {
		t.Fatalf("empty-interval insert produced events: %v", rec.tdb)
	}
}

func TestCaseString(t *testing.T) {
	if CaseR0.String() != "R0" || CaseR4.String() != "R4" {
		t.Error("Case strings wrong")
	}
	if !strings.Contains(Case(9).String(), "9") {
		t.Error("out-of-range Case should print its number")
	}
	if InsertQuorum.String() != "quorum" || AdjustEager.String() != "eager" || AdjustLazy.String() != "lazy" {
		t.Error("policy strings wrong")
	}
	if InsertFirstWins.String() != "first-wins" || InsertHalfFrozen.String() != "half-frozen" || InsertFullyFrozen.String() != "fully-frozen" {
		t.Error("insert policy strings wrong")
	}
}

func TestNewDispatch(t *testing.T) {
	for c := CaseR0; c <= CaseR4; c++ {
		if got := New(c, nil).Case(); got != c {
			t.Errorf("New(%v).Case() = %v", c, got)
		}
	}
}

func TestDetachDropsMergerState(t *testing.T) {
	for _, mk := range []func() Merger{
		func() Merger { return NewR3(nil) },
		func() Merger { return NewR4(nil) },
		func() Merger { return NewR3Naive(nil) },
	} {
		m := mk()
		m.Attach(0)
		m.Attach(1)
		mustP(t, m, 0, temporal.Insert(temporal.P(1), 5, 50))
		mustP(t, m, 1, temporal.Insert(temporal.P(1), 5, 60))
		before := m.SizeBytes()
		m.Detach(1)
		if after := m.SizeBytes(); after > before {
			t.Errorf("%T: size grew after detach: %d -> %d", m, before, after)
		}
	}
}

func TestR3LateInsertForRetiredKeyDropped(t *testing.T) {
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	mustP(t, m, 0, temporal.Insert(temporal.P(1), 5, 8))
	mustP(t, m, 0, temporal.Stable(20)) // event fully frozen and retired
	mustP(t, m, 1, temporal.Insert(temporal.P(1), 5, 8))
	mustP(t, m, 1, temporal.Adjust(temporal.P(1), 5, 8, 9))
	if got := rec.tdb.Count(temporal.Ev(temporal.P(1), 5, 8)); got != 1 {
		t.Fatalf("retired event count = %d, want 1", got)
	}
	if m.Stats().Dropped < 2 {
		t.Errorf("late elements should be dropped, stats: %+v", m.Stats())
	}
}

func TestR3RemovalFlow(t *testing.T) {
	// A cancelled event (adjust to Ve == Vs) must disappear from the output
	// even when another stream still believes in it at the stable point.
	a := temporal.P('A')
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	m.Attach(0)
	m.Attach(1)
	mustP(t, m, 0, temporal.Insert(a, 5, 50))
	mustP(t, m, 1, temporal.Insert(a, 5, 50))
	mustP(t, m, 0, temporal.Adjust(a, 5, 50, 5)) // cancel on stream 0
	mustP(t, m, 0, temporal.Stable(100))
	if rec.tdb.Len() != 0 {
		t.Fatalf("cancelled event survived: %v", rec.tdb)
	}
	// Stream 1's late cancel is absorbed.
	mustP(t, m, 1, temporal.Adjust(a, 5, 50, 5))
	mustP(t, m, 1, temporal.Stable(temporal.Infinity))
	if rec.tdb.Len() != 0 || m.Stats().ConsistencyWarnings != 0 {
		t.Fatalf("late cancel mishandled: %v, warnings=%d", rec.tdb, m.Stats().ConsistencyWarnings)
	}
}
