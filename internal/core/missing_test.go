package core

import (
	"testing"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// This file tests the missing-element semantics of paper Section V-C:
// requiring the output to contain an element as long as ANY input reports it
// would chain LMerge to the slowest input, so instead —
//
//   - R0/R1/R2 output an element missing from stream S as long as another
//     stream delivers it before S delivers an element with higher Vs;
//
//   - R3/R4 output an element e as long as the stream that advances
//     MaxStable beyond e.Vs produced e.

func TestR0MissingElementRace(t *testing.T) {
	a, b, c := temporal.P('A'), temporal.P('B'), temporal.P('C')
	full := temporal.Stream{
		temporal.Insert(a, 1, 10),
		temporal.Insert(b, 2, 10),
		temporal.Insert(c, 3, 10),
	}
	gappy := temporal.Stream{ // missing B
		temporal.Insert(a, 1, 10),
		temporal.Insert(c, 3, 10),
	}

	// Case 1: the full stream delivers B before the gappy stream reaches C:
	// B survives.
	rec := newRecorder(t)
	m := NewR0(rec.emit)
	mustP(t, m, 0, full[0])  // A
	mustP(t, m, 1, gappy[0]) // A (dup)
	mustP(t, m, 0, full[1])  // B — delivered in time
	mustP(t, m, 1, gappy[1]) // C
	mustP(t, m, 0, full[2])  // C (dup)
	if rec.tdb.Count(temporal.Ev(b, 2, 10)) != 1 {
		t.Fatalf("B should survive when delivered before the gap overtakes: %v", rec.tdb)
	}

	// Case 2: the gappy stream races ahead past B's slot first: B is lost
	// (the price of not chaining the output to the slowest input).
	rec2 := newRecorder(t)
	m2 := NewR0(rec2.emit)
	mustP(t, m2, 1, gappy[0]) // A
	mustP(t, m2, 1, gappy[1]) // C — MaxVs now 3
	mustP(t, m2, 0, full[0])  // A (dup)
	mustP(t, m2, 0, full[1])  // B — too late, Vs 2 < MaxVs 3
	mustP(t, m2, 0, full[2])  // C (dup)
	if rec2.tdb.Count(temporal.Ev(b, 2, 10)) != 0 {
		t.Fatalf("B should be dropped once the merge moved past its slot: %v", rec2.tdb)
	}
	if m2.Stats().Dropped == 0 {
		t.Fatal("late B should be counted as dropped")
	}
}

func TestR3MissingElementFollowsStableRaiser(t *testing.T) {
	a, b := temporal.P('A'), temporal.P('B')

	// Stream 0 carries both events; stream 1 is missing B.
	mk := func() (*recorder, *R3) {
		rec := newRecorder(t)
		m := NewR3(rec.emit)
		m.Attach(0)
		m.Attach(1)
		mustP(t, m, 0, temporal.Insert(a, 1, 3))
		mustP(t, m, 0, temporal.Insert(b, 2, 4))
		mustP(t, m, 1, temporal.Insert(a, 1, 3))
		return rec, m
	}

	// Case 1: the complete stream raises the stable point: B survives.
	rec, m := mk()
	mustP(t, m, 0, temporal.Stable(10))
	if rec.tdb.Count(temporal.Ev(b, 2, 4)) != 1 {
		t.Fatalf("B vouched for by the raiser should survive: %v", rec.tdb)
	}

	// Case 2: the gappy stream raises the stable point: B is removed — the
	// raiser vouches for completeness below t and does not know B.
	rec2, m2 := mk()
	mustP(t, m2, 1, temporal.Stable(10))
	if rec2.tdb.Count(temporal.Ev(b, 2, 4)) != 0 {
		t.Fatalf("B not vouched for by the raiser should be removed: %v", rec2.tdb)
	}
	// The removal keeps the output stream valid (recorder applies strictly).
	if rec2.tdb.Stable() != 10 {
		t.Fatal("stable did not advance")
	}
}

func TestR3GappyStreamsEndToEnd(t *testing.T) {
	// Three renderings, one dropping 10% of histories. Whether a dropped
	// event survives depends on who raises each stable — but the output must
	// always be a valid stream whose events all come from the script, and
	// with a complete stream raising the final stable, nothing beyond the
	// drops can be missing.
	sc := r3Script(91)
	complete0 := sc.Render(gen.RenderOptions{Seed: 1, Disorder: 0.3, StableFreq: 0.05})
	complete1 := sc.Render(gen.RenderOptions{Seed: 2, Disorder: 0.3, StableFreq: 0.05})
	gappy := sc.Render(gen.RenderOptions{Seed: 3, Disorder: 0.3, StableFreq: 0.05, DropFrac: 0.1})
	if len(gappy) >= len(complete0) {
		t.Fatal("drops did not shrink the rendering")
	}
	streams := []temporal.Stream{complete0, complete1, gappy}
	lens := []int{len(complete0), len(complete1), len(gappy)}
	// Keys the script ever produced (including cancelled histories).
	keys := make(map[temporal.VsPayload]bool)
	for _, h := range sc.Histories {
		keys[temporal.VsPayload{Vs: h.Vs, Payload: h.P}] = true
	}
	want := sc.TDB()
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR3(rec.emit)
		feed(t, m, streams, interleavings(pat, 3, lens, 91), nil)
		// The merge never invents keys: every output event's (Vs, Payload)
		// comes from the workload. Lifetimes may be pinned at a stale value
		// for events the faulty stream vouched past (counted below).
		stale := 0
		for _, ev := range rec.tdb.Events() {
			if !keys[ev.Key()] {
				t.Fatalf("pattern %s: fabricated key %v", pat, ev)
			}
			if want.Count(ev) == 0 {
				stale++
			}
		}
		if rec.tdb.Stable() != temporal.Infinity {
			t.Fatalf("pattern %s: merge did not complete", pat)
		}
		// Divergence is bounded by the faulty stream's gap.
		if stale > len(sc.Histories)/5 {
			t.Fatalf("pattern %s: %d stale lifetimes", pat, stale)
		}
		// At least the overwhelming majority of events must survive.
		if rec.tdb.Len() < want.Len()*8/10 {
			t.Fatalf("pattern %s: only %d of %d events survived", pat, rec.tdb.Len(), want.Len())
		}
	}
	// With a complete stream carrying the merge to the end on its own, the
	// output is exact: its stable(∞) reconciles every pinned node first.
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	feed(t, m, streams, interleavings("sequential", 3, lens, 91), nil)
	if !rec.tdb.Equal(want) {
		t.Fatal("complete-stream-led merge should be exact")
	}
}

func TestR3GappyOracleStillHolds(t *testing.T) {
	// Even with a faulty input the output must stay compatible with the
	// non-faulty inputs (the oracle takes the TDBs as they are).
	sc := r3Script(93)
	streams := []temporal.Stream{
		sc.Render(gen.RenderOptions{Seed: 1, Disorder: 0.3, StableFreq: 0.05}),
		sc.Render(gen.RenderOptions{Seed: 2, Disorder: 0.3, StableFreq: 0.05, DropFrac: 0.15}),
	}
	lens := []int{len(streams[0]), len(streams[1])}
	rec := newRecorder(t)
	m := NewR3(rec.emit)
	// The oracle's C3 assumes mutually consistent inputs; with a faulty
	// stream we verify only that the output never emits an invalid element
	// (the recorder checks every Apply) and the merge completes.
	feed(t, m, streams, interleavings("random", 2, lens, 93), nil)
	if rec.tdb.Stable() != temporal.Infinity {
		t.Fatal("merge did not complete")
	}
}

func TestR4GappyStreamsEndToEnd(t *testing.T) {
	// The general merger must also tolerate a faulty input with duplicate
	// keys in play: no invented keys, completion, bounded divergence.
	cfg := gen.Config{
		Events: 200, Seed: 95, EventDuration: 60, MaxGap: 8,
		Revisions: 0.4, RemoveProb: 0.2, PayloadBytes: 8, DupProb: 0.2,
	}
	sc := gen.NewScript(cfg)
	streams := []temporal.Stream{
		sc.Render(gen.RenderOptions{Seed: 1, Disorder: 0.3, StableFreq: 0.05}),
		sc.Render(gen.RenderOptions{Seed: 2, Disorder: 0.3, StableFreq: 0.05, DropFrac: 0.1}),
	}
	lens := []int{len(streams[0]), len(streams[1])}
	keys := make(map[temporal.VsPayload]bool)
	for _, h := range sc.Histories {
		keys[temporal.VsPayload{Vs: h.Vs, Payload: h.P}] = true
	}
	for _, pat := range patterns {
		rec := newRecorder(t)
		m := NewR4(rec.emit)
		feed(t, m, streams, interleavings(pat, 2, lens, 95), nil)
		for _, ev := range rec.tdb.Events() {
			if !keys[ev.Key()] {
				t.Fatalf("pattern %s: fabricated key %v", pat, ev)
			}
		}
		if rec.tdb.Stable() != temporal.Infinity {
			t.Fatalf("pattern %s: merge did not complete", pat)
		}
	}
}
