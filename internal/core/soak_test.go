package core

import (
	"math/rand"
	"testing"

	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// TestSoakRandomisedMergeMatrix is a broader randomized sweep than the quick
// tests: many (workload × algorithm × delivery) combinations with oracle
// validation sampled along the way. Skipped under -short.
func TestSoakRandomisedMergeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 40; iter++ {
		cfg := gen.Config{
			Events:        150 + rng.Intn(150),
			Seed:          rng.Int63(),
			EventDuration: temporal.Time(30 + rng.Intn(120)),
			MaxGap:        temporal.Time(4 + rng.Intn(12)),
			Revisions:     rng.Float64() * 0.8,
			RemoveProb:    rng.Float64() * 0.4,
			PayloadBytes:  6,
		}
		algo := rng.Intn(3) // 0: R3 (random policy), 1: R4, 2: LMR3- baseline
		useR4 := algo == 1
		if useR4 {
			cfg.DupProb = rng.Float64() * 0.4
		}
		sc := gen.NewScript(cfg)
		want := sc.TDB()
		n := 2 + rng.Intn(4)
		streams := make([]temporal.Stream, n)
		lens := make([]int, n)
		for i := range streams {
			streams[i] = sc.Render(gen.RenderOptions{
				Seed:         rng.Int63(),
				Disorder:     rng.Float64() * 0.8,
				StableFreq:   0.02 + rng.Float64()*0.1,
				SplitInserts: rng.Intn(2) == 0,
			})
			lens[i] = len(streams[i])
		}
		rec := newRecorder(t)
		var m Merger
		switch algo {
		case 1:
			m = NewR4(rec.emit)
		case 2:
			m = NewR3Naive(rec.emit)
		default:
			// Randomise the R3 policy as well.
			opts := R3Options{
				Insert: InsertPolicy(rng.Intn(4)),
				Quorum: 1 + rng.Intn(n),
				Adjust: AdjustPolicy(rng.Intn(2)),
				Follow: FollowPolicy(rng.Intn(2)),
			}
			m = NewR3(rec.emit, opts)
		}
		pat := patterns[rng.Intn(len(patterns))]
		step := 0
		feed(t, m, streams, interleavings(pat, n, lens, rng.Int63()), func(_ int, in []*temporal.TDB) {
			step++
			if algo == 0 && step%97 == 0 {
				if err := temporal.CheckCompatR3(rec.tdb, in); err != nil {
					t.Fatalf("iter %d pattern %s step %d: %v", iter, pat, step, err)
				}
			}
		})
		if !rec.tdb.Equal(want) {
			t.Fatalf("iter %d (R4=%v pattern %s): merged TDB differs", iter, useR4, pat)
		}
		if w := m.Stats().ConsistencyWarnings; w != 0 {
			t.Fatalf("iter %d: %d consistency warnings on consistent inputs", iter, w)
		}
	}
}
