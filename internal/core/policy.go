package core

import "fmt"

// InsertPolicy controls when R3 first reflects a (Vs, Payload) on the output
// (policy location 2 of Section V-A).
type InsertPolicy uint8

const (
	// InsertFirstWins emits the first insert seen for each (Vs, Payload)
	// immediately — maximally responsive; the paper's Algorithm R3 default.
	InsertFirstWins InsertPolicy = iota
	// InsertQuorum waits until at least Quorum inputs have produced the
	// (Vs, Payload), reducing the chance of spurious output that later needs
	// full deletion. Events are still emitted at the half-frozen transition
	// regardless of quorum, as compatibility requires.
	InsertQuorum
	// InsertHalfFrozen defers emission until the event becomes half frozen
	// on some input: the output never fully removes an element, at the cost
	// of latency.
	InsertHalfFrozen
	// InsertFullyFrozen (conservative; Out2 of Table II) emits an event only
	// with its final lifetime. The output stable point is held back to the
	// earliest unemitted Vs so compatibility is preserved.
	InsertFullyFrozen
)

// String names the policy.
func (p InsertPolicy) String() string {
	switch p {
	case InsertFirstWins:
		return "first-wins"
	case InsertQuorum:
		return "quorum"
	case InsertHalfFrozen:
		return "half-frozen"
	case InsertFullyFrozen:
		return "fully-frozen"
	}
	return fmt.Sprintf("InsertPolicy(%d)", uint8(p))
}

// AdjustPolicy controls whether R3 propagates incoming adjust elements
// immediately (policy location 1 of Section V-A).
type AdjustPolicy uint8

const (
	// AdjustLazy retains the current output value for every (Vs, Payload)
	// and issues adjusts only when a stable element would otherwise make
	// output and input diverge irrecoverably. This is the paper's default;
	// it gives the non-chattiness bound of Theorem 1.
	AdjustLazy AdjustPolicy = iota
	// AdjustEager reflects every incoming adjust at the output. Chattier,
	// but downstream listeners see revisions sooner.
	AdjustEager
)

// String names the policy.
func (p AdjustPolicy) String() string {
	if p == AdjustEager {
		return "eager"
	}
	return "lazy"
}

// FollowPolicy optionally ties the output to one distinguished input
// (Sec. V-A: "force LMerge to 'follow' a particular input stream, for
// example, the stream with the currently maximum stable() timestamp").
type FollowPolicy uint8

const (
	// FollowNone applies the insert/adjust policies uniformly to all inputs
	// (the default).
	FollowNone FollowPolicy = iota
	// FollowLeader mirrors the leading stream — the input that most
	// recently advanced the output stable point: the leader's inserts and
	// revisions are reflected eagerly, other inputs are only tracked. When
	// leadership flaps, the output pays extra adjusts to re-align, the
	// overhead the paper warns about.
	FollowLeader
)

// String names the policy.
func (p FollowPolicy) String() string {
	if p == FollowLeader {
		return "follow-leader"
	}
	return "follow-none"
}

// R3Options selects the output policies of an R3 merger.
type R3Options struct {
	Insert InsertPolicy
	// Quorum is the number of inputs that must present a (Vs, Payload)
	// before it is emitted, when Insert == InsertQuorum. Values < 1 mean 1.
	Quorum int
	Adjust AdjustPolicy
	Follow FollowPolicy
}
