package core

import (
	"fmt"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// Feedback is the fast-forward signal of Section V-D: it tells the query
// plan feeding input Stream that elements before time T are no longer of
// interest, so the plan may skip producing them and purge related state.
type Feedback struct {
	Stream StreamID
	T      temporal.Time
}

// FeedbackFunc receives feedback signals for routing upstream.
type FeedbackFunc func(Feedback)

// Operator wraps a Merger with the dynamic input management of Section V-B
// (attach with a join timestamp, graceful detach) and the feedback signal
// generation of Section V-D. It is the form of LMerge that the engine and
// the applications (high availability, plan switching) instantiate.
type Operator struct {
	m        Merger
	next     StreamID
	inputs   map[StreamID]*inputState
	feedback FeedbackFunc
	// feedbackLag is how far an input's own progress may trail the output
	// stable point before a fast-forward signal is sent; 0 signals eagerly.
	feedbackLag temporal.Time
	// tel is the optional telemetry node, shared with the wrapped merger
	// (see Observe): the operator contributes the feedback-signal counter,
	// attach/detach trace events, and the live-state gauge.
	tel *obs.Node
	// live caches whether the merger reports a live-node count.
	live interface{ Live() int }
}

type inputState struct {
	joinTime     temporal.Time
	joined       bool
	leaving      bool
	lastStable   temporal.Time // the input's own progress
	lastFeedback temporal.Time
}

// OperatorOption configures an Operator.
type OperatorOption func(*Operator)

// WithFeedback routes fast-forward signals to fn whenever an input's own
// progress trails the merged output's stable point by more than lag.
func WithFeedback(fn FeedbackFunc, lag temporal.Time) OperatorOption {
	return func(o *Operator) {
		o.feedback = fn
		o.feedbackLag = lag
	}
}

// WithObserver attaches telemetry node n: the wrapped merger reports its
// traffic, freshness, and leadership into n, and the operator adds
// fast-forward signal counts, attach/detach trace events, and the live
// index-node gauge. Zero allocation on the merge hot path.
func WithObserver(n *obs.Node) OperatorOption {
	return func(o *Operator) { o.Observe(n) }
}

// NewOperator wraps merger m.
func NewOperator(m Merger, opts ...OperatorOption) *Operator {
	o := &Operator{m: m, inputs: make(map[StreamID]*inputState)}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Merger returns the wrapped merge algorithm (for stats and sizing).
func (o *Operator) Merger() Merger { return o.m }

// Observe implements Observable: the node is shared with the wrapped merger.
func (o *Operator) Observe(n *obs.Node) {
	o.tel = n
	if ob, ok := o.m.(Observable); ok {
		ob.Observe(n)
	}
	if lv, ok := o.m.(interface{ Live() int }); ok {
		o.live = lv
	}
}

// Telemetry returns the operator's telemetry node (nil when unobserved).
func (o *Operator) Telemetry() *obs.Node { return o.tel }

// MaxStable returns the output's stable point.
func (o *Operator) MaxStable() temporal.Time { return o.m.MaxStable() }

// Attach registers a new input stream. joinTime is the stream's guarantee
// point: it will present a correct TDB for every event with Ve >= joinTime.
// Streams that participate from the beginning attach with
// joinTime = temporal.MinTime and are immediately full members. A stream
// attached mid-run becomes a full member — able to carry the output on its
// own — once the output stable point reaches joinTime; until then its stable
// elements are withheld from the merge so its pre-join gap cannot suppress
// events the other inputs carry.
func (o *Operator) Attach(joinTime temporal.Time) StreamID {
	id := o.next
	o.AttachAt(id, joinTime)
	return id
}

// AttachAt registers a new input stream under a caller-chosen id, so several
// operator instances can mirror one logical set of inputs (the partitioned
// execution layer attaches each publisher under the same id on every
// partition). Attaching an id that is already registered is a no-op; ids
// handed out by Attach afterwards never collide with ids reserved here.
func (o *Operator) AttachAt(id StreamID, joinTime temporal.Time) {
	if _, ok := o.inputs[id]; ok {
		return
	}
	if id >= o.next {
		o.next = id + 1
	}
	st := &inputState{
		joinTime:     joinTime,
		lastStable:   temporal.MinTime,
		lastFeedback: temporal.MinTime,
	}
	st.joined = joinTime <= o.m.MaxStable() || joinTime == temporal.MinTime
	o.inputs[id] = st
	o.m.Attach(id)
	o.tel.Attached(id, joinTime)
}

// Detach marks input id as leaving; its subsequent elements are ignored and
// its merger-held state is released.
func (o *Operator) Detach(id StreamID) {
	st, ok := o.inputs[id]
	if !ok || st.leaving {
		return
	}
	st.leaving = true
	o.m.Detach(id)
	o.tel.Detached(id)
}

// Joined reports whether input id is a full member (see Attach).
func (o *Operator) Joined(id StreamID) bool {
	st, ok := o.inputs[id]
	return ok && st.joined
}

// ActiveInputs returns the number of attached, non-leaving inputs.
func (o *Operator) ActiveInputs() int {
	n := 0
	for _, st := range o.inputs {
		if !st.leaving {
			n++
		}
	}
	return n
}

// Process feeds one element from input id through the merge.
func (o *Operator) Process(id StreamID, e temporal.Element) error {
	st, ok := o.inputs[id]
	if !ok {
		return fmt.Errorf("lmerge: element from unattached stream %d", id)
	}
	return o.process(st, id, e)
}

// ProcessBatch feeds a run of elements from input id through the merge,
// equivalent to calling Process on each element in order but resolving the
// input once for the whole run.
func (o *Operator) ProcessBatch(id StreamID, els []temporal.Element) error {
	st, ok := o.inputs[id]
	if !ok {
		return fmt.Errorf("lmerge: batch from unattached stream %d", id)
	}
	for _, e := range els {
		if err := o.process(st, id, e); err != nil {
			return err
		}
	}
	return nil
}

func (o *Operator) process(st *inputState, id StreamID, e temporal.Element) error {
	if st.leaving {
		return nil
	}
	if e.Kind == temporal.KindStable {
		st.lastStable = temporal.MaxT(st.lastStable, e.T())
		if !st.joined && st.joinTime <= o.m.MaxStable() {
			st.joined = true
		}
		if !st.joined {
			// Withhold: the stream's pre-join gap must not drive the output.
			return nil
		}
	}
	before := o.m.MaxStable()
	if err := o.m.Process(id, e); err != nil {
		return err
	}
	if after := o.m.MaxStable(); after > before {
		o.onStableAdvance(after)
	}
	return nil
}

// onStableAdvance promotes pending joiners and emits fast-forward feedback
// to inputs lagging behind the new output stable point.
func (o *Operator) onStableAdvance(t temporal.Time) {
	if o.tel != nil && o.live != nil {
		o.tel.SetLive(o.live.Live())
	}
	for id, st := range o.inputs {
		if st.leaving {
			continue
		}
		if !st.joined && st.joinTime <= t {
			st.joined = true
		}
		if o.feedback == nil {
			continue
		}
		if st.lastStable < t-o.feedbackLag && st.lastFeedback < t {
			st.lastFeedback = t
			o.tel.FF(id, t)
			o.feedback(Feedback{Stream: id, T: t})
		}
	}
}
