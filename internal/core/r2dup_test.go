package core

import (
	"testing"

	"lmerge/internal/temporal"
)

func TestR2DupMultiset(t *testing.T) {
	a := temporal.P('A')
	// Each input presents A twice at Vs=1, in different interleavings.
	s0 := temporal.Stream{
		temporal.Insert(a, 1, 5), temporal.Insert(a, 1, 5),
		temporal.Insert(temporal.P('B'), 2, 6),
	}
	s1 := temporal.Stream{
		temporal.Insert(a, 1, 5), temporal.Insert(a, 1, 5),
		temporal.Insert(temporal.P('B'), 2, 6),
	}
	rec := newRecorder(t)
	m := NewR2Dup(rec.emit)
	m.Attach(0)
	m.Attach(1)
	for i := range s0 {
		mustP(t, m, 0, s0[i])
		mustP(t, m, 1, s1[i])
	}
	mustP(t, m, 0, temporal.Stable(temporal.Infinity))
	if got := rec.tdb.Count(temporal.Ev(a, 1, 5)); got != 2 {
		t.Fatalf("A multiplicity = %d, want 2", got)
	}
	if rec.tdb.Len() != 3 {
		t.Fatalf("output %v", rec.tdb)
	}
}

func TestR2DupUnevenDelivery(t *testing.T) {
	// One stream delivers its duplicates before the other starts: the output
	// must still carry exactly the max multiplicity.
	a := temporal.P('A')
	rec := newRecorder(t)
	m := NewR2Dup(rec.emit)
	m.Attach(0)
	m.Attach(1)
	mustP(t, m, 0, temporal.Insert(a, 1, 5))
	mustP(t, m, 0, temporal.Insert(a, 1, 5))
	mustP(t, m, 0, temporal.Insert(a, 1, 5))
	// Stream 1 replays the same three copies: all absorbed.
	mustP(t, m, 1, temporal.Insert(a, 1, 5))
	mustP(t, m, 1, temporal.Insert(a, 1, 5))
	mustP(t, m, 1, temporal.Insert(a, 1, 5))
	if got := rec.tdb.Count(temporal.Ev(a, 1, 5)); got != 3 {
		t.Fatalf("A multiplicity = %d, want 3", got)
	}
	if m.Stats().Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", m.Stats().Dropped)
	}
}

func TestR2PlainStillDedups(t *testing.T) {
	a := temporal.P('A')
	rec := newRecorder(t)
	m := NewR2(rec.emit)
	m.Attach(0)
	mustP(t, m, 0, temporal.Insert(a, 1, 5))
	mustP(t, m, 0, temporal.Insert(a, 1, 5)) // violates the key; plain R2 dedups
	if got := rec.tdb.Count(temporal.Ev(a, 1, 5)); got != 1 {
		t.Fatalf("A multiplicity = %d, want 1", got)
	}
}

func TestR2DupVsAdvanceResets(t *testing.T) {
	a := temporal.P('A')
	rec := newRecorder(t)
	m := NewR2Dup(rec.emit)
	m.Attach(0)
	mustP(t, m, 0, temporal.Insert(a, 1, 5))
	mustP(t, m, 0, temporal.Insert(a, 1, 5))
	mustP(t, m, 0, temporal.Insert(a, 2, 6)) // Vs advances: fresh multiset
	mustP(t, m, 0, temporal.Insert(a, 2, 6))
	if rec.tdb.Count(temporal.Ev(a, 1, 5)) != 2 || rec.tdb.Count(temporal.Ev(a, 2, 6)) != 2 {
		t.Fatalf("output %v", rec.tdb)
	}
}
