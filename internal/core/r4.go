package core

import (
	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// R4 is Algorithm R4, the fully general Logical Merge: elements of all kinds
// in any stable-respecting order, with the TDB a true multiset — several
// events may share (Vs, Payload) with different Ve values, and exact
// duplicates may occur. State lives in the in3t three-tier index, which
// extends in2t's per-stream hash entry to a small Ve-ordered tree of
// occurrence counts.
//
// Output maintenance follows Section IV-E: inserts are reflected only while
// they keep the output's per-key count within the maximum input count;
// adjusts are absorbed; and stable processing enforces two invariants before
// the stable is propagated — per-key output counts equal the vouching
// input's counts (AdjustOutputCount), and the fully frozen Ve multiset of
// the output matches the input's exactly (AdjustOutput).
type R4 struct {
	base
	index *index.In3t
	// Scratch buffers reused across stable sweeps and detaches; steady-state
	// sweeps allocate nothing. diff holds out−in per Ve in ascending Ve order
	// (replacing a per-call map, which also made adjust emission order depend
	// on map iteration); the four pools partition it by sign and region.
	hf            []*index.Node3
	inVes, outVes []index.VeCount
	diff          []veDelta
	defFF, surFF  []veDelta
	surLive       []veDelta
	defLive       []veDelta
}

// veDelta is one (Ve, count delta) pair of a per-node output−input diff.
type veDelta struct {
	ve temporal.Time
	d  int
}

// NewR4 returns an R4 merger writing its output to emit.
func NewR4(emit Emit) *R4 {
	return &R4{base: newBase(emit), index: index.NewIn3t()}
}

// Case returns CaseR4.
func (m *R4) Case() Case { return CaseR4 }

// SizeBytes reports the in3t footprint.
func (m *R4) SizeBytes() int { return m.index.SizeBytes() }

// Live returns the number of live (Vs, Payload) nodes.
func (m *R4) Live() int { return m.index.Len() }

// Detach unregisters stream s, drops its third-tier multisets, and retires
// nodes left with no vouching input: their output occurrences (when still
// adjustable) are withdrawn, since no remaining input will vouch for them at
// freeze time, and the nodes are deleted rather than leaked.
func (m *R4) Detach(s StreamID) {
	m.base.Detach(s)
	m.hf = m.hf[:0]
	m.index.Ascend(func(n *index.Node3) bool {
		n.DeleteStream(s)
		if n.Vouchers() == 0 {
			m.hf = append(m.hf, n)
		}
		return true
	})
	for _, f := range m.hf {
		k := f.Key()
		if f.Count(index.OutputStream) > 0 {
			if k.Vs < m.maxStable {
				// The output occurrences are already half frozen and cannot
				// be withdrawn; the next stable sweep settles and retires the
				// node.
				continue
			}
			m.outVes = m.outVes[:0]
			f.AscendVe(index.OutputStream, func(ve temporal.Time, c int) bool {
				m.outVes = append(m.outVes, index.VeCount{Ve: ve, Count: c})
				return true
			})
			for _, vc := range m.outVes {
				for i := 0; i < vc.Count; i++ {
					m.outAdjust(k.Payload, k.Vs, vc.Ve, k.Vs)
				}
			}
		}
		m.index.DeleteNode(k)
	}
}

// Process implements Merger.
func (m *R4) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(s, e)
	switch e.Kind {
	case temporal.KindInsert:
		m.insert(s, e)
		return nil
	case temporal.KindAdjust:
		m.adjust(s, e)
		return nil
	case temporal.KindStable:
		m.stable(s, e.T())
		return nil
	}
	return errUnsupported(CaseR4, e)
}

func (m *R4) insert(s StreamID, e temporal.Element) {
	if e.Ve == e.Vs {
		m.drop() // empty validity interval contributes nothing
		return
	}
	f, ok := m.index.SameVsPayload(e)
	if !ok {
		if e.Vs < m.maxStable {
			m.drop()
			return
		}
		f = m.index.AddNode(e)
	}
	f.IncrementCount(s, e.Ve)
	// Reflect the insert only while the output's count for this key stays
	// within some input's count (limits chattiness; Sec. IV-E invariant 1).
	if e.Vs >= m.maxStable && f.Count(s) > f.Count(index.OutputStream) {
		m.outInsert(e.Payload, e.Vs, e.Ve)
		f.IncrementCount(index.OutputStream, e.Ve)
	}
}

func (m *R4) adjust(s StreamID, e temporal.Element) {
	f, ok := m.index.SameVsPayload(e)
	if !ok {
		m.drop()
		return
	}
	if !f.DecrementCount(s, e.VOld) {
		// The stream adjusted an occurrence it never produced here; with
		// mutually consistent inputs this only happens for occurrences
		// already retired as fully frozen.
		m.drop()
		return
	}
	if !e.IsRemoval() {
		f.IncrementCount(s, e.Ve)
	}
}

func (m *R4) stable(s StreamID, t temporal.Time) {
	if t <= m.maxStable {
		m.drop()
		return
	}
	m.hf = m.index.FindHalfFrozenInto(t, m.hf)
	for _, f := range m.hf {
		m.adjustOutputCount(f, s)
		m.adjustOutput(f, s, t)
		if maxVe, ok := f.MaxVe(s); !ok || maxVe < t {
			// Every occurrence stream s vouches for is fully frozen (and the
			// output now mirrors them): the node needs no more tracking.
			m.index.DeleteNode(f.Key())
		}
	}
	m.maxStable = t
	m.outStable(t)
}

// veDiff fills m.diff with the output−input occurrence-count delta per Ve
// for node f against vouching input s, restricted to the live region
// [maxStable, ∞) and in ascending Ve order. It returns the two live totals.
// The result lives in reusable scratch and is invalidated by the next call.
func (m *R4) veDiff(f *index.Node3, s StreamID) (totalIn, totalOut int) {
	m.inVes = m.inVes[:0]
	f.AscendVe(s, func(ve temporal.Time, c int) bool {
		if ve >= m.maxStable {
			m.inVes = append(m.inVes, index.VeCount{Ve: ve, Count: c})
			totalIn += c
		}
		return true
	})
	m.outVes = m.outVes[:0]
	f.AscendVe(index.OutputStream, func(ve temporal.Time, c int) bool {
		if ve >= m.maxStable {
			m.outVes = append(m.outVes, index.VeCount{Ve: ve, Count: c})
			totalOut += c
		}
		return true
	})
	m.diff = m.diff[:0]
	i, j := 0, 0
	for i < len(m.inVes) || j < len(m.outVes) {
		switch {
		case j == len(m.outVes) || (i < len(m.inVes) && m.inVes[i].Ve < m.outVes[j].Ve):
			m.diff = append(m.diff, veDelta{m.inVes[i].Ve, -m.inVes[i].Count})
			i++
		case i == len(m.inVes) || m.outVes[j].Ve < m.inVes[i].Ve:
			m.diff = append(m.diff, veDelta{m.outVes[j].Ve, m.outVes[j].Count})
			j++
		default:
			if d := m.outVes[j].Count - m.inVes[i].Count; d != 0 {
				m.diff = append(m.diff, veDelta{m.inVes[i].Ve, d})
			}
			i++
			j++
		}
	}
	return totalIn, totalOut
}

// adjustOutputCount makes the output hold exactly as many events for f's
// (Vs, Payload) as vouching input s does, aligning per-Ve counts where it
// can (AdjustOutputCount of Sec. IV-E). Only occurrences with Ve at or above
// the current output stable point participate; earlier ones were settled by
// previous stables and can no longer differ.
func (m *R4) adjustOutputCount(f *index.Node3, s StreamID) {
	k := f.Key()
	totalIn, totalOut := m.veDiff(f, s)
	switch {
	case totalOut > totalIn:
		// Remove surplus output events, taking them from over-represented
		// Ve values.
		need := totalOut - totalIn
		if k.Vs < m.maxStable {
			// Removal would delete a half-frozen output event — impossible
			// with mutually consistent inputs.
			m.warn(k.Vs)
			return
		}
		for idx := range m.diff {
			for ; m.diff[idx].d > 0 && need > 0; need-- {
				m.diff[idx].d--
				m.outAdjust(k.Payload, k.Vs, m.diff[idx].ve, k.Vs)
				f.DecrementCount(index.OutputStream, m.diff[idx].ve)
			}
		}
	case totalIn > totalOut:
		need := totalIn - totalOut
		if k.Vs < m.maxStable {
			m.warn(k.Vs)
			return
		}
		for idx := range m.diff {
			for ; m.diff[idx].d < 0 && need > 0; need-- {
				m.diff[idx].d++
				m.outInsert(k.Payload, k.Vs, m.diff[idx].ve)
				f.IncrementCount(index.OutputStream, m.diff[idx].ve)
			}
		}
	}
}

// takeDelta consumes one occurrence from the pool, advancing *cur past
// exhausted entries; ok is false once the pool is empty. Pools store
// positive counts regardless of which side of the diff they came from.
func takeDelta(pool []veDelta, cur *int) (temporal.Time, bool) {
	for *cur < len(pool) {
		if pool[*cur].d > 0 {
			pool[*cur].d--
			return pool[*cur].ve, true
		}
		*cur++
	}
	return 0, false
}

// adjustOutput retargets output events so that, for every Ve becoming fully
// frozen (Ve < t), the output's occurrence count equals vouching input s's
// (AdjustOutput of Sec. IV-E). Deficits are filled first from surplus output
// occurrences inside the frozen region, then from surplus occurrences
// beyond it; leftover frozen surplus is pushed out to the input's unfrozen
// values (or Infinity as a last resort).
func (m *R4) adjustOutput(f *index.Node3, s StreamID, t temporal.Time) {
	k := f.Key()
	m.veDiff(f, s)
	m.defFF, m.surFF = m.defFF[:0], m.surFF[:0]
	m.surLive, m.defLive = m.surLive[:0], m.defLive[:0]
	for _, dd := range m.diff {
		switch {
		case dd.d < 0 && dd.ve < t:
			m.defFF = append(m.defFF, veDelta{dd.ve, -dd.d})
		case dd.d > 0 && dd.ve < t:
			m.surFF = append(m.surFF, veDelta{dd.ve, dd.d})
		case dd.d > 0:
			m.surLive = append(m.surLive, veDelta{dd.ve, dd.d})
		default:
			m.defLive = append(m.defLive, veDelta{dd.ve, -dd.d})
		}
	}
	if len(m.defFF) == 0 && len(m.surFF) == 0 {
		return
	}
	move := func(from, to temporal.Time) {
		m.outAdjust(k.Payload, k.Vs, from, to)
		f.DecrementCount(index.OutputStream, from)
		f.IncrementCount(index.OutputStream, to)
	}
	var surFFCur, surLiveCur, defLiveCur int
	// Fill frozen deficits from frozen surplus first, then live surplus.
	for _, d := range m.defFF {
		for i := 0; i < d.d; i++ {
			if src, ok := takeDelta(m.surFF, &surFFCur); ok {
				move(src, d.ve)
				continue
			}
			if src, ok := takeDelta(m.surLive, &surLiveCur); ok {
				move(src, d.ve)
				continue
			}
			// Totals should have been equalised by adjustOutputCount.
			m.warn(k.Vs)
		}
	}
	// Push leftover frozen surplus out of the frozen region.
	for {
		src, ok := takeDelta(m.surFF, &surFFCur)
		if !ok {
			break
		}
		if dst, ok := takeDelta(m.defLive, &defLiveCur); ok {
			move(src, dst)
			continue
		}
		m.warn(k.Vs)
		move(src, temporal.Infinity)
	}
}
