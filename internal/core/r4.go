package core

import (
	"lmerge/internal/index"
	"lmerge/internal/temporal"
)

// R4 is Algorithm R4, the fully general Logical Merge: elements of all kinds
// in any stable-respecting order, with the TDB a true multiset — several
// events may share (Vs, Payload) with different Ve values, and exact
// duplicates may occur. State lives in the in3t three-tier index, which
// extends in2t's per-stream hash entry to a small Ve-ordered tree of
// occurrence counts.
//
// Output maintenance follows Section IV-E: inserts are reflected only while
// they keep the output's per-key count within the maximum input count;
// adjusts are absorbed; and stable processing enforces two invariants before
// the stable is propagated — per-key output counts equal the vouching
// input's counts (AdjustOutputCount), and the fully frozen Ve multiset of
// the output matches the input's exactly (AdjustOutput).
type R4 struct {
	base
	index *index.In3t
}

// NewR4 returns an R4 merger writing its output to emit.
func NewR4(emit Emit) *R4 {
	return &R4{base: newBase(emit), index: index.NewIn3t()}
}

// Case returns CaseR4.
func (m *R4) Case() Case { return CaseR4 }

// SizeBytes reports the in3t footprint.
func (m *R4) SizeBytes() int { return m.index.SizeBytes() }

// Live returns the number of live (Vs, Payload) nodes.
func (m *R4) Live() int { return m.index.Len() }

// Detach unregisters stream s and drops its third-tier multisets.
func (m *R4) Detach(s StreamID) {
	m.base.Detach(s)
	m.index.Ascend(func(n *index.Node3) bool {
		n.DeleteStream(s)
		return true
	})
}

// Process implements Merger.
func (m *R4) Process(s StreamID, e temporal.Element) error {
	m.noteAttached(s)
	m.countIn(e)
	switch e.Kind {
	case temporal.KindInsert:
		m.insert(s, e)
		return nil
	case temporal.KindAdjust:
		m.adjust(s, e)
		return nil
	case temporal.KindStable:
		m.stable(s, e.T())
		return nil
	}
	return errUnsupported(CaseR4, e)
}

func (m *R4) insert(s StreamID, e temporal.Element) {
	if e.Ve == e.Vs {
		m.stats.Dropped++ // empty validity interval contributes nothing
		return
	}
	f, ok := m.index.SameVsPayload(e)
	if !ok {
		if e.Vs < m.maxStable {
			m.stats.Dropped++
			return
		}
		f = m.index.AddNode(e)
	}
	f.IncrementCount(s, e.Ve)
	// Reflect the insert only while the output's count for this key stays
	// within some input's count (limits chattiness; Sec. IV-E invariant 1).
	if e.Vs >= m.maxStable && f.Count(s) > f.Count(index.OutputStream) {
		m.outInsert(e.Payload, e.Vs, e.Ve)
		f.IncrementCount(index.OutputStream, e.Ve)
	}
}

func (m *R4) adjust(s StreamID, e temporal.Element) {
	f, ok := m.index.SameVsPayload(e)
	if !ok {
		m.stats.Dropped++
		return
	}
	if !f.DecrementCount(s, e.VOld) {
		// The stream adjusted an occurrence it never produced here; with
		// mutually consistent inputs this only happens for occurrences
		// already retired as fully frozen.
		m.stats.Dropped++
		return
	}
	if !e.IsRemoval() {
		f.IncrementCount(s, e.Ve)
	}
}

func (m *R4) stable(s StreamID, t temporal.Time) {
	if t <= m.maxStable {
		m.stats.Dropped++
		return
	}
	for _, f := range m.index.FindHalfFrozen(t) {
		m.adjustOutputCount(f, s)
		m.adjustOutput(f, s, t)
		if maxVe, ok := f.MaxVe(s); !ok || maxVe < t {
			// Every occurrence stream s vouches for is fully frozen (and the
			// output now mirrors them): the node needs no more tracking.
			m.index.DeleteNode(f.Key())
		}
	}
	m.maxStable = t
	m.outStable(t)
}

// adjustOutputCount makes the output hold exactly as many events for f's
// (Vs, Payload) as vouching input s does, aligning per-Ve counts where it
// can (AdjustOutputCount of Sec. IV-E). Only occurrences with Ve at or above
// the current output stable point participate; earlier ones were settled by
// previous stables and can no longer differ.
func (m *R4) adjustOutputCount(f *index.Node3, s StreamID) {
	k := f.Key()
	totalIn, totalOut := 0, 0
	diff := make(map[temporal.Time]int) // out - in, per Ve, within the live region
	f.AscendVe(s, func(ve temporal.Time, c int) bool {
		if ve >= m.maxStable {
			totalIn += c
			diff[ve] -= c
		}
		return true
	})
	f.AscendVe(index.OutputStream, func(ve temporal.Time, c int) bool {
		if ve >= m.maxStable {
			totalOut += c
			diff[ve] += c
		}
		return true
	})
	switch {
	case totalOut > totalIn:
		// Remove surplus output events, taking them from over-represented
		// Ve values.
		need := totalOut - totalIn
		if k.Vs < m.maxStable {
			// Removal would delete a half-frozen output event — impossible
			// with mutually consistent inputs.
			m.stats.ConsistencyWarnings++
			return
		}
		for ve, d := range diff {
			for ; d > 0 && need > 0; d, need = d-1, need-1 {
				m.outAdjust(k.Payload, k.Vs, ve, k.Vs)
				f.DecrementCount(index.OutputStream, ve)
			}
		}
	case totalIn > totalOut:
		need := totalIn - totalOut
		if k.Vs < m.maxStable {
			m.stats.ConsistencyWarnings++
			return
		}
		for ve, d := range diff {
			for ; d < 0 && need > 0; d, need = d+1, need-1 {
				m.outInsert(k.Payload, k.Vs, ve)
				f.IncrementCount(index.OutputStream, ve)
			}
		}
	}
}

// adjustOutput retargets output events so that, for every Ve becoming fully
// frozen (Ve < t), the output's occurrence count equals vouching input s's
// (AdjustOutput of Sec. IV-E). Deficits are filled first from surplus output
// occurrences inside the frozen region, then from surplus occurrences
// beyond it; leftover frozen surplus is pushed out to the input's unfrozen
// values (or Infinity as a last resort).
func (m *R4) adjustOutput(f *index.Node3, s StreamID, t temporal.Time) {
	k := f.Key()
	// Per-Ve imbalance within the live region [maxStable, ∞).
	type imb struct {
		ve temporal.Time
		n  int
	}
	var deficitFF, surplusFF, surplusLive, deficitLive []imb
	diff := make(map[temporal.Time]int)
	f.AscendVe(s, func(ve temporal.Time, c int) bool {
		if ve >= m.maxStable {
			diff[ve] -= c
		}
		return true
	})
	f.AscendVe(index.OutputStream, func(ve temporal.Time, c int) bool {
		if ve >= m.maxStable {
			diff[ve] += c
		}
		return true
	})
	for ve, d := range diff {
		switch {
		case d < 0 && ve < t:
			deficitFF = append(deficitFF, imb{ve, -d})
		case d > 0 && ve < t:
			surplusFF = append(surplusFF, imb{ve, d})
		case d > 0:
			surplusLive = append(surplusLive, imb{ve, d})
		case d < 0:
			deficitLive = append(deficitLive, imb{ve, -d})
		}
	}
	if len(deficitFF) == 0 && len(surplusFF) == 0 {
		return
	}
	move := func(from, to temporal.Time) {
		m.outAdjust(k.Payload, k.Vs, from, to)
		f.DecrementCount(index.OutputStream, from)
		f.IncrementCount(index.OutputStream, to)
	}
	take := func(pool *[]imb) (temporal.Time, bool) {
		for len(*pool) > 0 {
			head := &(*pool)[0]
			if head.n > 0 {
				head.n--
				if head.n == 0 {
					*pool = (*pool)[1:]
				}
				return head.ve, true
			}
			*pool = (*pool)[1:]
		}
		return 0, false
	}
	// Fill frozen deficits from frozen surplus first, then live surplus.
	for _, d := range deficitFF {
		for i := 0; i < d.n; i++ {
			if src, ok := take(&surplusFF); ok {
				move(src, d.ve)
				continue
			}
			if src, ok := take(&surplusLive); ok {
				move(src, d.ve)
				continue
			}
			// Totals should have been equalised by adjustOutputCount.
			m.stats.ConsistencyWarnings++
		}
	}
	// Push leftover frozen surplus out of the frozen region.
	for {
		src, ok := take(&surplusFF)
		if !ok {
			break
		}
		if dst, ok := take(&deficitLive); ok {
			move(src, dst)
			continue
		}
		m.stats.ConsistencyWarnings++
		move(src, temporal.Infinity)
	}
}
