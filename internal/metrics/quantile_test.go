package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is an independent straight-line implementation of the type-7
// (linear interpolation) quantile over an explicitly sorted copy — the
// reference Summarize is differentially tested against.
func refQuantile(vals []float64, p float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	r := p * float64(n-1)
	lo := math.Floor(r)
	hi := math.Ceil(r)
	if int(hi) >= n {
		return sorted[n-1]
	}
	w := r - lo
	return (1-w)*sorted[int(lo)] + w*sorted[int(hi)]
}

func TestSummarizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []func() float64{
		func() float64 { return rng.Float64() * 1000 },       // uniform
		func() float64 { return rng.NormFloat64()*50 + 200 }, // gaussian
		func() float64 { return rng.ExpFloat64() * 10 },      // heavy right tail
		func() float64 { return float64(rng.Intn(3)) },       // many duplicates
	}
	for si, shape := range shapes {
		for _, n := range []int{1, 2, 3, 4, 5, 10, 99, 100, 1000} {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = shape()
			}
			s := Summarize(vals)
			for _, c := range []struct {
				name string
				got  float64
				p    float64
			}{
				{"P50", s.P50, 0.5},
				{"P95", s.P95, 0.95},
				{"P99", s.P99, 0.99},
			} {
				want := refQuantile(vals, c.p)
				if math.Abs(c.got-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Errorf("shape %d n=%d: %s = %v, reference %v", si, n, c.name, c.got, want)
				}
			}
			if s.Min != refQuantile(vals, 0) || s.Max != refQuantile(vals, 1) {
				t.Errorf("shape %d n=%d: min/max disagree with 0th/100th quantile", si, n)
			}
		}
	}
}

// TestQuantileSingleSample pins the degenerate edges: with one sample every
// quantile is that sample; with two, the median is their midpoint.
func TestQuantileSingleSample(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Min != 42 || s.P50 != 42 || s.P95 != 42 || s.P99 != 42 || s.Max != 42 || s.Mean != 42 {
		t.Fatalf("single-sample summary %+v", s)
	}
	if s.Stddev != 0 || s.CoefficientOfVar != 0 {
		t.Fatalf("single sample has spread: %+v", s)
	}

	s = Summarize([]float64{10, 20})
	if s.P50 != 15 {
		t.Errorf("median of {10,20} = %v, want 15 (interpolated)", s.P50)
	}
	if math.Abs(s.P95-19.5) > 1e-9 {
		t.Errorf("p95 of {10,20} = %v, want 19.5", s.P95)
	}
	if s.Max != 20 || s.Min != 10 {
		t.Errorf("min/max %+v", s)
	}
}

// TestQuantileInterpolation pins known interpolated values so a silent
// regression to nearest-rank truncation fails loudly.
func TestQuantileInterpolation(t *testing.T) {
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..10
	}
	s := Summarize(vals)
	if math.Abs(s.P50-5.5) > 1e-9 {
		t.Errorf("P50 = %v, want 5.5", s.P50)
	}
	if math.Abs(s.P95-9.55) > 1e-9 {
		t.Errorf("P95 = %v, want 9.55", s.P95)
	}
	if math.Abs(s.P99-9.91) > 1e-9 {
		t.Errorf("P99 = %v, want 9.91 (nearest-rank would collapse it to 9)", s.P99)
	}
	// Order must not matter.
	perm := []float64{7, 2, 9, 1, 10, 4, 3, 8, 6, 5}
	if p := Summarize(perm); p.P95 != s.P95 || p.P50 != s.P50 {
		t.Error("summary depends on input order")
	}
}
