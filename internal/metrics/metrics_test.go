package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBucketing(t *testing.T) {
	s := NewSeries(1.0)
	s.Add(0.2, 1)
	s.Add(0.9, 2)
	s.Add(2.5, 4)
	s.Add(-1, 8) // clamps to bucket 0
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("buckets = %d", len(pts))
	}
	if pts[0].V != 11 || pts[1].V != 0 || pts[2].V != 4 {
		t.Fatalf("points = %v", pts)
	}
	if pts[2].T != 2.0 {
		t.Fatalf("bucket start = %v", pts[2].T)
	}
	rate := NewSeries(0.5)
	rate.Add(0.1, 10)
	if got := rate.Rate()[0].V; got != 20 {
		t.Fatalf("rate = %v, want 20", got)
	}
	if s.Len() != 3 || len(s.Values()) != 3 {
		t.Fatal("Len/Values wrong")
	}
}

func TestSeriesPanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if math.Abs(s.CoefficientOfVar-math.Sqrt(2)/3) > 1e-9 {
		t.Fatalf("cv = %v", s.CoefficientOfVar)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
	if Summarize([]float64{0, 0}).CoefficientOfVar != 0 {
		t.Fatal("cv of zero mean should be 0")
	}
	if !strings.Contains(s.String(), "p50") {
		t.Fatal("String missing fields")
	}
}

func TestSummarizeQuickInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Keep magnitudes bounded so the mean cannot overflow.
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.N == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Observe(float64(i))
	}
	if l.N() != 100 {
		t.Fatal("N wrong")
	}
	// Interpolated p95 of 1..100: 1 + 0.95*99.
	if s := l.Summary(); math.Abs(s.P95-95.05) > 1e-9 || s.Min != 1 {
		t.Fatalf("latency summary %+v", s)
	}
}

func TestSparkline(t *testing.T) {
	pts := []Point{{0, 0}, {1, 5}, {2, 10}, {3, 5}, {4, 0}}
	sl := Sparkline(pts, 5)
	if len([]rune(sl)) != 5 {
		t.Fatalf("sparkline %q has wrong width", sl)
	}
	if Sparkline(nil, 5) != "" {
		t.Fatal("empty series should render empty")
	}
	flat := Sparkline([]Point{{0, 0}, {1, 0}}, 2)
	if len([]rune(flat)) != 2 {
		t.Fatalf("flat sparkline %q", flat)
	}
	// Downsampling path.
	many := make([]Point, 100)
	for i := range many {
		many[i] = Point{T: float64(i), V: float64(i)}
	}
	if got := Sparkline(many, 10); len([]rune(got)) != 10 {
		t.Fatalf("downsampled width %d", len([]rune(got)))
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		vals []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0, 0}, 0},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{30, 10, 20}, 1.5},
		{[]float64{100, 0, 0, 0}, 4},
	}
	for _, c := range cases {
		if got := Imbalance(c.vals); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Imbalance(%v) = %v, want %v", c.vals, got, c.want)
		}
	}
	// Composes with Summarize: same input vector, max/mean consistency.
	vals := []float64{4, 8, 2, 6}
	s := Summarize(vals)
	if got, want := Imbalance(vals), s.Max/s.Mean; math.Abs(got-want) > 1e-12 {
		t.Errorf("Imbalance = %v, Summarize max/mean = %v", got, want)
	}
}
