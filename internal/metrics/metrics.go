// Package metrics provides the measurement plumbing of the evaluation:
// time-bucketed series for the throughput plots (Figs. 8–10), latency
// tracking for the Sec. VI-D-3 comparison, and distribution summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (time, value) sample of a series.
type Point struct {
	T float64
	V float64
}

// Series accumulates values into fixed-width time buckets — the shape of the
// paper's throughput-over-time figures.
type Series struct {
	Bucket float64
	vals   []float64
}

// NewSeries returns a series with the given bucket width in seconds.
func NewSeries(bucket float64) *Series {
	if bucket <= 0 {
		panic("metrics: bucket width must be positive")
	}
	return &Series{Bucket: bucket}
}

// Add accumulates v into the bucket containing time at (negative times clamp
// to the first bucket).
func (s *Series) Add(at, v float64) {
	i := int(at / s.Bucket)
	if i < 0 {
		i = 0
	}
	for len(s.vals) <= i {
		s.vals = append(s.vals, 0)
	}
	s.vals[i] += v
}

// Points returns the bucketed samples; T is the bucket start.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.vals))
	for i, v := range s.vals {
		out[i] = Point{T: float64(i) * s.Bucket, V: v}
	}
	return out
}

// Rate returns per-second rates (value / bucket width).
func (s *Series) Rate() []Point {
	out := s.Points()
	for i := range out {
		out[i].V /= s.Bucket
	}
	return out
}

// Len returns the number of buckets.
func (s *Series) Len() int { return len(s.vals) }

// Values returns the raw bucket values.
func (s *Series) Values() []float64 { return append([]float64(nil), s.vals...) }

// Summary is a distribution summary.
type Summary struct {
	N                int
	Min, Mean, Max   float64
	P50, P95, P99    float64
	Stddev           float64
	CoefficientOfVar float64 // stddev/mean; the burst-smoothing metric
}

// Summarize computes a Summary of vals.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	varSum := 0.0
	for _, v := range sorted {
		d := v - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(len(sorted)))
	q := func(p float64) float64 {
		// Linear interpolation between the closest order statistics
		// (Hyndman–Fan type 7, the default in R and NumPy). Truncating to a
		// single order statistic biases small samples low: the p99 of 10
		// samples would just be the 9th value, identical to p89.
		r := p * float64(len(sorted)-1)
		lo := int(r)
		if lo >= len(sorted)-1 {
			return sorted[len(sorted)-1]
		}
		frac := r - float64(lo)
		return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
	}
	s := Summary{
		N: len(sorted), Min: sorted[0], Max: sorted[len(sorted)-1],
		Mean: mean, P50: q(0.5), P95: q(0.95), P99: q(0.99), Stddev: std,
	}
	if mean != 0 {
		s.CoefficientOfVar = std / mean
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f p50=%.1f mean=%.1f p95=%.1f max=%.1f cv=%.3f",
		s.N, s.Min, s.P50, s.Mean, s.P95, s.Max, s.CoefficientOfVar)
}

// Imbalance is the load-imbalance ratio of a per-partition gauge set:
// max/mean, the standard skew figure of partitioned stream processing. 1
// means perfectly even load; P means the hottest partition carries P× its
// fair share (an upper bound on the speedup lost to skew). It returns 0 for
// an empty or all-zero gauge set and composes with Summarize — feed it the
// same per-partition values (Summarize(vals) for the distribution,
// Imbalance(vals) for the headline ratio).
func Imbalance(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum, max := 0.0, math.Inf(-1)
	for _, v := range vals {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(vals)))
}

// Latencies tracks per-element latencies (virtual seconds between an
// element's availability and its appearance on the output).
type Latencies struct {
	vals []float64
}

// Observe records one latency sample.
func (l *Latencies) Observe(v float64) { l.vals = append(l.vals, v) }

// Summary summarises the recorded samples.
func (l *Latencies) Summary() Summary { return Summarize(l.vals) }

// N returns the sample count.
func (l *Latencies) N() int { return len(l.vals) }

// Sparkline renders a crude ASCII plot of a series, used by cmd/lmbench to
// show the Fig. 8–10 time series in a terminal.
func Sparkline(points []Point, width int) string {
	if len(points) == 0 {
		return ""
	}
	if width <= 0 || width > len(points) {
		width = len(points)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, p := range points {
		if p.V > max {
			max = p.V
		}
	}
	if max == 0 {
		return strings.Repeat("▁", width)
	}
	var b strings.Builder
	step := float64(len(points)) / float64(width)
	for i := 0; i < width; i++ {
		lo, hi := int(float64(i)*step), int(float64(i+1)*step)
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			lo = hi - 1
		}
		v := 0.0
		for _, p := range points[lo:hi] {
			v += p.V
		}
		v /= float64(hi - lo)
		idx := int(v / max * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
