package metrics

import (
	"math"
	"testing"
)

// noNaN fails if any summary field is NaN or (other than where documented)
// infinite — degenerate gauge sets must degrade to zeros, not poison
// downstream arithmetic or JSON encoding.
func noNaN(t *testing.T, name string, s Summary) {
	t.Helper()
	fields := map[string]float64{
		"Min": s.Min, "Mean": s.Mean, "Max": s.Max,
		"P50": s.P50, "P95": s.P95, "P99": s.P99,
		"Stddev": s.Stddev, "CoefficientOfVar": s.CoefficientOfVar,
	}
	for f, v := range fields {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s: Summary.%s = %v", name, f, v)
		}
	}
}

// TestSummarizeEdgeCases tables the degenerate inputs the telemetry layer can
// produce: no samples yet, one sample, all-zero gauges, identical values, and
// negative values. None may yield NaN/Inf or panic.
func TestSummarizeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"empty slice", []float64{}, Summary{}},
		{"single", []float64{7}, Summary{N: 1, Min: 7, Mean: 7, Max: 7, P50: 7, P95: 7, P99: 7}},
		{"single zero", []float64{0}, Summary{N: 1}},
		{"all zero", []float64{0, 0, 0, 0}, Summary{N: 4}},
		{"identical", []float64{3, 3, 3}, Summary{N: 3, Min: 3, Mean: 3, Max: 3, P50: 3, P95: 3, P99: 3}},
		{"negative", []float64{-2, -2}, Summary{N: 2, Min: -2, Mean: -2, Max: -2, P50: -2, P95: -2, P99: -2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Summarize(c.vals)
			noNaN(t, c.name, got)
			if got != c.want {
				t.Errorf("Summarize(%v) = %+v, want %+v", c.vals, got, c.want)
			}
		})
	}
	// Zero-mean but nonzero spread: stddev is real, CV must stay defined (0).
	got := Summarize([]float64{-1, 1})
	noNaN(t, "zero mean", got)
	if got.CoefficientOfVar != 0 {
		t.Errorf("zero-mean CV = %v, want 0", got.CoefficientOfVar)
	}
	if got.Stddev != 1 {
		t.Errorf("zero-mean stddev = %v, want 1", got.Stddev)
	}
}

// TestImbalanceEdgeCases tables the degenerate per-partition gauge sets: zero
// partitions, one partition, idle pools, and skew extremes. The ratio must
// stay finite and non-negative.
func TestImbalanceEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"zero partitions", nil, 0},
		{"zero partitions slice", []float64{}, 0},
		{"single partition", []float64{42}, 1},
		{"single idle partition", []float64{0}, 0},
		{"all idle", []float64{0, 0, 0}, 0},
		{"even", []float64{5, 5, 5, 5}, 1},
		{"one hot of four", []float64{8, 0, 0, 0}, 4},
		{"mild skew", []float64{3, 1}, 1.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Imbalance(c.vals)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Imbalance(%v) = %v", c.vals, got)
			}
			if got != c.want {
				t.Errorf("Imbalance(%v) = %v, want %v", c.vals, got, c.want)
			}
		})
	}
}
