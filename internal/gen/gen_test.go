package gen

import (
	"testing"

	"lmerge/internal/temporal"
)

func smallCfg() Config {
	return Config{
		Events:        300,
		Seed:          1,
		EventDuration: 100,
		MaxGap:        10,
		Revisions:     0.5,
		RemoveProb:    0.2,
		PayloadBytes:  16,
	}
}

func TestScriptDeterminism(t *testing.T) {
	a := NewScript(smallCfg())
	b := NewScript(smallCfg())
	if len(a.Histories) != len(b.Histories) {
		t.Fatal("same seed, different history counts")
	}
	for i := range a.Histories {
		ha, hb := a.Histories[i], b.Histories[i]
		if ha.P != hb.P || ha.Vs != hb.Vs || ha.Removed != hb.Removed || len(ha.Ves) != len(hb.Ves) {
			t.Fatalf("history %d differs between identical seeds", i)
		}
	}
	c := smallCfg()
	c.Seed = 2
	if NewScript(c).Histories[0].P == a.Histories[0].P {
		t.Error("different seeds should give different payloads")
	}
}

func TestRenderReconstitutesToScriptTDB(t *testing.T) {
	sc := NewScript(smallCfg())
	want := sc.TDB()
	for seed := int64(0); seed < 4; seed++ {
		for _, split := range []bool{false, true} {
			s := sc.Render(RenderOptions{Seed: seed, Disorder: 0.3, StableFreq: 0.05, SplitInserts: split})
			got, err := temporal.Reconstitute(s)
			if err != nil {
				t.Fatalf("seed %d split %v: invalid rendering: %v", seed, split, err)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d split %v: rendering TDB differs from script TDB", seed, split)
			}
			if s.LastStable() != temporal.Infinity {
				t.Fatalf("rendering should end with stable(∞)")
			}
		}
	}
}

func TestRenderingsPhysicallyDivergent(t *testing.T) {
	sc := NewScript(smallCfg())
	a := sc.Render(RenderOptions{Seed: 1, Disorder: 0.4})
	b := sc.Render(RenderOptions{Seed: 2, Disorder: 0.4})
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("two seeds produced identical physical streams")
		}
	}
}

func TestRenderEveryPrefixValid(t *testing.T) {
	// Validity must hold at every prefix, not just the whole stream
	// (Reconstitute checks incrementally, so a full pass covers this).
	sc := NewScript(smallCfg())
	s := sc.Render(RenderOptions{Seed: 9, Disorder: 0.8, StableFreq: 0.1})
	tdb := temporal.NewTDB()
	for i, e := range s {
		if err := tdb.Apply(e); err != nil {
			t.Fatalf("element %d: %v", i, err)
		}
	}
}

func TestRenderDisorderMeasurable(t *testing.T) {
	cfg := smallCfg()
	cfg.Revisions = 0
	sc := NewScript(cfg)
	ordered := sc.Render(RenderOptions{Seed: 3, Disorder: 0})
	disordered := sc.Render(RenderOptions{Seed: 3, Disorder: 0.5})
	if frac := disorderFraction(ordered); frac > 0.01 {
		t.Errorf("0%% disorder rendering measured %.2f", frac)
	}
	if frac := disorderFraction(disordered); frac < 0.2 {
		t.Errorf("50%% disorder rendering measured only %.2f", frac)
	}
}

// disorderFraction measures the fraction of inserts whose Vs regresses.
func disorderFraction(s temporal.Stream) float64 {
	var n, out int
	last := temporal.MinTime
	for _, e := range s {
		if e.Kind != temporal.KindInsert {
			continue
		}
		n++
		if e.Vs < last {
			out++
		}
		last = temporal.MaxT(last, e.Vs)
	}
	if n == 0 {
		return 0
	}
	return float64(out) / float64(n)
}

func TestRenderOrderedKinds(t *testing.T) {
	cfg := Config{Events: 200, Seed: 5, MaxGap: 5, GroupSize: 3, PayloadBytes: 8}
	sc := NewScript(cfg)
	want := sc.TDB()

	det1 := sc.RenderOrdered(OrderedDeterministic, RenderOptions{Seed: 1})
	det2 := sc.RenderOrdered(OrderedDeterministic, RenderOptions{Seed: 2})
	shuf := sc.RenderOrdered(OrderedShuffledTies, RenderOptions{Seed: 3})

	for name, s := range map[string]temporal.Stream{"det1": det1, "det2": det2, "shuf": shuf} {
		got, err := temporal.Reconstitute(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: TDB differs", name)
		}
		// Non-decreasing Vs.
		last := temporal.MinTime
		for _, e := range s {
			if e.Kind == temporal.KindInsert {
				if e.Vs < last {
					t.Fatalf("%s: Vs regressed", name)
				}
				last = e.Vs
			}
		}
	}
	// Deterministic renderings agree on insert order regardless of seed.
	i1 := inserts(det1)
	i2 := inserts(det2)
	for i := range i1 {
		if i1[i] != i2[i] {
			t.Fatal("deterministic tie order differs across seeds")
		}
	}
}

func inserts(s temporal.Stream) []temporal.Element {
	var out []temporal.Element
	for _, e := range s {
		if e.Kind == temporal.KindInsert {
			out = append(out, e)
		}
	}
	return out
}

func TestRenderOrderedStrict(t *testing.T) {
	cfg := Config{Events: 200, Seed: 7, UniqueVs: true, MaxGap: 5, PayloadBytes: 8}
	sc := NewScript(cfg)
	s := sc.RenderOrdered(OrderedStrict, RenderOptions{Seed: 1, StableFreq: 0.1})
	last := temporal.MinTime
	for _, e := range s {
		if e.Kind == temporal.KindInsert {
			if e.Vs <= last {
				t.Fatal("strict rendering has non-increasing Vs")
			}
			last = e.Vs
		}
	}
	if got, err := temporal.Reconstitute(s); err != nil || !got.Equal(sc.TDB()) {
		t.Fatalf("strict rendering invalid or inequivalent: %v", err)
	}
}

func TestDupScriptForR4(t *testing.T) {
	cfg := smallCfg()
	cfg.DupProb = 0.3
	sc := NewScript(cfg)
	dups := 0
	seen := make(map[temporal.VsPayload]bool)
	for _, h := range sc.Histories {
		k := temporal.VsPayload{Vs: h.Vs, Payload: h.P}
		if seen[k] {
			dups++
		}
		seen[k] = true
	}
	if dups == 0 {
		t.Fatal("DupProb produced no duplicate keys")
	}
	s := sc.Render(RenderOptions{Seed: 11, Disorder: 0.3})
	got, err := temporal.Reconstitute(s)
	if err != nil {
		t.Fatalf("dup rendering invalid: %v", err)
	}
	if !got.Equal(sc.TDB()) {
		t.Fatal("dup rendering TDB differs")
	}
}

func TestElementsCount(t *testing.T) {
	sc := NewScript(smallCfg())
	s := sc.Render(RenderOptions{Seed: 1, NoFinalStable: true})
	if got := s.Inserts() + s.Adjusts(); got != sc.Elements() {
		t.Fatalf("rendered %d insert/adjust elements, script says %d", got, sc.Elements())
	}
}

func TestKeySkewConcentratesIDs(t *testing.T) {
	cfg := smallCfg()
	cfg.Events = 4000
	cfg.ValueRange = 400
	lowHalf := func(skew float64) float64 {
		c := cfg
		c.KeySkew = skew
		low := 0
		sc := NewScript(c)
		for _, h := range sc.Histories {
			if h.P.ID <= c.ValueRange/2 {
				low++
			}
		}
		return float64(low) / float64(len(sc.Histories))
	}
	uniform := lowHalf(0)
	if uniform < 0.45 || uniform > 0.55 {
		t.Fatalf("uniform draw: %.2f in low half, want ~0.5", uniform)
	}
	skewed := lowHalf(1)
	if skewed < 0.70 {
		t.Fatalf("KeySkew=1: %.2f in low half, want >= 0.70", skewed)
	}
	hot := lowHalf(3)
	if hot <= skewed {
		t.Fatalf("KeySkew=3 (%.2f) should concentrate more than KeySkew=1 (%.2f)", hot, skewed)
	}
	// Skewed IDs must stay within the configured range.
	c := cfg
	c.KeySkew = 5
	for _, h := range NewScript(c).Histories {
		if h.P.ID < 0 || h.P.ID > c.ValueRange {
			t.Fatalf("ID %d outside [0, %d]", h.P.ID, c.ValueRange)
		}
	}
}

func TestKeySkewKeepsRenderingsConsistent(t *testing.T) {
	cfg := smallCfg()
	cfg.KeySkew = 2
	sc := NewScript(cfg)
	want := sc.TDB()
	for seed := int64(0); seed < 3; seed++ {
		got := temporal.MustReconstitute(sc.Render(RenderOptions{Seed: seed, Disorder: 0.3}))
		if !got.Equal(want) {
			t.Fatalf("skewed rendering %d inconsistent with script TDB", seed)
		}
	}
}
