package gen

import (
	"testing"

	"lmerge/internal/temporal"
)

func mkStream(n int) temporal.Stream {
	s := make(temporal.Stream, n)
	for i := range s {
		s[i] = temporal.Insert(temporal.P(int64(i)), temporal.Time(i), temporal.Time(i+10))
	}
	return s
}

func TestTimedUniformRate(t *testing.T) {
	ts := Timed(mkStream(100), 50) // 50 ev/s → 2s span
	if ts[0].At != 0 {
		t.Fatal("first element should be at t=0")
	}
	if got := ts[99].At; got < 1.97 || got > 1.99 {
		t.Fatalf("last element at %v, want ~1.98", got)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].At <= ts[i-1].At {
			t.Fatal("timed stream not ascending")
		}
	}
}

func TestWithLag(t *testing.T) {
	ts := Timed(mkStream(10), 10).WithLag(5)
	if ts[0].At != 5 {
		t.Fatalf("lagged start = %v", ts[0].At)
	}
}

func TestWithBurstsMonotoneAndDelaying(t *testing.T) {
	base := Timed(mkStream(2000), 1000)
	burst := base.WithBursts(1, 0.01, 2.0, 0.5)
	delayed := 0
	for i := range burst {
		if burst[i].At < base[i].At {
			t.Fatal("bursts must never make elements earlier")
		}
		if burst[i].At > base[i].At {
			delayed++
		}
		if i > 0 && burst[i].At < burst[i-1].At {
			t.Fatal("burst stream not monotone")
		}
	}
	if delayed == 0 {
		t.Fatal("no bursts occurred at 1% probability over 2000 elements")
	}
	// Determinism.
	again := base.WithBursts(1, 0.01, 2.0, 0.5)
	for i := range burst {
		if burst[i] != again[i] {
			t.Fatal("bursts not deterministic per seed")
		}
	}
}

func TestWithCongestion(t *testing.T) {
	base := Timed(mkStream(1000), 100) // 10s nominal span
	cong := base.WithCongestion([]Window{{From: 2, To: 4}}, 5)
	// Elements before the window are untouched.
	if cong[100].At != base[100].At {
		t.Fatal("pre-window elements should be unaffected")
	}
	// Delay builds inside the window...
	peak := 0.0
	for i := range cong {
		if d := cong[i].At - base[i].At; d > peak {
			peak = d
		}
	}
	if peak < 1 {
		t.Fatalf("peak congestion delay = %v, want > 1s", peak)
	}
	// ...and the backlog drains afterwards: the stream catches up.
	last := cong[len(cong)-1].At - base[len(base)-1].At
	if last > 0.5 {
		t.Fatalf("stream did not catch up after congestion: residual %v", last)
	}
	for i := 1; i < len(cong); i++ {
		if cong[i].At < cong[i-1].At {
			t.Fatal("congested stream not monotone")
		}
	}
}

func TestMergeDelivery(t *testing.T) {
	a := Timed(mkStream(10), 10)
	b := Timed(mkStream(10), 10).WithLag(0.05)
	merged := MergeDelivery([]TimedStream{a, b})
	if len(merged) != 20 {
		t.Fatalf("merged %d items", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatal("delivery not in availability order")
		}
	}
	if merged[0].Stream != 0 || merged[1].Stream != 1 {
		t.Fatal("interleave wrong")
	}
}
