// Package gen is the synthetic workload generator, standing in for the
// commercial test stream generator the paper uses (reference [26], Sec.
// VI-B). It first draws a logical script — the ground-truth set of event
// histories — and then renders the script into any number of physically
// divergent but mutually consistent stream presentations, controlled by the
// paper's parameters: StableFreq, EventDuration, MaxGap, and Disorder.
package gen

import (
	"math"
	"math/rand"
	"strings"

	"lmerge/internal/temporal"
)

// Time granularity: application time is measured in ticks; TicksPerSecond
// maps the paper's wall-clock parameters (e.g. 20-second MaxGap, 40-second
// lifetimes) onto tick space.
const TicksPerSecond = 1000

// Config parameterises script generation. Zero values select the paper's
// defaults.
type Config struct {
	// Events is the number of event histories (paper: 200K–400K elements;
	// element count ≈ Events × (1 + mean revisions)).
	Events int
	// Seed makes the script deterministic.
	Seed int64
	// EventDuration is the mean event lifetime in ticks. The paper sets it
	// so ~10K events are active at once; with MaxGap/2 mean inter-arrival
	// that corresponds to Duration ≈ 10000·MaxGap/2.
	EventDuration temporal.Time
	// MaxGap is the maximum application-time gap between consecutive event
	// start times (paper default 20 s).
	MaxGap temporal.Time
	// Revisions is the probability that a history revises its end time at
	// least once (each further revision is half as likely, capped by
	// MaxRevisions).
	Revisions float64
	// MaxRevisions caps the adjust chain per history (default 3).
	MaxRevisions int
	// RemoveProb is the probability that a revised history is ultimately
	// cancelled (its final adjust removes the event).
	RemoveProb float64
	// PayloadBytes is the size of the payload string (paper: 1000).
	PayloadBytes int
	// ValueRange bounds the integer payload field (paper: [0, 400]).
	ValueRange int64
	// DupProb is the probability that a history duplicates the (Vs, Payload)
	// of its predecessor with an independent lifetime — exercising the R4
	// multiset case. Leave 0 for R0–R3 workloads.
	DupProb float64
	// KeySkew biases the integer payload field towards low values with a
	// power-law draw, producing Zipf-ish hot keys: 0 keeps the uniform draw,
	// and larger values concentrate more of the workload on fewer IDs
	// (KeySkew=1 sends ~75% of events to the lowest half of the range,
	// KeySkew=3 ~94%). Keyed partition benchmarks use it to exercise
	// imbalance rather than uniform hashing.
	KeySkew float64
	// UniqueVs forces strictly increasing Vs values (the R0 property).
	// Otherwise histories may share start times in groups.
	UniqueVs bool
	// GroupSize is the mean number of histories sharing one Vs when UniqueVs
	// is false (default 1, i.e. sharing only by chance).
	GroupSize int
}

func (c Config) withDefaults() Config {
	if c.Events == 0 {
		c.Events = 1000
	}
	if c.EventDuration == 0 {
		c.EventDuration = 10 * TicksPerSecond
	}
	if c.MaxGap == 0 {
		c.MaxGap = 20 * TicksPerSecond
	}
	if c.MaxRevisions == 0 {
		c.MaxRevisions = 3
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 1000
	}
	if c.ValueRange == 0 {
		c.ValueRange = 400
	}
	if c.GroupSize == 0 {
		c.GroupSize = 1
	}
	return c
}

// History is one event's ground truth: its payload, start time, and the
// chain of end times it passes through. If Removed, the final adjust cancels
// the event entirely.
type History struct {
	P       temporal.Payload
	Vs      temporal.Time
	Ves     []temporal.Time // successive end times; Ves[len-1] is final
	Removed bool
}

// Final returns the history's final end time and whether the event survives.
func (h History) Final() (temporal.Time, bool) {
	if h.Removed {
		return 0, false
	}
	return h.Ves[len(h.Ves)-1], true
}

// Script is a generated logical workload: the ground truth every rendering
// reconstitutes to.
type Script struct {
	Cfg       Config
	Histories []History
}

// NewScript draws a deterministic script from cfg.
func NewScript(cfg Config) *Script {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &Script{Cfg: cfg, Histories: make([]History, 0, cfg.Events)}
	vs := temporal.Time(0)
	var groupLeft int
	for i := 0; i < cfg.Events; i++ {
		if cfg.UniqueVs {
			vs += 1 + temporal.Time(rng.Int63n(int64(cfg.MaxGap)))
		} else if groupLeft > 0 {
			groupLeft--
		} else {
			vs += temporal.Time(rng.Int63n(int64(cfg.MaxGap) + 1))
			if cfg.GroupSize > 1 {
				groupLeft = rng.Intn(2 * cfg.GroupSize)
			}
		}
		h := History{
			P:  payload(rng, cfg),
			Vs: vs,
		}
		if cfg.DupProb > 0 && i > 0 && rng.Float64() < cfg.DupProb {
			// Duplicate the previous history's key with its own lifetime.
			prev := sc.Histories[len(sc.Histories)-1]
			h.P, h.Vs = prev.P, prev.Vs
		}
		dur := 1 + temporal.Time(rng.Int63n(int64(2*cfg.EventDuration)))
		h.Ves = []temporal.Time{h.Vs + dur}
		if cfg.Revisions > 0 {
			p := cfg.Revisions
			for r := 0; r < cfg.MaxRevisions && rng.Float64() < p; r++ {
				// Revisions move the end time up or down, never below Vs+1.
				delta := temporal.Time(rng.Int63n(int64(cfg.EventDuration))) - cfg.EventDuration/2
				ve := h.Ves[len(h.Ves)-1] + delta
				if ve <= h.Vs {
					ve = h.Vs + 1
				}
				h.Ves = append(h.Ves, ve)
				p /= 2
			}
			if len(h.Ves) > 1 && rng.Float64() < cfg.RemoveProb {
				h.Removed = true
			}
		}
		sc.Histories = append(sc.Histories, h)
	}
	return sc
}

// payload draws the two-field payload of Sec. VI-B: an integer in
// [0, ValueRange] and a PayloadBytes-long string. Under the R2/R3 key
// assumption the payload must be unique per Vs; the random string provides
// that uniqueness (the integer field models application data such as the
// UDF selectivity attribute of Fig. 10).
func payload(rng *rand.Rand, cfg Config) temporal.Payload {
	var b strings.Builder
	b.Grow(cfg.PayloadBytes)
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	for b.Len() < cfg.PayloadBytes {
		b.WriteByte(letters[rng.Intn(len(letters))])
	}

	return temporal.Payload{
		ID:   drawID(rng, cfg),
		Data: b.String(),
	}
}

// drawID draws the integer field: uniform over [0, ValueRange] by default,
// or power-law-skewed towards low IDs when KeySkew > 0. The draw maps a
// uniform u to range·u^(1+skew), so the density near zero grows with skew —
// a cheap stand-in for a Zipf hot-key distribution that stays deterministic
// and O(1) per draw.
func drawID(rng *rand.Rand, cfg Config) int64 {
	if cfg.KeySkew <= 0 {
		return rng.Int63n(cfg.ValueRange + 1)
	}
	id := int64(float64(cfg.ValueRange+1) * math.Pow(rng.Float64(), 1+cfg.KeySkew))
	if id > cfg.ValueRange {
		id = cfg.ValueRange
	}
	return id
}

// TDB returns the script's final logical TDB.
func (sc *Script) TDB() *temporal.TDB {
	t := temporal.NewTDB()
	for _, h := range sc.Histories {
		if ve, alive := h.Final(); alive {
			mustApply(t, temporal.Insert(h.P, h.Vs, ve))
		}
	}
	return t
}

func mustApply(t *temporal.TDB, e temporal.Element) {
	if err := t.Apply(e); err != nil {
		panic(err)
	}
}

// Elements returns the total element count of a faithful rendering
// (inserts plus adjusts, excluding stables).
func (sc *Script) Elements() int {
	n := 0
	for _, h := range sc.Histories {
		n += len(h.Ves)
		if h.Removed {
			n++
		}
	}
	return n
}
