package gen

import (
	"math/rand"
	"sort"

	"lmerge/internal/temporal"
)

// TimedElement pairs a stream element with its availability instant, in
// virtual seconds of system time. The experiments of Figs. 5, 8, and 9 are
// about delivery timing — lag, burstiness, congestion — which is orthogonal
// to stream content; these wrappers perturb timing only.
type TimedElement struct {
	El temporal.Element
	At float64
}

// TimedStream is a stream with per-element availability times, ascending.
type TimedStream []TimedElement

// Timed spaces the stream's elements uniformly at rate elements/second
// starting at t=0 (the paper presents streams at e.g. 5000 elements/sec).
func Timed(s temporal.Stream, rate float64) TimedStream {
	out := make(TimedStream, len(s))
	dt := 1.0 / rate
	for i, e := range s {
		out[i] = TimedElement{El: e, At: float64(i) * dt}
	}
	return out
}

// WithLag delays every element by lag seconds (the Fig. 5 treatment:
// "delaying event generation by a fixed amount of time").
func (ts TimedStream) WithLag(lag float64) TimedStream {
	out := make(TimedStream, len(ts))
	for i, te := range ts {
		out[i] = TimedElement{El: te.El, At: te.At + lag}
	}
	return out
}

// drainFactor is how much faster than the nominal rate a backlog drains
// once a stall or congestion window ends; the fast drain produces the
// "compensating spikes in throughput" the paper describes.
const drainFactor = 8.0

// WithBursts models the Fig. 8 burstiness with a server-queue: with
// probability prob per element, the delivery path stalls for a duration
// drawn from a truncated normal N(mean, std); queued elements then drain at
// drainFactor× the nominal rate — temporary silence followed by a catch-up
// spike, exactly the "temporary event build-up in queues" of Sec. VI-E-1.
func (ts TimedStream) WithBursts(seed int64, prob, mean, std float64) TimedStream {
	rng := rand.New(rand.NewSource(seed))
	out := make(TimedStream, len(ts))
	nominalGap := 0.0
	if len(ts) > 1 {
		nominalGap = (ts[len(ts)-1].At - ts[0].At) / float64(len(ts)-1)
	}
	drainGap := nominalGap / drainFactor
	busyUntil := 0.0
	for i, te := range ts {
		at := te.At
		if at < busyUntil {
			at = busyUntil // queued behind the stall, draining fast
		}
		if rng.Float64() < prob {
			d := rng.NormFloat64()*std + mean
			if d < 0 {
				d = 0
			}
			busyUntil = at + d
			at = busyUntil
		}
		out[i] = TimedElement{El: te.El, At: at}
		busyUntil = at + drainGap
	}
	return out
}

// Window is a half-open interval of virtual seconds.
type Window struct{ From, To float64 }

// WithCongestion models the Fig. 9 network congestion with the same
// server-queue: while the nominal delivery time falls inside a congested
// window, per-element service stretches by factor; once the window passes,
// the backlog drains at drainFactor× nominal — "temporary low throughput,
// followed by a spike in throughput when conditions return back to normal".
func (ts TimedStream) WithCongestion(windows []Window, factor float64) TimedStream {
	out := make(TimedStream, len(ts))
	nominalGap := 0.0
	if len(ts) > 1 {
		nominalGap = (ts[len(ts)-1].At - ts[0].At) / float64(len(ts)-1)
	}
	drainGap := nominalGap / drainFactor
	congestedGap := nominalGap * factor
	busyUntil := 0.0
	for i, te := range ts {
		at := te.At
		if at < busyUntil {
			at = busyUntil
		}
		congested := false
		for _, w := range windows {
			if at >= w.From && at < w.To {
				congested = true
				break
			}
		}
		out[i] = TimedElement{El: te.El, At: at}
		if congested {
			busyUntil = at + congestedGap
		} else {
			busyUntil = at + drainGap
		}
	}
	return out
}

// MergeDelivery interleaves several timed streams into global availability
// order, tagging each element with its stream index. Ties preserve stream
// order, making replays deterministic.
func MergeDelivery(streams []TimedStream) []DeliveryItem {
	total := 0
	for _, ts := range streams {
		total += len(ts)
	}
	out := make([]DeliveryItem, 0, total)
	for s, ts := range streams {
		for _, te := range ts {
			out = append(out, DeliveryItem{Stream: s, El: te.El, At: te.At})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// DeliveryItem is one element of a merged delivery schedule.
type DeliveryItem struct {
	Stream int
	El     temporal.Element
	At     float64
}
