package gen

import (
	"math/rand"
	"sort"

	"lmerge/internal/temporal"
)

// RenderOptions controls one physical presentation of a script. Renderings
// with different options (or seeds) are physically divergent — different
// order, different stable placement, different insert/adjust splits — yet
// reconstitute to the same TDB, making them valid LMerge inputs.
type RenderOptions struct {
	// Seed drives the rendering's randomness (disorder pattern, stable
	// placement). Different seeds give physically different streams.
	Seed int64
	// Disorder is the fraction of elements delivered late relative to
	// timestamp order (paper default 20%). Implemented, as in the paper, by
	// holding elements back: a disordered element is delayed by up to
	// MaxLateness while the stream continues past it.
	Disorder float64
	// MaxLateness bounds how far a disordered element is displaced, in
	// ticks (default 3×MaxGap).
	MaxLateness temporal.Time
	// StableFreq is the probability that a stable element is emitted after
	// any given element (paper default 1%). At least one insert separates
	// consecutive stables by construction.
	StableFreq float64
	// StableEvery, when positive, additionally forces a stable element after
	// every StableEvery-th element (at the largest timestamp the remaining
	// suffix allows). Deterministic mid-stream stable points let differential
	// drivers compare intermediate TDB surfaces at known cut points instead of
	// relying on StableFreq's coin flips.
	StableEvery int
	// SplitInserts renders each event as insert(p, Vs, ∞) followed by an
	// adjust to its first end time, as sources that do not know event ends a
	// priori do (the process-monitoring pattern of Sec. I).
	SplitInserts bool
	// NoFinalStable suppresses the closing stable(∞) that normally flushes
	// the stream.
	NoFinalStable bool
	// DropFrac omits this fraction of histories from the rendering entirely
	// — a faulty stream with missing elements (paper Sec. V-C). Renderings
	// with drops are no longer strictly equivalent to the script, only
	// consistent with it up to the dropped events.
	DropFrac float64
}

func (o RenderOptions) withDefaults(cfg Config) RenderOptions {
	if o.MaxLateness == 0 {
		o.MaxLateness = 3 * cfg.MaxGap
	}
	if o.StableFreq == 0 {
		o.StableFreq = 0.01
	}
	return o
}

// Render produces one physical presentation of the script.
func (sc *Script) Render(o RenderOptions) temporal.Stream {
	o = o.withDefaults(sc.Cfg)
	rng := rand.New(rand.NewSource(o.Seed))

	// Lay out each history's canonical elements across its lifetime: the
	// insert fires at Vs, revisions are spread towards the first end time.
	type slot struct {
		history int
		at      temporal.Time
	}
	var slots []slot
	dropped := make(map[int]bool)
	if o.DropFrac > 0 {
		for hi := range sc.Histories {
			if rng.Float64() < o.DropFrac {
				dropped[hi] = true
			}
		}
	}
	for hi := range sc.Histories {
		if dropped[hi] {
			continue
		}
		h := &sc.Histories[hi]
		n := len(historyElements(*h, o.SplitInserts))
		span := h.Ves[0] - h.Vs
		for i := 0; i < n; i++ {
			at := h.Vs
			if n > 1 && i > 0 {
				at += span * temporal.Time(i) / temporal.Time(n-1)
			}
			slots = append(slots, slot{history: hi, at: at})
		}
	}

	// Disorder: displace a fraction of elements to a later delivery time.
	for i := range slots {
		if o.Disorder > 0 && rng.Float64() < o.Disorder {
			slots[i].at += 1 + temporal.Time(rng.Int63n(int64(o.MaxLateness)))
		}
	}
	sort.SliceStable(slots, func(i, j int) bool { return slots[i].at < slots[j].at })

	// Restore per-history element order (an adjust chain must follow its
	// insert): within the slots each history occupies, reinstate canonical
	// order while keeping the slot positions.
	perHistory := make(map[int][]int)
	for i, s := range slots {
		perHistory[s.history] = append(perHistory[s.history], i)
	}
	ordered := make([]temporal.Element, len(slots))
	for hi, idxs := range perHistory {
		// idxs is ascending; refill those positions with the history's
		// canonical sequence.
		canon := historyElements(sc.Histories[hi], o.SplitInserts)
		for j, pos := range idxs {
			ordered[pos] = canon[j]
		}
	}

	// Place stable elements. A stable(t) at position i is valid iff every
	// later element has all its time references >= t; the suffix minimum of
	// element time floors gives the largest valid t.
	suffixMin := make([]temporal.Time, len(ordered)+1)
	suffixMin[len(ordered)] = temporal.Infinity
	for i := len(ordered) - 1; i >= 0; i-- {
		suffixMin[i] = temporal.MinT(suffixMin[i+1], floor(ordered[i]))
	}
	out := make(temporal.Stream, 0, len(ordered)+len(ordered)/64+1)
	lastStable := temporal.MinTime
	sinceInsert := false // ensure an insert separates consecutive stables
	for i, el := range ordered {
		out = append(out, el)
		if el.Kind == temporal.KindInsert {
			sinceInsert = true
		}
		forced := o.StableEvery > 0 && (i+1)%o.StableEvery == 0
		if (forced || sinceInsert && rng.Float64() < o.StableFreq) {
			if t := suffixMin[i+1]; t > lastStable && !t.IsInf() {
				out = append(out, temporal.Stable(t))
				lastStable = t
				sinceInsert = false
			}
		}
	}
	if !o.NoFinalStable {
		out = append(out, temporal.Stable(temporal.Infinity))
	}
	return out
}

// historyElements returns the canonical element sequence for one history.
func historyElements(h History, split bool) []temporal.Element {
	var els []temporal.Element
	if split {
		els = append(els, temporal.Insert(h.P, h.Vs, temporal.Infinity))
		els = append(els, temporal.Adjust(h.P, h.Vs, temporal.Infinity, h.Ves[0]))
	} else {
		els = append(els, temporal.Insert(h.P, h.Vs, h.Ves[0]))
	}
	for i := 1; i < len(h.Ves); i++ {
		els = append(els, temporal.Adjust(h.P, h.Vs, h.Ves[i-1], h.Ves[i]))
	}
	if h.Removed {
		last := h.Ves[len(h.Ves)-1]
		els = append(els, temporal.Adjust(h.P, h.Vs, last, h.Vs))
	}
	return els
}

// floor returns the smallest time reference of an element: a later stable(t)
// is valid only if t <= floor for every remaining element.
func floor(e temporal.Element) temporal.Time {
	switch e.Kind {
	case temporal.KindInsert:
		return e.Vs
	case temporal.KindAdjust:
		return temporal.MinT(e.VOld, e.Ve)
	default:
		return temporal.Infinity
	}
}

// RenderOrdered produces the in-order, insert-only presentations of cases
// R0–R2. The script must have been generated without revisions or
// removals. kind selects the tie-order treatment:
//
//	OrderedStrict         every element strictly increasing Vs (R0)
//	OrderedDeterministic  same-Vs elements in payload order (R1)
//	OrderedShuffledTies   same-Vs elements shuffled per rendering (R2)
func (sc *Script) RenderOrdered(kind OrderedKind, o RenderOptions) temporal.Stream {
	o = o.withDefaults(sc.Cfg)
	rng := rand.New(rand.NewSource(o.Seed))
	// An ordered, insert-only presentation carries final lifetimes only:
	// revisions are collapsed and cancelled events never appear.
	hs := make([]History, 0, len(sc.Histories))
	for _, h := range sc.Histories {
		ve, alive := h.Final()
		if !alive {
			continue
		}
		hs = append(hs, History{P: h.P, Vs: h.Vs, Ves: []temporal.Time{ve}})
	}
	sort.SliceStable(hs, func(i, j int) bool {
		if hs[i].Vs != hs[j].Vs {
			return hs[i].Vs < hs[j].Vs
		}
		return hs[i].P.Compare(hs[j].P) < 0
	})
	if kind == OrderedShuffledTies {
		for lo := 0; lo < len(hs); {
			hi := lo + 1
			for hi < len(hs) && hs[hi].Vs == hs[lo].Vs {
				hi++
			}
			rng.Shuffle(hi-lo, func(i, j int) { hs[lo+i], hs[lo+j] = hs[lo+j], hs[lo+i] })
			lo = hi
		}
	}
	out := make(temporal.Stream, 0, len(hs)+len(hs)/64+1)
	lastStable := temporal.MinTime
	sinceInsert := false
	for i, h := range hs {
		out = append(out, temporal.Insert(h.P, h.Vs, h.Ves[0]))
		sinceInsert = true
		forced := o.StableEvery > 0 && (i+1)%o.StableEvery == 0
		if (forced || sinceInsert && rng.Float64() < o.StableFreq) && i+1 < len(hs) {
			if t := hs[i+1].Vs; t > lastStable {
				out = append(out, temporal.Stable(t))
				lastStable = t
				sinceInsert = false
			}
		}
	}
	if !o.NoFinalStable {
		out = append(out, temporal.Stable(temporal.Infinity))
	}
	return out
}

// OrderedKind selects the tie handling of RenderOrdered.
type OrderedKind uint8

// The ordered rendering kinds (see RenderOrdered).
const (
	OrderedStrict OrderedKind = iota
	OrderedDeterministic
	OrderedShuffledTies
)
