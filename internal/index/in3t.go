package index

import "lmerge/internal/temporal"

// In3t is the three-tier index of paper Figure 1 (right), used by Algorithm
// R4. It generalises In2t for the multiset case: since many elements can
// share (Vs, Payload) with different Ve values (and true duplicates), each
// second-tier entry holds a Ve-ordered multiset of occurrence counts.
type In3t struct {
	tree *Tree[temporal.VsPayload, *Node3]
}

// n3Inline is the number of per-stream multisets a node stores inline
// before spilling to a map. Paper runs use 2–3 inputs plus the output
// entry, so the inline array covers the common case with zero allocation.
const n3Inline = 4

// Node3 is one top-tier node of an In3t. Stream entries live in a small
// array sorted by stream id; once a node accumulates more than n3Inline
// streams they spill to a map (rare and one-way).
type Node3 struct {
	event temporal.Event
	n     int
	small [n3Inline]streamVes
	spill map[int]*VeSet
}

// streamVes is one (stream id, Ve multiset) entry of a Node3.
type streamVes struct {
	s  int
	vs VeSet
}

// veSetInline is the number of distinct Ve values a VeSet stores inline
// before spilling to a tree. Even disordered multiset workloads rarely hold
// more than a few in-flight end times per (Vs, Payload, stream).
const veSetInline = 4

// VeSet is a third-tier index: a multiset of Ve values for one stream.
// Distinct values live in a small Ve-sorted array of counts; past
// veSetInline they spill to a Ve-ordered tree (one-way). total is the
// multiset's cardinality.
type VeSet struct {
	n     int
	total int
	small [veSetInline]VeCount
	spill *Tree[temporal.Time, int]
}

// VeCount is one (Ve, multiplicity) pair of a VeSet.
type VeCount struct {
	Ve    temporal.Time
	Count int
}

func compareTime(a, b temporal.Time) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// inc records one more occurrence of ve.
func (v *VeSet) inc(ve temporal.Time) {
	v.total++
	if v.spill != nil {
		c, _ := v.spill.Get(ve)
		v.spill.Put(ve, c+1)
		return
	}
	i := 0
	for ; i < v.n; i++ {
		if v.small[i].Ve == ve {
			v.small[i].Count++
			return
		}
		if v.small[i].Ve > ve {
			break
		}
	}
	if v.n == veSetInline {
		v.spill = NewTree[temporal.Time, int](compareTime)
		for _, e := range v.small[:v.n] {
			v.spill.Put(e.Ve, e.Count)
		}
		v.spill.Put(ve, 1)
		return
	}
	copy(v.small[i+1:v.n+1], v.small[i:v.n])
	v.small[i] = VeCount{Ve: ve, Count: 1}
	v.n++
}

// dec removes one occurrence of ve, reporting whether one existed.
func (v *VeSet) dec(ve temporal.Time) bool {
	if v.spill != nil {
		c, ok := v.spill.Get(ve)
		if !ok || c == 0 {
			return false
		}
		if c == 1 {
			v.spill.Delete(ve)
		} else {
			v.spill.Put(ve, c-1)
		}
		v.total--
		return true
	}
	for i := 0; i < v.n; i++ {
		if v.small[i].Ve == ve {
			v.small[i].Count--
			if v.small[i].Count == 0 {
				copy(v.small[i:v.n-1], v.small[i+1:v.n])
				v.n--
			}
			v.total--
			return true
		}
		if v.small[i].Ve > ve {
			return false
		}
	}
	return false
}

// countOf returns the multiplicity of ve.
func (v *VeSet) countOf(ve temporal.Time) int {
	if v.spill != nil {
		c, _ := v.spill.Get(ve)
		return c
	}
	for i := 0; i < v.n; i++ {
		if v.small[i].Ve == ve {
			return v.small[i].Count
		}
		if v.small[i].Ve > ve {
			break
		}
	}
	return 0
}

// maxVe returns the largest Ve; ok is false for an empty multiset.
func (v *VeSet) maxVe() (temporal.Time, bool) {
	if v.total == 0 {
		return 0, false
	}
	if v.spill != nil {
		ve, _, ok := v.spill.Max()
		return ve, ok
	}
	return v.small[v.n-1].Ve, true
}

// ascend visits the (Ve, count) pairs in Ve order.
func (v *VeSet) ascend(fn func(ve temporal.Time, count int) bool) {
	if v.spill != nil {
		v.spill.Ascend(fn)
		return
	}
	for i := 0; i < v.n; i++ {
		if !fn(v.small[i].Ve, v.small[i].Count) {
			return
		}
	}
}

// distinct returns the number of distinct Ve values.
func (v *VeSet) distinct() int {
	if v.spill != nil {
		return v.spill.Len()
	}
	return v.n
}

// NewIn3t returns an empty index.
func NewIn3t() *In3t {
	return &In3t{tree: NewTree[temporal.VsPayload, *Node3](temporal.VsPayload.Compare)}
}

// Len returns the number of live (Vs, Payload) nodes.
func (x *In3t) Len() int { return x.tree.Len() }

// SameVsPayload returns the node for e's (Vs, Payload), if present.
func (x *In3t) SameVsPayload(e temporal.Element) (*Node3, bool) {
	return x.Get(e.Key())
}

// Get returns the node for key k, if present.
func (x *In3t) Get(k temporal.VsPayload) (*Node3, bool) {
	return x.tree.Get(k)
}

// AddNode creates a node for e's (Vs, Payload).
func (x *In3t) AddNode(e temporal.Element) *Node3 {
	n := &Node3{event: temporal.Event{Payload: e.Payload, Vs: e.Vs, Ve: e.Ve}}
	x.tree.Put(e.Key(), n)
	return n
}

// DeleteNode removes the node for key k.
func (x *In3t) DeleteNode(k temporal.VsPayload) bool {
	return x.tree.Delete(k)
}

// PutNode installs an existing node under its own key, transplanting it from
// another In3t with every per-stream multiset intact (the state-handoff path
// of partition rebalancing). The caller must ensure the key is absent.
func (x *In3t) PutNode(n *Node3) {
	x.tree.Put(n.Key(), n)
}

// FindHalfFrozen returns, in key order, a snapshot of nodes with Vs < t.
func (x *In3t) FindHalfFrozen(t temporal.Time) []*Node3 {
	return x.FindHalfFrozenInto(t, nil)
}

// FindHalfFrozenInto is FindHalfFrozen appending into buf (reset to length
// zero first), letting stable sweeps reuse one scratch slice instead of
// allocating per stable.
func (x *In3t) FindHalfFrozenInto(t temporal.Time, buf []*Node3) []*Node3 {
	buf = buf[:0]
	x.tree.Ascend(func(k temporal.VsPayload, n *Node3) bool {
		if k.Vs >= t {
			return false
		}
		buf = append(buf, n)
		return true
	})
	return buf
}

// Ascend visits all nodes in key order.
func (x *In3t) Ascend(fn func(*Node3) bool) {
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node3) bool { return fn(n) })
}

// SizeBytes approximates memory: one shared payload per node plus, per
// stream entry, 16 bytes for each distinct Ve.
func (x *In3t) SizeBytes() int {
	total := 0
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node3) bool {
		total += Node3Bytes(n)
		return true
	})
	return total
}

// Event returns the node's shared representative event.
func (n *Node3) Event() temporal.Event { return n.event }

// Key returns the node's (Vs, Payload).
func (n *Node3) Key() temporal.VsPayload { return n.event.Key() }

// set returns stream s's VeSet, creating it if asked. The pointer is
// invalidated by the next stream insertion or deletion on this node, so
// callers must not retain it.
func (n *Node3) set(s int, create bool) *VeSet {
	if n.spill != nil {
		vs, ok := n.spill[s]
		if !ok && create {
			vs = &VeSet{}
			n.spill[s] = vs
		}
		return vs
	}
	i := 0
	for ; i < n.n; i++ {
		if n.small[i].s == s {
			return &n.small[i].vs
		}
		if n.small[i].s > s {
			break
		}
	}
	if !create {
		return nil
	}
	if n.n == n3Inline {
		n.spill = make(map[int]*VeSet, n3Inline+1)
		for j := range n.small[:n.n] {
			vs := n.small[j].vs
			n.spill[n.small[j].s] = &vs
		}
		vs := &VeSet{}
		n.spill[s] = vs
		return vs
	}
	copy(n.small[i+1:n.n+1], n.small[i:n.n])
	n.small[i] = streamVes{s: s}
	n.n++
	return &n.small[i].vs
}

// eachStream visits every (stream, VeSet) entry, in stream order for the
// inline representation.
func (n *Node3) eachStream(fn func(s int, vs *VeSet) bool) {
	if n.spill != nil {
		for s, vs := range n.spill {
			if !fn(s, vs) {
				return
			}
		}
		return
	}
	for i := 0; i < n.n; i++ {
		if !fn(n.small[i].s, &n.small[i].vs) {
			return
		}
	}
}

// IncrementCount records one more occurrence of ve on stream s.
func (n *Node3) IncrementCount(s int, ve temporal.Time) {
	n.set(s, true).inc(ve)
}

// DecrementCount removes one occurrence of ve on stream s, reporting whether
// an occurrence existed.
func (n *Node3) DecrementCount(s int, ve temporal.Time) bool {
	vs := n.set(s, false)
	return vs != nil && vs.dec(ve)
}

// Count returns the total number of events for this node on stream s
// (GetCount in Algorithm R4).
func (n *Node3) Count(s int) int {
	if vs := n.set(s, false); vs != nil {
		return vs.total
	}
	return 0
}

// CountOf returns the number of occurrences of a specific ve on stream s.
func (n *Node3) CountOf(s int, ve temporal.Time) int {
	if vs := n.set(s, false); vs != nil {
		return vs.countOf(ve)
	}
	return 0
}

// MaxVe returns the largest Ve on stream s (GetMaxVe in Algorithm R4); ok is
// false if the stream holds no events for this node.
func (n *Node3) MaxVe(s int) (temporal.Time, bool) {
	vs := n.set(s, false)
	if vs == nil {
		return 0, false
	}
	return vs.maxVe()
}

// AscendVe visits stream s's (Ve, count) pairs in Ve order (FindAllVe in
// Algorithm R4).
func (n *Node3) AscendVe(s int, fn func(ve temporal.Time, count int) bool) {
	if vs := n.set(s, false); vs != nil {
		vs.ascend(fn)
	}
}

// VeCounts returns a snapshot of stream s's Ve multiset in ascending order.
func (n *Node3) VeCounts(s int) []VeCount {
	var out []VeCount
	n.AscendVe(s, func(ve temporal.Time, c int) bool {
		out = append(out, VeCount{Ve: ve, Count: c})
		return true
	})
	return out
}

// DeleteStream drops stream s's VeSet, used when an input detaches.
func (n *Node3) DeleteStream(s int) {
	if n.spill != nil {
		delete(n.spill, s)
		return
	}
	for i := 0; i < n.n; i++ {
		if n.small[i].s == s {
			copy(n.small[i:n.n-1], n.small[i+1:n.n])
			n.small[n.n-1] = streamVes{}
			n.n--
			return
		}
		if n.small[i].s > s {
			return
		}
	}
}

// Vouchers returns the number of input streams (OutputStream excluded) still
// holding at least one occurrence for this node.
func (n *Node3) Vouchers() int {
	v := 0
	n.eachStream(func(s int, vs *VeSet) bool {
		if s != OutputStream && vs.total > 0 {
			v++
		}
		return true
	})
	return v
}
