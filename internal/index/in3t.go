package index

import "lmerge/internal/temporal"

// In3t is the three-tier index of paper Figure 1 (right), used by Algorithm
// R4. It generalises In2t for the multiset case: since many elements can
// share (Vs, Payload) with different Ve values (and true duplicates), each
// second-tier hash entry holds a small red-black tree on Ve whose values are
// occurrence counts.
type In3t struct {
	tree *Tree[temporal.VsPayload, *Node3]
}

// Node3 is one top-tier node of an In3t.
type Node3 struct {
	event temporal.Event
	ve    map[int]*VeSet
}

// VeSet is a third-tier index: a multiset of Ve values for one stream,
// stored as a Ve-ordered tree of counts plus the total.
type VeSet struct {
	tree  *Tree[temporal.Time, int]
	total int
}

// NewIn3t returns an empty index.
func NewIn3t() *In3t {
	return &In3t{tree: NewTree[temporal.VsPayload, *Node3](temporal.VsPayload.Compare)}
}

// Len returns the number of live (Vs, Payload) nodes.
func (x *In3t) Len() int { return x.tree.Len() }

// SameVsPayload returns the node for e's (Vs, Payload), if present.
func (x *In3t) SameVsPayload(e temporal.Element) (*Node3, bool) {
	return x.Get(e.Key())
}

// Get returns the node for key k, if present.
func (x *In3t) Get(k temporal.VsPayload) (*Node3, bool) {
	return x.tree.Get(k)
}

// AddNode creates a node for e's (Vs, Payload).
func (x *In3t) AddNode(e temporal.Element) *Node3 {
	n := &Node3{
		event: temporal.Event{Payload: e.Payload, Vs: e.Vs, Ve: e.Ve},
		ve:    make(map[int]*VeSet, 4),
	}
	x.tree.Put(e.Key(), n)
	return n
}

// DeleteNode removes the node for key k.
func (x *In3t) DeleteNode(k temporal.VsPayload) bool {
	return x.tree.Delete(k)
}

// FindHalfFrozen returns, in key order, a snapshot of nodes with Vs < t.
func (x *In3t) FindHalfFrozen(t temporal.Time) []*Node3 {
	var out []*Node3
	x.tree.Ascend(func(k temporal.VsPayload, n *Node3) bool {
		if k.Vs >= t {
			return false
		}
		out = append(out, n)
		return true
	})
	return out
}

// Ascend visits all nodes in key order.
func (x *In3t) Ascend(fn func(*Node3) bool) {
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node3) bool { return fn(n) })
}

// SizeBytes approximates memory: one shared payload per node plus, per
// stream entry, tree overhead for each distinct Ve.
func (x *In3t) SizeBytes() int {
	total := 0
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node3) bool {
		total += nodeOverhead + n.event.Payload.SizeBytes()
		for _, vs := range n.ve {
			total += 16 + nodeOverhead/2*vs.tree.Len()
		}
		return true
	})
	return total
}

// Event returns the node's shared representative event.
func (n *Node3) Event() temporal.Event { return n.event }

// Key returns the node's (Vs, Payload).
func (n *Node3) Key() temporal.VsPayload { return n.event.Key() }

// set returns stream s's VeSet, creating it if asked.
func (n *Node3) set(s int, create bool) *VeSet {
	vs, ok := n.ve[s]
	if !ok && create {
		vs = &VeSet{tree: NewTree[temporal.Time, int](func(a, b temporal.Time) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		})}
		n.ve[s] = vs
	}
	return vs
}

// IncrementCount records one more occurrence of ve on stream s.
func (n *Node3) IncrementCount(s int, ve temporal.Time) {
	vs := n.set(s, true)
	c, _ := vs.tree.Get(ve)
	vs.tree.Put(ve, c+1)
	vs.total++
}

// DecrementCount removes one occurrence of ve on stream s, reporting whether
// an occurrence existed.
func (n *Node3) DecrementCount(s int, ve temporal.Time) bool {
	vs := n.set(s, false)
	if vs == nil {
		return false
	}
	c, ok := vs.tree.Get(ve)
	if !ok || c == 0 {
		return false
	}
	if c == 1 {
		vs.tree.Delete(ve)
	} else {
		vs.tree.Put(ve, c-1)
	}
	vs.total--
	return true
}

// Count returns the total number of events for this node on stream s
// (GetCount in Algorithm R4).
func (n *Node3) Count(s int) int {
	if vs := n.set(s, false); vs != nil {
		return vs.total
	}
	return 0
}

// CountOf returns the number of occurrences of a specific ve on stream s.
func (n *Node3) CountOf(s int, ve temporal.Time) int {
	if vs := n.set(s, false); vs != nil {
		c, _ := vs.tree.Get(ve)
		return c
	}
	return 0
}

// MaxVe returns the largest Ve on stream s (GetMaxVe in Algorithm R4); ok is
// false if the stream holds no events for this node.
func (n *Node3) MaxVe(s int) (temporal.Time, bool) {
	vs := n.set(s, false)
	if vs == nil || vs.total == 0 {
		return 0, false
	}
	ve, _, ok := vs.tree.Max()
	return ve, ok
}

// AscendVe visits stream s's (Ve, count) pairs in Ve order (FindAllVe in
// Algorithm R4).
func (n *Node3) AscendVe(s int, fn func(ve temporal.Time, count int) bool) {
	if vs := n.set(s, false); vs != nil {
		vs.tree.Ascend(fn)
	}
}

// VeCounts returns a snapshot of stream s's Ve multiset in ascending order.
func (n *Node3) VeCounts(s int) []VeCount {
	var out []VeCount
	n.AscendVe(s, func(ve temporal.Time, c int) bool {
		out = append(out, VeCount{Ve: ve, Count: c})
		return true
	})
	return out
}

// VeCount is one (Ve, multiplicity) pair of a VeSet snapshot.
type VeCount struct {
	Ve    temporal.Time
	Count int
}

// DeleteStream drops stream s's VeSet, used when an input detaches.
func (n *Node3) DeleteStream(s int) { delete(n.ve, s) }
