package index

import "lmerge/internal/temporal"

// OutputStream is the distinguished hash-table key the paper writes as ∞: it
// tracks what has been reflected on the LMerge output for a node.
const OutputStream = -1

// In2t is the two-tier index of paper Figure 1 (left), used by Algorithm R3.
// The top tier is a red-black tree keyed by (Vs, Payload); each node carries
// the event (payload stored once, shared across inputs) and a second-tier
// hash table mapping stream id → current Ve on that stream, plus an
// OutputStream entry for the Ve most recently reflected on the output.
type In2t struct {
	tree *Tree[temporal.VsPayload, *Node2]
}

// Node2 is one top-tier node of an In2t.
type Node2 struct {
	event temporal.Event
	ve    veTable
}

// veInline is the number of (stream, Ve) entries a node stores inline before
// spilling to a map. Paper runs use 2–3 inputs plus the output entry, so the
// inline array covers the common case with zero allocation and a scan that
// beats map hashing at these sizes.
const veInline = 8

// veEntry is one (stream id, current Ve) pair.
type veEntry struct {
	s  int
	ve temporal.Time
}

// veTable maps stream id → current Ve. Entries live in a small array sorted
// by stream id; once a node accumulates more than veInline entries they
// spill to an ordinary map (and stay there — spilling is rare and one-way).
type veTable struct {
	n     int
	small [veInline]veEntry
	spill map[int]temporal.Time
}

func (t *veTable) get(s int) (temporal.Time, bool) {
	if t.spill != nil {
		ve, ok := t.spill[s]
		return ve, ok
	}
	for i := 0; i < t.n; i++ {
		if t.small[i].s == s {
			return t.small[i].ve, true
		}
		if t.small[i].s > s {
			break
		}
	}
	return 0, false
}

func (t *veTable) put(s int, ve temporal.Time) {
	if t.spill != nil {
		t.spill[s] = ve
		return
	}
	i := 0
	for ; i < t.n; i++ {
		if t.small[i].s == s {
			t.small[i].ve = ve
			return
		}
		if t.small[i].s > s {
			break
		}
	}
	if t.n == veInline {
		t.spill = make(map[int]temporal.Time, veInline+1)
		for _, e := range t.small[:t.n] {
			t.spill[e.s] = e.ve
		}
		t.spill[s] = ve
		return
	}
	copy(t.small[i+1:t.n+1], t.small[i:t.n])
	t.small[i] = veEntry{s: s, ve: ve}
	t.n++
}

func (t *veTable) del(s int) {
	if t.spill != nil {
		delete(t.spill, s)
		return
	}
	for i := 0; i < t.n; i++ {
		if t.small[i].s == s {
			copy(t.small[i:t.n-1], t.small[i+1:t.n])
			t.n--
			return
		}
		if t.small[i].s > s {
			return
		}
	}
}

func (t *veTable) len() int {
	if t.spill != nil {
		return len(t.spill)
	}
	return t.n
}

// NewIn2t returns an empty index.
func NewIn2t() *In2t {
	return &In2t{tree: NewTree[temporal.VsPayload, *Node2](temporal.VsPayload.Compare)}
}

// Len returns the number of live (Vs, Payload) nodes.
func (x *In2t) Len() int { return x.tree.Len() }

// SameVsPayload returns the node for e's (Vs, Payload), if present
// (Algorithm R3 line 4/12).
func (x *In2t) SameVsPayload(e temporal.Element) (*Node2, bool) {
	return x.Get(e.Key())
}

// Get returns the node for key k, if present.
func (x *In2t) Get(k temporal.VsPayload) (*Node2, bool) {
	return x.tree.Get(k)
}

// AddNode creates a node for e's (Vs, Payload) storing e as the shared event
// (Algorithm R3 line 7). The caller must have checked the node is absent.
func (x *In2t) AddNode(e temporal.Element) *Node2 {
	n := &Node2{event: temporal.Event{Payload: e.Payload, Vs: e.Vs, Ve: e.Ve}}
	x.tree.Put(e.Key(), n)
	return n
}

// DeleteNode removes the node for key k (Algorithm R3 line 27).
func (x *In2t) DeleteNode(k temporal.VsPayload) bool {
	return x.tree.Delete(k)
}

// PutNode installs an existing node under its own key, transplanting it from
// another In2t with every per-stream entry intact (the state-handoff path of
// partition rebalancing). The caller must ensure the key is absent.
func (x *In2t) PutNode(n *Node2) {
	x.tree.Put(n.Key(), n)
}

// FindHalfFrozen returns, in (Vs, Payload) order, the nodes whose Vs is less
// than t — the nodes that become half frozen when stable(t) is processed
// (Algorithm R3 line 17). The slice is a snapshot, so the caller may delete
// nodes while walking it.
func (x *In2t) FindHalfFrozen(t temporal.Time) []*Node2 {
	return x.FindHalfFrozenInto(t, nil)
}

// FindHalfFrozenInto is FindHalfFrozen appending into buf (reset to length
// zero first), letting stable sweeps reuse one scratch slice instead of
// allocating per stable.
func (x *In2t) FindHalfFrozenInto(t temporal.Time, buf []*Node2) []*Node2 {
	buf = buf[:0]
	x.tree.Ascend(func(k temporal.VsPayload, n *Node2) bool {
		if k.Vs >= t {
			return false // keys are Vs-major, so no later node qualifies
		}
		buf = append(buf, n)
		return true
	})
	return buf
}

// Ascend visits all nodes in key order.
func (x *In2t) Ascend(fn func(*Node2) bool) {
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node2) bool { return fn(n) })
}

// SizeBytes approximates the memory footprint: per node, one shared payload
// plus tree overhead, and 16 bytes per hash entry.
func (x *In2t) SizeBytes() int {
	total := 0
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node2) bool {
		total += Node2Bytes(n)
		return true
	})
	return total
}

// nodeOverhead approximates tree-node and header bytes per index node.
const nodeOverhead = 64

// Event returns the node's shared event (payload, Vs, and first-seen Ve).
func (n *Node2) Event() temporal.Event { return n.event }

// Key returns the node's (Vs, Payload).
func (n *Node2) Key() temporal.VsPayload { return n.event.Key() }

// Ve returns the hash-table entry for stream s (Algorithm R3 GetHashEntry).
func (n *Node2) Ve(s int) (temporal.Time, bool) { return n.ve.get(s) }

// SetVe adds or updates the hash-table entry for stream s (AddHashEntry /
// UpdateHashEntry in Algorithm R3).
func (n *Node2) SetVe(s int, ve temporal.Time) { n.ve.put(s, ve) }

// DeleteStream drops stream s's entry, used when an input detaches.
func (n *Node2) DeleteStream(s int) { n.ve.del(s) }

// Streams returns the number of entries (inputs plus output).
func (n *Node2) Streams() int { return n.ve.len() }

// Vouchers returns the number of input-stream entries (OutputStream
// excluded) the node still holds.
func (n *Node2) Vouchers() int {
	c := n.ve.len()
	if _, ok := n.ve.get(OutputStream); ok {
		c--
	}
	return c
}
