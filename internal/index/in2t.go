package index

import "lmerge/internal/temporal"

// OutputStream is the distinguished hash-table key the paper writes as ∞: it
// tracks what has been reflected on the LMerge output for a node.
const OutputStream = -1

// In2t is the two-tier index of paper Figure 1 (left), used by Algorithm R3.
// The top tier is a red-black tree keyed by (Vs, Payload); each node carries
// the event (payload stored once, shared across inputs) and a second-tier
// hash table mapping stream id → current Ve on that stream, plus an
// OutputStream entry for the Ve most recently reflected on the output.
type In2t struct {
	tree *Tree[temporal.VsPayload, *Node2]
}

// Node2 is one top-tier node of an In2t.
type Node2 struct {
	event temporal.Event
	ve    map[int]temporal.Time
}

// NewIn2t returns an empty index.
func NewIn2t() *In2t {
	return &In2t{tree: NewTree[temporal.VsPayload, *Node2](temporal.VsPayload.Compare)}
}

// Len returns the number of live (Vs, Payload) nodes.
func (x *In2t) Len() int { return x.tree.Len() }

// SameVsPayload returns the node for e's (Vs, Payload), if present
// (Algorithm R3 line 4/12).
func (x *In2t) SameVsPayload(e temporal.Element) (*Node2, bool) {
	return x.Get(e.Key())
}

// Get returns the node for key k, if present.
func (x *In2t) Get(k temporal.VsPayload) (*Node2, bool) {
	return x.tree.Get(k)
}

// AddNode creates a node for e's (Vs, Payload) storing e as the shared event
// (Algorithm R3 line 7). The caller must have checked the node is absent.
func (x *In2t) AddNode(e temporal.Element) *Node2 {
	n := &Node2{
		event: temporal.Event{Payload: e.Payload, Vs: e.Vs, Ve: e.Ve},
		ve:    make(map[int]temporal.Time, 4),
	}
	x.tree.Put(e.Key(), n)
	return n
}

// DeleteNode removes the node for key k (Algorithm R3 line 27).
func (x *In2t) DeleteNode(k temporal.VsPayload) bool {
	return x.tree.Delete(k)
}

// FindHalfFrozen returns, in (Vs, Payload) order, the nodes whose Vs is less
// than t — the nodes that become half frozen when stable(t) is processed
// (Algorithm R3 line 17). The slice is a snapshot, so the caller may delete
// nodes while walking it.
func (x *In2t) FindHalfFrozen(t temporal.Time) []*Node2 {
	var out []*Node2
	x.tree.Ascend(func(k temporal.VsPayload, n *Node2) bool {
		if k.Vs >= t {
			return false // keys are Vs-major, so no later node qualifies
		}
		out = append(out, n)
		return true
	})
	return out
}

// Ascend visits all nodes in key order.
func (x *In2t) Ascend(fn func(*Node2) bool) {
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node2) bool { return fn(n) })
}

// SizeBytes approximates the memory footprint: per node, one shared payload
// plus tree overhead, and 16 bytes per hash entry.
func (x *In2t) SizeBytes() int {
	total := 0
	x.tree.Ascend(func(_ temporal.VsPayload, n *Node2) bool {
		total += nodeOverhead + n.event.Payload.SizeBytes() + 16*len(n.ve)
		return true
	})
	return total
}

// nodeOverhead approximates tree-node and header bytes per index node.
const nodeOverhead = 64

// Event returns the node's shared event (payload, Vs, and first-seen Ve).
func (n *Node2) Event() temporal.Event { return n.event }

// Key returns the node's (Vs, Payload).
func (n *Node2) Key() temporal.VsPayload { return n.event.Key() }

// Ve returns the hash-table entry for stream s (Algorithm R3 GetHashEntry).
func (n *Node2) Ve(s int) (temporal.Time, bool) {
	ve, ok := n.ve[s]
	return ve, ok
}

// SetVe adds or updates the hash-table entry for stream s (AddHashEntry /
// UpdateHashEntry in Algorithm R3).
func (n *Node2) SetVe(s int, ve temporal.Time) { n.ve[s] = ve }

// DeleteStream drops stream s's entry, used when an input detaches.
func (n *Node2) DeleteStream(s int) { delete(n.ve, s) }

// Streams returns the number of hash entries (inputs plus output).
func (n *Node2) Streams() int { return len(n.ve) }
