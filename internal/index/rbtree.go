// Package index provides the ordered index structures used by the LMerge
// algorithms: a generic red-black tree plus the two-tier (in2t) and
// three-tier (in3t) composites of paper Figure 1.
package index

// Tree is a left-leaning red-black balanced search tree (Sedgewick's LLRB, a
// red-black tree variant) mapping keys to values under a caller-supplied
// total order. It provides O(log n) insert, lookup, and delete, and in-order
// iteration — everything the in2t/in3t top tiers require.
type Tree[K, V any] struct {
	cmp  func(K, K) int
	root *treeNode[K, V]
	size int
}

type treeNode[K, V any] struct {
	key         K
	val         V
	left, right *treeNode[K, V]
	red         bool
}

// NewTree returns an empty tree ordered by cmp.
func NewTree[K, V any](cmp func(K, K) int) *Tree[K, V] {
	return &Tree[K, V]{cmp: cmp}
}

// Len returns the number of keys in the tree.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch c := t.cmp(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts key → val, replacing any existing value.
func (t *Tree[K, V]) Put(key K, val V) {
	t.root = t.insert(t.root, key, val)
	t.root.red = false
}

func (t *Tree[K, V]) insert(h *treeNode[K, V], key K, val V) *treeNode[K, V] {
	if h == nil {
		t.size++
		return &treeNode[K, V]{key: key, val: val, red: true}
	}
	switch c := t.cmp(key, h.key); {
	case c < 0:
		h.left = t.insert(h.left, key, val)
	case c > 0:
		h.right = t.insert(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h)
}

// Delete removes key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func (t *Tree[K, V]) delete(h *treeNode[K, V], key K) *treeNode[K, V] {
	if t.cmp(key, h.key) < 0 {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if t.cmp(key, h.key) == 0 && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if t.cmp(key, h.key) == 0 {
			m := min(h.right)
			h.key, h.val = m.key, m.val
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	m := min(t.root)
	return m.key, m.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Floor returns the largest entry with key <= k.
func (t *Tree[K, V]) Floor(k K) (K, V, bool) {
	var bk K
	var bv V
	found := false
	n := t.root
	for n != nil {
		if t.cmp(n.key, k) <= 0 {
			bk, bv, found = n.key, n.val, true
			n = n.right
		} else {
			n = n.left
		}
	}
	return bk, bv, found
}

// Ceiling returns the smallest entry with key >= k.
func (t *Tree[K, V]) Ceiling(k K) (K, V, bool) {
	var bk K
	var bv V
	found := false
	n := t.root
	for n != nil {
		if t.cmp(n.key, k) >= 0 {
			bk, bv, found = n.key, n.val, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return bk, bv, found
}

// Ascend visits all entries in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(K, V) bool) {
	ascend(t.root, fn)
}

func ascend[K, V any](n *treeNode[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// Keys returns all keys in order (primarily for tests and diagnostics).
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

func min[K, V any](n *treeNode[K, V]) *treeNode[K, V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func deleteMin[K, V any](h *treeNode[K, V]) *treeNode[K, V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

func isRed[K, V any](n *treeNode[K, V]) bool { return n != nil && n.red }

func rotateLeft[K, V any](h *treeNode[K, V]) *treeNode[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[K, V any](h *treeNode[K, V]) *treeNode[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[K, V any](h *treeNode[K, V]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp[K, V any](h *treeNode[K, V]) *treeNode[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

func moveRedLeft[K, V any](h *treeNode[K, V]) *treeNode[K, V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K, V any](h *treeNode[K, V]) *treeNode[K, V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

// validate checks the red-black invariants; it returns a description of the
// first violation, or "" if the tree is valid. Exposed to the package tests.
func (t *Tree[K, V]) validate() string {
	if isRed(t.root) {
		return "root is red"
	}
	_, msg := validateNode(t.root, t.cmp)
	return msg
}

func validateNode[K, V any](n *treeNode[K, V], cmp func(K, K) int) (blackHeight int, msg string) {
	if n == nil {
		return 1, ""
	}
	if isRed(n.right) {
		return 0, "right-leaning red link"
	}
	if isRed(n) && isRed(n.left) {
		return 0, "consecutive red links"
	}
	if n.left != nil && cmp(n.left.key, n.key) >= 0 {
		return 0, "left child out of order"
	}
	if n.right != nil && cmp(n.right.key, n.key) <= 0 {
		return 0, "right child out of order"
	}
	lh, m := validateNode(n.left, cmp)
	if m != "" {
		return 0, m
	}
	rh, m := validateNode(n.right, cmp)
	if m != "" {
		return 0, m
	}
	if lh != rh {
		return 0, "black-height mismatch"
	}
	if !isRed(n) {
		lh++
	}
	return lh, ""
}
