package index

import (
	"testing"

	"lmerge/internal/temporal"
)

func TestIn2tBasic(t *testing.T) {
	x := NewIn2t()
	e := temporal.Insert(temporal.P(7), 10, 20)
	if _, ok := x.SameVsPayload(e); ok {
		t.Fatal("empty index should have no node")
	}
	n := x.AddNode(e)
	if x.Len() != 1 {
		t.Fatalf("Len = %d", x.Len())
	}
	got, ok := x.SameVsPayload(e)
	if !ok || got != n {
		t.Fatal("SameVsPayload should find the node")
	}
	if n.Event() != temporal.Ev(temporal.P(7), 10, 20) {
		t.Fatalf("Event = %v", n.Event())
	}
	if n.Key() != (temporal.VsPayload{Vs: 10, Payload: temporal.P(7)}) {
		t.Fatalf("Key = %v", n.Key())
	}

	n.SetVe(0, 20)
	n.SetVe(OutputStream, 20)
	if ve, ok := n.Ve(0); !ok || ve != 20 {
		t.Fatal("Ve(0) wrong")
	}
	if _, ok := n.Ve(1); ok {
		t.Fatal("Ve(1) should be absent")
	}
	n.SetVe(0, 25)
	if ve, _ := n.Ve(0); ve != 25 {
		t.Fatal("SetVe should update")
	}
	if n.Streams() != 2 {
		t.Fatalf("Streams = %d", n.Streams())
	}
	n.DeleteStream(0)
	if n.Streams() != 1 {
		t.Fatal("DeleteStream failed")
	}

	if !x.DeleteNode(e.Key()) || x.DeleteNode(e.Key()) {
		t.Fatal("DeleteNode semantics wrong")
	}
}

func TestIn2tFindHalfFrozen(t *testing.T) {
	x := NewIn2t()
	for _, vs := range []temporal.Time{5, 10, 15, 20} {
		x.AddNode(temporal.Insert(temporal.P(int64(vs)), vs, vs+100))
	}
	// Same Vs, different payloads.
	x.AddNode(temporal.Insert(temporal.P(99), 10, 200))

	hf := x.FindHalfFrozen(15)
	if len(hf) != 3 { // Vs ∈ {5, 10, 10}
		t.Fatalf("FindHalfFrozen(15) = %d nodes, want 3", len(hf))
	}
	for i := 1; i < len(hf); i++ {
		if hf[i-1].Key().Compare(hf[i].Key()) >= 0 {
			t.Fatal("FindHalfFrozen not in key order")
		}
	}
	if got := x.FindHalfFrozen(5); len(got) != 0 {
		t.Fatalf("FindHalfFrozen(5) = %d nodes, want 0 (Vs == t is not half frozen)", len(got))
	}
	if got := x.FindHalfFrozen(temporal.Infinity); len(got) != 5 {
		t.Fatalf("FindHalfFrozen(∞) = %d, want 5", len(got))
	}

	// Deleting snapshot nodes while walking must be safe.
	for _, n := range x.FindHalfFrozen(temporal.Infinity) {
		x.DeleteNode(n.Key())
	}
	if x.Len() != 0 {
		t.Fatalf("Len after deletes = %d", x.Len())
	}
}

func TestIn2tSizeBytesSharing(t *testing.T) {
	// The point of in2t (vs per-input copies): payload bytes are counted once
	// per node regardless of how many streams have entries.
	big := temporal.Payload{ID: 1, Data: string(make([]byte, 1000))}
	x := NewIn2t()
	n := x.AddNode(temporal.Insert(big, 1, 100))
	base := x.SizeBytes()
	for s := 0; s < 10; s++ {
		n.SetVe(s, 100)
	}
	grown := x.SizeBytes()
	if grown-base >= big.SizeBytes() {
		t.Errorf("per-stream growth %d should be far below payload size %d", grown-base, big.SizeBytes())
	}
	if base < big.SizeBytes() {
		t.Errorf("base size %d should include payload %d", base, big.SizeBytes())
	}
}

func TestIn2tAscend(t *testing.T) {
	x := NewIn2t()
	x.AddNode(temporal.Insert(temporal.P(1), 3, 10))
	x.AddNode(temporal.Insert(temporal.P(2), 1, 10))
	var vss []temporal.Time
	x.Ascend(func(n *Node2) bool {
		vss = append(vss, n.Key().Vs)
		return true
	})
	if len(vss) != 2 || vss[0] != 1 || vss[1] != 3 {
		t.Fatalf("Ascend order = %v", vss)
	}
}
