package index

import (
	"math/rand"
	"testing"

	"lmerge/internal/temporal"
)

func TestIn3tCounts(t *testing.T) {
	x := NewIn3t()
	e := temporal.Insert(temporal.P(1), 5, 10)
	n := x.AddNode(e)

	if n.Count(0) != 0 || n.CountOf(0, 10) != 0 {
		t.Fatal("fresh node should have zero counts")
	}
	n.IncrementCount(0, 10)
	n.IncrementCount(0, 10)
	n.IncrementCount(0, 12)
	if n.Count(0) != 3 {
		t.Fatalf("Count(0) = %d, want 3", n.Count(0))
	}
	if n.CountOf(0, 10) != 2 || n.CountOf(0, 12) != 1 {
		t.Fatal("per-Ve counts wrong")
	}
	if ve, ok := n.MaxVe(0); !ok || ve != 12 {
		t.Fatalf("MaxVe = %v, %v", ve, ok)
	}
	if _, ok := n.MaxVe(1); ok {
		t.Fatal("MaxVe on absent stream should report absent")
	}

	if !n.DecrementCount(0, 10) {
		t.Fatal("DecrementCount should succeed")
	}
	if n.CountOf(0, 10) != 1 || n.Count(0) != 2 {
		t.Fatal("counts after decrement wrong")
	}
	if n.DecrementCount(0, 99) {
		t.Fatal("decrement of absent Ve should fail")
	}
	if n.DecrementCount(1, 10) {
		t.Fatal("decrement on absent stream should fail")
	}

	// Drain a Ve fully: it should disappear from the tier.
	n.DecrementCount(0, 10)
	if n.CountOf(0, 10) != 0 {
		t.Fatal("drained Ve should have count 0")
	}
	vcs := n.VeCounts(0)
	if len(vcs) != 1 || vcs[0] != (VeCount{Ve: 12, Count: 1}) {
		t.Fatalf("VeCounts = %v", vcs)
	}
}

func TestIn3tAscendVeOrder(t *testing.T) {
	x := NewIn3t()
	n := x.AddNode(temporal.Insert(temporal.P(1), 0, 1))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n.IncrementCount(0, temporal.Time(rng.Intn(50)))
	}
	last := temporal.MinTime
	total := 0
	n.AscendVe(0, func(ve temporal.Time, c int) bool {
		if ve <= last {
			t.Fatal("AscendVe out of order")
		}
		last = ve
		total += c
		return true
	})
	if total != 200 || n.Count(0) != 200 {
		t.Fatalf("total = %d, Count = %d", total, n.Count(0))
	}
}

func TestIn3tFindHalfFrozenAndDelete(t *testing.T) {
	x := NewIn3t()
	for vs := temporal.Time(0); vs < 10; vs++ {
		n := x.AddNode(temporal.Insert(temporal.P(int64(vs)), vs, vs+5))
		n.IncrementCount(0, vs+5)
	}
	hf := x.FindHalfFrozen(4)
	if len(hf) != 4 {
		t.Fatalf("FindHalfFrozen(4) = %d, want 4", len(hf))
	}
	for _, n := range hf {
		x.DeleteNode(n.Key())
	}
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
}

func TestIn3tDeleteStream(t *testing.T) {
	x := NewIn3t()
	n := x.AddNode(temporal.Insert(temporal.P(1), 0, 5))
	n.IncrementCount(0, 5)
	n.IncrementCount(1, 5)
	n.DeleteStream(0)
	if n.Count(0) != 0 || n.Count(1) != 1 {
		t.Fatal("DeleteStream should drop only stream 0")
	}
}

func TestIn3tSizeBytes(t *testing.T) {
	x := NewIn3t()
	if x.SizeBytes() != 0 {
		t.Fatal("empty index should be size 0")
	}
	n := x.AddNode(temporal.Insert(temporal.Payload{ID: 1, Data: "xxxx"}, 0, 5))
	s1 := x.SizeBytes()
	n.IncrementCount(0, 5)
	n.IncrementCount(0, 6)
	s2 := x.SizeBytes()
	if s2 <= s1 {
		t.Fatal("adding Ve entries should grow the size estimate")
	}
	var found bool
	x.Ascend(func(m *Node3) bool { found = m == n; return false })
	if !found {
		t.Fatal("Ascend should visit the node")
	}
}
