package index

import (
	"math/rand"
	"testing"

	"lmerge/internal/temporal"
)

func BenchmarkTreePut(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 1<<16)
	for i := range keys {
		keys[i] = rng.Int()
	}
	b.ResetTimer()
	tr := NewTree[int, int](func(a, c int) int { return a - c })
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i&(len(keys)-1)], i)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := NewTree[int, int](func(a, c int) int { return a - c })
	for i := 0; i < 1<<14; i++ {
		tr.Put(i*7, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get((i % (1 << 14)) * 7)
	}
}

func BenchmarkTreePutDelete(b *testing.B) {
	tr := NewTree[int, int](func(a, c int) int { return a - c })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(i&1023, i)
		if i&1 == 1 {
			tr.Delete((i - 1) & 1023)
		}
	}
}

func BenchmarkIn2tInsertLookup(b *testing.B) {
	x := NewIn2t()
	payload := temporal.Payload{ID: 7, Data: "payload-data-here"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := temporal.Insert(payload, temporal.Time(i&8191), temporal.Time(i&8191)+50)
		if n, ok := x.SameVsPayload(e); ok {
			n.SetVe(0, e.Ve)
		} else {
			x.AddNode(e).SetVe(0, e.Ve)
		}
	}
}

func BenchmarkIn3tIncrement(b *testing.B) {
	x := NewIn3t()
	payload := temporal.Payload{ID: 7, Data: "payload-data-here"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := temporal.Insert(payload, temporal.Time(i&8191), temporal.Time(i&8191)+50)
		n, ok := x.SameVsPayload(e)
		if !ok {
			n = x.AddNode(e)
		}
		n.IncrementCount(0, e.Ve)
	}
}

func BenchmarkIn2tFindHalfFrozen(b *testing.B) {
	x := NewIn2t()
	for i := 0; i < 4096; i++ {
		x.AddNode(temporal.Insert(temporal.P(int64(i)), temporal.Time(i), temporal.Time(i+100)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.FindHalfFrozen(temporal.Time(i & 4095))
	}
}
