package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int { return a - b }

func TestTreeBasic(t *testing.T) {
	tr := NewTree[int, string](intCmp)
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree")
	}
	tr.Put(2, "b")
	tr.Put(1, "a")
	tr.Put(3, "c")
	tr.Put(2, "B") // replace
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(2); !ok || v != "B" {
		t.Fatalf("Get(2) = %q, %v", v, ok)
	}
	if k, v, ok := tr.Min(); !ok || k != 1 || v != "a" {
		t.Fatalf("Min = %d,%q,%v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || k != 3 || v != "c" {
		t.Fatalf("Max = %d,%q,%v", k, v, ok)
	}
	if !tr.Delete(2) || tr.Delete(2) {
		t.Fatal("Delete semantics wrong")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	if msg := tr.validate(); msg != "" {
		t.Fatalf("invariant: %s", msg)
	}
}

func TestTreeEmptyMinMax(t *testing.T) {
	tr := NewTree[int, int](intCmp)
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree should report absent")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree should report absent")
	}
}

func TestTreeAscendOrderAndEarlyStop(t *testing.T) {
	tr := NewTree[int, int](intCmp)
	perm := rand.New(rand.NewSource(1)).Perm(100)
	for _, k := range perm {
		tr.Put(k, k*k)
	}
	var keys []int
	tr.Ascend(func(k, v int) bool {
		if v != k*k {
			t.Fatalf("value mismatch at %d", k)
		}
		keys = append(keys, k)
		return true
	})
	if !sort.IntsAreSorted(keys) || len(keys) != 100 {
		t.Fatalf("Ascend order broken (%d keys)", len(keys))
	}
	n := 0
	tr.Ascend(func(k, v int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
	if got := tr.Keys(); len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("Keys() wrong: len=%d", len(got))
	}
}

// TestTreeRandomizedAgainstMap drives the tree with a random op sequence and
// checks contents against a reference map and the red-black invariants.
func TestTreeRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewTree[int, int](intCmp)
	ref := make(map[int]int)
	for i := 0; i < 20000; i++ {
		k := rng.Intn(500)
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int()
			tr.Put(k, v)
			ref[k] = v
		case 2:
			delTree := tr.Delete(k)
			_, inRef := ref[k]
			if delTree != inRef {
				t.Fatalf("op %d: Delete(%d) = %v, ref has = %v", i, k, delTree, inRef)
			}
			delete(ref, k)
		}
		if i%997 == 0 {
			if msg := tr.validate(); msg != "" {
				t.Fatalf("op %d: invariant: %s", i, msg)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := tr.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v, want %d", k, got, ok, v)
		}
	}
	if msg := tr.validate(); msg != "" {
		t.Fatalf("final invariant: %s", msg)
	}
}

// TestTreeQuickInsertDelete is a testing/quick property: inserting a key set
// then deleting a subset leaves exactly the difference, with invariants held.
func TestTreeQuickInsertDelete(t *testing.T) {
	f := func(ins []int16, del []int16) bool {
		tr := NewTree[int, bool](intCmp)
		ref := make(map[int]bool)
		for _, k := range ins {
			tr.Put(int(k), true)
			ref[int(k)] = true
		}
		for _, k := range del {
			tr.Delete(int(k))
			delete(ref, int(k))
		}
		if tr.Len() != len(ref) {
			return false
		}
		if msg := tr.validate(); msg != "" {
			return false
		}
		keys := tr.Keys()
		if !sort.IntsAreSorted(keys) {
			return false
		}
		for _, k := range keys {
			if !ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDescendingInsert(t *testing.T) {
	tr := NewTree[int, int](intCmp)
	for k := 1000; k > 0; k-- {
		tr.Put(k, k)
	}
	if msg := tr.validate(); msg != "" {
		t.Fatalf("invariant after descending inserts: %s", msg)
	}
	for k := 1; k <= 1000; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	if msg := tr.validate(); msg != "" {
		t.Fatalf("invariant after deletes: %s", msg)
	}
}
