package index

import "unsafe"

// NodeBytes returns the allocated footprint of one red-black tree node
// keyed K holding V — the real `unsafe.Sizeof` of the node struct, so
// operator- and merger-level SizeBytes estimates track the actual layout
// instead of hand-rolled magic numbers (which silently go stale when a
// struct grows). Exported because treeNode itself is not.
func NodeBytes[K, V any]() int {
	return int(unsafe.Sizeof(treeNode[K, V]{}))
}

// Node2Bytes returns one in2t node's contribution to SizeBytes: tree-node
// and header overhead, the shared payload, and 16 bytes per hash entry.
func Node2Bytes(n *Node2) int {
	return nodeOverhead + n.event.Payload.SizeBytes() + 16*n.ve.len()
}

// Node3Bytes returns one in3t node's contribution to SizeBytes: tree-node
// and header overhead, the shared payload, and per stream entry 16 bytes
// plus half a node overhead for each distinct Ve.
func Node3Bytes(n *Node3) int {
	total := nodeOverhead + n.event.Payload.SizeBytes()
	n.eachStream(func(_ int, vs *VeSet) bool {
		total += 16 + nodeOverhead/2*vs.distinct()
		return true
	})
	return total
}
