package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// The cursor-plane property battery (DESIGN.md §15): seeded random
// interleavings of append / copy-out / direct-read / attach / detach driven
// against a flat shadow model of the framed stream. The invariants are the
// ones the delivery plane's correctness rests on:
//
//  1. no cursor ever skips or double-reads a byte — everything a cursor
//     copies out is byte-identical to the shadow stream at its position;
//  2. reads respect the credit budget and cut at frame boundaries;
//  3. retention is exactly slowest-reader: every unread byte stays resident,
//     and the window never holds more than one block of slack behind the
//     minimum cursor;
//  4. once every cursor detaches and the log closes, the window drains to
//     zero — block references hit zero exactly when the minimum cursor
//     passes them, so nothing leaks.

// cursorModel pairs a live cursor with its shadow state.
type cursorModel struct {
	c      *Cursor
	pos    int64 // mirror of c.Pos(), advanced only by verified reads
	credit int64 // client-style credit ledger; must never go negative
}

// checkRetention asserts invariant 3 against the log's gauges.
func checkRetention(t *testing.T, l *BlockLog, cursors []*cursorModel, step int) {
	t.Helper()
	head := l.Head()
	minPos := head
	for _, cm := range cursors {
		if cm.pos < minPos {
			minPos = cm.pos
		}
	}
	unread := head - minPos
	got := l.RetainedBytes()
	if got < unread {
		t.Fatalf("step %d: retained %d < unread %d — a live byte was released", step, got, unread)
	}
	if got > unread+BlockCap {
		t.Fatalf("step %d: retained %d > unread %d + one block — slowest-reader retention leaks", step, got, unread)
	}
}

func TestBlockLogCursorProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			l := NewBlockLog(&obs.Wire{})
			var model []byte // every framed byte ever appended, in order
			var cursors []*cursorModel
			attach := func() {
				cursors = append(cursors, &cursorModel{c: l.Attach(), pos: l.Head()})
			}
			attach()
			scratch := make([]byte, 0, 64*1024)
			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // append a small element
					e := temporal.Insert(temporal.Payload{ID: int64(step), Data: strings.Repeat("v", rng.Intn(200))},
						temporal.Time(step), temporal.Time(step+10))
					model = AppendData(model, e)
					l.Append(e)
				case op == 4: // append an element framing past BlockCap (dedicated block)
					if rng.Intn(8) == 0 {
						e := temporal.Insert(temporal.Payload{ID: int64(step), Data: strings.Repeat("X", BlockCap+rng.Intn(2048))},
							temporal.Time(step), temporal.Infinity)
						model = AppendData(model, e)
						l.Append(e)
					}
				case op < 8: // copy-out under a credit budget
					if len(cursors) == 0 {
						attach()
						break
					}
					cm := cursors[rng.Intn(len(cursors))]
					cm.credit += int64(rng.Intn(3000)) // client grant
					dst := scratch[:1+rng.Intn(cap(scratch))]
					n, frames, need := l.CopyOut(cm.c, dst, cm.credit)
					if int64(n) > cm.credit {
						t.Fatalf("step %d: CopyOut took %d bytes against credit %d", step, n, cm.credit)
					}
					cm.credit -= int64(n)
					if cm.credit < 0 {
						t.Fatalf("step %d: credit went negative: %d", step, cm.credit)
					}
					want := model[cm.pos : cm.pos+int64(n)]
					if !bytes.Equal(dst[:n], want) {
						t.Fatalf("step %d: cursor read diverges from the stream at pos %d (n=%d)", step, cm.pos, n)
					}
					// The cut must be whole frames, exactly `frames` of them.
					fc := 0
					for off := 0; off < n; fc++ {
						fl, ok := FrameSize(dst[off:n])
						if !ok || off+fl > n {
							t.Fatalf("step %d: CopyOut returned a torn frame at offset %d", step, off)
						}
						off += fl
					}
					if fc != frames {
						t.Fatalf("step %d: CopyOut reported %d frames, cut holds %d", step, frames, fc)
					}
					cm.pos += int64(n)
					if cm.pos != cm.c.Pos() {
						t.Fatalf("step %d: model pos %d != cursor pos %d", step, cm.pos, cm.c.Pos())
					}
					if n == 0 && need > 0 {
						// The reported blocker must be the true size of the next frame.
						fl, ok := FrameSize(model[cm.pos:])
						if !ok || fl != need {
							t.Fatalf("step %d: need=%d but next frame is %d (ok=%v)", step, need, fl, ok)
						}
						if int64(need) <= cm.credit && need <= len(dst) {
							t.Fatalf("step %d: CopyOut refused a frame that fits credit %d and room %d", step, cm.credit, len(dst))
						}
					}
				case op == 8: // direct read (the oversized-frame path)
					if len(cursors) == 0 {
						break
					}
					cm := cursors[rng.Intn(len(cursors))]
					data, blk, ok := l.ReadAt(cm.c)
					if !ok {
						if cm.pos != l.Head() {
							t.Fatalf("step %d: ReadAt says drained at pos %d, head %d", step, cm.pos, l.Head())
						}
						break
					}
					fl, fok := FrameSize(data)
					if !fok || fl > len(data) {
						blk.Release()
						t.Fatalf("step %d: ReadAt region does not start with a whole frame", step)
					}
					if !bytes.Equal(data[:fl], model[cm.pos:cm.pos+int64(fl)]) {
						blk.Release()
						t.Fatalf("step %d: ReadAt bytes diverge at pos %d", step, cm.pos)
					}
					l.Advance(cm.c, fl)
					blk.Release()
					cm.pos += int64(fl)
				case op == 9: // attach / detach churn
					if rng.Intn(2) == 0 || len(cursors) == 0 {
						attach()
					} else {
						i := rng.Intn(len(cursors))
						l.Detach(cursors[i].c)
						cursors = append(cursors[:i], cursors[i+1:]...)
					}
				}
				checkRetention(t, l, cursors, step)
			}
			// Drain everything, then tear down: the window must hit zero —
			// block refcounts reach zero exactly when the last cursor passes.
			for _, cm := range cursors {
				for {
					n, _, need := l.CopyOut(cm.c, scratch[:cap(scratch)], int64(1)<<40)
					cm.pos += int64(n)
					if n == 0 && need == 0 {
						break
					}
				}
				if cm.pos != l.Head() {
					t.Fatalf("cursor drained at %d, head %d", cm.pos, l.Head())
				}
				l.Detach(cm.c)
			}
			l.Close()
			if b, n := l.RetainedBytes(), l.RetainedBlocks(); b != 0 || n != 0 {
				t.Fatalf("retention window not empty after drain+close: %d bytes in %d blocks", b, n)
			}
			if int64(len(model)) != l.Head() {
				t.Fatalf("shadow stream %d bytes, log head %d", len(model), l.Head())
			}
		})
	}
}

// TestBlockLogDetachReleasesLaggardTail: a lagging cursor pins the window;
// detaching it (the eviction path) releases every block only it was holding.
func TestBlockLogDetachReleasesLaggardTail(t *testing.T) {
	l := NewBlockLog(&obs.Wire{})
	defer l.Close()
	laggard := l.Attach()
	big := strings.Repeat("y", 4096)
	for i := 0; i < 64; i++ {
		l.Append(temporal.Insert(temporal.Payload{ID: int64(i), Data: big}, temporal.Time(i), temporal.Time(i+1)))
	}
	if l.RetainedBytes() < l.Head() {
		t.Fatalf("laggard at 0 but only %d of %d bytes retained", l.RetainedBytes(), l.Head())
	}
	if l.RetainedBlocks() < 8 {
		t.Fatalf("expected a multi-block window, got %d", l.RetainedBlocks())
	}
	fresh := l.Attach() // at head: must not pin anything extra
	l.Detach(laggard)
	if b := l.RetainedBytes(); b > int64(BlockCap) {
		t.Fatalf("detaching the laggard left %d bytes retained", b)
	}
	l.Detach(fresh)
}
