package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"lmerge/internal/temporal"
)

func sampleElements() temporal.Stream {
	return temporal.Stream{
		temporal.Insert(temporal.Payload{ID: 1, Data: "alpha"}, 10, 20),
		temporal.Adjust(temporal.Payload{ID: 2, Data: "beta"}, 5, 30, 15),
		temporal.Stable(12),
		temporal.Insert(temporal.P(3), 0, temporal.Infinity),
		temporal.Stable(temporal.Infinity),
	}
}

// TestFrameRoundTrips drives every frame type through Append* and back
// through both decoders (the slice decoder and the connection reader).
func TestFrameRoundTrips(t *testing.T) {
	var buf []byte
	buf = AppendHelloPub(buf, -17)
	buf = AppendHelloSub(buf, 917, 1<<20)
	buf = AppendOK(buf, 3, temporal.Time(42))
	buf = AppendErr(buf, "bad hello")
	for _, e := range sampleElements() {
		buf = AppendData(buf, e)
	}
	buf = AppendCredit(buf, 65536)
	buf = AppendFF(buf, temporal.Time(99))
	buf = AppendDetach(buf, "straggler")
	buf = AppendAck(buf)

	check := func(next func() (byte, []byte, error)) {
		t.Helper()
		typ, body, err := next()
		if err != nil || typ != FrHelloPub {
			t.Fatalf("hello_pub: typ=0x%02x err=%v", typ, err)
		}
		if jt, err := ParseHelloPub(body); err != nil || jt != -17 {
			t.Fatalf("hello_pub parse: %d %v", jt, err)
		}
		typ, body, err = next()
		if err != nil || typ != FrHelloSub {
			t.Fatalf("hello_sub: typ=0x%02x err=%v", typ, err)
		}
		if from, credit, err := ParseHelloSub(body); err != nil || from != 917 || credit != 1<<20 {
			t.Fatalf("hello_sub parse: %d %d %v", from, credit, err)
		}
		typ, body, err = next()
		if err != nil || typ != FrOK {
			t.Fatalf("ok: typ=0x%02x err=%v", typ, err)
		}
		if id, st, err := ParseOK(body); err != nil || id != 3 || st != 42 {
			t.Fatalf("ok parse: %d %d %v", id, st, err)
		}
		typ, body, err = next()
		if err != nil || typ != FrErr || string(body) != "bad hello" {
			t.Fatalf("err frame: typ=0x%02x body=%q err=%v", typ, body, err)
		}
		for i, want := range sampleElements() {
			typ, body, err = next()
			if err != nil || typ != FrData {
				t.Fatalf("data %d: typ=0x%02x err=%v", i, typ, err)
			}
			e, derr := DecodeData(body)
			if derr != nil {
				t.Fatalf("data %d decode: %v", i, derr)
			}
			if e != want {
				t.Fatalf("data %d round trip: %+v != %+v", i, e, want)
			}
		}
		typ, body, err = next()
		if err != nil || typ != FrCredit {
			t.Fatalf("credit: typ=0x%02x err=%v", typ, err)
		}
		if n, err := ParseCredit(body); err != nil || n != 65536 {
			t.Fatalf("credit parse: %d %v", n, err)
		}
		typ, body, err = next()
		if err != nil || typ != FrFF {
			t.Fatalf("ff: typ=0x%02x err=%v", typ, err)
		}
		if ff, err := ParseFF(body); err != nil || ff != 99 {
			t.Fatalf("ff parse: %d %v", ff, err)
		}
		typ, body, err = next()
		if err != nil || typ != FrDetach || string(body) != "straggler" {
			t.Fatalf("detach: typ=0x%02x body=%q err=%v", typ, body, err)
		}
		typ, body, err = next()
		if err != nil || typ != FrAck || len(body) != 0 {
			t.Fatalf("ack: typ=0x%02x body=%q err=%v", typ, body, err)
		}
	}

	// Slice decoder.
	rest := buf
	check(func() (byte, []byte, error) {
		typ, body, n, err := DecodeFrame(rest)
		if err == nil {
			if fl, ok := FrameSize(rest); !ok || fl != n {
				t.Fatalf("FrameSize disagrees with DecodeFrame: %d vs %d", fl, n)
			}
			rest = rest[n:]
		}
		return typ, body, err
	})
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
	// Connection reader.
	fr := NewReader(bufio.NewReader(bytes.NewReader(buf)))
	check(fr.Next)
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

// TestFrameCorruptionDetected flips each byte of a frame in turn: every
// single-byte garble must be rejected (checksum, length, or structure) —
// never silently decoded as a different valid frame.
func TestFrameCorruptionDetected(t *testing.T) {
	frame := AppendData(nil, temporal.Insert(temporal.Payload{ID: 7, Data: "x"}, 3, 9))
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x41
		typ, body, _, err := DecodeFrame(mut)
		if err == nil {
			// Only acceptable if the mutation hit the length field and a
			// consistent shorter frame emerged — impossible with one frame, the
			// CRC covers the payload and the CRC bytes are part of the header.
			t.Fatalf("byte %d garble accepted: typ=0x%02x body=%q", i, typ, body)
		}
	}
}

// TestFrameTruncation: every proper prefix is a torn frame, reported as
// io.ErrUnexpectedEOF (repairable with more bytes), not corruption.
func TestFrameTruncation(t *testing.T) {
	frame := AppendOK(nil, 12, 34)
	for n := 0; n < len(frame); n++ {
		if _, _, _, err := DecodeFrame(frame[:n]); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix %d/%d: want ErrUnexpectedEOF, got %v", n, len(frame), err)
		}
	}
	// The connection reader reports a torn tail the same way.
	fr := NewReader(bufio.NewReader(bytes.NewReader(frame[:len(frame)-1])))
	if _, _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reader on torn tail: %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	frame := AppendAck(nil)
	frame[0], frame[1], frame[2], frame[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, err := DecodeFrame(frame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if _, ok := FrameSize(frame); ok {
		t.Fatal("FrameSize accepted an implausible length")
	}
}

func TestPreamble(t *testing.T) {
	good := AppendPreamble(nil)
	if err := CheckPreamble(good); err != nil {
		t.Fatalf("own preamble rejected: %v", err)
	}
	cases := [][]byte{
		{},
		{'L'},
		{'L', 'M'},
		{'H', 'E', 'L'},
		{'L', 'M', Version + 1},
		{'L', 'X', Version},
	}
	for _, p := range cases {
		if err := CheckPreamble(p); !errors.Is(err, ErrBadPreamble) {
			t.Fatalf("preamble %v: want ErrBadPreamble, got %v", p, err)
		}
	}
}

// TestStreamFileRoundTrip covers the lmcat container: write, sniff, read.
func TestStreamFileRoundTrip(t *testing.T) {
	s := sampleElements()
	var buf bytes.Buffer
	if err := WriteStream(&buf, s); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	if !SniffStream(br) {
		t.Fatal("SniffStream missed a binary stream file")
	}
	got, err := ReadStream(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("stream file round trip changed length: %d != %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("stream file element %d changed: %+v != %+v", i, got[i], s[i])
		}
	}
	if SniffStream(bufio.NewReader(bytes.NewReader([]byte("HELLO SUB\n")))) {
		t.Fatal("SniffStream misfired on a text handshake")
	}
	// A torn tail is an error for files.
	torn := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadStream(bytes.NewReader(torn)); err == nil {
		t.Fatal("torn stream file accepted")
	}
}
