package wire

import (
	"sort"
	"sync"
	"sync/atomic"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// BlockCap is the target byte capacity of a shared block. Large enough that
// the per-block bookkeeping (sealing, refcount churn, cursor-count updates
// for a lagging subscriber) amortises over hundreds of element frames; small
// enough that a block becomes immutable — and collectable — promptly.
const BlockCap = 32 * 1024

// Block is an immutable run of complete DATA frames shared by reference
// across every subscriber: the encode-once, write-many unit of the broadcast
// path. The emit path appends frames to the open block's tail while delivery
// workers concurrently read earlier regions; a region is published to a
// reader only through the log's mutex, and the backing array never
// reallocates, so tail writes and region reads touch disjoint memory.
//
// Lifecycle is reference counted: a block starts with one reference held by
// its creator (the BlockLog's retention window, or the caller of
// NewBlockFromBytes), transient readers (ReadAt) add one for the duration of
// a socket write, and the last Release returns pool-born blocks to the pool.
// Every reference is released exactly once; over-release panics (refcount
// underflow) rather than risk recycling shared bytes.
// The buf slice header is fixed at creation (always full length) and never
// mutated afterwards: tail writes go through copy into the unpublished
// region, so concurrent readers of published regions never touch a word the
// appender is writing — neither the header nor the bytes.
type Block struct {
	buf    []byte
	refs   atomic.Int32
	pooled bool
}

var blockPool = sync.Pool{
	New: func() any { return &Block{buf: make([]byte, BlockCap), pooled: true} },
}

// newBlock returns a block with at least n bytes of capacity and one
// reference. Requests beyond BlockCap (an oversized single frame) get a
// dedicated unpooled block.
func newBlock(n int) *Block {
	if n <= BlockCap {
		b := blockPool.Get().(*Block)
		b.refs.Store(1)
		return b
	}
	b := &Block{buf: make([]byte, n)}
	b.refs.Store(1)
	return b
}

// NewBlockFromBytes wraps an already-encoded frame run as a block with one
// reference held by the caller (tests; the server's history catch-up is a
// plain per-subscriber byte slice, not a block).
func NewBlockFromBytes(buf []byte) *Block {
	b := &Block{buf: buf}
	b.refs.Store(1)
	return b
}

// Retain adds a reference.
func (b *Block) Retain() { b.refs.Add(1) }

// Release drops a reference; the last one recycles a pool-born block.
func (b *Block) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		if b.pooled {
			blockPool.Put(b)
		}
	case n < 0:
		panic("wire: block reference released twice")
	}
}

// Refs reports the current reference count (tests).
func (b *Block) Refs() int32 { return b.refs.Load() }

// Data returns the block's frame bytes.
func (b *Block) Data() []byte { return b.buf }

// Span is a byte range of complete frames within one block. Append returns
// one per element (tests decode them); the delivery plane itself addresses
// the log through cursors, not spans.
type Span struct {
	Blk        *Block
	Start, End int
	Elems      int
}

// Bytes returns the span's framed bytes.
func (sp Span) Bytes() []byte { return sp.Blk.buf[sp.Start:sp.End] }

// Len returns the span's byte length.
func (sp Span) Len() int { return sp.End - sp.Start }

// FrameCut returns the longest whole-frame prefix of data that fits both the
// byte budget and the room bytes of output space, plus the number of frames
// in it. When the prefix is empty but data holds a frame, need reports that
// first frame's size — the caller distinguishes "credit short" (need >
// budget) from "output buffer short" (need > room). data must start at a
// frame boundary.
func FrameCut(data []byte, budget int64, room int) (take, frames, need int) {
	for take < len(data) {
		fl, ok := FrameSize(data[take:])
		if !ok || take+fl > len(data) {
			// Frames are whole by construction; a mismatch here would be
			// memory corruption, not wire damage. Stop rather than tear one.
			break
		}
		if int64(take+fl) > budget || take+fl > room {
			if take == 0 {
				need = fl
			}
			break
		}
		take += fl
		frames++
	}
	return take, frames, need
}

// Cursor is one subscriber's read position in a BlockLog: the absolute byte
// offset of the next unread frame. It costs a few words — not a stack, not a
// queue — which is what lets idle subscribers scale. All movement goes
// through the owning log (CopyOut/Advance/Detach); the log's per-block
// cursor counts keep every block at or ahead of the slowest cursor alive and
// release blocks the minimum cursor has passed.
type Cursor struct {
	pos      int64
	detached bool
}

// Pos returns the cursor's absolute byte position in the log.
func (c *Cursor) Pos() int64 { return c.pos }

// logBlock is one retained block of the log's window plus its retention
// bookkeeping: the absolute position of its first byte, the filled prefix,
// and how many cursors are positioned inside it.
type logBlock struct {
	blk     *Block
	start   int64
	fill    int
	sealed  bool
	cursors int
}

// BlockLog encodes merged-output elements once into a chain of shared blocks
// and retains the suffix of that chain still ahead of the slowest cursor.
// Append is the only mutator of the head and is additionally serialised by
// the server's output lock; cursor operations (attach, read, advance,
// detach) come from delivery workers concurrently and are serialised by the
// log's own mutex.
//
// Retention rule: every retained block holds the window's reference; the
// tail block is released as soon as it is sealed and no cursor remains
// inside it (the minimum cursor passed it). With no cursors attached a block
// is released the moment it seals — exactly the footprint of a server with
// no binary subscribers — and a laggard's retention is bounded by the credit
// deadline that eventually evicts it.
type BlockLog struct {
	mu      sync.Mutex
	win     []logBlock
	head    atomic.Int64 // total bytes appended; read lock-free by the delivery plane
	drained int          // cursors positioned exactly at head (nothing left to read)
	cursors int
	retain  int64 // filled bytes currently retained (gauge)
	scratch []byte
	tel     *obs.Wire
}

// NewBlockLog builds a log reporting into tel (nil-safe).
func NewBlockLog(tel *obs.Wire) *BlockLog { return &BlockLog{tel: tel} }

// Head returns the log's append position: the absolute offset one past the
// last published byte. It is an atomic load — the delivery plane polls it
// without touching the log lock to decide whether a parked subscriber has
// data.
func (l *BlockLog) Head() int64 { return l.head.Load() }

// Cursors returns the number of attached cursors.
func (l *BlockLog) Cursors() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cursors
}

// RetainedBytes returns the filled bytes currently held by the retention
// window (the slowest-reader suffix).
func (l *BlockLog) RetainedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.retain
}

// RetainedBlocks returns the number of blocks in the retention window.
func (l *BlockLog) RetainedBlocks() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.win)
}

// Append encodes e as one DATA frame at the tail of the open block (sealing
// it and opening a new one when full) and publishes the new head. The encode
// work happens exactly once regardless of how many cursors will read the
// frame. The returned span covers the new frame (tests decode it; delivery
// reads through cursors).
func (l *BlockLog) Append(e temporal.Element) Span {
	l.mu.Lock()
	l.scratch = AppendData(l.scratch[:0], e)
	n := len(l.scratch)
	head := l.head.Load()
	open := l.openLocked()
	if open == nil || open.fill+n > len(open.blk.buf) {
		l.sealLocked()
		l.win = append(l.win, logBlock{blk: newBlock(n), start: head})
		open = &l.win[len(l.win)-1]
	}
	start := open.fill
	copy(open.blk.buf[start:], l.scratch)
	open.fill += n
	// Cursors that had drained the log now point at the fresh bytes, which by
	// construction live in the (possibly brand-new) open block.
	open.cursors += l.drained
	l.drained = 0
	l.retain += int64(n)
	l.head.Store(head + int64(n))
	l.tel.FrameEncoded(n)
	sp := Span{Blk: open.blk, Start: start, End: start + n, Elems: 1}
	if open.fill == len(open.blk.buf) {
		// Exactly full — an oversized single-frame block always is — so no
		// later frame can land here: seal now, letting retention release it
		// the moment the last cursor passes instead of at the next append.
		l.sealLocked()
	}
	l.tel.SetRetained(l.retain, int64(len(l.win)))
	l.mu.Unlock()
	return sp
}

// Attach registers a new cursor at the current head: a fresh subscriber
// observes everything appended from this point on (history before it is
// served from the server backlog, outside the log). Attach and the backlog
// snapshot happen under the server's output lock, so history + cursor is
// exactly the merged stream.
func (l *BlockLog) Attach() *Cursor {
	l.mu.Lock()
	c := &Cursor{pos: l.head.Load()}
	l.cursors++
	l.drained++
	l.mu.Unlock()
	return c
}

// Detach removes a cursor and releases whatever tail of the window only it
// was holding. Idempotent: the delivery plane's close paths may race.
func (l *BlockLog) Detach(c *Cursor) {
	l.mu.Lock()
	if !c.detached {
		c.detached = true
		l.uncountLocked(c.pos)
		l.cursors--
		l.freeTailsLocked()
	}
	l.mu.Unlock()
}

// CopyOut copies the longest run of whole frames at the cursor that fits
// both dst and the byte budget, advancing the cursor past what it copied,
// and returns the bytes and frames taken. The copy crosses block boundaries;
// blocks the cursor finishes may be released before CopyOut returns, which
// is why delivery copies under the lock instead of holding block references
// across socket writes. When nothing fits, need reports the size of the next
// pending frame (0 if the cursor has drained the log): need > budget is a
// credit stall, need > len(dst) an oversized frame for the direct ReadAt
// path.
func (l *BlockLog) CopyOut(c *Cursor, dst []byte, budget int64) (n, frames, need int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	head := l.head.Load()
	for c.pos < head && n < len(dst) {
		b := &l.win[l.idxLocked(c.pos)]
		data := b.blk.buf[int(c.pos-b.start):b.fill]
		take, nf, nd := FrameCut(data, budget-int64(n), len(dst)-n)
		if take == 0 {
			if n == 0 {
				need = nd
			}
			return n, frames, need
		}
		copy(dst[n:], data[:take])
		n += take
		frames += nf
		l.advanceLocked(c, int64(take))
	}
	return n, frames, need
}

// ReadAt returns the unread remainder of the cursor's current block without
// copying, with one reference retained on the block for the caller. It
// serves frames too large for a pooled copy buffer: the caller writes
// directly from the block, then calls Advance and Release. ok is false when
// the cursor has drained the log.
func (l *BlockLog) ReadAt(c *Cursor) (data []byte, blk *Block, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.pos >= l.head.Load() {
		return nil, nil, false
	}
	b := &l.win[l.idxLocked(c.pos)]
	b.blk.Retain()
	return b.blk.buf[int(c.pos-b.start):b.fill], b.blk, true
}

// Advance moves the cursor n bytes forward (whole frames only — the caller
// cut at frame boundaries) and releases any tail blocks the minimum cursor
// has now passed.
func (l *BlockLog) Advance(c *Cursor, n int) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	l.advanceLocked(c, int64(n))
	l.mu.Unlock()
}

// Close seals the open block; whatever the window still retains for lagging
// cursors is released as they detach. The log must not be appended to
// afterwards.
func (l *BlockLog) Close() {
	l.mu.Lock()
	l.sealLocked()
	l.mu.Unlock()
}

// ---- internals (all under l.mu) ----

func (l *BlockLog) openLocked() *logBlock {
	if len(l.win) == 0 {
		return nil
	}
	if b := &l.win[len(l.win)-1]; !b.sealed {
		return b
	}
	return nil
}

// idxLocked maps an absolute position inside the window to its block index.
func (l *BlockLog) idxLocked(pos int64) int {
	return sort.Search(len(l.win), func(i int) bool {
		return l.win[i].start+int64(l.win[i].fill) > pos
	})
}

// advanceLocked moves a cursor and maintains the per-block cursor counts the
// retention rule runs on.
func (l *BlockLog) advanceLocked(c *Cursor, n int64) {
	if c.pos+n > l.head.Load() {
		panic("wire: cursor advanced past the log head")
	}
	l.uncountLocked(c.pos)
	c.pos += n
	l.countLocked(c.pos)
	l.freeTailsLocked()
}

func (l *BlockLog) countLocked(pos int64) {
	if pos == l.head.Load() {
		l.drained++
		return
	}
	l.win[l.idxLocked(pos)].cursors++
}

func (l *BlockLog) uncountLocked(pos int64) {
	if pos == l.head.Load() {
		l.drained--
		return
	}
	l.win[l.idxLocked(pos)].cursors--
}

// sealLocked marks the open block immutable. The block stays in the window
// until every cursor passes it (freeTailsLocked), so sealing no longer hands
// ownership anywhere — it just ends the append region.
func (l *BlockLog) sealLocked() {
	if b := l.openLocked(); b != nil {
		b.sealed = true
		l.tel.BlockSealed(b.fill)
		l.freeTailsLocked()
	}
}

// freeTailsLocked releases sealed tail blocks no cursor is still inside:
// the minimum cursor has passed them. Retention is contiguous — a cursorless
// block behind a laggard's block stays until the laggard moves — which keeps
// the bookkeeping O(1) amortised per block.
func (l *BlockLog) freeTailsLocked() {
	freed := false
	for len(l.win) > 0 && l.win[0].sealed && l.win[0].cursors == 0 {
		l.retain -= int64(l.win[0].fill)
		l.win[0].blk.Release()
		l.win[0] = logBlock{}
		l.win = l.win[1:]
		freed = true
	}
	if len(l.win) == 0 {
		l.win = nil // let the drained backing array go
	}
	if freed {
		l.tel.SetRetained(l.retain, int64(len(l.win)))
	}
}
