package wire

import (
	"sync"
	"sync/atomic"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// BlockCap is the target byte capacity of a shared block. Large enough that
// the per-block bookkeeping (sealing, refcount churn, one queue entry per
// block for a lagging subscriber) amortises over hundreds of element frames;
// small enough that a block becomes immutable — and collectable — promptly.
const BlockCap = 32 * 1024

// Block is an immutable run of complete DATA frames shared by reference
// across every subscriber queue: the encode-once, write-many unit of the
// broadcast path. The emit path appends frames to the open block's tail
// while subscriber writers concurrently read earlier regions; a region is
// published to a reader only via a queue push (mutex-ordered after the
// append), and the backing array never reallocates, so tail writes and
// region reads touch disjoint memory.
//
// Lifecycle is reference counted: a block starts with one reference held by
// its creator (the BlockLog's open-block reference, or the caller of
// NewBlockFromBytes), each queue entry referencing it adds one, and the last
// Release returns pool-born blocks to the pool. Every reference is released
// exactly once; over-release panics (refcount underflow) rather than risk
// recycling shared bytes.
// The buf slice header is fixed at creation (always full length) and never
// mutated afterwards: tail writes go through copy into the unpublished
// region, so concurrent readers of published spans never touch a word the
// appender is writing — neither the header nor the bytes.
type Block struct {
	buf    []byte
	refs   atomic.Int32
	pooled bool
}

var blockPool = sync.Pool{
	New: func() any { return &Block{buf: make([]byte, BlockCap), pooled: true} },
}

// newBlock returns a block with at least n bytes of capacity and one
// reference. Requests beyond BlockCap (an oversized single frame) get a
// dedicated unpooled block.
func newBlock(n int) *Block {
	if n <= BlockCap {
		b := blockPool.Get().(*Block)
		b.refs.Store(1)
		return b
	}
	b := &Block{buf: make([]byte, n)}
	b.refs.Store(1)
	return b
}

// NewBlockFromBytes wraps an already-encoded frame run (per-subscriber
// history catch-up) as a block with one reference held by the caller.
func NewBlockFromBytes(buf []byte) *Block {
	b := &Block{buf: buf}
	b.refs.Store(1)
	return b
}

// Retain adds a reference.
func (b *Block) Retain() { b.refs.Add(1) }

// Release drops a reference; the last one recycles a pool-born block.
func (b *Block) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		if b.pooled {
			blockPool.Put(b)
		}
	case n < 0:
		panic("wire: block reference released twice")
	}
}

// Refs reports the current reference count (tests).
func (b *Block) Refs() int32 { return b.refs.Load() }

// Data returns the block's frame bytes.
func (b *Block) Data() []byte { return b.buf }

// Span is a byte range of complete frames within one block, the unit queued
// to a subscriber. Adjacent spans of the same block coalesce in the queue,
// so a lagging subscriber holds ~one span per block, not one per element.
type Span struct {
	Blk        *Block
	Start, End int
	Elems      int
}

// Bytes returns the span's framed bytes.
func (sp Span) Bytes() []byte { return sp.Blk.buf[sp.Start:sp.End] }

// Len returns the span's byte length.
func (sp Span) Len() int { return sp.End - sp.Start }

// BlockLog encodes merged-output elements once into a chain of shared
// blocks. Append is the only mutator and must be externally serialised (the
// server calls it under its output lock); everything it returns is immutable.
type BlockLog struct {
	open    *Block
	fill    int // bytes of open.buf written so far (the unpublished tail starts here)
	scratch []byte
	tel     *obs.Wire
}

// NewBlockLog builds a log reporting into tel (nil-safe).
func NewBlockLog(tel *obs.Wire) *BlockLog { return &BlockLog{tel: tel} }

// Append encodes e as one DATA frame at the tail of the open block (sealing
// it and opening a new one when full) and returns the span covering the new
// frame. The caller fans the span out to subscriber queues; the encode work
// happened exactly once regardless of how many queues share it.
func (l *BlockLog) Append(e temporal.Element) Span {
	l.scratch = AppendData(l.scratch[:0], e)
	n := len(l.scratch)
	if l.open == nil || l.fill+n > len(l.open.buf) {
		l.seal()
		l.open = newBlock(n)
	}
	start := l.fill
	copy(l.open.buf[start:], l.scratch)
	l.fill = start + n
	l.tel.FrameEncoded(n)
	return Span{Blk: l.open, Start: start, End: start + n, Elems: 1}
}

// seal releases the log's reference on the open block: from here on only
// subscriber queue entries keep it alive.
func (l *BlockLog) seal() {
	if l.open == nil {
		return
	}
	l.tel.BlockSealed(l.fill)
	l.open.Release()
	l.open, l.fill = nil, 0
}

// Close seals the open block. The log must not be appended to afterwards.
func (l *BlockLog) Close() { l.seal() }
