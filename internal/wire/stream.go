package wire

import (
	"bufio"
	"fmt"
	"io"

	"lmerge/internal/temporal"
)

// Stream-file container: the v2 preamble followed by one DATA frame per
// element. cmd/lmcat reads and writes it as the binary alternative to the
// JSON-lines format (temporal.WriteStream/ReadStream); the frames are
// byte-identical to what travels the v2 wire, so a captured subscriber feed
// is directly replayable.

// WriteStream writes s in the binary stream-file format.
func WriteStream(w io.Writer, s temporal.Stream) error {
	bw := bufio.NewWriter(w)
	bw.Write(AppendPreamble(nil))
	var buf []byte
	for _, e := range s {
		buf = AppendData(buf[:0], e)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStream reads a binary stream file until EOF. The reader must be
// positioned at the preamble. A torn final frame is an error (files, unlike
// sockets, should end cleanly).
func ReadStream(r io.Reader) (temporal.Stream, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var pre [PreambleLen]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("wire: reading preamble: %w", err)
	}
	if err := CheckPreamble(pre[:]); err != nil {
		return nil, err
	}
	fr := NewReader(br)
	var out temporal.Stream
	for i := 0; ; i++ {
		typ, body, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("wire: frame %d: %w", i, err)
		}
		if typ != FrData {
			return nil, fmt.Errorf("wire: frame %d: unexpected type 0x%02x in stream file", i, typ)
		}
		e, err := DecodeData(body)
		if err != nil {
			return nil, fmt.Errorf("wire: frame %d: %w", i, err)
		}
		out = append(out, e)
	}
}

// SniffStream reports whether the buffered reader is positioned at a binary
// stream-file preamble (cmd/lmcat auto-detects input formats with it).
func SniffStream(br *bufio.Reader) bool {
	p, err := br.Peek(2)
	return err == nil && p[0] == Magic0 && p[1] == Magic1
}
