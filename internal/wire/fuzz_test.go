package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"lmerge/internal/temporal"
)

// corruptWindow mirrors the chaos harness's text-mode corruption shape: a
// window of the frame overwritten with '#'.
func corruptWindow(frame []byte, at, n int) []byte {
	b := append([]byte(nil), frame...)
	for i := at; i < at+n && i < len(b); i++ {
		b[i] = '#'
	}
	return b
}

// FuzzBinaryFrame feeds arbitrary bytes through the v2 frame decoder.
// Invariants (mirroring FuzzParseFrame for the v1 text handshake): never
// panic, never accept a structurally invalid frame, and every accepted frame
// re-encodes canonically to bytes that decode back to the same (type, body) —
// with DATA bodies additionally round-tripping through the element codec.
func FuzzBinaryFrame(f *testing.F) {
	seeds := [][]byte{
		AppendHelloPub(nil, 42),
		AppendHelloSub(nil, 917, 1<<20),
		AppendOK(nil, 1, -9223372036854775808),
		AppendErr(nil, "bad hello"),
		AppendData(nil, temporal.Insert(temporal.Payload{ID: 3, Data: "abc"}, 5, 9)),
		AppendData(nil, temporal.Adjust(temporal.P(1), 2, 8, 4)),
		AppendData(nil, temporal.Stable(temporal.Infinity)),
		AppendCredit(nil, 65536),
		AppendFF(nil, 12),
		AppendDetach(nil, "straggler"),
		AppendAck(nil),
		AppendPreamble(nil),
	}
	var all []byte
	for _, s := range seeds {
		f.Add(s)
		all = append(all, s...)
		// Chaos-style corruption and truncation of valid frames.
		f.Add(corruptWindow(s, 2, 3))
		f.Add(corruptWindow(s, FrameHeader, 4))
		f.Add(s[:len(s)-1])
		f.Add(s[1:])
	}
	f.Add(all) // several frames back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, n, err := DecodeFrame(data)
		if err != nil {
			// Rejections must be classified: torn (more bytes may repair) or
			// terminal (corrupt / too large).
			if !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, ErrFrameCorrupt) &&
				!errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < FrameHeader+1 || n > len(data) {
			t.Fatalf("decoded frame claims %d of %d bytes", n, len(data))
		}
		if fl, ok := FrameSize(data); !ok || fl != n {
			t.Fatalf("FrameSize %d/%v disagrees with DecodeFrame %d", fl, ok, n)
		}
		// Canonical re-encode: the same (type, body) framed by our encoder
		// must be byte-identical to what was accepted.
		canon, base := beginFrame(nil, typ)
		canon = append(canon, body...)
		canon = endFrame(canon, base)
		if !bytes.Equal(canon, data[:n]) {
			t.Fatalf("accepted frame is not canonical:\n got %x\nwant %x", data[:n], canon)
		}
		typ2, body2, n2, err2 := DecodeFrame(canon)
		if err2 != nil || typ2 != typ || n2 != n || !bytes.Equal(body2, body) {
			t.Fatalf("canonical frame does not round-trip: %v", err2)
		}
		// Typed bodies must round-trip through their parsers at the value
		// level (byte equality is too strong: varint decoding tolerates
		// non-minimal encodings, the canonical re-encode does not reproduce
		// them).
		switch typ {
		case FrData:
			e, derr := DecodeData(body)
			if derr != nil {
				return // framing fine, element body invalid — rejected, not panicked
			}
			re := AppendData(nil, e)
			rtyp, rbody, rn, rerr := DecodeFrame(re)
			if rerr != nil || rtyp != FrData || rn != len(re) {
				t.Fatalf("DATA re-encode unparseable: %v", rerr)
			}
			if e2, derr2 := DecodeData(rbody); derr2 != nil || e2 != e {
				t.Fatalf("DATA element value round trip diverged: %+v -> %+v (%v)", e, e2, derr2)
			}
		case FrHelloSub:
			if from, credit, perr := ParseHelloSub(body); perr == nil {
				if from < 0 || credit < 0 {
					t.Fatalf("hello_sub parsed negative fields: %d %d", from, credit)
				}
				re := AppendHelloSub(nil, from, credit)
				_, rbody, _, rerr := DecodeFrame(re)
				if rerr != nil {
					t.Fatalf("HELLO_SUB re-encode unparseable: %v", rerr)
				}
				if f2, c2, perr2 := ParseHelloSub(rbody); perr2 != nil || f2 != from || c2 != credit {
					t.Fatalf("HELLO_SUB value round trip diverged: (%d,%d) -> (%d,%d)", from, credit, f2, c2)
				}
			}
		case FrCredit:
			if c, perr := ParseCredit(body); perr == nil {
				if c < 0 {
					t.Fatalf("credit parsed negative: %d", c)
				}
				re := AppendCredit(nil, c)
				_, rbody, _, rerr := DecodeFrame(re)
				if rerr != nil {
					t.Fatalf("CREDIT re-encode unparseable: %v", rerr)
				}
				if c2, perr2 := ParseCredit(rbody); perr2 != nil || c2 != c {
					t.Fatalf("CREDIT value round trip diverged: %d -> %d", c, c2)
				}
			}
		}
	})
}
