package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"lmerge/internal/temporal"
)

// corruptWindow mirrors the chaos harness's text-mode corruption shape: a
// window of the frame overwritten with '#'.
func corruptWindow(frame []byte, at, n int) []byte {
	b := append([]byte(nil), frame...)
	for i := at; i < at+n && i < len(b); i++ {
		b[i] = '#'
	}
	return b
}

// FuzzBinaryFrame feeds arbitrary bytes through the v2 frame decoder.
// Invariants (mirroring FuzzParseFrame for the v1 text handshake): never
// panic, never accept a structurally invalid frame, and every accepted frame
// re-encodes canonically to bytes that decode back to the same (type, body) —
// with DATA bodies additionally round-tripping through the element codec.
func FuzzBinaryFrame(f *testing.F) {
	seeds := [][]byte{
		AppendHelloPub(nil, 42),
		AppendHelloSub(nil, 917, 1<<20),
		AppendOK(nil, 1, -9223372036854775808),
		AppendErr(nil, "bad hello"),
		AppendData(nil, temporal.Insert(temporal.Payload{ID: 3, Data: "abc"}, 5, 9)),
		AppendData(nil, temporal.Adjust(temporal.P(1), 2, 8, 4)),
		AppendData(nil, temporal.Stable(temporal.Infinity)),
		AppendCredit(nil, 65536),
		AppendFF(nil, 12),
		AppendDetach(nil, "straggler"),
		AppendAck(nil),
		AppendPreamble(nil),
	}
	var all []byte
	for _, s := range seeds {
		f.Add(s)
		all = append(all, s...)
		// Chaos-style corruption and truncation of valid frames.
		f.Add(corruptWindow(s, 2, 3))
		f.Add(corruptWindow(s, FrameHeader, 4))
		f.Add(s[:len(s)-1])
		f.Add(s[1:])
	}
	f.Add(all) // several frames back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, n, err := DecodeFrame(data)
		if err != nil {
			// Rejections must be classified: torn (more bytes may repair) or
			// terminal (corrupt / too large).
			if !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, ErrFrameCorrupt) &&
				!errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < FrameHeader+1 || n > len(data) {
			t.Fatalf("decoded frame claims %d of %d bytes", n, len(data))
		}
		if fl, ok := FrameSize(data); !ok || fl != n {
			t.Fatalf("FrameSize %d/%v disagrees with DecodeFrame %d", fl, ok, n)
		}
		// Canonical re-encode: the same (type, body) framed by our encoder
		// must be byte-identical to what was accepted.
		canon, base := beginFrame(nil, typ)
		canon = append(canon, body...)
		canon = endFrame(canon, base)
		if !bytes.Equal(canon, data[:n]) {
			t.Fatalf("accepted frame is not canonical:\n got %x\nwant %x", data[:n], canon)
		}
		typ2, body2, n2, err2 := DecodeFrame(canon)
		if err2 != nil || typ2 != typ || n2 != n || !bytes.Equal(body2, body) {
			t.Fatalf("canonical frame does not round-trip: %v", err2)
		}
		// Typed bodies must round-trip through their parsers at the value
		// level (byte equality is too strong: varint decoding tolerates
		// non-minimal encodings, the canonical re-encode does not reproduce
		// them).
		switch typ {
		case FrData:
			e, derr := DecodeData(body)
			if derr != nil {
				return // framing fine, element body invalid — rejected, not panicked
			}
			re := AppendData(nil, e)
			rtyp, rbody, rn, rerr := DecodeFrame(re)
			if rerr != nil || rtyp != FrData || rn != len(re) {
				t.Fatalf("DATA re-encode unparseable: %v", rerr)
			}
			if e2, derr2 := DecodeData(rbody); derr2 != nil || e2 != e {
				t.Fatalf("DATA element value round trip diverged: %+v -> %+v (%v)", e, e2, derr2)
			}
		case FrHelloSub:
			if from, credit, perr := ParseHelloSub(body); perr == nil {
				if from < 0 || credit < 0 {
					t.Fatalf("hello_sub parsed negative fields: %d %d", from, credit)
				}
				re := AppendHelloSub(nil, from, credit)
				_, rbody, _, rerr := DecodeFrame(re)
				if rerr != nil {
					t.Fatalf("HELLO_SUB re-encode unparseable: %v", rerr)
				}
				if f2, c2, perr2 := ParseHelloSub(rbody); perr2 != nil || f2 != from || c2 != credit {
					t.Fatalf("HELLO_SUB value round trip diverged: (%d,%d) -> (%d,%d)", from, credit, f2, c2)
				}
			}
		case FrCredit:
			if c, perr := ParseCredit(body); perr == nil {
				if c < 0 {
					t.Fatalf("credit parsed negative: %d", c)
				}
				re := AppendCredit(nil, c)
				_, rbody, _, rerr := DecodeFrame(re)
				if rerr != nil {
					t.Fatalf("CREDIT re-encode unparseable: %v", rerr)
				}
				if c2, perr2 := ParseCredit(rbody); perr2 != nil || c2 != c {
					t.Fatalf("CREDIT value round trip diverged: %d -> %d", c, c2)
				}
			}
		}
	})
}

// FuzzCreditLedger fuzzes the credit/cursor control plane end to end: an
// op-coded byte stream drives appends, cursor attach/detach/copy-out, and
// CREDIT grants that travel as real frames (split across arbitrary write
// boundaries, then coalesced off a buffered reader exactly the way the
// server's on-demand credit reader batches them). Invariants: parsed grants
// sum to what was sent, the per-cursor credit ledger never goes negative,
// cursor reads are byte-identical to a shadow stream (resume positions are
// exact), and the retention window drains to zero at teardown.
func FuzzCreditLedger(f *testing.F) {
	f.Add([]byte{0, 10, 2, 4, 0xff, 0x01, 1, 5, 40, 0, 200, 5, 255, 3, 0})
	f.Add([]byte{2, 2, 0, 1, 0, 255, 4, 100, 0, 2, 5, 10, 5, 10, 3, 1, 0, 3})
	f.Add(bytes.Repeat([]byte{0, 64, 4, 16, 1, 5, 128}, 24))
	f.Fuzz(func(t *testing.T, ops []byte) {
		l := NewBlockLog(nil)
		var model []byte
		type cur struct {
			c      *Cursor
			pos    int64
			credit int64
		}
		var curs []*cur
		dst := make([]byte, 8192)
		next := func() byte {
			if len(ops) == 0 {
				return 0
			}
			b := ops[0]
			ops = ops[1:]
			return b
		}
		for step := 0; len(ops) > 0 && step < 1024; step++ {
			switch next() % 6 {
			case 0: // small append
				e := temporal.Insert(temporal.Payload{ID: int64(step), Data: string(bytes.Repeat([]byte{'a'}, int(next())*8))},
					temporal.Time(step), temporal.Time(step+1))
				model = AppendData(model, e)
				l.Append(e)
			case 1: // oversized append (dedicated block)
				e := temporal.Insert(temporal.Payload{ID: int64(step), Data: string(bytes.Repeat([]byte{'B'}, BlockCap+int(next())))},
					temporal.Time(step), temporal.Infinity)
				model = AppendData(model, e)
				l.Append(e)
			case 2: // attach at head (a resume position: history is pre-cursor)
				if len(curs) < 4 {
					curs = append(curs, &cur{c: l.Attach(), pos: l.Head()})
				}
			case 3: // detach
				if len(curs) > 0 {
					i := int(next()) % len(curs)
					l.Detach(curs[i].c)
					curs = append(curs[:i], curs[i+1:]...)
				}
			case 4: // grant: as real CREDIT frames, split and coalesced
				if len(curs) == 0 {
					continue
				}
				cm := curs[int(next())%len(curs)]
				parts := 1 + int(next())%3
				var sent int64
				var frames []byte
				for i := 0; i < parts; i++ {
					amt := int64(next())*16 + 1
					sent += amt
					frames = AppendCredit(frames, amt)
				}
				fr := NewReader(bufio.NewReader(bytes.NewReader(frames)))
				var got int64
				for {
					typ, body, err := fr.Next()
					if err != nil {
						break
					}
					if typ != FrCredit {
						t.Fatalf("credit stream produced frame type 0x%02x", typ)
					}
					n, perr := ParseCredit(body)
					if perr != nil {
						t.Fatalf("credit frame failed to parse: %v", perr)
					}
					got += n
					// Mirror the server's batching: fold everything already
					// buffered into the same grant.
					for fr.Buffered() > 0 {
						typ2, body2, err2 := fr.Next()
						if err2 != nil {
							break
						}
						if typ2 == FrCredit {
							if n2, perr2 := ParseCredit(body2); perr2 == nil {
								got += n2
							}
						}
					}
				}
				if got != sent {
					t.Fatalf("coalesced grants %d != sent %d", got, sent)
				}
				cm.credit += got
			case 5: // copy-out under the ledger
				if len(curs) == 0 {
					continue
				}
				cm := curs[int(next())%len(curs)]
				room := int(next())*64 + 1
				if room > len(dst) {
					room = len(dst)
				}
				n, _, need := l.CopyOut(cm.c, dst[:room], cm.credit)
				if int64(n) > cm.credit {
					t.Fatalf("CopyOut overdrew the ledger: %d of %d", n, cm.credit)
				}
				cm.credit -= int64(n)
				if cm.credit < 0 {
					t.Fatalf("credit went negative: %d", cm.credit)
				}
				if !bytes.Equal(dst[:n], model[cm.pos:cm.pos+int64(n)]) {
					t.Fatalf("cursor read diverged from the stream at pos %d", cm.pos)
				}
				cm.pos += int64(n)
				if cm.pos != cm.c.Pos() {
					t.Fatalf("ledger pos %d != cursor pos %d", cm.pos, cm.c.Pos())
				}
				if n == 0 && need > 0 && int64(need) <= cm.credit && need <= room {
					t.Fatalf("CopyOut refused a frame that fits credit %d and room %d", cm.credit, room)
				}
				if need == 0 && n == 0 && cm.pos != l.Head() {
					// Oversized-frame path: the direct read must hand back
					// exactly the next frame.
					data, blk, ok := l.ReadAt(cm.c)
					if !ok {
						t.Fatalf("drained report but ReadAt sees data at %d", cm.pos)
					}
					fl, fok := FrameSize(data)
					if !fok || !bytes.Equal(data[:fl], model[cm.pos:cm.pos+int64(fl)]) {
						blk.Release()
						t.Fatalf("direct read diverged at pos %d", cm.pos)
					}
					l.Advance(cm.c, fl)
					blk.Release()
					cm.pos += int64(fl)
				}
			}
		}
		for _, cm := range curs {
			l.Detach(cm.c)
		}
		l.Close()
		if b, n := l.RetainedBytes(), l.RetainedBlocks(); b != 0 || n != 0 {
			t.Fatalf("retention window leaked: %d bytes in %d blocks", b, n)
		}
	})
}
