// Package wire is the binary wire protocol (v2) of the merge service:
// length-prefixed CRC-framed messages behind a magic + version-negotiation
// preamble, so the v1 text protocol (JSON lines, internal/server) stays
// reachable for old clients on the same listener port.
//
// A v2 connection opens with the three-byte preamble 'L' 'M' <version>; the
// server distinguishes protocols by the first byte ('H' of "HELLO" versus
// 'L'). Every subsequent message, in both directions, is one frame:
//
//	length   uint32 LE — byte length of the payload
//	crc      uint32 LE — IEEE CRC-32 of the payload
//	payload  type byte + type-specific body
//
// The CRC makes corruption detection the receiver's job (the chaos injector
// garbles frames in flight); a frame that fails its checksum, claims an
// implausible length, or ends early poisons the connection — the receiver
// drops it and the resilient clients reconnect and resume.
//
// Frame grammar ("Stream Types", PAPERS.md, is the reference for treating
// the handshake and frame grammar as a typed protocol with machine-checkable
// invariants — see the canonical round-trip obligations in FuzzBinaryFrame):
//
//	HELLO_PUB joinTime                          client→server, once
//	HELLO_SUB from credit                       client→server, once (pipelined
//	                                            resume: position + initial
//	                                            credit grant in one round trip)
//	OK        id stable                         server→client handshake reply
//	ERR       message                           either direction, terminal
//	DATA      element                           publisher batches and the
//	                                            merged output, one element per
//	                                            frame (core binary codec)
//	CREDIT    bytes                             subscriber→server flow-control
//	                                            grant (credit-based
//	                                            backpressure)
//	FF        t                                 server→publisher fast-forward
//	DETACH    reason                            server→publisher force-detach
//	ACK                                         server→publisher end-of-stream
//
// Timestamps and counts are varints (the core element codec's conventions).
// The DATA body is exactly one core.AppendElement encoding, which makes a
// sealed run of DATA frames self-delimiting: the broadcast fan-out path
// (block.go) encodes each merged element once into an immutable refcounted
// block and every subscriber queue shares the same framed bytes.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lmerge/internal/core"
	"lmerge/internal/temporal"
)

// Version is the protocol generation this package speaks. The preamble
// carries it so a future v3 can negotiate past us.
const Version = 2

// Magic0 and Magic1 open every binary connection. Magic0 is the byte the
// server peeks to route between protocols; it can never begin a valid v1
// handshake ("HELLO ..." starts with 'H').
const (
	Magic0 = 'L'
	Magic1 = 'M'
)

// PreambleLen is the byte length of the connection preamble.
const PreambleLen = 3

// Frame types.
const (
	FrHelloPub byte = 0x01 // joinTime varint
	FrHelloSub byte = 0x02 // from uvarint, credit uvarint
	FrOK       byte = 0x03 // id varint, stable varint
	FrErr      byte = 0x04 // utf-8 message
	FrData     byte = 0x05 // one element, core binary codec
	FrCredit   byte = 0x06 // bytes uvarint
	FrFF       byte = 0x07 // t varint
	FrDetach   byte = 0x08 // utf-8 reason
	FrAck      byte = 0x09 // empty
)

// FrameHeader is the fixed frame overhead: length + crc.
const FrameHeader = 8

// MaxFrameLen caps a frame's claimed payload length. A corrupted length
// field can claim up to 4 GiB; refusing anything implausibly large keeps a
// garbled header from provoking giant allocations.
const MaxFrameLen = 1 << 24

// ErrFrameCorrupt reports a frame whose checksum or structure is invalid.
var ErrFrameCorrupt = errors.New("wire: corrupt frame")

// ErrFrameTooLarge reports a frame whose length field exceeds MaxFrameLen.
var ErrFrameTooLarge = errors.New("wire: frame too large")

// ErrBadPreamble reports a connection preamble with the wrong magic or an
// unsupported version.
var ErrBadPreamble = errors.New("wire: bad preamble")

// AppendPreamble appends the v2 connection preamble.
func AppendPreamble(buf []byte) []byte {
	return append(buf, Magic0, Magic1, Version)
}

// CheckPreamble validates a connection preamble.
func CheckPreamble(p []byte) error {
	if len(p) < PreambleLen || p[0] != Magic0 || p[1] != Magic1 {
		return fmt.Errorf("%w: not a v2 connection", ErrBadPreamble)
	}
	if p[2] != Version {
		return fmt.Errorf("%w: unsupported version %d (speaking %d)", ErrBadPreamble, p[2], Version)
	}
	return nil
}

// beginFrame reserves the header and writes the type byte; endFrame backfills
// length and checksum once the body is in place.
func beginFrame(buf []byte, typ byte) ([]byte, int) {
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, typ)
	return buf, base
}

func endFrame(buf []byte, base int) []byte {
	payload := buf[base+FrameHeader:]
	binary.LittleEndian.PutUint32(buf[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[base+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// AppendHelloPub appends a publisher handshake frame.
func AppendHelloPub(buf []byte, joinTime temporal.Time) []byte {
	buf, base := beginFrame(buf, FrHelloPub)
	buf = binary.AppendVarint(buf, int64(joinTime))
	return endFrame(buf, base)
}

// AppendHelloSub appends a subscriber handshake frame: positional resume
// after the first `from` merged elements, plus the initial byte-credit grant
// — position and flow-control window in one round trip.
func AppendHelloSub(buf []byte, from int, credit int64) []byte {
	buf, base := beginFrame(buf, FrHelloSub)
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(credit))
	return endFrame(buf, base)
}

// AppendOK appends the server's handshake reply: the assigned stream id
// (publishers; 0 for subscribers) and the merged output's stable point.
func AppendOK(buf []byte, id int64, stable temporal.Time) []byte {
	buf, base := beginFrame(buf, FrOK)
	buf = binary.AppendVarint(buf, id)
	buf = binary.AppendVarint(buf, int64(stable))
	return endFrame(buf, base)
}

// AppendErr appends a terminal error frame.
func AppendErr(buf []byte, msg string) []byte {
	buf, base := beginFrame(buf, FrErr)
	buf = append(buf, msg...)
	return endFrame(buf, base)
}

// AppendData appends one element as a complete DATA frame. This is the
// encode-once unit of the broadcast path: the frame bytes are immutable once
// written and are shared verbatim across every subscriber connection.
func AppendData(buf []byte, e temporal.Element) []byte {
	buf, base := beginFrame(buf, FrData)
	buf = core.AppendElement(buf, e)
	return endFrame(buf, base)
}

// AppendCredit appends a subscriber flow-control grant of n bytes.
func AppendCredit(buf []byte, n int64) []byte {
	buf, base := beginFrame(buf, FrCredit)
	buf = binary.AppendUvarint(buf, uint64(n))
	return endFrame(buf, base)
}

// AppendFF appends a fast-forward signal.
func AppendFF(buf []byte, t temporal.Time) []byte {
	buf, base := beginFrame(buf, FrFF)
	buf = binary.AppendVarint(buf, int64(t))
	return endFrame(buf, base)
}

// AppendDetach appends a force-detach notice.
func AppendDetach(buf []byte, reason string) []byte {
	buf, base := beginFrame(buf, FrDetach)
	buf = append(buf, reason...)
	return endFrame(buf, base)
}

// AppendAck appends an end-of-stream acknowledgment.
func AppendAck(buf []byte) []byte {
	buf, base := beginFrame(buf, FrAck)
	return endFrame(buf, base)
}

// FrameSize reports the total on-wire size (header + payload) of the frame
// at the head of data, reading only the length field. ok is false when fewer
// than 4 bytes are available or the length is implausible. The broadcast
// writer uses it to split a shared block at frame boundaries when a
// subscriber's remaining credit does not cover the whole block.
func FrameSize(data []byte) (int, bool) {
	if len(data) < 4 {
		return 0, false
	}
	n := binary.LittleEndian.Uint32(data)
	if n == 0 || n > MaxFrameLen {
		return 0, false
	}
	return FrameHeader + int(n), true
}

// DecodeFrame decodes one frame from the head of data, returning the type,
// the body (aliasing data), and the bytes consumed. io.ErrUnexpectedEOF
// means the frame is cut short (more bytes may repair it — the stream-file
// reader treats a torn tail this way); ErrFrameCorrupt and ErrFrameTooLarge
// are terminal.
func DecodeFrame(data []byte) (typ byte, body []byte, n int, err error) {
	if len(data) < FrameHeader {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	plen := binary.LittleEndian.Uint32(data)
	if plen == 0 {
		return 0, nil, 0, fmt.Errorf("%w: empty payload", ErrFrameCorrupt)
	}
	if plen > MaxFrameLen {
		return 0, nil, 0, fmt.Errorf("%w: payload claims %d bytes", ErrFrameTooLarge, plen)
	}
	total := FrameHeader + int(plen)
	if len(data) < total {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	payload := data[FrameHeader:total]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:]) {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return payload[0], payload[1:], total, nil
}

// Reader reads frames from a buffered connection, reusing one payload
// buffer: the body returned by Next is valid only until the next call.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r for frame reading.
func NewReader(r *bufio.Reader) *Reader { return &Reader{r: r} }

// Buffered reports how many payload bytes are immediately available,
// mirroring bufio.Reader.Buffered — the server's publisher handler flushes
// its batch when the connection has no more buffered input.
func (fr *Reader) Buffered() int { return fr.r.Buffered() }

// Next reads one frame. A clean EOF at a frame boundary returns io.EOF; a
// torn frame returns io.ErrUnexpectedEOF; a checksum or structure failure
// returns ErrFrameCorrupt (the connection should be dropped).
func (fr *Reader) Next() (typ byte, body []byte, err error) {
	var hdr [FrameHeader]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[:])
	if plen == 0 {
		return 0, nil, fmt.Errorf("%w: empty payload", ErrFrameCorrupt)
	}
	if plen > MaxFrameLen {
		return 0, nil, fmt.Errorf("%w: payload claims %d bytes", ErrFrameTooLarge, plen)
	}
	if cap(fr.buf) < int(plen) {
		fr.buf = make([]byte, plen)
	}
	payload := fr.buf[:plen]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return payload[0], payload[1:], nil
}

// ---- body parsers ----

func getVarint(body []byte) (int64, []byte, error) {
	v, n := binary.Varint(body)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrFrameCorrupt)
	}
	return v, body[n:], nil
}

func getUvarint(body []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrFrameCorrupt)
	}
	return v, body[n:], nil
}

func wantEmpty(body []byte) error {
	if len(body) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrameCorrupt, len(body))
	}
	return nil
}

// ParseHelloPub parses a HELLO_PUB body.
func ParseHelloPub(body []byte) (temporal.Time, error) {
	v, rest, err := getVarint(body)
	if err != nil {
		return 0, err
	}
	return temporal.Time(v), wantEmpty(rest)
}

// ParseHelloSub parses a HELLO_SUB body.
func ParseHelloSub(body []byte) (from int, credit int64, err error) {
	f, rest, err := getUvarint(body)
	if err != nil {
		return 0, 0, err
	}
	c, rest, err := getUvarint(rest)
	if err != nil {
		return 0, 0, err
	}
	if f > uint64(int64(^uint64(0)>>2)) || c > uint64(int64(^uint64(0)>>1)) {
		return 0, 0, fmt.Errorf("%w: hello fields overflow", ErrFrameCorrupt)
	}
	return int(f), int64(c), wantEmpty(rest)
}

// ParseOK parses an OK body.
func ParseOK(body []byte) (id int64, stable temporal.Time, err error) {
	id, rest, err := getVarint(body)
	if err != nil {
		return 0, 0, err
	}
	st, rest, err := getVarint(rest)
	if err != nil {
		return 0, 0, err
	}
	return id, temporal.Time(st), wantEmpty(rest)
}

// ParseCredit parses a CREDIT body. Grants are non-negative by construction
// (uvarint), so server-side credit accounting can never be driven negative
// by a client.
func ParseCredit(body []byte) (int64, error) {
	v, rest, err := getUvarint(body)
	if err != nil {
		return 0, err
	}
	if v > uint64(int64(^uint64(0)>>1)) {
		return 0, fmt.Errorf("%w: credit overflow", ErrFrameCorrupt)
	}
	return int64(v), wantEmpty(rest)
}

// ParseFF parses an FF body.
func ParseFF(body []byte) (temporal.Time, error) {
	v, rest, err := getVarint(body)
	if err != nil {
		return 0, err
	}
	return temporal.Time(v), wantEmpty(rest)
}

// DecodeData decodes a DATA body, which must hold exactly one element.
func DecodeData(body []byte) (temporal.Element, error) {
	e, n, err := core.DecodeElement(body)
	if err != nil {
		return temporal.Element{}, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
	}
	if n != len(body) {
		return temporal.Element{}, fmt.Errorf("%w: %d trailing bytes after element", ErrFrameCorrupt, len(body)-n)
	}
	return e, nil
}
