package wire

import (
	"strings"
	"testing"

	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// TestBlockLogEncodeOnce: appended spans are contiguous complete frames that
// decode back to the appended elements, and frames for consecutive elements
// land in the same block until it fills.
func TestBlockLogEncodeOnce(t *testing.T) {
	tel := &obs.Wire{}
	l := NewBlockLog(tel)
	defer l.Close()
	els := sampleElements()
	spans := make([]Span, len(els))
	for i, e := range els {
		spans[i] = l.Append(e)
		spans[i].Blk.Retain() // simulate one queue entry per span
	}
	for i, sp := range spans {
		if sp.Elems != 1 {
			t.Fatalf("span %d holds %d elements", i, sp.Elems)
		}
		typ, body, n, err := DecodeFrame(sp.Bytes())
		if err != nil || typ != FrData || n != sp.Len() {
			t.Fatalf("span %d: typ=0x%02x n=%d err=%v", i, typ, n, err)
		}
		e, derr := DecodeData(body)
		if derr != nil || e != els[i] {
			t.Fatalf("span %d decode: %+v %v", i, e, derr)
		}
	}
	// Small elements share one open block, contiguously.
	for i := 1; i < len(spans); i++ {
		if spans[i].Blk != spans[0].Blk || spans[i].Start != spans[i-1].End {
			t.Fatalf("span %d not contiguous in the shared block", i)
		}
	}
	snap := tel.Snapshot()
	if snap.FramesEncoded != int64(len(els)) {
		t.Fatalf("frames_encoded = %d, want %d", snap.FramesEncoded, len(els))
	}
	for _, sp := range spans {
		sp.Blk.Release()
	}
}

// TestBlockLogSealsAtCapacity: a payload stream larger than BlockCap rolls
// over to fresh blocks; sealed blocks survive (and stay intact) as long as a
// reference remains.
func TestBlockLogSealsAtCapacity(t *testing.T) {
	tel := &obs.Wire{}
	l := NewBlockLog(tel)
	defer l.Close()
	big := temporal.Payload{ID: 9, Data: strings.Repeat("x", 4096)}
	var spans []Span
	for i := 0; i < 32; i++ { // ~128 KiB of frames, > 4 blocks
		sp := l.Append(temporal.Insert(big, temporal.Time(i), temporal.Time(i+10)))
		sp.Blk.Retain()
		spans = append(spans, sp)
	}
	blocks := map[*Block]bool{}
	for _, sp := range spans {
		blocks[sp.Blk] = true
	}
	if len(blocks) < 4 {
		t.Fatalf("expected >= 4 blocks for 128KiB of frames, got %d", len(blocks))
	}
	if sealed := tel.Snapshot().BlocksSealed; sealed < int64(len(blocks)-1) {
		t.Fatalf("blocks_sealed = %d with %d blocks", sealed, len(blocks))
	}
	// Every span still decodes after its block was sealed.
	for i, sp := range spans {
		typ, body, _, err := DecodeFrame(sp.Bytes())
		if err != nil || typ != FrData {
			t.Fatalf("sealed span %d: %v", i, err)
		}
		if e, derr := DecodeData(body); derr != nil || e.Vs != temporal.Time(i) {
			t.Fatalf("sealed span %d decoded wrong: %+v %v", i, e, derr)
		}
		sp.Blk.Release()
	}
}

// TestBlockRefcount: an oversized (unpooled) block exposes the raw count; a
// double release panics instead of recycling shared bytes.
func TestBlockRefcount(t *testing.T) {
	b := NewBlockFromBytes(AppendAck(nil))
	if b.Refs() != 1 {
		t.Fatalf("fresh block refs = %d", b.Refs())
	}
	b.Retain()
	b.Retain()
	if b.Refs() != 3 {
		t.Fatalf("refs = %d after two retains", b.Refs())
	}
	b.Release()
	b.Release()
	b.Release()
	if b.Refs() != 0 {
		t.Fatalf("refs = %d after balanced releases", b.Refs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	b.Release()
}

// TestBlockLogSingleFrameOverCap: one frame larger than BlockCap gets a
// dedicated block rather than being torn.
func TestBlockLogSingleFrameOverCap(t *testing.T) {
	l := NewBlockLog(nil)
	defer l.Close()
	huge := temporal.Payload{ID: 1, Data: strings.Repeat("y", BlockCap+100)}
	sp := l.Append(temporal.Insert(huge, 0, 1))
	if sp.Start != 0 || sp.Len() <= BlockCap {
		t.Fatalf("oversized frame span: start=%d len=%d", sp.Start, sp.Len())
	}
	typ, body, _, err := DecodeFrame(sp.Bytes())
	if err != nil || typ != FrData {
		t.Fatalf("oversized frame broken: %v", err)
	}
	if e, derr := DecodeData(body); derr != nil || len(e.Payload.Data) != BlockCap+100 {
		t.Fatalf("oversized frame decode: %v", derr)
	}
}
