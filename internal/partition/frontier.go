package partition

import "lmerge/internal/temporal"

// frontier tracks the per-partition stable watermark and answers the global
// (minimum) stable point in O(1), updating in O(log N). It is an indexed
// binary min-heap: heap holds partition ids ordered by their watermark, pos
// maps a partition id back to its heap slot so an update can sift in place.
// Watermarks only ever increase (stable points are monotone), so an update
// only ever sifts down.
type frontier struct {
	val  []temporal.Time // partition -> current watermark
	heap []int           // min-heap of partition ids by val
	pos  []int           // partition -> index in heap
	max  temporal.Time   // leading partition's watermark (for lag metrics)
}

func newFrontier(n int) *frontier {
	f := &frontier{
		val:  make([]temporal.Time, n),
		heap: make([]int, n),
		pos:  make([]int, n),
		max:  temporal.MinTime,
	}
	for i := 0; i < n; i++ {
		f.val[i] = temporal.MinTime
		f.heap[i] = i
		f.pos[i] = i
	}
	return f
}

// Update raises partition p's watermark to t, reporting whether it moved.
// Regressions (t at or below the current watermark) are ignored: stable
// points never retreat.
func (f *frontier) Update(p int, t temporal.Time) bool {
	if t <= f.val[p] {
		return false
	}
	f.val[p] = t
	f.max = temporal.MaxT(f.max, t)
	f.siftDown(f.pos[p])
	return true
}

// Min returns the global stable point: the slowest partition's watermark.
func (f *frontier) Min() temporal.Time { return f.val[f.heap[0]] }

// Max returns the leading partition's watermark.
func (f *frontier) Max() temporal.Time { return f.max }

// Value returns partition p's watermark.
func (f *frontier) Value(p int) temporal.Time { return f.val[p] }

func (f *frontier) less(i, j int) bool { return f.val[f.heap[i]] < f.val[f.heap[j]] }

func (f *frontier) swap(i, j int) {
	f.heap[i], f.heap[j] = f.heap[j], f.heap[i]
	f.pos[f.heap[i]] = i
	f.pos[f.heap[j]] = j
}

func (f *frontier) siftDown(i int) {
	n := len(f.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && f.less(l, small) {
			small = l
		}
		if r < n && f.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		f.swap(i, small)
		i = small
	}
}
