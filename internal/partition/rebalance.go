package partition

import (
	"sync/atomic"
	"time"

	"lmerge/internal/core"
)

// This file is the live slot-migration machinery of the sharded pool: the
// paper's jumpstart/cutover protocol (Sec. II-4/5) applied *internally*,
// between partition workers of one keyed scale-out merge, plus the adaptive
// controller that drives it under skew. DESIGN.md §11 carries the full state
// machine and its safety argument; in brief, a migration of slots {S} from
// donor A to recipient(s) B — the protocol batches every slot leaving A in
// one cycle, since the drain barrier dominates its cost — runs:
//
//  1. prepare — each recipient B is frozen: it keeps consuming its rings
//     (into a holding queue, so producers never block against it) but merges
//     nothing, which pins B's output clock Tb.
//  2. cutover — under the route write-lock, every departing slot's owner
//     flips to its recipient and the tails of A's ingress rings are
//     snapshotted. Because publishers route+enqueue under the read lock,
//     every element routed to A under the old table is inside the snapshot:
//     the tails are a sound drain barrier.
//  3. drain — A processes its rings until every snapshotted tail is reached.
//     Any stable a recipient saw before freezing was enqueued to A (same
//     coalesced batch, same read-lock section) before the snapshot, so at
//     the barrier A's clock Ta >= Tb for every recipient — the core.Handoff
//     clock-ordering contract holds by construction, with no abort path.
//  4. transplant — A extracts each recipient's slots' live index nodes whole
//     (core.Handoff.ExtractKeys, one slotsMatcher per recipient) and
//     forwards each bundle to its recipient's control lane.
//  5. install — each B installs its nodes, unfreezes, and replays its
//     holding queue through normal processing. Unemitted transplanted nodes
//     carry Vs >= Ta >= Tb, so B's deferred emissions stay legal against its
//     own output stream; stables B re-sweeps over them are idempotent.
//
// A migration batches every move leaving one donor in a window: the drain
// barrier is the expensive step (the donor must chew through its enqueued
// backlog), so all slots departing a donor — to however many recipients —
// share one prepare/cutover/drain cycle and split into per-recipient
// transplants only at the barrier.
type migration struct {
	from  int
	moves []slotMove
	// marks is the drain barrier: the donor's ring tails at cutover.
	marks []ringMark
	done  chan struct{}
}

// slotMove is one (routing slot → recipient worker) assignment of a
// migration.
type slotMove struct {
	slot int
	to   int
}

// ringMark is one (ring, tail) pair of the drain barrier.
type ringMark struct {
	r    *spscRing
	tail uint64
}

// barrierMet reports whether the donor has drained past every snapshotted
// tail. Ring heads only advance, and removed rings (publisher detach) were
// fully consumed first, so the check is monotone.
func (w *shardWorker) barrierMet() bool {
	for _, mk := range w.mig.marks {
		if mk.r.head.Load() < mk.tail {
			return false
		}
	}
	return true
}

// completeMigration runs on the donor's goroutine once the drain barrier is
// met: extract each recipient's slots whole and hand them over.
func (s *Sharded) completeMigration(w *shardWorker) {
	mig := w.mig
	w.mig = nil
	h, capable := w.op.Merger().(core.Handoff)
	// Group the moves per recipient: one transplant each.
	done := make(map[int]bool, len(mig.moves))
	for _, mv := range mig.moves {
		if done[mv.to] {
			continue
		}
		done[mv.to] = true
		slots := make([]int, 0, len(mig.moves))
		for _, m2 := range mig.moves {
			if m2.to == mv.to {
				slots = append(slots, m2.slot)
			}
		}
		var st core.HandoffState
		if capable {
			st = h.ExtractKeys(slotsMatcher(s.key, slots))
		}
		w.tel.Migrated(mig.from, mv.to, st.Clock, st.Keys)
		s.tel.Migrated(mig.from, mv.to, st.Clock, st.Keys)
		rcpt := s.workers[mv.to]
		rcpt.ctl <- ctlMsg{kind: ctlInstall, st: st}
		rcpt.wakeUp()
	}
	close(mig.done)
}

// migrateLocked executes one batched migration end to end (caller holds
// migMu and has resolved mv.to != from for every move). It blocks until the
// donor has handed every transplant to its recipient's control lane.
func (s *Sharded) migrateLocked(from int, moves []slotMove) {
	// 1. prepare: freeze every distinct recipient, pinning its clock. The
	// reply synchronises — a recipient is guaranteed frozen before cutover.
	prepped := make(map[int]bool, len(moves))
	for _, mv := range moves {
		if prepped[mv.to] {
			continue
		}
		prepped[mv.to] = true
		rcpt := s.workers[mv.to]
		rcpt.ctl <- ctlMsg{kind: ctlPrepare, prepReply: s.prepReply}
		rcpt.wakeUp()
		<-s.prepReply
	}

	// 2. cutover: flip every slot under the route write-lock and snapshot
	// the donor's ring tails as the drain barrier.
	donor := s.workers[from]
	s.routeMu.Lock()
	next := s.table.Load().clone()
	for _, mv := range moves {
		next.owner[mv.slot] = int32(mv.to)
	}
	s.table.Store(next)
	rings := donor.ringList()
	marks := make([]ringMark, len(rings))
	for i, r := range rings {
		marks[i] = ringMark{r: r, tail: r.tail.Load()}
	}
	s.routeMu.Unlock()

	// 3–5. drain, transplant, install: driven by the worker loops.
	mig := &migration{from: from, moves: moves, marks: marks, done: make(chan struct{})}
	donor.ctl <- ctlMsg{kind: ctlMigrate, mig: mig}
	donor.wakeUp()
	<-mig.done
}

// RebalanceConfig tunes the adaptive hot-slot controller (ShardRebalance).
// Zero values select the defaults noted per field.
type RebalanceConfig struct {
	// Interval is the load-sampling period (default 10ms).
	Interval time.Duration
	// Threshold is the max/mean per-worker load ratio above which a window
	// triggers a migration (default 1.15).
	Threshold float64
	// MinSample is the minimum number of routed elements a window must carry
	// before it is acted on (default 2048) — idle pools never churn slots.
	MinSample int64
	// Cooldown is how many windows to skip after a migration, letting the
	// new assignment's load profile settle before re-evaluating (default 1).
	Cooldown int
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Threshold <= 1 {
		c.Threshold = 1.15
	}
	if c.MinSample <= 0 {
		c.MinSample = 2048
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 1
	}
	return c
}

// ShardRebalance attaches the adaptive repartitioning controller: per-slot
// load is sampled every Interval, and when one worker's window load exceeds
// Threshold times the mean, the hottest movable slot migrates from the most-
// to the least-loaded worker through the live handoff protocol above. The
// option is inert when the pool's algorithm does not support core.Handoff
// (e.g. R3 with InsertFullyFrozen) or when the pool has one partition.
func ShardRebalance(cfg RebalanceConfig) ShardedOption {
	return func(c *shardedConfig) {
		cc := cfg.withDefaults()
		c.rebalance = &cc
	}
}

// rebalancer is the adaptive controller: one goroutine differencing the
// pool's per-slot load counters into window loads and migrating slots to
// flatten them.
type rebalancer struct {
	s   *Sharded
	cfg RebalanceConfig

	stopc chan struct{}
	donec chan struct{}

	last       [Slots]int64 // cumulative per-slot load at the previous window
	migrations atomic.Int64
}

func newRebalancer(s *Sharded, cfg RebalanceConfig) *rebalancer {
	return &rebalancer{
		s:     s,
		cfg:   cfg.withDefaults(),
		stopc: make(chan struct{}),
		donec: make(chan struct{}),
	}
}

// stop halts the controller and waits for it, letting an in-flight migration
// finish. Close calls this before marking the pool closed, so migrations
// always run against live workers.
func (r *rebalancer) stop() {
	close(r.stopc)
	<-r.donec
}

func (r *rebalancer) run() {
	defer close(r.donec)
	tick := time.NewTicker(r.cfg.Interval)
	defer tick.Stop()
	cooldown := 0
	for {
		select {
		case <-r.stopc:
			return
		case <-tick.C:
		}
		if cooldown > 0 {
			cooldown--
			continue
		}
		if r.tickOnce() {
			cooldown = r.cfg.Cooldown
		}
	}
}

// tickOnce evaluates one load window and migrates slots until the window's
// projected max/mean ratio falls under the threshold (or it runs out of
// movable slots / its per-window move budget), reporting whether it moved
// anything. Moving a full plan per window rather than one slot makes the
// controller settle within a couple of windows even at high worker counts.
func (r *rebalancer) tickOnce() bool {
	s := r.s
	if s.closed.Load() {
		return false
	}
	table := s.table.Load()
	nw := len(s.workers)
	owner := table.owner
	var delta [Slots]int64
	load := make([]int64, nw)
	var total int64
	for i := 0; i < Slots; i++ {
		cur := s.slotLoad[i].Load()
		delta[i] = cur - r.last[i]
		r.last[i] = cur
		load[owner[i]] += delta[i]
		total += delta[i]
	}
	if total < r.cfg.MinSample {
		return false
	}
	// Planning is virtual: moves are applied to the window's projection so
	// each pick sees its predecessors, and nothing migrates until the plan
	// is complete. Execution then batches the plan per donor, because a
	// donor's drain barrier dominates migration cost and is paid once per
	// batch regardless of how many slots leave.
	var planned [Slots]bool
	var plan []slotMove
	var donors []int
	byDonor := make(map[int][]slotMove)
	for len(plan) < 2*nw {
		maxW, minW := 0, 0
		for p := 1; p < nw; p++ {
			if load[p] > load[maxW] {
				maxW = p
			}
			if load[p] < load[minW] {
				minW = p
			}
		}
		if float64(load[maxW]) <= r.cfg.Threshold*float64(total)/float64(nw) {
			break
		}
		// Pick the slot on the hot worker whose window load best approximates
		// half the hot/cold gap; a slot hotter than the whole gap would just
		// move the hotspot, so it is excluded (when one slot IS the skew, no
		// assignment helps and the controller correctly stays put).
		gap := load[maxW] - load[minW]
		best, bestScore := -1, int64(1)<<62
		for i := 0; i < Slots; i++ {
			if int(owner[i]) != maxW || planned[i] || delta[i] == 0 || delta[i] > gap {
				continue
			}
			score := gap - 2*delta[i]
			if score < 0 {
				score = -score
			}
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		planned[best] = true
		mv := slotMove{slot: best, to: minW}
		plan = append(plan, mv)
		if byDonor[maxW] == nil {
			donors = append(donors, maxW)
		}
		byDonor[maxW] = append(byDonor[maxW], mv)
		load[maxW] -= delta[best]
		load[minW] += delta[best]
		owner[best] = int32(minW)
	}
	if len(plan) == 0 {
		return false
	}
	migrated := 0
	for _, from := range donors {
		moves := byDonor[from]
		s.migMu.Lock()
		// Re-read under migMu: a manual MigrateSlot may have moved a slot
		// since planning; drop any move whose donor is stale.
		live := moves[:0]
		for _, mv := range moves {
			if int(s.table.Load().owner[mv.slot]) == from {
				live = append(live, mv)
			}
		}
		if len(live) > 0 {
			s.migrateLocked(from, live)
			migrated += len(live)
		}
		s.migMu.Unlock()
	}
	r.migrations.Add(int64(migrated))
	return migrated > 0
}
