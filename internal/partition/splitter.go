package partition

import (
	"fmt"

	"lmerge/internal/core"
	"lmerge/internal/engine"
	"lmerge/internal/operators"
	"lmerge/internal/temporal"
)

// Splitter is the engine-operator form of the router: one splitter sits on
// each physical input stream and steers inserts/adjusts to the downstream
// edge their key hashes to (engine.Out.EmitTo), while stable elements are
// broadcast to every edge so idle partitions keep making progress. Its
// downstream edges must be connected in partition order — edge p is
// partition p — which Build does.
type Splitter struct {
	parts int
	key   KeyFunc
	table *routeTable
	name  string
}

// NewSplitter builds a splitter routing across parts partitions. Routing is
// slot-based (see router.go) and entirely splitter-local: each splitter owns
// its table copy, so per-stream routing shares no state and takes no locks.
func NewSplitter(parts int, opts ...Option) *Splitter {
	if parts < 1 {
		parts = 1
	}
	o := applyOptions(opts)
	return &Splitter{parts: parts, key: o.key, table: newRouteTable(parts), name: fmt.Sprintf("split(%d)", parts)}
}

// Name implements engine.Operator.
func (sp *Splitter) Name() string { return sp.name }

// Process implements engine.Operator.
func (sp *Splitter) Process(_ int, e temporal.Element, out *engine.Out) {
	if e.Kind == temporal.KindStable {
		out.Emit(e)
		return
	}
	out.EmitTo(sp.table.route(sp.key(e.Payload)), e)
}

// OnFeedback implements engine.Operator: fast-forward signals pass through
// to the stream's producer.
func (sp *Splitter) OnFeedback(temporal.Time) bool { return true }

// Reunify is the engine-operator form of the frontier merge: input port p
// carries partition p's merged output. Inserts and adjusts are forwarded as
// they arrive; partition stables feed the low-watermark heap and the
// frontier minimum is emitted as the global stable point whenever it
// advances. Forwarded elements stay legal against the emitted stable point:
// per-edge FIFO delivery means partition p's frontier entry never runs ahead
// of the elements p emitted before raising it, and the minimum never runs
// ahead of any entry.
type Reunify struct {
	front     *frontier
	maxStable temporal.Time
	name      string
}

// NewReunify builds a reunifier over parts partitions.
func NewReunify(parts int) *Reunify {
	if parts < 1 {
		parts = 1
	}
	return &Reunify{
		front:     newFrontier(parts),
		maxStable: temporal.MinTime,
		name:      fmt.Sprintf("reunify(%d)", parts),
	}
}

// Name implements engine.Operator.
func (ru *Reunify) Name() string { return ru.name }

// Process implements engine.Operator.
func (ru *Reunify) Process(port int, e temporal.Element, out *engine.Out) {
	if e.Kind != temporal.KindStable {
		out.Emit(e)
		return
	}
	if ru.front.Update(port, e.T()) {
		if min := ru.front.Min(); min > ru.maxStable {
			ru.maxStable = min
			out.Emit(temporal.Stable(min))
		}
	}
}

// MaxStable returns the reunified stable point emitted so far.
func (ru *Reunify) MaxStable() temporal.Time { return ru.maxStable }

// OnFeedback implements engine.Operator: a consumer fast-forward walks
// through to every partition pipeline.
func (ru *Reunify) OnFeedback(temporal.Time) bool { return true }

// Topology is a partitioned LMerge graph fragment built by Build.
type Topology struct {
	// Inputs holds one splitter node per physical input stream; inject
	// stream s's elements into Inputs[s].
	Inputs []*engine.Node
	// Mergers holds partition p's LMerge operator at index p (for stats).
	Mergers []*operators.LMerge
	// Output is the reunify node; connect consumers downstream of it.
	Output *engine.Node
}

// Build wires a partitioned LMerge into g: streams splitter source nodes,
// parts per-partition LMerge operators (each merging all streams, built by
// mk around its partition-local emit, with fast-forward feedback enabled
// when lag >= 0), and one reunify node. Each partition's merger runs on its
// own runtime worker goroutine under engine.NewRuntime — that is the
// scale-out: per-partition merge work proceeds in parallel, serialised only
// at the (cheap) reunify stage.
func Build(g *engine.Graph, streams, parts int, lag temporal.Time, mk func(core.Emit) core.Merger, opts ...Option) *Topology {
	if streams < 1 {
		streams = 1
	}
	if parts < 1 {
		parts = 1
	}
	t := &Topology{
		Inputs:  make([]*engine.Node, streams),
		Mergers: make([]*operators.LMerge, parts),
	}
	lmNodes := make([]*engine.Node, parts)
	for p := range lmNodes {
		t.Mergers[p] = operators.NewLMerge(streams, lag, mk)
		lmNodes[p] = g.Add(t.Mergers[p])
	}
	for s := range t.Inputs {
		t.Inputs[s] = g.Add(NewSplitter(parts, opts...))
		// Connect in partition order: splitter edge p is partition p, and
		// because stream s connects to every partition before stream s+1
		// does, partition p's input port s is stream s.
		for p := range lmNodes {
			g.Connect(t.Inputs[s], lmNodes[p])
		}
	}
	ru := g.Add(NewReunify(parts))
	for p := range lmNodes {
		// Reunify input port p is partition p.
		g.Connect(lmNodes[p], ru)
	}
	t.Output = ru
	return t
}
