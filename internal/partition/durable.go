package partition

import (
	"runtime"

	"lmerge/internal/temporal"
)

// Checkpoint support for the sharded backend. The server takes its exact
// checkpoint cut by excluding ingestion (its own write barrier blocks
// Attach/Detach/ProcessBatch) and then calling Quiesce + PartitionSnapshots +
// RouteState here; recovery rebuilds a pool and calls InstallRoute before
// replaying, so every key routes back to the partition whose snapshot carries
// its state.

// Quiesce blocks until every in-flight element has been merged and its
// emission flushed. The caller must guarantee no new traffic arrives (no
// concurrent Attach/Detach/ProcessBatch) and no migration is in flight —
// lmserved's checkpoint barrier provides both.
//
// Two steps: (1) poll every publisher ring empty — every enqueued entry has
// been consumed; (2) one control-lane round trip per worker — a worker
// handles control only at its loop boundary, after any in-progress drain pass
// completed, and a drain pass ends by flushing its staged emissions, so the
// round trip returning means everything consumed in (1) has reached the
// pool's emit callback.
func (s *Sharded) Quiesce() {
	if s.closed.Load() {
		return
	}
	for {
		pending := 0
		s.pubMu.RLock()
		for _, pub := range s.pubs {
			for _, r := range pub.rings {
				pending += r.pending()
			}
		}
		s.pubMu.RUnlock()
		if pending == 0 {
			break
		}
		for _, w := range s.workers {
			w.wakeUp()
		}
		runtime.Gosched()
	}
	// Reuse the stats lane as the flush barrier; the reply value is discarded.
	s.coldMu.Lock()
	for _, w := range s.workers {
		w.ctl <- ctlMsg{kind: ctlStats, statsReply: s.statsReply}
		w.wakeUp()
		<-s.statsReply
	}
	s.coldMu.Unlock()
}

// PartitionSnapshots collects each worker's merger Snapshot() stream, in
// partition order. Entries are nil when the algorithm is not a
// core.Snapshotter. Call only on a quiesced pool (see Quiesce) — the streams
// are only mutually consistent at a cut, and the stable broadcast guarantees
// all partitions sit at the same internal stable point once quiesced.
func (s *Sharded) PartitionSnapshots() []temporal.Stream {
	out := make([]temporal.Stream, len(s.workers))
	if s.closed.Load() {
		return out
	}
	reply := make(chan temporal.Stream, 1)
	s.coldMu.Lock()
	for p, w := range s.workers {
		w.ctl <- ctlMsg{kind: ctlSnapshot, snapReply: reply}
		w.wakeUp()
		out[p] = <-reply
	}
	s.coldMu.Unlock()
	return out
}

// RouteState returns the current routing table version: its epoch and a copy
// of the slot-ownership map.
func (s *Sharded) RouteState() (epoch int64, owner []int32) {
	t := s.table.Load()
	owner = make([]int32, Slots)
	copy(owner, t.owner[:])
	return t.epoch, owner
}

// InstallRoute replaces the routing table with the given ownership map at the
// given epoch — recovery reinstalling the checkpointed assignment into a
// fresh pool before replay. Owners out of range for this pool (a checkpoint
// taken with more partitions) are remapped round-robin. Must run before any
// traffic; it does not migrate state between live workers.
func (s *Sharded) InstallRoute(epoch int64, owner []int32) {
	t := &routeTable{epoch: epoch}
	parts := int32(len(s.workers))
	for i := range t.owner {
		o := int32(i) % parts
		if i < len(owner) && owner[i] >= 0 && owner[i] < parts {
			o = owner[i]
		}
		t.owner[i] = o
	}
	s.routeMu.Lock()
	s.table.Store(t)
	s.routeMu.Unlock()
}
