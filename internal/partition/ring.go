package partition

import (
	"runtime"
	"sync/atomic"

	"lmerge/internal/core"
	"lmerge/internal/temporal"
)

// ringKind discriminates the entries a publisher pushes through its rings.
type ringKind uint8

const (
	// ringBatch carries one routed sub-batch of elements for the worker.
	ringBatch ringKind = iota
	// ringDetach unregisters the publisher; per the ordering contract it is
	// the last entry, and the worker drops the ring after consuming it.
	// (Attach is NOT a ring entry: rings only order one publisher's traffic
	// against itself, but an attach must be ordered against *every* other
	// publisher's traffic — a worker that merged some stream's stable before
	// consuming a ring-borne attach would emit output stables that the new
	// stream's queued data later violates. Attach therefore runs as a
	// synchronous control-lane round trip; see Sharded.Attach.)
	ringDetach
)

// ringEntry is one slot of an spscRing. The els buffer is owned by the slot
// and reused across laps: the producer copies its routed sub-batch in, the
// consumer processes it in place before advancing, so the steady state moves
// elements with zero allocation.
type ringEntry struct {
	kind ringKind
	id   core.StreamID
	els  []temporal.Element
}

// ringDepth is the per-(publisher, worker) ring capacity in entries (must be
// a power of two). Each publisher batch contributes at most one entry per
// worker, so this decouples a publisher burst from merge work while keeping
// memory proportional to publishers × partitions, not load.
const ringDepth = 128

// spscRing is a bounded single-producer single-consumer ring buffer: the
// lock-free lane between one publisher handler and one partition worker.
// The producer writes a slot then publishes it by advancing tail; the
// consumer processes a slot then releases it by advancing head. With exactly
// one goroutine on each side, the two atomic cursors are the entire
// synchronisation protocol — no mutex, no channel, no allocation per entry.
type spscRing struct {
	slots [ringDepth]ringEntry
	// head is the next slot the consumer will read; written only by the
	// consumer. tail is the next slot the producer will write; written only
	// by the producer. tail-head is the backlog.
	head atomic.Uint64
	tail atomic.Uint64
}

// pending returns the entry backlog (approximate from a third party; exact
// from either endpoint).
func (r *spscRing) pending() int { return int(r.tail.Load() - r.head.Load()) }

// push appends one entry, copying els into the slot-owned buffer. It blocks
// (spinning with Gosched) while the ring is full — backpressure onto the
// publisher, exactly like the bounded channel it replaces.
func (r *spscRing) push(kind ringKind, id core.StreamID, els []temporal.Element) {
	t := r.tail.Load()
	for r.head.Load()+ringDepth == t {
		runtime.Gosched()
	}
	s := &r.slots[t%ringDepth]
	s.kind = kind
	s.id = id
	s.els = append(s.els[:0], els...)
	r.tail.Store(t + 1)
}
