package partition

import "lmerge/internal/temporal"

// Slots is the routing-table granularity: the key space is divided into this
// many slots, each owned by one partition. Routing is two-step — slot =
// hash(key) mod Slots, partition = owner[slot] — so rebalancing moves whole
// slots between partitions instead of re-hashing, and an in-flight element's
// destination is fully determined by the table version (epoch) its router
// read. 64 slots keeps the table in one cache line while still giving an
// 8-partition pool 8 slots per worker to shed.
const Slots = 64

// routeTable is one immutable version of the slot-ownership map. Mutation is
// copy-on-write: rebalancing installs a successor table with a bumped epoch,
// so concurrent routers see either the old or the new map, never a mix.
type routeTable struct {
	epoch int64
	owner [Slots]int32
}

// newRouteTable maps slots round-robin across parts partitions — the static
// assignment equivalent to the classic hash mod parts routing.
func newRouteTable(parts int) *routeTable {
	t := &routeTable{}
	for i := range t.owner {
		t.owner[i] = int32(i % parts)
	}
	return t
}

// clone returns a successor table with the epoch advanced.
func (t *routeTable) clone() *routeTable {
	c := *t
	c.epoch++
	return &c
}

// slotOf maps a key hash to its routing slot.
func slotOf(hash uint64) int { return int(hash % Slots) }

// route returns the partition owning the key hash under this table.
func (t *routeTable) route(hash uint64) int { return int(t.owner[slotOf(hash)]) }

// slotMatcher returns a payload predicate selecting exactly the keys of one
// routing slot — the extraction filter of a slot migration.
func slotMatcher(key KeyFunc, slot int) func(temporal.Payload) bool {
	return func(p temporal.Payload) bool { return slotOf(key(p)) == slot }
}

// slotsMatcher is slotMatcher over a slot set: the extraction filter of a
// batched migration moving several slots to one recipient in one handoff.
func slotsMatcher(key KeyFunc, slots []int) func(temporal.Payload) bool {
	var in [Slots]bool
	for _, s := range slots {
		in[s] = true
	}
	return func(p temporal.Payload) bool { return in[slotOf(key(p))] }
}
