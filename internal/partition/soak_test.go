package partition

import (
	"sync"
	"sync/atomic"
	"testing"

	"lmerge/internal/chaos"
	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// TestPartitionedChaosSoak is the race-enabled partitioned soak of the PR-4
// CI gate (`make partition-soak`): chaos-perturbed publishers drive a
// Sharded pool concurrently — duplicated and window-shuffled presentations,
// one publisher crashing mid-run — and the reunified output must be a valid
// stream reconstituting to the exact script TDB, with the fan-in feedback
// path exercised along the way.
func TestPartitionedChaosSoak(t *testing.T) {
	events := 1200
	if testing.Short() {
		events = 200
	}
	sc := gen.NewScript(gen.Config{
		Events:       events,
		Seed:         99,
		Revisions:    0.35,
		RemoveProb:   0.15,
		PayloadBytes: 8,
		ValueRange:   60,
	})
	inj := chaos.New(chaos.Config{Seed: 5, DupProb: 0.05, ShuffleProb: 0.5})
	const pubs = 4
	streams := make([]temporal.Stream, pubs)
	for i := range streams {
		r := sc.Render(gen.RenderOptions{Seed: int64(200 + i), Disorder: 0.3, StableEvery: 9 + i})
		streams[i] = inj.Fork(int64(i)).Perturb(r)
	}

	var (
		outMu sync.Mutex
		out   temporal.Stream
	)
	tdb := temporal.NewTDB()
	var applyErr error
	var feedbacks atomic.Int64
	pool := NewSharded(3, func(emit core.Emit) core.Merger {
		return core.NewR3(emit)
	}, func(e temporal.Element) {
		// Runs under the pool's emit mutex; the extra lock makes the
		// ordering contract explicit for the race detector.
		outMu.Lock()
		out = append(out, e)
		if err := tdb.Apply(e); err != nil && applyErr == nil {
			applyErr = err
		}
		outMu.Unlock()
	}, ShardFeedback(func(core.Feedback) { feedbacks.Add(1) }, 0))

	// Attach everyone before any element flows (as the server does at
	// connect time): feedback to laggards requires the laggards to exist.
	ids := make([]core.StreamID, pubs)
	for i := range ids {
		ids[i] = pool.Attach(temporal.MinTime)
	}
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i]
			els := streams[i]
			crashAt := len(els)
			if i == pubs-1 {
				crashAt = len(els) / 2 // one replica dies mid-run
			}
			const batch = 64
			for lo := 0; lo < crashAt; lo += batch {
				hi := min(lo+batch, crashAt)
				if err := pool.ProcessBatch(id, els[lo:hi]); err != nil {
					t.Errorf("publisher %d: %v", i, err)
					return
				}
			}
			if crashAt < len(els) {
				pool.Detach(id)
			}
		}(i)
	}
	wg.Wait()

	// Sample the gauges while the pool is live.
	ps := pool.PartitionStats()
	if len(ps) != 3 {
		t.Fatalf("PartitionStats len = %d", len(ps))
	}
	var processed int64
	for _, p := range ps {
		processed += p.Processed
	}
	if processed == 0 {
		t.Fatal("no elements processed")
	}
	st := pool.Stats()
	if st.InInserts == 0 || st.OutStables == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}

	if err := pool.Close(); err != nil {
		t.Fatalf("pool error: %v", err)
	}
	if applyErr != nil {
		t.Fatalf("reunified output is not a valid stream: %v", applyErr)
	}
	if pool.MaxStable() != temporal.Infinity {
		t.Fatalf("reunified stable = %v, want ∞ (three full publishers remained)", pool.MaxStable())
	}
	if !tdb.Equal(sc.TDB()) {
		t.Fatalf("reunified TDB diverges from script TDB (%d vs %d events)",
			tdb.Len(), sc.TDB().Len())
	}
	if feedbacks.Load() == 0 {
		t.Fatal("fan-in feedback never fired")
	}
	if err := pool.ProcessBatch(0, temporal.Stream{temporal.Stable(1)}); err != ErrShardedClosed {
		t.Fatalf("ProcessBatch after Close = %v, want ErrShardedClosed", err)
	}
}
