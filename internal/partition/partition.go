// Package partition is the keyed scale-out layer over Logical Merge.
//
// LMerge is defined per logical stream and the element algebra (paper
// Sec. III) is key-agnostic, so a keyed stream splits into independent
// logical substreams — one per payload key — each mergeable in isolation.
// This package exploits that: physical streams are hash-partitioned by
// payload key, one full LMerge instance runs per partition, and the
// partition outputs are reunified into a single stream.
//
// Three rules make the composition semantics-preserving (in the spirit of
// DBSP's composability result):
//
//   - Routing: insert and adjust elements go to the partition owning their
//     key's routing slot (slot = hash(Payload) mod Slots; a slot-ownership
//     table maps slots to partitions, initially round-robin). All elements of
//     one (Vs, Payload) key — including revisions and duplicates from other
//     input streams — land on the same partition, so each partition merges
//     mutually consistent presentations of its key-filtered slice of the TDB.
//     Slot ownership can move between partitions live (see Rebalancer and
//     DESIGN.md §11); at any instant each key still has exactly one owner.
//   - Stable broadcast: stable elements are progress assertions about the
//     whole stream, so they go to every partition. A partition that receives
//     no events still advances its stable point and never holds the global
//     frontier back.
//   - Min-frontier reunification: the reunified output forwards partition
//     inserts/adjusts as they come and emits as its own stable point the
//     minimum across per-partition stable frontiers (tracked in a
//     low-watermark heap, O(log N) per update). Forwarded elements stay
//     legal against the reunified stable point because each partition's
//     frontier is at least the global minimum.
//
// The reunified stream reconstitutes to the same TDB as the unpartitioned
// merge at every output stable point (proven continuously by the diffcheck
// harness's partitioned executor axes). It does not preserve global Vs
// ordering across keys — partition outputs interleave — so the composition
// targets the keyed cases: what comes out is an R3-class stream even when
// the per-partition algorithm is R0–R2.
//
// One policy is excluded from snapshot-capable composition: R3 with
// InsertFullyFrozen holds each partition's stable point back to its own
// earliest unemitted key, so per-partition stable frontiers diverge and a
// partition may retire (and drop from its snapshot) events that are still
// live relative to the smaller global stable point. Stream-level equivalence
// still holds; the union snapshot does not.
package partition

import (
	"fmt"
	"sort"

	"lmerge/internal/core"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// KeyFunc maps a payload to the hash that routes it to a partition.
type KeyFunc func(temporal.Payload) uint64

// Rebalancer is implemented by partitioned mergers that can move key-range
// (routing-slot) ownership between partitions live, transplanting per-key
// merge state through core.Handoff — the paper's jumpstart/cutover machinery
// applied internally. The differential harness uses it to force migrations
// mid-stream; the sharded pool's adaptive controller uses the same slot
// granularity asynchronously.
type Rebalancer interface {
	// MigrateSlot moves routing slot `slot` to partition `to`, reporting
	// whether a migration happened.
	MigrateSlot(slot, to int) bool
	// SlotOwner returns the partition currently owning a routing slot.
	SlotOwner(slot int) int
}

// DefaultKey hashes the payload's integer field with a splitmix64 finaliser.
// Keying on ID alone is deliberately coarser than the (Vs, Payload) TDB key:
// co-locating every payload with the same ID is sufficient for correctness
// (all presentations of one key meet in one partition) and lets skewed ID
// distributions produce the partition imbalance the benchmarks study.
func DefaultKey(p temporal.Payload) uint64 {
	return mix64(uint64(p.ID))
}

// mix64 is the splitmix64 finaliser: a cheap bijective scrambler so that
// adjacent IDs spread across partitions instead of striping.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Option configures a partitioned merger or topology.
type Option func(*options)

type options struct {
	key KeyFunc
}

func applyOptions(opts []Option) options {
	o := options{key: DefaultKey}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithKeyFunc overrides the payload→hash routing function.
func WithKeyFunc(fn KeyFunc) Option {
	return func(o *options) {
		if fn != nil {
			o.key = fn
		}
	}
}

// merger is the synchronous partitioned merger: N sub-mergers behind the
// standard core.Merger interface. It is the deterministic form of the
// subsystem — used directly by the public API wrapper and the differential
// harness — while splitter.go provides the same composition as engine
// operators for concurrent execution.
type merger struct {
	subs  []core.Merger
	emit  core.Emit
	key   KeyFunc
	table *routeTable
	front *frontier

	stats     core.Stats
	maxStable temporal.Time
	// tel observes the reunified stream (nil-safe). The "stream" fed to the
	// leadership monitor on output stables is the binding partition index —
	// the partition whose frontier update raised the reunified minimum — so
	// leadership here answers "which partition gates the frontier".
	tel *obs.Node
}

// New builds a partitioned merger running one case-c merger per partition.
func New(c core.Case, parts int, emit core.Emit, opts ...Option) core.Merger {
	return NewWith(parts, func(e core.Emit) core.Merger { return core.New(c, e) }, emit, opts...)
}

// NewWith builds a partitioned merger with mk constructing each partition's
// algorithm around its partition-local emit callback. The result implements
// core.Snapshotter exactly when every sub-merger does (see Snapshot).
func NewWith(parts int, mk func(core.Emit) core.Merger, emit core.Emit, opts ...Option) core.Merger {
	if parts < 1 {
		parts = 1
	}
	o := applyOptions(opts)
	if emit == nil {
		emit = func(temporal.Element) {}
	}
	m := &merger{
		emit:      emit,
		key:       o.key,
		table:     newRouteTable(parts),
		front:     newFrontier(parts),
		maxStable: temporal.MinTime,
	}
	m.subs = make([]core.Merger, parts)
	snaps := true
	for p := range m.subs {
		m.subs[p] = mk(m.partEmit(p))
		if _, ok := m.subs[p].(core.Snapshotter); !ok {
			snaps = false
		}
	}
	if snaps {
		return &snapshotMerger{m}
	}
	return m
}

// partEmit is partition p's output callback: inserts and adjusts are
// forwarded immediately (they are legal against the reunified stable point
// because partition p's frontier is at least the global minimum), while
// partition stables only feed the frontier — the merger's own stable point
// is the frontier minimum.
func (m *merger) partEmit(p int) core.Emit {
	return func(e temporal.Element) {
		switch e.Kind {
		case temporal.KindStable:
			if m.front.Update(p, e.T()) {
				if min := m.front.Min(); min > m.maxStable {
					m.maxStable = min
					m.stats.OutStables++
					m.tel.OutStable(p, min)
					m.emit(temporal.Stable(min))
				}
			}
		case temporal.KindInsert:
			m.stats.OutInserts++
			m.tel.OutInsert()
			m.emit(e)
		case temporal.KindAdjust:
			m.stats.OutAdjusts++
			m.tel.OutAdjust(e.Ve == e.Vs)
			m.emit(e)
		}
	}
}

// Observe implements core.Observable at the reunified level: the wrapper's
// own input/output counters feed n, not the per-partition sub-mergers (which
// would double count broadcast stables).
func (m *merger) Observe(n *obs.Node) { m.tel = n }

// Telemetry returns the attached telemetry node (nil when unobserved).
func (m *merger) Telemetry() *obs.Node { return m.tel }

// Case reports the sub-mergers' restriction case.
func (m *merger) Case() core.Case { return m.subs[0].Case() }

// Partitions returns the partition count.
func (m *merger) Partitions() int { return len(m.subs) }

// Process implements core.Merger: stables are broadcast to every partition,
// inserts and adjusts are routed by key hash.
func (m *merger) Process(s core.StreamID, e temporal.Element) error {
	switch e.Kind {
	case temporal.KindStable:
		m.stats.InStables++
		m.tel.In(s, e.Kind, e.Ve)
		for _, sub := range m.subs {
			if err := sub.Process(s, e); err != nil {
				return err
			}
		}
		return nil
	case temporal.KindInsert:
		m.stats.InInserts++
	case temporal.KindAdjust:
		m.stats.InAdjusts++
	default:
		return fmt.Errorf("partition: unsupported element %v", e)
	}
	m.tel.In(s, e.Kind, e.Ve)
	return m.subs[m.route(e.Payload)].Process(s, e)
}

func (m *merger) route(p temporal.Payload) int {
	return m.table.route(m.key(p))
}

// SlotOwner implements Rebalancer: the partition currently owning slot.
func (m *merger) SlotOwner(slot int) int { return int(m.table.owner[slot]) }

// MigrateSlot implements Rebalancer: it moves ownership of one routing slot
// to partition `to`, transplanting the donor's live state for the slot's
// keys through the core.Handoff surface. It reports whether a migration
// happened; it is a no-op when the slot already lives on `to`, when either
// side does not support handoff, or when the clocks cannot be ordered
// (recipient ahead of donor — impossible here, where every partition sees
// every stable synchronously, but checked for defence in depth).
//
// The synchronous merger has no in-flight elements, so the routing flip and
// the state transplant are one atomic step from the caller's perspective.
func (m *merger) MigrateSlot(slot, to int) bool {
	if slot < 0 || slot >= Slots || to < 0 || to >= len(m.subs) {
		return false
	}
	from := int(m.table.owner[slot])
	if from == to {
		return false
	}
	donor, ok := m.subs[from].(core.Handoff)
	if !ok || !donor.HandoffCapable() {
		return false
	}
	recipient, ok := m.subs[to].(core.Handoff)
	if !ok || !recipient.HandoffCapable() {
		return false
	}
	if m.subs[to].MaxStable() > m.subs[from].MaxStable() {
		return false
	}
	st := donor.ExtractKeys(slotMatcher(m.key, slot))
	m.table = m.table.clone()
	m.table.owner[slot] = int32(to)
	recipient.InstallKeys(st)
	m.tel.Migrated(from, to, st.Clock, st.Keys)
	return true
}

// Attach fans the registration out to every partition.
func (m *merger) Attach(s core.StreamID) {
	for _, sub := range m.subs {
		sub.Attach(s)
	}
}

// Detach fans the removal out to every partition.
func (m *merger) Detach(s core.StreamID) {
	for _, sub := range m.subs {
		sub.Detach(s)
	}
}

// MaxStable returns the reunified stable point (the frontier minimum).
func (m *merger) MaxStable() temporal.Time { return m.maxStable }

// SizeBytes sums the partition footprints.
func (m *merger) SizeBytes() int {
	n := 0
	for _, sub := range m.subs {
		n += sub.SizeBytes()
	}
	return n
}

// Stats returns the reunified traffic counters. Input and output counts are
// maintained by the wrapper itself (a broadcast stable counts once);
// Dropped and ConsistencyWarnings are refreshed from the partitions on each
// call.
func (m *merger) Stats() *core.Stats {
	var dropped, warns int64
	for _, sub := range m.subs {
		st := sub.Stats()
		dropped += st.Dropped
		warns += st.ConsistencyWarnings
	}
	m.stats.Dropped = dropped
	m.stats.ConsistencyWarnings = warns
	return &m.stats
}

// snapshotMerger is the snapshot-capable face of merger, returned only when
// every partition algorithm implements core.Snapshotter. Keeping it a
// distinct type means a partitioned R0–R2 does not falsely advertise
// snapshot support.
type snapshotMerger struct {
	*merger
}

// Snapshot unions the per-partition snapshots: every partition's live output
// events, re-sorted to the canonical (Vs, Payload) snapshot order and closed
// by the reunified stable point. Partition key-disjointness makes the union
// exact — no event can appear in two partition snapshots.
func (m *snapshotMerger) Snapshot() temporal.Stream {
	var out temporal.Stream
	for _, sub := range m.subs {
		for _, e := range sub.(core.Snapshotter).Snapshot() {
			if e.Kind == temporal.KindInsert {
				out = append(out, e)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if c := out[i].Key().Compare(out[j].Key()); c != 0 {
			return c < 0
		}
		return out[i].Ve < out[j].Ve
	})
	if m.maxStable != temporal.MinTime {
		out = append(out, temporal.Stable(m.maxStable))
	}
	return out
}
