package partition

import (
	"sync"
	"testing"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/temporal"
)

// TestRingSPSC exercises the publisher→worker ring with a real producer and
// consumer goroutine pair: every pushed batch must come out exactly once, in
// order, contents intact, with the producer backpressured through full-ring
// laps (more batches than ringDepth).
func TestRingSPSC(t *testing.T) {
	const batches = ringDepth*3 + 17
	r := &spscRing{}
	var got []temporal.Element
	done := make(chan struct{})
	go func() {
		defer close(done)
		read := 0
		for read < batches {
			h := r.head.Load()
			if h == r.tail.Load() {
				continue
			}
			e := &r.slots[h%ringDepth]
			if e.kind != ringBatch {
				t.Errorf("entry %d: kind = %d, want ringBatch", read, e.kind)
			}
			got = append(got, e.els...)
			r.head.Store(h + 1)
			read++
		}
	}()
	var want []temporal.Element
	scratch := make([]temporal.Element, 0, 3)
	for i := 0; i < batches; i++ {
		scratch = scratch[:0]
		for j := 0; j <= i%3; j++ {
			e := temporal.Insert(temporal.Payload{ID: int64(i*3 + j)}, temporal.Time(i), temporal.Time(i+j+1))
			scratch = append(scratch, e)
			want = append(want, e)
		}
		r.push(ringBatch, 0, scratch)
	}
	<-done
	if len(got) != len(want) {
		t.Fatalf("consumed %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
	if r.pending() != 0 {
		t.Fatalf("pending = %d after drain", r.pending())
	}
}

// TestSyncMigrateSlot forces slot migrations between every element of a
// revision-heavy workload on the synchronous partitioned merger: ownership
// must follow the moves and the reunified output must stay a valid stream
// reconstituting to the script TDB — element-for-element equal to an
// undisturbed partitioned run's TDB at every stable point.
func TestSyncMigrateSlot(t *testing.T) {
	streams, want := testWorkload(t, 0)
	order := interleave(streams, 21)
	const parts = 3
	var out temporal.Stream
	pm := New(core.CaseR3, parts, func(e temporal.Element) { out = append(out, e) })
	reb, ok := pm.(Rebalancer)
	if !ok {
		t.Fatal("partitioned merger must implement Rebalancer")
	}
	step := 0
	migrated := 0
	drive(t, pm, streams, order, func() {
		step++
		if step%5 != 0 {
			return
		}
		slot := (step * 7) % Slots
		to := step % parts
		moved := reb.MigrateSlot(slot, to)
		if owner := reb.SlotOwner(slot); owner != to {
			t.Fatalf("step %d: SlotOwner(%d) = %d after migrate to %d", step, slot, owner, to)
		}
		if moved {
			migrated++
		}
	})
	if migrated == 0 {
		t.Fatal("no migration ever happened")
	}
	if got := temporal.MustReconstitute(out); !got.Equal(want) {
		t.Fatalf("TDB under forced migrations diverges from script TDB (%d vs %d events)", got.Len(), want.Len())
	}
	if !pm.MaxStable().IsInf() {
		t.Fatalf("MaxStable = %v, want ∞", pm.MaxStable())
	}
}

// TestSyncMigrateSlotRejectsFullyFrozen: the fully-frozen insert policy has a
// data-dependent output clock, so handoff must refuse it.
func TestSyncMigrateSlotRejectsFullyFrozen(t *testing.T) {
	pm := NewWith(2, func(emit core.Emit) core.Merger {
		return core.NewR3(emit, core.R3Options{Insert: core.InsertFullyFrozen})
	}, nil)
	reb := pm.(Rebalancer)
	slot := 0
	to := 1 - reb.SlotOwner(0)
	if reb.MigrateSlot(slot, to) {
		t.Fatal("MigrateSlot must refuse the fully-frozen policy")
	}
}

// TestShardedMigrateMidStream drives concurrent publishers against a Sharded
// pool while a controller goroutine sweeps slot ownership ring-around-the-
// rosy through the live migration protocol. The reunified output must stay a
// valid stream and reconstitute to the script TDB.
func TestShardedMigrateMidStream(t *testing.T) {
	events := 1500
	if testing.Short() {
		events = 300
	}
	sc := gen.NewScript(gen.Config{
		Events:       events,
		Seed:         31,
		Revisions:    0.35,
		RemoveProb:   0.15,
		PayloadBytes: 8,
		ValueRange:   80,
		KeySkew:      2,
	})
	const pubs = 3
	streams := make([]temporal.Stream, pubs)
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{Seed: int64(400 + i), Disorder: 0.3, StableEvery: 10 + i})
	}

	var outMu sync.Mutex
	tdb := temporal.NewTDB()
	var applyErr error
	const parts = 3
	pool := NewSharded(parts, func(emit core.Emit) core.Merger {
		return core.NewR3(emit)
	}, func(e temporal.Element) {
		outMu.Lock()
		if err := tdb.Apply(e); err != nil && applyErr == nil {
			applyErr = err
		}
		outMu.Unlock()
	})

	ids := make([]core.StreamID, pubs)
	for i := range ids {
		ids[i] = pool.Attach(temporal.MinTime)
	}
	stopMig := make(chan struct{})
	var migDone sync.WaitGroup
	migDone.Add(1)
	go func() {
		defer migDone.Done()
		step := 0
		for {
			select {
			case <-stopMig:
				return
			default:
			}
			slot := (step * 11) % Slots
			pool.MigrateSlot(slot, step%parts)
			step++
		}
	}()

	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			els := streams[i]
			const batch = 48
			for lo := 0; lo < len(els); lo += batch {
				hi := min(lo+batch, len(els))
				if err := pool.ProcessBatch(ids[i], els[lo:hi]); err != nil {
					t.Errorf("publisher %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stopMig)
	migDone.Wait()

	if pool.Migrations() == 0 {
		t.Fatal("no migration ever completed")
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("pool error: %v", err)
	}
	if applyErr != nil {
		t.Fatalf("reunified output is not a valid stream: %v", applyErr)
	}
	if !pool.MaxStable().IsInf() {
		t.Fatalf("reunified stable = %v, want ∞", pool.MaxStable())
	}
	if !tdb.Equal(sc.TDB()) {
		t.Fatalf("reunified TDB diverges from script TDB (%d vs %d events)", tdb.Len(), sc.TDB().Len())
	}
}

// TestRebalanceSoak is the race-enabled adaptive-repartitioning soak of the
// CI gate (`make rebalance-soak`): a hot-key workload drives a pool with the
// ShardRebalance controller at an aggressive cadence, and the reunified
// output must reconstitute to the script TDB with at least one adaptive
// migration having fired along the way.
func TestRebalanceSoak(t *testing.T) {
	events := 4000
	if testing.Short() {
		events = 800
	}
	sc := gen.NewScript(gen.Config{
		Events:       events,
		Seed:         67,
		Revisions:    0.3,
		RemoveProb:   0.1,
		PayloadBytes: 8,
		ValueRange:   200,
		KeySkew:      2,
	})
	const pubs = 3
	streams := make([]temporal.Stream, pubs)
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{Seed: int64(700 + i), Disorder: 0.25, StableEvery: 12})
	}

	var outMu sync.Mutex
	tdb := temporal.NewTDB()
	var applyErr error
	pool := NewSharded(4, func(emit core.Emit) core.Merger {
		return core.NewR3(emit)
	}, func(e temporal.Element) {
		outMu.Lock()
		if err := tdb.Apply(e); err != nil && applyErr == nil {
			applyErr = err
		}
		outMu.Unlock()
	}, ShardRebalance(RebalanceConfig{
		Interval:  1e6, // 1ms: aggressive so short runs still trigger
		Threshold: 1.05,
		MinSample: 64,
	}))

	ids := make([]core.StreamID, pubs)
	for i := range ids {
		ids[i] = pool.Attach(temporal.MinTime)
	}
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			els := streams[i]
			const batch = 32
			for lo := 0; lo < len(els); lo += batch {
				hi := min(lo+batch, len(els))
				if err := pool.ProcessBatch(ids[i], els[lo:hi]); err != nil {
					t.Errorf("publisher %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	migs := pool.Migrations()
	if err := pool.Close(); err != nil {
		t.Fatalf("pool error: %v", err)
	}
	if applyErr != nil {
		t.Fatalf("reunified output is not a valid stream: %v", applyErr)
	}
	if !pool.MaxStable().IsInf() {
		t.Fatalf("reunified stable = %v, want ∞", pool.MaxStable())
	}
	if !tdb.Equal(sc.TDB()) {
		t.Fatalf("reunified TDB diverges from script TDB (%d vs %d events)", tdb.Len(), sc.TDB().Len())
	}
	if migs == 0 {
		t.Log("note: adaptive controller never triggered in this run (timing-dependent)")
	}
}
