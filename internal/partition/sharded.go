package partition

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lmerge/internal/core"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// ErrShardedClosed reports an operation on a closed Sharded pool.
var ErrShardedClosed = errors.New("partition: sharded pool closed")

// Sharded is the concurrent form of the partitioned merge: one worker
// goroutine per partition, each owning a full core.Operator (dynamic
// attach/detach, feedback) over its slice of the key space.
//
// The data plane is lock-light. Each publisher handler routes its own batch
// caller-side against the copy-on-write slot table (router.go) and enqueues
// per-worker sub-batches on dedicated SPSC rings — one ring per (publisher,
// worker) pair — so the hot path crosses no mutex and no channel. Workers
// drain their rings batch-wise, stage their merge output locally, and flush
// it under a single emitMu acquisition per drain; the emit mutex guards only
// the frontier advance, never merge work. Stable elements are coalesced
// caller-side into one batched frontier update per worker per batch (legal:
// delaying a progress assertion only weakens it, and the batch's own elements
// were already constrained by it upstream).
//
// Slot ownership can move between workers live — adaptively via the
// ShardRebalance controller or deterministically via MigrateSlot — using
// snapshot-style state handoff (core.Handoff; the paper's jumpstart/cutover
// machinery applied internally, see DESIGN.md §11 for the drain/cutover state
// machine).
//
// It is the ingestion backend behind lmserved's -partitions flag: publisher
// handlers enqueue and return, per-partition merge work proceeds in parallel,
// and only the (cheap) reunified emission is serialised.
//
// Ordering contract: Attach/Detach/ProcessBatch for one publisher must be
// issued from one goroutine (the server's per-connection handler) — that is
// what makes the rings single-producer. Different publishers interleave
// freely. Stats/SizeBytes/PartitionStats/MigrateSlot are cold-path calls from
// any goroutine, but not concurrently with Close.
type Sharded struct {
	workers []*shardWorker
	key     KeyFunc
	emit    core.Emit

	// table is the current routing epoch. routeMu's read side spans one
	// batch's route+enqueue so that a migration's write side (flip + ring-tail
	// snapshot) observes either all or none of a batch's pushes — the drain
	// barrier's soundness depends on that atomicity, see rebalance.go.
	table   atomic.Pointer[routeTable]
	routeMu sync.RWMutex

	// emitMu serialises reunified emission; front is owned by it.
	emitMu    sync.Mutex
	front     *frontier
	maxStable atomic.Int64

	// Reunified traffic counters (see Stats).
	inIns, inAdj, inStb    atomic.Int64
	outIns, outAdj, outStb atomic.Int64

	// pubMu guards the publisher table; nextID under it.
	pubMu  sync.RWMutex
	nextID core.StreamID
	pubs   map[core.StreamID]*shardPub

	// fb receives reunified fast-forward signals: the minimum of the
	// per-worker signals for a stream, since a publisher can only skip
	// elements no partition needs.
	fb     core.FeedbackFunc
	ffMu   sync.Mutex
	ffSeen map[core.StreamID][]temporal.Time
	ffSent map[core.StreamID]temporal.Time

	// tel observes the reunified stream (nil-safe): inputs as routed, outputs
	// under emitMu, with the binding partition index as the leadership stream
	// on stable advances (see ShardObserve).
	tel *obs.Node

	// slotLoad counts elements routed per slot since start — the rebalance
	// controller differences consecutive samples into window loads. Updated
	// per batch (publisher-local counts flushed once), only while a
	// controller is attached.
	slotLoad [Slots]atomic.Int64

	// migMu serialises migrations (adaptive controller and manual
	// MigrateSlot); prepReply is the reusable recipient-clock reply lane.
	migMu     sync.Mutex
	prepReply chan temporal.Time
	handoff   bool // workers' algorithm supports core.Handoff
	reb       *rebalancer

	// coldMu serialises cold-path worker queries; statsReply/sizeReply are
	// their reusable reply lanes (allocated once, not per call).
	coldMu     sync.Mutex
	statsReply chan core.Stats
	sizeReply  chan int

	// sizeTTL caches SizeBytes sweeps (ShardSizeCache); sizeCached/sizeStamp
	// hold the last total and its UnixNano timestamp (0 = never swept).
	sizeTTL    time.Duration
	sizeCached atomic.Int64
	sizeStamp  atomic.Int64

	manualMigs atomic.Int64 // completed MigrateSlot calls

	errMu   sync.Mutex
	err     error
	closing atomic.Bool // Close entered (idempotency guard)
	closed  atomic.Bool // pool refuses traffic; workers drain out
	wg      sync.WaitGroup
}

// shardPub is one publisher's enqueue state: its per-worker rings plus
// routing scratch reused across batches. Touched only from the publisher's
// own goroutine (ordering contract).
type shardPub struct {
	rings []*spscRing
	parts [][]temporal.Element // per-worker sub-batch scratch
	slots []int32              // per-element slot scratch (-1 = stable)

	// Per-slot counts flushed to Sharded.slotLoad once per batch.
	slotCount [Slots]int64
	touched   []int
}

// heldEntry is one ring entry copied aside while its worker is frozen as a
// migration recipient; replayed in order at install.
type heldEntry struct {
	kind ringKind
	id   core.StreamID
	els  []temporal.Element
}

type shardWorker struct {
	idx int
	op  *core.Operator

	// rings is the worker's current ring list (copy-on-write: Attach appends,
	// the worker itself unlinks a ring after consuming its detach entry;
	// ringMu serialises the rewrites, readers load atomically).
	rings  atomic.Pointer[[]*spscRing]
	ringMu sync.Mutex

	// ctl carries cold-path queries and migration protocol steps; the worker
	// polls it ahead of ring work so control never queues behind data.
	ctl chan ctlMsg

	// parked/wake implement the hybrid wait: the worker spins briefly, then
	// publishes parked=true, re-checks for work, and blocks on wake.
	// Producers CAS parked false and post one token after pushing.
	parked atomic.Bool
	wake   chan struct{}

	processed atomic.Int64
	tel       *obs.Node

	// Worker-goroutine-local state (no locking).
	out     []temporal.Element // staged emissions, flushed per drain
	held    []heldEntry        // ring entries set aside while stalled
	stalled bool               // frozen as migration recipient
	mig     *migration         // pending migration with this worker as donor
}

type ctlKind uint8

const (
	ctlStats ctlKind = iota
	ctlSize
	ctlAttach
	ctlPrepare
	ctlMigrate
	ctlInstall
	ctlSnapshot
)

type ctlMsg struct {
	kind       ctlKind
	statsReply chan core.Stats
	sizeReply  chan int
	id         core.StreamID // ctlAttach: stream to register
	joinTime   temporal.Time // ctlAttach: its join point
	ack        chan struct{} // ctlAttach: completion barrier
	prepReply  chan temporal.Time
	mig        *migration
	st         core.HandoffState
	snapReply  chan temporal.Stream // ctlSnapshot: worker's Snapshot() stream
}

// workerSpin is how many empty scan passes a worker burns (yielding between
// them) before parking on its wake channel. Low enough that an idle pool
// sleeps, high enough that a loaded pool never touches the futex path.
const workerSpin = 64

// ShardedOption configures a Sharded pool.
type ShardedOption func(*shardedConfig)

type shardedConfig struct {
	key       KeyFunc
	fb        core.FeedbackFunc
	lag       temporal.Time
	reg       *obs.Registry
	obsName   string
	rebalance *RebalanceConfig
	sizeTTL   time.Duration
	wrap      func(part int, m core.Merger) core.Merger
}

// ShardKeyFunc overrides the payload→hash routing function.
func ShardKeyFunc(fn KeyFunc) ShardedOption {
	return func(c *shardedConfig) {
		if fn != nil {
			c.key = fn
		}
	}
}

// ShardObserve registers the pool with telemetry registry reg: a reunify
// node named name carries the pool's input/output counters, freshness, and
// partition-leadership monitor (the "stream" on an output stable is the
// partition index whose frontier update raised the reunified minimum — the
// partition gating freshness), and each worker's core operator reports into
// its own node named "name/partP". Attach before any traffic; the option
// only takes effect at construction.
func ShardObserve(reg *obs.Registry, name string) ShardedOption {
	return func(c *shardedConfig) {
		c.reg = reg
		c.obsName = name
	}
}

// ShardFeedback enables reunified fast-forward feedback: fn receives a
// signal for a stream once every worker has signalled it, carrying the
// minimum time across workers. fn runs on worker goroutines and must be
// safe for concurrent use.
func ShardFeedback(fn core.FeedbackFunc, lag temporal.Time) ShardedOption {
	return func(c *shardedConfig) {
		c.fb = fn
		c.lag = lag
	}
}

// ShardSizeCache bounds how often SizeBytes performs the real per-worker
// control-lane sweep: results younger than ttl are served from a cached
// value. Each sweep both walks every partition index AND costs one queued
// control round trip per worker, so callers that poll (the server's stats
// tick and /metrics handler) would otherwise stall the data plane on every
// call. Zero ttl (the default) keeps every call exact.
func ShardSizeCache(ttl time.Duration) ShardedOption {
	return func(c *shardedConfig) {
		if ttl > 0 {
			c.sizeTTL = ttl
		}
	}
}

// ShardWrap interposes fn around every worker's merger at construction —
// the hook the server's -mem-budget path uses to give each partition its
// own spill-bounded view. fn runs once per worker before the pool starts;
// the returned merger must preserve the inner one's capability surface
// (handoff in particular, or rebalancing silently degrades).
func ShardWrap(fn func(part int, m core.Merger) core.Merger) ShardedOption {
	return func(c *shardedConfig) {
		c.wrap = fn
	}
}

// NewSharded starts a pool of parts workers, each merging with an algorithm
// built by mk around the worker's partition-local emit. emit receives the
// reunified output; it runs under the pool's emit mutex (never concurrently
// with itself).
func NewSharded(parts int, mk func(core.Emit) core.Merger, emit core.Emit, opts ...ShardedOption) *Sharded {
	if parts < 1 {
		parts = 1
	}
	cfg := shardedConfig{key: DefaultKey, lag: -1}
	for _, fn := range opts {
		fn(&cfg)
	}
	if emit == nil {
		emit = func(temporal.Element) {}
	}
	s := &Sharded{
		workers:    make([]*shardWorker, parts),
		key:        cfg.key,
		emit:       emit,
		front:      newFrontier(parts),
		pubs:       make(map[core.StreamID]*shardPub),
		fb:         cfg.fb,
		ffSeen:     make(map[core.StreamID][]temporal.Time),
		ffSent:     make(map[core.StreamID]temporal.Time),
		prepReply:  make(chan temporal.Time, 1),
		statsReply: make(chan core.Stats, 1),
		sizeReply:  make(chan int, 1),
		sizeTTL:    cfg.sizeTTL,
	}
	s.table.Store(newRouteTable(parts))
	s.maxStable.Store(int64(temporal.MinTime))
	if cfg.reg != nil {
		s.tel = cfg.reg.Node(cfg.obsName)
	}
	for p := range s.workers {
		w := &shardWorker{idx: p, ctl: make(chan ctlMsg, 4), wake: make(chan struct{}, 1)}
		var opOpts []core.OperatorOption
		if cfg.fb != nil && cfg.lag >= 0 {
			opOpts = append(opOpts, core.WithFeedback(func(f core.Feedback) {
				s.onWorkerFeedback(w.idx, f)
			}, cfg.lag))
		}
		if cfg.reg != nil {
			w.tel = cfg.reg.Node(fmt.Sprintf("%s/part%d", cfg.obsName, p))
			opOpts = append(opOpts, core.WithObserver(w.tel))
		}
		m := mk(s.workerEmit(w))
		if cfg.wrap != nil {
			m = cfg.wrap(p, m)
		}
		w.op = core.NewOperator(m, opOpts...)
		s.workers[p] = w
	}
	if h, ok := s.workers[0].op.Merger().(core.Handoff); ok && h.HandoffCapable() {
		s.handoff = true
	}
	if cfg.rebalance != nil && s.handoff && parts > 1 {
		s.reb = newRebalancer(s, *cfg.rebalance)
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go s.run(w)
	}
	if s.reb != nil {
		go s.reb.run()
	}
	return s
}

// Partitions returns the worker count.
func (s *Sharded) Partitions() int { return len(s.workers) }

// run is the worker loop: control first, then a drain pass over the rings,
// then the migration barrier check, then spin/park.
func (s *Sharded) run(w *shardWorker) {
	defer s.wg.Done()
	idle := 0
	for {
		did := false
		for {
			select {
			case m := <-w.ctl:
				s.handleCtl(w, m)
				did = true
				continue
			default:
			}
			break
		}
		for _, r := range w.ringList() {
			if s.drainRing(w, r) {
				did = true
			}
		}
		if w.mig != nil && w.barrierMet() {
			s.completeMigration(w)
			did = true
		}
		if did {
			idle = 0
			continue
		}
		if s.closed.Load() && !w.stalled && w.mig == nil && len(w.ctl) == 0 {
			return
		}
		idle++
		if idle < workerSpin {
			runtime.Gosched()
			continue
		}
		w.parked.Store(true)
		if w.workReady() || s.closed.Load() {
			w.parked.Store(false)
			idle = 0
			continue
		}
		select {
		case <-w.wake:
		case m := <-w.ctl:
			s.handleCtl(w, m)
		}
		w.parked.Store(false)
		idle = 0
	}
}

// drainQuantum bounds how many entries one drain pass takes from one ring,
// so a backlogged publisher's stream is interleaved with its peers' instead
// of being merged to completion first — the cross-publisher interleaving the
// fast-forward feedback path (and freshness fairness generally) depends on.
const drainQuantum = 4

// drainRing consumes up to drainQuantum entries of the ring's backlog. A
// stalled worker (migration recipient) still consumes — entries are copied
// to the holding queue so producers never block against a frozen partition —
// but merges nothing, so its clock stays pinned until install.
func (s *Sharded) drainRing(w *shardWorker, r *spscRing) bool {
	h := r.head.Load()
	t := r.tail.Load()
	if h == t {
		return false
	}
	if t-h > drainQuantum {
		t = h + drainQuantum
	}
	var n int64
	for ; h != t; h++ {
		e := &r.slots[h%ringDepth]
		if w.stalled {
			w.held = append(w.held, heldEntry{
				kind: e.kind,
				id:   e.id,
				els:  append([]temporal.Element(nil), e.els...),
			})
			if e.kind == ringDetach {
				w.dropRing(r)
			}
			r.head.Store(h + 1)
			continue
		}
		switch e.kind {
		case ringBatch:
			if err := w.op.ProcessBatch(e.id, e.els); err != nil {
				s.recordErr(err)
			}
			n += int64(len(e.els))
		case ringDetach:
			w.op.Detach(e.id)
			w.dropRing(r)
		}
		r.head.Store(h + 1)
	}
	if n != 0 {
		w.processed.Add(n)
	}
	s.flushEmit(w)
	return true
}

func (s *Sharded) handleCtl(w *shardWorker, m ctlMsg) {
	switch m.kind {
	case ctlStats:
		m.statsReply <- *w.op.Merger().Stats()
	case ctlSize:
		m.sizeReply <- w.op.Merger().SizeBytes()
	case ctlAttach:
		// Runs on the control lane, not the rings: an attach must be ordered
		// against every publisher's traffic (a worker that merges some other
		// stream's stable first would emit output stables the new stream's
		// queued data then violates), and Attach returning only after every
		// worker acked is what provides that ordering — the new publisher
		// cannot enqueue data anywhere until then, and no worker can reach a
		// frontier that ignores it afterwards. Registering is legal even while
		// stalled: AttachAt mutates only the merger's stream table.
		w.op.AttachAt(m.id, m.joinTime)
		m.ack <- struct{}{}
	case ctlPrepare:
		// Freeze as migration recipient: report the pinned clock. From here
		// until ctlInstall, drainRing diverts everything to the holding queue.
		w.stalled = true
		m.prepReply <- w.op.Merger().MaxStable()
	case ctlMigrate:
		// This worker is the donor; extraction happens at the drain barrier
		// (see barrierMet / completeMigration in the main loop).
		w.mig = m.mig
	case ctlInstall:
		if h, ok := w.op.Merger().(core.Handoff); ok {
			h.InstallKeys(m.st)
		}
		w.stalled = false
		s.replayHeld(w)
	case ctlSnapshot:
		// Runs at a loop boundary, so any prior drain pass has flushed its
		// emissions (drainRing ends with flushEmit) — the checkpoint layer's
		// exactness depends on that ordering, see Quiesce.
		if sn, ok := w.op.Merger().(core.Snapshotter); ok {
			m.snapReply <- sn.Snapshot()
		} else {
			m.snapReply <- nil
		}
	}
}

// replayHeld runs the holding queue through normal processing after install.
func (s *Sharded) replayHeld(w *shardWorker) {
	held := w.held
	var n int64
	for i := range held {
		e := &held[i]
		switch e.kind {
		case ringBatch:
			if err := w.op.ProcessBatch(e.id, e.els); err != nil {
				s.recordErr(err)
			}
			n += int64(len(e.els))
		case ringDetach:
			w.op.Detach(e.id)
		}
	}
	if n != 0 {
		w.processed.Add(n)
	}
	w.held = held[:0]
	s.flushEmit(w)
}

// workerEmit is worker w's output callback, running on w's goroutine during
// merge processing. Emissions are staged locally and flushed once per drain
// pass (flushEmit), so the emit mutex is taken per batch, not per element.
func (s *Sharded) workerEmit(w *shardWorker) core.Emit {
	return func(e temporal.Element) {
		w.out = append(w.out, e)
	}
}

// flushEmit publishes worker w's staged output. Counters are folded outside
// the lock; emitMu guards only the frontier advance and the downstream emit.
// The forwarded elements stay legal against the reunified stable point
// because worker w's frontier entry (updated only here, in w's own emission
// order) never runs ahead of elements w staged earlier, and the frontier
// minimum never runs ahead of any entry.
func (s *Sharded) flushEmit(w *shardWorker) {
	if len(w.out) == 0 {
		return
	}
	var ins, adj, wd int64
	for _, e := range w.out {
		switch e.Kind {
		case temporal.KindInsert:
			ins++
		case temporal.KindAdjust:
			adj++
			if e.Ve == e.Vs {
				wd++
			}
		}
	}
	s.outIns.Add(ins)
	s.outAdj.Add(adj)
	s.tel.OutBulk(ins, adj, wd)
	s.emitMu.Lock()
	for _, e := range w.out {
		if e.Kind != temporal.KindStable {
			s.emit(e)
			continue
		}
		if s.front.Update(w.idx, e.T()) {
			if min := s.front.Min(); min > temporal.Time(s.maxStable.Load()) {
				s.maxStable.Store(int64(min))
				s.outStb.Add(1)
				s.tel.OutStable(w.idx, min)
				s.emit(temporal.Stable(min))
			}
		}
	}
	s.emitMu.Unlock()
	w.out = w.out[:0]
}

// onWorkerFeedback folds per-worker fast-forward signals into one reunified
// signal per stream: the minimum across workers, forwarded only when it
// advances.
func (s *Sharded) onWorkerFeedback(p int, f core.Feedback) {
	s.ffMu.Lock()
	seen, ok := s.ffSeen[f.Stream]
	if !ok {
		seen = make([]temporal.Time, len(s.workers))
		for i := range seen {
			seen[i] = temporal.MinTime
		}
		s.ffSeen[f.Stream] = seen
	}
	seen[p] = temporal.MaxT(seen[p], f.T)
	min := seen[0]
	for _, t := range seen[1:] {
		min = temporal.MinT(min, t)
	}
	advanced := false
	sent, sentOK := s.ffSent[f.Stream]
	if min != temporal.MinTime && (!sentOK || min > sent) {
		s.ffSent[f.Stream] = min
		advanced = true
	}
	s.ffMu.Unlock()
	if advanced {
		s.tel.FF(f.Stream, min)
		s.fb(core.Feedback{Stream: f.Stream, T: min})
	}
}

// Attach registers a publisher under a fresh id, mirrored across every
// worker. The registration is a synchronous control-lane round trip per
// worker — NOT a ring entry — because rings only order one publisher's
// traffic against itself, while an attach must be ordered against every
// other publisher's traffic: Attach returns only once every worker's merger
// knows the stream, so no worker frontier computed after this call can
// ignore it, and the publisher cannot have enqueued data before it.
func (s *Sharded) Attach(joinTime temporal.Time) core.StreamID {
	nw := len(s.workers)
	pub := &shardPub{
		rings: make([]*spscRing, nw),
		parts: make([][]temporal.Element, nw),
	}
	for p := range pub.rings {
		pub.rings[p] = &spscRing{}
	}
	s.pubMu.Lock()
	id := s.nextID
	s.nextID++
	s.pubs[id] = pub
	s.pubMu.Unlock()
	ack := make(chan struct{}, 1)
	for p, w := range s.workers {
		w.addRing(pub.rings[p])
		w.ctl <- ctlMsg{kind: ctlAttach, id: id, joinTime: joinTime, ack: ack}
		w.wakeUp()
		<-ack
	}
	s.tel.Attached(id, joinTime)
	return id
}

// Detach unregisters publisher id on every worker and returns only once the
// publisher's stream is fully consumed: each worker unlinks the publisher's
// ring once it consumes the detach entry (the ring's last, per the ordering
// contract), and Detach waits for that on every ring. The drain barrier is
// what makes the server's quiescence signal ("every publisher detached")
// meaningful — once it holds, every routed element has been merged and every
// per-partition counter is final, which the observability layer's routing-
// conservation invariant (and its tests) depend on. Blocking here is fine:
// Detach is connection teardown, the one moment a publisher handler has
// nothing left to pipeline. A ring's entries can outlive this wait only
// inside a migration recipient's holding queue, which its in-flight
// migration replays before completing.
func (s *Sharded) Detach(id core.StreamID) {
	if s.closed.Load() {
		return
	}
	s.pubMu.Lock()
	pub := s.pubs[id]
	delete(s.pubs, id)
	s.pubMu.Unlock()
	if pub == nil {
		return
	}
	for p, w := range s.workers {
		pub.rings[p].push(ringDetach, id, nil)
		w.wakeUp()
	}
	for p, w := range s.workers {
		for pub.rings[p].pending() > 0 {
			w.wakeUp()
			runtime.Gosched()
		}
	}
	s.ffMu.Lock()
	delete(s.ffSeen, id)
	delete(s.ffSent, id)
	s.ffMu.Unlock()
	s.tel.Detached(id)
}

// ProcessBatch routes one publisher batch caller-side: inserts/adjusts to
// their slot's worker, stables coalesced into one batched frontier update
// appended to every worker's sub-batch, preserving the batch's element order
// within each partition's sub-batch. It returns the pool's recorded error
// state — merge errors are asynchronous, surfacing on a later call (or at
// Close) rather than the one that enqueued the faulty element.
func (s *Sharded) ProcessBatch(id core.StreamID, els []temporal.Element) error {
	if s.closed.Load() {
		return ErrShardedClosed
	}
	s.pubMu.RLock()
	pub := s.pubs[id]
	s.pubMu.RUnlock()
	if pub == nil {
		return s.Err()
	}
	nw := len(s.workers)
	for p := 0; p < nw; p++ {
		pub.parts[p] = pub.parts[p][:0]
	}
	pub.slots = pub.slots[:0]

	// Pass 1 (no locks): hash, count, and remember each element's slot.
	var ins, adj, stb int64
	maxStb := temporal.MinTime
	track := s.reb != nil
	for _, e := range els {
		if e.Kind == temporal.KindStable {
			stb++
			if t := e.T(); t > maxStb {
				maxStb = t
			}
			pub.slots = append(pub.slots, -1)
			continue
		}
		if e.Kind == temporal.KindInsert {
			ins++
		} else {
			adj++
		}
		slot := slotOf(s.key(e.Payload))
		pub.slots = append(pub.slots, int32(slot))
		if track {
			if pub.slotCount[slot] == 0 {
				pub.touched = append(pub.touched, slot)
			}
			pub.slotCount[slot]++
		}
	}
	s.inIns.Add(ins)
	s.inAdj.Add(adj)
	s.inStb.Add(stb)
	s.tel.InBulk(ins, adj, stb, maxStb)
	if track {
		for _, sl := range pub.touched {
			s.slotLoad[sl].Add(pub.slotCount[sl])
			pub.slotCount[sl] = 0
		}
		pub.touched = pub.touched[:0]
	}

	// Pass 2 (under the route read-lock): resolve owners against one table
	// version and enqueue. Keeping the pushes inside the read section is what
	// makes a migration's tail snapshot a sound drain barrier: the write side
	// cannot interleave with a half-pushed batch.
	s.routeMu.RLock()
	table := s.table.Load()
	for i, e := range els {
		if sl := pub.slots[i]; sl >= 0 {
			p := table.owner[sl]
			pub.parts[p] = append(pub.parts[p], e)
		}
	}
	if stb > 0 {
		stable := temporal.Stable(maxStb)
		for p := 0; p < nw; p++ {
			pub.parts[p] = append(pub.parts[p], stable)
		}
	}
	for p := 0; p < nw; p++ {
		if len(pub.parts[p]) > 0 {
			pub.rings[p].push(ringBatch, id, pub.parts[p])
		}
	}
	s.routeMu.RUnlock()
	for p := 0; p < nw; p++ {
		if len(pub.parts[p]) > 0 {
			s.workers[p].wakeUp()
		}
	}
	return s.Err()
}

// MaxStable returns the reunified stable point.
func (s *Sharded) MaxStable() temporal.Time {
	return temporal.Time(s.maxStable.Load())
}

// Err returns the first asynchronous merge error, if any.
func (s *Sharded) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *Sharded) recordErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.tel.Fault(0)
}

// Stats returns the reunified traffic counters: input/output traffic as the
// reunified stream saw it (a broadcast stable counts once), Dropped and
// ConsistencyWarnings summed over the workers. The worker sums are gathered
// through the control lanes, so the caller briefly waits behind in-flight
// batches.
func (s *Sharded) Stats() core.Stats {
	st := core.Stats{
		InInserts:  s.inIns.Load(),
		InAdjusts:  s.inAdj.Load(),
		InStables:  s.inStb.Load(),
		OutInserts: s.outIns.Load(),
		OutAdjusts: s.outAdj.Load(),
		OutStables: s.outStb.Load(),
	}
	for _, ws := range s.workerStats() {
		st.Dropped += ws.Dropped
		st.ConsistencyWarnings += ws.ConsistencyWarnings
	}
	return st
}

// SizeBytes sums the workers' merge-state footprints, gathered through the
// control lanes on a reusable reply channel (sizing walks each partition's
// index, so this is a cold-path call — stats queries and periodic logs —
// never per element). Under ShardSizeCache a sweep younger than the TTL is
// served from cache, so pollers (the server's stats tick plus the /metrics
// handler, each calling this independently) trigger at most one per-worker
// round-trip sweep per window instead of one per call. It also refreshes the
// pool telemetry node's state gauge when one is attached.
func (s *Sharded) SizeBytes() int {
	if s.closed.Load() {
		return 0
	}
	if s.sizeTTL > 0 {
		if stamp := s.sizeStamp.Load(); stamp != 0 &&
			time.Now().UnixNano()-stamp < s.sizeTTL.Nanoseconds() {
			return int(s.sizeCached.Load())
		}
	}
	s.coldMu.Lock()
	total := 0
	for _, w := range s.workers {
		w.ctl <- ctlMsg{kind: ctlSize, sizeReply: s.sizeReply}
		w.wakeUp()
		total += <-s.sizeReply
	}
	s.coldMu.Unlock()
	if s.sizeTTL > 0 {
		s.sizeCached.Store(int64(total))
		s.sizeStamp.Store(time.Now().UnixNano())
	}
	s.tel.SetStateBytes(total)
	return total
}

// workerStats fetches each worker's merger counters via its control lane,
// reusing the pool's reply channel across workers and calls.
func (s *Sharded) workerStats() []core.Stats {
	out := make([]core.Stats, len(s.workers))
	if s.closed.Load() {
		return out
	}
	s.coldMu.Lock()
	defer s.coldMu.Unlock()
	for p, w := range s.workers {
		w.ctl <- ctlMsg{kind: ctlStats, statsReply: s.statsReply}
		w.wakeUp()
		out[p] = <-s.statsReply
	}
	return out
}

// PartitionStat is one worker's load gauge set (see metrics wiring in
// lmserved).
type PartitionStat struct {
	// QueueDepth is the number of entries pending across the worker's ingress
	// rings.
	QueueDepth int
	// Processed is the number of elements the worker has merged.
	Processed int64
	// Stable is the worker's stable frontier.
	Stable temporal.Time
	// Lag is how far the worker's frontier trails the leading partition's.
	Lag temporal.Time
}

// PartitionStats samples every worker's gauges without stopping the pool,
// refreshing each worker's telemetry queue-depth gauge along the way.
func (s *Sharded) PartitionStats() []PartitionStat {
	out := make([]PartitionStat, len(s.workers))
	s.emitMu.Lock()
	lead := s.front.Max()
	for p := range out {
		out[p].Stable = s.front.Value(p)
		if lead != temporal.MinTime && out[p].Stable != temporal.MinTime && !lead.IsInf() {
			out[p].Lag = lead - out[p].Stable
		}
	}
	s.emitMu.Unlock()
	for p, w := range s.workers {
		depth := 0
		for _, r := range w.ringList() {
			depth += r.pending()
		}
		out[p].QueueDepth = depth
		out[p].Processed = w.processed.Load()
		w.tel.SetQueueDepth(depth)
	}
	return out
}

// SlotOwner implements Rebalancer: the worker currently owning a routing
// slot.
func (s *Sharded) SlotOwner(slot int) int {
	return int(s.table.Load().owner[slot])
}

// SlotLoads returns the cumulative routed-element count per routing slot.
// The counters are the adaptive controller's load signal and are maintained
// only while one is attached (ShardRebalance); without one they read zero.
// Combined with SlotOwner they give the offered-load balance of the current
// slot assignment — the quantity the controller flattens — independent of
// which worker goroutines the OS scheduler happened to run.
func (s *Sharded) SlotLoads() (out [Slots]int64) {
	for i := range out {
		out[i] = s.slotLoad[i].Load()
	}
	return out
}

// MigrateSlot implements Rebalancer: it moves ownership of one routing slot
// to worker `to` through the live migration protocol (rebalance.go),
// blocking until the state transplant has been handed to the recipient. It
// reports whether a migration happened; it is a no-op when the slot already
// lives on `to`, when the workers' algorithm does not support handoff, or on
// a closed pool. Cold path — not for concurrent use with Close.
func (s *Sharded) MigrateSlot(slot, to int) bool {
	if s.closed.Load() || slot < 0 || slot >= Slots || to < 0 || to >= len(s.workers) || !s.handoff {
		return false
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()
	from := int(s.table.Load().owner[slot])
	if from == to {
		return false
	}
	s.migrateLocked(from, []slotMove{{slot: slot, to: to}})
	s.manualMigs.Add(1)
	return true
}

// Migrations returns the number of completed slot migrations.
func (s *Sharded) Migrations() int64 {
	if s.reb == nil {
		return s.manualMigs.Load()
	}
	return s.reb.migrations.Load() + s.manualMigs.Load()
}

// Close drains and stops the workers. No Attach/Detach/ProcessBatch may be
// in flight or issued afterwards (the server closes publisher handlers
// first). Close returns the pool's recorded error state.
func (s *Sharded) Close() error {
	if !s.closing.Swap(true) {
		// Stop the rebalance controller before marking the pool closed: an
		// in-flight migration completes against live workers, and no new one
		// starts against exiting ones.
		if s.reb != nil {
			s.reb.stop()
		}
		s.closed.Store(true)
		for _, w := range s.workers {
			w.wakeUp()
		}
		s.wg.Wait()
	}
	return s.Err()
}

// --- shardWorker helpers ---

func (w *shardWorker) ringList() []*spscRing {
	if p := w.rings.Load(); p != nil {
		return *p
	}
	return nil
}

func (w *shardWorker) addRing(r *spscRing) {
	w.ringMu.Lock()
	cur := w.ringList()
	next := make([]*spscRing, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, r)
	w.rings.Store(&next)
	w.ringMu.Unlock()
}

func (w *shardWorker) dropRing(r *spscRing) {
	w.ringMu.Lock()
	cur := w.ringList()
	next := make([]*spscRing, 0, len(cur))
	for _, x := range cur {
		if x != r {
			next = append(next, x)
		}
	}
	w.rings.Store(&next)
	w.ringMu.Unlock()
}

// wakeUp unparks the worker if it is (about to be) blocked. The CAS hands
// exactly one producer the duty of posting the token; a stale token only
// causes a spurious scan.
func (w *shardWorker) wakeUp() {
	if w.parked.Load() && w.parked.CompareAndSwap(true, false) {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// workReady reports whether any ring or the control lane has pending work;
// the worker re-checks it between publishing parked=true and blocking, which
// with the producers' push-then-check-parked order makes the park race-free.
func (w *shardWorker) workReady() bool {
	if len(w.ctl) > 0 {
		return true
	}
	for _, r := range w.ringList() {
		if r.pending() > 0 {
			return true
		}
	}
	return false
}
