package partition

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lmerge/internal/core"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// ErrShardedClosed reports an operation on a closed Sharded pool.
var ErrShardedClosed = errors.New("partition: sharded pool closed")

// Sharded is the concurrent form of the partitioned merge: one worker
// goroutine per partition, each owning a full core.Operator (dynamic
// attach/detach, feedback) over its slice of the key space. Callers route
// whole publisher batches in; inserts/adjusts are steered to their key's
// worker, stables are broadcast to every worker, and worker outputs are
// reunified under a single emit mutex with the min-frontier rule.
//
// It is the ingestion backend behind lmserved's -partitions flag: publisher
// handlers enqueue and return, per-partition merge work proceeds in parallel,
// and only the (cheap) reunified emission is serialised.
//
// Ordering contract: Attach/Detach/ProcessBatch for one publisher must be
// issued from one goroutine (the server's per-connection handler), which
// with per-worker FIFO queues preserves the per-stream element order each
// partition observes. Different publishers interleave freely.
type Sharded struct {
	workers []*shardWorker
	key     KeyFunc
	emit    core.Emit

	// emitMu serialises reunified emission; front/outStats are owned by it.
	emitMu    sync.Mutex
	front     *frontier
	maxStable atomic.Int64

	// Reunified traffic counters (see Stats).
	inIns, inAdj, inStb    atomic.Int64
	outIns, outAdj, outStb atomic.Int64

	idMu   sync.Mutex
	nextID core.StreamID

	// fb receives reunified fast-forward signals: the minimum of the
	// per-worker signals for a stream, since a publisher can only skip
	// elements no partition needs.
	fb     core.FeedbackFunc
	ffMu   sync.Mutex
	ffSeen map[core.StreamID][]temporal.Time
	ffSent map[core.StreamID]temporal.Time

	// tel observes the reunified stream (nil-safe): inputs as routed, outputs
	// under emitMu, with the binding partition index as the leadership stream
	// on stable advances (see ShardObserve).
	tel *obs.Node

	errMu  sync.Mutex
	err    error
	closed atomic.Bool
	wg     sync.WaitGroup
}

type shardWorker struct {
	idx       int
	ch        chan shardCmd
	op        *core.Operator
	processed atomic.Int64
}

type shardCmdKind uint8

const (
	cmdBatch shardCmdKind = iota
	cmdAttach
	cmdDetach
	cmdStats
	cmdSize
)

type shardCmd struct {
	kind      shardCmdKind
	id        core.StreamID
	els       []temporal.Element // owned by the command
	joinTime  temporal.Time
	reply     chan core.Stats
	sizeReply chan int
}

// shardQueueDepth is the per-worker command queue capacity: deep enough to
// decouple publisher bursts from merge work, bounded so memory stays
// proportional to partitions, not load.
const shardQueueDepth = 1024

// ShardedOption configures a Sharded pool.
type ShardedOption func(*shardedConfig)

type shardedConfig struct {
	key     KeyFunc
	fb      core.FeedbackFunc
	lag     temporal.Time
	reg     *obs.Registry
	obsName string
}

// ShardKeyFunc overrides the payload→hash routing function.
func ShardKeyFunc(fn KeyFunc) ShardedOption {
	return func(c *shardedConfig) {
		if fn != nil {
			c.key = fn
		}
	}
}

// ShardObserve registers the pool with telemetry registry reg: a reunify
// node named name carries the pool's input/output counters, freshness, and
// partition-leadership monitor (the "stream" on an output stable is the
// partition index whose frontier update raised the reunified minimum — the
// partition gating freshness), and each worker's core operator reports into
// its own node named "name/partP". Attach before any traffic; the option
// only takes effect at construction.
func ShardObserve(reg *obs.Registry, name string) ShardedOption {
	return func(c *shardedConfig) {
		c.reg = reg
		c.obsName = name
	}
}

// ShardFeedback enables reunified fast-forward feedback: fn receives a
// signal for a stream once every worker has signalled it, carrying the
// minimum time across workers. fn runs on worker goroutines and must be
// safe for concurrent use.
func ShardFeedback(fn core.FeedbackFunc, lag temporal.Time) ShardedOption {
	return func(c *shardedConfig) {
		c.fb = fn
		c.lag = lag
	}
}

// NewSharded starts a pool of parts workers, each merging with an algorithm
// built by mk around the worker's partition-local emit. emit receives the
// reunified output; it runs under the pool's emit mutex (never concurrently
// with itself).
func NewSharded(parts int, mk func(core.Emit) core.Merger, emit core.Emit, opts ...ShardedOption) *Sharded {
	if parts < 1 {
		parts = 1
	}
	cfg := shardedConfig{key: DefaultKey, lag: -1}
	for _, fn := range opts {
		fn(&cfg)
	}
	if emit == nil {
		emit = func(temporal.Element) {}
	}
	s := &Sharded{
		workers: make([]*shardWorker, parts),
		key:     cfg.key,
		emit:    emit,
		front:   newFrontier(parts),
		fb:      cfg.fb,
		ffSeen:  make(map[core.StreamID][]temporal.Time),
		ffSent:  make(map[core.StreamID]temporal.Time),
	}
	s.maxStable.Store(int64(temporal.MinTime))
	if cfg.reg != nil {
		s.tel = cfg.reg.Node(cfg.obsName)
	}
	for p := range s.workers {
		w := &shardWorker{idx: p, ch: make(chan shardCmd, shardQueueDepth)}
		var opOpts []core.OperatorOption
		if cfg.fb != nil && cfg.lag >= 0 {
			opOpts = append(opOpts, core.WithFeedback(func(f core.Feedback) {
				s.onWorkerFeedback(w.idx, f)
			}, cfg.lag))
		}
		if cfg.reg != nil {
			opOpts = append(opOpts, core.WithObserver(cfg.reg.Node(fmt.Sprintf("%s/part%d", cfg.obsName, p))))
		}
		w.op = core.NewOperator(mk(s.workerEmit(p)), opOpts...)
		s.workers[p] = w
		s.wg.Add(1)
		go s.run(w)
	}
	return s
}

// Partitions returns the worker count.
func (s *Sharded) Partitions() int { return len(s.workers) }

func (s *Sharded) run(w *shardWorker) {
	defer s.wg.Done()
	for cmd := range w.ch {
		switch cmd.kind {
		case cmdBatch:
			if err := w.op.ProcessBatch(cmd.id, cmd.els); err != nil {
				s.recordErr(err)
			}
			w.processed.Add(int64(len(cmd.els)))
		case cmdAttach:
			w.op.AttachAt(cmd.id, cmd.joinTime)
		case cmdDetach:
			w.op.Detach(cmd.id)
		case cmdStats:
			cmd.reply <- *w.op.Merger().Stats()
		case cmdSize:
			cmd.sizeReply <- w.op.Merger().SizeBytes()
		}
	}
}

// workerEmit is worker p's output callback, running on p's goroutine during
// merge processing. Reunification is serialised by emitMu; the forwarded
// elements stay legal against the reunified stable point because worker p's
// frontier entry (updated only here, in p's own emission order) never runs
// ahead of elements p emitted earlier, and the frontier minimum never runs
// ahead of any entry.
func (s *Sharded) workerEmit(p int) core.Emit {
	return func(e temporal.Element) {
		s.emitMu.Lock()
		defer s.emitMu.Unlock()
		switch e.Kind {
		case temporal.KindStable:
			if s.front.Update(p, e.T()) {
				if min := s.front.Min(); min > temporal.Time(s.maxStable.Load()) {
					s.maxStable.Store(int64(min))
					s.outStb.Add(1)
					s.tel.OutStable(p, min)
					s.emit(temporal.Stable(min))
				}
			}
		case temporal.KindInsert:
			s.outIns.Add(1)
			s.tel.OutInsert()
			s.emit(e)
		case temporal.KindAdjust:
			s.outAdj.Add(1)
			s.tel.OutAdjust(e.Ve == e.Vs)
			s.emit(e)
		}
	}
}

// onWorkerFeedback folds per-worker fast-forward signals into one reunified
// signal per stream: the minimum across workers, forwarded only when it
// advances.
func (s *Sharded) onWorkerFeedback(p int, f core.Feedback) {
	s.ffMu.Lock()
	seen, ok := s.ffSeen[f.Stream]
	if !ok {
		seen = make([]temporal.Time, len(s.workers))
		for i := range seen {
			seen[i] = temporal.MinTime
		}
		s.ffSeen[f.Stream] = seen
	}
	seen[p] = temporal.MaxT(seen[p], f.T)
	min := seen[0]
	for _, t := range seen[1:] {
		min = temporal.MinT(min, t)
	}
	advanced := false
	sent, sentOK := s.ffSent[f.Stream]
	if min != temporal.MinTime && (!sentOK || min > sent) {
		s.ffSent[f.Stream] = min
		advanced = true
	}
	s.ffMu.Unlock()
	if advanced {
		s.tel.FF(f.Stream, min)
		s.fb(core.Feedback{Stream: f.Stream, T: min})
	}
}

// Attach registers a publisher under a fresh id, mirrored across every
// worker. The id is valid for ProcessBatch as soon as Attach returns:
// per-worker queues are FIFO, so the attach command precedes any batch the
// caller enqueues afterwards.
func (s *Sharded) Attach(joinTime temporal.Time) core.StreamID {
	s.idMu.Lock()
	id := s.nextID
	s.nextID++
	s.idMu.Unlock()
	for _, w := range s.workers {
		w.ch <- shardCmd{kind: cmdAttach, id: id, joinTime: joinTime}
	}
	s.tel.Attached(id, joinTime)
	return id
}

// Detach unregisters publisher id on every worker.
func (s *Sharded) Detach(id core.StreamID) {
	if s.closed.Load() {
		return
	}
	for _, w := range s.workers {
		w.ch <- shardCmd{kind: cmdDetach, id: id}
	}
	s.ffMu.Lock()
	delete(s.ffSeen, id)
	delete(s.ffSent, id)
	s.ffMu.Unlock()
	s.tel.Detached(id)
}

// ProcessBatch routes one publisher batch: inserts/adjusts to their key's
// worker, stables to every worker, preserving the batch's element order
// within each partition's sub-batch. It returns the pool's recorded error
// state — merge errors are asynchronous, surfacing on a later call (or at
// Close) rather than the one that enqueued the faulty element.
func (s *Sharded) ProcessBatch(id core.StreamID, els []temporal.Element) error {
	if s.closed.Load() {
		return ErrShardedClosed
	}
	parts := make([][]temporal.Element, len(s.workers))
	for _, e := range els {
		s.tel.In(id, e.Kind, e.Ve)
		switch e.Kind {
		case temporal.KindStable:
			s.inStb.Add(1)
			for p := range parts {
				parts[p] = append(parts[p], e)
			}
		case temporal.KindInsert:
			s.inIns.Add(1)
			p := int(s.key(e.Payload) % uint64(len(s.workers)))
			parts[p] = append(parts[p], e)
		case temporal.KindAdjust:
			s.inAdj.Add(1)
			p := int(s.key(e.Payload) % uint64(len(s.workers)))
			parts[p] = append(parts[p], e)
		}
	}
	for p, sub := range parts {
		if len(sub) > 0 {
			s.workers[p].ch <- shardCmd{kind: cmdBatch, id: id, els: sub}
		}
	}
	return s.Err()
}

// MaxStable returns the reunified stable point.
func (s *Sharded) MaxStable() temporal.Time {
	return temporal.Time(s.maxStable.Load())
}

// Err returns the first asynchronous merge error, if any.
func (s *Sharded) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *Sharded) recordErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.tel.Fault(0)
}

// Stats returns the reunified traffic counters: input/output traffic as the
// reunified stream saw it (a broadcast stable counts once), Dropped and
// ConsistencyWarnings summed over the workers. The worker sums are gathered
// through the queues, so the caller briefly waits behind in-flight batches.
func (s *Sharded) Stats() core.Stats {
	st := core.Stats{
		InInserts:  s.inIns.Load(),
		InAdjusts:  s.inAdj.Load(),
		InStables:  s.inStb.Load(),
		OutInserts: s.outIns.Load(),
		OutAdjusts: s.outAdj.Load(),
		OutStables: s.outStb.Load(),
	}
	for _, ws := range s.workerStats() {
		st.Dropped += ws.Dropped
		st.ConsistencyWarnings += ws.ConsistencyWarnings
	}
	return st
}

// SizeBytes sums the workers' merge-state footprints, gathered through the
// queues (sizing walks each partition's index, so this is a cold-path call —
// stats queries and periodic logs — never per element). It also refreshes
// the pool telemetry node's state gauge when one is attached.
func (s *Sharded) SizeBytes() int {
	if s.closed.Load() {
		return 0
	}
	total := 0
	reply := make(chan int, 1)
	for _, w := range s.workers {
		w.ch <- shardCmd{kind: cmdSize, sizeReply: reply}
		total += <-reply
	}
	s.tel.SetStateBytes(total)
	return total
}

// workerStats fetches each worker's merger counters via its queue.
func (s *Sharded) workerStats() []core.Stats {
	out := make([]core.Stats, len(s.workers))
	if s.closed.Load() {
		return out
	}
	reply := make(chan core.Stats, 1)
	for p, w := range s.workers {
		w.ch <- shardCmd{kind: cmdStats, reply: reply}
		out[p] = <-reply
	}
	return out
}

// PartitionStat is one worker's load gauge set (see metrics wiring in
// lmserved).
type PartitionStat struct {
	// QueueDepth is the number of commands waiting in the worker's queue.
	QueueDepth int
	// Processed is the number of elements the worker has merged.
	Processed int64
	// Stable is the worker's stable frontier.
	Stable temporal.Time
	// Lag is how far the worker's frontier trails the leading partition's.
	Lag temporal.Time
}

// PartitionStats samples every worker's gauges without stopping the pool.
func (s *Sharded) PartitionStats() []PartitionStat {
	out := make([]PartitionStat, len(s.workers))
	s.emitMu.Lock()
	lead := s.front.Max()
	for p := range out {
		out[p].Stable = s.front.Value(p)
		if lead != temporal.MinTime && out[p].Stable != temporal.MinTime && !lead.IsInf() {
			out[p].Lag = lead - out[p].Stable
		}
	}
	s.emitMu.Unlock()
	for p, w := range s.workers {
		out[p].QueueDepth = len(w.ch)
		out[p].Processed = w.processed.Load()
	}
	return out
}

// Close drains and stops the workers. No Attach/Detach/ProcessBatch may be
// in flight or issued afterwards (the server closes publisher handlers
// first). Close returns the pool's recorded error state.
func (s *Sharded) Close() error {
	if !s.closed.Swap(true) {
		for _, w := range s.workers {
			close(w.ch)
		}
		s.wg.Wait()
	}
	return s.Err()
}
