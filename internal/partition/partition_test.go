package partition

import (
	"math/rand"
	"testing"

	"lmerge/internal/core"
	"lmerge/internal/engine"
	"lmerge/internal/gen"
	"lmerge/internal/operators"
	"lmerge/internal/temporal"
)

func TestFrontierMatchesNaiveMin(t *testing.T) {
	const parts = 9
	f := newFrontier(parts)
	if f.Min() != temporal.MinTime {
		t.Fatalf("fresh frontier Min = %v", f.Min())
	}
	naive := make([]temporal.Time, parts)
	for i := range naive {
		naive[i] = temporal.MinTime
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		p := rng.Intn(parts)
		t2 := temporal.Time(rng.Int63n(1 << 20))
		moved := f.Update(p, t2)
		if moved != (t2 > naive[p]) {
			t.Fatalf("step %d: Update(%d, %v) moved=%v, naive %v", i, p, t2, moved, naive[p])
		}
		naive[p] = temporal.MaxT(naive[p], t2)
		min, max := naive[0], naive[0]
		for _, v := range naive[1:] {
			min, max = temporal.MinT(min, v), temporal.MaxT(max, v)
		}
		if f.Min() != min || f.Max() != max {
			t.Fatalf("step %d: Min/Max = %v/%v, want %v/%v", i, f.Min(), f.Max(), min, max)
		}
		if f.Value(p) != naive[p] {
			t.Fatalf("step %d: Value(%d) = %v, want %v", i, p, f.Value(p), naive[p])
		}
	}
}

// testWorkload renders three divergent presentations of one script and
// returns them with the script's final TDB.
func testWorkload(t *testing.T, dup float64) ([]temporal.Stream, *temporal.TDB) {
	t.Helper()
	sc := gen.NewScript(gen.Config{
		Events:       300,
		Seed:         42,
		Revisions:    0.4,
		RemoveProb:   0.2,
		PayloadBytes: 6,
		ValueRange:   40, // few distinct IDs: keys repeat and skew partitions
		DupProb:      dup,
	})
	var streams []temporal.Stream
	for i := 0; i < 3; i++ {
		streams = append(streams, sc.Render(gen.RenderOptions{
			Seed:        int64(100 + i),
			Disorder:    0.25,
			StableEvery: 11 + i,
		}))
	}
	return streams, sc.TDB()
}

// interleave produces one (stream, element) feed order covering all inputs.
func interleave(streams []temporal.Stream, seed int64) (order []int) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]int, len(streams))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	for len(order) < total {
		s := rng.Intn(len(streams))
		if pos[s] < len(streams[s]) {
			order = append(order, s)
			pos[s]++
		}
	}
	return order
}

func drive(t *testing.T, m core.Merger, streams []temporal.Stream, order []int, check func()) {
	t.Helper()
	pos := make([]int, len(streams))
	for s := range streams {
		m.Attach(s)
	}
	for _, s := range order {
		e := streams[s][pos[s]]
		pos[s]++
		if err := m.Process(s, e); err != nil {
			t.Fatalf("process stream %d element %v: %v", s, e, err)
		}
		if check != nil {
			check()
		}
	}
}

func TestPartitionedMatchesSingleR3(t *testing.T) {
	streams, want := testWorkload(t, 0)
	order := interleave(streams, 7)
	for _, parts := range []int{1, 2, 3, 5} {
		var single, parted temporal.Stream
		ref := core.NewR3(func(e temporal.Element) { single = append(single, e) })
		pm := New(core.CaseR3, parts, func(e temporal.Element) { parted = append(parted, e) })

		drive(t, ref, streams, order, nil)
		drive(t, pm, streams, order, nil)

		// The stable trajectories must be identical: stables are broadcast and
		// every partition algorithm advances its stable point to the raiser's
		// time, so the frontier minimum equals the single merger's stable.
		if got, want := stableTrajectory(parted), stableTrajectory(single); !equalTimes(got, want) {
			t.Fatalf("parts=%d: stable trajectory %v, want %v", parts, got, want)
		}
		if pm.MaxStable() != ref.MaxStable() {
			t.Fatalf("parts=%d: MaxStable %v, want %v", parts, pm.MaxStable(), ref.MaxStable())
		}
		// The reunified stream must be a valid stream reconstituting to the
		// same TDB as both the single-pipeline output and the script.
		got := temporal.MustReconstitute(parted)
		if !got.Equal(temporal.MustReconstitute(single)) {
			t.Fatalf("parts=%d: reunified TDB differs from single-pipeline TDB", parts)
		}
		if !got.Equal(want) {
			t.Fatalf("parts=%d: reunified TDB differs from script TDB", parts)
		}
	}
}

func stableTrajectory(s temporal.Stream) []temporal.Time {
	var ts []temporal.Time
	for _, e := range s {
		if e.Kind == temporal.KindStable {
			ts = append(ts, e.T())
		}
	}
	return ts
}

func equalTimes(a, b []temporal.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPartitionedSnapshotUnion(t *testing.T) {
	streams, _ := testWorkload(t, 0)
	order := interleave(streams, 13)
	ref := core.NewR3(nil)
	pm := New(core.CaseR3, 4, nil)
	snap, ok := pm.(core.Snapshotter)
	if !ok {
		t.Fatal("partitioned R3 must implement Snapshotter")
	}
	pos := make([]int, len(streams))
	for s := range streams {
		ref.Attach(s)
		pm.Attach(s)
	}
	checked := 0
	for _, s := range order {
		e := streams[s][pos[s]]
		pos[s]++
		if err := ref.Process(s, e); err != nil {
			t.Fatal(err)
		}
		if err := pm.Process(s, e); err != nil {
			t.Fatal(err)
		}
		if e.Kind != temporal.KindStable || pm.MaxStable() == temporal.MinTime {
			continue
		}
		checked++
		got := temporal.MustReconstitute(snap.Snapshot())
		want := temporal.MustReconstitute(ref.Snapshot())
		if !got.Equal(want) {
			t.Fatalf("snapshot union diverges at stable %v:\n got %v\nwant %v",
				pm.MaxStable(), got, want)
		}
	}
	if checked == 0 {
		t.Fatal("no snapshot checkpoints exercised")
	}
}

func TestPartitionedR4Multiset(t *testing.T) {
	streams, want := testWorkload(t, 0.3)
	order := interleave(streams, 21)
	var parted temporal.Stream
	pm := New(core.CaseR4, 3, func(e temporal.Element) { parted = append(parted, e) })
	drive(t, pm, streams, order, nil)
	if got := temporal.MustReconstitute(parted); !got.Equal(want) {
		t.Fatal("partitioned R4 TDB differs from script TDB")
	}
}

func TestSnapshotCapabilityMirrorsPartitions(t *testing.T) {
	if _, ok := New(core.CaseR0, 2, nil).(core.Snapshotter); ok {
		t.Fatal("partitioned R0 must not advertise Snapshotter")
	}
	for _, c := range []core.Case{core.CaseR3, core.CaseR4} {
		if _, ok := New(c, 2, nil).(core.Snapshotter); !ok {
			t.Fatalf("partitioned %v must advertise Snapshotter", c)
		}
	}
}

func TestPartitionedDetachReleasesState(t *testing.T) {
	pm := New(core.CaseR3, 3, nil)
	for s := 0; s < 2; s++ {
		pm.Attach(s)
	}
	for i := int64(0); i < 50; i++ {
		e := temporal.Insert(temporal.P(i), temporal.Time(i), temporal.Time(i+10))
		if err := pm.Process(0, e); err != nil {
			t.Fatal(err)
		}
	}
	before := pm.SizeBytes()
	pm.Detach(0)
	// Stream 1 never vouched for stream 0's events; the detach retires them
	// in every partition.
	if after := pm.SizeBytes(); after >= before {
		t.Fatalf("SizeBytes after detach = %d, want < %d", after, before)
	}
}

// buildGraphs drives the same workload through the partitioned engine
// topology under the given runtime mode and returns the sink.
func runTopology(t *testing.T, streams []temporal.Stream, parts int, concurrent bool) (*operators.Sink, *Topology) {
	t.Helper()
	g := engine.NewGraph()
	topo := Build(g, len(streams), parts, -1, func(emit core.Emit) core.Merger {
		return core.NewR3(emit)
	})
	sink := operators.NewSink()
	sn := g.Add(sink)
	g.Connect(topo.Output, sn)

	if !concurrent {
		pos := make([]int, len(streams))
		for _, s := range interleave(streams, 31) {
			topo.Inputs[s].Inject(streams[s][pos[s]])
			pos[s]++
		}
		return sink, topo
	}
	rt := engine.NewRuntime(g)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for s := range streams {
		go func(s int) {
			defer func() { done <- struct{}{} }()
			if err := rt.InjectBatch(topo.Inputs[s], streams[s]); err != nil {
				t.Error(err)
			}
		}(s)
	}
	for range streams {
		<-done
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	return sink, topo
}

func TestTopologySyncMatchesScript(t *testing.T) {
	streams, want := testWorkload(t, 0)
	for _, parts := range []int{1, 2, 4} {
		sink, topo := runTopology(t, streams, parts, false)
		if !sink.TDB.Equal(want) {
			t.Fatalf("parts=%d: sync topology TDB differs from script", parts)
		}
		ru := topo.Output.Operator().(*Reunify)
		if ru.MaxStable() != temporal.Infinity {
			t.Fatalf("parts=%d: reunified stable = %v, want ∞", parts, ru.MaxStable())
		}
	}
}

func TestTopologyConcurrentMatchesScript(t *testing.T) {
	streams, want := testWorkload(t, 0)
	for _, parts := range []int{1, 3} {
		sink, _ := runTopology(t, streams, parts, true)
		if !sink.TDB.Equal(want) {
			t.Fatalf("parts=%d: concurrent topology TDB differs from script", parts)
		}
		if sink.Stables() == 0 {
			t.Fatalf("parts=%d: no stables reached the sink", parts)
		}
	}
}

func TestTopologyFeedbackReachesInputs(t *testing.T) {
	streams, _ := testWorkload(t, 0)
	g := engine.NewGraph()
	topo := Build(g, len(streams), 2, -1, func(emit core.Emit) core.Merger {
		return core.NewR3(emit)
	})
	sn := g.Add(operators.NewSink())
	g.Connect(topo.Output, sn)
	pos := make([]int, len(streams))
	for _, s := range interleave(streams, 3) {
		topo.Inputs[s].Inject(streams[s][pos[s]])
		pos[s]++
	}
	// A consumer fast-forward at the reunify node must walk through every
	// partition merger to every splitter input.
	topo.Output.SendFeedback(1000)
	for s, in := range topo.Inputs {
		if in.FFPoint() != 1000 {
			t.Fatalf("input %d FFPoint = %v, want 1000", s, in.FFPoint())
		}
	}
}
