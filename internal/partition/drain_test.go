package partition_test

import (
	"runtime"
	"sync"
	"testing"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/obs"
	"lmerge/internal/partition"
	"lmerge/internal/temporal"
)

// TestDetachDrainBarrier pins Detach's drain contract: once every publisher
// has detached, every routed element has been merged and the per-partition
// telemetry counters reconcile exactly with the pool's routing counters.
// The server's metrics quiescence signal ("all publishers detached") and the
// observability layer's routing-conservation invariant both rest on this.
// Regression: with deep SPSC rings, a detach that merely enqueued could
// return while whole sub-batches of a slow publisher were still queued — the
// reunified stable legitimately reaches ∞ off the faster publisher alone
// (one physically independent input vouches for the whole TDB), so waiting
// on the output frontier is NOT a drain barrier; Detach must provide one.
func TestDetachDrainBarrier(t *testing.T) {
	sc := gen.NewScript(gen.Config{Events: 32, Seed: 5, PayloadBytes: 8, MaxGap: 100, EventDuration: 500, Revisions: 0.3, RemoveProb: 0.1})
	var streams []temporal.Stream
	for i := 0; i < 2; i++ {
		st := sc.Render(gen.RenderOptions{Seed: int64(10 + i), Disorder: 0.3, StableFreq: 0.05})
		streams = append(streams, append(st, temporal.Stable(temporal.Infinity)))
	}
	for iter := 0; iter < 200; iter++ {
		reg := obs.NewRegistry()
		pool := partition.NewSharded(4, func(e core.Emit) core.Merger { return core.NewR3(e) }, nil,
			partition.ShardObserve(reg, "merge"))
		ids := make([]core.StreamID, len(streams))
		for i := range streams {
			ids[i] = pool.Attach(temporal.MinTime)
		}
		var wg sync.WaitGroup
		for i := range streams {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for lo := 0; lo < len(streams[i]); lo += 7 {
					hi := min(lo+7, len(streams[i]))
					pool.ProcessBatch(ids[i], streams[i][lo:hi])
				}
				pool.Detach(ids[i])
			}(i)
		}
		wg.Wait()
		// Every publisher has detached: counters must be final NOW, with no
		// settling sleep — that is the contract under test.
		var workerIn int64
		for _, n := range reg.Nodes() {
			if s := n.Snapshot(); s.Name != "merge" {
				workerIn += s.InInserts + s.InAdjusts
			}
		}
		var merge obs.Snapshot
		for _, s := range reg.Snapshot() {
			if s.Name == "merge" {
				merge = s
			}
		}
		if routed := merge.InInserts + merge.InAdjusts; workerIn != routed {
			t.Fatalf("iter %d: workers saw %d inserts/adjusts, pool routed %d\nstats: %+v",
				iter, workerIn, routed, pool.PartitionStats())
		}
		// The reunified frontier reaches ∞ promptly after drain (the final
		// emission flush may trail the counter barrier by one drain pass).
		for spins := 0; !pool.MaxStable().IsInf(); spins++ {
			if spins > 1_000_000 {
				t.Fatalf("iter %d: reunified stable %v never reached ∞ after drain", iter, pool.MaxStable())
			}
			runtime.Gosched()
		}
		if err := pool.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
	}
}
