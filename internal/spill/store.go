// Package spill bounds a merger's resident state by moving frozen, inert
// index nodes out of core: a watermark controller extracts FrozenSlices
// (internal/core) when SizeBytes exceeds a budget, writes them as sorted
// CRC-framed runs (internal/durable run format — the same serialized stream
// form the checkpoints write), and re-admits them on the rare events that
// could still interact with them. A background goroutine compacts runs with
// arity-capped hierarchical merges, bLSM/TPIE style, garbage-collecting
// frames whose whole lifetime has frozen.
package spill

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"lmerge/internal/core"
	"lmerge/internal/durable"
	"lmerge/internal/index"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// blobStore abstracts run-byte storage so the differential oracle can sweep
// the spill axis hermetically in memory while the server spills to disk.
type blobStore interface {
	write(name string, m durable.RunMeta, payload []byte) error
	read(name string) (durable.RunMeta, []byte, error)
	remove(name string)
	close()
}

// diskBlobs stores runs as files under one directory, which it owns: the
// directory is wiped at open (runs are crash-disposable — checkpoints
// subsume their content via Snapshot) and removed at close.
type diskBlobs struct{ dir string }

func newDiskBlobs(dir string) (*diskBlobs, error) {
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskBlobs{dir: dir}, nil
}

func (d *diskBlobs) write(name string, m durable.RunMeta, payload []byte) error {
	return durable.WriteRunFile(filepath.Join(d.dir, name), m, payload)
}

func (d *diskBlobs) read(name string) (durable.RunMeta, []byte, error) {
	return durable.ReadRunFile(filepath.Join(d.dir, name))
}

func (d *diskBlobs) remove(name string) { os.Remove(filepath.Join(d.dir, name)) }

func (d *diskBlobs) close() { os.RemoveAll(d.dir) }

// memBlobs keeps encoded runs in a map, still round-tripping through the
// durable run codec so the framing layer is exercised identically.
type memBlobs struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemBlobs() *memBlobs { return &memBlobs{m: make(map[string][]byte)} }

func (b *memBlobs) write(name string, m durable.RunMeta, payload []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[name] = durable.EncodeRun(m, payload)
	return nil
}

func (b *memBlobs) read(name string) (durable.RunMeta, []byte, error) {
	b.mu.Lock()
	data, ok := b.m[name]
	b.mu.Unlock()
	if !ok {
		return durable.RunMeta{}, nil, fmt.Errorf("spill: run %s: %w", name, os.ErrNotExist)
	}
	return durable.DecodeRun(data)
}

func (b *memBlobs) remove(name string) {
	b.mu.Lock()
	delete(b.m, name)
	b.mu.Unlock()
}

func (b *memBlobs) close() {
	b.mu.Lock()
	b.m = map[string][]byte{}
	b.mu.Unlock()
}

// fnv-1a over (Vs, Payload.ID, Payload.Data): the resident fingerprint of
// one spilled key. A fingerprint hit is only a hint — the run is decoded to
// confirm the key before any skip/unspill decision, so collisions cost a
// read, never correctness.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fingerprint(vs temporal.Time, p temporal.Payload) uint64 {
	h := uint64(fnvOffset64)
	mix8 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	mix8(uint64(vs))
	mix8(uint64(p.ID))
	for i := 0; i < len(p.Data); i++ {
		h ^= uint64(p.Data[i])
		h *= fnvPrime64
	}
	return h
}

// runOverheadBytes approximates one run descriptor's resident cost beyond
// its fingerprint array.
const runOverheadBytes = 112

// run is the resident descriptor of one out-of-core batch. Descriptors are
// immutable once published: member-set changes (Detach) and merges replace
// them with fresh ones, so pointer identity doubles as a generation check
// for the background merger's commit validation.
type run struct {
	name         string
	members      []core.StreamID // sorted
	clock        temporal.Time
	minVs, maxVs temporal.Time
	frames       int
	bytes        int      // encoded payload size
	hashes       []uint64 // sorted key fingerprints
}

func (r *run) hasMember(s core.StreamID) bool {
	i := sort.SearchInts(r.members, s)
	return i < len(r.members) && r.members[i] == s
}

func (r *run) mayContain(vs temporal.Time, h uint64) bool {
	if vs < r.minVs || vs > r.maxVs {
		return false
	}
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	return i < len(r.hashes) && r.hashes[i] == h
}

func (r *run) overhead() int { return runOverheadBytes + 8*len(r.hashes) }

func memberKey(members []core.StreamID) string { return fmt.Sprint(members) }

// store is the manifest of live runs. All manifest access is under mu; blob
// reads happen outside it (blob stores synchronize themselves and the
// background merger tolerates reads of just-removed runs by aborting).
type store struct {
	blobs blobStore
	tel   *obs.Spill

	mu     sync.Mutex
	runs   []*run
	seq    uint64
	frames int // total frames across runs
	maxVs  temporal.Time
}

func newStore(blobs blobStore, tel *obs.Spill) *store {
	return &store{blobs: blobs, tel: tel, maxVs: temporal.MinTime}
}

// nextName reserves a fresh run file name.
func (st *store) nextName() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	return fmt.Sprintf("run-%08d.lmrun", st.seq)
}

// refresh recomputes the fence and frame gauge; callers hold mu.
func (st *store) refreshLocked(dFrames, dRuns int64) {
	st.maxVs = temporal.MinTime
	st.frames = 0
	for _, r := range st.runs {
		if r.maxVs > st.maxVs {
			st.maxVs = r.maxVs
		}
		st.frames += r.frames
	}
	st.tel.AddResident(0, dFrames, dRuns)
}

// add publishes a freshly written run.
func (st *store) add(r *run) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.runs = append(st.runs, r)
	st.refreshLocked(int64(r.frames), 1)
}

// take claims r: it is removed from the manifest iff still published.
// A false return means a concurrent merge replaced it — retry the lookup.
func (st *store) take(r *run) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, x := range st.runs {
		if x == r {
			st.runs = append(st.runs[:i], st.runs[i+1:]...)
			st.refreshLocked(-int64(r.frames), -1)
			return true
		}
	}
	return false
}

// takeWithout claims some run NOT vouched by stream s (nil when none).
func (st *store) takeWithout(s core.StreamID) *run {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, r := range st.runs {
		if !r.hasMember(s) {
			st.runs = append(st.runs[:i], st.runs[i+1:]...)
			st.refreshLocked(-int64(r.frames), -1)
			return r
		}
	}
	return nil
}

// takeAny claims an arbitrary run (nil when the store is empty).
func (st *store) takeAny() *run {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.runs) == 0 {
		return nil
	}
	r := st.runs[len(st.runs)-1]
	st.runs = st.runs[:len(st.runs)-1]
	st.refreshLocked(-int64(r.frames), -1)
	return r
}

// dropMember rewrites every run vouched by s to exclude it (fresh
// descriptors, invalidating in-flight merges over the old ones). Runs may
// end up with empty member sets; they stay spilled — their frames are
// exactly the half-frozen zero-voucher nodes a resident Detach would keep
// for the next sweep to retire — and the next foreign stable unspills them.
func (st *store) dropMember(s core.StreamID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, r := range st.runs {
		if !r.hasMember(s) {
			continue
		}
		nr := *r
		nr.members = make([]core.StreamID, 0, len(r.members)-1)
		for _, m := range r.members {
			if m != s {
				nr.members = append(nr.members, m)
			}
		}
		st.runs[i] = &nr
	}
}

// candidates returns the published runs that may contain (vs, h).
func (st *store) candidates(vs temporal.Time, h uint64) []*run {
	st.mu.Lock()
	defer st.mu.Unlock()
	if vs > st.maxVs {
		return nil
	}
	var out []*run
	for _, r := range st.runs {
		if r.mayContain(vs, h) {
			out = append(out, r)
		}
	}
	return out
}

// all returns a snapshot of the published runs.
func (st *store) all() []*run {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]*run(nil), st.runs...)
}

// mergeGroup returns up to arity runs sharing one member set, oldest first,
// when at least arity such runs exist (nil otherwise). The runs stay
// published — the merge claims them only at commit, via replace.
func (st *store) mergeGroup(arity int) []*run {
	st.mu.Lock()
	defer st.mu.Unlock()
	groups := make(map[string][]*run)
	for _, r := range st.runs {
		k := memberKey(r.members)
		groups[k] = append(groups[k], r)
		if len(groups[k]) == arity {
			return append([]*run(nil), groups[k]...)
		}
	}
	return nil
}

// replace atomically swaps the input runs for the merged output (merged may
// be nil when every frame was garbage-collected). It fails — and the caller
// discards its output — if any input is no longer published, meaning a
// foreground unspill or Detach invalidated the merge.
func (st *store) replace(ins []*run, merged *run) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	idx := make(map[*run]bool, len(ins))
	for _, r := range ins {
		idx[r] = true
	}
	found := 0
	for _, r := range st.runs {
		if idx[r] {
			found++
		}
	}
	if found != len(ins) {
		return false
	}
	kept := st.runs[:0]
	dFrames, dRuns := int64(0), int64(0)
	for _, r := range st.runs {
		if idx[r] {
			dFrames -= int64(r.frames)
			dRuns--
			continue
		}
		kept = append(kept, r)
	}
	st.runs = kept
	if merged != nil {
		st.runs = append(st.runs, merged)
		dFrames += int64(merged.frames)
		dRuns++
	}
	st.refreshLocked(dFrames, dRuns)
	return true
}

// overheadBytes is the resident cost of the manifest (fingerprints and
// descriptors) — the part of the spill layer that still counts against the
// budget.
func (st *store) overheadBytes() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	total := 0
	for _, r := range st.runs {
		total += r.overhead()
	}
	return total
}

// stats returns the published run and frame counts.
func (st *store) stats() (runs, frames int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.runs), st.frames
}

func (st *store) close() {
	st.mu.Lock()
	st.runs = nil
	st.mu.Unlock()
	st.blobs.close()
}

// encodeFrames serialises frames as the checkpoint stream form: one insert
// element per occurrence, (Vs, Payload) ascending, Ve ascending within a
// frame.
func encodeFrames(frames []core.FrozenFrame) []byte {
	var buf []byte
	for _, fr := range frames {
		for _, vc := range fr.Ves {
			for i := 0; i < vc.Count; i++ {
				buf = core.AppendElement(buf, temporal.Insert(fr.Payload, fr.Vs, vc.Ve))
			}
		}
	}
	return buf
}

// decodeFrames parses a run payload back into frames, regrouping the
// occurrence inserts by (Vs, Payload).
func decodeFrames(payload []byte) ([]core.FrozenFrame, error) {
	s, err := core.DecodeStream(payload)
	if err != nil {
		return nil, err
	}
	var frames []core.FrozenFrame
	for _, e := range s {
		if e.Kind != temporal.KindInsert {
			return nil, fmt.Errorf("spill: run payload holds a %v element", e.Kind)
		}
		if n := len(frames); n > 0 && frames[n-1].Vs == e.Vs && frames[n-1].Payload == e.Payload {
			fr := &frames[n-1]
			if m := len(fr.Ves); fr.Ves[m-1].Ve == e.Ve {
				fr.Ves[m-1].Count++
			} else {
				fr.Ves = append(fr.Ves, index.VeCount{Ve: e.Ve, Count: 1})
			}
			continue
		}
		frames = append(frames, core.FrozenFrame{
			Vs: e.Vs, Payload: e.Payload,
			Ves: []index.VeCount{{Ve: e.Ve, Count: 1}},
		})
	}
	return frames, nil
}

// findFrame locates the frame for (vs, p) in an ascending frame slice.
func findFrame(frames []core.FrozenFrame, vs temporal.Time, p temporal.Payload) (core.FrozenFrame, bool) {
	k := temporal.VsPayload{Vs: vs, Payload: p}
	i := sort.Search(len(frames), func(i int) bool {
		return temporal.VsPayload{Vs: frames[i].Vs, Payload: frames[i].Payload}.Compare(k) >= 0
	})
	if i < len(frames) && frames[i].Vs == vs && frames[i].Payload == p {
		return frames[i], true
	}
	return core.FrozenFrame{}, false
}
