package spill

import (
	"reflect"
	"testing"

	"lmerge/internal/core"
	"lmerge/internal/gen"
	"lmerge/internal/obs"
	"lmerge/internal/temporal"
)

// renderWorkload renders nStreams physically divergent presentations of one
// seeded logical script — general/multiset-class inputs (disorder, revisions,
// removals, split inserts), the richest streams R3/R4 legally consume, with a
// dense stable cadence so state keeps freezing and spill keeps triggering.
func renderWorkload(seed int64, events, nStreams int, dup bool) []temporal.Stream {
	cfg := gen.Config{
		Events:        events,
		Seed:          seed,
		EventDuration: 60,
		MaxGap:        9,
		PayloadBytes:  6,
		Revisions:     0.5,
		RemoveProb:    0.25,
	}
	if dup {
		cfg.DupProb = 0.3
	}
	sc := gen.NewScript(cfg)
	streams := make([]temporal.Stream, nStreams)
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{
			Seed:         seed*101 + int64(i) + 1,
			StableFreq:   0.06,
			StableEvery:  7 + i,
			Disorder:     []float64{0.3, 0.1, 0.5}[i%3],
			SplitInserts: i%2 == 1,
		})
	}
	return streams
}

// drive round-robins the streams into m (stream IDs 1..n), invoking each
// after every delivery when non-nil.
func drive(t *testing.T, m core.Merger, streams []temporal.Stream, each func()) {
	t.Helper()
	pos := make([]int, len(streams))
	for {
		done := true
		for i, s := range streams {
			if pos[i] >= len(s) {
				continue
			}
			done = false
			if err := m.Process(core.StreamID(i+1), s[pos[i]]); err != nil {
				t.Fatalf("stream %d element %d: %v", i+1, pos[i], err)
			}
			pos[i]++
			if each != nil {
				each()
			}
		}
		if done {
			return
		}
	}
}

func attachAll(m core.Merger, n int) {
	for i := 1; i <= n; i++ {
		m.Attach(core.StreamID(i))
	}
}

// tdbOf reconstitutes an output stream to its temporal database.
func tdbOf(t *testing.T, out temporal.Stream, what string) *temporal.TDB {
	t.Helper()
	tdb, err := temporal.Reconstitute(out)
	if err != nil {
		t.Fatalf("%s does not reconstitute: %v", what, err)
	}
	return tdb
}

// requireSameTDB asserts two output streams describe the same temporal
// database (event multiset + stable point); emission order may differ.
func requireSameTDB(t *testing.T, got, want temporal.Stream, what string) {
	t.Helper()
	g, w := tdbOf(t, got, what), tdbOf(t, want, what+" reference")
	if g.Stable() != w.Stable() {
		t.Fatalf("%s: stable %v, want %v", what, g.Stable(), w.Stable())
	}
	ge, we := g.Events(), w.Events()
	if !reflect.DeepEqual(ge, we) {
		t.Fatalf("%s: %d distinct events, want %d (first divergence hunt: %v vs %v)",
			what, len(ge), len(we), ge, we)
	}
	for _, ev := range we {
		if g.Count(ev) != w.Count(ev) {
			t.Fatalf("%s: event %v count %d, want %d", what, ev, g.Count(ev), w.Count(ev))
		}
	}
}

func newCase(dup bool) core.Case {
	if dup {
		return core.CaseR4
	}
	return core.CaseR3
}

// TestWrapCapability: wrapping requires the frozen-extraction face; R0 has
// none and must be refused with a named capability gap.
func TestWrapCapability(t *testing.T) {
	r0 := core.New(core.CaseR0, func(temporal.Element) {})
	if Capable(r0) {
		t.Error("R0 reported spill-capable")
	}
	if _, err := Wrap(r0, Config{Budget: 1}); err == nil {
		t.Error("Wrap(R0): want error")
	}
	for _, c := range []core.Case{core.CaseR3, core.CaseR4} {
		m := core.New(c, func(temporal.Element) {})
		if !Capable(m) {
			t.Errorf("%v not spill-capable", c)
		}
	}
}

// TestSpillEquivalence drives a starved-budget wrapped merger and an
// unwrapped reference over identical divergent presentations: the final
// temporal databases must match exactly, and the spill path must actually
// have been exercised (runs written, runs re-admitted).
func TestSpillEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		dup  bool
		dir  bool
	}{
		{"R3-mem", false, false},
		{"R4-mem", true, false},
		{"R3-disk", false, true},
		{"R4-disk", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			streams := renderWorkload(11, 180, 3, tc.dup)
			var refOut temporal.Stream
			ref := core.New(newCase(tc.dup), func(e temporal.Element) { refOut = append(refOut, e) })
			attachAll(ref, len(streams))
			drive(t, ref, streams, nil)

			tel := &obs.Spill{}
			cfg := Config{Budget: 1, ProbeEvery: 1, Arity: 2, Tel: tel}
			if tc.dir {
				cfg.Dir = t.TempDir()
			}
			var out temporal.Stream
			sp, err := Wrap(core.New(newCase(tc.dup), func(e temporal.Element) { out = append(out, e) }), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer sp.Close()
			attachAll(sp, len(streams))
			drive(t, sp, streams, nil)

			requireSameTDB(t, out, refOut, "final output")
			if sp.MaxStable() != ref.MaxStable() {
				t.Errorf("MaxStable %v, want %v", sp.MaxStable(), ref.MaxStable())
			}
			snap := tel.Snapshot()
			if snap.RunsWritten == 0 {
				t.Error("starved budget never spilled a run")
			}
			if snap.Unspills == 0 {
				t.Error("no run was ever re-admitted")
			}
		})
	}
}

// TestSpillSnapshotIncludesSpilled cuts mid-stream with frames out of core:
// Snapshot must replay them — a checkpoint taken here is the recovery seed,
// so a frame missing from it is lost state.
func TestSpillSnapshotIncludesSpilled(t *testing.T) {
	for _, dup := range []bool{false, true} {
		streams := renderWorkload(23, 160, 3, dup)
		// Truncate each presentation to a prefix so live + frozen coexist.
		half := make([]temporal.Stream, len(streams))
		for i, s := range streams {
			half[i] = s[:len(s)/2]
		}
		ref := core.New(newCase(dup), func(temporal.Element) {})
		attachAll(ref, len(half))
		drive(t, ref, half, nil)

		tel := &obs.Spill{}
		sp, err := Wrap(core.New(newCase(dup), func(temporal.Element) {}), Config{Budget: 1, ProbeEvery: 1, Arity: 2, Tel: tel})
		if err != nil {
			t.Fatal(err)
		}
		attachAll(sp, len(half))
		drive(t, sp, half, nil)

		if runs, _ := sp.st.stats(); runs == 0 {
			t.Fatalf("dup=%v: no runs out of core at the cut", dup)
		}
		got := sp.Snapshot()
		want := ref.(core.Snapshotter).Snapshot()
		requireSameTDB(t, got, want, "mid-stream snapshot")
		if tel.Snapshot().Replays == 0 {
			t.Errorf("dup=%v: snapshot never replayed a run", dup)
		}
		sp.Close()
	}
}

// TestSpillDetach detaches a stream while its vouched frames are out of
// core, then finishes the remaining streams: results must match a resident
// merger doing the same sequence.
func TestSpillDetach(t *testing.T) {
	for _, dup := range []bool{false, true} {
		streams := renderWorkload(37, 160, 3, dup)
		run := func(m core.Merger) {
			attachAll(m, len(streams))
			// Stream 3 delivers only a prefix; the others run to completion,
			// then 3 detaches with its vouched state possibly out of core.
			short := append([]temporal.Stream(nil), streams...)
			short[2] = short[2][:len(short[2])/3]
			drive(t, m, short, nil)
			m.Detach(core.StreamID(3))
		}
		var refOut temporal.Stream
		ref := core.New(newCase(dup), func(e temporal.Element) { refOut = append(refOut, e) })
		run(ref)

		var out temporal.Stream
		sp, err := Wrap(core.New(newCase(dup), func(e temporal.Element) { out = append(out, e) }), Config{Budget: 1, ProbeEvery: 1, Arity: 2})
		if err != nil {
			t.Fatal(err)
		}
		run(sp)
		requireSameTDB(t, out, refOut, "post-detach output")
		requireSameTDB(t, sp.Snapshot(), ref.(core.Snapshotter).Snapshot(), "post-detach snapshot")
		sp.Close()
	}
}

// soakStreams renders the memory-bound workload: long-lived insert-only
// events (Ve far past the script horizon) under divergent disorder. The
// stable frontier tracks Vs, so state freezes steadily and accumulates
// instead of expiring — resident size grows linearly without a budget.
// (Revisions and removals are off on purpose: a pending revision renders as
// an adjust at the ORIGINAL Vs, so long lifetimes would pin the stable
// frontier near zero and nothing would ever freeze.)
func soakStreams(seed int64, events int, dup bool) []temporal.Stream {
	cfg := gen.Config{
		Events:        events,
		Seed:          seed,
		EventDuration: 1 << 20,
		MaxGap:        9,
		PayloadBytes:  6,
	}
	if dup {
		cfg.DupProb = 0.3
	}
	sc := gen.NewScript(cfg)
	streams := make([]temporal.Stream, 3)
	for i := range streams {
		streams[i] = sc.Render(gen.RenderOptions{
			Seed:        seed*101 + int64(i) + 1,
			StableFreq:  0.06,
			StableEvery: 7 + i,
			Disorder:    []float64{0.3, 0.1, 0.5}[i%3],
		})
	}
	return streams
}

// TestSpillSoak is the budget-adherence soak (`make spill-soak` runs it with
// the race detector, exercising the background compactor concurrently): tens
// of thousands of deliveries of accumulating long-lived state against a
// 32 KiB budget. The unwrapped reference peaks an order of magnitude above
// the budget; the wrapped merger must stay within a small soft-budget factor
// (live not-yet-unanimous state cannot be spilled), produce the identical
// temporal database, and leave zeroed gauges after Close.
func TestSpillSoak(t *testing.T) {
	for _, tc := range []struct {
		name string
		dup  bool
	}{{"R3", false}, {"R4", true}} {
		t.Run(tc.name, func(t *testing.T) {
			const budget = 32 << 10
			streams := soakStreams(71, 3000, tc.dup)

			refPeak := 0
			var refOut temporal.Stream
			ref := core.New(newCase(tc.dup), func(e temporal.Element) { refOut = append(refOut, e) })
			attachAll(ref, len(streams))
			n := 0
			drive(t, ref, streams, func() {
				if n++; n%8 != 0 {
					return
				}
				if sz := ref.SizeBytes(); sz > refPeak {
					refPeak = sz
				}
			})

			tel := &obs.Spill{}
			var out temporal.Stream
			sp, err := Wrap(core.New(newCase(tc.dup), func(e temporal.Element) { out = append(out, e) }),
				Config{Budget: budget, ProbeEvery: 8, Arity: 3, Dir: t.TempDir(), Tel: tel})
			if err != nil {
				t.Fatal(err)
			}
			attachAll(sp, len(streams))
			peak := 0
			n = 0
			drive(t, sp, streams, func() {
				if n++; n%8 != 0 {
					return
				}
				if sz := sp.SizeBytes(); sz > peak {
					peak = sz
				}
			})

			// Budget adherence: soft (hot state is not spillable), but the
			// resident peak must stay within a small factor of the budget
			// while the unbounded reference blows far past it.
			if peak > 3*budget {
				t.Errorf("resident peak %d exceeds 3x budget %d", peak, budget)
			}
			if refPeak < 8*budget {
				t.Fatalf("soak too small to be meaningful: reference peak %d", refPeak)
			}
			if 4*peak > refPeak {
				t.Errorf("spilling barely helped: peak %d vs unbounded %d", peak, refPeak)
			}
			requireSameTDB(t, out, refOut, "soak output")
			if sp.MaxStable() != temporal.Infinity {
				t.Errorf("stable stalled at %v", sp.MaxStable())
			}
			// Unspills stay zero here by design: insert-only unique keys
			// vouched by every stream never need re-admission — the ideal
			// out-of-core case. Re-admission paths are asserted by the
			// revision-heavy equivalence tests above.
			snap := tel.Snapshot()
			if snap.RunsWritten == 0 {
				t.Errorf("spill path idle: %+v", snap)
			}
			sp.Close()
			end := tel.Snapshot()
			if end.ResidentBytes != 0 || end.OutOfCore != 0 || end.Runs != 0 {
				t.Errorf("gauges not drained after Close: resident=%d frames=%d runs=%d",
					end.ResidentBytes, end.OutOfCore, end.Runs)
			}
			t.Logf("%s: peak=%d reference=%d runs=%d merged=%d unspills=%d",
				tc.name, peak, refPeak, snap.RunsWritten, snap.RunsMerged, snap.Unspills)
		})
	}
}

// TestSpillHandoffRoundTrip extracts every key mid-stream (the repartition
// donation path, which must first re-admit all runs), installs the state
// back, finishes the input, and checks equivalence.
func TestSpillHandoffRoundTrip(t *testing.T) {
	streams := renderWorkload(53, 160, 3, true)
	halfLen := func(s temporal.Stream) int { return len(s) / 2 }

	var refOut temporal.Stream
	ref := core.New(core.CaseR4, func(e temporal.Element) { refOut = append(refOut, e) })
	attachAll(ref, len(streams))

	var out temporal.Stream
	sp, err := Wrap(core.New(core.CaseR4, func(e temporal.Element) { out = append(out, e) }), Config{Budget: 1, ProbeEvery: 1, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	attachAll(sp, len(streams))

	for phase := 0; phase < 2; phase++ {
		part := make([]temporal.Stream, len(streams))
		for i, s := range streams {
			if phase == 0 {
				part[i] = s[:halfLen(s)]
			} else {
				part[i] = s[halfLen(s):]
			}
		}
		drive(t, ref, part, nil)
		drive(t, sp, part, nil)
		if phase == 0 {
			if !sp.HandoffCapable() {
				t.Fatal("wrapped merger lost handoff capability")
			}
			hs := sp.ExtractKeys(func(temporal.Payload) bool { return true })
			if runs, _ := sp.st.stats(); runs != 0 {
				t.Fatalf("%d runs still out of core after ExtractKeys", runs)
			}
			sp.InstallKeys(hs)
		}
	}
	requireSameTDB(t, out, refOut, "post-handoff output")
}
